/**
 * @file
 * E13 - Compiler-side ablations (the codegen choices DESIGN.md calls
 * out):
 *  1. Exit sinking on/off: sinking exit branches to the hyperblock
 *     bottom is what gives the squash filter its define-to-branch
 *     distance; with in-place exits the filter should starve.
 *  2. Region size (maxBlocks) sweep: bigger hyperblocks convert more
 *     branches but execute more inert instructions - the classic
 *     predication trade-off, measured end to end.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

namespace {

constexpr std::uint64_t toHaltCap = 30'000'000;

} // namespace

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    const std::vector<unsigned> max_blocks_sweep = {2, 4, 6, 8, 12, 16};

    // Grid layout: [sink ablation pairs][branchy to-halt
    // baselines][maxBlocks x workloads to-halt runs].
    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        for (int mode = 0; mode < 2; ++mode) {
            RunSpec spec;
            spec.workload = name;
            spec.engine.useSfpf = true;
            spec.compile.lowering.sinkExits = mode == 0;
            spec.maxInsts = steps;
            spec.seed = seed;
            applyCheckpointOptions(spec, opts);
            specs.push_back(spec);
        }
    }
    const std::size_t branchy_offset = specs.size();
    for (const std::string &name : workloadNames()) {
        RunSpec branchy;
        branchy.workload = name;
        branchy.ifConvert = false;
        branchy.maxInsts = toHaltCap;
        branchy.seed = seed;
        specs.push_back(branchy);
    }
    const std::size_t size_offset = specs.size();
    for (unsigned max_blocks : max_blocks_sweep) {
        for (const std::string &name : workloadNames()) {
            RunSpec spec;
            spec.workload = name;
            spec.engine.useSfpf = true;
            spec.engine.usePgu = true;
            spec.compile.heuristics.maxBlocks = max_blocks;
            spec.maxInsts = toHaltCap;
            spec.seed = seed;
            specs.push_back(spec);
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    std::cout << "E13a: exit sinking ablation (gshare-4K + SFPF, "
                 "delay=8)\n\n";

    Table sink_table({"workload", "squash%(sunk)", "squash%(in-place)",
                      "mispred(sunk)", "mispred(in-place)"});
    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        const EngineStats *modes[2] = {&results[idx].engine,
                                       &results[idx + 1].engine};
        idx += 2;
        sink_table.startRow();
        sink_table.cell(name);
        for (int mode = 0; mode < 2; ++mode) {
            sink_table.percentCell(
                modes[mode]->all.branches
                    ? static_cast<double>(modes[mode]->all.squashed) /
                        static_cast<double>(modes[mode]->all.branches)
                    : 0.0);
        }
        for (int mode = 0; mode < 2; ++mode)
            sink_table.percentCell(modes[mode]->all.mispredictRate());
    }
    emitTable(sink_table, opts);

    std::cout << "E13b: hyperblock size sweep (suite means, "
                 "gshare-4K + both techniques, runs to halt)\n\n";

    std::vector<std::uint64_t> branchy_insts;
    for (std::size_t w = 0; w < workloadNames().size(); ++w)
        branchy_insts.push_back(
            results[branchy_offset + w].engine.insts);

    Table size_table({"maxBlocks", "static-regions", "region-br%",
                      "mispredict", "squash%", "inst-overhead"});
    idx = size_offset;
    for (unsigned max_blocks : max_blocks_sweep) {
        double sum_rate = 0.0, sum_share = 0.0, sum_squash = 0.0;
        double sum_overhead = 0.0;
        std::uint64_t regions = 0;
        for (std::size_t w = 0; w < workloadNames().size(); ++w) {
            const RunResult &result = results[idx++];
            const EngineStats &stats = result.engine;
            regions += result.numRegions;

            sum_rate += stats.all.mispredictRate();
            double branches = static_cast<double>(stats.all.branches);
            sum_share += branches
                ? static_cast<double>(stats.region.branches) / branches
                : 0.0;
            sum_squash += branches
                ? static_cast<double>(stats.all.squashed) / branches
                : 0.0;
            sum_overhead += static_cast<double>(stats.insts) /
                static_cast<double>(branchy_insts[w]);
        }
        double n = static_cast<double>(workloadNames().size());
        size_table.startRow();
        size_table.cell(std::uint64_t{max_blocks});
        size_table.cell(regions);
        size_table.percentCell(sum_share / n);
        size_table.percentCell(sum_rate / n);
        size_table.percentCell(sum_squash / n);
        size_table.cell(sum_overhead / n, 2);
    }
    emitTable(size_table, opts);
    std::cout << "inst-overhead = predicated instructions to complete "
                 "the same work,\nrelative to the branchy binary.\n";
    return exitStatus(specs, results);
}
