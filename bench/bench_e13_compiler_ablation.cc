/**
 * @file
 * E13 - Compiler-side ablations (the codegen choices DESIGN.md calls
 * out):
 *  1. Exit sinking on/off: sinking exit branches to the hyperblock
 *     bottom is what gives the squash filter its define-to-branch
 *     distance; with in-place exits the filter should starve.
 *  2. Region size (maxBlocks) sweep: bigger hyperblocks convert more
 *     branches but execute more inert instructions - the classic
 *     predication trade-off, measured end to end.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

namespace {

constexpr std::uint64_t toHaltCap = 30'000'000;

/** Instructions a workload needs to halt in branchy form. */
std::uint64_t
branchyInstsToHalt(const std::string &name, std::uint64_t seed)
{
    Workload wl = makeWorkload(name, seed);
    CompileOptions nopts;
    nopts.ifConvert = false;
    CompiledProgram normal = compileWorkload(wl, nopts);
    Emulator emu(normal.prog);
    if (wl.init)
        wl.init(emu.state());
    emu.run(toHaltCap);
    return emu.instsExecuted();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    std::cout << "E13a: exit sinking ablation (gshare-4K + SFPF, "
                 "delay=8)\n\n";

    Table sink_table({"workload", "squash%(sunk)", "squash%(in-place)",
                      "mispred(sunk)", "mispred(in-place)"});
    for (const std::string &name : workloadNames()) {
        EngineStats results[2];
        for (int mode = 0; mode < 2; ++mode) {
            RunSpec spec;
            spec.engine.useSfpf = true;
            spec.compile.lowering.sinkExits = mode == 0;
            spec.maxInsts = steps;
            spec.seed = seed;
            applyCheckpointOptions(spec, opts);
            results[mode] = runTraceSpec(makeWorkload(name, seed), spec);
        }
        sink_table.startRow();
        sink_table.cell(name);
        for (int mode = 0; mode < 2; ++mode) {
            sink_table.percentCell(
                results[mode].all.branches
                    ? static_cast<double>(results[mode].all.squashed) /
                        static_cast<double>(results[mode].all.branches)
                    : 0.0);
        }
        for (int mode = 0; mode < 2; ++mode)
            sink_table.percentCell(results[mode].all.mispredictRate());
    }
    emitTable(sink_table, opts);

    std::cout << "E13b: hyperblock size sweep (suite means, "
                 "gshare-4K + both techniques, runs to halt)\n\n";

    std::vector<std::uint64_t> branchy_insts;
    for (const std::string &name : workloadNames())
        branchy_insts.push_back(branchyInstsToHalt(name, seed));

    Table size_table({"maxBlocks", "static-regions", "region-br%",
                      "mispredict", "squash%", "inst-overhead"});
    for (unsigned max_blocks : {2u, 4u, 6u, 8u, 12u, 16u}) {
        double sum_rate = 0.0, sum_share = 0.0, sum_squash = 0.0;
        double sum_overhead = 0.0;
        std::uint64_t regions = 0;
        std::size_t idx = 0;
        for (const std::string &name : workloadNames()) {
            Workload wl = makeWorkload(name, seed);
            CompileOptions copts;
            copts.heuristics.maxBlocks = max_blocks;
            CompiledProgram cp = compileWorkload(wl, copts);
            regions += cp.info.numRegions;

            PredictorPtr pred = makePredictor("gshare", 12);
            EngineConfig ecfg;
            ecfg.useSfpf = true;
            ecfg.usePgu = true;
            PredictionEngine engine(*pred, ecfg);
            Emulator emu(cp.prog);
            if (wl.init)
                wl.init(emu.state());
            runTrace(emu, engine, toHaltCap);
            const EngineStats &stats = engine.stats();

            sum_rate += stats.all.mispredictRate();
            double branches = static_cast<double>(stats.all.branches);
            sum_share += branches
                ? static_cast<double>(stats.region.branches) / branches
                : 0.0;
            sum_squash += branches
                ? static_cast<double>(stats.all.squashed) / branches
                : 0.0;
            sum_overhead += static_cast<double>(stats.insts) /
                static_cast<double>(branchy_insts[idx]);
            ++idx;
        }
        double n = static_cast<double>(workloadNames().size());
        size_table.startRow();
        size_table.cell(std::uint64_t{max_blocks});
        size_table.cell(regions);
        size_table.percentCell(sum_share / n);
        size_table.percentCell(sum_rate / n);
        size_table.percentCell(sum_squash / n);
        size_table.cell(sum_overhead / n, 2);
    }
    emitTable(size_table, opts);
    std::cout << "inst-overhead = predicated instructions to complete "
                 "the same work,\nrelative to the branchy binary.\n";
    return 0;
}
