/**
 * @file
 * Crash-safe sweep service: the coordinator that turns a RunSpec grid
 * plus a shard assignment into a durable, restartable campaign.
 *
 * The service owns the lifecycle ISSUE'd by docs/ROBUSTNESS.md:
 *
 *  1. Partition - shardOf(specFingerprint(spec), N) decides which of
 *     the N shards owns each cell; ownership is a pure function of
 *     the spec, so independent machines agree without coordination.
 *  2. Resume - on startup the shard's journal (util/journal.hh) is
 *     opened, a torn tail is truncated away, and every owned cell
 *     whose LAST record is a successful Result is skipped.
 *     Quarantined and never-recorded cells run (again).
 *  3. Execute - pending cells go through the SweepRunner (watchdog,
 *     bounded retry, typed per-cell failure) in batches; each
 *     finished batch is committed to the journal IN SHARD SUBMISSION
 *     ORDER, so the journal grows as an ordered prefix of the owned
 *     cell sequence.
 *  4. Drain - when every owned cell has a record, a final compaction
 *     rewrites the journal keeping the last record per fingerprint in
 *     owned-cell order. This normalises re-run duplicates: a campaign
 *     killed (SIGKILL) at any point and re-invoked converges to a
 *     journal BYTE-IDENTICAL to an uninterrupted run's.
 *
 * Cells that fail terminally are recorded as Quarantine records - the
 * grid completes, the failure is durable and queryable (pabp-stats),
 * and the next invocation retries them.
 */

#ifndef PABP_BENCH_SWEEP_SERVICE_HH
#define PABP_BENCH_SWEEP_SERVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sweep.hh"
#include "util/journal.hh"

namespace pabp::bench {

/**
 * Column order of sweep journal records (JournalRecord::columns).
 * The journal layer stores an opaque u64 vector; this enum is the
 * sweep-side contract for what each slot means. Append-only: new
 * columns go at the end so old journals stay readable.
 */
enum SweepColumn : std::size_t
{
    ColInsts = 0,       ///< EngineStats::insts
    ColBranches,        ///< EngineStats::all.branches
    ColMispredicts,     ///< EngineStats::all.mispredicts
    ColSquashed,        ///< EngineStats::all.squashed
    ColPguBits,         ///< RunResult::pguBits
    ColResumeFallback,  ///< 1 = cell cold-started despite --resume
    NumSweepColumns,
};

/** Build the journal record for one finished cell: a Result frame
 *  (blob = captured metrics JSON) on success, a Quarantine frame
 *  (blob = typed error text) on terminal failure. */
JournalRecord recordForCell(const RunSpec &spec, const RunResult &result);

/**
 * Per-shard journal naming: "results/e6.pabpj" for shard 2 of 4
 * becomes "results/e6-shard2of4.pabpj". A single-shard campaign
 * (count <= 1) keeps the base name - the common case stays tidy.
 */
std::string deriveShardJournalPath(const std::string &base,
                                   const ShardSpec &shard);

/** The knobs of one service invocation. */
struct ServiceConfig
{
    /** Journal file this shard appends to (already shard-derived;
     *  see deriveShardJournalPath). */
    std::string journalPath;
    ShardSpec shard;

    /** Capture each cell's byte-stable metrics JSON into its Result
     *  record. Off only for tests that care about framing alone. */
    bool captureMetrics = true;

    /** Close + compact + reopen the journal after this many records
     *  committed in this invocation (0 = compact only at drain).
     *  Purely a size/long-campaign knob: the drain-time compaction
     *  normalises the bytes either way. */
    std::uint64_t compactEvery = 0;

    /** Test hook simulating `kill -9`: stop after exactly this many
     *  records committed in this invocation, skipping the drain
     *  compaction (0 = off). The kill/resume equivalence tests
     *  re-invoke the service and require byte-identical convergence. */
    std::uint64_t stopAfter = 0;

    /** Cells handed to the runner per batch (0 = 4x runner jobs).
     *  Smaller batches commit sooner; the bytes are identical. */
    std::size_t batchCells = 0;
};

/** What one runShard() invocation did. */
struct ServiceReport
{
    std::uint64_t ownedCells = 0;      ///< grid cells this shard owns
    std::uint64_t alreadyDone = 0;     ///< skipped via journal scan
    std::uint64_t executed = 0;        ///< cells run this invocation
    std::uint64_t retried = 0;         ///< cells that needed >1 attempt
    std::uint64_t quarantined = 0;     ///< Quarantine records at drain
    std::uint64_t resumeFallbacks = 0; ///< sweep.resume_fallbacks delta
    std::uint64_t committed = 0;       ///< records appended this run
    bool salvagedTail = false;         ///< journal tail was truncated
    bool stopped = false;              ///< ServiceConfig::stopAfter hit
    bool drained = false;              ///< every owned cell recorded
};

/**
 * Runs one shard of a campaign to completion against its journal.
 * Reusable: runShard() may be called repeatedly (the service is how
 * pabp_sweepd implements "re-invoke until drained").
 */
class SweepService
{
  public:
    SweepService(SweepRunner &runner, ServiceConfig config)
        : runner(runner), config(std::move(config))
    {}

    /**
     * Execute the shard-owned subset of @p grid that the journal does
     * not already cover. Setup failures (unopenable or foreign-shard
     * journal, failed append/compaction) surface as a typed Status;
     * per-cell failures do NOT - they become Quarantine records and
     * the report's `quarantined` count.
     */
    Expected<ServiceReport> runShard(std::vector<RunSpec> grid);

  private:
    SweepRunner &runner;
    ServiceConfig config;
};

} // namespace pabp::bench

#endif // PABP_BENCH_SWEEP_SERVICE_HH
