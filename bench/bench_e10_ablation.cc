/**
 * @file
 * E10 - Design-choice ablations (DESIGN.md decisions 3-5):
 *  - PGU insertion source: all compares vs region compares only
 *  - PGU inserted value: relation bit vs first write vs both writes
 *  - pset pseudo-defines included or not
 *  - SFPF define tracking: exact writes vs conservative (any fetched
 *    define blocks) - and training on squashed branches.
 * Reported as suite-mean mispredict rate and inserted bits.
 */

#include <functional>

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

namespace {

struct Ablation
{
    std::string label;
    std::function<void(EngineConfig &)> apply;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    const std::vector<Ablation> ablations = {
        {"base gshare (no techniques)", [](EngineConfig &) {}},
        {"both, defaults",
         [](EngineConfig &e) {
             e.useSfpf = true;
             e.usePgu = true;
         }},
        {"PGU source: region cmps only",
         [](EngineConfig &e) {
             e.useSfpf = true;
             e.usePgu = true;
             e.pgu.source = PguSource::RegionCmps;
         }},
        {"PGU value: first write",
         [](EngineConfig &e) {
             e.useSfpf = true;
             e.usePgu = true;
             e.pgu.value = PguValue::FirstWrite;
         }},
        {"PGU value: both writes",
         [](EngineConfig &e) {
             e.useSfpf = true;
             e.usePgu = true;
             e.pgu.value = PguValue::BothWrites;
         }},
        {"PGU: include pset defines",
         [](EngineConfig &e) {
             e.useSfpf = true;
             e.usePgu = true;
             e.pgu.includePSet = true;
         }},
        {"SFPF: conservative def tracking",
         [](EngineConfig &e) {
             e.useSfpf = true;
             e.usePgu = true;
             e.conservativeDefTracking = true;
         }},
        {"SFPF: train on squashed",
         [](EngineConfig &e) {
             e.useSfpf = true;
             e.usePgu = true;
             e.trainOnSquashed = true;
         }},
    };

    std::cout << "E10: design ablations (suite means, gshare-4K)\n\n";

    std::vector<RunSpec> specs;
    for (const Ablation &ablation : ablations) {
        for (const std::string &name : workloadNames()) {
            RunSpec spec;
            spec.workload = name;
            ablation.apply(spec.engine);
            spec.maxInsts = steps;
            spec.seed = seed;
            specs.push_back(spec);
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"configuration", "mispredict", "squash%",
                 "pgu-bits/kinst"});
    std::size_t idx = 0;
    for (const Ablation &ablation : ablations) {
        double sum_rate = 0.0, sum_squash = 0.0, sum_bits = 0.0;
        for (std::size_t w = 0; w < workloadNames().size(); ++w) {
            const RunResult &result = results[idx++];
            const EngineStats &stats = result.engine;
            sum_rate += stats.all.mispredictRate();
            sum_squash += stats.all.branches
                ? static_cast<double>(stats.all.squashed) /
                    static_cast<double>(stats.all.branches)
                : 0.0;
            sum_bits += 1000.0 * static_cast<double>(result.pguBits) /
                static_cast<double>(stats.insts);
        }
        double n = static_cast<double>(workloadNames().size());
        table.startRow();
        table.cell(ablation.label);
        table.percentCell(sum_rate / n);
        table.percentCell(sum_squash / n);
        table.cell(sum_bits / n, 1);
    }

    emitTable(table, opts);
    return exitStatus(specs, results);
}
