/**
 * @file
 * E3 - The squash false path filter across predictor sizes: suite-mean
 * mispredict rate of gshare vs gshare+SFPF for pattern tables from
 * 256 to 64K entries, plus a per-workload breakdown at 4K. The paper's
 * headline SFPF figure has this shape: the filter helps at every size,
 * and relatively more at small sizes where pollution costs capacity.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    opts.declare("delay", "8", "predicate availability delay (insts)");
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));
    unsigned delay = static_cast<unsigned>(opts.integer("delay"));

    std::cout << "E3: gshare vs gshare+SFPF across sizes (delay="
              << delay << ")\n\n";

    const std::vector<unsigned> sizes = {8, 10, 12, 14, 16};

    // One grid for the whole binary: sizes x workloads x {base,
    // SFPF}, then the 4K per-workload detail pairs. Every workload
    // compiles exactly once - the cells differ only predictor-side.
    std::vector<RunSpec> specs;
    for (unsigned size_log2 : sizes) {
        for (const std::string &name : workloadNames()) {
            RunSpec base;
            base.workload = name;
            base.sizeLog2 = size_log2;
            base.maxInsts = steps;
            base.seed = seed;
            applyCheckpointOptions(base, opts);
            specs.push_back(base);

            RunSpec sfpf = base;
            sfpf.engine.useSfpf = true;
            sfpf.engine.availDelay = delay;
            specs.push_back(sfpf);
        }
    }
    const std::size_t detail_offset = specs.size();
    for (const std::string &name : workloadNames()) {
        RunSpec base;
        base.workload = name;
        base.maxInsts = steps;
        base.seed = seed;
        applyCheckpointOptions(base, opts);
        specs.push_back(base);

        RunSpec sfpf = base;
        sfpf.engine.useSfpf = true;
        sfpf.engine.availDelay = delay;
        specs.push_back(sfpf);
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table sweep({"entries", "gshare", "gshare+SFPF", "reduction"});
    std::size_t idx = 0;
    for (unsigned size_log2 : sizes) {
        double sum_base = 0.0, sum_sfpf = 0.0;
        for (std::size_t w = 0; w < workloadNames().size(); ++w) {
            sum_base += results[idx++].engine.all.mispredictRate();
            sum_sfpf += results[idx++].engine.all.mispredictRate();
        }
        double n = static_cast<double>(workloadNames().size());
        sweep.startRow();
        sweep.cell(std::uint64_t{1} << size_log2);
        sweep.percentCell(sum_base / n);
        sweep.percentCell(sum_sfpf / n);
        sweep.percentCell(sum_base > 0.0
                              ? (sum_base - sum_sfpf) / sum_base
                              : 0.0,
                          1);
    }
    emitTable(sweep, opts);

    std::cout << "per-workload at 4K entries:\n\n";
    Table detail({"workload", "gshare", "gshare+SFPF", "squashed%"});
    idx = detail_offset;
    for (const std::string &name : workloadNames()) {
        const EngineStats &b = results[idx++].engine;
        const EngineStats &s = results[idx++].engine;

        detail.startRow();
        detail.cell(name);
        detail.percentCell(b.all.mispredictRate());
        detail.percentCell(s.all.mispredictRate());
        detail.percentCell(
            s.all.branches
                ? static_cast<double>(s.all.squashed) /
                    static_cast<double>(s.all.branches)
                : 0.0);
    }
    emitTable(detail, opts);
    return exitStatus(specs, results);
}
