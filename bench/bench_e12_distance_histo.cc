/**
 * @file
 * E12 - Define-to-branch distance distributions: for every guarded
 * conditional branch, the dynamic distance (in instructions) from the
 * last write of its qualifying predicate. This is the quantity that
 * decides whether the squash filter can act (it needs distance >
 * availability delay), so the paper-style analysis of "how far ahead
 * are guards known" reduces to this histogram.
 */

#include "common.hh"
#include "util/stats.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    std::cout << "E12: dynamic define-to-branch distance of branch "
                 "guards\n\n";

    Table table({"workload", "mean", "<4", "4-7", "8-15", "16-31",
                 "32-63", ">=64"});

    for (const std::string &name : workloadNames()) {
        Workload wl = makeWorkload(name, seed);
        CompileOptions copts;
        CompiledProgram cp = compileWorkload(wl, copts);
        Emulator emu(cp.prog);
        if (wl.init)
            wl.init(emu.state());

        // Track the last writer of each predicate register.
        std::vector<std::uint64_t> last_write(numPredRegs, 0);
        Histogram histo(16, 4); // 16 buckets of width 4 + overflow
        std::uint64_t in_bucket[6] = {};
        std::uint64_t total = 0;

        DynInst dyn;
        for (std::uint64_t i = 0; i < steps && emu.step(dyn); ++i) {
            const Inst &inst = *dyn.inst;
            if (inst.op == Opcode::Br && inst.qp != 0) {
                std::uint64_t distance = dyn.seq - last_write[inst.qp];
                histo.sample(distance);
                ++total;
                if (distance < 4)
                    ++in_bucket[0];
                else if (distance < 8)
                    ++in_bucket[1];
                else if (distance < 16)
                    ++in_bucket[2];
                else if (distance < 32)
                    ++in_bucket[3];
                else if (distance < 64)
                    ++in_bucket[4];
                else
                    ++in_bucket[5];
            }
            for (unsigned w = 0; w < dyn.numPredWrites; ++w)
                last_write[dyn.predWrites[w].reg] = dyn.seq;
        }

        table.startRow();
        table.cell(name);
        table.cell(histo.mean(), 1);
        for (int bucket = 0; bucket < 6; ++bucket)
            table.percentCell(total ? static_cast<double>(
                                          in_bucket[bucket]) /
                                      static_cast<double>(total)
                                    : 0.0,
                              1);
    }

    emitTable(table, opts);
    std::cout << "guards resolved at least `availDelay` instructions "
                 "before the branch\nare filterable; compare these "
                 "columns against E4's squash rates.\n";
    return 0;
}
