/**
 * @file
 * E12 - Define-to-branch distance distributions: for every guarded
 * conditional branch, the dynamic distance (in instructions) from the
 * last write of its qualifying predicate. This is the quantity that
 * decides whether the squash filter can act (it needs distance >
 * availability delay), so the paper-style analysis of "how far ahead
 * are guards known" reduces to this histogram.
 */

#include <memory>

#include "common.hh"
#include "util/stats.hh"

using namespace pabp;
using namespace pabp::bench;

namespace {

/** Per-workload accumulator, owned by exactly one Observe cell. */
struct DistanceAccum
{
    std::vector<std::uint64_t> lastWrite =
        std::vector<std::uint64_t>(numPredRegs, 0);
    Histogram histo{16, 4}; // 16 buckets of width 4 + overflow
    std::uint64_t inBucket[6] = {};
    std::uint64_t total = 0;

    void
    observe(const DynInst &dyn)
    {
        const Inst &inst = *dyn.inst;
        if (inst.op == Opcode::Br && inst.qp != 0) {
            std::uint64_t distance = dyn.seq - lastWrite[inst.qp];
            histo.sample(distance);
            ++total;
            if (distance < 4)
                ++inBucket[0];
            else if (distance < 8)
                ++inBucket[1];
            else if (distance < 16)
                ++inBucket[2];
            else if (distance < 32)
                ++inBucket[3];
            else if (distance < 64)
                ++inBucket[4];
            else
                ++inBucket[5];
        }
        for (unsigned w = 0; w < dyn.numPredWrites; ++w)
            lastWrite[dyn.predWrites[w].reg] = dyn.seq;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    std::cout << "E12: dynamic define-to-branch distance of branch "
                 "guards\n\n";

    // One Observe cell per workload; each cell's accumulator is
    // touched only by the worker running that cell.
    std::vector<std::unique_ptr<DistanceAccum>> accums;
    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        accums.push_back(std::make_unique<DistanceAccum>());
        DistanceAccum *accum = accums.back().get();

        RunSpec spec;
        spec.workload = name;
        spec.mode = RunMode::Observe;
        spec.observe = [accum](const DynInst &dyn) {
            accum->observe(dyn);
        };
        spec.maxInsts = steps;
        spec.seed = seed;
        specs.push_back(spec);
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"workload", "mean", "<4", "4-7", "8-15", "16-31",
                 "32-63", ">=64"});

    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        const DistanceAccum &accum = *accums[idx++];
        table.startRow();
        table.cell(name);
        table.cell(accum.histo.mean(), 1);
        for (int bucket = 0; bucket < 6; ++bucket)
            table.percentCell(
                accum.total ? static_cast<double>(
                                  accum.inBucket[bucket]) /
                        static_cast<double>(accum.total)
                            : 0.0,
                1);
    }

    emitTable(table, opts);
    std::cout << "guards resolved at least `availDelay` instructions "
                 "before the branch\nare filterable; compare these "
                 "columns against E4's squash rates.\n";
    return exitStatus(specs, results);
}
