# Experiment binaries. Included from the top-level CMakeLists (not
# add_subdirectory) so that build/bench holds ONLY the executables -
# `for b in build/bench/*; do $b; done` is the supported way to
# regenerate every result.

# The sweep runner library: RunSpec grids executed across a worker
# pool with deterministic, submission-ordered results. Shared by all
# experiment binaries and by tests/test_sweep.cc.
add_library(pabp_sweep STATIC
    ${PROJECT_SOURCE_DIR}/bench/sweep.cc
    ${PROJECT_SOURCE_DIR}/bench/sweep_service.cc)
target_include_directories(pabp_sweep PUBLIC
    ${PROJECT_SOURCE_DIR}/bench)
target_link_libraries(pabp_sweep PUBLIC pabp_workloads pabp_pipeline
    pabp_core pabp_bpred pabp_compiler pabp_sim pabp_isa pabp_mem
    pabp_util)

set(BENCH_LIBS pabp_sweep pabp_workloads pabp_pipeline pabp_core
    pabp_bpred pabp_compiler pabp_sim pabp_isa pabp_mem pabp_util)

function(pabp_bench name)
    add_executable(${name} ${PROJECT_SOURCE_DIR}/bench/${name}.cc)
    target_link_libraries(${name} PRIVATE ${BENCH_LIBS})
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

pabp_bench(bench_e1_characterisation)
pabp_bench(bench_e2_baselines)
pabp_bench(bench_e3_sfpf_sizes)
pabp_bench(bench_e4_squash_rates)
pabp_bench(bench_e5_pgu_sizes)
pabp_bench(bench_e6_combined)
pabp_bench(bench_e7_region_branches)
pabp_bench(bench_e8_speedup)
pabp_bench(bench_e9_avail_delay)
pabp_bench(bench_e10_ablation)
pabp_bench(bench_e12_distance_histo)
pabp_bench(bench_e13_compiler_ablation)
pabp_bench(bench_e14_spec_squash)
pabp_bench(bench_e15_bias_sweep)
pabp_bench(bench_e16_pollution)
pabp_bench(bench_e17_selective)
pabp_bench(bench_e18_cross_input)
pabp_bench(bench_e19_pgu_bases)
pabp_bench(bench_e20_tage_h2p)
pabp_bench(bench_e21_interference)
pabp_bench(bench_e22_characterization)
# E22 runs the mining campaign in-process.
target_link_libraries(bench_e22_characterization PRIVATE pabp_fuzz)

pabp_bench(bench_replay_hot)

pabp_bench(bench_e11_micro)
target_link_libraries(bench_e11_micro PRIVATE benchmark::benchmark)
