/**
 * @file
 * E7 - Region-based branches in isolation: their dynamic share, their
 * mispredict rate under the base predictor, under each technique, and
 * both. This is the paper's core argument localised: region-based
 * branches are where predicate information pays off.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    std::cout << "E7: region-based branch mispredict rates "
              << "(gshare-4K base)\n\n";

    struct Config
    {
        bool sfpf;
        bool pgu;
    };
    const Config configs[] = {
        {false, false}, {true, false}, {false, true}, {true, true}};

    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        for (const Config &config : configs) {
            RunSpec spec;
            spec.workload = name;
            spec.engine.useSfpf = config.sfpf;
            spec.engine.usePgu = config.pgu;
            spec.maxInsts = steps;
            spec.seed = seed;
            applyCheckpointOptions(spec, opts);
            specs.push_back(spec);
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"workload", "region-br", "share%", "base", "+SFPF",
                 "+PGU", "+both"});

    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        table.startRow();
        table.cell(name);
        bool wrote_counts = false;
        for (std::size_t c = 0; c < std::size(configs); ++c) {
            const EngineStats &stats = results[idx++].engine;
            if (!wrote_counts) {
                table.cell(stats.region.branches);
                table.percentCell(
                    stats.all.branches
                        ? static_cast<double>(stats.region.branches) /
                            static_cast<double>(stats.all.branches)
                        : 0.0);
                wrote_counts = true;
            }
            table.percentCell(stats.region.mispredictRate());
        }
    }

    emitTable(table, opts);
    std::cout << "share% = region-based branches as a fraction of all "
                 "conditional branches\n";
    return exitStatus(specs, results);
}
