/**
 * @file
 * E9 - Sensitivity to the define-to-use distance: the corr-<d>
 * generator places a region-based branch exactly d filler
 * instructions after the predicate define that determines it. For
 * each (distance, availability delay) pair we report the squash rate
 * and the mispredict rate with SFPF+PGU. The expected crossover: the
 * techniques act exactly when distance exceeds the delay.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    const std::vector<unsigned> distances = {2, 4, 8, 16, 24, 32};
    const std::vector<unsigned> delays = {0, 4, 8, 16, 32};

    std::cout << "E9: squash rate by (define distance, avail delay)\n\n";

    // distances x delays. Each corr-<d> program compiles once and is
    // shared across all five delay cells.
    std::vector<RunSpec> specs;
    for (unsigned dist : distances) {
        for (unsigned delay : delays) {
            RunSpec spec;
            spec.workload = "corr-" + std::to_string(dist);
            spec.factory = [dist](std::uint64_t s) {
                return makeCorrWorkload(dist, s);
            };
            spec.engine.useSfpf = true;
            spec.engine.usePgu = true;
            spec.engine.availDelay = delay;
            spec.engine.pgu.delay = delay;
            spec.compile.heuristics = corrWorkloadHeuristics();
            spec.maxInsts = steps;
            spec.seed = seed;
            applyCheckpointOptions(spec, opts);
            specs.push_back(spec);
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    std::vector<std::string> header = {"distance"};
    for (unsigned d : delays)
        header.push_back("delay=" + std::to_string(d));
    Table squash_table(header);
    Table mispredict_table(header);

    std::size_t idx = 0;
    for (unsigned dist : distances) {
        squash_table.startRow();
        mispredict_table.startRow();
        squash_table.cell(std::uint64_t{dist});
        mispredict_table.cell(std::uint64_t{dist});
        for (std::size_t d = 0; d < delays.size(); ++d) {
            const EngineStats &stats = results[idx++].engine;
            squash_table.percentCell(
                stats.all.branches
                    ? static_cast<double>(stats.all.squashed) /
                        static_cast<double>(stats.all.branches)
                    : 0.0);
            mispredict_table.percentCell(stats.all.mispredictRate());
        }
    }

    emitTable(squash_table, opts);
    std::cout << "mispredict rate with SFPF+PGU at the same points:\n\n";
    emitTable(mispredict_table, opts);
    std::cout << "expected shape: both effects switch on once the "
                 "define distance\nexceeds the availability delay.\n";
    return exitStatus(specs, results);
}
