/**
 * @file
 * E5 - The predicate global update predictor across sizes: suite-mean
 * mispredict rate of gshare vs PGU-gshare, plus per-workload detail.
 * The expected shape: PGU recovers the correlation lost to
 * if-conversion, with the largest wins on workloads whose region
 * branches repeat earlier conditions (dchain, histogram, interp).
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    opts.declare("delay", "8", "history insertion delay (insts)");
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));
    unsigned delay = static_cast<unsigned>(opts.integer("delay"));

    std::cout << "E5: gshare vs PGU-gshare across sizes (delay="
              << delay << ")\n\n";

    const std::vector<unsigned> sizes = {8, 10, 12, 14, 16};
    Table sweep({"entries", "gshare", "PGU-gshare", "reduction"});
    for (unsigned size_log2 : sizes) {
        double sum_base = 0.0, sum_pgu = 0.0;
        for (const std::string &name : workloadNames()) {
            RunSpec base;
            base.sizeLog2 = size_log2;
            base.maxInsts = steps;
            base.seed = seed;
            applyCheckpointOptions(base, opts);
            sum_base += runTraceSpec(makeWorkload(name, seed), base)
                            .all.mispredictRate();

            RunSpec pgu = base;
            pgu.engine.usePgu = true;
            pgu.engine.pgu.delay = delay;
            sum_pgu += runTraceSpec(makeWorkload(name, seed), pgu)
                           .all.mispredictRate();
        }
        double n = static_cast<double>(workloadNames().size());
        sweep.startRow();
        sweep.cell(std::uint64_t{1} << size_log2);
        sweep.percentCell(sum_base / n);
        sweep.percentCell(sum_pgu / n);
        sweep.percentCell(sum_base > 0.0
                              ? (sum_base - sum_pgu) / sum_base
                              : 0.0,
                          1);
    }
    emitTable(sweep, opts);

    std::cout << "per-workload at 4K entries:\n\n";
    Table detail({"workload", "gshare", "PGU-gshare", "pgu-bits/kinst"});
    for (const std::string &name : workloadNames()) {
        RunSpec base;
        base.maxInsts = steps;
        base.seed = seed;
        applyCheckpointOptions(base, opts);
        EngineStats b = runTraceSpec(makeWorkload(name, seed), base);

        // PGU run needs direct engine access for the bit count.
        Workload wl = makeWorkload(name, seed);
        CompileOptions copts;
        CompiledProgram cp = compileWorkload(wl, copts);
        PredictorPtr pred = makePredictor("gshare", 12);
        EngineConfig ecfg;
        ecfg.usePgu = true;
        ecfg.pgu.delay = delay;
        PredictionEngine engine(*pred, ecfg);
        Emulator emu(cp.prog);
        if (wl.init)
            wl.init(emu.state());
        runTrace(emu, engine, steps);

        detail.startRow();
        detail.cell(name);
        detail.percentCell(b.all.mispredictRate());
        detail.percentCell(engine.stats().all.mispredictRate());
        detail.cell(1000.0 *
                        static_cast<double>(engine.pguBitsInserted()) /
                        static_cast<double>(engine.stats().insts),
                    1);
    }
    emitTable(detail, opts);
    return 0;
}
