/**
 * @file
 * E5 - The predicate global update predictor across sizes: suite-mean
 * mispredict rate of gshare vs PGU-gshare, plus per-workload detail.
 * The expected shape: PGU recovers the correlation lost to
 * if-conversion, with the largest wins on workloads whose region
 * branches repeat earlier conditions (dchain, histogram, interp).
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    opts.declare("delay", "8", "history insertion delay (insts)");
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));
    unsigned delay = static_cast<unsigned>(opts.integer("delay"));

    std::cout << "E5: gshare vs PGU-gshare across sizes (delay="
              << delay << ")\n\n";

    const std::vector<unsigned> sizes = {8, 10, 12, 14, 16};

    std::vector<RunSpec> specs;
    for (unsigned size_log2 : sizes) {
        for (const std::string &name : workloadNames()) {
            RunSpec base;
            base.workload = name;
            base.sizeLog2 = size_log2;
            base.maxInsts = steps;
            base.seed = seed;
            applyCheckpointOptions(base, opts);
            specs.push_back(base);

            RunSpec pgu = base;
            pgu.engine.usePgu = true;
            pgu.engine.pgu.delay = delay;
            specs.push_back(pgu);
        }
    }
    const std::size_t detail_offset = specs.size();
    for (const std::string &name : workloadNames()) {
        RunSpec base;
        base.workload = name;
        base.maxInsts = steps;
        base.seed = seed;
        applyCheckpointOptions(base, opts);
        specs.push_back(base);

        // The detail PGU run also reports inserted history bits
        // (RunResult::pguBits).
        RunSpec pgu = base;
        pgu.engine.usePgu = true;
        pgu.engine.pgu.delay = delay;
        specs.push_back(pgu);
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table sweep({"entries", "gshare", "PGU-gshare", "reduction"});
    std::size_t idx = 0;
    for (unsigned size_log2 : sizes) {
        double sum_base = 0.0, sum_pgu = 0.0;
        for (std::size_t w = 0; w < workloadNames().size(); ++w) {
            sum_base += results[idx++].engine.all.mispredictRate();
            sum_pgu += results[idx++].engine.all.mispredictRate();
        }
        double n = static_cast<double>(workloadNames().size());
        sweep.startRow();
        sweep.cell(std::uint64_t{1} << size_log2);
        sweep.percentCell(sum_base / n);
        sweep.percentCell(sum_pgu / n);
        sweep.percentCell(sum_base > 0.0
                              ? (sum_base - sum_pgu) / sum_base
                              : 0.0,
                          1);
    }
    emitTable(sweep, opts);

    std::cout << "per-workload at 4K entries:\n\n";
    Table detail({"workload", "gshare", "PGU-gshare", "pgu-bits/kinst"});
    idx = detail_offset;
    for (const std::string &name : workloadNames()) {
        const RunResult &b = results[idx++];
        const RunResult &p = results[idx++];

        detail.startRow();
        detail.cell(name);
        detail.percentCell(b.engine.all.mispredictRate());
        detail.percentCell(p.engine.all.mispredictRate());
        detail.cell(1000.0 * static_cast<double>(p.pguBits) /
                        static_cast<double>(p.engine.insts),
                    1);
    }
    emitTable(detail, opts);
    return exitStatus(specs, results);
}
