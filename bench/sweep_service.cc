/**
 * @file
 * SweepService implementation - see sweep_service.hh for the
 * partition / resume / execute / drain lifecycle and the byte-
 * convergence argument.
 */

#include "sweep_service.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace pabp::bench {

JournalRecord
recordForCell(const RunSpec &spec, const RunResult &result)
{
    JournalRecord rec;
    rec.fingerprint = specFingerprint(spec);
    rec.attempts = result.attempts;
    rec.statusCode = static_cast<std::uint8_t>(result.status.code());
    rec.columns.assign(NumSweepColumns, 0);
    if (result.status.ok()) {
        rec.kind = JournalRecord::Kind::Result;
        rec.columns[ColInsts] = result.engine.insts;
        rec.columns[ColBranches] = result.engine.all.branches;
        rec.columns[ColMispredicts] = result.engine.all.mispredicts;
        rec.columns[ColSquashed] = result.engine.all.squashed;
        rec.columns[ColPguBits] = result.pguBits;
        rec.columns[ColResumeFallback] = result.resumeFallback ? 1 : 0;
        rec.blob = result.metricsJson;
    } else {
        rec.kind = JournalRecord::Kind::Quarantine;
        rec.blob = result.status.toString();
    }
    return rec;
}

std::string
deriveShardJournalPath(const std::string &base, const ShardSpec &shard)
{
    if (shard.count <= 1)
        return base;
    const std::string tag = "-shard" + std::to_string(shard.index) +
        "of" + std::to_string(shard.count);
    const std::size_t slash = base.find_last_of('/');
    const std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return base + tag;
    }
    return base.substr(0, dot) + tag + base.substr(dot);
}

Expected<ServiceReport>
SweepService::runShard(std::vector<RunSpec> grid)
{
    ServiceReport report;
    if (config.shard.index >= std::max(1u, config.shard.count)) {
        return Status(StatusCode::InvalidArgument,
                      "shard index " +
                          std::to_string(config.shard.index) +
                          " out of range for " +
                          std::to_string(config.shard.count) +
                          " shards");
    }

    // Stamp the service knobs onto every cell and find the owned
    // subset, in grid (submission) order - the order the journal
    // commits in and the order drain-time compaction normalises to.
    std::vector<std::size_t> owned;
    std::vector<std::uint64_t> ownedOrder;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        grid[i].shard = config.shard;
        grid[i].captureMetrics = config.captureMetrics;
        const std::uint64_t fp = specFingerprint(grid[i]);
        if (shardOf(fp, config.shard.count) != config.shard.index)
            continue;
        owned.push_back(i);
        ownedOrder.push_back(fp);
    }
    report.ownedCells = owned.size();

    // Open (or adopt) the journal: torn tails truncate here.
    const JournalHeader header{config.shard.index, config.shard.count};
    std::vector<JournalRecord> existing;
    JournalReadInfo info;
    Expected<JournalWriter> writer =
        JournalWriter::open(config.journalPath, header, &existing, &info);
    if (!writer.ok())
        return writer.status();
    if (info.salvaged) {
        report.salvagedTail = true;
        pabp_warn("journal '" + config.journalPath + "': dropped " +
                  std::to_string(info.tailBytesDropped) +
                  " torn tail bytes; resuming from the valid prefix");
    }

    // The LAST record per fingerprint decides a cell's fate: a
    // successful Result is done; Quarantine (or nothing) runs.
    std::map<std::uint64_t, JournalRecord::Kind> last;
    for (const JournalRecord &rec : existing)
        last[rec.fingerprint] = rec.kind;
    std::vector<std::size_t> pending;
    for (std::size_t pos = 0; pos < owned.size(); ++pos) {
        auto it = last.find(ownedOrder[pos]);
        if (it != last.end() && it->second == JournalRecord::Kind::Result)
            ++report.alreadyDone;
        else
            pending.push_back(owned[pos]);
    }

    const std::uint64_t fallbacksBefore = runner.resumeFallbacks();
    const std::size_t batch = config.batchCells
        ? config.batchCells
        : std::max<std::size_t>(1, 4 * runner.effectiveJobs());

    for (std::size_t at = 0; at < pending.size() && !report.stopped;
         at += batch) {
        const std::size_t end = std::min(pending.size(), at + batch);
        std::vector<RunSpec> specs;
        specs.reserve(end - at);
        for (std::size_t k = at; k < end; ++k)
            specs.push_back(grid[pending[k]]);
        std::vector<RunResult> results = runner.run(specs);

        for (std::size_t k = 0; k < results.size(); ++k) {
            if (config.stopAfter &&
                report.committed >= config.stopAfter) {
                report.stopped = true;
                break;
            }
            ++report.executed;
            if (results[k].attempts > 1)
                ++report.retried;
            Status st =
                writer.value().append(recordForCell(specs[k], results[k]));
            if (!st.ok())
                return st;
            ++report.committed;
            if (config.compactEvery &&
                writer.value().recordsAppended() >= config.compactEvery) {
                // Compaction renames a new inode into place; the open
                // handle would go stale, so cycle it.
                writer.value().close();
                st = compactJournal(config.journalPath, ownedOrder);
                if (!st.ok())
                    return st;
                writer = JournalWriter::open(config.journalPath, header);
                if (!writer.ok())
                    return writer.status();
            }
        }
    }

    report.resumeFallbacks = runner.resumeFallbacks() - fallbacksBefore;
    writer.value().close();
    if (report.stopped)
        return report; // simulated kill: no drain, no compaction

    // Drained: every owned cell now has a record. The normalising
    // compaction makes interrupted and uninterrupted campaigns
    // byte-identical; re-reading the result (strict) both counts the
    // quarantined cells and proves the rewrite verifies.
    Status st = compactJournal(config.journalPath, ownedOrder);
    if (!st.ok())
        return st;
    Expected<std::vector<JournalRecord>> records =
        readJournalFile(config.journalPath);
    if (!records.ok())
        return records.status();
    for (const JournalRecord &rec : records.value()) {
        if (rec.kind == JournalRecord::Kind::Quarantine)
            ++report.quarantined;
    }
    report.drained = true;
    return report;
}

} // namespace pabp::bench
