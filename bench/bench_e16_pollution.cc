/**
 * @file
 * E16 - The pollution mechanism, made visible: gshare's pattern-table
 * entries are shared across branches by construction, and false-path
 * branches both consume lookups and train counters with their
 * (trivially not-taken) outcomes. With the squash filter armed those
 * branches never touch the table. This bench profiles entry-level
 * aliasing (lookups whose entry was last touched by a different
 * branch) with and without the filter, alongside the mispredict rate
 * of the *unfiltered* branches only - isolating the "cleaner tables"
 * effect from the "free not-taken predictions" effect.
 *
 * The --contexts axis (declareContextOptions) adds the OTHER
 * pollution source: with N > 1 the same tables additionally absorb
 * lookups and training from N-1 unrelated trace contexts
 * (core/multictx.hh), so the conflict counts separate same-stream
 * aliasing from cross-context aliasing under the identical filter
 * comparison.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    declareContextOptions(opts);
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));
    const ContextSpec context = contextSpecFromOptions(opts);

    std::cout << "E16: gshare table pollution with/without the filter "
                 "(4K entries";
    if (context.contexts > 1)
        std::cout << ", " << context.contexts << " contexts, "
                  << scheduleKindName(context.schedule);
    std::cout << ")\n\n";

    // workloads x {base, +SFPF}, both with conflict profiling on.
    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        RunSpec base;
        base.workload = name;
        base.profileConflicts = true;
        base.maxInsts = steps;
        base.seed = seed;
        base.context = context;
        specs.push_back(base);

        RunSpec with = base;
        with.engine.useSfpf = true;
        specs.push_back(with);
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"workload", "lookups(base)", "lookups(+SFPF)",
                 "conflicts(base)", "conflicts(+SFPF)",
                 "mispred(base)", "mispred(+SFPF)"});
    std::uint64_t totals[6] = {};
    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        const RunResult &base = results[idx++];
        const RunResult &with = results[idx++];
        table.startRow();
        table.cell(name);
        table.cell(base.lookups);
        table.cell(with.lookups);
        table.cell(base.conflicts);
        table.cell(with.conflicts);
        table.cell(base.engine.all.mispredicts);
        table.cell(with.engine.all.mispredicts);
        totals[0] += base.lookups;
        totals[1] += with.lookups;
        totals[2] += base.conflicts;
        totals[3] += with.conflicts;
        totals[4] += base.engine.all.mispredicts;
        totals[5] += with.engine.all.mispredicts;
    }
    table.startRow();
    table.cell(std::string("TOTAL"));
    for (std::uint64_t t : totals)
        table.cell(t);

    emitTable(table, opts);
    std::cout << "conflicts = lookups landing on an entry last touched "
                 "by a different\nbranch. The filter removes squashed "
                 "branches' lookups and training from\nthe table "
                 "entirely - roughly halving predictor traffic - and "
                 "cuts\nmispredicts in aggregate. (Per-workload "
                 "conflict counts can move either\nway because "
                 "squashing also changes the global history and thus "
                 "the\nindex stream.)\n";
    return exitStatus(specs, results);
}
