/**
 * @file
 * E20 - Does predicate information still help a TAGE-class predictor,
 * and specifically on the hard-to-predict branches? The paper's
 * SFPF/PGU numbers are against gshare-era baselines; the open
 * question (Lin & Tarsa, PAPERS.md; ROADMAP "Predicate information x
 * modern predictors") is whether the techniques survive a TAGE +
 * statistical corrector baseline, whose residual mispredicts
 * concentrate in a small H2P set.
 *
 * Grid: tage x {base, +SFPF, +PGU, +both} x suite workloads. Each
 * workload's BASE cell profile defines the H2P tiers (core/h2p.hh:
 * tier 0 = PCs covering the first 50% of residual mispredicts, tier 1
 * to 90%, tier 2 the rest); every variant's per-PC counters are then
 * re-aggregated over those same PC sets. Per-tier deltas go through
 * the metrics exporter into a byte-stable summary document (--h2p-out)
 * alongside the per-cell exports (--metrics-dir); metric names are in
 * docs/OBSERVABILITY.md.
 */

#include <sstream>

#include "common.hh"
#include "core/h2p.hh"
#include "util/metrics.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    opts.declare("size-log2", "12", "tage budget class (log2)");
    opts.declare("h2p-out", "BENCH_tage_h2p.json",
                 "aggregate H2P summary path (pabp.metrics JSON; "
                 "empty = skip)");
    opts.declare("h2p-cutoffs", "0.5,0.9",
                 "cumulative mispredict-share tier cutoffs "
                 "(comma-separated, strictly increasing, in (0,1))");
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));
    const unsigned size_log2 =
        static_cast<unsigned>(opts.integer("size-log2"));

    // Range/ordering problems surface later as classifyH2p's typed
    // InvalidArgument; only non-numeric text is rejected here.
    std::vector<double> cutoffs;
    {
        std::stringstream ss(opts.str("h2p-cutoffs"));
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (tok.empty())
                continue;
            try {
                cutoffs.push_back(std::stod(tok));
            } catch (const std::exception &) {
                std::cerr << "FAILED: --h2p-cutoffs: '" << tok
                          << "' is not a number\n";
                return 1;
            }
        }
    }
    const unsigned ntiers =
        static_cast<unsigned>(cutoffs.size()) + 1;

    struct Config
    {
        const char *label;
        bool sfpf;
        bool pgu;
    };
    const Config configs[] = {
        {"base", false, false},
        {"sfpf", true, false},
        {"pgu", false, true},
        {"both", true, true},
    };
    const std::size_t ncfg = std::size(configs);

    std::cout << "E20: SFPF/PGU on TAGE, by hard-to-predict tier "
                 "(tage-2^" << size_log2 << ")\n\n";

    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        for (const Config &config : configs) {
            RunSpec spec;
            spec.workload = name;
            spec.predictor = "tage";
            spec.sizeLog2 = size_log2;
            spec.maxInsts = steps;
            spec.seed = seed;
            spec.engine.useSfpf = config.sfpf;
            spec.engine.usePgu = config.pgu;
            applyCheckpointOptions(spec, opts);
            specs.push_back(spec);
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    MetricsExporter summary;
    summary.setText("h2p.predictor", "tage");
    summary.setInt("h2p.size_log2", size_log2);
    summary.setInt("h2p.steps", steps);

    Table table({"workload", "tier", "branches", "base misp",
                 "+sfpf d", "+pgu d", "+both d"});
    // Suite-level per-(config, tier) sums for the quick read.
    std::vector<std::vector<double>> suiteDelta(
        ncfg, std::vector<double>(ntiers, 0.0));

    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        const std::size_t base_idx = idx;
        const BranchProfile &baseline = results[base_idx].profile;
        const Expected<H2pClassification> classified =
            classifyH2p(baseline, cutoffs);
        if (!classified.ok()) {
            std::cerr << "FAILED: --h2p-cutoffs: "
                      << classified.status().toString() << "\n";
            return 1;
        }
        const H2pClassification &cls = classified.value();
        const std::string prefix = "h2p." + name;
        exportH2pClassification(summary, cls, prefix);

        std::vector<std::vector<H2pTierCounters>> perCfg;
        for (std::size_t c = 0; c < ncfg; ++c) {
            const std::vector<H2pTierCounters> tiers =
                aggregateByTier(cls, results[idx].profile);
            exportH2pVariant(summary, configs[c].label, cls, tiers,
                             prefix);
            perCfg.push_back(tiers);
            ++idx;
        }

        for (unsigned t = 0; t < cls.numTiers(); ++t) {
            table.startRow();
            table.cell(name);
            table.cell(std::string("t") + std::to_string(t));
            table.cell(cls.tierBranches[t]);
            table.cell(cls.tierMispredicts[t]);
            for (std::size_t c = 1; c < ncfg; ++c) {
                const double delta =
                    static_cast<double>(perCfg[c][t].mispredicts) -
                    static_cast<double>(cls.tierMispredicts[t]);
                table.cell(delta, 0);
            }
            for (std::size_t c = 0; c < ncfg; ++c)
                suiteDelta[c][t] +=
                    static_cast<double>(perCfg[c][t].mispredicts) -
                    static_cast<double>(cls.tierMispredicts[t]);
        }
    }

    for (std::size_t c = 0; c < ncfg; ++c)
        for (unsigned t = 0; t < ntiers; ++t)
            summary.setReal("h2p.suite." +
                                std::string(configs[c].label) +
                                ".tier" + std::to_string(t) +
                                ".mispredict_delta",
                            suiteDelta[c][t]);

    emitTable(table, opts);
    std::cout << "expected shape: negative deltas (fewer mispredicts) "
                 "concentrated in tier 0\n(the H2P set) - predicate "
                 "information attacks exactly the branches TAGE's\n"
                 "history tables keep missing; tier 2 is near zero "
                 "either way.\n";

    const std::string out = opts.str("h2p-out");
    if (!out.empty()) {
        Status written = summary.writeJsonFile(out);
        if (!written.ok()) {
            std::cerr << "FAILED: cannot write " << out << ": "
                      << written.toString() << "\n";
            return 1;
        }
    }
    return exitStatus(specs, results);
}
