/**
 * @file
 * E1 - Benchmark characterisation (the paper's workload table):
 * dynamic instruction counts in both compilation modes, conditional
 * branch density, the dynamic share of region-based branches, the
 * share of branches executed with a false guard (the squash filter's
 * theoretical ceiling), and predicate-define density.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    // Characterisation runs to halt so the predication overhead
    // (extra fetched instructions for the same work) is visible; the
    // --steps option is only a safety cap here.
    std::uint64_t steps = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(opts.integer("steps")), 40'000'000);
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    std::cout << "E1: workload characterisation (to halt, seed=" << seed
              << ")\n\n";

    Table table({"workload", "insts(branchy)", "insts(pred)",
                 "overhead", "cond-br(pred)", "region-br%",
                 "false-guard%", "pdefines/kinst", "static-regions"});

    for (const std::string &name : workloadNames()) {
        // Branchy instruction count.
        Workload wl_normal = makeWorkload(name, seed);
        CompileOptions nopts;
        nopts.ifConvert = false;
        CompiledProgram normal = compileWorkload(wl_normal, nopts);
        Emulator emu_n(normal.prog);
        if (wl_normal.init)
            wl_normal.init(emu_n.state());
        emu_n.run(steps);
        std::uint64_t branchy_insts = emu_n.instsExecuted();

        // Predicated run through the engine for classified counts.
        Workload wl = makeWorkload(name, seed);
        RunSpec spec;
        spec.maxInsts = steps;
        spec.seed = seed;
        applyCheckpointOptions(spec, opts);
        CompileOptions copts;
        CompiledProgram conv = compileWorkload(wl, copts);
        EngineStats stats = runTraceSpec(makeWorkload(name, seed), spec);

        table.startRow();
        table.cell(name);
        table.cell(branchy_insts);
        table.cell(stats.insts);
        table.cell(branchy_insts ? static_cast<double>(stats.insts) /
                       static_cast<double>(branchy_insts)
                                 : 0.0,
                   2);
        table.cell(stats.all.branches);
        table.percentCell(
            stats.all.branches
                ? static_cast<double>(stats.region.branches) /
                    static_cast<double>(stats.all.branches)
                : 0.0);
        table.percentCell(
            stats.all.branches
                ? static_cast<double>(stats.all.falseGuard) /
                    static_cast<double>(stats.all.branches)
                : 0.0);
        table.cell(1000.0 *
                       static_cast<double>(stats.predicateDefines) /
                       static_cast<double>(stats.insts),
                   1);
        table.cell(static_cast<std::uint64_t>(conv.info.numRegions));
    }

    emitTable(table, opts);
    std::cout << "region-br% = share of dynamic conditional branches "
                 "that are region-based\nfalse-guard% = share executed "
                 "with a false qualifying predicate (filter ceiling)\n";
    return 0;
}
