/**
 * @file
 * E1 - Benchmark characterisation (the paper's workload table):
 * dynamic instruction counts in both compilation modes, conditional
 * branch density, the dynamic share of region-based branches, the
 * share of branches executed with a false guard (the squash filter's
 * theoretical ceiling), and predicate-define density.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    // Characterisation runs to halt so the predication overhead
    // (extra fetched instructions for the same work) is visible; the
    // --steps option is only a safety cap here.
    std::uint64_t steps = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(opts.integer("steps")), 40'000'000);
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    std::cout << "E1: workload characterisation (to halt, seed=" << seed
              << ")\n\n";

    // Two cells per workload: the branchy binary run to halt (for
    // the instruction-count baseline) and the predicated run whose
    // engine stats fill the rest of the row.
    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        RunSpec branchy;
        branchy.workload = name;
        branchy.ifConvert = false;
        branchy.maxInsts = steps;
        branchy.seed = seed;
        specs.push_back(branchy);

        RunSpec pred;
        pred.workload = name;
        pred.maxInsts = steps;
        pred.seed = seed;
        applyCheckpointOptions(pred, opts);
        specs.push_back(pred);
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"workload", "insts(branchy)", "insts(pred)",
                 "overhead", "cond-br(pred)", "region-br%",
                 "false-guard%", "pdefines/kinst", "static-regions"});

    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        std::uint64_t branchy_insts = results[idx].engine.insts;
        const RunResult &pred = results[idx + 1];
        const EngineStats &stats = pred.engine;
        idx += 2;

        table.startRow();
        table.cell(name);
        table.cell(branchy_insts);
        table.cell(stats.insts);
        table.cell(branchy_insts ? static_cast<double>(stats.insts) /
                       static_cast<double>(branchy_insts)
                                 : 0.0,
                   2);
        table.cell(stats.all.branches);
        table.percentCell(
            stats.all.branches
                ? static_cast<double>(stats.region.branches) /
                    static_cast<double>(stats.all.branches)
                : 0.0);
        table.percentCell(
            stats.all.branches
                ? static_cast<double>(stats.all.falseGuard) /
                    static_cast<double>(stats.all.branches)
                : 0.0);
        table.cell(1000.0 *
                       static_cast<double>(stats.predicateDefines) /
                       static_cast<double>(stats.insts),
                   1);
        table.cell(pred.numRegions);
    }

    emitTable(table, opts);
    std::cout << "region-br% = share of dynamic conditional branches "
                 "that are region-based\nfalse-guard% = share executed "
                 "with a false qualifying predicate (filter ceiling)\n";
    return exitStatus(specs, results);
}
