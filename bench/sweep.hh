/**
 * @file
 * Deterministic parallel sweep runner for the experiment binaries.
 *
 * Every experiment is a grid of independent simulations: (workload,
 * predictor, size, engine config, compile config) cells whose results
 * are assembled into tables. SweepRunner executes such a grid across
 * a fixed-size worker pool and hands the results back IN SUBMISSION
 * ORDER, so every printed table and --csv file is byte-identical
 * regardless of thread count (--jobs 1 reproduces the old serial
 * behaviour bit for bit).
 *
 * Determinism contract (see docs/PARALLEL.md):
 *  - results are collected by submission index, never completion order;
 *  - every piece of mutable simulation state (Emulator, predictor,
 *    PredictionEngine, Pipeline, workload init closures, Rng streams)
 *    is constructed per run and touched by exactly one worker;
 *  - compiled programs are shared across runs strictly read-only,
 *    through a cache keyed by (workload id, compile-seed, compile
 *    options fingerprint) - a sweep that varies only the predictor
 *    side compiles each workload once.
 *
 * Failure contract: a cell that cannot run (unknown predictor or
 * workload, damaged checkpoint, leaked exception) fails THAT CELL
 * with a typed pabp::Status in its RunResult; the rest of the grid
 * completes. Nothing in the sweep layer calls pabp_fatal.
 */

#ifndef PABP_BENCH_SWEEP_HH
#define PABP_BENCH_SWEEP_HH

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "compiler/compile.hh"
#include "core/engine.hh"
#include "core/predictability.hh"
#include "pipeline/pipeline.hh"
#include "sim/context_schedule.hh"
#include "util/status.hh"
#include "workloads/workload.hh"

namespace pabp {
class GSharePredictor;
} // namespace pabp

namespace pabp::bench {

/** Builds a Workload from an input seed (memory image + profile). */
using WorkloadFactory = std::function<Workload(std::uint64_t seed)>;

/**
 * Deterministic fingerprint partitioning of a grid: cell @c fp
 * belongs to shard `shardOf(fp, count)`. Because the assignment is a
 * pure function of the spec fingerprint, any machine given the same
 * grid and the same `i/N` computes the same cell set - no coordinator
 * handshake, no shared state (docs/PARALLEL.md).
 */
struct ShardSpec
{
    std::uint32_t index = 0;
    std::uint32_t count = 1;

    bool operator==(const ShardSpec &) const = default;
};

/** Which shard owns the cell with fingerprint @p fingerprint. */
constexpr std::uint32_t
shardOf(std::uint64_t fingerprint, std::uint32_t count)
{
    return count > 1
        ? static_cast<std::uint32_t>(fingerprint % count)
        : 0;
}

/** Failure classes worth a bounded retry: transient environment
 *  errors (a flaky filesystem under the metrics/checkpoint writes).
 *  Everything else - bad specs, damaged artifacts, watchdog
 *  deadlines - is deterministic and goes straight to quarantine. */
constexpr bool
retryableStatus(StatusCode code)
{
    return code == StatusCode::IoError;
}

/** What kind of simulation a cell runs. */
enum class RunMode : std::uint8_t
{
    Trace, ///< prediction engine over the dynamic trace (EngineStats)
    Timed, ///< cycle-level pipeline run (PipelineStats + EngineStats)
    Observe, ///< step the emulator, call RunSpec::observe per DynInst
};

/**
 * Multi-context interleaving for one cell (core/multictx.hh, bench
 * E21). With contexts == 1 (the default) the cell runs the ordinary
 * single-stream loops and none of the other fields matter. With
 * contexts > 1 the cell replays N independent trace contexts -
 * context c's input seed is spec.seed + c over the same compiled
 * program - through ONE shared predictor. Trace mode only, and
 * incompatible with checkpoint/resume (the cell fails with
 * InvalidArgument). All fields are behaviour-defining and fold into
 * specFingerprint() when contexts > 1.
 */
struct ContextSpec
{
    unsigned contexts = 1;
    ScheduleKind schedule = ScheduleKind::RoundRobin;
    std::uint64_t quantum = 1024;   ///< slice events / burst midpoint
    std::uint64_t scheduleSeed = 1; ///< bursty draw seed
    /** Share global history (and BTB/RAS when modelled) across
     *  contexts; false = private per-context history, swapped around
     *  every slice. Tables always shared. */
    bool shared = true;
    /** Context-id bits mixed into table indices; 0 = pure sharing. */
    unsigned tagBits = 0;
};

/** One context's share of a multi-context cell's results. */
struct ContextCellResult
{
    EngineStats engine;
    BranchProfile profile;
    std::uint64_t pguBits = 0;
};

/** One experiment cell. */
struct RunSpec
{
    /**
     * Workload identity. With no factory, @p workload names a suite
     * member (workloads/workload.hh). With a factory, @p workload is
     * the cache/display id and MUST uniquely identify the program
     * the factory builds (e.g. "bias-0.70", not just "bias"): the
     * compiled-program cache trusts it.
     */
    std::string workload;
    WorkloadFactory factory;

    /** Measurement input seed (memory image for the measured run). */
    std::uint64_t seed = 42;
    /** Profiling/compilation input seed; defaults to @p seed. A
     *  different value gives SPEC-style train/ref cross-input runs. */
    std::optional<std::uint64_t> compileSeed;

    RunMode mode = RunMode::Trace;
    PipelineConfig pipeline; ///< Timed mode only

    std::string predictor = "gshare";
    unsigned sizeLog2 = 12;
    bool ifConvert = true;
    EngineConfig engine;
    CompileOptions compile;
    std::uint64_t maxInsts = 1'500'000;

    /** Multi-context interleaving; contexts == 1 = ordinary cell. */
    ContextSpec context;

    /**
     * Checkpoint/resume knobs (core/checkpoint.hh), Trace mode only.
     * Both paths are BASE names: the artifact actually written and
     * read is derivedCheckpointPath(base, specFingerprint(spec)) -
     * e.g. "pabp-<fp>.ckpt" - so every cell of a sweep checkpoints
     * to its own file and resumes from its own file. Resume is
     * best-effort per cell: a missing file or one whose fingerprint
     * belongs to another spec falls back to a fresh run; a damaged
     * file fails the cell with a typed error.
     */
    std::uint64_t checkpointEvery = 0; ///< instructions; 0 = off
    std::string checkpointPath = "pabp.ckpt";
    std::string resumePath;

    /** Count gshare pattern-table conflicts (predictor must be
     *  "gshare"); fills RunResult::lookups/conflicts. */
    bool profileConflicts = false;

    /**
     * Trace-mode execution strategy (docs/PERF.md): when true the
     * cell replays a shared pre-decoded trace through the batched
     * engine loop (PredictionEngine::processBatch) instead of
     * stepping its own emulator per instruction. Results - stats,
     * profile, exported metrics bytes - are identical either way
     * (pinned by tests/test_replay_fast.cc); only throughput
     * changes, so like the checkpoint/metrics knobs this is NOT part
     * of specFingerprint(). Checkpointing or resuming cells ignore
     * it and keep the reference emulator loop: mid-run checkpoints
     * serialise emulator state the decoded trace does not carry.
     */
    bool fastReplay = true;

    /**
     * When non-empty, every Trace/Timed cell exports its full metric
     * set (util/metrics.hh) to
     * "<metricsDir>/pabp-metrics-<16 hex fingerprint>.json" after the
     * run. The directory is created on demand; a cell that cannot
     * write its file FAILS with IoError (a sweep that silently lost
     * its measurements would be worse than one that failed loudly).
     * Purely observational - not part of specFingerprint(), exactly
     * like the checkpoint paths. Observe-mode cells have no engine
     * and export nothing.
     */
    std::string metricsDir;

    /**
     * Characterize the cell's conditional-branch stream with the
     * predictability analyzer (core/predictability.hh): the report
     * lands in RunResult::predictability and - when the cell exports
     * metrics - as "predictability.*" names in its document, with
     * the per-H2P-tier cross-reference against the cell's own
     * profile. The characterization reads the same shared decoded
     * trace the fast-replay path uses, over the same budget, so
     * fast and reference cells report byte-identical numbers.
     * Purely observational - NOT part of specFingerprint(), exactly
     * like metricsDir. Trace and Timed single-context cells only
     * (a multi-context cell has no single stream to characterize).
     */
    bool characterize = false;

    /** Observe mode: called for every dynamic instruction. The
     *  closure's state is owned by this spec alone - one worker. */
    std::function<void(const DynInst &)> observe;

    /**
     * @name Robust-execution knobs (docs/ROBUSTNESS.md)
     * Like the checkpoint/metrics knobs these are execution strategy,
     * not behaviour, and are NOT part of specFingerprint().
     * @{
     */

    /** Shard membership: when count > 1, a cell whose fingerprint
     *  maps to another shard is SKIPPED (RunResult::skipped, ok
     *  status, zero counters) so grids keep their index layout. */
    ShardSpec shard;

    /**
     * Per-attempt wall-clock watchdog, milliseconds; 0 = off. The
     * engine loops heartbeat every @ref heartbeatInsts instructions
     * and check the deadline between slices, so a cell stuck in a
     * pathological configuration (or a hung Observe closure) is
     * reaped with StatusCode::DeadlineExceeded instead of stalling
     * its worker forever. Covers Trace and Observe cells; a Timed
     * cell runs the cycle-level pipeline in one shot and is bounded
     * by its instruction budget alone.
     */
    std::uint32_t watchdogMillis = 0;
    /** Instructions between watchdog checks (the heartbeat grain).
     *  Chunking is unobservable in the results - the engine loops
     *  are exactly resumable - so this only trades check latency
     *  against loop overhead. */
    std::uint64_t heartbeatInsts = 1u << 16;

    /** Total tries for a cell whose failure is retryableStatus();
     *  1 = no retry. Each attempt rebuilds all per-run state. */
    unsigned maxAttempts = 1;
    /** Deterministic backoff before attempt k+1:
     *  retryBackoffMillis << (k-1) milliseconds. */
    std::uint32_t retryBackoffMillis = 0;

    /** Test-only fault injection: called at the start of every
     *  attempt; a non-Ok return fails that attempt with exactly that
     *  status (how the retry/quarantine tests simulate transient
     *  environment failures). */
    std::function<Status(unsigned attempt)> faultHook;

    /** Capture the cell's full metrics document (the same byte-stable
     *  JSON --metrics-dir would write) into RunResult::metricsJson,
     *  without touching the filesystem - the sweep service journals
     *  these bytes instead of scattering per-cell files. */
    bool captureMetrics = false;
    /** @} */
};

/** What one cell produced. */
struct RunResult
{
    Status status; ///< non-Ok: the cell failed, counters are zero
    EngineStats engine;
    PipelineStats pipe;       ///< Timed mode only
    BranchProfile profile;    ///< per-static-branch attribution
    std::uint64_t pguBits = 0;
    std::uint64_t lookups = 0;   ///< profileConflicts only
    std::uint64_t conflicts = 0; ///< profileConflicts only
    std::uint64_t numRegions = 0;        ///< static regions compiled
    std::uint64_t numRegionBranches = 0; ///< static side exits
    bool resumed = false; ///< continued from a matching checkpoint
    /** Resume was requested but fell back to a cold start (missing or
     *  configuration-mismatched checkpoint). Counted per runner in
     *  SweepRunner::resumeFallbacks() and warned about - a silently
     *  cold-started cell must be distinguishable from a fresh run. */
    bool resumeFallback = false;
    /** Cell belongs to another shard (RunSpec::shard) and did not
     *  execute; status is Ok and every counter is zero. */
    bool skipped = false;
    /** Attempts consumed (1 = first try succeeded or failed
     *  terminally; >1 = retries happened). */
    unsigned attempts = 1;
    /** RunSpec::captureMetrics output: the cell's metrics document,
     *  byte-identical to what --metrics-dir would have written. */
    std::string metricsJson;
    /** RunSpec::characterize output: the predictability report of
     *  the cell's branch stream (shared - several cells over the
     *  same workload reference one immutable report). */
    std::shared_ptr<const PredictabilityReport> predictability;
    /** Multi-context cells only: per-context stats/profile/PGU bits,
     *  indexed by context id. The top-level engine/pguBits fields
     *  hold the across-context aggregate; the top-level profile stays
     *  empty (per-PC attribution only makes sense per context - the
     *  same static PC is a different dynamic branch stream in each). */
    std::vector<ContextCellResult> contexts;
};

/**
 * 64-bit FNV-1a fingerprint over every behaviour-defining field of a
 * spec (workload id, seeds, mode, predictor, engine + compile
 * configuration, budget) - NOT over the checkpoint knobs themselves.
 * Two specs that would simulate differently get different prints;
 * the same spec resumed later reproduces its print exactly.
 */
std::uint64_t specFingerprint(const RunSpec &spec);

/** "results/pabp.ckpt" + 0xfp -> "results/pabp-<16 hex>.ckpt". */
std::string derivedCheckpointPath(const std::string &base,
                                  std::uint64_t fingerprint);

/** "<dir>/pabp-metrics-<16 hex fingerprint>.json" - where the cell
 *  with this fingerprint exports its metrics (RunSpec::metricsDir). */
std::string metricsFilePath(const std::string &dir,
                            std::uint64_t fingerprint);

/** Executes RunSpec grids over a worker pool. */
class SweepRunner
{
  public:
    struct Config
    {
        /** Worker threads; 0 = hardware concurrency, 1 = run the
         *  grid inline on the calling thread (strictly serial). */
        unsigned jobs = 0;
        /** Bounded work-queue depth; 0 = 2x workers. */
        std::size_t queueCapacity = 0;
    };

    struct CacheStats
    {
        std::uint64_t compiles = 0; ///< distinct programs built
        std::uint64_t hits = 0;     ///< runs served a cached program
        std::uint64_t records = 0;  ///< distinct traces decoded
        std::uint64_t traceHits = 0; ///< runs served a cached trace
    };

    SweepRunner() : SweepRunner(Config{}) {}
    explicit SweepRunner(Config config);

    /** Run every spec; results match @p specs index for index. */
    std::vector<RunResult> run(const std::vector<RunSpec> &specs);

    /** Execute one spec on the calling thread (cache still applies). */
    RunResult runOne(const RunSpec &spec);

    CacheStats cacheStats() const;
    unsigned effectiveJobs() const { return jobs; }

    /** Cells that requested a resume but cold-started instead (the
     *  "sweep.resume_fallbacks" stat; see RunResult::resumeFallback). */
    std::uint64_t resumeFallbacks() const;

  private:
    using ProgramHandle = std::shared_ptr<const CompiledProgram>;
    using TraceHandle = std::shared_ptr<const DecodedTrace>;
    using ReportHandle = std::shared_ptr<const PredictabilityReport>;

    RunResult executeSpec(const RunSpec &spec);
    /** One try: fault hook, then executeSpec under the exception
     *  backstop. */
    RunResult executeSpecAttempt(const RunSpec &spec, unsigned attempt);
    /** Shard filter + bounded retry loop around executeSpecAttempt. */
    RunResult executeSpecGuarded(const RunSpec &spec);
    void noteResumeFallback(const RunSpec &spec,
                            const std::string &resume_file,
                            const Status &status);
    Expected<ProgramHandle> compiledFor(const RunSpec &spec);
    /** The decoded-trace analogue of compiledFor(): the first
     *  requester of a (program, measurement seed, budget) key records
     *  and decodes the trace, everyone else blocks on the shared
     *  future and replays the same immutable lanes. @p seed is the
     *  measurement seed to record with - spec.seed for ordinary
     *  cells, spec.seed + c for context c of a multi-context cell. */
    Expected<TraceHandle> decodedFor(const RunSpec &spec,
                                     const ProgramHandle &program,
                                     std::uint64_t seed);
    /** RunSpec::characterize: one shared predictability report per
     *  (program, seed, budget) key, computed over the same decoded
     *  trace every replaying cell of that key consumes. */
    Expected<ReportHandle> characterizedFor(const RunSpec &spec,
                                            const ProgramHandle &program);
    /** Multi-context execution (RunSpec::context.contexts > 1):
     *  builds the per-context traces or emulators, drives the
     *  MultiContextReplayer, and fills the per-context and aggregate
     *  results. @p result arrives with the compile counters set. */
    RunResult executeMultiCtx(const RunSpec &spec,
                              const ProgramHandle &program,
                              BranchPredictor &pred,
                              GSharePredictor *gshare,
                              RunResult result);

    unsigned jobs;
    std::size_t queueCapacity;

    mutable std::mutex cacheMtx;
    std::map<std::string, std::shared_future<ProgramHandle>> cache;
    std::map<std::string, std::shared_future<TraceHandle>> traceCache;
    std::map<std::string, std::shared_future<ReportHandle>> predCache;
    CacheStats stats;
    std::uint64_t resumeFallbackCount = 0;
};

/**
 * Print every failed cell (index, workload, predictor, status) to
 * @p err and return the failure count - the binaries' exit status is
 * `reportFailures(...) ? 1 : 0`, so run_experiments.sh still notices
 * a broken cell while the rest of the grid's tables print normally.
 */
std::size_t reportFailures(const std::vector<RunSpec> &specs,
                           const std::vector<RunResult> &results,
                           std::ostream &err);

} // namespace pabp::bench

#endif // PABP_BENCH_SWEEP_HH
