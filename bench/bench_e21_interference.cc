/**
 * @file
 * E21 - Shared-predictor interference across trace contexts. An SMT
 * front end interleaves several independent instruction streams
 * through one set of predictor tables; each stream both loses its own
 * trained entries to the others and inherits theirs. This bench
 * measures how much accuracy each context loses as the context count
 * grows, how the interleaving shape (regular round-robin vs seeded
 * bursts) and the history-sharing policy change that loss, and
 * whether predicate information (SFPF/PGU) still helps - and still
 * helps the HARD branches specifically - when the tables are under
 * cross-context pressure.
 *
 * Grid per workload: {base, +SFPF, +PGU, +both} x cells
 * {N=1 baseline} u {N in {2,4}} x {rr, bursty} x {shared, partitioned
 * history}. The N=1 cell is the interference-free reference for its
 * config: per-context degradation is that context's mispredict rate
 * minus the N=1 rate. H2P tiers are classified once per workload from
 * the N=1 base-config profile (core/h2p.hh) and every cell's
 * per-context profiles are re-aggregated over those PC sets, so "the
 * interference lands on the hard branches" has a numeric answer.
 *
 * Summary JSON (--out, default BENCH_interference.json) keys:
 *   itf.<wl>.<cfg>.<cell>.mispredict_rate      aggregate over contexts
 *   itf.<wl>.<cfg>.<cell>.degradation          rate - N=1 rate
 *   itf.<wl>.<cfg>.<cell>.ctx<K>.mispredict_rate / .degradation
 *   itf.<wl>.<cfg>.<cell>.tier<T>.mispredicts  mean per context
 * where <cell> is "n<N>.<rr|bursty>.<shared|part>" ("n1" for the
 * baseline). Per-cell metric files additionally carry the ctx<K>.*
 * block documented in docs/OBSERVABILITY.md.
 */

#include <vector>

#include "common.hh"
#include "core/h2p.hh"
#include "util/metrics.hh"

using namespace pabp;
using namespace pabp::bench;

namespace {

/** The per-context profiles of a cell: the top-level profile for an
 *  ordinary N=1 cell, the per-context ones for a multi-context cell. */
std::vector<const BranchProfile *>
profilesOf(const RunResult &result)
{
    std::vector<const BranchProfile *> out;
    if (result.contexts.empty()) {
        out.push_back(&result.profile);
    } else {
        for (const ContextCellResult &ctx : result.contexts)
            out.push_back(&ctx.profile);
    }
    return out;
}

/** Per-context mispredict rates (one entry for an N=1 cell). */
std::vector<double>
ratesOf(const RunResult &result)
{
    std::vector<double> out;
    if (result.contexts.empty()) {
        out.push_back(result.engine.all.mispredictRate());
    } else {
        for (const ContextCellResult &ctx : result.contexts)
            out.push_back(ctx.engine.all.mispredictRate());
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    declareContextOptions(opts);
    opts.declare("predictor", "gshare",
                 "shared predictor under interference");
    opts.declare("size-log2", "12", "predictor budget class (log2)");
    opts.declare("out", "BENCH_interference.json",
                 "interference summary path (pabp.metrics JSON; "
                 "empty = skip)");
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));
    const std::string predictor = opts.str("predictor");
    const unsigned size_log2 =
        static_cast<unsigned>(opts.integer("size-log2"));
    // --ctx-quantum/--ctx-seed/--ctx-tag-bits shape every
    // multi-context cell; --contexts/--ctx-schedule/--ctx-shared are
    // grid axes here and are ignored.
    const ContextSpec knobs = contextSpecFromOptions(opts);

    struct Config
    {
        const char *label;
        bool sfpf;
        bool pgu;
    };
    const Config configs[] = {
        {"base", false, false},
        {"sfpf", true, false},
        {"pgu", false, true},
        {"both", true, true},
    };
    const std::size_t ncfg = std::size(configs);

    /** One point of the interference grid; contexts == 1 is the
     *  interference-free baseline (schedule/sharing are degenerate
     *  there, so only one N=1 cell runs per config). */
    struct Cell
    {
        unsigned contexts;
        ScheduleKind sched;
        bool shared;
        std::string
        label() const
        {
            if (contexts == 1)
                return "n1";
            return "n" + std::to_string(contexts) + "." +
                scheduleKindName(sched) + (shared ? ".shared" : ".part");
        }
    };
    std::vector<Cell> cells;
    cells.push_back({1, ScheduleKind::RoundRobin, true});
    for (unsigned n : {2u, 4u})
        for (ScheduleKind sched :
             {ScheduleKind::RoundRobin, ScheduleKind::Bursty})
            for (bool shared : {true, false})
                cells.push_back({n, sched, shared});
    const std::size_t ncell = cells.size();

    std::cout << "E21: shared-predictor interference across contexts ("
              << predictor << "-2^" << size_log2 << ", quantum "
              << knobs.quantum << ", tag bits " << knobs.tagBits
              << ")\n\n";

    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        for (const Config &config : configs) {
            for (const Cell &cell : cells) {
                RunSpec spec;
                spec.workload = name;
                spec.predictor = predictor;
                spec.sizeLog2 = size_log2;
                spec.maxInsts = steps;
                spec.seed = seed;
                spec.engine.useSfpf = config.sfpf;
                spec.engine.usePgu = config.pgu;
                spec.context.contexts = cell.contexts;
                spec.context.schedule = cell.sched;
                spec.context.shared = cell.shared;
                spec.context.quantum = knobs.quantum;
                spec.context.scheduleSeed = knobs.scheduleSeed;
                spec.context.tagBits = knobs.tagBits;
                specs.push_back(spec);
            }
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    MetricsExporter summary;
    summary.setText("itf.predictor", predictor);
    summary.setInt("itf.size_log2", size_log2);
    summary.setInt("itf.steps", steps);
    summary.setInt("itf.quantum", knobs.quantum);
    summary.setInt("itf.tag_bits", knobs.tagBits);

    Table table({"workload", "config", "cell", "misp rate", "d(rate)",
                 "worst ctx d", "tier0 misp/ctx"});

    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        // H2P tiers come from this workload's interference-free
        // base-config profile (cell 0 of config 0).
        const Expected<H2pClassification> classified =
            classifyH2p(results[idx].profile);
        if (!classified.ok()) {
            std::cerr << "FAILED: " << name << ": "
                      << classified.status().toString() << "\n";
            return 1;
        }
        const H2pClassification &cls = classified.value();
        exportH2pClassification(summary, cls, "itf." + name + ".h2p");

        for (const Config &config : configs) {
            const double baseRate =
                results[idx].engine.all.mispredictRate();
            for (std::size_t k = 0; k < ncell; ++k, ++idx) {
                const RunResult &r = results[idx];
                if (!r.status.ok())
                    continue; // reported by exitStatus below
                const std::string prefix = "itf." + name + "." +
                    config.label + "." + cells[k].label() + ".";
                const double rate = r.engine.all.mispredictRate();
                summary.setReal(prefix + "mispredict_rate", rate);
                summary.setReal(prefix + "degradation",
                                rate - baseRate);

                const std::vector<double> rates = ratesOf(r);
                double worst = 0.0;
                for (std::size_t c = 0; c < rates.size(); ++c) {
                    summary.setReal(prefix + "ctx" + std::to_string(c) +
                                        ".mispredict_rate",
                                    rates[c]);
                    summary.setReal(prefix + "ctx" + std::to_string(c) +
                                        ".degradation",
                                    rates[c] - baseRate);
                    worst = std::max(worst, rates[c] - baseRate);
                }

                // Mean per-context tier mispredicts over the N=1
                // base-config tier sets: comparable to
                // cls.tierMispredicts[t] whatever the context count.
                std::vector<double> tierMean(cls.numTiers(), 0.0);
                const auto profiles = profilesOf(r);
                for (const BranchProfile *profile : profiles) {
                    const auto tiers = aggregateByTier(cls, *profile);
                    for (unsigned t = 0; t < cls.numTiers(); ++t)
                        tierMean[t] +=
                            static_cast<double>(tiers[t].mispredicts);
                }
                for (unsigned t = 0; t < cls.numTiers(); ++t) {
                    tierMean[t] /=
                        static_cast<double>(profiles.size());
                    summary.setReal(prefix + "tier" +
                                        std::to_string(t) +
                                        ".mispredicts",
                                    tierMean[t]);
                }

                table.startRow();
                table.cell(name);
                table.cell(std::string(config.label));
                table.cell(cells[k].label());
                table.cell(rate, 4);
                table.cell(rate - baseRate, 4);
                table.cell(worst, 4);
                table.cell(tierMean[0], 0);
            }
        }
    }

    emitTable(table, opts);
    std::cout << "degradation = mispredict rate minus the same "
                 "config's interference-free\n(n1) rate. The contexts "
                 "are independent input seeds of the SAME workload,\nso "
                 "two forces compete: constructive table sharing (N "
                 "co-runners train the\nsame static branches) pulls "
                 "degradation negative, destructive history/"
                 "\ncorrelation interference pulls it positive. Shared "
                 "history is consistently\nworse than partitioned at "
                 "equal N, and SFPF/PGU keep their sign under\n"
                 "pressure: filtered tables alias less across contexts "
                 "too.\n";

    const std::string out = opts.str("out");
    if (!out.empty()) {
        Status written = summary.writeJsonFile(out);
        if (!written.ok()) {
            std::cerr << "FAILED: cannot write " << out << ": "
                      << written.toString() << "\n";
            return 1;
        }
    }
    return exitStatus(specs, results);
}
