/**
 * @file
 * E14 - Extension: speculative squash via predicate value prediction.
 * The filter proper only acts on resolved guards (100% accurate);
 * this extension predicts unresolved guards with a confidence-gated
 * counter table and squashes speculatively, trading coverage for a
 * small error rate. Reported: coverage gained, wrong-squash rate,
 * net mispredict change - per availability delay, where larger delays
 * leave more guards unresolved and give the extension more room.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    const std::vector<unsigned> delays = {4, 8, 16, 32, 64};

    std::cout << "E14: speculative squash extension (gshare-4K, suite "
                 "means)\n\n";

    // delays x workloads x {filter only, +spec, +spec JRS-gated}.
    std::vector<RunSpec> specs;
    for (unsigned delay : delays) {
        for (const std::string &name : workloadNames()) {
            RunSpec base;
            base.workload = name;
            base.engine.useSfpf = true;
            base.engine.availDelay = delay;
            base.maxInsts = steps;
            base.seed = seed;
            applyCheckpointOptions(base, opts);
            specs.push_back(base);

            RunSpec spec = base;
            spec.engine.useSpeculativeSquash = true;
            specs.push_back(spec);

            RunSpec jrs_spec = spec;
            jrs_spec.engine.specGate = EngineConfig::SpecGate::Jrs;
            specs.push_back(jrs_spec);
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"delay", "squash%(filter)", "spec-squash%",
                 "spec-wrong%", "mispred(filter)", "mispred(+spec)",
                 "mispred(+spec,JRS)"});

    std::size_t idx = 0;
    for (unsigned delay : delays) {
        double sum_sq = 0.0, sum_spec = 0.0, sum_wrong = 0.0;
        double sum_rate_base = 0.0, sum_rate_spec = 0.0;
        double sum_rate_jrs = 0.0;
        for (std::size_t w = 0; w < workloadNames().size(); ++w) {
            const EngineStats &b = results[idx++].engine;
            const EngineStats &s = results[idx++].engine;
            const EngineStats &j = results[idx++].engine;
            sum_rate_jrs += j.all.mispredictRate();

            double branches = static_cast<double>(b.all.branches);
            sum_sq += branches
                ? static_cast<double>(b.all.squashed) / branches
                : 0.0;
            double s_branches = static_cast<double>(s.all.branches);
            sum_spec += s_branches
                ? static_cast<double>(s.specSquashed) / s_branches
                : 0.0;
            sum_wrong += s.specSquashed
                ? static_cast<double>(s.specSquashedWrong) /
                    static_cast<double>(s.specSquashed)
                : 0.0;
            sum_rate_base += b.all.mispredictRate();
            sum_rate_spec += s.all.mispredictRate();
        }
        double n = static_cast<double>(workloadNames().size());
        table.startRow();
        table.cell(std::uint64_t{delay});
        table.percentCell(sum_sq / n);
        table.percentCell(sum_spec / n);
        table.percentCell(sum_wrong / n);
        table.percentCell(sum_rate_base / n);
        table.percentCell(sum_rate_spec / n);
        table.percentCell(sum_rate_jrs / n);
    }

    emitTable(table, opts);
    std::cout << "spec-wrong% = wrongly squashed (taken) share of "
                 "speculative squashes;\nthese become branch "
                 "mispredicts, unlike the filter's certain ones.\n";
    return exitStatus(specs, results);
}
