/**
 * @file
 * Shared harness for the experiment binaries (E1-E19). The per-cell
 * simulation logic lives in bench/sweep.{hh,cc}: every binary builds
 * a grid of RunSpecs, executes it through SweepRunner (parallel
 * across --jobs workers, deterministic output), and assembles the
 * tables from the ordered results.
 *
 * Every binary accepts --steps, --seed, --csv, --jobs and the
 * checkpoint options; experiment-specific knobs are declared per
 * binary.
 */

#ifndef PABP_BENCH_COMMON_HH
#define PABP_BENCH_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>

#include "sweep.hh"
#include "util/options.hh"
#include "util/table.hh"

namespace pabp::bench {

/** Standard option block shared by all experiment binaries. */
inline Options
standardOptions()
{
    Options opts;
    opts.declare("steps", "1500000", "instructions per run");
    opts.declare("seed", "42", "workload input seed");
    opts.declare("csv", "0", "also print CSV");
    opts.declare("jobs", "0",
                 "parallel sweep workers (0 = hardware concurrency; "
                 "output is identical at any value)");
    opts.declare("checkpoint-every", "0",
                 "checkpoint every N instructions (0 = off)");
    opts.declare("checkpoint-file", "pabp.ckpt",
                 "base checkpoint path for --checkpoint-every (each "
                 "run derives pabp-<fingerprint>.ckpt from it)");
    opts.declare("resume", "",
                 "base checkpoint path to resume each run from");
    opts.declare("metrics-dir", "",
                 "export per-cell metrics JSON into this directory "
                 "(pabp-metrics-<fingerprint>.json; empty = off)");
    opts.declare("fast-replay", "1",
                 "Trace cells replay a shared pre-decoded trace "
                 "through the batched engine loop (docs/PERF.md); "
                 "results are identical, only faster");
    opts.declare("no-fast-replay", "0",
                 "force the reference per-instruction loop "
                 "(overrides --fast-replay)");
    opts.declare("shard", "0/1",
                 "run only the cells shard i of N owns ('i/N'); "
                 "other cells are skipped in place, keeping table "
                 "layout (docs/PARALLEL.md)");
    opts.declare("max-attempts", "1",
                 "total tries per cell for retryable (IoError) "
                 "failures; 1 = no retry");
    opts.declare("backoff-ms", "0",
                 "deterministic retry backoff base, milliseconds "
                 "(doubles per attempt)");
    opts.declare("watchdog-ms", "0",
                 "per-attempt wall-clock deadline, ms (0 = off); an "
                 "overrunning cell fails with DeadlineExceeded");
    opts.declare("heartbeat-insts", "65536",
                 "instructions between watchdog deadline checks");
    opts.declare("characterize", "0",
                 "compute workload predictability metrics per cell "
                 "(taken/transition rates, history-conditioned "
                 "entropy; exported as predictability.* with the "
                 "metrics document)");
    return opts;
}

/** Parse the standard --shard option ('i/N'). Malformed values are
 *  fatal - this is the CLI shim layer (util/status.hh). */
inline ShardSpec
shardFromOptions(const Options &opts)
{
    const std::string text = opts.str("shard");
    ShardSpec shard;
    const std::size_t slash = text.find('/');
    bool ok = slash != std::string::npos && slash > 0 &&
        slash + 1 < text.size();
    if (ok) {
        try {
            std::size_t used = 0;
            const unsigned long i =
                std::stoul(text.substr(0, slash), &used);
            ok = used == slash;
            const std::string count = text.substr(slash + 1);
            const unsigned long n = std::stoul(count, &used);
            ok = ok && used == count.size() && n > 0 && i < n;
            shard.index = static_cast<std::uint32_t>(i);
            shard.count = static_cast<std::uint32_t>(n);
        } catch (const std::exception &) {
            ok = false;
        }
    }
    if (!ok)
        pabp_fatal("bad --shard '" + text + "' (want 'i/N', i < N)");
    return shard;
}

/** Copy the robust-execution options (shard, retry, watchdog) into a
 *  run spec. */
inline void
applyRobustnessOptions(RunSpec &spec, const Options &opts)
{
    spec.shard = shardFromOptions(opts);
    spec.maxAttempts =
        std::max<std::int64_t>(1, opts.integer("max-attempts"));
    spec.retryBackoffMillis =
        static_cast<std::uint32_t>(opts.integer("backoff-ms"));
    spec.watchdogMillis =
        static_cast<std::uint32_t>(opts.integer("watchdog-ms"));
    spec.heartbeatInsts = std::max<std::int64_t>(
        1, opts.integer("heartbeat-insts"));
}

/** Effective --fast-replay value: the parser has no native --no-X
 *  negation, so the off switch is its own declared flag. */
inline bool
fastReplayFromOptions(const Options &opts)
{
    return opts.flag("fast-replay") && !opts.flag("no-fast-replay");
}

/** Declare the multi-context replay options (bench E21 and any
 *  binary growing a contexts axis). Declared separately from
 *  standardOptions() so single-stream binaries keep a small --help. */
inline void
declareContextOptions(Options &opts)
{
    opts.declare("contexts", "1",
                 "independent trace contexts interleaved through the "
                 "shared predictor (1 = ordinary single-stream run)");
    opts.declare("ctx-schedule", "rr",
                 "context interleaving: 'rr' (round-robin) or "
                 "'bursty' (seeded random bursts)");
    opts.declare("ctx-quantum", "1024",
                 "events per round-robin slice (burst midpoint for "
                 "--ctx-schedule bursty)");
    opts.declare("ctx-seed", "1", "bursty schedule draw seed");
    opts.declare("ctx-shared", "1",
                 "share global history (and BTB/RAS when modelled) "
                 "across contexts; 0 = private per-context history");
    opts.declare("ctx-tag-bits", "0",
                 "context-id bits mixed into shared table indices "
                 "(0 = pure sharing)");
}

/** Parse the declareContextOptions() block into a ContextSpec. A bad
 *  --ctx-schedule is fatal here (CLI shim layer, util/status.hh). */
inline ContextSpec
contextSpecFromOptions(const Options &opts)
{
    ContextSpec ctx;
    ctx.contexts = static_cast<unsigned>(
        std::max<std::int64_t>(1, opts.integer("contexts")));
    Expected<ScheduleKind> kind =
        parseScheduleKind(opts.str("ctx-schedule"));
    if (!kind.ok())
        pabp_fatal("bad --ctx-schedule: " +
                   kind.status().toString());
    ctx.schedule = kind.value();
    ctx.quantum = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, opts.integer("ctx-quantum")));
    ctx.scheduleSeed =
        static_cast<std::uint64_t>(opts.integer("ctx-seed"));
    ctx.shared = opts.flag("ctx-shared");
    ctx.tagBits =
        static_cast<unsigned>(opts.integer("ctx-tag-bits"));
    return ctx;
}

/** Copy the standard checkpoint + metrics + replay-strategy options
 *  into a run spec. */
inline void
applyCheckpointOptions(RunSpec &spec, const Options &opts)
{
    spec.checkpointEvery =
        static_cast<std::uint64_t>(opts.integer("checkpoint-every"));
    spec.checkpointPath = opts.str("checkpoint-file");
    spec.resumePath = opts.str("resume");
    spec.metricsDir = opts.str("metrics-dir");
    spec.fastReplay = fastReplayFromOptions(opts);
    spec.characterize = opts.flag("characterize");
    applyRobustnessOptions(spec, opts);
}

/** Fill RunSpec::metricsDir, the replay strategy and the robustness
 *  knobs on a whole grid, for binaries that do not route specs
 *  through applyCheckpointOptions. */
inline void
applyMetricsOptions(std::vector<RunSpec> &specs, const Options &opts)
{
    const std::string dir = opts.str("metrics-dir");
    const bool fast = fastReplayFromOptions(opts);
    const bool characterize = opts.flag("characterize");
    for (RunSpec &spec : specs) {
        spec.metricsDir = dir;
        spec.fastReplay = fast;
        spec.characterize = characterize;
        applyRobustnessOptions(spec, opts);
    }
}

/** Build the runner config from the standard --jobs option. */
inline SweepRunner::Config
sweepConfigFromOptions(const Options &opts)
{
    SweepRunner::Config cfg;
    cfg.jobs = static_cast<unsigned>(opts.integer("jobs"));
    return cfg;
}

/** Print the table, optionally followed by CSV. */
inline void
emitTable(const Table &table, const Options &opts)
{
    table.print(std::cout);
    if (opts.flag("csv")) {
        std::cout << "\n-- csv --\n";
        table.printCsv(std::cout);
    }
    std::cout << "\n";
}

/**
 * Exit status for a finished grid: report failed cells on stderr and
 * return nonzero when any cell failed, so run_experiments.sh treats
 * a partially-failed binary as a failed run even though every
 * healthy cell's numbers were still printed.
 */
inline int
exitStatus(const std::vector<RunSpec> &specs,
           const std::vector<RunResult> &results)
{
    return reportFailures(specs, results, std::cerr) ? 1 : 0;
}

} // namespace pabp::bench

#endif // PABP_BENCH_COMMON_HH
