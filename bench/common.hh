/**
 * @file
 * Shared harness for the experiment binaries (E1-E10): compile a
 * workload in either mode, drive it through a prediction engine (and
 * optionally the pipeline), and collect the stats the tables print.
 *
 * Every binary accepts --steps, --seed and --csv; experiment-specific
 * knobs are declared per binary.
 */

#ifndef PABP_BENCH_COMMON_HH
#define PABP_BENCH_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>

#include "bpred/factory.hh"
#include "core/checkpoint.hh"
#include "core/engine.hh"
#include "pipeline/pipeline.hh"
#include "sim/emulator.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

namespace pabp::bench {

/** One experiment run specification. */
struct RunSpec
{
    std::string predictor = "gshare";
    unsigned sizeLog2 = 12;
    bool ifConvert = true;
    EngineConfig engine;
    CompileOptions compile;
    std::uint64_t maxInsts = 1'500'000;
    std::uint64_t seed = 42;

    /** Checkpoint/resume knobs (see core/checkpoint.hh). A killed
     *  experiment restarted with resumePath continues from its last
     *  checkpoint instead of re-simulating from scratch. Resume is
     *  best-effort per run: a checkpoint whose fingerprint does not
     *  match this spec (it belongs to another run of the sweep)
     *  falls back to a fresh run; a damaged checkpoint is fatal. */
    std::uint64_t checkpointEvery = 0; ///< instructions; 0 = off
    std::string checkpointPath = "pabp.ckpt";
    std::string resumePath;
};

/** Trace-driven run: returns the engine stats. */
inline EngineStats
runTraceSpec(Workload wl, const RunSpec &spec)
{
    CompileOptions copts = spec.compile;
    copts.ifConvert = spec.ifConvert;
    CompiledProgram cp = compileWorkload(wl, copts);

    PredictorPtr pred = makePredictor(spec.predictor, spec.sizeLog2);
    PredictionEngine engine(*pred, spec.engine);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());

    std::uint64_t done = 0;
    if (!spec.resumePath.empty()) {
        CheckpointRefs refs{&emu, &engine, &done};
        Status status = loadCheckpoint(spec.resumePath, refs);
        if (status.code() == StatusCode::InvalidArgument) {
            // Sweep binaries pass --resume to every run; the
            // checkpoint fingerprint only matches the run that was
            // interrupted. Any other run starts fresh (the failed
            // load may have scribbled on this emulator/engine, so
            // rebuild from scratch).
            RunSpec fresh = spec;
            fresh.resumePath.clear();
            return runTraceSpec(std::move(wl), fresh);
        }
        if (!status.ok())
            pabp_fatal(status.toString());
    }
    if (spec.checkpointEvery == 0) {
        runTrace(emu, engine,
                 spec.maxInsts - std::min(done, spec.maxInsts));
    } else {
        while (done < spec.maxInsts) {
            std::uint64_t chunk =
                std::min(spec.checkpointEvery, spec.maxInsts - done);
            std::uint64_t ran = runTrace(emu, engine, chunk);
            done += ran;
            CheckpointRefs refs{&emu, &engine, &done};
            Status status = saveCheckpoint(spec.checkpointPath, refs);
            if (!status.ok())
                pabp_fatal(status.toString());
            if (ran < chunk)
                break; // workload halted before the budget
        }
    }
    return engine.stats();
}

/** Timing run: returns pipeline + engine stats. */
struct TimedResult
{
    PipelineStats pipe;
    EngineStats engine;
};

inline TimedResult
runTimedSpec(Workload wl, const RunSpec &spec,
             const PipelineConfig &pcfg)
{
    CompileOptions copts = spec.compile;
    copts.ifConvert = spec.ifConvert;
    CompiledProgram cp = compileWorkload(wl, copts);

    PredictorPtr pred = makePredictor(spec.predictor, spec.sizeLog2);
    PredictionEngine engine(*pred, spec.engine);
    Pipeline pipe(engine, pcfg);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    TimedResult result;
    result.pipe = pipe.run(emu, spec.maxInsts);
    result.engine = engine.stats();
    return result;
}

/** Standard option block shared by all experiment binaries. */
inline Options
standardOptions()
{
    Options opts;
    opts.declare("steps", "1500000", "instructions per run");
    opts.declare("seed", "42", "workload input seed");
    opts.declare("csv", "0", "also print CSV");
    opts.declare("checkpoint-every", "0",
                 "checkpoint every N instructions (0 = off)");
    opts.declare("checkpoint-file", "pabp.ckpt",
                 "checkpoint path for --checkpoint-every");
    opts.declare("resume", "", "resume from a checkpoint file");
    return opts;
}

/** Copy the standard checkpoint options into a run spec. */
inline void
applyCheckpointOptions(RunSpec &spec, const Options &opts)
{
    spec.checkpointEvery =
        static_cast<std::uint64_t>(opts.integer("checkpoint-every"));
    spec.checkpointPath = opts.str("checkpoint-file");
    spec.resumePath = opts.str("resume");
}

/** Print the table, optionally followed by CSV. */
inline void
emitTable(const Table &table, const Options &opts)
{
    table.print(std::cout);
    if (opts.flag("csv")) {
        std::cout << "\n-- csv --\n";
        table.printCsv(std::cout);
    }
    std::cout << "\n";
}

} // namespace pabp::bench

#endif // PABP_BENCH_COMMON_HH
