/**
 * @file
 * Shared harness for the experiment binaries (E1-E10): compile a
 * workload in either mode, drive it through a prediction engine (and
 * optionally the pipeline), and collect the stats the tables print.
 *
 * Every binary accepts --steps, --seed and --csv; experiment-specific
 * knobs are declared per binary.
 */

#ifndef PABP_BENCH_COMMON_HH
#define PABP_BENCH_COMMON_HH

#include <cstdint>
#include <iostream>
#include <string>

#include "bpred/factory.hh"
#include "core/engine.hh"
#include "pipeline/pipeline.hh"
#include "sim/emulator.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

namespace pabp::bench {

/** One experiment run specification. */
struct RunSpec
{
    std::string predictor = "gshare";
    unsigned sizeLog2 = 12;
    bool ifConvert = true;
    EngineConfig engine;
    CompileOptions compile;
    std::uint64_t maxInsts = 1'500'000;
    std::uint64_t seed = 42;
};

/** Trace-driven run: returns the engine stats. */
inline EngineStats
runTraceSpec(Workload wl, const RunSpec &spec)
{
    CompileOptions copts = spec.compile;
    copts.ifConvert = spec.ifConvert;
    CompiledProgram cp = compileWorkload(wl, copts);

    PredictorPtr pred = makePredictor(spec.predictor, spec.sizeLog2);
    PredictionEngine engine(*pred, spec.engine);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    runTrace(emu, engine, spec.maxInsts);
    return engine.stats();
}

/** Timing run: returns pipeline + engine stats. */
struct TimedResult
{
    PipelineStats pipe;
    EngineStats engine;
};

inline TimedResult
runTimedSpec(Workload wl, const RunSpec &spec,
             const PipelineConfig &pcfg)
{
    CompileOptions copts = spec.compile;
    copts.ifConvert = spec.ifConvert;
    CompiledProgram cp = compileWorkload(wl, copts);

    PredictorPtr pred = makePredictor(spec.predictor, spec.sizeLog2);
    PredictionEngine engine(*pred, spec.engine);
    Pipeline pipe(engine, pcfg);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    TimedResult result;
    result.pipe = pipe.run(emu, spec.maxInsts);
    result.engine = engine.stats();
    return result;
}

/** Standard option block shared by all experiment binaries. */
inline Options
standardOptions()
{
    Options opts;
    opts.declare("steps", "1500000", "instructions per run");
    opts.declare("seed", "42", "workload input seed");
    opts.declare("csv", "0", "also print CSV");
    return opts;
}

/** Print the table, optionally followed by CSV. */
inline void
emitTable(const Table &table, const Options &opts)
{
    table.print(std::cout);
    if (opts.flag("csv")) {
        std::cout << "\n-- csv --\n";
        table.printCsv(std::cout);
    }
    std::cout << "\n";
}

} // namespace pabp::bench

#endif // PABP_BENCH_COMMON_HH
