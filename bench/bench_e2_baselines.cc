/**
 * @file
 * E2 - Baseline predictor comparison on predicated code: mispredict
 * rates of the conventional predictor family (static, bimodal, GAg,
 * gshare, local two-level, McFarling combining) at a fixed 4K-entry
 * budget. This is the paper's "predicated code is still hard to
 * predict" motivation table.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    opts.declare("size-log2", "12", "predictor table size (log2)");
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));
    unsigned size_log2 =
        static_cast<unsigned>(opts.integer("size-log2"));

    const std::vector<std::string> kinds = {
        "static-nottaken", "bimodal", "gag",   "gshare",    "local",
        "comb",            "agree",   "yags",  "perceptron"};

    std::cout << "E2: baseline mispredict rates on predicated code "
              << "(2^" << size_log2 << " entries)\n\n";

    // workloads x kinds, row-major in table order. Each workload
    // compiles once; the cache shares the program across all kinds.
    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        for (const std::string &kind : kinds) {
            RunSpec spec;
            spec.workload = name;
            spec.predictor = kind;
            spec.sizeLog2 = size_log2;
            spec.maxInsts = steps;
            spec.seed = seed;
            applyCheckpointOptions(spec, opts);
            specs.push_back(spec);
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    std::vector<std::string> header = {"workload"};
    header.insert(header.end(), kinds.begin(), kinds.end());
    Table table(header);

    std::vector<double> sums(kinds.size(), 0.0);
    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        table.startRow();
        table.cell(name);
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            double rate = results[idx++].engine.all.mispredictRate();
            sums[k] += rate;
            table.percentCell(rate);
        }
    }
    table.startRow();
    table.cell(std::string("MEAN"));
    for (double s : sums)
        table.percentCell(s / static_cast<double>(workloadNames().size()));

    emitTable(table, opts);
    return exitStatus(specs, results);
}
