/**
 * @file
 * E8 - End-to-end speedup on the in-order EPIC pipeline: IPC for the
 * branchy baseline and for predicated code under base gshare, each
 * technique, and both; plus a mispredict-penalty sweep of the
 * suite-mean speedup. The expected shape: technique speedup grows
 * with the penalty, because all they do is remove mispredicts.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    opts.declare("penalty", "8", "mispredict penalty (cycles)");
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));
    unsigned penalty = static_cast<unsigned>(opts.integer("penalty"));

    std::cout << "E8: pipeline IPC and speedup (width=6, penalty="
              << penalty << ")\n\n";

    struct Config
    {
        const char *label;
        bool ifConvert;
        bool sfpf;
        bool pgu;
    };
    const Config configs[] = {
        {"branchy", false, false, false},
        {"pred", true, false, false},
        {"pred+SFPF", true, true, false},
        {"pred+PGU", true, false, true},
        {"pred+both", true, true, true},
    };

    PipelineConfig pcfg;
    pcfg.mispredictPenalty = penalty;

    const std::vector<unsigned> penalties = {4, 8, 12, 16, 24};

    // Main IPC table cells, then the penalty-sweep cells (base and
    // both-techniques per workload per penalty), all one grid.
    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        for (const Config &config : configs) {
            RunSpec spec;
            spec.workload = name;
            spec.mode = RunMode::Timed;
            spec.pipeline = pcfg;
            spec.ifConvert = config.ifConvert;
            spec.engine.useSfpf = config.sfpf;
            spec.engine.usePgu = config.pgu;
            spec.maxInsts = steps;
            spec.seed = seed;
            specs.push_back(spec);
        }
    }
    const std::size_t sweep_offset = specs.size();
    for (unsigned p : penalties) {
        PipelineConfig cfg;
        cfg.mispredictPenalty = p;
        for (const std::string &name : workloadNames()) {
            RunSpec base;
            base.workload = name;
            base.mode = RunMode::Timed;
            base.pipeline = cfg;
            base.maxInsts = steps;
            base.seed = seed;
            specs.push_back(base);

            RunSpec both = base;
            both.engine.useSfpf = true;
            both.engine.usePgu = true;
            specs.push_back(both);
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"workload", "branchy", "pred", "pred+SFPF", "pred+PGU",
                 "pred+both", "speedup(both/pred)"});
    double ipc_sums[5] = {};
    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        table.startRow();
        table.cell(name);
        double ipcs[5];
        for (int c = 0; c < 5; ++c) {
            ipcs[c] = results[idx++].pipe.ipc();
            ipc_sums[c] += ipcs[c];
            table.cell(ipcs[c], 3);
        }
        table.cell(ipcs[1] > 0.0 ? ipcs[4] / ipcs[1] : 0.0, 3);
    }
    table.startRow();
    table.cell(std::string("MEAN"));
    double n = static_cast<double>(workloadNames().size());
    for (double s : ipc_sums)
        table.cell(s / n, 3);
    table.cell(ipc_sums[1] > 0.0 ? ipc_sums[4] / ipc_sums[1] : 0.0, 3);
    emitTable(table, opts);

    std::cout << "suite-mean speedup of pred+both over pred, by "
                 "mispredict penalty:\n\n";
    Table sweep({"penalty", "pred IPC", "pred+both IPC", "speedup"});
    idx = sweep_offset;
    for (unsigned p : penalties) {
        double sum_base = 0.0, sum_both = 0.0;
        for (std::size_t w = 0; w < workloadNames().size(); ++w) {
            sum_base += results[idx++].pipe.ipc();
            sum_both += results[idx++].pipe.ipc();
        }
        sweep.startRow();
        sweep.cell(std::uint64_t{p});
        sweep.cell(sum_base / n, 3);
        sweep.cell(sum_both / n, 3);
        sweep.cell(sum_base > 0.0 ? sum_both / sum_base : 0.0, 3);
    }
    emitTable(sweep, opts);
    return exitStatus(specs, results);
}
