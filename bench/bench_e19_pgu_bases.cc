/**
 * @file
 * E19 - Technique/baseline orthogonality: the paper evaluates PGU on
 * a gshare-style predictor, but the mechanism (predicate bits in the
 * global history) applies to any global-history predictor. Suite-mean
 * mispredict for each history-based baseline with and without
 * SFPF+PGU - the improvement should survive the move to stronger
 * baselines, shrinking only where the baseline already extracts the
 * correlation (perceptron's long history).
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    const std::vector<std::string> kinds = {"gag", "gshare", "comb",
                                            "agree", "yags",
                                            "perceptron"};

    std::cout << "E19: SFPF+PGU across base predictors (suite means, "
                 "2^12 budget class)\n\n";

    // kinds x workloads x {alone, +both}.
    std::vector<RunSpec> specs;
    for (const std::string &kind : kinds) {
        for (const std::string &name : workloadNames()) {
            RunSpec alone;
            alone.workload = name;
            alone.predictor = kind;
            alone.maxInsts = steps;
            alone.seed = seed;
            applyCheckpointOptions(alone, opts);
            specs.push_back(alone);

            RunSpec both = alone;
            both.engine.useSfpf = true;
            both.engine.usePgu = true;
            specs.push_back(both);
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"base predictor", "alone", "+SFPF+PGU", "reduction"});
    std::size_t idx = 0;
    for (const std::string &kind : kinds) {
        double sum_alone = 0.0, sum_both = 0.0;
        for (std::size_t w = 0; w < workloadNames().size(); ++w) {
            sum_alone += results[idx++].engine.all.mispredictRate();
            sum_both += results[idx++].engine.all.mispredictRate();
        }
        double n = static_cast<double>(workloadNames().size());
        table.startRow();
        table.cell(kind);
        table.percentCell(sum_alone / n);
        table.percentCell(sum_both / n);
        table.percentCell(sum_alone > 0.0
                              ? (sum_alone - sum_both) / sum_alone
                              : 0.0,
                          1);
    }

    emitTable(table, opts);
    std::cout << "expected shape: every global-history baseline "
                 "improves; the margin is\nsmallest where the baseline "
                 "already reaches the correlated bits\n(perceptron's "
                 "long history).\n";
    return exitStatus(specs, results);
}
