/**
 * @file
 * E11: google-benchmark microbenchmarks of predictor lookup/update
 * throughput and the engine's per-instruction overhead. These measure
 * the simulator itself (host-side cost), complementing the simulated
 * results of E1-E10.
 */

#include <benchmark/benchmark.h>

#include <atomic>

#include "bpred/factory.hh"
#include "core/engine.hh"
#include "sim/emulator.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"
#include "workloads/workload.hh"

namespace {

using namespace pabp;

void
BM_PredictorPredictUpdate(benchmark::State &state,
                          const std::string &kind)
{
    PredictorPtr pred = makePredictor(kind, 12);
    Rng rng(99);
    std::vector<std::uint32_t> pcs(1024);
    std::vector<bool> outcomes(1024);
    for (std::size_t i = 0; i < pcs.size(); ++i) {
        pcs[i] = static_cast<std::uint32_t>(rng.below(4096));
        outcomes[i] = rng.chance(0.6);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        bool taken = pred->predict(pcs[i]);
        benchmark::DoNotOptimize(taken);
        pred->update(pcs[i], outcomes[i]);
        i = (i + 1) & 1023;
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK_CAPTURE(BM_PredictorPredictUpdate, bimodal, "bimodal");
BENCHMARK_CAPTURE(BM_PredictorPredictUpdate, gshare, "gshare");
BENCHMARK_CAPTURE(BM_PredictorPredictUpdate, local, "local");
BENCHMARK_CAPTURE(BM_PredictorPredictUpdate, comb, "comb");

void
BM_EmulatorThroughput(benchmark::State &state)
{
    Workload wl = makeDchain(42);
    CompileOptions copts;
    CompiledProgram compiled = compileWorkload(wl, copts);

    for (auto _ : state) {
        state.PauseTiming();
        Emulator emu(compiled.prog);
        if (wl.init)
            wl.init(emu.state());
        state.ResumeTiming();
        emu.run(100000);
        benchmark::DoNotOptimize(emu.instsExecuted());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}

BENCHMARK(BM_EmulatorThroughput)->Unit(benchmark::kMillisecond);

void
BM_EngineThroughput(benchmark::State &state)
{
    Workload wl = makeDchain(42);
    CompileOptions copts;
    CompiledProgram compiled = compileWorkload(wl, copts);
    PredictorPtr pred = makePredictor("gshare", 12);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.usePgu = true;

    for (auto _ : state) {
        state.PauseTiming();
        Emulator emu(compiled.prog);
        if (wl.init)
            wl.init(emu.state());
        PredictionEngine engine(*pred, ecfg);
        state.ResumeTiming();
        runTrace(emu, engine, 100000);
        benchmark::DoNotOptimize(engine.stats().all.branches);
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}

BENCHMARK(BM_EngineThroughput)->Unit(benchmark::kMillisecond);

void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    // Cost of pushing work through the sweep runner's pool: submit a
    // batch of trivial tasks and drain. Dominated by queue mutex
    // traffic, so it bounds how fine-grained sweep cells can usefully
    // be.
    const unsigned threads =
        static_cast<unsigned>(state.range(0));
    constexpr int batch = 256;
    ThreadPool pool(threads);
    for (auto _ : state) {
        std::atomic<int> done{0};
        for (int i = 0; i < batch; ++i)
            pool.submit([&done] {
                done.fetch_add(1, std::memory_order_relaxed);
            });
        pool.drain();
        if (done.load() != batch)
            state.SkipWithError("lost tasks");
    }
    state.SetItemsProcessed(state.iterations() * batch);
}

BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
