#include "sweep.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <sstream>
#include <system_error>
#include <thread>
#include <utility>

#include "bpred/factory.hh"
#include "bpred/gshare.hh"
#include "core/checkpoint.hh"
#include "core/multictx.hh"
#include "sim/emulator.hh"
#include "util/metrics.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace pabp::bench {

namespace {

/** FNV-1a accumulator with typed feeders so the fingerprint is a
 *  stable function of field VALUES, not of struct layout. */
class Fnv
{
  public:
    void
    bytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            hash ^= p[i];
            hash *= 0x100000001b3ull;
        }
    }

    void
    u64(std::uint64_t v)
    {
        bytes(&v, sizeof(v));
    }

    void u32(std::uint32_t v) { u64(v); }
    void b(bool v) { u64(v ? 1 : 0); }
    void d(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return hash; }

  private:
    std::uint64_t hash = 0xcbf29ce484222325ull;
};

std::uint64_t
resolvedCompileSeed(const RunSpec &spec)
{
    return spec.compileSeed.value_or(spec.seed);
}

void
hashCompileOptions(Fnv &fnv, const CompileOptions &copts,
                   bool if_convert)
{
    fnv.b(if_convert);
    fnv.b(copts.simplifyCfg);
    fnv.u32(copts.heuristics.maxBlocks);
    fnv.u32(copts.heuristics.maxBodyInsts);
    fnv.d(copts.heuristics.minWeightRatio);
    fnv.u64(copts.heuristics.minSeedExec);
    fnv.d(copts.heuristics.minSeedMispredictRatio);
    fnv.b(copts.lowering.sinkExits);
    fnv.u64(copts.profileSteps);
}

void
hashEngineConfig(Fnv &fnv, const EngineConfig &e)
{
    fnv.b(e.useSfpf);
    fnv.b(e.usePgu);
    fnv.u32(e.availDelay);
    fnv.u32(static_cast<std::uint32_t>(e.pgu.source));
    fnv.u32(static_cast<std::uint32_t>(e.pgu.value));
    fnv.b(e.pgu.includePSet);
    fnv.u32(e.pgu.delay);
    fnv.b(e.trainOnSquashed);
    fnv.b(e.conservativeDefTracking);
    fnv.b(e.useSpeculativeSquash);
    fnv.u32(e.pvpEntriesLog2);
    fnv.u32(static_cast<std::uint32_t>(e.specGate));
    fnv.u32(e.jrsEntriesLog2);
    // Target-modelling fields fold in only when armed, so every
    // direction-only spec keeps the fingerprint (and checkpoint /
    // metrics file names) it had before the knob existed.
    if (e.modelTargets) {
        fnv.b(e.modelTargets);
        fnv.u32(e.btbSetsLog2);
        fnv.u32(e.btbWays);
        fnv.u32(e.rasDepth);
    }
}

/** Compiled-program cache key: everything that determines the
 *  program bytes (workload id, compile seed, compile options). */
std::string
programCacheKey(const RunSpec &spec)
{
    Fnv copt_hash;
    hashCompileOptions(copt_hash, spec.compile, spec.ifConvert);
    return spec.workload + ":" +
        std::to_string(resolvedCompileSeed(spec)) + ":" +
        std::to_string(copt_hash.value());
}

/** Build the spec's workload for the given input seed. */
Expected<Workload>
materialiseWorkload(const RunSpec &spec, std::uint64_t seed)
{
    if (spec.factory)
        return spec.factory(seed);
    if (spec.workload.empty())
        return Status(StatusCode::InvalidArgument,
                      "run spec names no workload");
    const std::vector<std::string> known = workloadNames();
    if (std::find(known.begin(), known.end(), spec.workload) ==
        known.end())
        return Status(StatusCode::NotFound,
                      "unknown workload: " + spec.workload);
    return makeWorkload(spec.workload, seed);
}

/** Resume outcomes that mean "start this cell fresh" rather than
 *  "this cell failed": the file is missing (the interrupted sweep
 *  never got to checkpoint this cell) or it belongs to a different
 *  configuration (fingerprint/section mismatch). Damage - CRC, bad
 *  magic, truncation - stays an error. */
bool
resumeFallsBackToFresh(const Status &status)
{
    return status.code() == StatusCode::IoError ||
        status.code() == StatusCode::InvalidArgument ||
        // A checkpoint written by an older format version is not
        // damage: the format comment in core/checkpoint.cc promises
        // runners restart such cells from scratch.
        status.code() == StatusCode::VersionMismatch;
}

/** Wall-clock deadline for one cell attempt (RunSpec::watchdogMillis).
 *  Unarmed (0) deadlines never expire and leave the engine loops
 *  un-chunked. */
class CellDeadline
{
  public:
    explicit CellDeadline(std::uint32_t millis)
        : armed(millis > 0),
          at(std::chrono::steady_clock::now() +
             std::chrono::milliseconds(millis))
    {}

    bool
    expired() const
    {
        return armed && std::chrono::steady_clock::now() >= at;
    }

    /** Budget slice between checks: the heartbeat grain when armed,
     *  the whole remaining budget when not. */
    std::uint64_t
    slice(std::uint64_t heartbeat, std::uint64_t remaining) const
    {
        if (!armed || heartbeat == 0)
            return remaining;
        return std::min(heartbeat, remaining);
    }

    /** NOTE: deliberately free of wall-clock-dependent detail (how
     *  many instructions ran varies run to run) - the text lands in
     *  quarantine journal records, whose bytes must converge across
     *  interrupted and clean campaigns (bench/sweep_service.hh). */
    Status
    status(const RunSpec &spec, std::uint64_t) const
    {
        return Status(StatusCode::DeadlineExceeded,
                      "cell '" + spec.workload + "' overran its " +
                          std::to_string(spec.watchdogMillis) +
                          " ms watchdog deadline");
    }

  private:
    bool armed;
    std::chrono::steady_clock::time_point at;
};

void
accumulateClassStats(BranchClassStats &into,
                     const BranchClassStats &from)
{
    into.branches += from.branches;
    into.taken += from.taken;
    into.mispredicts += from.mispredicts;
    into.squashed += from.squashed;
    into.falseGuard += from.falseGuard;
}

/** Field-wise sum, the across-context aggregate of a multi-context
 *  cell (RunResult::engine). */
void
accumulateEngineStats(EngineStats &into, const EngineStats &from)
{
    into.insts += from.insts;
    into.uncondBranches += from.uncondBranches;
    into.predicateDefines += from.predicateDefines;
    accumulateClassStats(into.all, from.all);
    accumulateClassStats(into.region, from.region);
    accumulateClassStats(into.normal, from.normal);
    into.specSquashed += from.specSquashed;
    into.specSquashedWrong += from.specSquashedWrong;
    into.btbTargetMisses += from.btbTargetMisses;
    into.rasHits += from.rasHits;
    into.rasMisses += from.rasMisses;
}

/** The spec.* identity keys every cell's metrics document carries. */
void
exportSpecKeys(MetricsExporter &ex, const RunSpec &spec)
{
    ex.setText("spec.workload", spec.workload);
    ex.setText("spec.predictor", spec.predictor);
    ex.setText("spec.mode",
               spec.mode == RunMode::Timed
                   ? "timed"
                   : spec.mode == RunMode::Observe ? "observe"
                                                   : "trace");
    ex.setInt("spec.size_log2", spec.sizeLog2);
    ex.setInt("spec.seed", spec.seed);
    ex.setInt("spec.compile_seed", resolvedCompileSeed(spec));
    ex.setInt("spec.max_insts", spec.maxInsts);
    const std::uint64_t fp = specFingerprint(spec);
    char fp_hex[17];
    std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                  static_cast<unsigned long long>(fp));
    ex.setText("spec.fingerprint", fp_hex);
}

/**
 * Build one finished cell's metrics document
 * (docs/OBSERVABILITY.md). The engine must still be alive: the export
 * snapshots the StatGroup the engine registers its gauges into, which
 * is also what pins the registry path itself in every metrics-enabled
 * sweep.
 *
 * RunResult::resumed is deliberately NOT exported: the resume
 * equivalence contract promises a resumed run's metrics file is
 * byte-identical to an uninterrupted one's. Neither are the
 * robustness knobs or attempt counts - a cell that needed a retry
 * must still measure (and serialise) identically to one that did not.
 */
MetricsExporter
buildCellMetrics(const RunSpec &spec, const RunResult &result,
                 PredictionEngine *engine)
{
    MetricsExporter ex;
    exportSpecKeys(ex, spec);

    StatGroup group;
    if (engine) {
        engine->registerStats(group);
        ex.addGroup(group);
        ex.setReal("engine.mpki", engine->stats().mpki());
        engine->branchProfile().exportTo(ex);
        if (result.predictability) {
            // RunSpec::characterize: the workload-character metrics
            // plus the H2P cross-reference against THIS cell's own
            // profile - "are the hard branches the low-predictability
            // ones?" answered per cell (default cutoffs never fail
            // classifyH2p).
            exportPredictability(ex, *result.predictability);
            Expected<H2pClassification> cls =
                classifyH2p(engine->branchProfile());
            if (cls.ok())
                aggregatePredictabilityByTier(ex, cls.value(),
                                              *result.predictability);
        }
    } else {
        // Observe-mode cell: no engine ran, only the instruction
        // budget actually executed is meaningful.
        ex.setInt("engine.insts", result.engine.insts);
    }

    ex.setInt("compile.num_regions", result.numRegions);
    ex.setInt("compile.num_region_branches", result.numRegionBranches);

    if (spec.mode == RunMode::Timed) {
        const PipelineStats &p = result.pipe;
        ex.setInt("pipeline.insts", p.insts);
        ex.setInt("pipeline.cycles", p.cycles);
        ex.setInt("pipeline.icache_misses", p.icacheMisses);
        ex.setInt("pipeline.dcache_misses", p.dcacheMisses);
        ex.setInt("pipeline.l2_misses", p.l2Misses);
        ex.setInt("pipeline.btb_misses", p.btbMisses);
        ex.setInt("pipeline.ras_hits", p.rasHits);
        ex.setInt("pipeline.ras_misses", p.rasMisses);
        ex.setInt("pipeline.mispredict_stall_cycles",
                  p.mispredictStallCycles);
        ex.setReal("pipeline.ipc", p.ipc());
    }

    return ex;
}

/**
 * Metrics document for a multi-context cell. Per-context numbers go
 * under "ctx<N>.*" and the across-context aggregate under "engine.*";
 * per-PC profiles stay in RunResult::contexts, where benches consume
 * them directly (e.g. the per-tier H2P deltas in E21).
 */
MetricsExporter
buildMultiCtxMetrics(const RunSpec &spec, const RunResult &result)
{
    MetricsExporter ex;
    exportSpecKeys(ex, spec);
    ex.setInt("spec.contexts", spec.context.contexts);
    ex.setText("spec.ctx_schedule",
               scheduleKindName(spec.context.schedule));
    ex.setInt("spec.ctx_quantum", spec.context.quantum);
    ex.setInt("spec.ctx_seed", spec.context.scheduleSeed);
    ex.setInt("spec.ctx_shared", spec.context.shared ? 1 : 0);
    ex.setInt("spec.ctx_tag_bits", spec.context.tagBits);

    ex.setInt("compile.num_regions", result.numRegions);
    ex.setInt("compile.num_region_branches", result.numRegionBranches);

    const auto exportStats = [&](const std::string &prefix,
                                 const EngineStats &s,
                                 std::uint64_t pgu_bits) {
        ex.setInt(prefix + "insts", s.insts);
        ex.setInt(prefix + "branches", s.all.branches);
        ex.setInt(prefix + "mispredicts", s.all.mispredicts);
        ex.setReal(prefix + "mispredict_rate",
                   s.all.mispredictRate());
        ex.setReal(prefix + "mpki", s.mpki());
        ex.setInt(prefix + "pgu_bits", pgu_bits);
        if (spec.engine.modelTargets) {
            ex.setInt(prefix + "btb_target_misses",
                      s.btbTargetMisses);
            ex.setInt(prefix + "ras_hits", s.rasHits);
            ex.setInt(prefix + "ras_misses", s.rasMisses);
        }
    };
    exportStats("engine.", result.engine, result.pguBits);
    for (std::size_t c = 0; c < result.contexts.size(); ++c)
        exportStats("ctx" + std::to_string(c) + ".",
                    result.contexts[c].engine,
                    result.contexts[c].pguBits);
    return ex;
}

/**
 * Shared tail of the cell-output paths: capture an already-built
 * metrics document into the result (RunSpec::captureMetrics) and/or
 * export it to a per-cell file (RunSpec::metricsDir). A cell that
 * cannot write its file FAILS with IoError - a sweep that silently
 * lost its measurements would be worse than one that failed loudly.
 */
Status
writeCellOutputs(const RunSpec &spec, RunResult &result,
                 const MetricsExporter &ex)
{
    if (spec.captureMetrics) {
        std::ostringstream os;
        ex.writeJson(os);
        result.metricsJson = os.str();
    }
    if (!spec.metricsDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(spec.metricsDir, ec);
        if (ec)
            return Status(StatusCode::IoError,
                          "cannot create metrics directory '" +
                              spec.metricsDir + "': " + ec.message());
        return ex.writeJsonFile(metricsFilePath(
            spec.metricsDir, specFingerprint(spec)));
    }
    return Status();
}

/** The single-engine cell's observational outputs. */
Status
finishCellOutputs(const RunSpec &spec, RunResult &result,
                  PredictionEngine *engine)
{
    if (spec.metricsDir.empty() && !spec.captureMetrics)
        return Status();
    return writeCellOutputs(spec, result,
                            buildCellMetrics(spec, result, engine));
}

/** The multi-context cell's observational outputs. */
Status
finishMultiCtxOutputs(const RunSpec &spec, RunResult &result)
{
    if (spec.metricsDir.empty() && !spec.captureMetrics)
        return Status();
    return writeCellOutputs(spec, result,
                            buildMultiCtxMetrics(spec, result));
}

} // anonymous namespace

std::uint64_t
specFingerprint(const RunSpec &spec)
{
    Fnv fnv;
    fnv.str("pabp-runspec-v1");
    fnv.str(spec.workload);
    fnv.u64(spec.seed);
    fnv.u64(resolvedCompileSeed(spec));
    fnv.u32(static_cast<std::uint32_t>(spec.mode));
    fnv.str(spec.predictor);
    fnv.u32(spec.sizeLog2);
    hashEngineConfig(fnv, spec.engine);
    hashCompileOptions(fnv, spec.compile, spec.ifConvert);
    fnv.u64(spec.maxInsts);
    fnv.b(spec.profileConflicts);
    // Context interleaving folds in only for real multi-context
    // cells: every single-stream spec keeps its historical print.
    if (spec.context.contexts > 1) {
        fnv.str("ctx");
        fnv.u32(spec.context.contexts);
        fnv.u32(static_cast<std::uint32_t>(spec.context.schedule));
        fnv.u64(spec.context.quantum);
        fnv.u64(spec.context.scheduleSeed);
        fnv.b(spec.context.shared);
        fnv.u32(spec.context.tagBits);
    }
    return fnv.value();
}

std::string
derivedCheckpointPath(const std::string &base,
                      std::uint64_t fingerprint)
{
    char fp[20];
    std::snprintf(fp, sizeof(fp), "-%016llx",
                  static_cast<unsigned long long>(fingerprint));
    std::size_t slash = base.find_last_of('/');
    std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + fp;
    return base.substr(0, dot) + fp + base.substr(dot);
}

std::string
metricsFilePath(const std::string &dir, std::uint64_t fingerprint)
{
    char fp[20];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    std::string sep = dir.empty() || dir.back() == '/' ? "" : "/";
    return dir + sep + "pabp-metrics-" + fp + ".json";
}

SweepRunner::SweepRunner(Config config)
    : jobs(config.jobs ? config.jobs : defaultThreadCount()),
      queueCapacity(config.queueCapacity)
{}

Expected<SweepRunner::ProgramHandle>
SweepRunner::compiledFor(const RunSpec &spec)
{
    std::string key = programCacheKey(spec);

    std::promise<ProgramHandle> promise;
    std::shared_future<ProgramHandle> future;
    bool compile_here = false;
    {
        std::lock_guard<std::mutex> lock(cacheMtx);
        auto it = cache.find(key);
        if (it == cache.end()) {
            future = promise.get_future().share();
            cache.emplace(key, future);
            compile_here = true;
            ++stats.compiles;
        } else {
            future = it->second;
            ++stats.hits;
        }
    }
    if (!compile_here)
        return future.get();

    // First requester of this key compiles; everyone else blocks on
    // the shared future and then reads the same immutable program.
    Expected<Workload> wl =
        materialiseWorkload(spec, resolvedCompileSeed(spec));
    if (!wl.ok()) {
        // Unblock any waiters with an empty handle; they re-derive
        // the same error from their own spec.
        promise.set_value(nullptr);
        return wl.status();
    }
    CompileOptions copts = spec.compile;
    copts.ifConvert = spec.ifConvert;
    ProgramHandle handle = std::make_shared<const CompiledProgram>(
        compileWorkload(wl.value(), copts));
    promise.set_value(handle);
    return handle;
}

Expected<SweepRunner::TraceHandle>
SweepRunner::decodedFor(const RunSpec &spec,
                        const ProgramHandle &program,
                        std::uint64_t seed)
{
    // Recording is deterministic in (program, measurement seed,
    // budget): the same key always yields the same events, so the
    // decoded trace can be shared read-only like the program itself.
    std::string key = programCacheKey(spec) + ":" +
        std::to_string(seed) + ":" +
        std::to_string(spec.maxInsts) + ":decoded";

    std::promise<TraceHandle> promise;
    std::shared_future<TraceHandle> future;
    bool record_here = false;
    {
        std::lock_guard<std::mutex> lock(cacheMtx);
        auto it = traceCache.find(key);
        if (it == traceCache.end()) {
            future = promise.get_future().share();
            traceCache.emplace(key, future);
            record_here = true;
            ++stats.records;
        } else {
            future = it->second;
            ++stats.traceHits;
        }
    }
    if (!record_here) {
        TraceHandle handle = future.get();
        if (!handle) {
            // The recording peer hit a workload error; re-derive it
            // from this spec's own view.
            Expected<Workload> wl = materialiseWorkload(spec, seed);
            return wl.ok() ? Status(StatusCode::NotFound,
                                    "trace recording failed for " +
                                        spec.workload)
                           : wl.status();
        }
        return handle;
    }

    Expected<Workload> wl = materialiseWorkload(spec, seed);
    if (!wl.ok()) {
        promise.set_value(nullptr);
        return wl.status();
    }
    Emulator emu(program->prog);
    if (wl.value().init)
        wl.value().init(emu.state());
    RecordedTrace recorded = recordTrace(emu, spec.maxInsts);
    TraceHandle handle = std::make_shared<const DecodedTrace>(
        DecodedTrace::build(recorded));
    promise.set_value(handle);
    return handle;
}

Expected<SweepRunner::ReportHandle>
SweepRunner::characterizedFor(const RunSpec &spec,
                              const ProgramHandle &program)
{
    // Same sharing discipline as the program and trace caches: the
    // report is a pure function of (program, measurement seed,
    // budget), so the first requester computes it and every other
    // cell of the key reads the same immutable object.
    std::string key = programCacheKey(spec) + ":" +
        std::to_string(spec.seed) + ":" +
        std::to_string(spec.maxInsts) + ":predictability";

    std::promise<ReportHandle> promise;
    std::shared_future<ReportHandle> future;
    bool compute_here = false;
    {
        std::lock_guard<std::mutex> lock(cacheMtx);
        auto it = predCache.find(key);
        if (it == predCache.end()) {
            future = promise.get_future().share();
            predCache.emplace(key, future);
            compute_here = true;
        } else {
            future = it->second;
        }
    }
    if (!compute_here) {
        ReportHandle handle = future.get();
        if (!handle)
            return Status(StatusCode::NotFound,
                          "characterization failed for " +
                              spec.workload);
        return handle;
    }

    Expected<TraceHandle> decoded =
        decodedFor(spec, program, spec.seed);
    if (!decoded.ok()) {
        promise.set_value(nullptr);
        return decoded.status();
    }
    ReportHandle handle =
        std::make_shared<const PredictabilityReport>(characterizeTrace(
            *decoded.value(), PredictabilityConfig{}, spec.maxInsts));
    promise.set_value(handle);
    return handle;
}

RunResult
SweepRunner::executeSpecAttempt(const RunSpec &spec, unsigned attempt)
{
    if (spec.faultHook) {
        Status injected = spec.faultHook(attempt);
        if (!injected.ok()) {
            RunResult result;
            result.status = std::move(injected);
            return result;
        }
    }
    try {
        return executeSpec(spec);
    } catch (const std::exception &e) {
        RunResult result;
        result.status =
            Status(StatusCode::Corrupt,
                   std::string("unhandled exception in sweep cell: ") +
                       e.what());
        return result;
    }
}

RunResult
SweepRunner::executeSpecGuarded(const RunSpec &spec)
{
    // Cells owned by another shard are skipped in place: the grid keeps
    // its positional layout (table builders index by position) and the
    // cell reports Ok so reportFailures() stays quiet about it.
    if (spec.shard.count > 1 &&
        shardOf(specFingerprint(spec), spec.shard.count) !=
            spec.shard.index) {
        RunResult result;
        result.skipped = true;
        return result;
    }

    const unsigned max_attempts = std::max(1u, spec.maxAttempts);
    RunResult result;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        result = executeSpecAttempt(spec, attempt);
        result.attempts = attempt;
        if (result.status.ok() ||
            !retryableStatus(result.status.code()) ||
            attempt == max_attempts) {
            break;
        }
        pabp_warn("sweep cell (" + spec.workload + ", " + spec.predictor +
                  ") attempt " + std::to_string(attempt) +
                  " failed retryably: " + result.status.toString());
        if (spec.retryBackoffMillis > 0) {
            const std::uint64_t backoff =
                static_cast<std::uint64_t>(spec.retryBackoffMillis)
                << (attempt - 1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
        }
    }
    return result;
}

void
SweepRunner::noteResumeFallback(const RunSpec &spec,
                                const std::string &resume_file,
                                const Status &status)
{
    pabp_warn("sweep cell (" + spec.workload + ", " + spec.predictor +
              "): resume from '" + resume_file + "' failed (" +
              status.toString() + "); falling back to a cold start");
    std::lock_guard<std::mutex> lock(cacheMtx);
    ++resumeFallbackCount;
}

std::uint64_t
SweepRunner::resumeFallbacks() const
{
    std::lock_guard<std::mutex> lock(cacheMtx);
    return resumeFallbackCount;
}

RunResult
SweepRunner::executeSpec(const RunSpec &spec)
{
    RunResult result;

    Expected<ProgramHandle> program = compiledFor(spec);
    if (!program.ok()) {
        result.status = program.status();
        return result;
    }
    if (!program.value()) {
        // A waiter whose compiling peer hit a workload error: report
        // it from this spec's own view.
        Expected<Workload> wl =
            materialiseWorkload(spec, resolvedCompileSeed(spec));
        result.status = wl.ok()
            ? Status(StatusCode::NotFound,
                     "workload compilation failed for " + spec.workload)
            : wl.status();
        return result;
    }
    const CompiledProgram &cp = *program.value();
    result.numRegions = cp.info.numRegions;
    result.numRegionBranches = cp.info.numRegionBranches;

    // The measured run's memory image comes from the measurement
    // seed (== compile seed unless a cross-input spec says otherwise).
    Expected<Workload> init_wl = materialiseWorkload(spec, spec.seed);
    if (!init_wl.ok()) {
        result.status = init_wl.status();
        return result;
    }
    const StateInit &init = init_wl.value().init;

    // Characterize before the measured run: the report comes off the
    // shared decoded trace, so fast-replay, reference and Timed cells
    // of the same (workload, seed, budget) all report the same bytes.
    if (spec.characterize) {
        if (spec.mode == RunMode::Observe ||
            spec.context.contexts > 1) {
            result.status = Status(
                StatusCode::InvalidArgument,
                "characterize requires a single-context Trace or "
                "Timed cell");
            return result;
        }
        Expected<ReportHandle> rep =
            characterizedFor(spec, program.value());
        if (!rep.ok()) {
            result.status = rep.status();
            return result;
        }
        result.predictability = rep.value();
    }

    if (spec.mode == RunMode::Observe) {
        if (!spec.observe) {
            result.status = Status(StatusCode::InvalidArgument,
                                   "Observe spec has no observer");
            return result;
        }
        Emulator emu(cp.prog);
        if (init)
            init(emu.state());
        DynInst dyn;
        std::uint64_t executed = 0;
        CellDeadline deadline(spec.watchdogMillis);
        std::uint64_t until_check =
            deadline.slice(spec.heartbeatInsts, spec.maxInsts);
        while (executed < spec.maxInsts && emu.step(dyn)) {
            spec.observe(dyn);
            ++executed;
            if (--until_check == 0) {
                if (deadline.expired()) {
                    result.status = deadline.status(spec, executed);
                    return result;
                }
                until_check = deadline.slice(
                    spec.heartbeatInsts, spec.maxInsts - executed);
            }
        }
        result.engine.insts = executed;
        result.status = finishCellOutputs(spec, result, nullptr);
        return result;
    }

    // Build the predictor; a bad spec fails this cell with a typed
    // error instead of aborting the whole sweep from a worker.
    PredictorPtr owned;
    GSharePredictor *gshare = nullptr;
    if (spec.profileConflicts) {
        if (spec.predictor != "gshare") {
            result.status =
                Status(StatusCode::InvalidArgument,
                       "conflict profiling requires the gshare "
                       "predictor, got: " + spec.predictor);
            return result;
        }
        auto g = std::make_unique<GSharePredictor>(spec.sizeLog2);
        g->enableConflictProfiling();
        gshare = g.get();
        owned = std::move(g);
    } else {
        Expected<PredictorPtr> made =
            tryMakePredictor(spec.predictor, spec.sizeLog2);
        if (!made.ok()) {
            result.status = made.status();
            return result;
        }
        owned = std::move(made.value());
    }

    if (spec.context.contexts > 1) {
        // Multi-context cells interleave N independent instruction
        // streams through the ONE predictor built above; they are
        // replay-only and cannot serialise mid-run (the interleaved
        // emulator/engine set has no checkpoint format).
        if (spec.mode != RunMode::Timed && spec.checkpointEvery == 0 &&
            spec.resumePath.empty())
            return executeMultiCtx(spec, program.value(), *owned,
                                   gshare, std::move(result));
        result.status = Status(
            StatusCode::InvalidArgument,
            spec.mode == RunMode::Timed
                ? "multi-context cells are Trace-mode only"
                : "multi-context cells cannot checkpoint or resume");
        return result;
    }

    if (spec.mode == RunMode::Timed) {
        // The pipeline charges target penalties from the engine's
        // BTB/RAS outcomes, so every Timed cell arms target
        // modelling. Armed on a local copy AFTER fingerprinting:
        // unconditional for the mode, it adds no information.
        EngineConfig ecfg = spec.engine;
        ecfg.modelTargets = true;
        PredictionEngine engine(*owned, ecfg);
        Pipeline pipe(engine, spec.pipeline);
        Emulator emu(cp.prog);
        if (init)
            init(emu.state());
        result.pipe = pipe.run(emu, spec.maxInsts);
        result.engine = engine.stats();
        result.pguBits = engine.pguBitsInserted();
        result.profile = engine.branchProfile();
        result.status = finishCellOutputs(spec, result, &engine);
        return result;
    }

    // Trace mode, fast path (docs/PERF.md): replay the shared
    // pre-decoded trace through the batched engine loop. Results are
    // bit-identical to the reference loop below - the equivalence
    // tests pin stats, profile and metrics bytes - so only cells
    // that must serialise emulator state mid-run (checkpointing or
    // resuming) are excluded.
    if (spec.fastReplay && spec.checkpointEvery == 0 &&
        spec.resumePath.empty()) {
        Expected<TraceHandle> decoded =
            decodedFor(spec, program.value(), spec.seed);
        if (!decoded.ok()) {
            result.status = decoded.status();
            return result;
        }
        PredictionEngine engine(*owned, spec.engine);
        // Heartbeat-sliced batches: processBatch is exactly
        // resumable at any event index, so chunking is unobservable
        // in the results and only exists to let the watchdog check
        // its deadline between slices.
        const DecodedTrace &trace = *decoded.value();
        CellDeadline deadline(spec.watchdogMillis);
        std::uint64_t processed = 0;
        while (processed < spec.maxInsts) {
            const std::uint64_t chunk = deadline.slice(
                spec.heartbeatInsts, spec.maxInsts - processed);
            const std::uint64_t next =
                engine.processBatch(trace, processed, chunk);
            if (next == processed)
                break; // trace exhausted before the budget
            processed = next;
            if (deadline.expired()) {
                result.status = deadline.status(spec, processed);
                return result;
            }
        }
        result.engine = engine.stats();
        result.pguBits = engine.pguBitsInserted();
        result.profile = engine.branchProfile();
        if (gshare) {
            result.lookups = gshare->lookupCount();
            result.conflicts = gshare->conflictCount();
        }
        result.status = finishCellOutputs(spec, result, &engine);
        return result;
    }

    // Trace mode, with checkpoint/resume. Resume is attempted at
    // most once, and the mismatch fallback is a LOOP that rebuilds
    // only the cheap per-run state (predictor, engine, emulator) -
    // the compiled program is reused, never recompiled.
    const std::uint64_t fp = specFingerprint(spec);
    const std::string ckpt_file = spec.checkpointEvery
        ? derivedCheckpointPath(spec.checkpointPath, fp)
        : std::string();
    const std::string resume_file = spec.resumePath.empty()
        ? std::string()
        : derivedCheckpointPath(spec.resumePath, fp);

    std::optional<PredictionEngine> engine;
    std::optional<Emulator> emu;
    std::uint64_t done = 0;
    for (bool try_resume = !resume_file.empty();;) {
        // (Re)build all mutable run state from scratch; a failed
        // load may have scribbled on the previous instances.
        engine.emplace(*owned, spec.engine);
        emu.emplace(cp.prog);
        if (init)
            init(emu->state());
        done = 0;
        if (!try_resume)
            break;
        CheckpointRefs refs{&*emu, &*engine, &done};
        Status status = loadCheckpoint(resume_file, refs);
        if (status.ok()) {
            result.resumed = true;
            break;
        }
        if (resumeFallsBackToFresh(status)) {
            try_resume = false;
            result.resumeFallback = true;
            noteResumeFallback(spec, resume_file, status);
            // The predictor carries loaded state too; rebuild it the
            // same way the fresh path did.
            if (gshare) {
                auto g = std::make_unique<GSharePredictor>(
                    spec.sizeLog2);
                g->enableConflictProfiling();
                gshare = g.get();
                owned = std::move(g);
            } else {
                owned = std::move(
                    tryMakePredictor(spec.predictor, spec.sizeLog2)
                        .value());
            }
            continue;
        }
        result.status = status; // damaged artifact: fail the cell
        return result;
    }

    CellDeadline deadline(spec.watchdogMillis);
    if (spec.checkpointEvery == 0) {
        const std::uint64_t budget =
            spec.maxInsts - std::min(done, spec.maxInsts);
        std::uint64_t ran_total = 0;
        while (ran_total < budget) {
            const std::uint64_t chunk =
                deadline.slice(spec.heartbeatInsts, budget - ran_total);
            const std::uint64_t ran = runTrace(*emu, *engine, chunk);
            ran_total += ran;
            if (ran < chunk)
                break; // workload halted before the budget
            if (deadline.expired()) {
                result.status = deadline.status(spec, done + ran_total);
                return result;
            }
        }
    } else {
        while (done < spec.maxInsts) {
            std::uint64_t chunk =
                std::min(spec.checkpointEvery, spec.maxInsts - done);
            std::uint64_t ran = runTrace(*emu, *engine, chunk);
            done += ran;
            CheckpointRefs refs{&*emu, &*engine, &done};
            Status status = saveCheckpoint(ckpt_file, refs);
            if (!status.ok()) {
                result.status = status;
                return result;
            }
            if (ran < chunk)
                break; // workload halted before the budget
            if (deadline.expired()) {
                result.status = deadline.status(spec, done);
                return result;
            }
        }
    }
    result.engine = engine->stats();
    result.pguBits = engine->pguBitsInserted();
    result.profile = engine->branchProfile();
    if (gshare) {
        result.lookups = gshare->lookupCount();
        result.conflicts = gshare->conflictCount();
    }
    result.status = finishCellOutputs(spec, result, &*engine);
    return result;
}

RunResult
SweepRunner::executeMultiCtx(const RunSpec &spec,
                             const ProgramHandle &program,
                             BranchPredictor &pred,
                             GSharePredictor *gshare, RunResult result)
{
    const unsigned n = spec.context.contexts;
    MultiCtxConfig mcfg;
    mcfg.schedule.contexts = n;
    mcfg.schedule.kind = spec.context.schedule;
    mcfg.schedule.quantum = spec.context.quantum;
    mcfg.schedule.seed = spec.context.scheduleSeed;
    mcfg.sharedHistory = spec.context.shared;
    mcfg.tagBits = spec.context.tagBits;
    mcfg.engine = spec.engine;
    MultiContextReplayer replayer(pred, mcfg);

    if (spec.fastReplay) {
        // Context c records with measurement seed spec.seed + c: the
        // contexts are independent draws of the same workload, so the
        // decoded lanes stay shareable across cells the usual way.
        std::vector<TraceHandle> handles;
        std::vector<const DecodedTrace *> traces;
        handles.reserve(n);
        traces.reserve(n);
        for (unsigned c = 0; c < n; ++c) {
            Expected<TraceHandle> decoded =
                decodedFor(spec, program, spec.seed + c);
            if (!decoded.ok()) {
                result.status = decoded.status();
                return result;
            }
            handles.push_back(decoded.value());
            traces.push_back(handles.back().get());
        }
        replayer.replayDecoded(traces, spec.maxInsts);
    } else {
        std::vector<std::unique_ptr<Emulator>> owned_emus;
        std::vector<Emulator *> emus;
        for (unsigned c = 0; c < n; ++c) {
            Expected<Workload> wl =
                materialiseWorkload(spec, spec.seed + c);
            if (!wl.ok()) {
                result.status = wl.status();
                return result;
            }
            owned_emus.push_back(
                std::make_unique<Emulator>(program->prog));
            if (wl.value().init)
                wl.value().init(owned_emus.back()->state());
            emus.push_back(owned_emus.back().get());
        }
        replayer.replayEmulated(emus, spec.maxInsts);
    }

    result.contexts.resize(n);
    for (unsigned c = 0; c < n; ++c) {
        ContextCellResult &ctx = result.contexts[c];
        ctx.engine = replayer.engine(c).stats();
        ctx.profile = replayer.engine(c).branchProfile();
        ctx.pguBits = replayer.engine(c).pguBitsInserted();
        accumulateEngineStats(result.engine, ctx.engine);
        result.pguBits += ctx.pguBits;
    }
    if (gshare) {
        // The shared predictor's conflict profile counts lookups from
        // every context - cross-context aliasing IS the experiment.
        result.lookups = gshare->lookupCount();
        result.conflicts = gshare->conflictCount();
    }
    result.status = finishMultiCtxOutputs(spec, result);
    return result;
}

std::vector<RunResult>
SweepRunner::run(const std::vector<RunSpec> &specs)
{
    std::vector<RunResult> results(specs.size());
    if (jobs <= 1 || specs.size() <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            results[i] = executeSpecGuarded(specs[i]);
        return results;
    }
    ThreadPool pool(jobs, queueCapacity);
    for (std::size_t i = 0; i < specs.size(); ++i)
        pool.submit([this, &specs, &results, i] {
            results[i] = executeSpecGuarded(specs[i]);
        });
    pool.drain();
    return results;
}

RunResult
SweepRunner::runOne(const RunSpec &spec)
{
    return executeSpecGuarded(spec);
}

SweepRunner::CacheStats
SweepRunner::cacheStats() const
{
    std::lock_guard<std::mutex> lock(cacheMtx);
    return stats;
}

std::size_t
reportFailures(const std::vector<RunSpec> &specs,
               const std::vector<RunResult> &results,
               std::ostream &err)
{
    std::size_t failed = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].status.ok())
            continue;
        ++failed;
        const std::string &wl =
            i < specs.size() ? specs[i].workload : std::string("?");
        const std::string &pred = i < specs.size()
            ? specs[i].predictor
            : std::string("?");
        err << "sweep cell #" << i << " (" << wl << ", " << pred
            << ") failed: " << results[i].status.toString() << "\n";
    }
    return failed;
}

} // namespace pabp::bench
