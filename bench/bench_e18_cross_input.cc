/**
 * @file
 * E18 - Input generalisation: everything so far profiles and measures
 * on the same input (noted in compile.hh). Here each workload is
 * compiled with the profile of a TRAIN input and measured on a
 * different REF input, the SPEC train/ref methodology. If region
 * formation were overfitting to the training input, the techniques'
 * benefit would collapse; it should not, because the heuristics only
 * consume coarse block weights.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    opts.declare("train-seed", "42", "profiling input seed");
    opts.declare("ref-seed", "20260706", "measurement input seed");
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t train = static_cast<std::uint64_t>(
        opts.integer("train-seed"));
    std::uint64_t ref =
        static_cast<std::uint64_t>(opts.integer("ref-seed"));

    std::cout << "E18: profile on train input (" << train
              << "), measure on ref input (" << ref << ")\n\n";

    // Per workload: base(ref), +both(ref) - compiled from the train
    // profile but run on the ref memory image (compileSeed != seed) -
    // then +both(same-input) compiled and run on ref.
    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        RunSpec base;
        base.workload = name;
        base.compileSeed = train;
        base.seed = ref;
        base.maxInsts = steps;
        specs.push_back(base);

        RunSpec both = base;
        both.engine.useSfpf = true;
        both.engine.usePgu = true;
        specs.push_back(both);

        RunSpec same = both;
        same.compileSeed = ref;
        specs.push_back(same);
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"workload", "base(ref)", "+both(ref)", "reduction",
                 "+both(same-input)"});
    double sum_base = 0.0, sum_both = 0.0, sum_same = 0.0;
    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        const EngineStats &base = results[idx++].engine;
        const EngineStats &both = results[idx++].engine;
        const EngineStats &same = results[idx++].engine;

        table.startRow();
        table.cell(name);
        table.percentCell(base.all.mispredictRate());
        table.percentCell(both.all.mispredictRate());
        double b = base.all.mispredictRate();
        table.percentCell(
            b > 0.0 ? (b - both.all.mispredictRate()) / b : 0.0, 1);
        table.percentCell(same.all.mispredictRate());
        sum_base += base.all.mispredictRate();
        sum_both += both.all.mispredictRate();
        sum_same += same.all.mispredictRate();
    }
    double n = static_cast<double>(workloadNames().size());
    table.startRow();
    table.cell(std::string("MEAN"));
    table.percentCell(sum_base / n);
    table.percentCell(sum_both / n);
    table.percentCell(sum_base > 0.0 ? (sum_base - sum_both) / sum_base
                                     : 0.0,
                      1);
    table.percentCell(sum_same / n);

    emitTable(table, opts);
    std::cout << "expected shape: cross-input results track the "
                 "same-input column closely -\nregion formation "
                 "consumes only coarse block weights, so it does not "
                 "overfit\nthe training input.\n";
    return exitStatus(specs, results);
}
