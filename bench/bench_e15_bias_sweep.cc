/**
 * @file
 * E15 - The motivation figure: where does predication win? A single
 * diamond whose branch is taken with probability p is swept from
 * coin-flip (p=0.5) to strongly biased (p=0.99). Branchy code pays
 * mispredicts that peak at p=0.5; predicated code pays a constant
 * both-paths tax. The IPC crossover reproduces the intro argument of
 * every predication paper: if-convert the unpredictable branches,
 * keep the biased ones.
 */

#include <cstdio>

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

namespace {

/** Unique cache id per bias point ("bias-0.70"), since the generator
 * names every variant just "bias". */
std::string
biasId(double bias)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "bias-%.2f", bias);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    const std::vector<double> biases = {0.50, 0.60, 0.70, 0.80,
                                        0.90, 0.95, 0.99};

    std::cout << "E15: branch bias sweep on the diamond kernel "
                 "(gshare-4K, width 6, penalty 8)\n\n";

    // biases x {branchy, pred, pred+both}, all timed runs.
    std::vector<RunSpec> specs;
    for (double bias : biases) {
        RunSpec branchy;
        branchy.workload = biasId(bias);
        branchy.factory = [bias](std::uint64_t s) {
            return makeBiasWorkload(bias, s);
        };
        branchy.mode = RunMode::Timed;
        branchy.ifConvert = false;
        branchy.maxInsts = steps;
        branchy.seed = seed;
        specs.push_back(branchy);

        RunSpec pred = branchy;
        pred.ifConvert = true;
        specs.push_back(pred);

        RunSpec both = pred;
        both.engine.useSfpf = true;
        both.engine.usePgu = true;
        specs.push_back(both);
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"taken-prob", "mispredict(branchy)", "IPC(branchy)",
                 "IPC(pred)", "IPC(pred+both)", "pred wins"});

    std::size_t idx = 0;
    for (double bias : biases) {
        const RunResult &b = results[idx++];
        const RunResult &p = results[idx++];
        const RunResult &pb = results[idx++];

        table.startRow();
        table.cell(bias, 2);
        table.percentCell(b.engine.all.mispredictRate());
        table.cell(b.pipe.ipc(), 3);
        table.cell(p.pipe.ipc(), 3);
        table.cell(pb.pipe.ipc(), 3);
        table.cell(std::string(pb.pipe.ipc() > b.pipe.ipc() ? "yes"
                                                            : "no"));
    }

    emitTable(table, opts);
    std::cout << "expected shape: the predication margin is largest "
                 "where the branch is\nhard (p near 0.5) and shrinks "
                 "as bias approaches 1. On this in-order\nfront end "
                 "predication also removes taken-branch redirect "
                 "bubbles, so the\nmargin stays positive even for "
                 "biased branches - fatter arms or a\nnarrower "
                 "machine move the crossover into view.\n";
    return exitStatus(specs, results);
}
