/**
 * @file
 * Replay-loop throughput microbench (docs/PERF.md). Records each
 * suite workload once, then replays the identical event stream
 * through the reference loop (replayTrace: materialise a DynInst per
 * event, virtual predict+update) and the fast loop
 * (PredictionEngine::processBatch over the pre-decoded lanes),
 * timing both and HARD-FAILING unless their EngineStats and
 * BranchProfile are bit-identical - a fast path that drifts is not a
 * fast path, it is a different simulator.
 *
 * Reports instructions/sec per (predictor, workload, engine config) -
 * --predictor takes a comma-separated kind list, default
 * "gshare,tage" so the devirtualised TAGE arm is gated alongside
 * gshare - and writes a machine-readable throughput record (--out,
 * default
 * BENCH_replay.json) in the pabp.metrics JSON format; the perf-smoke
 * stage of scripts/run_experiments.sh keeps it under version-control
 * adjacent paths. Unlike the sweep binaries this one times the host,
 * so its numbers (not its equivalence verdict) vary machine to
 * machine.
 */

#include <chrono>
#include <string>
#include <vector>

#include "bpred/factory.hh"
#include "common.hh"
#include "core/engine.hh"
#include "sim/decoded_trace.hh"
#include "util/metrics.hh"

using namespace pabp;
using namespace pabp::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    opts.declare("predictor", "gshare,tage",
                 "comma-separated predictor kinds to time");
    opts.declare("size-log2", "12", "predictor table size (log2)");
    opts.declare("repeats", "3",
                 "timed repetitions per loop; the best is reported");
    opts.declare("out", "BENCH_replay.json",
                 "throughput record path (pabp.metrics JSON)");
    if (!opts.parse(argc, argv))
        return 0;
    const std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(opts.integer("seed"));
    const std::string predictor_list = opts.str("predictor");
    const unsigned size_log2 =
        static_cast<unsigned>(opts.integer("size-log2"));
    const int repeats =
        std::max<int>(1, static_cast<int>(opts.integer("repeats")));

    std::vector<std::string> predictors;
    for (std::size_t pos = 0; pos <= predictor_list.size();) {
        std::size_t comma = predictor_list.find(',', pos);
        if (comma == std::string::npos)
            comma = predictor_list.size();
        if (comma > pos)
            predictors.push_back(
                predictor_list.substr(pos, comma - pos));
        pos = comma + 1;
    }

    std::cout << "replay-hot: reference vs fast replay loop on "
              << predictor_list << " at 2^" << size_log2 << ", "
              << steps << " steps\n\n";

    struct Config
    {
        const char *label;
        bool sfpf;
        bool pgu;
    };
    const Config configs[] = {
        {"base", false, false},
        {"+both", true, true},
    };

    MetricsExporter ex;
    ex.setText("replay.predictor", predictor_list);
    ex.setInt("replay.size_log2", size_log2);
    ex.setInt("replay.steps", steps);
    ex.setInt("replay.repeats", repeats);

    Table table({"predictor", "workload", "config", "events",
                 "ref-Mi/s", "fast-Mi/s", "speedup"});
    bool all_equal = true;
    double min_speedup = 0.0;
    bool have_speedup = false;
    // Per-config minima: the perf-smoke regression gate tracks base
    // and +both separately (the +both fast path has its own budget -
    // ISSUE 7), while replay.min_speedup keeps the historical
    // all-config meaning.
    double min_speedup_base = 0.0, min_speedup_both = 0.0;
    bool have_base = false, have_both = false;

    for (const std::string &name : workloadNames()) {
        Workload wl = makeWorkload(name, seed);
        CompileOptions copts;
        copts.ifConvert = true;
        CompiledProgram cp = compileWorkload(wl, copts);

        Emulator rec_emu(cp.prog);
        if (wl.init)
            wl.init(rec_emu.state());
        const RecordedTrace recorded = recordTrace(rec_emu, steps);
        const DecodedTrace decoded = DecodedTrace::build(recorded);

        // Predictor matrix inside the workload loop: the recorded and
        // decoded traces are predictor-independent and shared.
        for (const std::string &predictor : predictors)
        for (const Config &config : configs) {
            EngineConfig ecfg;
            ecfg.useSfpf = config.sfpf;
            ecfg.usePgu = config.pgu;

            auto run_ref = [&](EngineStats &stats,
                               BranchProfile &profile) {
                PredictorPtr pred =
                    makePredictor(predictor, size_log2);
                PredictionEngine engine(*pred, ecfg);
                auto start = std::chrono::steady_clock::now();
                replayTrace(recorded, engine, steps);
                double elapsed = secondsSince(start);
                stats = engine.stats();
                profile = engine.branchProfile();
                return elapsed;
            };
            auto run_fast = [&](EngineStats &stats,
                                BranchProfile &profile) {
                PredictorPtr pred =
                    makePredictor(predictor, size_log2);
                PredictionEngine engine(*pred, ecfg);
                auto start = std::chrono::steady_clock::now();
                engine.processBatch(decoded, 0, steps);
                double elapsed = secondsSince(start);
                stats = engine.stats();
                profile = engine.branchProfile();
                return elapsed;
            };

            EngineStats ref_stats, fast_stats;
            BranchProfile ref_profile, fast_profile;
            double ref_best = 0.0, fast_best = 0.0;
            for (int r = 0; r < repeats; ++r) {
                double t = run_ref(ref_stats, ref_profile);
                ref_best = r == 0 ? t : std::min(ref_best, t);
                t = run_fast(fast_stats, fast_profile);
                fast_best = r == 0 ? t : std::min(fast_best, t);
            }

            const bool equal = ref_stats == fast_stats &&
                ref_profile == fast_profile;
            if (!equal) {
                all_equal = false;
                std::cerr << "FAILED: fast replay diverges from the "
                             "reference loop on "
                          << name << " (" << predictor << ", "
                          << config.label << ")\n";
            }

            const double events =
                static_cast<double>(decoded.size());
            const double ref_ips =
                ref_best > 0.0 ? events / ref_best : 0.0;
            const double fast_ips =
                fast_best > 0.0 ? events / fast_best : 0.0;
            const double speedup =
                ref_ips > 0.0 ? fast_ips / ref_ips : 0.0;
            if (!have_speedup || speedup < min_speedup) {
                min_speedup = speedup;
                have_speedup = true;
            }
            if (config.sfpf || config.pgu) {
                if (!have_both || speedup < min_speedup_both) {
                    min_speedup_both = speedup;
                    have_both = true;
                }
            } else {
                if (!have_base || speedup < min_speedup_base) {
                    min_speedup_base = speedup;
                    have_base = true;
                }
            }

            table.startRow();
            table.cell(predictor);
            table.cell(name);
            table.cell(std::string(config.label));
            table.cell(static_cast<std::uint64_t>(decoded.size()));
            table.cell(ref_ips / 1e6, 1);
            table.cell(fast_ips / 1e6, 1);
            table.cell(speedup, 2);

            const std::string key = "replay." + predictor + "." +
                name + "." + config.label + ".";
            ex.setInt(key + "events", decoded.size());
            ex.setReal(key + "ref_insts_per_sec", ref_ips);
            ex.setReal(key + "fast_insts_per_sec", fast_ips);
            ex.setReal(key + "speedup", speedup);
            ex.setInt(key + "stats_equal", equal ? 1 : 0);
        }
    }

    ex.setReal("replay.min_speedup",
               have_speedup ? min_speedup : 0.0);
    ex.setReal("replay.min_speedup.base",
               have_base ? min_speedup_base : 0.0);
    ex.setReal("replay.min_speedup.both",
               have_both ? min_speedup_both : 0.0);
    ex.setInt("replay.all_equal", all_equal ? 1 : 0);

    emitTable(table, opts);
    std::cout << "min speedup: " << min_speedup << "x (base "
              << min_speedup_base << "x, +both " << min_speedup_both
              << "x), equivalence: " << (all_equal ? "ok" : "FAILED")
              << "\n";

    Status written = ex.writeJsonFile(opts.str("out"));
    if (!written.ok()) {
        std::cerr << "FAILED: cannot write " << opts.str("out")
                  << ": " << written.toString() << "\n";
        return 1;
    }
    return all_equal ? 0 : 1;
}
