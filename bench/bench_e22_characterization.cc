/**
 * @file
 * E22 - Workload predictability characterization + adversarial
 * mining. Two questions:
 *
 *  1. How predictable is each suite workload, predictor-free?
 *     (core/predictability.hh: taken rate, transition rate,
 *     history-conditioned entropy H(outcome | last-k outcomes).)
 *  2. Can the miner (fuzz/mining.hh) find generated workloads whose
 *     residual mispredicts concentrate HARDER than anything in the
 *     hand-written suite - i.e. is the suite's H2P coverage an upper
 *     bound or just a starting point?
 *
 * Grid: {suite workloads + mined workloads} x one base config
 * (gshare, targets modelled), every cell characterized. The mined
 * workloads come from an in-process hill-climb campaign with a fixed
 * seed, so the binary is deterministic end to end. The dominance
 * metric is the tier-0 H2P mispredict share (tier-0 baseline
 * mispredicts / all dynamic branches, core/h2p.hh): the summary
 * records whether at least one mined workload beats EVERY suite
 * workload on it. Results go to --out (BENCH_characterization.json),
 * metric names in docs/OBSERVABILITY.md.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "common.hh"
#include "core/h2p.hh"
#include "core/predictability.hh"
#include "fuzz/fuzz_gen.hh"
#include "fuzz/mining.hh"
#include "util/metrics.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    opts.declare("size-log2", "12", "gshare budget class (log2)");
    opts.declare("mine-seed", "5", "first mining restart seed");
    opts.declare("mine-restarts", "6", "mining hill-climb restarts");
    opts.declare("mine-steps", "32",
                 "knob mutations per mining restart");
    opts.declare("mine-top", "3",
                 "mined workloads carried into the grid");
    opts.declare("out", "BENCH_characterization.json",
                 "summary path (pabp.metrics JSON; empty = skip)");
    opts.declare("strict", "1",
                 "exit nonzero when no mined workload dominates the "
                 "suite on tier-0 share (the E22 acceptance shape); "
                 "0 for reduced smoke runs");
    if (!opts.parse(argc, argv))
        return 0;
    const std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(opts.integer("seed"));
    const unsigned size_log2 =
        static_cast<unsigned>(opts.integer("size-log2"));

    std::cout << "E22: workload predictability characterization + "
                 "adversarial mining (gshare-2^"
              << size_log2 << ")\n\n";

    // Stage 1: mine. Fixed seeds make the whole binary reproducible;
    // the campaign is in-process (no .pabp round-trip) and every
    // winner has already survived the full oracle set.
    fuzz::MiningConfig mcfg;
    mcfg.baseSeed =
        static_cast<std::uint64_t>(opts.integer("mine-seed"));
    mcfg.restarts =
        static_cast<unsigned>(opts.integer("mine-restarts"));
    mcfg.steps = static_cast<unsigned>(opts.integer("mine-steps"));
    mcfg.emitTop = static_cast<unsigned>(opts.integer("mine-top"));
    mcfg.maxInsts = std::min<std::uint64_t>(steps, 200'000);
    fuzz::RunEnv env;
    Expected<fuzz::MiningResult> mined =
        fuzz::runMiningCampaign(mcfg, env, std::cout);
    if (!mined.ok()) {
        std::cerr << "FAILED: mining: " << mined.status().toString()
                  << "\n";
        return 1;
    }
    if (mined.value().oracleFailures > 0) {
        std::cerr << "FAILED: mining surfaced an oracle divergence "
                     "(see log above)\n";
        return 1;
    }
    std::cout << "\n";

    // Stage 2: one characterized base cell per workload, suite
    // members first, mined workloads appended via factories.
    std::vector<RunSpec> specs;
    auto baseSpec = [&](const std::string &id) {
        RunSpec spec;
        spec.workload = id;
        spec.predictor = "gshare";
        spec.sizeLog2 = size_log2;
        spec.maxInsts = steps;
        spec.seed = seed;
        spec.engine.modelTargets = true;
        applyCheckpointOptions(spec, opts);
        // After applyCheckpointOptions: that helper also applies the
        // --characterize flag (default off), and E22 cells are always
        // characterized - that is the whole point of the bench.
        spec.characterize = true;
        return spec;
    };
    const std::vector<std::string> suite = workloadNames();
    for (const std::string &name : suite)
        specs.push_back(baseSpec(name));
    for (const fuzz::MinedCase &w : mined.value().top) {
        // The id must uniquely name the generated program: seed plus
        // the knob fingerprint (the climb moves knobs, not seeds).
        RunSpec spec = baseSpec(
            w.fuzzCase.name + "-" +
            std::to_string(fuzz::configFingerprint(w.fuzzCase.gen)));
        const std::uint64_t mine_seed = w.fuzzCase.seed;
        const fuzz::FuzzProgramConfig gen = w.fuzzCase.gen;
        spec.factory = [mine_seed, gen](std::uint64_t) {
            return fuzz::makeFuzzWorkload(mine_seed, gen);
        };
        spec.compile = fuzz::fuzzCompileOptions(gen, true);
        spec.maxInsts = std::min<std::uint64_t>(steps, 200'000);
        specs.push_back(spec);
    }

    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    MetricsExporter summary;
    summary.setText("characterization.predictor", "gshare");
    summary.setInt("characterization.size_log2", size_log2);
    summary.setInt("characterization.steps", steps);
    summary.setInt("characterization.mined_workloads",
                   mined.value().top.size());

    Table table({"workload", "branches", "taken", "trans", "H(k0)",
                 "H(kmax)", "t0 share"});
    double bestSuite = 0.0, bestMined = 0.0;
    std::string bestSuiteName, bestMinedName;
    bool cellFailure = false;

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const bool is_mined = i >= suite.size();
        const std::string &id = specs[i].workload;
        if (!results[i].status.ok() || !results[i].predictability) {
            std::cerr << "FAILED: " << id << ": "
                      << (results[i].status.ok()
                              ? "characterization report missing"
                              : results[i].status.toString().c_str())
                      << "\n";
            cellFailure = true;
            continue;
        }
        const PredictabilityReport &rep = *results[i].predictability;
        Expected<H2pClassification> cls =
            classifyH2p(results[i].profile);
        if (!cls.ok()) {
            std::cerr << "FAILED: " << id << ": "
                      << cls.status().toString() << "\n";
            cellFailure = true;
            continue;
        }
        const std::uint64_t branches =
            results[i].engine.all.branches;
        const double t0_share = branches
            ? static_cast<double>(
                  cls.value().tierMispredicts.front()) /
                static_cast<double>(branches)
            : 0.0;

        table.startRow();
        table.cell(id);
        table.cell(branches);
        table.cell(rep.takenRate(), 3);
        table.cell(rep.transitionRate(), 3);
        table.cell(rep.entropy.front(), 3);
        table.cell(rep.entropy.back(), 3);
        table.cell(t0_share, 4);

        const std::string prefix = "characterization." + id;
        summary.setText(prefix + ".kind",
                        is_mined ? "mined" : "suite");
        summary.setInt(prefix + ".branches", branches);
        summary.setReal(prefix + ".taken_rate", rep.takenRate());
        summary.setReal(prefix + ".transition_rate",
                        rep.transitionRate());
        for (std::size_t k = 0; k < rep.historyLengths.size(); ++k)
            summary.setReal(prefix + ".entropy.k" +
                                std::to_string(rep.historyLengths[k]),
                            rep.entropy[k]);
        summary.setReal(prefix + ".h2p.tier0_share", t0_share);

        double &best = is_mined ? bestMined : bestSuite;
        std::string &bestName =
            is_mined ? bestMinedName : bestSuiteName;
        if (t0_share > best || bestName.empty()) {
            best = t0_share;
            bestName = id;
        }
    }

    const bool dominant =
        !bestMinedName.empty() && bestMined > bestSuite;
    summary.setReal("characterization.suite.best_tier0_share",
                    bestSuite);
    summary.setText("characterization.suite.best_workload",
                    bestSuiteName);
    summary.setReal("characterization.mined.best_tier0_share",
                    bestMined);
    summary.setText("characterization.mined.best_workload",
                    bestMinedName);
    summary.setInt("characterization.mined.dominant",
                   dominant ? 1 : 0);

    emitTable(table, opts);
    std::cout << "hardest suite workload:  " << bestSuiteName
              << " (tier-0 share " << bestSuite << ")\n"
              << "hardest mined workload:  " << bestMinedName
              << " (tier-0 share " << bestMined << ")\n"
              << "expected shape: the miner's hill-climb finds "
                 "generated programs whose\nresidual mispredicts "
                 "concentrate harder than any hand-written suite\n"
                 "member (mined.dominant == 1) - the suite is a "
                 "floor, not a ceiling,\nfor H2P stress.\n";

    const std::string out = opts.str("out");
    if (!out.empty()) {
        Status written = summary.writeJsonFile(out);
        if (!written.ok()) {
            std::cerr << "FAILED: cannot write " << out << ": "
                      << written.toString() << "\n";
            return 1;
        }
    }
    if (cellFailure)
        return 1;
    if (!dominant && opts.flag("strict")) {
        std::cerr << "FAILED: no mined workload dominates the suite "
                     "on tier-0 mispredict share\n";
        return 1;
    }
    return exitStatus(specs, results);
}
