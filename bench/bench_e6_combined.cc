/**
 * @file
 * E6 - The combined result: mispredict rate (and MPKI) of the base
 * gshare, each technique alone, and both together, per workload and
 * suite mean. The paper's claim is that the techniques compose: the
 * filter removes false-path noise, PGU fixes the correlated region
 * branches, and together they dominate either alone.
 */

#include <algorithm>

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    opts.declare("predictor", "gshare", "base predictor kind");
    opts.declare("size-log2", "12", "predictor table size (log2)");
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));
    std::string predictor = opts.str("predictor");
    unsigned size_log2 =
        static_cast<unsigned>(opts.integer("size-log2"));

    std::cout << "E6: technique composition on " << predictor << "-2^"
              << size_log2 << "\n\n";

    struct Config
    {
        const char *label;
        bool sfpf;
        bool pgu;
    };
    const Config configs[] = {
        {"base", false, false},
        {"+SFPF", true, false},
        {"+PGU", false, true},
        {"+both", true, true},
    };

    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        for (const Config &config : configs) {
            RunSpec spec;
            spec.workload = name;
            spec.predictor = predictor;
            spec.sizeLog2 = size_log2;
            spec.engine.useSfpf = config.sfpf;
            spec.engine.usePgu = config.pgu;
            spec.maxInsts = steps;
            spec.seed = seed;
            applyCheckpointOptions(spec, opts);
            specs.push_back(spec);
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"workload", "base", "+SFPF", "+PGU", "+both",
                 "best-reduction"});
    double sums[4] = {};
    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        table.startRow();
        table.cell(name);
        double rates[4];
        for (int c = 0; c < 4; ++c) {
            rates[c] = results[idx++].engine.all.mispredictRate();
            sums[c] += rates[c];
            table.percentCell(rates[c]);
        }
        double best = std::min({rates[1], rates[2], rates[3]});
        table.percentCell(
            rates[0] > 0.0 ? (rates[0] - best) / rates[0] : 0.0, 1);
    }
    table.startRow();
    table.cell(std::string("MEAN"));
    double n = static_cast<double>(workloadNames().size());
    double mean_base = sums[0] / n;
    double mean_best = sums[3] / n;
    for (double s : sums)
        table.percentCell(s / n);
    table.percentCell(mean_base > 0.0
                          ? (mean_base - mean_best) / mean_base
                          : 0.0,
                      1);

    emitTable(table, opts);
    return exitStatus(specs, results);
}
