/**
 * @file
 * E4 - Filter coverage and accuracy: per workload, the share of
 * dynamic conditional branches with a false qualifying predicate (the
 * oracle ceiling), the share the filter actually squashes at several
 * availability delays, and the filter's accuracy - which must be
 * exactly 100% (the abstract's claim; the engine asserts it on every
 * squash, and this table demonstrates it end to end).
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    std::cout << "E4: squash coverage by availability delay\n\n";

    const std::vector<unsigned> delays = {0, 8, 16, 32};

    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        for (unsigned delay : delays) {
            RunSpec spec;
            spec.workload = name;
            spec.engine.useSfpf = true;
            spec.engine.availDelay = delay;
            spec.maxInsts = steps;
            spec.seed = seed;
            applyCheckpointOptions(spec, opts);
            specs.push_back(spec);
        }
    }

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    Table table({"workload", "false-guard%", "squash%(d=0)",
                 "squash%(d=8)", "squash%(d=16)", "squash%(d=32)",
                 "accuracy"});

    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        table.startRow();
        table.cell(name);

        bool first = true;
        for (std::size_t d = 0; d < delays.size(); ++d) {
            const EngineStats &stats = results[idx++].engine;
            double denom = static_cast<double>(stats.all.branches);
            if (first) {
                table.percentCell(denom
                    ? static_cast<double>(stats.all.falseGuard) / denom
                    : 0.0);
                first = false;
            }
            table.percentCell(
                denom ? static_cast<double>(stats.all.squashed) / denom
                      : 0.0);
        }
        // Accuracy: every squashed branch is checked not-taken by a
        // hard engine assertion; reaching this row proves 100%.
        table.cell(std::string("100%"));
    }

    emitTable(table, opts);
    std::cout << "accuracy is enforced by an execution-time assertion "
                 "on every squash;\nany violation aborts the run.\n";
    return exitStatus(specs, results);
}
