/**
 * @file
 * E17 - Selective if-conversion: instead of predicating every hot
 * region, only seed hyperblocks on branches the profile says are
 * actually mispredicting (threshold theta on the profiled mispredict
 * ratio). The classic result this reproduces: most of the benefit
 * comes from converting the few hard branches, and skipping the
 * easy ones claws back the both-paths instruction tax.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

namespace {

constexpr std::uint64_t toHaltCap = 30'000'000;

struct Point
{
    double mispredict;
    double ipc;
    double overhead;
    std::uint64_t regions;
};

Point
measure(double theta, bool if_convert, std::uint64_t seed,
        const std::vector<std::uint64_t> &branchy_insts)
{
    PipelineConfig pcfg;
    Point point{0.0, 0.0, 0.0, 0};
    std::size_t idx = 0;
    for (const std::string &name : workloadNames()) {
        Workload wl = makeWorkload(name, seed);
        CompileOptions copts;
        copts.ifConvert = if_convert;
        copts.heuristics.minSeedMispredictRatio = theta;
        CompiledProgram cp = compileWorkload(wl, copts);
        point.regions += cp.info.numRegions;

        PredictorPtr pred = makePredictor("gshare", 12);
        EngineConfig ecfg;
        ecfg.useSfpf = if_convert;
        ecfg.usePgu = if_convert;
        PredictionEngine engine(*pred, ecfg);
        Pipeline pipe(engine, pcfg);
        Emulator emu(cp.prog);
        if (wl.init)
            wl.init(emu.state());
        const PipelineStats &stats = pipe.run(emu, toHaltCap);

        point.mispredict += engine.stats().all.mispredictRate();
        point.ipc += stats.ipc();
        point.overhead += static_cast<double>(stats.insts) /
            static_cast<double>(branchy_insts[idx]);
        ++idx;
    }
    double n = static_cast<double>(workloadNames().size());
    point.mispredict /= n;
    point.ipc /= n;
    point.overhead /= n;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    std::cout << "E17: selective if-conversion by profiled mispredict "
                 "ratio\n(suite means, runs to halt, gshare-4K + both "
                 "techniques)\n\n";

    // Branchy instruction baselines for the overhead column.
    std::vector<std::uint64_t> branchy_insts;
    for (const std::string &name : workloadNames()) {
        Workload wl = makeWorkload(name, seed);
        CompileOptions nopts;
        nopts.ifConvert = false;
        CompiledProgram normal = compileWorkload(wl, nopts);
        Emulator emu(normal.prog);
        if (wl.init)
            wl.init(emu.state());
        emu.run(toHaltCap);
        branchy_insts.push_back(emu.instsExecuted());
    }

    Table table({"theta", "static-regions", "mispredict", "IPC",
                 "inst-overhead"});

    Point branchy = measure(0.0, false, seed, branchy_insts);
    table.startRow();
    table.cell(std::string("branchy"));
    table.cell(std::uint64_t{0});
    table.percentCell(branchy.mispredict);
    table.cell(branchy.ipc, 3);
    table.cell(branchy.overhead, 2);

    for (double theta : {0.0, 0.005, 0.01, 0.02, 0.05, 0.10}) {
        Point point = measure(theta, true, seed, branchy_insts);
        table.startRow();
        table.cell(theta, 3);
        table.cell(point.regions);
        table.percentCell(point.mispredict);
        table.cell(point.ipc, 3);
        table.cell(point.overhead, 2);
    }

    emitTable(table, opts);
    std::cout << "theta = required profiled mispredict ratio for a "
                 "hyperblock seed\n(0 = predicate everything hot). "
                 "Raising theta trims regions and the\ninstruction "
                 "tax while keeping most of the IPC win - until it "
                 "starts\nskipping genuinely hard branches.\n";
    return 0;
}
