/**
 * @file
 * E17 - Selective if-conversion: instead of predicating every hot
 * region, only seed hyperblocks on branches the profile says are
 * actually mispredicting (threshold theta on the profiled mispredict
 * ratio). The classic result this reproduces: most of the benefit
 * comes from converting the few hard branches, and skipping the
 * easy ones claws back the both-paths instruction tax.
 */

#include "common.hh"

using namespace pabp;
using namespace pabp::bench;

namespace {

constexpr std::uint64_t toHaltCap = 30'000'000;

struct Point
{
    double mispredict = 0.0;
    double ipc = 0.0;
    double overhead = 0.0;
    std::uint64_t regions = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts = standardOptions();
    if (!opts.parse(argc, argv))
        return 0;
    std::uint64_t seed = static_cast<std::uint64_t>(opts.integer("seed"));

    const std::vector<double> thetas = {0.0, 0.005, 0.01, 0.02, 0.05,
                                        0.10};

    std::cout << "E17: selective if-conversion by profiled mispredict "
                 "ratio\n(suite means, runs to halt, gshare-4K + both "
                 "techniques)\n\n";

    // Grid layout: [branchy instruction baselines (trace)][branchy
    // timed point][thetas x workloads timed points].
    std::vector<RunSpec> specs;
    for (const std::string &name : workloadNames()) {
        RunSpec branchy;
        branchy.workload = name;
        branchy.ifConvert = false;
        branchy.maxInsts = toHaltCap;
        branchy.seed = seed;
        specs.push_back(branchy);
    }
    const std::size_t timed_offset = specs.size();
    auto pointSpecs = [&](double theta, bool if_convert) {
        for (const std::string &name : workloadNames()) {
            RunSpec spec;
            spec.workload = name;
            spec.mode = RunMode::Timed;
            spec.ifConvert = if_convert;
            spec.engine.useSfpf = if_convert;
            spec.engine.usePgu = if_convert;
            spec.compile.heuristics.minSeedMispredictRatio = theta;
            spec.maxInsts = toHaltCap;
            spec.seed = seed;
            specs.push_back(spec);
        }
    };
    pointSpecs(0.0, false);
    for (double theta : thetas)
        pointSpecs(theta, true);

    applyMetricsOptions(specs, opts);
    SweepRunner runner(sweepConfigFromOptions(opts));
    std::vector<RunResult> results = runner.run(specs);

    std::vector<std::uint64_t> branchy_insts;
    for (std::size_t w = 0; w < workloadNames().size(); ++w)
        branchy_insts.push_back(results[w].engine.insts);

    std::size_t idx = timed_offset;
    auto takePoint = [&]() {
        Point point;
        for (std::size_t w = 0; w < workloadNames().size(); ++w) {
            const RunResult &result = results[idx++];
            point.regions += result.numRegions;
            point.mispredict += result.engine.all.mispredictRate();
            point.ipc += result.pipe.ipc();
            point.overhead += static_cast<double>(result.pipe.insts) /
                static_cast<double>(branchy_insts[w]);
        }
        double n = static_cast<double>(workloadNames().size());
        point.mispredict /= n;
        point.ipc /= n;
        point.overhead /= n;
        return point;
    };

    Table table({"theta", "static-regions", "mispredict", "IPC",
                 "inst-overhead"});

    Point branchy = takePoint();
    table.startRow();
    table.cell(std::string("branchy"));
    table.cell(std::uint64_t{0});
    table.percentCell(branchy.mispredict);
    table.cell(branchy.ipc, 3);
    table.cell(branchy.overhead, 2);

    for (double theta : thetas) {
        Point point = takePoint();
        table.startRow();
        table.cell(theta, 3);
        table.cell(point.regions);
        table.percentCell(point.mispredict);
        table.cell(point.ipc, 3);
        table.cell(point.overhead, 2);
    }

    emitTable(table, opts);
    std::cout << "theta = required profiled mispredict ratio for a "
                 "hyperblock seed\n(0 = predicate everything hot). "
                 "Raising theta trims regions and the\ninstruction "
                 "tax while keeping most of the IPC win - until it "
                 "starts\nskipping genuinely hard branches.\n";
    return exitStatus(specs, results);
}
