/**
 * @file
 * pabp-sweepd - long-lived shard runner for crash-safe sweep
 * campaigns (bench/sweep_service.hh, docs/PARALLEL.md).
 *
 * The tool expands a campaign grid (workloads x predictors x engine
 * configs x sizes x seeds), takes a deterministic `--shard i/N`
 * partition of it, and runs the owned cells against an append-only
 * results journal. Invoke it again after a crash - or `kill -9` it
 * mid-campaign and re-invoke - and it scans the journal, skips the
 * cells already recorded, re-runs quarantined ones, and converges to
 * the same final journal bytes an uninterrupted run produces.
 *
 * Exit status:
 *   0  shard drained, no quarantined cells
 *   1  shard drained, some cells quarantined (failures are durable in
 *      the journal; inspect with pabp-stats)
 *   2  setup error (bad options, unusable journal)
 *   3  stopped early by --stop-after (testing hook; not drained)
 */

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sweep_service.hh"
#include "util/options.hh"
#include "workloads/workload.hh"

using namespace pabp;
using namespace pabp::bench;

namespace {

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(text);
    while (std::getline(is, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

bool
parseShard(const std::string &text, ShardSpec &shard)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
        return false;
    }
    try {
        std::size_t used = 0;
        const unsigned long i = std::stoul(text.substr(0, slash), &used);
        if (used != slash)
            return false;
        const std::string count_text = text.substr(slash + 1);
        const unsigned long n = std::stoul(count_text, &used);
        if (used != count_text.size())
            return false;
        if (n == 0 || i >= n)
            return false;
        shard.index = static_cast<std::uint32_t>(i);
        shard.count = static_cast<std::uint32_t>(n);
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

struct EngineVariant
{
    std::string name;
    bool sfpf;
    bool pgu;
};

bool
parseConfigs(const std::string &text, std::vector<EngineVariant> &out)
{
    for (const std::string &name : splitList(text)) {
        if (name == "base")
            out.push_back({name, false, false});
        else if (name == "sfpf" || name == "+sfpf")
            out.push_back({name, true, false});
        else if (name == "pgu" || name == "+pgu")
            out.push_back({name, false, true});
        else if (name == "both" || name == "+both")
            out.push_back({name, true, true});
        else
            return false;
    }
    return !out.empty();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts;
    opts.declare("workloads", "all",
                 "comma list of suite workloads (or 'all')");
    opts.declare("predictors", "gshare",
                 "comma list of base predictor kinds");
    opts.declare("configs", "base,sfpf,pgu,both",
                 "comma list of engine configs "
                 "(base, sfpf, pgu, both)");
    opts.declare("sizes", "12",
                 "comma list of predictor table sizes (log2)");
    opts.declare("seeds", "42", "comma list of workload input seeds");
    opts.declare("steps", "1500000", "instructions per cell");
    opts.declare("shard", "0/1",
                 "run shard i of N ('i/N'); cell ownership is a pure "
                 "function of the spec fingerprint");
    opts.declare("journal", "pabp-sweep.pabpj",
                 "base journal path; a multi-shard run derives "
                 "'<base>-shard<i>of<N>.<ext>' per shard");
    opts.declare("jobs", "0",
                 "parallel sweep workers (0 = hardware concurrency)");
    opts.declare("max-attempts", "3",
                 "total tries per cell for retryable (IoError) "
                 "failures; 1 = no retry");
    opts.declare("backoff-ms", "0",
                 "deterministic retry backoff base, milliseconds "
                 "(doubles per attempt)");
    opts.declare("watchdog-ms", "0",
                 "per-attempt wall-clock deadline, milliseconds "
                 "(0 = off); an overrunning cell is quarantined with "
                 "DeadlineExceeded instead of stalling the shard");
    opts.declare("heartbeat-insts", "65536",
                 "instructions between watchdog checks");
    opts.declare("metrics-dir", "",
                 "ALSO export per-cell metrics JSON files into this "
                 "directory (the journal is the primary sink)");
    opts.declare("compact-every", "0",
                 "compact the journal after this many records "
                 "committed (0 = only at drain)");
    opts.declare("batch-cells", "0",
                 "cells handed to the runner per commit batch "
                 "(0 = 4x jobs)");
    opts.declare("stop-after", "0",
                 "testing hook: stop after N records committed, "
                 "simulating a crash (0 = off)");
    if (!opts.parse(argc, argv))
        return 0;

    ShardSpec shard;
    if (!parseShard(opts.str("shard"), shard)) {
        std::cerr << "pabp-sweepd: bad --shard '" << opts.str("shard")
                  << "' (want 'i/N' with i < N)\n";
        return 2;
    }
    std::vector<EngineVariant> configs;
    if (!parseConfigs(opts.str("configs"), configs)) {
        std::cerr << "pabp-sweepd: bad --configs '"
                  << opts.str("configs")
                  << "' (want a comma list of base, sfpf, pgu, both)\n";
        return 2;
    }
    std::vector<std::string> names = opts.str("workloads") == "all"
        ? workloadNames()
        : splitList(opts.str("workloads"));
    const std::vector<std::string> known = workloadNames();
    for (const std::string &name : names) {
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            std::cerr << "pabp-sweepd: unknown workload '" << name
                      << "'\n";
            return 2;
        }
    }

    const std::uint64_t steps =
        static_cast<std::uint64_t>(opts.integer("steps"));
    std::vector<RunSpec> grid;
    for (const std::string &seed_text : splitList(opts.str("seeds"))) {
        for (const std::string &name : names) {
            for (const std::string &pred :
                 splitList(opts.str("predictors"))) {
                for (const std::string &size_text :
                     splitList(opts.str("sizes"))) {
                    for (const EngineVariant &variant : configs) {
                        RunSpec spec;
                        spec.workload = name;
                        spec.predictor = pred;
                        spec.seed = static_cast<std::uint64_t>(
                            std::stoull(seed_text));
                        spec.sizeLog2 = static_cast<unsigned>(
                            std::stoul(size_text));
                        spec.engine.useSfpf = variant.sfpf;
                        spec.engine.usePgu = variant.pgu;
                        spec.maxInsts = steps;
                        spec.metricsDir = opts.str("metrics-dir");
                        spec.watchdogMillis = static_cast<std::uint32_t>(
                            opts.integer("watchdog-ms"));
                        spec.heartbeatInsts =
                            static_cast<std::uint64_t>(
                                opts.integer("heartbeat-insts"));
                        spec.maxAttempts = static_cast<unsigned>(
                            opts.integer("max-attempts"));
                        spec.retryBackoffMillis =
                            static_cast<std::uint32_t>(
                                opts.integer("backoff-ms"));
                        grid.push_back(spec);
                    }
                }
            }
        }
    }

    SweepRunner runner(SweepRunner::Config{
        static_cast<unsigned>(opts.integer("jobs")), 0});
    ServiceConfig config;
    config.journalPath =
        deriveShardJournalPath(opts.str("journal"), shard);
    config.shard = shard;
    config.compactEvery =
        static_cast<std::uint64_t>(opts.integer("compact-every"));
    config.stopAfter =
        static_cast<std::uint64_t>(opts.integer("stop-after"));
    config.batchCells =
        static_cast<std::size_t>(opts.integer("batch-cells"));

    SweepService service(runner, config);
    Expected<ServiceReport> outcome = service.runShard(std::move(grid));
    if (!outcome.ok()) {
        std::cerr << "pabp-sweepd: " << outcome.status().toString()
                  << "\n";
        return 2;
    }
    const ServiceReport &report = outcome.value();
    std::cout << "pabp-sweepd shard " << shard.index << "/"
              << shard.count << " -> " << config.journalPath << "\n"
              << "  owned " << report.ownedCells << ", already done "
              << report.alreadyDone << ", executed " << report.executed
              << ", committed " << report.committed << "\n"
              << "  retried " << report.retried << ", quarantined "
              << report.quarantined << ", resume fallbacks "
              << report.resumeFallbacks
              << (report.salvagedTail ? ", salvaged torn tail" : "")
              << "\n"
              << (report.drained
                      ? std::string("  drained\n")
                      : std::string("  NOT drained\n"));
    if (report.stopped)
        return 3;
    return report.quarantined ? 1 : 0;
}
