/**
 * @file
 * pabp-stats: diff two exported metrics documents.
 *
 *   pabp-stats [--top N] <a.json> <b.json>
 *
 * Loads two files written by the bench binaries' --metrics-dir export
 * (schema "pabp.metrics", docs/OBSERVABILITY.md), validates them, and
 * prints every differing metric and per-branch table row. Exit
 * status: 0 = identical, 1 = differences found, 2 = usage or input
 * error - so scripts can use it both as a comparator and as a gate.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "util/metrics.hh"

namespace {

using namespace pabp;

int
usage()
{
    std::cerr << "usage: pabp-stats [--top N] <a.json> <b.json>\n"
              << "  Diffs two pabp.metrics documents; --top bounds\n"
              << "  the per-table rows printed (0 = all).\n";
    return 2;
}

/** Read, parse and schema-check one metrics file. */
bool
loadMetrics(const std::string &path, JsonValue &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "pabp-stats: cannot open " << path << "\n";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Expected<JsonValue> parsed = parseJson(text.str());
    if (!parsed.ok()) {
        std::cerr << "pabp-stats: " << path << ": "
                  << parsed.status().toString() << "\n";
        return false;
    }
    out = std::move(parsed.value());
    const JsonValue *schema = out.find("schema");
    if (!schema || schema->kind != JsonValue::Kind::String ||
        schema->text != kMetricsSchemaName) {
        std::cerr << "pabp-stats: " << path
                  << ": not a pabp.metrics document\n";
        return false;
    }
    const JsonValue *version = out.find("version");
    if (!version || !version->isInt ||
        version->intValue > kMetricsSchemaVersion) {
        std::cerr << "pabp-stats: " << path
                  << ": unsupported schema version\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t top_k = 0;
    std::string paths[2];
    int npaths = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--top") {
            if (i + 1 >= argc)
                return usage();
            char *end = nullptr;
            unsigned long long v = std::strtoull(argv[++i], &end, 10);
            if (!end || *end != '\0')
                return usage();
            top_k = static_cast<std::size_t>(v);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else if (npaths < 2) {
            paths[npaths++] = arg;
        } else {
            return usage();
        }
    }
    if (npaths != 2)
        return usage();

    JsonValue a, b;
    if (!loadMetrics(paths[0], a) || !loadMetrics(paths[1], b))
        return 2;

    std::size_t diffs = diffMetrics(a, b, std::cout, top_k);
    if (diffs == 0) {
        std::cout << "identical (" << paths[0] << " == " << paths[1]
                  << ")\n";
        return 0;
    }
    std::cout << diffs << " difference(s)\n";
    return 1;
}
