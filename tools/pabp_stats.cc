/**
 * @file
 * pabp-stats: query and diff exported metrics - loose JSON documents
 * or sweep journals (util/journal.hh).
 *
 *   pabp-stats [--top N] <a.json> <b.json>      diff two documents
 *   pabp-stats [--top N] <a.pabpj> <b.pabpj>    diff two journals
 *                                               (common cells, by
 *                                               fingerprint)
 *   pabp-stats --list <j.pabpj>                 list journal records
 *   pabp-stats --extract <fp> <j.pabpj>         print one cell's
 *                                               metrics JSON
 *   pabp-stats --pack <dir> <out.pabpj>         pack loose
 *                                               pabp-metrics-*.json
 *                                               files into a journal
 *   pabp-stats --characterize <trace>           predictability metrics
 *                                               (core/predictability.hh)
 *                                               for a recorded
 *                                               (PABPTRC1/2) or decoded
 *                                               (PABPDTF1) trace, as a
 *                                               pabp.metrics document
 *                                               on stdout
 *
 * Journal inputs are detected by magic, so the two-argument diff form
 * accepts either representation (both sides must match), and
 * --characterize accepts both trace formats the same way. Exit
 * status: 0 = identical, 1 = differences found, 2 = usage or input
 * error - so scripts can use it both as a comparator and as a gate.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/predictability.hh"
#include "sim/decoded_trace.hh"
#include "sim/trace_io.hh"
#include "util/journal.hh"
#include "util/metrics.hh"

namespace {

using namespace pabp;

int
usage()
{
    std::cerr
        << "usage: pabp-stats [--top N] <a.json|a.pabpj> "
           "<b.json|b.pabpj>\n"
        << "       pabp-stats --list <journal>\n"
        << "       pabp-stats --extract <fingerprint> <journal>\n"
        << "       pabp-stats --pack <metrics-dir> <out-journal>\n"
        << "       pabp-stats --characterize <trace>\n"
        << "  Diffs two pabp.metrics documents or two sweep journals\n"
        << "  (common cells, keyed by spec fingerprint); --top bounds\n"
        << "  the per-table rows printed (0 = all). --characterize\n"
        << "  prints predictability.* metrics (taken/transition\n"
        << "  rates, history-conditioned entropy) for a recorded or\n"
        << "  decoded trace, dispatched on the file magic.\n";
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "pabp-stats: cannot open " << path << "\n";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    return true;
}

/** Parse and schema-check one metrics document. */
bool
parseMetrics(const std::string &text, const std::string &what,
             JsonValue &out)
{
    Expected<JsonValue> parsed = parseJson(text);
    if (!parsed.ok()) {
        std::cerr << "pabp-stats: " << what << ": "
                  << parsed.status().toString() << "\n";
        return false;
    }
    out = std::move(parsed.value());
    const JsonValue *schema = out.find("schema");
    if (!schema || schema->kind != JsonValue::Kind::String ||
        schema->text != kMetricsSchemaName) {
        std::cerr << "pabp-stats: " << what
                  << ": not a pabp.metrics document\n";
        return false;
    }
    const JsonValue *version = out.find("version");
    if (!version || !version->isInt ||
        version->intValue > kMetricsSchemaVersion) {
        std::cerr << "pabp-stats: " << what
                  << ": unsupported schema version\n";
        return false;
    }
    return true;
}

bool
isJournalImage(const std::string &bytes)
{
    return bytes.size() >= 8 &&
        std::memcmp(bytes.data(), kJournalMagic, 8) == 0;
}

std::string
fingerprintHex(std::uint64_t fp)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fp));
    return hex;
}

bool
loadJournal(const std::string &path, const std::string &bytes,
            std::vector<JournalRecord> &records)
{
    Expected<std::vector<JournalRecord>> parsed =
        readJournalImage(bytes);
    if (!parsed.ok()) {
        std::cerr << "pabp-stats: " << path << ": "
                  << parsed.status().toString() << "\n";
        return false;
    }
    records = std::move(parsed.value());
    return true;
}

int
listJournal(const std::string &path)
{
    std::string bytes;
    std::vector<JournalRecord> records;
    if (!readFile(path, bytes) || !isJournalImage(bytes) ||
        !loadJournal(path, bytes, records)) {
        if (!bytes.empty() && !isJournalImage(bytes))
            std::cerr << "pabp-stats: " << path
                      << ": not a sweep journal\n";
        return 2;
    }
    for (const JournalRecord &rec : records) {
        std::cout << fingerprintHex(rec.fingerprint) << "  "
                  << (rec.kind == JournalRecord::Kind::Result
                          ? "result    "
                          : "quarantine")
                  << "  attempts=" << rec.attempts << "  status="
                  << statusCodeName(
                         static_cast<StatusCode>(rec.statusCode));
        if (rec.kind == JournalRecord::Kind::Result &&
            rec.columns.size() >= 3) {
            std::cout << "  insts=" << rec.columns[0]
                      << "  branches=" << rec.columns[1]
                      << "  mispredicts=" << rec.columns[2];
        }
        if (rec.kind == JournalRecord::Kind::Quarantine)
            std::cout << "  error=\"" << rec.blob << "\"";
        std::cout << "\n";
    }
    std::cout << records.size() << " record(s)\n";
    return 0;
}

int
extractCell(const std::string &fp_text, const std::string &path)
{
    char *end = nullptr;
    const std::uint64_t fp = std::strtoull(fp_text.c_str(), &end, 16);
    if (!end || *end != '\0') {
        std::cerr << "pabp-stats: bad fingerprint '" << fp_text
                  << "' (want hex)\n";
        return 2;
    }
    std::string bytes;
    std::vector<JournalRecord> records;
    if (!readFile(path, bytes) || !loadJournal(path, bytes, records))
        return 2;
    // Last record wins, matching the service's resume semantics.
    const JournalRecord *found = nullptr;
    for (const JournalRecord &rec : records) {
        if (rec.fingerprint == fp)
            found = &rec;
    }
    if (!found) {
        std::cerr << "pabp-stats: no record for "
                  << fingerprintHex(fp) << " in " << path << "\n";
        return 2;
    }
    if (found->kind == JournalRecord::Kind::Quarantine) {
        std::cerr << "pabp-stats: " << fingerprintHex(fp)
                  << " is quarantined: " << found->blob << "\n";
        return 1;
    }
    std::cout << found->blob;
    return 0;
}

int
packMetricsDir(const std::string &dir, const std::string &out_path)
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
        std::cerr << "pabp-stats: cannot read directory " << dir
                  << ": " << ec.message() << "\n";
        return 2;
    }
    // Sorted filenames make the packed journal deterministic.
    std::vector<std::string> files;
    for (const std::filesystem::directory_entry &entry : it) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("pabp-metrics-", 0) == 0 &&
            name.size() == std::strlen("pabp-metrics-") + 16 + 5 &&
            name.substr(name.size() - 5) == ".json") {
            files.push_back(entry.path().string());
        }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::cerr << "pabp-stats: no pabp-metrics-*.json files in "
                  << dir << "\n";
        return 2;
    }
    std::ostringstream image;
    writeJournalHeader(image, JournalHeader{});
    for (const std::string &file : files) {
        std::string text;
        if (!readFile(file, text))
            return 2;
        JsonValue doc;
        if (!parseMetrics(text, file, doc))
            return 2;
        const std::string name =
            std::filesystem::path(file).filename().string();
        JournalRecord rec;
        rec.fingerprint = std::strtoull(
            name.substr(std::strlen("pabp-metrics-"), 16).c_str(),
            nullptr, 16);
        rec.blob = text;
        appendJournalRecord(image, rec);
    }
    Status status = atomicWriteFile(out_path, image.str());
    if (!status.ok()) {
        std::cerr << "pabp-stats: " << status.toString() << "\n";
        return 2;
    }
    std::cout << "packed " << files.size() << " cell(s) -> "
              << out_path << "\n";
    return 0;
}

/**
 * --characterize: dispatch on the trace magic (PABPTRC1/2 recorded,
 * PABPDTF1 mapped decoded), run the predictability analyzer over the
 * conditional-branch stream, and print the metrics document. The
 * output is itself a pabp.metrics JSON, so the diff form of this tool
 * can compare two characterizations byte-for-byte.
 */
int
characterizeTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    char magic[8] = {};
    if (!in || !in.read(magic, sizeof(magic))) {
        std::cerr << "pabp-stats: cannot read " << path << "\n";
        return 2;
    }
    in.close();

    PredictabilityReport report;
    if (std::memcmp(magic, "PABPTRC", 7) == 0) {
        Expected<RecordedTrace> trace = tryLoadTraceFile(path);
        if (!trace.ok()) {
            std::cerr << "pabp-stats: " << path << ": "
                      << trace.status().toString() << "\n";
            return 2;
        }
        report = characterizeTrace(trace.value());
    } else if (std::memcmp(magic, "PABPDTF1", 8) == 0) {
        Expected<DecodedTrace> trace = mapDecodedTraceFile(path);
        if (!trace.ok()) {
            std::cerr << "pabp-stats: " << path << ": "
                      << trace.status().toString() << "\n";
            return 2;
        }
        report = characterizeTrace(trace.value());
    } else {
        std::cerr << "pabp-stats: " << path
                  << ": not a recorded (PABPTRC1/2) or decoded "
                     "(PABPDTF1) trace\n";
        return 2;
    }

    MetricsExporter ex;
    ex.setText("source", path);
    exportPredictability(ex, report);
    ex.writeJson(std::cout);
    return 0;
}

int
diffJournals(const std::string (&paths)[2],
             const std::string (&bytes)[2], std::size_t top_k)
{
    std::vector<JournalRecord> records[2];
    for (int s = 0; s < 2; ++s) {
        if (!loadJournal(paths[s], bytes[s], records[s]))
            return 2;
    }
    std::map<std::uint64_t, const JournalRecord *> by_fp[2];
    for (int s = 0; s < 2; ++s) {
        for (const JournalRecord &rec : records[s])
            by_fp[s][rec.fingerprint] = &rec; // last record wins
    }
    std::size_t diff_cells = 0, only[2] = {0, 0};
    for (const auto &[fp, rec_a] : by_fp[0]) {
        auto it = by_fp[1].find(fp);
        if (it == by_fp[1].end()) {
            ++only[0];
            continue;
        }
        const JournalRecord *rec_b = it->second;
        if (rec_a->kind != rec_b->kind ||
            rec_a->statusCode != rec_b->statusCode) {
            std::cout << "cell " << fingerprintHex(fp)
                      << ": disposition differs ("
                      << statusCodeName(
                             static_cast<StatusCode>(rec_a->statusCode))
                      << " vs "
                      << statusCodeName(
                             static_cast<StatusCode>(rec_b->statusCode))
                      << ")\n";
            ++diff_cells;
            continue;
        }
        if (rec_a->kind != JournalRecord::Kind::Result)
            continue; // both quarantined the same way
        if (rec_a->blob == rec_b->blob)
            continue; // byte-identical metrics: nothing to say
        JsonValue a, b;
        if (!parseMetrics(rec_a->blob,
                          paths[0] + ":" + fingerprintHex(fp), a) ||
            !parseMetrics(rec_b->blob,
                          paths[1] + ":" + fingerprintHex(fp), b)) {
            return 2;
        }
        std::cout << "cell " << fingerprintHex(fp) << ":\n";
        diff_cells += diffMetrics(a, b, std::cout, top_k) ? 1 : 0;
    }
    for (const auto &[fp, rec] : by_fp[1]) {
        (void)rec;
        if (!by_fp[0].count(fp))
            ++only[1];
    }
    for (int s = 0; s < 2; ++s) {
        if (only[s])
            std::cout << only[s] << " cell(s) only in " << paths[s]
                      << "\n";
    }
    if (diff_cells == 0 && !only[0] && !only[1]) {
        std::cout << "identical (" << paths[0] << " == " << paths[1]
                  << ")\n";
        return 0;
    }
    std::cout << diff_cells << " differing cell(s)\n";
    return diff_cells || only[0] || only[1] ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t top_k = 0;
    std::string mode;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--top") {
            if (i + 1 >= argc)
                return usage();
            char *end = nullptr;
            unsigned long long v = std::strtoull(argv[++i], &end, 10);
            if (!end || *end != '\0')
                return usage();
            top_k = static_cast<std::size_t>(v);
        } else if (arg == "--list" || arg == "--extract" ||
                   arg == "--pack" || arg == "--characterize") {
            if (!mode.empty())
                return usage();
            mode = arg;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            args.push_back(arg);
        }
    }

    if (mode == "--list")
        return args.size() == 1 ? listJournal(args[0]) : usage();
    if (mode == "--extract")
        return args.size() == 2 ? extractCell(args[0], args[1])
                                : usage();
    if (mode == "--pack")
        return args.size() == 2 ? packMetricsDir(args[0], args[1])
                                : usage();
    if (mode == "--characterize")
        return args.size() == 1 ? characterizeTraceFile(args[0])
                                : usage();
    if (args.size() != 2)
        return usage();

    const std::string paths[2] = {args[0], args[1]};
    std::string bytes[2];
    if (!readFile(paths[0], bytes[0]) || !readFile(paths[1], bytes[1]))
        return 2;
    const bool journal_a = isJournalImage(bytes[0]);
    const bool journal_b = isJournalImage(bytes[1]);
    if (journal_a != journal_b) {
        std::cerr << "pabp-stats: cannot diff a journal against a "
                     "metrics document\n";
        return 2;
    }
    if (journal_a)
        return diffJournals(paths, bytes, top_k);

    JsonValue a, b;
    if (!parseMetrics(bytes[0], paths[0], a) ||
        !parseMetrics(bytes[1], paths[1], b)) {
        return 2;
    }
    std::size_t diffs = diffMetrics(a, b, std::cout, top_k);
    if (diffs == 0) {
        std::cout << "identical (" << paths[0] << " == " << paths[1]
                  << ")\n";
        return 0;
    }
    std::cout << diffs << " difference(s)\n";
    return 1;
}
