/**
 * @file
 * pabp-fuzz: differential-testing campaign driver (docs/FUZZING.md).
 *
 *   pabp-fuzz --replay <case.pabp>         replay one corpus case
 *   pabp-fuzz --replay-dir <dir>           replay every *.pabp in dir
 *   pabp-fuzz --runs N [--seed S]          randomised campaign
 *   pabp-fuzz --check-harness              inject the PR-4 clamp bug,
 *                                          prove it is caught+shrunk
 *   pabp-fuzz --mine low-entropy-gap       adversarial workload mining
 *                                          (fuzz/mining.hh): hill-climb
 *                                          the generator knobs toward
 *                                          hard-to-predict programs and
 *                                          emit the winners as .pabp
 *
 * Each mode runs the five differential oracles (if-conversion,
 * emulator-vs-pipeline, reference-vs-fast replay, checkpoint/resume,
 * corrupted-trace robustness) plus the sweep-cell cross-check, and
 * minimises every failure to a self-contained reproducer.
 *
 * Exit status matches the pabp-stats conventions: 0 = all oracles
 * agreed, 1 = a divergence was found (reproducers printed and, with
 * --emit-dir, written), 2 = usage or input error. The mining mode
 * adds exit 3: the predictability *scorer* failed on a candidate -
 * a scoring-infrastructure problem, NOT a correctness bug - so the
 * seed is reported distinctly and never quarantined or emitted as a
 * reproducer. An oracle divergence on a mined case is still exit 1.
 */

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/fuzz_runner.hh"
#include "fuzz/mining.hh"
#include "util/options.hh"

namespace {

using namespace pabp;
using namespace pabp::fuzz;

Options
declareOptions()
{
    Options opts;
    opts.declare("replay", "",
                 "replay one .pabp case file through its oracles");
    opts.declare("replay-dir", "",
                 "replay every .pabp case in a directory "
                 "(sorted, deterministic)");
    opts.declare("runs", "0",
                 "campaign mode: number of randomised cases to run");
    opts.declare("seed", "1", "campaign mode: first seed of the range "
                              "[seed, seed+runs)");
    opts.declare("emit-dir", "",
                 "write minimised failure reproducers here");
    opts.declare("shrink-budget", "200",
                 "max candidate evaluations per minimisation");
    opts.declare("scratch-dir", ".",
                 "directory for checkpoint scratch files");
    opts.declare("check-harness", "false",
                 "self-check: re-introduce the PR-4 cursor-clamp bug "
                 "and verify it is caught and minimised to <= 20 "
                 "instructions");
    opts.declare("inject-clamp-bug", "false",
                 "testing hook: run replay/campaign modes with the "
                 "PR-4 cursor-clamp bug injected (forces the "
                 "checkpoint oracle to diverge, exit 1)");
    opts.declare("mine", "",
                 "adversarial mining mode: hill-climb generator knobs "
                 "under the named scoring strategy "
                 "(low-entropy-gap); --runs = restarts, --seed = "
                 "first restart seed, winners go to --emit-dir");
    opts.declare("mine-steps", "12",
                 "mining: knob mutations per hill-climb restart");
    opts.declare("mine-top", "3",
                 "mining: emit the N best-scoring cases");
    opts.declare("mine-max-insts", "50000",
                 "mining: scoring replay budget per candidate");
    opts.declare("inject-scorer-failure", "false",
                 "testing hook: make the mining scorer fail on every "
                 "candidate (must surface as exit 3, with no case "
                 "quarantined or emitted)");
    return opts;
}

int
toExit(const Expected<CaseOutcome> &outcome)
{
    if (!outcome.ok()) {
        std::cerr << "pabp-fuzz: " << outcome.status().toString()
                  << "\n";
        return 2;
    }
    return outcome.value().passed() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = declareOptions();
    bool help = false;
    Status parsed = opts.tryParse(argc, argv, help);
    if (!parsed.ok()) {
        std::cerr << "pabp-fuzz: " << parsed.toString() << "\n";
        opts.printHelp("pabp-fuzz");
        return 2;
    }
    if (help)
        return 0;

    RunEnv env;
    env.scratchDir = opts.str("scratch-dir");
    env.injectClampBug = opts.flag("inject-clamp-bug");
    env.injectScorerFailure = opts.flag("inject-scorer-failure");
    const unsigned budget =
        static_cast<unsigned>(opts.integer("shrink-budget"));

    if (!opts.str("mine").empty()) {
        MiningConfig cfg;
        cfg.strategy = opts.str("mine");
        Status valid = validateMiningStrategy(cfg.strategy);
        if (!valid.ok()) {
            std::cerr << "pabp-fuzz: " << valid.toString() << "\n";
            return 2;
        }
        cfg.baseSeed =
            static_cast<std::uint64_t>(opts.integer("seed"));
        const std::int64_t mineRuns = opts.integer("runs");
        if (mineRuns > 0)
            cfg.restarts = static_cast<unsigned>(mineRuns);
        cfg.steps =
            static_cast<unsigned>(opts.integer("mine-steps"));
        cfg.emitTop =
            static_cast<unsigned>(opts.integer("mine-top"));
        cfg.maxInsts = static_cast<std::uint64_t>(
            opts.integer("mine-max-insts"));
        cfg.emitDir = opts.str("emit-dir");
        Expected<MiningResult> mined =
            runMiningCampaign(cfg, env, std::cout);
        if (!mined.ok()) {
            std::cerr << "pabp-fuzz: " << mined.status().toString()
                      << "\n";
            return 2;
        }
        // Correctness beats scoring in the verdict: a divergence on
        // a mined case is a real bug (1); scorer trouble alone is
        // the distinct mining code (3).
        if (mined.value().oracleFailures > 0)
            return 1;
        if (mined.value().scorerFailures > 0)
            return 3;
        return 0;
    }

    if (opts.flag("check-harness")) {
        Status check = checkHarness(env, std::cout);
        if (!check.ok()) {
            std::cerr << "pabp-fuzz: " << check.toString() << "\n";
            return 1;
        }
        return 0;
    }

    if (!opts.str("replay").empty()) {
        return toExit(
            replayCaseFile(opts.str("replay"), env, std::cout, budget));
    }

    if (!opts.str("replay-dir").empty()) {
        namespace fs = std::filesystem;
        std::vector<std::string> paths;
        std::error_code ec;
        for (const fs::directory_entry &entry :
             fs::directory_iterator(opts.str("replay-dir"), ec)) {
            if (entry.path().extension() == ".pabp")
                paths.push_back(entry.path().string());
        }
        if (ec) {
            std::cerr << "pabp-fuzz: cannot list "
                      << opts.str("replay-dir") << ": " << ec.message()
                      << "\n";
            return 2;
        }
        if (paths.empty()) {
            std::cerr << "pabp-fuzz: no .pabp cases under "
                      << opts.str("replay-dir") << "\n";
            return 2;
        }
        std::sort(paths.begin(), paths.end());
        int worst = 0;
        for (const std::string &path : paths)
            worst = std::max(
                worst, toExit(replayCaseFile(path, env, std::cout,
                                             budget)));
        std::cout << paths.size() << " case(s) replayed\n";
        return worst;
    }

    const std::int64_t runs = opts.integer("runs");
    if (runs > 0) {
        CampaignConfig cfg;
        cfg.baseSeed = static_cast<std::uint64_t>(opts.integer("seed"));
        cfg.runs = static_cast<unsigned>(runs);
        cfg.emitDir = opts.str("emit-dir");
        cfg.shrinkBudget = budget;
        Expected<CampaignResult> result =
            runCampaign(cfg, env, std::cout);
        if (!result.ok()) {
            std::cerr << "pabp-fuzz: " << result.status().toString()
                      << "\n";
            return 2;
        }
        return result.value().clean() ? 0 : 1;
    }

    std::cerr << "pabp-fuzz: pick a mode: --replay, --replay-dir, "
                 "--runs N, or --check-harness\n";
    opts.printHelp("pabp-fuzz");
    return 2;
}
