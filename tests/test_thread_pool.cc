/**
 * @file
 * ThreadPool contract tests: every submitted task runs exactly once,
 * the queue bound exerts real backpressure on producers, a leaked
 * exception is captured and rethrown from drain() without killing
 * the pool, and destruction still executes pending work. These are
 * the properties the sweep runner's determinism proof leans on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/thread_pool.hh"

namespace pabp {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> runs{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&runs] { runs.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(runs.load(), 200);
}

TEST(ThreadPool, DefaultsAndAccessors)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
    EXPECT_EQ(pool.queueCapacity(), 6u); // 2x threads
    ThreadPool narrow(1, 5);
    EXPECT_EQ(narrow.queueCapacity(), 5u);
    EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(ThreadPool, DrainRethrowsFirstLeakedException)
{
    ThreadPool pool(2);
    std::atomic<int> runs{0};
    pool.submit([] { throw std::runtime_error("task exploded"); });
    for (int i = 0; i < 20; ++i)
        pool.submit([&runs] { runs.fetch_add(1); });
    EXPECT_THROW(pool.drain(), std::runtime_error);
    // Later tasks still ran; the pool stays usable and the error is
    // consumed by the drain that reported it.
    EXPECT_EQ(runs.load(), 20);
    pool.submit([&runs] { runs.fetch_add(1); });
    EXPECT_NO_THROW(pool.drain());
    EXPECT_EQ(runs.load(), 21);
}

TEST(ThreadPool, SubmitBlocksWhileQueueIsFull)
{
    // One gated worker, queue capacity 2: the gate task occupies the
    // worker, two fillers occupy the queue, so a further submit must
    // block until the gate opens.
    ThreadPool pool(1, 2);

    std::mutex mtx;
    std::condition_variable cv;
    bool gate_open = false;
    bool gate_running = false;

    pool.submit([&] {
        std::unique_lock<std::mutex> lock(mtx);
        gate_running = true;
        cv.notify_all();
        cv.wait(lock, [&] { return gate_open; });
    });
    {
        // Make sure the worker holds the gate task (not the queue).
        std::unique_lock<std::mutex> lock(mtx);
        cv.wait(lock, [&] { return gate_running; });
    }
    std::atomic<int> runs{0};
    pool.submit([&runs] { runs.fetch_add(1); });
    pool.submit([&runs] { runs.fetch_add(1); });
    EXPECT_EQ(pool.queueDepth(), 2u);

    std::atomic<bool> fourth_submitted{false};
    std::thread producer([&] {
        pool.submit([&runs] { runs.fetch_add(1); });
        fourth_submitted.store(true);
    });
    // The producer must still be stuck in submit(): the queue is at
    // capacity and the only worker is parked on the gate.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(fourth_submitted.load());
    EXPECT_EQ(pool.queueDepth(), 2u);

    {
        std::lock_guard<std::mutex> lock(mtx);
        gate_open = true;
    }
    cv.notify_all();
    producer.join();
    EXPECT_TRUE(fourth_submitted.load());
    pool.drain();
    EXPECT_EQ(runs.load(), 3);
}

TEST(ThreadPool, DestructorExecutesPendingTasks)
{
    std::atomic<int> runs{0};
    {
        ThreadPool pool(2, 64);
        for (int i = 0; i < 32; ++i)
            pool.submit([&runs] { runs.fetch_add(1); });
        // No drain: the destructor must finish the backlog itself.
    }
    EXPECT_EQ(runs.load(), 32);
}

TEST(ThreadPool, DrainIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> runs{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&runs] { runs.fetch_add(1); });
        pool.drain();
        EXPECT_EQ(runs.load(), (batch + 1) * 10);
    }
}

} // namespace
} // namespace pabp
