/**
 * @file
 * Property tests for the fuzz generator and its case/shrink
 * machinery (docs/FUZZING.md): fixed seed => byte-identical program;
 * generated IR always verifies and its if-converted lowering always
 * passes pred_verify; the branch-density knob is monotone in the
 * static branch count; the `.pabp` case format round-trips; and the
 * shrinker converges to the smallest still-failing knob values.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/pred_verify.hh"
#include "fuzz/fuzz_case.hh"
#include "fuzz/fuzz_gen.hh"
#include "fuzz/fuzz_runner.hh"
#include "fuzz/shrink.hh"

namespace pabp::fuzz {
namespace {

std::vector<EncodedInst>
encodeAll(const Program &prog)
{
    std::vector<EncodedInst> out;
    out.reserve(prog.insts.size());
    for (const Inst &inst : prog.insts)
        out.push_back(encode(inst));
    return out;
}

// ---------------------------------------------------------------------
// Determinism: equal (seed, config) gives byte-identical programs.

TEST(FuzzGen, FixedSeedGivesByteIdenticalPrograms)
{
    FuzzProgramConfig cfg;
    cfg.callDepth = 2;
    cfg.divEdgePercent = 30;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        FuzzPrograms a = buildFuzzPrograms(seed, cfg);
        FuzzPrograms b = buildFuzzPrograms(seed, cfg);
        EXPECT_EQ(encodeAll(a.branchy.prog), encodeAll(b.branchy.prog))
            << "seed " << seed;
        EXPECT_EQ(encodeAll(a.converted.prog),
                  encodeAll(b.converted.prog))
            << "seed " << seed;
        EXPECT_EQ(a.body.fn.dump(), b.body.fn.dump()) << "seed " << seed;
    }
}

TEST(FuzzGen, DifferentSeedsGiveDifferentPrograms)
{
    FuzzProgramConfig cfg;
    FuzzPrograms a = buildFuzzPrograms(1, cfg);
    FuzzPrograms b = buildFuzzPrograms(2, cfg);
    EXPECT_NE(encodeAll(a.branchy.prog), encodeAll(b.branchy.prog));
}

// ---------------------------------------------------------------------
// Well-formedness: IR verifies, lowerings validate, converted code
// passes the pred_verify codegen contract - across seeds and knobs.

TEST(FuzzGen, GeneratedProgramsAlwaysVerify)
{
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        FuzzProgramConfig cfg;
        cfg.branchDensity = static_cast<unsigned>((seed * 17) % 101);
        cfg.hbPressure = static_cast<unsigned>((seed * 31) % 101);
        cfg.predNestDepth = static_cast<unsigned>(seed % 5);
        cfg.loopDepth = static_cast<unsigned>(seed % 4);
        cfg.callDepth = static_cast<unsigned>(seed % 4);
        cfg.divEdgePercent = seed % 2 ? 40 : 0;
        cfg.emptyRas = (seed % 5) == 0;

        FuzzPrograms p = buildFuzzPrograms(seed, cfg);
        EXPECT_EQ(verifyFunction(p.body.fn), "") << "seed " << seed;
        EXPECT_EQ(validateProgram(p.branchy.prog), "")
            << "seed " << seed;
        EXPECT_EQ(validateProgram(p.converted.prog), "")
            << "seed " << seed;
        EXPECT_EQ(verifyPredicatedProgram(p.converted.prog), "")
            << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Knob monotonicity: raising branchDensity with a fixed seed never
// removes a static branch (each item has its own rng stream, so the
// branchy/straight flips are independent).

TEST(FuzzGen, BranchDensityIsMonotoneInStaticBranches)
{
    const unsigned densities[] = {0, 20, 40, 60, 80, 100};
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        unsigned prev = 0;
        for (unsigned density : densities) {
            FuzzProgramConfig cfg;
            cfg.items = 16;
            cfg.branchDensity = density;
            Workload wl = makeFuzzWorkload(seed, cfg);
            unsigned count = staticCondBranches(wl.fn);
            EXPECT_GE(count, prev)
                << "seed " << seed << " density " << density;
            prev = count;
        }
        // Full density must actually add branches over zero density
        // (zero still has the outer loop's one CondBranch).
        FuzzProgramConfig zero;
        zero.items = 16;
        zero.branchDensity = 0;
        FuzzProgramConfig full = zero;
        full.branchDensity = 100;
        EXPECT_GT(staticCondBranches(makeFuzzWorkload(seed, full).fn),
                  staticCondBranches(makeFuzzWorkload(seed, zero).fn))
            << "seed " << seed;
    }
}

// The data-branch knob is drawn only when nonzero, so turning it on
// must strictly add static branches for a branch-free base config,
// and the programs must still pass every verification layer (the
// knob reserves its own stream register; a clash with the counter or
// driver registers would corrupt control flow, not just data).
TEST(FuzzGen, DataBranchKnobAddsBranchesAndVerifies)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        FuzzProgramConfig off;
        off.items = 8;
        off.branchDensity = 0;
        FuzzProgramConfig on = off;
        on.dataBranchPercent = 100;
        EXPECT_GT(staticCondBranches(makeFuzzWorkload(seed, on).fn),
                  staticCondBranches(makeFuzzWorkload(seed, off).fn))
            << "seed " << seed;

        FuzzPrograms p = buildFuzzPrograms(seed, on);
        EXPECT_EQ(verifyFunction(p.body.fn), "") << "seed " << seed;
        EXPECT_EQ(validateProgram(p.branchy.prog), "")
            << "seed " << seed;
        EXPECT_EQ(validateProgram(p.converted.prog), "")
            << "seed " << seed;
        EXPECT_EQ(verifyPredicatedProgram(p.converted.prog), "")
            << "seed " << seed;
    }
}

TEST(FuzzGen, ClampConfigEnforcesRanges)
{
    FuzzProgramConfig cfg;
    cfg.items = 1000;
    cfg.branchDensity = 400;
    cfg.predNestDepth = 99;
    cfg.loopDepth = 99;
    cfg.callDepth = 99;
    cfg.hbPressure = 101;
    cfg.divEdgePercent = 300;
    cfg.repeats = 100000;
    cfg.dataWindow = 1000; // not a power of two
    clampConfig(cfg);
    EXPECT_EQ(cfg.items, 32u);
    EXPECT_EQ(cfg.branchDensity, 100u);
    EXPECT_EQ(cfg.predNestDepth, 4u);
    EXPECT_EQ(cfg.loopDepth, 4u);
    EXPECT_EQ(cfg.callDepth, 6u);
    EXPECT_EQ(cfg.hbPressure, 100u);
    EXPECT_EQ(cfg.divEdgePercent, 100u);
    // The cap leaves the miner room to grow run length well past the
    // campaign draw's range (mining climbs repeats multiplicatively).
    EXPECT_EQ(cfg.repeats, 4096);
    EXPECT_EQ(cfg.dataWindow, 512); // rounded down to a power of two

    FuzzProgramConfig tiny;
    tiny.items = 0;
    tiny.repeats = 0;
    tiny.dataWindow = 3;
    clampConfig(tiny);
    EXPECT_EQ(tiny.items, 1u);
    EXPECT_EQ(tiny.repeats, 1);
    EXPECT_EQ(tiny.dataWindow, 16);
}

// ---------------------------------------------------------------------
// Case format: canonical round trip and typed parse errors.

TEST(FuzzCaseFormat, RoundTripsThroughText)
{
    FuzzCase c;
    c.name = "roundtrip";
    c.seed = 123456789;
    c.predictor = "perceptron";
    c.sizeLog2 = 9;
    c.engine.useSfpf = true;
    c.engine.usePgu = true;
    c.engine.useSpeculativeSquash = true;
    c.engine.specGate = EngineConfig::SpecGate::Jrs;
    c.engine.availDelay = 17;
    c.oracles = static_cast<unsigned>(Oracle::Replay) |
        static_cast<unsigned>(Oracle::Trace);
    c.maxInsts = 7777;
    c.gen.items = 5;
    c.gen.branchDensity = 33;
    c.gen.predNestDepth = 3;
    c.gen.loopDepth = 1;
    c.gen.callDepth = 2;
    c.gen.hbPressure = 91;
    c.gen.divEdgePercent = 12;
    c.gen.dataBranchPercent = 45;
    c.gen.emptyRas = true;
    c.gen.dataWindow = 256;
    c.gen.repeats = 9;
    c.corruptFlips = 4;
    c.corruptSeed = 55;
    c.corruptTruncate = 13;

    Expected<FuzzCase> back = parseCase(formatCase(c));
    ASSERT_TRUE(back.ok()) << back.status().toString();
    const FuzzCase &r = back.value();
    EXPECT_EQ(r.name, c.name);
    EXPECT_EQ(r.seed, c.seed);
    EXPECT_EQ(r.predictor, c.predictor);
    EXPECT_EQ(r.sizeLog2, c.sizeLog2);
    EXPECT_EQ(engineSpecString(r.engine), engineSpecString(c.engine));
    EXPECT_EQ(r.engine.availDelay, c.engine.availDelay);
    EXPECT_EQ(r.oracles, c.oracles);
    EXPECT_EQ(r.maxInsts, c.maxInsts);
    EXPECT_TRUE(r.gen == c.gen);
    EXPECT_EQ(r.corruptFlips, c.corruptFlips);
    EXPECT_EQ(r.corruptSeed, c.corruptSeed);
    EXPECT_EQ(r.corruptTruncate, c.corruptTruncate);
}

TEST(FuzzCaseFormat, TypedParseErrors)
{
    EXPECT_EQ(parseCase("seed=1\n").status().code(),
              StatusCode::BadMagic); // no format line
    EXPECT_EQ(parseCase("format=pabp-fuzz-case-v9\n").status().code(),
              StatusCode::VersionMismatch);
    EXPECT_EQ(
        parseCase("format=pabp-fuzz-case-v1\nbogus_key=1\n")
            .status()
            .code(),
        StatusCode::ParseError);
    EXPECT_EQ(
        parseCase("format=pabp-fuzz-case-v1\nseed=12x\n")
            .status()
            .code(),
        StatusCode::ParseError);
    EXPECT_EQ(
        parseCase("format=pabp-fuzz-case-v1\noracles=nope\n")
            .status()
            .code(),
        StatusCode::ParseError);
    EXPECT_EQ(
        parseCase("format=pabp-fuzz-case-v1\nengine=sfpf+warp\n")
            .status()
            .code(),
        StatusCode::ParseError);
}

TEST(FuzzCaseFormat, EngineSpecRoundTrips)
{
    const char *const specs[] = {"base",
                                 "sfpf",
                                 "pgu",
                                 "sfpf+pgu",
                                 "spec",
                                 "jrs",
                                 "sfpf+pgu+spec",
                                 "sfpf+pgu+jrs",
                                 "sfpf+train",
                                 "sfpf+consdef"};
    for (const char *spec : specs) {
        Expected<EngineConfig> cfg = parseEngineSpec(spec);
        ASSERT_TRUE(cfg.ok()) << spec;
        EXPECT_EQ(engineSpecString(cfg.value()), spec) << spec;
    }
}

TEST(FuzzCaseFormat, OracleMaskFormatting)
{
    EXPECT_EQ(formatOracleMask(allOracles), "all");
    unsigned two = static_cast<unsigned>(Oracle::IfConvert) |
        static_cast<unsigned>(Oracle::Checkpoint);
    EXPECT_EQ(formatOracleMask(two), "ifconvert,checkpoint");
    Expected<unsigned> parsed = parseOracleMask("ifconvert,checkpoint");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), two);
    EXPECT_TRUE(parseOracleMask("all").ok());
    EXPECT_FALSE(parseOracleMask("").ok());
}

// ---------------------------------------------------------------------
// Shrinker: converges to the smallest still-failing knobs and
// respects its evaluation budget.

TEST(FuzzShrink, ConvergesToMinimalFailingKnobs)
{
    FuzzCase start;
    start.gen.items = 8;
    start.maxInsts = 20'000;

    // Synthetic failure: reproduces iff items >= 4 AND maxInsts >= 100.
    FailPredicate pred = [](const FuzzCase &c) {
        return c.gen.items >= 4 && c.maxInsts >= 100;
    };
    ASSERT_TRUE(pred(start));
    ShrinkResult r = shrinkCaseWith(start, pred, 200);
    EXPECT_EQ(r.shrunk.gen.items, 4u);
    // Binary descent halves toward the floor and stops once the
    // midpoint stops reproducing, so it converges to within 2x of
    // the true threshold (100 here), not to it exactly.
    EXPECT_GE(r.shrunk.maxInsts, 100u);
    EXPECT_LT(r.shrunk.maxInsts, 212u);
    EXPECT_TRUE(pred(r.shrunk));
    EXPECT_GT(r.accepted, 0u);
    // Irrelevant knobs collapse to their floors.
    EXPECT_EQ(r.shrunk.gen.repeats, 1);
    EXPECT_EQ(r.shrunk.gen.callDepth, 0u);
    EXPECT_EQ(r.shrunk.gen.branchDensity, 0u);
}

TEST(FuzzShrink, RespectsBudget)
{
    FuzzCase start;
    FailPredicate pred = [](const FuzzCase &) { return true; };
    ShrinkResult r = shrinkCaseWith(start, pred, 3);
    EXPECT_LE(r.attempts, 3u);
}

// ---------------------------------------------------------------------
// Campaign derivation: deterministic in the seed.

TEST(FuzzCampaign, DeriveCaseIsDeterministic)
{
    for (std::uint64_t seed : {1ull, 7ull, 99999ull}) {
        FuzzCase a = deriveCase(seed);
        FuzzCase b = deriveCase(seed);
        EXPECT_EQ(formatCase(a), formatCase(b)) << seed;
    }
    EXPECT_NE(formatCase(deriveCase(1)), formatCase(deriveCase(2)));
}

} // namespace
} // namespace pabp::fuzz
