/**
 * @file
 * Tests for the paper's techniques: the delayed predicate file, the
 * squash false path filter (including its 100%-accuracy property over
 * random programs), predicate global update policies, and the engine.
 */

#include <gtest/gtest.h>

#include "bpred/gshare.hh"
#include "bpred/simple.hh"
#include "core/engine.hh"
#include "workloads/random_gen.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

TEST(DelayedPredFile, InitialStateKnownFalseExceptP0)
{
    DelayedPredicateFile file(4);
    EXPECT_EQ(file.read(0), std::optional<bool>(true));
    EXPECT_EQ(file.read(5), std::optional<bool>(false));
}

TEST(DelayedPredFile, WriteInvisibleUntilDelayElapses)
{
    DelayedPredicateFile file(4);
    file.write(10, 3, true);
    file.advanceTo(12);
    EXPECT_FALSE(file.read(3).has_value()); // in flight
    file.advanceTo(14);
    EXPECT_EQ(file.read(3), std::optional<bool>(true));
}

TEST(DelayedPredFile, ExactBoundary)
{
    DelayedPredicateFile file(4);
    file.write(10, 3, true);
    file.advanceTo(13);
    EXPECT_FALSE(file.read(3).has_value());
    file.advanceTo(14); // 10 + 4 <= 14
    EXPECT_TRUE(file.read(3).has_value());
}

TEST(DelayedPredFile, ZeroDelayIsOracle)
{
    DelayedPredicateFile file(0);
    file.write(10, 3, true);
    file.advanceTo(11);
    EXPECT_EQ(file.read(3), std::optional<bool>(true));
}

TEST(DelayedPredFile, OverlappingWritesStayUnknown)
{
    DelayedPredicateFile file(4);
    file.write(10, 3, true);
    file.write(12, 3, false);
    file.advanceTo(15); // first resolved, second still in flight
    EXPECT_FALSE(file.read(3).has_value());
    file.advanceTo(16);
    EXPECT_EQ(file.read(3), std::optional<bool>(false)); // last wins
}

TEST(DelayedPredFile, P0WritesIgnored)
{
    DelayedPredicateFile file(2);
    file.write(1, 0, false);
    file.advanceTo(100);
    EXPECT_EQ(file.read(0), std::optional<bool>(true));
}

TEST(DelayedPredFile, NoopWriteBlocksWithoutChangingValue)
{
    DelayedPredicateFile file(4);
    file.write(10, 3, true);
    file.advanceTo(14);
    ASSERT_EQ(file.read(3), std::optional<bool>(true));
    file.writeNoop(20, 3);
    file.advanceTo(22);
    EXPECT_FALSE(file.read(3).has_value()); // pending define
    file.advanceTo(24);
    EXPECT_EQ(file.read(3), std::optional<bool>(true)); // unchanged
}

TEST(DelayedPredFile, ResetRestoresColdState)
{
    DelayedPredicateFile file(4);
    file.write(10, 3, true);
    file.advanceTo(100);
    file.reset();
    EXPECT_EQ(file.read(3), std::optional<bool>(false));
}

TEST(Sfpf, SquashesOnlyKnownFalseGuards)
{
    DelayedPredicateFile file(2);
    SquashFalsePathFilter sfpf(file);

    Inst br = makeBr(7, 3);
    EXPECT_TRUE(sfpf.shouldSquash(br)); // p3 known false initially

    file.write(0, 3, true);
    file.advanceTo(1);
    EXPECT_FALSE(sfpf.shouldSquash(br)); // in flight -> unknown
    file.advanceTo(5);
    EXPECT_FALSE(sfpf.shouldSquash(br)); // known true

    file.write(6, 3, false);
    file.advanceTo(10);
    EXPECT_TRUE(sfpf.shouldSquash(br)); // known false again
}

TEST(Sfpf, NeverSquashesUnconditionalOrNonBranches)
{
    DelayedPredicateFile file(2);
    SquashFalsePathFilter sfpf(file);
    EXPECT_FALSE(sfpf.shouldSquash(makeBr(7)));       // qp = p0
    EXPECT_FALSE(sfpf.shouldSquash(makeLoad(1, 2, 0, 3)));
}

/** Engine run helper over a compiled workload. */
EngineStats
runEngine(Workload &wl, bool if_convert, EngineConfig ecfg,
          BranchPredictor &pred, std::uint64_t steps = 0)
{
    CompileOptions copts;
    copts.ifConvert = if_convert;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    PredictionEngine engine(pred, ecfg);
    runTrace(emu, engine, steps ? steps : wl.defaultSteps);
    return engine.stats();
}

// The filter's headline property: every squashed branch was indeed
// not taken. The engine pabp_asserts this on every squash; these
// tests additionally run the assertion over the whole suite and a
// random-program battery with several delays.
class SfpfAccuracy : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SfpfAccuracy, HundredPercentOnSuite)
{
    for (const std::string &name : workloadNames()) {
        Workload wl = makeWorkload(name, 99);
        GSharePredictor pred(10);
        EngineConfig ecfg;
        ecfg.useSfpf = true;
        ecfg.availDelay = GetParam();
        EngineStats stats =
            runEngine(wl, true, ecfg, pred, 300000);
        // Squashed branches are a subset of false-guard branches.
        EXPECT_LE(stats.all.squashed, stats.all.falseGuard) << name;
    }
}

TEST_P(SfpfAccuracy, HundredPercentOnRandomPrograms)
{
    for (std::uint64_t seed = 300; seed < 310; ++seed) {
        Workload wl = makeRandomWorkload(seed);
        GSharePredictor pred(10);
        EngineConfig ecfg;
        ecfg.useSfpf = true;
        ecfg.availDelay = GetParam();
        runEngine(wl, true, ecfg, pred, 200000);
        // Reaching here means no squash-accuracy assertion fired.
    }
}

INSTANTIATE_TEST_SUITE_P(Delays, SfpfAccuracy,
                         ::testing::Values(0u, 1u, 4u, 8u, 16u, 64u));

TEST(Sfpf, OracleDelaySquashesAllFalseGuardsOfJumpExits)
{
    // With delay 0 every resolved-false guard is squashable; squash
    // count should be a large share of false-guard branches.
    Workload wl = makeWorkload("filter", 42);
    GSharePredictor pred(10);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.availDelay = 0;
    EngineStats stats = runEngine(wl, true, ecfg, pred, 500000);
    EXPECT_GT(stats.all.falseGuard, 0u);
    EXPECT_EQ(stats.all.squashed, stats.all.falseGuard);
}

TEST(Sfpf, LargerDelaySquashesLess)
{
    Workload wl1 = makeWorkload("histogram", 7);
    Workload wl2 = makeWorkload("histogram", 7);
    GSharePredictor p1(10), p2(10);
    EngineConfig e1, e2;
    e1.useSfpf = e2.useSfpf = true;
    e1.availDelay = 0;
    e2.availDelay = 64;
    auto s1 = runEngine(wl1, true, e1, p1, 500000);
    auto s2 = runEngine(wl2, true, e2, p2, 500000);
    EXPECT_GT(s1.all.squashed, s2.all.squashed);
}

TEST(Sfpf, ConservativeTrackingSquashesNoMore)
{
    Workload wl1 = makeWorkload("filter", 9);
    Workload wl2 = makeWorkload("filter", 9);
    GSharePredictor p1(10), p2(10);
    EngineConfig e1, e2;
    e1.useSfpf = e2.useSfpf = true;
    e2.conservativeDefTracking = true;
    auto s1 = runEngine(wl1, true, e1, p1, 500000);
    auto s2 = runEngine(wl2, true, e2, p2, 500000);
    EXPECT_LE(s2.all.squashed, s1.all.squashed);
}

TEST(Pgu, RestoresIfConvertedCorrelation)
{
    // dchain's third branch repeats an earlier (now if-converted)
    // test; PGU must make it nearly perfectly predictable.
    Workload base = makeWorkload("dchain", 5);
    Workload with = makeWorkload("dchain", 5);
    GSharePredictor p1(12), p2(12);
    EngineConfig e1, e2;
    e2.usePgu = true;
    auto s1 = runEngine(base, true, e1, p1);
    auto s2 = runEngine(with, true, e2, p2);
    EXPECT_LT(s2.all.mispredictRate(), s1.all.mispredictRate() * 0.3);
}

TEST(Pgu, RegionOnlyPolicyInsertsFewerBits)
{
    Workload w1 = makeWorkload("dchain", 5);
    Workload w2 = makeWorkload("dchain", 5);
    GSharePredictor p1(12), p2(12);

    CompileOptions copts;
    CompiledProgram c1 = compileWorkload(w1, copts);
    CompiledProgram c2 = compileWorkload(w2, copts);

    EngineConfig e_all, e_region;
    e_all.usePgu = true;
    e_region.usePgu = true;
    e_region.pgu.source = PguSource::RegionCmps;

    Emulator m1(c1.prog), m2(c2.prog);
    w1.init(m1.state());
    w2.init(m2.state());
    PredictionEngine eng1(p1, e_all), eng2(p2, e_region);
    runTrace(m1, eng1, 400000);
    runTrace(m2, eng2, 400000);
    EXPECT_GT(eng1.pguBitsInserted(), eng2.pguBitsInserted());
    EXPECT_GT(eng2.pguBitsInserted(), 0u);
}

TEST(Pgu, DelayGatesTheBenefit)
{
    // With an enormous insertion delay the correlated bits arrive too
    // late and the benefit evaporates.
    Workload w1 = makeWorkload("dchain", 5);
    Workload w2 = makeWorkload("dchain", 5);
    GSharePredictor p1(12), p2(12);
    EngineConfig e_fast, e_slow;
    e_fast.usePgu = true;
    e_fast.pgu.delay = 4;
    e_slow.usePgu = true;
    e_slow.pgu.delay = 4096;
    auto s_fast = runEngine(w1, true, e_fast, p1);
    auto s_slow = runEngine(w2, true, e_slow, p2);
    EXPECT_LT(s_fast.all.mispredictRate(),
              s_slow.all.mispredictRate() * 0.5);
}

TEST(Engine, CountsClassesConsistently)
{
    Workload wl = makeWorkload("filter", 11);
    GSharePredictor pred(10);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    EngineStats stats = runEngine(wl, true, ecfg, pred, 400000);
    EXPECT_EQ(stats.all.branches,
              stats.region.branches + stats.normal.branches);
    EXPECT_EQ(stats.all.mispredicts,
              stats.region.mispredicts + stats.normal.mispredicts);
    EXPECT_EQ(stats.all.squashed,
              stats.region.squashed + stats.normal.squashed);
    EXPECT_GT(stats.region.branches, 0u);
    EXPECT_GT(stats.predicateDefines, 0u);
}

TEST(Engine, ResetStatsKeepsPredictorState)
{
    Workload wl = makeWorkload("bsearch", 3);
    GSharePredictor pred(10);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog);
    PredictionEngine engine(pred, EngineConfig{});
    runTrace(emu, engine, 100000);
    EXPECT_GT(engine.stats().insts, 0u);
    engine.resetStats();
    EXPECT_EQ(engine.stats().insts, 0u);
    EXPECT_EQ(engine.stats().all.branches, 0u);
}

TEST(Engine, TrainOnSquashedAblationStillCorrect)
{
    Workload wl = makeWorkload("histogram", 21);
    GSharePredictor pred(10);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.trainOnSquashed = true;
    EngineStats stats = runEngine(wl, true, ecfg, pred, 400000);
    EXPECT_GT(stats.all.squashed, 0u);
}

TEST(Engine, UnconditionalBranchesNotPredicted)
{
    Workload wl = makeWorkload("bsort", 2);
    StaticPredictor pred(true); // would mispredict every not-taken
    EngineConfig ecfg;
    EngineStats stats = runEngine(wl, false, ecfg, pred, 200000);
    EXPECT_GT(stats.uncondBranches, 0u);
    // Unconditional branches must not appear in the cond counts.
    EXPECT_LT(stats.all.branches, stats.insts);
}

} // namespace
} // namespace pabp
