/**
 * @file
 * Functional-simulator tests: ALU semantics, the IA-64 compare-type
 * truth table, guarded execution, memory, control flow, call/ret,
 * and the runaway fuse.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "isa/program.hh"
#include "sim/emulator.hh"

namespace pabp {
namespace {

/** Run a short program to completion (or 10k inst fuse). */
Emulator
runProgram(Program &p)
{
    EXPECT_EQ(validateProgram(p), "");
    EmuConfig cfg;
    cfg.memWords = 1 << 12;
    cfg.maxInsts = 10000;
    Emulator emu(p, cfg);
    emu.run(10000);
    return emu;
}

TEST(Emulator, AluBasics)
{
    Program p;
    p.name = "alu";
    p.insts = {
        makeMovImm(1, 20),
        makeMovImm(2, 3),
        makeAlu(Opcode::Add, 3, 1, 2),
        makeAlu(Opcode::Sub, 4, 1, 2),
        makeAlu(Opcode::Mul, 5, 1, 2),
        makeAlu(Opcode::Div, 6, 1, 2),
        makeAlu(Opcode::And, 7, 1, 2),
        makeAlu(Opcode::Or, 8, 1, 2),
        makeAlu(Opcode::Xor, 9, 1, 2),
        makeAluImm(Opcode::Shl, 10, 1, 2),
        makeAluImm(Opcode::Shr, 11, 1, 2),
        makeHalt(),
    };
    Emulator emu = runProgram(p);
    const ArchState &st = emu.state();
    EXPECT_EQ(st.readGpr(3), 23);
    EXPECT_EQ(st.readGpr(4), 17);
    EXPECT_EQ(st.readGpr(5), 60);
    EXPECT_EQ(st.readGpr(6), 6);
    EXPECT_EQ(st.readGpr(7), 20 & 3);
    EXPECT_EQ(st.readGpr(8), 20 | 3);
    EXPECT_EQ(st.readGpr(9), 20 ^ 3);
    EXPECT_EQ(st.readGpr(10), 80);
    EXPECT_EQ(st.readGpr(11), 5);
}

TEST(Emulator, DivByZeroYieldsZero)
{
    Program p;
    p.insts = {makeMovImm(1, 7), makeAluImm(Opcode::Div, 2, 1, 0),
               makeHalt()};
    Emulator emu = runProgram(p);
    EXPECT_EQ(emu.state().readGpr(2), 0);
}

TEST(Emulator, DivOverflowWrapsToMin)
{
    // INT64_MIN / -1 traps on real hardware (the quotient does not
    // fit); the emulator defines it as wrapping to INT64_MIN so the
    // operation can never invoke C++ UB whatever a workload computes.
    const std::int64_t min = std::numeric_limits<std::int64_t>::min();
    Program p;
    p.insts = {makeMovImm(1, min), makeMovImm(2, -1),
               makeAlu(Opcode::Div, 3, 1, 2),
               makeAluImm(Opcode::Div, 4, 1, -1),
               makeAluImm(Opcode::Div, 5, 1, 0), makeHalt()};
    Emulator emu = runProgram(p);
    EXPECT_EQ(emu.state().readGpr(3), min);
    EXPECT_EQ(emu.state().readGpr(4), min);
    EXPECT_EQ(emu.state().readGpr(5), 0); // min/0 is still div-by-zero
}

TEST(Emulator, R0IsHardwiredZero)
{
    Program p;
    p.insts = {makeMovImm(0, 99), makeAluImm(Opcode::Add, 1, 0, 5),
               makeHalt()};
    Emulator emu = runProgram(p);
    EXPECT_EQ(emu.state().readGpr(0), 0);
    EXPECT_EQ(emu.state().readGpr(1), 5);
}

TEST(Emulator, GuardFalseSuppressesWrite)
{
    Program p;
    // p5 is false at reset; the guarded move must not execute.
    p.insts = {makeMovImm(1, 1), makeMovImm(2, 42, 5), makeHalt()};
    Emulator emu = runProgram(p);
    EXPECT_EQ(emu.state().readGpr(2), 0);
}

TEST(Emulator, GuardTrueExecutes)
{
    Program p;
    p.insts = {
        makeCmpImm(CmpRel::Eq, CmpType::Normal, 5, 6, 0, 0), // p5=1
        makeMovImm(2, 42, 5),
        makeHalt(),
    };
    Emulator emu = runProgram(p);
    EXPECT_EQ(emu.state().readGpr(2), 42);
}

// The IA-64 compare-type truth table: for each (type, guard, rel)
// combination, which writes happen and with what values.
struct CmpCase
{
    CmpType type;
    bool guard;
    bool rel;
    // Expected final values of p10/p11, which start preset to true.
    bool p1After;
    bool p2After;
};

class CmpTypeTruthTable : public ::testing::TestWithParam<CmpCase>
{};

TEST_P(CmpTypeTruthTable, MatchesArchitectureManual)
{
    const CmpCase &c = GetParam();
    Program p;
    // Preset p10=p11=1 via an always-true unconditional compare, and
    // p5 = guard. r1=1 so rel is controlled by comparing against imm.
    p.insts = {
        makeCmpImm(CmpRel::Eq, CmpType::Unc, 10, 63, 0, 0),  // p10=1
        makeCmpImm(CmpRel::Eq, CmpType::Unc, 11, 63, 0, 0),  // p11=1
        makeCmpImm(c.guard ? CmpRel::Eq : CmpRel::Ne, CmpType::Normal,
                   5, 63, 0, 0),                              // p5=guard
        makeMovImm(1, 1),
        makeCmpImm(c.rel ? CmpRel::Eq : CmpRel::Ne, c.type, 10, 11, 1,
                   1, 5),
        makeHalt(),
    };
    Emulator emu = runProgram(p);
    EXPECT_EQ(emu.state().readPred(10), c.p1After) << "p1";
    EXPECT_EQ(emu.state().readPred(11), c.p2After) << "p2";
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, CmpTypeTruthTable,
    ::testing::Values(
        // Normal: writes only when guarded.
        CmpCase{CmpType::Normal, true, true, true, false},
        CmpCase{CmpType::Normal, true, false, false, true},
        CmpCase{CmpType::Normal, false, true, true, true},
        CmpCase{CmpType::Normal, false, false, true, true},
        // Unc: clears both when guard false.
        CmpCase{CmpType::Unc, true, true, true, false},
        CmpCase{CmpType::Unc, true, false, false, true},
        CmpCase{CmpType::Unc, false, true, false, false},
        CmpCase{CmpType::Unc, false, false, false, false},
        // And: clears both when guarded and rel false. A false guard
        // writes NOTHING regardless of rel - the parallel types must
        // not be confused with Unc's clear-on-false-guard.
        CmpCase{CmpType::And, true, true, true, true},
        CmpCase{CmpType::And, true, false, false, false},
        CmpCase{CmpType::And, false, false, true, true},
        CmpCase{CmpType::And, false, true, true, true},
        // Or: sets both when guarded and rel true.
        CmpCase{CmpType::Or, true, true, true, true},
        CmpCase{CmpType::Or, true, false, true, true},
        CmpCase{CmpType::Or, false, true, true, true},
        CmpCase{CmpType::Or, false, false, true, true},
        // OrAndcm: p1|=1, p2&=0 when guarded and rel true.
        CmpCase{CmpType::OrAndcm, true, true, true, false},
        CmpCase{CmpType::OrAndcm, true, false, true, true},
        CmpCase{CmpType::OrAndcm, false, true, true, true},
        CmpCase{CmpType::OrAndcm, false, false, true, true},
        // AndOrcm: p1&=0, p2|=1 when guarded and rel false.
        CmpCase{CmpType::AndOrcm, true, false, false, true},
        CmpCase{CmpType::AndOrcm, true, true, true, true},
        CmpCase{CmpType::AndOrcm, false, false, true, true},
        CmpCase{CmpType::AndOrcm, false, true, true, true}));

TEST(Emulator, P0WritesDiscarded)
{
    Program p;
    p.insts = {
        makeCmpImm(CmpRel::Ne, CmpType::Unc, 0, 5, 0, 0), // p0=0? no!
        makeHalt(),
    };
    Emulator emu = runProgram(p);
    EXPECT_TRUE(emu.state().readPred(0));
    EXPECT_TRUE(emu.state().readPred(5)); // !rel = !(0!=0) = 1
}

TEST(Emulator, P0WriteNotReportedInTrace)
{
    Program p;
    p.insts = {
        makeCmpImm(CmpRel::Eq, CmpType::Unc, 0, 7, 0, 0),
        makeHalt(),
    };
    Emulator emu(p);
    DynInst dyn;
    ASSERT_TRUE(emu.step(dyn));
    ASSERT_EQ(dyn.numPredWrites, 1u); // only the p7 write
    EXPECT_EQ(dyn.predWrites[0].reg, 7);
}

TEST(Emulator, MemoryRoundTrip)
{
    Program p;
    p.insts = {
        makeMovImm(1, 100),
        makeMovImm(2, 77),
        makeStore(1, 4, 2),
        makeLoad(3, 1, 4),
        makeHalt(),
    };
    Emulator emu = runProgram(p);
    EXPECT_EQ(emu.state().readGpr(3), 77);
    EXPECT_EQ(emu.state().readMem(104), 77);
}

TEST(Emulator, AddressMaskingWraps)
{
    ArchState st(1 << 4); // 16 words
    st.writeMem(16 + 3, 9);
    EXPECT_EQ(st.readMem(3), 9);
}

TEST(Emulator, GuardedStoreSuppressed)
{
    Program p;
    p.insts = {
        makeMovImm(1, 50),
        makeMovImm(2, 5),
        makeStore(1, 0, 2, 9), // p9 false
        makeLoad(3, 1, 0),
        makeHalt(),
    };
    Emulator emu = runProgram(p);
    EXPECT_EQ(emu.state().readGpr(3), 0);
}

TEST(Emulator, BranchTakenAndNotTaken)
{
    Program p;
    p.insts = {
        makeCmpImm(CmpRel::Eq, CmpType::Unc, 5, 6, 0, 0), // p5=1,p6=0
        makeBr(3, 6),      // not taken (p6 false)
        makeBr(4, 5),      // taken
        makeHalt(),        // skipped
        makeMovImm(1, 1),
        makeHalt(),
    };
    Emulator emu(p);
    DynInst dyn;
    ASSERT_TRUE(emu.step(dyn)); // cmp
    ASSERT_TRUE(emu.step(dyn)); // br not taken
    EXPECT_TRUE(dyn.isControl);
    EXPECT_FALSE(dyn.taken);
    EXPECT_EQ(dyn.nextPc, 2u);
    ASSERT_TRUE(emu.step(dyn)); // br taken
    EXPECT_TRUE(dyn.taken);
    EXPECT_EQ(dyn.nextPc, 4u);
    emu.run(100);
    EXPECT_EQ(emu.state().readGpr(1), 1);
}

TEST(Emulator, CallAndReturn)
{
    Program p;
    p.insts = {
        makeCall(3),       // 0: call f
        makeMovImm(2, 2),  // 1: after return
        makeHalt(),        // 2
        makeMovImm(1, 1),  // 3: f body
        makeRet(),         // 4
    };
    Emulator emu = runProgram(p);
    EXPECT_EQ(emu.state().readGpr(1), 1);
    EXPECT_EQ(emu.state().readGpr(2), 2);
    EXPECT_TRUE(emu.state().callStack.empty());
}

TEST(Emulator, RetOnEmptyStackHalts)
{
    // A top-level ret is a clean program exit, not a crash: the
    // machine halts AT the ret (no control transfer is recorded, the
    // pc does not move, nothing past it executes).
    Program p;
    p.insts = {makeRet(), makeMovImm(1, 99), makeHalt()};
    Emulator emu = runProgram(p);
    EXPECT_TRUE(emu.halted());
    EXPECT_FALSE(emu.fuseBlown());
    EXPECT_EQ(emu.instsExecuted(), 1u);
    EXPECT_EQ(emu.state().readGpr(1), 0) << "the halt must precede "
                                            "the following instruction";
    EXPECT_TRUE(emu.state().callStack.empty());
}

TEST(Emulator, RetOnEmptyStackIsRecordedNotTaken)
{
    // The DynInst the trace recorder sees for that final ret: a
    // control instruction that did not transfer (taken=false, nextPc
    // frozen) - so a recorded trace replays the halt faithfully.
    Program p;
    p.insts = {makeRet(), makeHalt()};
    EmuConfig cfg;
    Emulator emu(p, cfg);
    DynInst dyn;
    ASSERT_TRUE(emu.step(dyn));
    EXPECT_TRUE(dyn.isControl);
    EXPECT_FALSE(dyn.taken);
    EXPECT_EQ(dyn.nextPc, dyn.pc);
    EXPECT_TRUE(emu.halted());
}

TEST(Emulator, FuseStopsRunawayLoop)
{
    Program p;
    p.insts = {makeBr(0), makeHalt()};
    EmuConfig cfg;
    cfg.maxInsts = 500;
    Emulator emu(p, cfg);
    emu.run(10000);
    EXPECT_TRUE(emu.fuseBlown());
    EXPECT_EQ(emu.instsExecuted(), 500u);
}

TEST(Emulator, SequenceNumbersMonotonic)
{
    Program p;
    p.insts = {makeMovImm(1, 1), makeMovImm(2, 2), makeHalt()};
    Emulator emu(p);
    DynInst dyn;
    std::uint64_t expect = 0;
    while (emu.step(dyn))
        EXPECT_EQ(dyn.seq, expect++);
    EXPECT_EQ(expect, 3u);
}

TEST(Emulator, CmpRelRecordedEvenWhenGuardFalse)
{
    Program p;
    p.insts = {
        makeMovImm(1, 9),
        makeCmpImm(CmpRel::Gt, CmpType::Normal, 5, 6, 1, 3, 9), // p9=0
        makeHalt(),
    };
    Emulator emu(p);
    DynInst dyn;
    emu.step(dyn);
    emu.step(dyn);
    EXPECT_FALSE(dyn.guard);
    EXPECT_TRUE(dyn.cmpRel);          // 9 > 3 computed regardless
    EXPECT_EQ(dyn.numPredWrites, 0u); // but nothing written
}

} // namespace
} // namespace pabp
