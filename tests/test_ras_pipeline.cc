/**
 * @file
 * Call/return timing tests: a hand-written ISA program with nested
 * calls drives the pipeline's return address stack; well-nested code
 * must hit, and deep recursion past the RAS depth must miss.
 */

#include <gtest/gtest.h>

#include "bpred/factory.hh"
#include "pipeline/pipeline.hh"

namespace pabp {
namespace {

/**
 * main: calls leaf() n times in a loop, then halts.
 * leaf: one add, then ret.
 *
 * regs: r1 = loop counter.
 */
Program
callLoopProgram(std::int64_t iterations)
{
    Program p;
    p.name = "call-loop";
    // 0: mov r1 = iterations
    // 1: cmp.gt.unc p1, p2 = r1, 0
    // 2: (p2) br 7        ; exit loop
    // 3: call 8           ; leaf
    // 4: sub r1 = r1, 1
    // 5: br 1
    // 6: nop
    // 7: halt
    // 8: add r2 = r2, 1   ; leaf body
    // 9: ret
    p.insts = {
        makeMovImm(1, iterations),
        makeCmpImm(CmpRel::Gt, CmpType::Unc, 1, 2, 1, 0),
        makeBr(7, 2),
        makeCall(8),
        makeAluImm(Opcode::Sub, 1, 1, 1),
        makeBr(1),
        makeNop(),
        makeHalt(),
        makeAluImm(Opcode::Add, 2, 2, 1),
        makeRet(),
    };
    return p;
}

/**
 * Recursive descent to the given depth: each level calls the next
 * until r1 reaches zero, then the whole chain returns.
 */
Program
recursionProgram(std::int64_t depth)
{
    Program p;
    p.name = "recursion";
    // 0: mov r1 = depth
    // 1: call 3
    // 2: halt
    // 3: cmp.gt.unc p1, p2 = r1, 0   ; f:
    // 4: (p2) br 8                    ; base case -> ret
    // 5: sub r1 = r1, 1
    // 6: call 3
    // 7: add r2 = r2, 1
    // 8: ret
    p.insts = {
        makeMovImm(1, depth),
        makeCall(3),
        makeHalt(),
        makeCmpImm(CmpRel::Gt, CmpType::Unc, 1, 2, 1, 0),
        makeBr(8, 2),
        makeAluImm(Opcode::Sub, 1, 1, 1),
        makeCall(3),
        makeAluImm(Opcode::Add, 2, 2, 1),
        makeRet(),
    };
    return p;
}

/** The RAS lives in the engine now (EngineConfig::rasDepth); the
 *  pipeline charges cycles for the outcomes it reports. */
PipelineStats
timeProgram(const Program &p, unsigned ras_depth = 16,
            PipelineConfig pcfg = PipelineConfig{})
{
    EXPECT_EQ(validateProgram(p), "");
    PredictorPtr pred = makePredictor("gshare", 10);
    EngineConfig ecfg;
    ecfg.modelTargets = true;
    ecfg.rasDepth = ras_depth;
    PredictionEngine engine(*pred, ecfg);
    Pipeline pipe(engine, pcfg);
    Emulator emu(p, EmuConfig{1 << 12, 2'000'000});
    return pipe.run(emu, 2'000'000);
}

TEST(RasPipeline, WellNestedCallsHit)
{
    Program p = callLoopProgram(500);
    PipelineStats stats = timeProgram(p);
    EXPECT_EQ(stats.rasMisses, 0u);
    EXPECT_EQ(stats.rasHits, 500u);
}

TEST(RasPipeline, ShallowRecursionFitsRas)
{
    Program p = recursionProgram(8);
    PipelineStats stats = timeProgram(p, 16);
    EXPECT_EQ(stats.rasMisses, 0u);
    EXPECT_EQ(stats.rasHits, 9u); // depth 8 + the outer call
}

TEST(RasPipeline, DeepRecursionOverflowsRas)
{
    Program p = recursionProgram(64);
    PipelineStats stats = timeProgram(p, 8);
    EXPECT_GT(stats.rasMisses, 0u);
    EXPECT_GT(stats.rasHits, 0u); // the innermost frames still hit
}

TEST(RasPipeline, RasMissesCostCycles)
{
    Program p = recursionProgram(64);
    PipelineStats with_big = timeProgram(p, 128);
    PipelineStats with_small = timeProgram(p, 4);
    EXPECT_EQ(with_big.rasMisses, 0u);
    EXPECT_GT(with_small.rasMisses, 0u);
    EXPECT_GT(with_small.cycles, with_big.cycles);
}

TEST(RasPipeline, EmulatorAgreesOnCallSemantics)
{
    Program p = recursionProgram(16);
    Emulator emu(p, EmuConfig{1 << 12, 100000});
    emu.run(100000);
    EXPECT_TRUE(emu.state().halted);
    EXPECT_EQ(emu.state().readGpr(2), 16); // one add per level unwind
}

} // namespace
} // namespace pabp
