/**
 * @file
 * Results-journal hardening tests (util/journal.hh): round trips,
 * the salvage discipline (longest valid prefix, torn tails truncated
 * on open), typed errors for every corruption class, and the
 * write-then-rename compaction guarantee - a crash at any point
 * leaves the complete old journal or the complete new one, never a
 * mix. The fault-injection style mirrors tests/test_trace_io.cc.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/journal.hh"

namespace pabp {
namespace {

JournalRecord
makeRecord(std::uint64_t fingerprint, const std::string &blob,
           JournalRecord::Kind kind = JournalRecord::Kind::Result)
{
    JournalRecord rec;
    rec.kind = kind;
    rec.fingerprint = fingerprint;
    rec.attempts = 1;
    rec.statusCode = kind == JournalRecord::Kind::Quarantine
        ? static_cast<std::uint8_t>(StatusCode::Corrupt)
        : 0;
    rec.columns = {100 + fingerprint, 200 + fingerprint, 3};
    rec.blob = blob;
    return rec;
}

std::string
buildImage(const std::vector<JournalRecord> &records,
           const JournalHeader &header = {})
{
    std::ostringstream os;
    writeJournalHeader(os, header);
    for (const JournalRecord &rec : records)
        appendJournalRecord(os, rec);
    return os.str();
}

/** Unique scratch path per test; removed on destruction. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string &name)
        : path_((std::filesystem::temp_directory_path() /
                 ("pabp-journal-test-" + name))
                    .string())
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }

    ~ScratchFile()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }

    const std::string &path() const { return path_; }

    void
    write(const std::string &bytes) const
    {
        std::ofstream os(path_, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }

    std::string
    read() const
    {
        std::ifstream in(path_, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    }

  private:
    std::string path_;
};

TEST(Journal, RoundTripsRecordsAndHeader)
{
    const std::vector<JournalRecord> records = {
        makeRecord(1, "{\"a\":1}"),
        makeRecord(2, "boom", JournalRecord::Kind::Quarantine),
        makeRecord(3, ""),
    };
    const JournalHeader header{2, 8};
    JournalHeader parsed;
    Expected<std::vector<JournalRecord>> got =
        readJournalImage(buildImage(records, header), {}, &parsed);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    EXPECT_EQ(got.value(), records);
    EXPECT_EQ(parsed, header);
}

TEST(Journal, EmptyJournalHasNoRecords)
{
    Expected<std::vector<JournalRecord>> got =
        readJournalImage(buildImage({}));
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got.value().empty());
}

TEST(Journal, RejectsForeignBytesAndShortHeaders)
{
    Expected<std::vector<JournalRecord>> not_ours =
        readJournalImage("definitely not a journal");
    ASSERT_FALSE(not_ours.ok());
    EXPECT_EQ(not_ours.status().code(), StatusCode::BadMagic);

    const std::string image = buildImage({});
    Expected<std::vector<JournalRecord>> torn =
        readJournalImage(image.substr(0, 12));
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(torn.status().code(), StatusCode::Truncated);
}

TEST(Journal, HeaderDamageIsFatalEvenUnderSalvage)
{
    std::string image = buildImage({makeRecord(1, "x")});
    image[12] ^= 0x40; // inside the shard identity, CRC-protected
    JournalReadOptions opts;
    opts.salvage = true;
    Expected<std::vector<JournalRecord>> got =
        readJournalImage(image, opts);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::ChecksumMismatch);
}

TEST(Journal, TornTailIsStrictErrorButSalvagesToPrefix)
{
    const std::vector<JournalRecord> records = {makeRecord(1, "one"),
                                                makeRecord(2, "two")};
    const std::string whole = buildImage(records);
    const std::string one = buildImage({records[0]});
    // Chop mid-way through the second record's frame.
    const std::string torn =
        whole.substr(0, one.size() + (whole.size() - one.size()) / 2);

    Expected<std::vector<JournalRecord>> strict =
        readJournalImage(torn);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::Truncated);

    JournalReadOptions opts;
    opts.salvage = true;
    JournalReadInfo info;
    Expected<std::vector<JournalRecord>> salvaged =
        readJournalImage(torn, opts, nullptr, &info);
    ASSERT_TRUE(salvaged.ok());
    EXPECT_EQ(salvaged.value(),
              std::vector<JournalRecord>{records[0]});
    EXPECT_TRUE(info.salvaged);
    EXPECT_EQ(info.validBytes, one.size());
    EXPECT_EQ(info.tailBytesDropped, torn.size() - one.size());
}

TEST(Journal, RecordCrcDamageStopsTheScanThere)
{
    const std::vector<JournalRecord> records = {
        makeRecord(1, "one"), makeRecord(2, "two"),
        makeRecord(3, "three")};
    const std::string one = buildImage({records[0]});
    std::string image = buildImage(records);
    image[one.size() + 10] ^= 1; // inside record 2's frame

    Expected<std::vector<JournalRecord>> strict =
        readJournalImage(image);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::ChecksumMismatch);

    // Salvage keeps the records BEFORE the damage; the intact third
    // record is unreachable (frame boundaries cannot be trusted past
    // a bad CRC) and that is the contract.
    JournalReadOptions opts;
    opts.salvage = true;
    Expected<std::vector<JournalRecord>> salvaged =
        readJournalImage(image, opts);
    ASSERT_TRUE(salvaged.ok());
    EXPECT_EQ(salvaged.value(),
              std::vector<JournalRecord>{records[0]});
}

TEST(Journal, OversizedFrameLengthIsBoundedNotAllocated)
{
    std::string image = buildImage({});
    const std::uint32_t huge = kJournalMaxFrameBytes + 1;
    const std::uint32_t crc = 0;
    image.append(reinterpret_cast<const char *>(&huge), 4);
    image.append(reinterpret_cast<const char *>(&crc), 4);
    Expected<std::vector<JournalRecord>> got = readJournalImage(image);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::Corrupt);
}

TEST(Journal, ColumnCountIsBounded)
{
    JournalRecord rec = makeRecord(1, "x");
    rec.columns.assign(kJournalMaxColumns + 1, 7);
    Expected<std::vector<JournalRecord>> got =
        readJournalImage(buildImage({rec}));
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::Corrupt);
}

TEST(Journal, WriterCreatesAppendsAndAdopts)
{
    ScratchFile file("create");
    const JournalHeader header{1, 2};
    {
        Expected<JournalWriter> writer =
            JournalWriter::open(file.path(), header);
        ASSERT_TRUE(writer.ok()) << writer.status().toString();
        ASSERT_TRUE(writer.value().append(makeRecord(1, "one")).ok());
        ASSERT_TRUE(writer.value().append(makeRecord(2, "two")).ok());
        EXPECT_EQ(writer.value().recordsAppended(), 2u);
        writer.value().close();
    }
    {
        std::vector<JournalRecord> existing;
        Expected<JournalWriter> writer =
            JournalWriter::open(file.path(), header, &existing);
        ASSERT_TRUE(writer.ok()) << writer.status().toString();
        ASSERT_EQ(existing.size(), 2u);
        EXPECT_EQ(existing[0].blob, "one");
        ASSERT_TRUE(writer.value().append(makeRecord(3, "three")).ok());
        writer.value().close();
    }
    JournalHeader found;
    Expected<std::vector<JournalRecord>> all =
        readJournalFile(file.path(), {}, &found);
    ASSERT_TRUE(all.ok()) << all.status().toString();
    EXPECT_EQ(all.value().size(), 3u);
    EXPECT_EQ(found, header);
}

TEST(Journal, WriterTruncatesTornTailOnOpen)
{
    ScratchFile file("torn");
    const std::vector<JournalRecord> records = {makeRecord(1, "one"),
                                                makeRecord(2, "two")};
    const std::string whole = buildImage(records);
    const std::string one = buildImage({records[0]});
    file.write(whole.substr(0, whole.size() - 3)); // torn append

    std::vector<JournalRecord> existing;
    JournalReadInfo info;
    Expected<JournalWriter> writer =
        JournalWriter::open(file.path(), {}, &existing, &info);
    ASSERT_TRUE(writer.ok()) << writer.status().toString();
    EXPECT_TRUE(info.salvaged);
    EXPECT_EQ(existing, std::vector<JournalRecord>{records[0]});
    // The tail is PHYSICALLY gone and the next append lands clean.
    ASSERT_TRUE(writer.value().append(makeRecord(9, "nine")).ok());
    writer.value().close();

    Expected<std::vector<JournalRecord>> strict =
        readJournalFile(file.path());
    ASSERT_TRUE(strict.ok()) << strict.status().toString();
    ASSERT_EQ(strict.value().size(), 2u);
    EXPECT_EQ(strict.value()[0].blob, "one");
    EXPECT_EQ(strict.value()[1].blob, "nine");
}

TEST(Journal, WriterRefusesAnotherShardsJournal)
{
    ScratchFile file("shard");
    file.write(buildImage({}, JournalHeader{3, 4}));
    Expected<JournalWriter> writer =
        JournalWriter::open(file.path(), JournalHeader{0, 4});
    ASSERT_FALSE(writer.ok());
    EXPECT_EQ(writer.status().code(), StatusCode::InvalidArgument);
}

TEST(Journal, CompactionKeepsLastRecordPerFingerprintInOrder)
{
    ScratchFile file("compact");
    file.write(buildImage({makeRecord(1, "first"),
                           makeRecord(2, "boom",
                                      JournalRecord::Kind::Quarantine),
                           makeRecord(1, "second"),
                           makeRecord(2, "healed")}));
    ASSERT_TRUE(compactJournal(file.path(), {2, 1}).ok());

    Expected<std::vector<JournalRecord>> got =
        readJournalFile(file.path());
    ASSERT_TRUE(got.ok()) << got.status().toString();
    ASSERT_EQ(got.value().size(), 2u);
    EXPECT_EQ(got.value()[0].fingerprint, 2u);
    EXPECT_EQ(got.value()[0].blob, "healed");
    EXPECT_EQ(got.value()[0].kind, JournalRecord::Kind::Result);
    EXPECT_EQ(got.value()[1].fingerprint, 1u);
    EXPECT_EQ(got.value()[1].blob, "second");
}

TEST(Journal, CompactionIsIdempotentOnBytes)
{
    ScratchFile file("idempotent");
    file.write(buildImage({makeRecord(1, "a"), makeRecord(2, "b"),
                           makeRecord(1, "a2")}));
    ASSERT_TRUE(compactJournal(file.path(), {1, 2}).ok());
    const std::string once = file.read();
    ASSERT_TRUE(compactJournal(file.path(), {1, 2}).ok());
    EXPECT_EQ(file.read(), once);
}

TEST(Journal, CrashMidCompactionLeavesOldJournalIntact)
{
    ScratchFile file("crash");
    const std::string old_image =
        buildImage({makeRecord(1, "old"), makeRecord(1, "newer")});
    file.write(old_image);

    // A compaction killed before its rename: the temp file exists
    // with arbitrary (even torn) content, the real journal is
    // untouched. Readers see the complete OLD image...
    {
        std::ofstream tmp(file.path() + ".tmp",
                          std::ios::binary | std::ios::trunc);
        tmp << old_image.substr(0, 10); // garbage half-write
    }
    Expected<std::vector<JournalRecord>> before =
        readJournalFile(file.path());
    ASSERT_TRUE(before.ok());
    EXPECT_EQ(before.value().size(), 2u);

    // ...and the writer discards the temp instead of adopting it.
    std::vector<JournalRecord> existing;
    Expected<JournalWriter> writer =
        JournalWriter::open(file.path(), {}, &existing);
    ASSERT_TRUE(writer.ok()) << writer.status().toString();
    writer.value().close();
    EXPECT_EQ(existing.size(), 2u);
    EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));

    // A compaction that RUNS to completion replaces the image whole.
    ASSERT_TRUE(compactJournal(file.path(), {1}).ok());
    Expected<std::vector<JournalRecord>> after =
        readJournalFile(file.path());
    ASSERT_TRUE(after.ok());
    ASSERT_EQ(after.value().size(), 1u);
    EXPECT_EQ(after.value()[0].blob, "newer");
    EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));
}

TEST(Journal, AtomicWriteReplacesContentWhole)
{
    ScratchFile file("atomic");
    file.write("stale");
    ASSERT_TRUE(atomicWriteFile(file.path(), "fresh contents").ok());
    EXPECT_EQ(file.read(), "fresh contents");
    EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));
}

} // namespace
} // namespace pabp
