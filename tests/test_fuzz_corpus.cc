/**
 * @file
 * Tier-1 corpus replay (docs/FUZZING.md): every minimised case under
 * tests/corpus/ runs all of its differential oracles in-process and
 * must pass, the corpus must keep its promised coverage (every
 * predictor kind, every engine-flag combination, the emulator edge
 * cases), the harness self-check must still catch the re-introduced
 * PR-4 cursor-clamp bug, and the pabp-fuzz binary must honour the
 * pabp-stats exit conventions (0 pass / 1 divergence / 2 usage).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_case.hh"
#include "fuzz/fuzz_runner.hh"
#include "fuzz/oracles.hh"
#include "fuzz/shrink.hh"

#ifndef PABP_CORPUS_DIR
#error "PABP_CORPUS_DIR must point at tests/corpus"
#endif
#ifndef PABP_FUZZ_BIN
#error "PABP_FUZZ_BIN must point at the pabp-fuzz executable"
#endif

namespace pabp::fuzz {
namespace {

namespace fs = std::filesystem;

std::vector<std::string>
corpusPaths()
{
    std::vector<std::string> paths;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(PABP_CORPUS_DIR)) {
        if (entry.path().extension() == ".pabp")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

RunEnv
testEnv()
{
    RunEnv env;
    env.scratchDir = ::testing::TempDir();
    return env;
}

// ---------------------------------------------------------------------
// The corpus itself: every case parses, replays green, and the set
// covers what ISSUE/docs promise.

TEST(FuzzCorpus, EveryCaseReplaysClean)
{
    std::vector<std::string> paths = corpusPaths();
    ASSERT_GE(paths.size(), 25u)
        << "corpus shrank below the documented floor";

    RunEnv env = testEnv();
    for (const std::string &path : paths) {
        Expected<FuzzCase> parsed = readCaseFile(path);
        ASSERT_TRUE(parsed.ok())
            << path << ": " << parsed.status().toString();
        Expected<CaseOutcome> outcome = runCase(parsed.value(), env);
        ASSERT_TRUE(outcome.ok())
            << path << ": " << outcome.status().toString();
        EXPECT_NE(outcome.value().oraclesRun, 0u) << path;
        for (const FuzzReport &fail : outcome.value().failures) {
            ADD_FAILURE() << path << ": oracle "
                          << oracleName(fail.oracle) << ": "
                          << fail.status.toString();
        }
    }
}

TEST(FuzzCorpus, CoversEveryPredictorKind)
{
    const char *const kinds[] = {"static-taken", "static-nottaken",
                                 "bimodal",      "gshare",
                                 "gag",          "local",
                                 "agree",        "yags",
                                 "perceptron",   "comb",
                                 "tage"};
    std::set<std::string> seen;
    for (const std::string &path : corpusPaths()) {
        Expected<FuzzCase> parsed = readCaseFile(path);
        ASSERT_TRUE(parsed.ok()) << path;
        seen.insert(parsed.value().predictor);
    }
    for (const char *kind : kinds)
        EXPECT_TRUE(seen.count(kind)) << "no corpus case for " << kind;
}

TEST(FuzzCorpus, CoversEveryEngineFlagCombination)
{
    const char *const specs[] = {"base",
                                 "sfpf",
                                 "pgu",
                                 "sfpf+pgu",
                                 "spec",
                                 "jrs",
                                 "sfpf+pgu+spec",
                                 "sfpf+pgu+jrs",
                                 "sfpf+train",
                                 "sfpf+consdef"};
    std::set<std::string> seen;
    for (const std::string &path : corpusPaths()) {
        Expected<FuzzCase> parsed = readCaseFile(path);
        ASSERT_TRUE(parsed.ok()) << path;
        seen.insert(engineSpecString(parsed.value().engine));
    }
    for (const char *spec : specs)
        EXPECT_TRUE(seen.count(spec)) << "no corpus case for " << spec;
}

TEST(FuzzCorpus, CoversEmulatorEdgeCases)
{
    bool divEdges = false, emptyRas = false, calls = false;
    bool deepNest = false, corruptTrace = false;
    for (const std::string &path : corpusPaths()) {
        Expected<FuzzCase> parsed = readCaseFile(path);
        ASSERT_TRUE(parsed.ok()) << path;
        const FuzzCase &c = parsed.value();
        divEdges |= c.gen.divEdgePercent > 0;
        emptyRas |= c.gen.emptyRas;
        calls |= c.gen.callDepth > 0;
        deepNest |= c.gen.predNestDepth >= 4;
        corruptTrace |= c.corruptFlips > 0 || c.corruptTruncate > 0;
    }
    EXPECT_TRUE(divEdges) << "no INT64_MIN/-1 division edge case";
    EXPECT_TRUE(emptyRas) << "no empty-RAS ret case";
    EXPECT_TRUE(calls) << "no call/return depth case";
    EXPECT_TRUE(deepNest) << "no deep predicate-nesting case";
    EXPECT_TRUE(corruptTrace) << "no trace-corruption case";
}

TEST(FuzzCorpus, CoversMultiContextInterference)
{
    bool tagged = false, partitioned = false, rasUnderCtx = false;
    for (const std::string &path : corpusPaths()) {
        Expected<FuzzCase> parsed = readCaseFile(path);
        ASSERT_TRUE(parsed.ok()) << path;
        const FuzzCase &c = parsed.value();
        if (c.contexts < 2)
            continue;
        tagged |= c.ctxTagBits > 0;
        partitioned |= !c.ctxShared;
        rasUnderCtx |= c.gen.emptyRas && c.gen.callDepth > 0;
    }
    EXPECT_TRUE(tagged)
        << "no multi-context case with context-tagged tables";
    EXPECT_TRUE(partitioned)
        << "no multi-context case with partitioned history";
    EXPECT_TRUE(rasUnderCtx)
        << "no multi-context case exercising RAS overflow/underflow";
}

// ---------------------------------------------------------------------
// Acceptance criterion: the re-introduced PR-4 cursor-clamp bug is
// caught by the checkpoint oracle and minimised to <= 20 trace
// instructions. checkHarness() asserts both internally; this repeats
// the shrink bound here so the test names the contract.

TEST(FuzzHarness, CatchesAndMinimisesInjectedClampBug)
{
    RunEnv env = testEnv();
    std::ostringstream log;
    Status check = checkHarness(env, log);
    ASSERT_TRUE(check.ok()) << check.toString() << "\n" << log.str();

    RunEnv buggy = env;
    buggy.injectClampBug = true;
    FuzzCase c;
    c.seed = 7;
    c.oracles = static_cast<unsigned>(Oracle::Checkpoint);
    Expected<CaseOutcome> outcome = runCase(c, buggy);
    ASSERT_TRUE(outcome.ok()) << outcome.status().toString();
    ASSERT_FALSE(outcome.value().passed())
        << "checkpoint oracle missed the injected clamp bug";

    ShrinkResult r = shrinkCase(c, buggy, 200);
    EXPECT_GT(r.accepted, 0u);
    EXPECT_LE(r.shrunk.maxInsts, 20u)
        << "reproducer not minimised to <= 20 instructions";
    Expected<CaseOutcome> again = runCase(r.shrunk, buggy);
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(again.value().passed())
        << "minimised case no longer reproduces";
    // Without the injected bug the same minimised case is green.
    Expected<CaseOutcome> clean = runCase(r.shrunk, env);
    ASSERT_TRUE(clean.ok());
    EXPECT_TRUE(clean.value().passed());
}

// ---------------------------------------------------------------------
// CLI smoke: exit conventions of the installed binary.

int
runTool(const std::string &argstr)
{
    std::string cmd = std::string(PABP_FUZZ_BIN) + " " + argstr +
        " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    EXPECT_NE(rc, -1);
    return WEXITSTATUS(rc);
}

TEST(FuzzCli, ReplayPassExitsZero)
{
    EXPECT_EQ(runTool("--scratch-dir " + ::testing::TempDir() +
                      " --replay " PABP_CORPUS_DIR
                      "/pred-gshare.pabp"),
              0);
}

TEST(FuzzCli, InjectedDivergenceExitsOne)
{
    EXPECT_EQ(runTool("--scratch-dir " + ::testing::TempDir() +
                      " --inject-clamp-bug --replay " PABP_CORPUS_DIR
                      "/pred-gshare.pabp"),
              1);
}

TEST(FuzzCli, UsageErrorsExitTwo)
{
    EXPECT_EQ(runTool(""), 2); // no mode picked
    EXPECT_EQ(runTool("--replay /nonexistent/case.pabp"), 2);
    EXPECT_EQ(runTool("--no-such-flag"), 2);
}

TEST(FuzzCli, HelpDocumentsReplayAndExitsZero)
{
    std::string out = std::string(PABP_FUZZ_BIN) + " --help > " +
        ::testing::TempDir() + "/fuzz-help.txt 2>&1";
    int rc = std::system(out.c_str());
    ASSERT_NE(rc, -1);
    EXPECT_EQ(WEXITSTATUS(rc), 0);
    std::ifstream in(::testing::TempDir() + "/fuzz-help.txt");
    std::stringstream text;
    text << in.rdbuf();
    EXPECT_NE(text.str().find("--replay"), std::string::npos);
    EXPECT_NE(text.str().find("--check-harness"), std::string::npos);
    EXPECT_NE(text.str().find("--mine"), std::string::npos);
}

TEST(FuzzCli, CheckHarnessExitsZero)
{
    EXPECT_EQ(runTool("--scratch-dir " + ::testing::TempDir() +
                      " --check-harness"),
              0);
}

TEST(FuzzCli, MiningScorerFailureExitsThreeWithoutQuarantine)
{
    // Exit 3 is the mining-specific verdict: the predictability
    // SCORER failed, which is a scoring-infrastructure problem, not
    // a correctness divergence. Nothing may be quarantined or
    // emitted - an empty emit dir is the proof that scorer trouble
    // never masquerades as a reproducer.
    namespace fs = std::filesystem;
    const std::string dir =
        ::testing::TempDir() + "mine-scorer-fail";
    fs::create_directories(dir);
    EXPECT_EQ(runTool("--mine low-entropy-gap --runs 2 "
                      "--mine-steps 1 --inject-scorer-failure "
                      "--scratch-dir " +
                      ::testing::TempDir() + " --emit-dir " + dir),
              3);
    std::size_t files = 0;
    for (const fs::directory_entry &e : fs::directory_iterator(dir)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 0u);
}

TEST(FuzzCli, MiningUnknownStrategyExitsTwo)
{
    EXPECT_EQ(runTool("--mine no-such-strategy"), 2);
}

} // namespace
} // namespace pabp::fuzz
