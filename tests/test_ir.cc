/**
 * @file
 * IR tests: builder, successors/predecessors, verifier diagnostics.
 */

#include <gtest/gtest.h>

#include "compiler/ir.hh"
#include "isa/program.hh"

namespace pabp {
namespace {

IrFunction
makeDiamond()
{
    IrFunction fn;
    fn.name = "diamond";
    IrBuilder b(fn);
    BlockId entry = b.newBlock();
    BlockId then_b = b.newBlock();
    BlockId else_b = b.newBlock();
    BlockId join = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(1, 5));
    b.condBrImm(CmpRel::Lt, 1, 10, then_b, else_b);

    b.setBlock(then_b);
    b.append(makeMovImm(2, 1));
    b.jump(join);

    b.setBlock(else_b);
    b.append(makeMovImm(2, 2));
    b.jump(join);

    b.setBlock(join);
    b.halt();
    return fn;
}

TEST(IrBuilder, DiamondShape)
{
    IrFunction fn = makeDiamond();
    ASSERT_EQ(fn.blocks.size(), 4u);
    EXPECT_EQ(verifyFunction(fn), "");
    EXPECT_EQ(fn.successors(0), (std::vector<BlockId>{1, 2}));
    EXPECT_EQ(fn.successors(1), (std::vector<BlockId>{3}));
    EXPECT_EQ(fn.successors(3), (std::vector<BlockId>{}));
}

TEST(IrBuilder, PredecessorLists)
{
    IrFunction fn = makeDiamond();
    auto preds = fn.predecessorLists();
    EXPECT_TRUE(preds[0].empty());
    EXPECT_EQ(preds[1], (std::vector<BlockId>{0}));
    EXPECT_EQ(preds[3], (std::vector<BlockId>{1, 2}));
}

TEST(IrVerifier, RejectsEmptyFunction)
{
    IrFunction fn;
    EXPECT_NE(verifyFunction(fn), "");
}

TEST(IrVerifier, RejectsControlInBody)
{
    IrFunction fn;
    IrBuilder b(fn);
    BlockId blk = b.newBlock();
    b.setBlock(blk);
    b.append(makeBr(0));
    b.halt();
    EXPECT_NE(verifyFunction(fn), "");
}

TEST(IrVerifier, RejectsGuardedBodyOp)
{
    IrFunction fn;
    IrBuilder b(fn);
    BlockId blk = b.newBlock();
    b.setBlock(blk);
    b.append(makeMovImm(1, 1, 5)); // guarded by p5
    b.halt();
    EXPECT_NE(verifyFunction(fn), "");
}

TEST(IrVerifier, RejectsPredicateWriteInBody)
{
    IrFunction fn;
    IrBuilder b(fn);
    BlockId blk = b.newBlock();
    b.setBlock(blk);
    b.append(makeCmp(CmpRel::Eq, CmpType::Normal, 1, 2, 3, 4));
    b.halt();
    EXPECT_NE(verifyFunction(fn), "");
}

TEST(IrVerifier, RejectsOutOfRangeTarget)
{
    IrFunction fn;
    IrBuilder b(fn);
    BlockId blk = b.newBlock();
    b.setBlock(blk);
    b.jump(99);
    EXPECT_NE(verifyFunction(fn), "");
}

TEST(IrVerifier, RejectsDegenerateCondBranch)
{
    IrFunction fn;
    IrBuilder b(fn);
    BlockId blk = b.newBlock();
    BlockId other = b.newBlock();
    b.setBlock(other);
    b.halt();
    b.setBlock(blk);
    b.condBrImm(CmpRel::Eq, 1, 0, other, other);
    EXPECT_NE(verifyFunction(fn), "");
}

TEST(IrDump, MentionsBlocksAndTerminators)
{
    IrFunction fn = makeDiamond();
    std::string text = fn.dump();
    EXPECT_NE(text.find("bb0"), std::string::npos);
    EXPECT_NE(text.find("goto bb1"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

} // namespace
} // namespace pabp
