/**
 * @file
 * Trace record/replay tests: round trips through memory and disk, and
 * the key property that replaying a recorded trace produces *exactly*
 * the same prediction statistics as a live run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "bpred/gshare.hh"
#include "core/engine.hh"
#include "sim/trace_io.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

RecordedTrace
recordWorkload(const std::string &name, std::uint64_t steps)
{
    Workload wl = makeWorkload(name, 77);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    return recordTrace(emu, steps);
}

TEST(TraceIo, RecordCapturesEvents)
{
    RecordedTrace trace = recordWorkload("dchain", 50000);
    EXPECT_EQ(trace.size(), 50000u);
    EXPECT_GT(trace.prog.size(), 0u);
}

TEST(TraceIo, MaterialiseReconstructsBranchFacts)
{
    RecordedTrace trace = recordWorkload("filter", 20000);
    std::uint64_t branches = 0, taken = 0, writes = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        DynInst dyn = trace.materialise(i);
        EXPECT_EQ(dyn.seq, i);
        ASSERT_NE(dyn.inst, nullptr);
        if (dyn.inst->isConditionalBranch()) {
            ++branches;
            taken += dyn.taken;
        }
        writes += dyn.numPredWrites;
    }
    EXPECT_GT(branches, 0u);
    EXPECT_GT(taken, 0u);
    EXPECT_GT(writes, 0u);
}

TEST(TraceIo, StreamRoundTripExact)
{
    RecordedTrace trace = recordWorkload("histogram", 30000);
    std::stringstream buffer;
    std::uint64_t bytes = writeTrace(trace, buffer);
    EXPECT_GT(bytes, trace.size() * 12);

    RecordedTrace back = readTrace(buffer);
    ASSERT_EQ(back.size(), trace.size());
    ASSERT_EQ(back.prog.size(), trace.prog.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(back.events[i], trace.events[i]) << "event " << i;
    for (std::size_t pc = 0; pc < trace.prog.size(); ++pc) {
        EXPECT_EQ(encode(back.prog.insts[pc]),
                  encode(trace.prog.insts[pc]));
        EXPECT_EQ(back.prog.insts[pc].regionId,
                  trace.prog.insts[pc].regionId);
    }
}

TEST(TraceIo, BadMagicRejected)
{
    std::stringstream buffer;
    buffer << "NOTATRACE-------";
    EXPECT_EXIT(readTrace(buffer), ::testing::ExitedWithCode(1),
                "bad magic");
}

TEST(TraceIo, FileRoundTrip)
{
    RecordedTrace trace = recordWorkload("rle", 10000);
    std::string path = ::testing::TempDir() + "pabp_test.trace";
    saveTraceFile(trace, path);
    RecordedTrace back = loadTraceFile(path);
    EXPECT_EQ(back.size(), trace.size());
    std::remove(path.c_str());
}

class ReplayEquivalence : public ::testing::TestWithParam<std::string>
{};

TEST_P(ReplayEquivalence, ReplayMatchesLiveRunExactly)
{
    const std::string name = GetParam();
    constexpr std::uint64_t steps = 200000;

    // Live run.
    Workload wl = makeWorkload(name, 77);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    GSharePredictor live_pred(12);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.usePgu = true;
    PredictionEngine live(live_pred, ecfg);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    runTrace(emu, live, steps);

    // Recorded replay.
    RecordedTrace trace = recordWorkload(name, steps);
    GSharePredictor replay_pred(12);
    PredictionEngine replay(replay_pred, ecfg);
    replayTrace(trace, replay, steps);

    EXPECT_EQ(live.stats().insts, replay.stats().insts);
    EXPECT_EQ(live.stats().all.branches, replay.stats().all.branches);
    EXPECT_EQ(live.stats().all.mispredicts,
              replay.stats().all.mispredicts);
    EXPECT_EQ(live.stats().all.squashed, replay.stats().all.squashed);
    EXPECT_EQ(live.stats().predicateDefines,
              replay.stats().predicateDefines);
    EXPECT_EQ(live.pguBitsInserted(), replay.pguBitsInserted());
}

INSTANTIATE_TEST_SUITE_P(Suite, ReplayEquivalence,
                         ::testing::Values("dchain", "filter", "interp",
                                           "bsearch"));

} // namespace
} // namespace pabp
