/**
 * @file
 * Trace record/replay tests: round trips through memory and disk, the
 * key property that replaying a recorded trace produces *exactly* the
 * same prediction statistics as a live run, and the PABPTRC2
 * hardening guarantees - every corruption or truncation of the byte
 * stream yields a typed Status (never a process abort), v1 traces
 * still load, and salvage mode recovers the longest valid prefix.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "bpred/gshare.hh"
#include "core/engine.hh"
#include "sim/trace_io.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

RecordedTrace
recordWorkload(const std::string &name, std::uint64_t steps)
{
    Workload wl = makeWorkload(name, 77);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    return recordTrace(emu, steps);
}

std::string
serializeV2(const RecordedTrace &trace)
{
    std::stringstream buffer;
    writeTrace(trace, buffer);
    return buffer.str();
}

Expected<RecordedTrace>
readFromBytes(const std::string &bytes, const TraceReadOptions &opts = {},
              TraceReadInfo *info = nullptr)
{
    std::istringstream is(bytes);
    return readTrace(is, opts, info);
}

// v2 layout offsets (see trace_io.hh): the header is 32 bytes
// (magic 8, version 4, numInsts 8, numEvents 8, headerCrc 4).
constexpr std::size_t v2HeaderBytes = 32;
constexpr std::size_t instRecordBytes = 20;
constexpr std::size_t eventRecordBytes = 12;
constexpr std::size_t blockCapacity = 4096;

std::size_t
programSectionEnd(const RecordedTrace &trace)
{
    return v2HeaderBytes + trace.prog.size() * instRecordBytes + 4;
}

TEST(TraceIo, RecordCapturesEvents)
{
    RecordedTrace trace = recordWorkload("dchain", 50000);
    EXPECT_EQ(trace.size(), 50000u);
    EXPECT_GT(trace.prog.size(), 0u);
}

TEST(TraceIo, MaterialiseReconstructsBranchFacts)
{
    RecordedTrace trace = recordWorkload("filter", 20000);
    std::uint64_t branches = 0, taken = 0, writes = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        DynInst dyn = trace.materialise(i);
        EXPECT_EQ(dyn.seq, i);
        ASSERT_NE(dyn.inst, nullptr);
        if (dyn.inst->isConditionalBranch()) {
            ++branches;
            taken += dyn.taken;
        }
        writes += dyn.numPredWrites;
    }
    EXPECT_GT(branches, 0u);
    EXPECT_GT(taken, 0u);
    EXPECT_GT(writes, 0u);
}

TEST(TraceIo, StreamRoundTripExact)
{
    RecordedTrace trace = recordWorkload("histogram", 30000);
    std::stringstream buffer;
    std::uint64_t bytes = writeTrace(trace, buffer);
    EXPECT_GT(bytes, trace.size() * eventRecordBytes);

    TraceReadInfo info;
    Expected<RecordedTrace> loaded = readTrace(buffer, {}, &info);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(info.version, 2u);
    EXPECT_FALSE(info.salvaged);

    const RecordedTrace &back = loaded.value();
    ASSERT_EQ(back.size(), trace.size());
    ASSERT_EQ(back.prog.size(), trace.prog.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(back.events[i], trace.events[i]) << "event " << i;
    for (std::size_t pc = 0; pc < trace.prog.size(); ++pc) {
        EXPECT_EQ(encode(back.prog.insts[pc]),
                  encode(trace.prog.insts[pc]));
        EXPECT_EQ(back.prog.insts[pc].regionId,
                  trace.prog.insts[pc].regionId);
    }
}

TEST(TraceIo, BadMagicIsTypedError)
{
    Expected<RecordedTrace> loaded = readFromBytes("NOTATRACE-------");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::BadMagic);
}

TEST(TraceIo, UnknownContainerVersionIsTypedError)
{
    RecordedTrace trace = recordWorkload("rle", 1000);
    std::string bytes = serializeV2(trace);
    bytes[7] = '9'; // "PABPTRC9"
    Expected<RecordedTrace> loaded = readFromBytes(bytes);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::VersionMismatch);
}

TEST(TraceIo, HeaderCorruptionFailsChecksum)
{
    RecordedTrace trace = recordWorkload("rle", 1000);
    std::string bytes = serializeV2(trace);
    bytes[12] ^= 0x40; // inside numInsts
    Expected<RecordedTrace> loaded = readFromBytes(bytes);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::ChecksumMismatch);
}

TEST(TraceIo, ProgramCorruptionFailsChecksum)
{
    RecordedTrace trace = recordWorkload("rle", 1000);
    std::string bytes = serializeV2(trace);
    bytes[v2HeaderBytes + 3] ^= 0x01;
    Expected<RecordedTrace> loaded = readFromBytes(bytes);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::ChecksumMismatch);
}

TEST(TraceIo, EventCorruptionFailsChecksum)
{
    RecordedTrace trace = recordWorkload("rle", 1000);
    std::string bytes = serializeV2(trace);
    bytes[programSectionEnd(trace) + 4 + 7] ^= 0x80;
    Expected<RecordedTrace> loaded = readFromBytes(bytes);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::ChecksumMismatch);
}

TEST(TraceIo, FooterCorruptionIsTypedError)
{
    RecordedTrace trace = recordWorkload("rle", 1000);
    std::string bytes = serializeV2(trace);
    bytes.back() ^= 0xff;
    Expected<RecordedTrace> loaded = readFromBytes(bytes);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::Corrupt);
}

TEST(TraceIo, TruncationAtEverySectionBoundaryIsTyped)
{
    RecordedTrace trace = recordWorkload("rle", 1000);
    std::string bytes = serializeV2(trace);
    std::size_t prog_end = programSectionEnd(trace);
    // Structural boundaries: inside the magic, after the magic,
    // inside the header, after the header CRC, inside the program
    // section, just before / after the program CRC, inside the first
    // event block, and just before the footer sentinel.
    const std::size_t cuts[] = {
        0,  4,  8,  20, v2HeaderBytes,
        v2HeaderBytes + instRecordBytes + 3,
        prog_end - 4, prog_end, prog_end + 2,
        prog_end + 4 + 5 * eventRecordBytes,
        bytes.size() - 8, bytes.size() - 1,
    };
    for (std::size_t cut : cuts) {
        ASSERT_LT(cut, bytes.size());
        Expected<RecordedTrace> loaded =
            readFromBytes(bytes.substr(0, cut));
        ASSERT_FALSE(loaded.ok()) << "cut at " << cut;
        EXPECT_EQ(loaded.status().code(), StatusCode::Truncated)
            << "cut at " << cut << ": " << loaded.status().toString();
    }
}

TEST(TraceIo, V1TracesStillLoad)
{
    RecordedTrace trace = recordWorkload("histogram", 20000);
    std::stringstream buffer;
    writeTraceV1(trace, buffer);

    TraceReadInfo info;
    Expected<RecordedTrace> loaded = readTrace(buffer, {}, &info);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(info.version, 1u);
    ASSERT_EQ(loaded.value().size(), trace.size());
    EXPECT_EQ(loaded.value().events, trace.events);
}

TEST(TraceIo, V1TruncationIsTypedError)
{
    RecordedTrace trace = recordWorkload("rle", 500);
    std::stringstream buffer;
    writeTraceV1(trace, buffer);
    std::string bytes = buffer.str();

    Expected<RecordedTrace> loaded =
        readFromBytes(bytes.substr(0, bytes.size() / 2));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::Truncated);
}

TEST(TraceIo, SalvageRecoversWholeBlockPrefix)
{
    // Three event blocks (4096 + 4096 + 1808); damage block two.
    RecordedTrace trace = recordWorkload("dchain", 10000);
    ASSERT_GT(trace.size(), 2 * blockCapacity);
    std::string bytes = serializeV2(trace);
    std::size_t block_bytes = 4 + blockCapacity * eventRecordBytes + 4;
    std::size_t in_block2 = programSectionEnd(trace) + block_bytes + 100;
    bytes[in_block2] ^= 0x10;

    // Strict read refuses.
    Expected<RecordedTrace> strict = readFromBytes(bytes);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::ChecksumMismatch);

    // Salvage keeps exactly the first (valid) block.
    TraceReadOptions opts;
    opts.salvage = true;
    TraceReadInfo info;
    Expected<RecordedTrace> salvaged = readFromBytes(bytes, opts, &info);
    ASSERT_TRUE(salvaged.ok()) << salvaged.status().toString();
    EXPECT_TRUE(info.salvaged);
    EXPECT_EQ(salvaged.value().size(), blockCapacity);
    EXPECT_EQ(info.eventsDropped, trace.size() - blockCapacity);
    for (std::size_t i = 0; i < blockCapacity; ++i)
        ASSERT_EQ(salvaged.value().events[i], trace.events[i]);
}

TEST(TraceIo, SalvageCannotRescueDamagedProgram)
{
    RecordedTrace trace = recordWorkload("rle", 1000);
    std::string bytes = serializeV2(trace);
    bytes[v2HeaderBytes + 1] ^= 0x02;
    TraceReadOptions opts;
    opts.salvage = true;
    Expected<RecordedTrace> loaded = readFromBytes(bytes, opts);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::ChecksumMismatch);
}

TEST(TraceIo, SalvageKeepsEverythingOnFooterDamage)
{
    RecordedTrace trace = recordWorkload("rle", 1000);
    std::string bytes = serializeV2(trace);
    bytes.back() ^= 0xff;
    TraceReadOptions opts;
    opts.salvage = true;
    TraceReadInfo info;
    Expected<RecordedTrace> loaded = readFromBytes(bytes, opts, &info);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(info.salvaged);
    EXPECT_EQ(info.eventsDropped, 0u);
    EXPECT_EQ(loaded.value().size(), trace.size());
}

TEST(TraceIo, FileRoundTrip)
{
    RecordedTrace trace = recordWorkload("rle", 10000);
    std::string path = ::testing::TempDir() + "pabp_test.trace";
    saveTraceFile(trace, path);
    RecordedTrace back = loadTraceFile(path);
    EXPECT_EQ(back.size(), trace.size());
    std::remove(path.c_str());
}

TEST(TraceIo, TryLoadMissingFileIsTypedError)
{
    Expected<RecordedTrace> loaded =
        tryLoadTraceFile(::testing::TempDir() + "pabp_no_such.trace");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::IoError);
}

class ReplayEquivalence : public ::testing::TestWithParam<std::string>
{};

TEST_P(ReplayEquivalence, ReplayMatchesLiveRunExactly)
{
    const std::string name = GetParam();
    constexpr std::uint64_t steps = 200000;

    // Live run.
    Workload wl = makeWorkload(name, 77);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    GSharePredictor live_pred(12);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.usePgu = true;
    PredictionEngine live(live_pred, ecfg);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    runTrace(emu, live, steps);

    // Recorded replay.
    RecordedTrace trace = recordWorkload(name, steps);
    GSharePredictor replay_pred(12);
    PredictionEngine replay(replay_pred, ecfg);
    replayTrace(trace, replay, steps);

    EXPECT_EQ(live.stats().insts, replay.stats().insts);
    EXPECT_EQ(live.stats().all.branches, replay.stats().all.branches);
    EXPECT_EQ(live.stats().all.mispredicts,
              replay.stats().all.mispredicts);
    EXPECT_EQ(live.stats().all.squashed, replay.stats().all.squashed);
    EXPECT_EQ(live.stats().predicateDefines,
              replay.stats().predicateDefines);
    EXPECT_EQ(live.pguBitsInserted(), replay.pguBitsInserted());
}

INSTANTIATE_TEST_SUITE_P(Suite, ReplayEquivalence,
                         ::testing::Values("dchain", "filter", "interp",
                                           "bsearch"));

} // namespace
} // namespace pabp
