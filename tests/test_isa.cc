/**
 * @file
 * Unit tests for the ISA layer: relation evaluation, instruction
 * predicates, encode/decode round trips, disassembly, program
 * validation.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"

namespace pabp {
namespace {

TEST(CmpRelEval, SignedRelations)
{
    EXPECT_TRUE(evalRel(CmpRel::Eq, 5, 5));
    EXPECT_FALSE(evalRel(CmpRel::Eq, 5, 6));
    EXPECT_TRUE(evalRel(CmpRel::Ne, 5, 6));
    EXPECT_TRUE(evalRel(CmpRel::Lt, -1, 0));
    EXPECT_FALSE(evalRel(CmpRel::Lt, 0, 0));
    EXPECT_TRUE(evalRel(CmpRel::Le, 0, 0));
    EXPECT_TRUE(evalRel(CmpRel::Gt, 3, 2));
    EXPECT_TRUE(evalRel(CmpRel::Ge, 3, 3));
}

TEST(CmpRelEval, UnsignedRelations)
{
    // -1 is the largest unsigned value.
    EXPECT_FALSE(evalRel(CmpRel::Ltu, -1, 0));
    EXPECT_TRUE(evalRel(CmpRel::Ltu, 0, -1));
    EXPECT_TRUE(evalRel(CmpRel::Geu, -1, 0));
}

class RelInversion : public ::testing::TestWithParam<CmpRel>
{};

TEST_P(RelInversion, InverseIsLogicalComplement)
{
    CmpRel rel = GetParam();
    CmpRel inv = invertRel(rel);
    // Exhaustive small-domain check.
    for (std::int64_t a = -3; a <= 3; ++a)
        for (std::int64_t b = -3; b <= 3; ++b)
            EXPECT_NE(evalRel(rel, a, b), evalRel(inv, a, b))
                << "rel=" << cmpRelName(rel) << " a=" << a << " b=" << b;
}

TEST_P(RelInversion, InversionIsInvolutive)
{
    CmpRel rel = GetParam();
    EXPECT_EQ(invertRel(invertRel(rel)), rel);
}

INSTANTIATE_TEST_SUITE_P(AllRels, RelInversion,
                         ::testing::Values(CmpRel::Eq, CmpRel::Ne,
                                           CmpRel::Lt, CmpRel::Le,
                                           CmpRel::Gt, CmpRel::Ge,
                                           CmpRel::Ltu, CmpRel::Geu));

TEST(InstPredicates, ControlClassification)
{
    EXPECT_TRUE(makeBr(0).isControl());
    EXPECT_TRUE(makeCall(0).isControl());
    EXPECT_TRUE(makeRet().isControl());
    EXPECT_FALSE(makeNop().isControl());
    EXPECT_FALSE(makeHalt().isControl());
    EXPECT_FALSE(makeLoad(1, 2, 0).isControl());
}

TEST(InstPredicates, ConditionalBranchNeedsGuard)
{
    EXPECT_FALSE(makeBr(5).isConditionalBranch());     // qp = p0
    EXPECT_TRUE(makeBr(5, 3).isConditionalBranch());   // qp = p3
}

TEST(InstPredicates, PredicateWriters)
{
    EXPECT_TRUE(makeCmp(CmpRel::Eq, CmpType::Normal, 1, 2, 3, 4)
                    .writesPredicate());
    EXPECT_TRUE(makePSet(1, true).writesPredicate());
    EXPECT_FALSE(makeAlu(Opcode::Add, 1, 2, 3).writesPredicate());
}

TEST(EncodeDecode, AluRoundTrip)
{
    Inst inst = makeAluImm(Opcode::Add, 5, 6, -12345, 7);
    Inst back = decode(encode(inst));
    EXPECT_EQ(back.op, inst.op);
    EXPECT_EQ(back.dst, inst.dst);
    EXPECT_EQ(back.src1, inst.src1);
    EXPECT_EQ(back.qp, inst.qp);
    EXPECT_TRUE(back.hasImm);
    EXPECT_EQ(back.imm, inst.imm);
}

TEST(EncodeDecode, CmpRoundTrip)
{
    Inst inst =
        makeCmp(CmpRel::Ltu, CmpType::OrAndcm, 10, 11, 12, 13, 14);
    Inst back = decode(encode(inst));
    EXPECT_EQ(back.crel, CmpRel::Ltu);
    EXPECT_EQ(back.ctype, CmpType::OrAndcm);
    EXPECT_EQ(back.pdst1, 10);
    EXPECT_EQ(back.pdst2, 11);
    EXPECT_EQ(back.src1, 12);
    EXPECT_EQ(back.src2, 13);
    EXPECT_EQ(back.qp, 14);
}

TEST(EncodeDecode, BranchTargetRoundTrip)
{
    Inst inst = makeBr(0xfeed1234u, 9);
    inst.regionBranch = true;
    Inst back = decode(encode(inst));
    EXPECT_EQ(back.target, 0xfeed1234u);
    EXPECT_EQ(back.qp, 9);
    EXPECT_TRUE(back.regionBranch);
    EXPECT_EQ(back.regionId, -1); // metadata not encoded
}

TEST(EncodeDecode, EveryOpcodeSurvives)
{
    for (unsigned op = 0;
         op < static_cast<unsigned>(Opcode::NumOpcodes); ++op) {
        Inst inst;
        inst.op = static_cast<Opcode>(op);
        Inst back = decode(encode(inst));
        EXPECT_EQ(back.op, inst.op) << "opcode " << op;
    }
}

TEST(Disassemble, RepresentativeFormats)
{
    EXPECT_EQ(disassemble(makeAlu(Opcode::Add, 1, 2, 3)),
              "add r1 = r2, r3");
    EXPECT_EQ(disassemble(makeAluImm(Opcode::Sub, 1, 2, 5, 3)),
              "(p3) sub r1 = r2, 5");
    EXPECT_EQ(disassemble(makeCmp(CmpRel::Lt, CmpType::Unc, 4, 5, 2, 7,
                                  3)),
              "(p3) cmp.lt.unc p4, p5 = r2, r7");
    EXPECT_EQ(disassemble(makeCmp(CmpRel::Eq, CmpType::Normal, 1, 2, 3,
                                  4)),
              "cmp.eq p1, p2 = r3, r4");
    EXPECT_EQ(disassemble(makeLoad(1, 2, -4, 6)),
              "(p6) ld r1 = [r2 + -4]");
    EXPECT_EQ(disassemble(makeStore(2, 8, 1)), "st [r2 + 8] = r1");
    EXPECT_EQ(disassemble(makeBr(42, 3)), "(p3) br 42");
    EXPECT_EQ(disassemble(makePSet(7, true, 2)), "(p2) pset p7 = 1");
    EXPECT_EQ(disassemble(makeHalt()), "halt");
}

TEST(Disassemble, RegionBranchAnnotated)
{
    Inst br = makeBr(10, 4);
    br.regionBranch = true;
    EXPECT_NE(disassemble(br).find("region-based"), std::string::npos);
}

TEST(ValidateProgram, AcceptsMinimal)
{
    Program p;
    p.insts = {makeMovImm(1, 5), makeHalt()};
    EXPECT_EQ(validateProgram(p), "");
}

TEST(ValidateProgram, RejectsEmpty)
{
    Program p;
    EXPECT_NE(validateProgram(p), "");
}

TEST(ValidateProgram, RejectsOutOfRangeTarget)
{
    Program p;
    p.insts = {makeBr(5), makeHalt()};
    EXPECT_NE(validateProgram(p), "");
}

TEST(ValidateProgram, RejectsMissingHalt)
{
    Program p;
    p.insts = {makeMovImm(1, 1), makeBr(0)};
    EXPECT_NE(validateProgram(p), "");
}

TEST(ValidateProgram, RejectsFallThroughPastEnd)
{
    Program p;
    p.insts = {makeHalt(), makeMovImm(1, 1)};
    EXPECT_NE(validateProgram(p), "");
}

TEST(ValidateProgram, AcceptsGuardedBranchBeforeEnd)
{
    Program p;
    p.insts = {makeBr(0, 3), makeBr(0)}; // guarded, then unconditional
    // No halt -> invalid; add one reachable via target 0 loop... use:
    p.insts = {makeHalt(), makeBr(0)};
    EXPECT_EQ(validateProgram(p), "");
}

TEST(ProgramDisassembleAll, ContainsPcsAndRegionTags)
{
    Program p;
    Inst tagged = makeMovImm(1, 2);
    tagged.regionId = 3;
    p.insts = {tagged, makeHalt()};
    std::string listing = p.disassembleAll();
    EXPECT_NE(listing.find("0:"), std::string::npos);
    EXPECT_NE(listing.find("region 3"), std::string::npos);
}

} // namespace
} // namespace pabp
