/**
 * @file
 * Fast-replay equivalence: PredictionEngine::processBatch over a
 * DecodedTrace must be bit-identical - stats, per-branch profile,
 * PGU bit count, exported metrics BYTES - to the reference
 * replayTrace() loop, across predictor kinds (the E2 axis) and
 * engine configurations (the E6 axis plus the speculative-squash
 * extension). Also pins the DecodedTrace lane packing against
 * RecordedTrace::materialise, the clamped cursor contracts of
 * processBatch and replayTraceFrom, the chunked-batch invariant, the
 * ProcessResult::specSquashed/squashed separation, and the sweep
 * runner's fast-vs-reference byte equality and trace-cache counters.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bpred/btb.hh"
#include "bpred/factory.hh"
#include "core/engine.hh"
#include "sim/decoded_trace.hh"
#include "sim/emulator.hh"
#include "sim/trace_io.hh"
#include "sweep.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

using bench::RunResult;
using bench::RunSpec;
using bench::SweepRunner;

// ---------------------------------------------------------------------
// Shared fixtures: one recorded + decoded trace per workload.

RecordedTrace
recordWorkload(const std::string &name, std::uint64_t max_insts)
{
    Workload wl = makeWorkload(name, 42);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    return recordTrace(emu, max_insts);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::string
tempPath(const std::string &name)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->name() + "_" + name;
}

/** Everything the engine exposes after a replay. */
struct ReplayOutcome
{
    EngineStats stats;
    BranchProfile profile;
    std::uint64_t pguBits = 0;
    std::uint64_t processed = 0;
};

ReplayOutcome
runReference(const RecordedTrace &trace, const std::string &kind,
             const EngineConfig &ecfg)
{
    PredictorPtr pred = makePredictor(kind, 12);
    PredictionEngine engine(*pred, ecfg);
    ReplayOutcome out;
    out.processed = replayTrace(trace, engine, trace.size());
    out.stats = engine.stats();
    out.profile = engine.branchProfile();
    out.pguBits = engine.pguBitsInserted();
    return out;
}

ReplayOutcome
runFast(const DecodedTrace &trace, const std::string &kind,
        const EngineConfig &ecfg)
{
    PredictorPtr pred = makePredictor(kind, 12);
    PredictionEngine engine(*pred, ecfg);
    ReplayOutcome out;
    out.processed = engine.processBatch(trace, 0, trace.size());
    out.stats = engine.stats();
    out.profile = engine.branchProfile();
    out.pguBits = engine.pguBitsInserted();
    return out;
}

void
expectEquivalent(const ReplayOutcome &ref, const ReplayOutcome &fast)
{
    EXPECT_EQ(ref.processed, fast.processed);
    EXPECT_EQ(ref.stats, fast.stats);
    EXPECT_EQ(ref.profile, fast.profile);
    EXPECT_EQ(ref.pguBits, fast.pguBits);
    // Guard against a vacuous pass: the trace must actually have
    // exercised the predictor.
    EXPECT_GT(ref.stats.all.branches, 0u);
}

// ---------------------------------------------------------------------
// Lane packing: DecodedTrace::materialise vs RecordedTrace.

TEST(DecodedTraceLanes, MaterialiseMatchesRecordedTrace)
{
    RecordedTrace trace = recordWorkload("interp", 30000);
    DecodedTrace dec = DecodedTrace::build(trace);
    ASSERT_EQ(dec.size(), trace.size());

    for (std::size_t i = 0; i < trace.size(); ++i) {
        DynInst a = trace.materialise(i);
        DynInst b = dec.materialise(i);
        ASSERT_EQ(a.seq, b.seq) << i;
        ASSERT_EQ(a.pc, b.pc) << i;
        ASSERT_EQ(a.guard, b.guard) << i;
        ASSERT_EQ(a.taken, b.taken) << i;
        ASSERT_EQ(a.isControl, b.isControl) << i;
        ASSERT_EQ(a.nextPc, b.nextPc) << i;
        ASSERT_EQ(a.cmpRel, b.cmpRel) << i;
        ASSERT_EQ(a.isMem, b.isMem) << i;
        ASSERT_EQ(a.numPredWrites, b.numPredWrites) << i;
        for (unsigned w = 0; w < a.numPredWrites; ++w) {
            ASSERT_EQ(a.predWrites[w].reg, b.predWrites[w].reg) << i;
            ASSERT_EQ(a.predWrites[w].value, b.predWrites[w].value)
                << i;
        }
        // The decoded trace owns a program COPY, so the pointers
        // differ by design; every static field the engine reads must
        // still agree.
        ASSERT_NE(a.inst, nullptr);
        ASSERT_NE(b.inst, nullptr);
        ASSERT_EQ(a.inst->op, b.inst->op) << i;
        ASSERT_EQ(a.inst->qp, b.inst->qp) << i;
        ASSERT_EQ(a.inst->imm, b.inst->imm) << i;
        ASSERT_EQ(a.inst->pdst1, b.inst->pdst1) << i;
        ASSERT_EQ(a.inst->pdst2, b.inst->pdst2) << i;
        ASSERT_EQ(a.inst->regionId, b.inst->regionId) << i;
        ASSERT_EQ(a.inst->regionBranch, b.inst->regionBranch) << i;
    }
}

TEST(DecodedTraceLanes, ClassLaneMatchesDispatchRules)
{
    RecordedTrace trace = recordWorkload("filter", 30000);
    DecodedTrace dec = DecodedTrace::build(trace);

    std::uint64_t seen[4] = {0, 0, 0, 0};
    for (std::size_t i = 0; i < dec.size(); ++i) {
        const Inst &inst = dec.inst(i);
        auto cls = static_cast<DecodedTrace::Class>(dec.cls[i]);
        ++seen[dec.cls[i]];
        switch (cls) {
          case DecodedTrace::Class::CondBranch:
            EXPECT_EQ(inst.op, Opcode::Br) << i;
            EXPECT_NE(inst.qp, 0) << i;
            break;
          case DecodedTrace::Class::UncondControl:
            EXPECT_TRUE(inst.isControl()) << i;
            EXPECT_FALSE(inst.op == Opcode::Br && inst.qp != 0) << i;
            break;
          case DecodedTrace::Class::PredDefine:
            EXPECT_TRUE(inst.op == Opcode::Cmp ||
                        inst.op == Opcode::PSet)
                << i;
            break;
          case DecodedTrace::Class::Other:
            EXPECT_FALSE(inst.isControl()) << i;
            EXPECT_FALSE(inst.writesPredicate()) << i;
            break;
        }
    }
    // An if-converted workload exercises every class.
    EXPECT_GT(seen[0], 0u);
    EXPECT_GT(seen[1], 0u);
    EXPECT_GT(seen[2], 0u);
    EXPECT_GT(seen[3], 0u);
}

// ---------------------------------------------------------------------
// Equivalence across the predictor axis (the E2 grid): every factory
// kind, base and fully-armed configs. Covers the devirtualised
// predictors (gshare, comb, perceptron, tage) and the generic
// fallback.

TEST(FastReplayEquivalence, EveryPredictorKind)
{
    static const char *const kinds[] = {
        "static-taken", "static-nottaken", "bimodal", "gshare",
        "gag",          "local",           "agree",   "yags",
        "perceptron",   "comb",            "tage"};

    for (const char *wl : {"interp", "bsort"}) {
        RecordedTrace trace = recordWorkload(wl, 40000);
        DecodedTrace dec = DecodedTrace::build(trace);
        for (const char *kind : kinds) {
            for (int armed = 0; armed < 2; ++armed) {
                SCOPED_TRACE(std::string(wl) + "/" + kind +
                             (armed ? "/+both" : "/base"));
                EngineConfig ecfg;
                ecfg.useSfpf = armed != 0;
                ecfg.usePgu = armed != 0;
                expectEquivalent(runReference(trace, kind, ecfg),
                                 runFast(dec, kind, ecfg));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Equivalence across the configuration axis (the E6 grid plus the
// extension knobs): each flag combination instantiates a different
// batchLoop specialisation, and every ablation that branches inside
// the loop body gets its own cell.

std::vector<std::pair<std::string, EngineConfig>>
configGrid()
{
    std::vector<std::pair<std::string, EngineConfig>> grid;
    EngineConfig base;
    grid.emplace_back("base", base);

    EngineConfig sfpf;
    sfpf.useSfpf = true;
    grid.emplace_back("+sfpf", sfpf);

    EngineConfig pgu;
    pgu.usePgu = true;
    grid.emplace_back("+pgu", pgu);

    EngineConfig both;
    both.useSfpf = true;
    both.usePgu = true;
    grid.emplace_back("+both", both);

    EngineConfig spec = sfpf;
    spec.useSpeculativeSquash = true;
    grid.emplace_back("+sfpf+spec", spec);

    EngineConfig spec_jrs = spec;
    spec_jrs.specGate = EngineConfig::SpecGate::Jrs;
    grid.emplace_back("+sfpf+spec-jrs", spec_jrs);

    EngineConfig all = both;
    all.useSpeculativeSquash = true;
    grid.emplace_back("+both+spec", all);

    EngineConfig train = both;
    train.trainOnSquashed = true;
    grid.emplace_back("+both+trainOnSquashed", train);

    EngineConfig conservative = both;
    conservative.conservativeDefTracking = true;
    grid.emplace_back("+both+conservative", conservative);

    EngineConfig pgu_region = both;
    pgu_region.pgu.source = PguSource::RegionCmps;
    grid.emplace_back("+both+regionCmps", pgu_region);

    EngineConfig pgu_writes = both;
    pgu_writes.pgu.value = PguValue::BothWrites;
    pgu_writes.pgu.includePSet = true;
    grid.emplace_back("+both+bothWrites+pset", pgu_writes);

    EngineConfig no_profile = both;
    no_profile.branchProfileCapacity = 0;
    grid.emplace_back("+both+noProfile", no_profile);
    return grid;
}

TEST(FastReplayEquivalence, EveryEngineConfig)
{
    for (const char *wl : {"bsort", "interp", "dchain", "filter",
                           "histogram"}) {
        RecordedTrace trace = recordWorkload(wl, 40000);
        DecodedTrace dec = DecodedTrace::build(trace);
        for (const auto &[name, ecfg] : configGrid()) {
            SCOPED_TRACE(std::string(wl) + "/" + name);
            expectEquivalent(runReference(trace, "gshare", ecfg),
                             runFast(dec, "gshare", ecfg));
        }
    }
}

// The history-carrying predictors with their own injectHistoryBits
// fast paths (perceptron's SIMD dot/train, yags' tagged tables through
// the generic fallback, tage's folded-history re-fold on its
// devirtualised arm) get the full predicate-config axis, not just
// the base/+both corners of EveryPredictorKind: each config arms a
// different slice of the schedule-cache machinery.

TEST(FastReplayEquivalence, PerceptronAndYagsAcrossConfigs)
{
    struct Cell
    {
        const char *name;
        bool sfpf;
        bool pgu;
    };
    static const Cell cells[] = {{"base", false, false},
                                 {"+sfpf", true, false},
                                 {"+pgu", false, true},
                                 {"+both", true, true}};

    for (const char *wl : {"interp", "fsm"}) {
        RecordedTrace trace = recordWorkload(wl, 40000);
        DecodedTrace dec = DecodedTrace::build(trace);
        for (const char *kind : {"perceptron", "yags", "comb",
                                 "tage"}) {
            for (const Cell &cell : cells) {
                SCOPED_TRACE(std::string(wl) + "/" + kind + "/" +
                             cell.name);
                EngineConfig ecfg;
                ecfg.useSfpf = cell.sfpf;
                ecfg.usePgu = cell.pgu;
                expectEquivalent(runReference(trace, kind, ecfg),
                                 runFast(dec, kind, ecfg));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Target modelling: with EngineConfig::modelTargets armed, the BTB
// and RAS counters must be byte-identical between the reference and
// batched loops. This pins the Btb::lookup side-effect policy
// (bpred/btb.hh): exactly one counting lookup() plus one silent
// update() per taken transfer, in BOTH loops - an extra probe or a
// skipped update in either would desynchronise hits/misses (and LRU
// recency, hence future targets) between replay strategies.

TEST(FastReplayEquivalence, TargetStructureCountersMatchReference)
{
    for (const char *wl : {"interp", "bsort", "fsm"}) {
        SCOPED_TRACE(wl);
        RecordedTrace trace = recordWorkload(wl, 40000);
        DecodedTrace dec = DecodedTrace::build(trace);
        EngineConfig ecfg;
        ecfg.useSfpf = true;
        ecfg.usePgu = true;
        ecfg.modelTargets = true;

        PredictorPtr predA = makePredictor("gshare", 12);
        PredictionEngine ref(*predA, ecfg);
        replayTrace(trace, ref, trace.size());

        PredictorPtr predB = makePredictor("gshare", 12);
        PredictionEngine fast(*predB, ecfg);
        fast.processBatch(dec, 0, dec.size());

        EXPECT_EQ(ref.stats(), fast.stats());
        ASSERT_NE(ref.btb(), nullptr);
        ASSERT_NE(fast.btb(), nullptr);
        EXPECT_EQ(ref.btb()->hits(), fast.btb()->hits());
        EXPECT_EQ(ref.btb()->misses(), fast.btb()->misses());
        EXPECT_EQ(ref.ras()->pushes(), fast.ras()->pushes());
        EXPECT_EQ(ref.ras()->pops(), fast.ras()->pops());
        EXPECT_EQ(ref.ras()->overflows(), fast.ras()->overflows());
        EXPECT_EQ(ref.ras()->underflows(), fast.ras()->underflows());
        // Vacuity guard: the policy is only pinned if the BTB was
        // actually probed.
        EXPECT_GT(ref.btb()->hits() + ref.btb()->misses(), 0u);
    }
}

// ---------------------------------------------------------------------
// Replay-schedule cache: the first fast replay of a (range, config,
// entry state) runs the define kernel and records a schedule on the
// trace; every later identical replay takes the hit path (cached
// guards, word-at-a-time PGU drain, restored predicate-file exit
// state). Both paths must be bit-identical to the reference loop -
// and to each other - or the sweep use case (one trace, many
// predictors) silently simulates two different machines.

TEST(FastReplayEquivalence, ScheduleCacheHitMatchesReference)
{
    for (const char *wl : {"interp", "fsm", "listwalk"}) {
        RecordedTrace trace = recordWorkload(wl, 40000);
        DecodedTrace dec = DecodedTrace::build(trace);
        for (const auto &[name, ecfg] : configGrid()) {
            SCOPED_TRACE(std::string(wl) + "/" + name);
            const ReplayOutcome ref =
                runReference(trace, "gshare", ecfg);
            const ReplayOutcome miss = runFast(dec, "gshare", ecfg);
            const ReplayOutcome hit = runFast(dec, "gshare", ecfg);
            expectEquivalent(ref, miss);
            expectEquivalent(ref, hit);
            // A different predictor kind must reuse the same schedule
            // (it is predictor-independent) and still match ITS
            // reference.
            expectEquivalent(runReference(trace, "perceptron", ecfg),
                             runFast(dec, "perceptron", ecfg));
        }
    }
}

TEST(FastReplayEquivalence, ChunkedScheduleCacheHitMatches)
{
    // Chunked replay captures one schedule per chunk (keyed on the
    // carried predicate state); a second chunked pass hits every one.
    RecordedTrace trace = recordWorkload("interp", 40000);
    DecodedTrace dec = DecodedTrace::build(trace);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.usePgu = true;

    const ReplayOutcome oneshot = runFast(dec, "gshare", ecfg);
    for (int pass = 0; pass < 2; ++pass) {
        PredictorPtr pred = makePredictor("gshare", 12);
        PredictionEngine engine(*pred, ecfg);
        std::uint64_t cursor = 0;
        while (cursor < dec.size())
            cursor = engine.processBatch(dec, cursor, 7777);
        SCOPED_TRACE(pass == 0 ? "capture pass" : "hit pass");
        EXPECT_EQ(engine.stats(), oneshot.stats);
        EXPECT_EQ(engine.branchProfile(), oneshot.profile);
        EXPECT_EQ(engine.pguBitsInserted(), oneshot.pguBits);
    }
}

// ---------------------------------------------------------------------
// Decoded-trace files: a mapped trace must behave byte-for-byte like
// the in-memory build it was saved from, and damage must surface as
// TYPED errors, never as a crash or a silently different replay.

TEST(DecodedTraceFile, MmapMatchesInMemory)
{
    RecordedTrace trace = recordWorkload("filter", 30000);
    DecodedTrace dec = DecodedTrace::build(trace);
    const std::string path = tempPath("decoded.pabpdtf");
    ASSERT_TRUE(saveDecodedTraceFile(dec, path).ok());

    Expected<DecodedTrace> mapped = mapDecodedTraceFile(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().toString();
    const DecodedTrace &mm = mapped.value();

    // Lane bytes, not just semantics.
    ASSERT_EQ(mm.size(), dec.size());
    const std::size_t n = dec.size();
    EXPECT_EQ(std::memcmp(mm.pcs, dec.pcs, n * 4), 0);
    EXPECT_EQ(std::memcmp(mm.nextPcs, dec.nextPcs, n * 4), 0);
    EXPECT_EQ(std::memcmp(mm.cls, dec.cls, n), 0);
    EXPECT_EQ(std::memcmp(mm.flags, dec.flags, n), 0);
    EXPECT_EQ(std::memcmp(mm.predReg0, dec.predReg0, n), 0);
    EXPECT_EQ(std::memcmp(mm.predReg1, dec.predReg1, n), 0);
    EXPECT_EQ(std::memcmp(mm.predVal, dec.predVal, n), 0);

    // And the replay over the mapping matches the reference loop,
    // miss and schedule-cache hit alike.
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.usePgu = true;
    const ReplayOutcome ref = runReference(trace, "gshare", ecfg);
    expectEquivalent(ref, runFast(mm, "gshare", ecfg));
    expectEquivalent(ref, runFast(mm, "gshare", ecfg));
    std::remove(path.c_str());
}

TEST(DecodedTraceFile, TruncationIsTyped)
{
    RecordedTrace trace = recordWorkload("bsort", 8000);
    DecodedTrace dec = DecodedTrace::build(trace);
    const std::string path = tempPath("trunc.pabpdtf");
    ASSERT_TRUE(saveDecodedTraceFile(dec, path).ok());
    const std::string bytes = readFile(path);

    // Torn anywhere - inside the header, the program section, or the
    // lane region - the mapping must come back Truncated.
    for (const std::size_t keep :
         {std::size_t{10}, std::size_t{100}, bytes.size() - 1}) {
        SCOPED_TRACE("keep=" + std::to_string(keep));
        ASSERT_LT(keep, bytes.size());
        {
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            out.write(bytes.data(),
                      static_cast<std::streamsize>(keep));
        }
        Expected<DecodedTrace> mapped = mapDecodedTraceFile(path);
        ASSERT_FALSE(mapped.ok());
        EXPECT_EQ(mapped.status().code(), StatusCode::Truncated);
    }
    std::remove(path.c_str());
}

TEST(DecodedTraceFile, CorruptionIsTyped)
{
    RecordedTrace trace = recordWorkload("bsort", 8000);
    DecodedTrace dec = DecodedTrace::build(trace);
    const std::string path = tempPath("corrupt.pabpdtf");
    ASSERT_TRUE(saveDecodedTraceFile(dec, path).ok());
    const std::string bytes = readFile(path);

    auto mapWithFlip = [&](std::size_t at) {
        std::string copy = bytes;
        copy[at] = static_cast<char>(copy[at] ^ 0x40);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(copy.data(),
                  static_cast<std::streamsize>(copy.size()));
        out.close();
        return mapDecodedTraceFile(path);
    };

    {
        // Magic damage: not our file at all.
        Expected<DecodedTrace> mapped = mapWithFlip(2);
        ASSERT_FALSE(mapped.ok());
        EXPECT_EQ(mapped.status().code(), StatusCode::BadMagic);
    }
    {
        // Header field damage: the header CRC catches it.
        Expected<DecodedTrace> mapped = mapWithFlip(14);
        ASSERT_FALSE(mapped.ok());
        EXPECT_EQ(mapped.status().code(),
                  StatusCode::ChecksumMismatch);
    }
    {
        // Lane damage: the (default-on) lane CRC catches it.
        Expected<DecodedTrace> mapped = mapWithFlip(bytes.size() - 1);
        ASSERT_FALSE(mapped.ok());
        EXPECT_EQ(mapped.status().code(),
                  StatusCode::ChecksumMismatch);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Cursor contracts.

TEST(FastReplayEquivalence, ChunkedBatchesMatchOneShot)
{
    RecordedTrace trace = recordWorkload("interp", 40000);
    DecodedTrace dec = DecodedTrace::build(trace);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.usePgu = true;

    ReplayOutcome oneshot = runFast(dec, "gshare", ecfg);

    // Deliberately awkward chunk size: chunks end mid-define-window,
    // so the deferred advance/drain sync at each batch boundary is
    // what keeps the state machines aligned.
    PredictorPtr pred = makePredictor("gshare", 12);
    PredictionEngine engine(*pred, ecfg);
    std::uint64_t cursor = 0;
    while (cursor < dec.size())
        cursor = engine.processBatch(dec, cursor, 7777);
    EXPECT_EQ(cursor, dec.size());
    EXPECT_EQ(engine.stats(), oneshot.stats);
    EXPECT_EQ(engine.branchProfile(), oneshot.profile);
    EXPECT_EQ(engine.pguBitsInserted(), oneshot.pguBits);
}

TEST(FastReplayEquivalence, ProcessBatchClampsPastTheEnd)
{
    RecordedTrace trace = recordWorkload("bsort", 5000);
    DecodedTrace dec = DecodedTrace::build(trace);
    PredictorPtr pred = makePredictor("gshare", 12);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    PredictionEngine engine(*pred, ecfg);

    engine.processBatch(dec, 0, dec.size());
    const EngineStats done = engine.stats();

    // At the end and past it: nothing processed, cursor returned
    // UNCHANGED (not yanked back to size()), no counter moves.
    EXPECT_EQ(engine.processBatch(dec, dec.size(), 100), dec.size());
    EXPECT_EQ(engine.processBatch(dec, dec.size() + 7, 100),
              dec.size() + 7);
    EXPECT_EQ(engine.stats(), done);
}

TEST(FastReplayEquivalence, ReplayTraceFromClampsPastTheEnd)
{
    // Regression for the resume-cursor clamp bug: replayTraceFrom
    // with first PAST the end used to misbehave instead of returning
    // the cursor unchanged - a resume positioned past a shorter trace
    // would silently re-run events.
    RecordedTrace trace = recordWorkload("bsort", 5000);
    PredictorPtr pred = makePredictor("gshare", 12);
    EngineConfig ecfg;
    PredictionEngine engine(*pred, ecfg);

    replayTrace(trace, engine, trace.size());
    const EngineStats done = engine.stats();

    EXPECT_EQ(replayTraceFrom(trace, engine, trace.size(), 100),
              trace.size());
    EXPECT_EQ(replayTraceFrom(trace, engine, trace.size() + 9, 100),
              trace.size() + 9);
    EXPECT_EQ(engine.stats(), done)
        << "a clamped replay must not process any event";
}

// ---------------------------------------------------------------------
// ProcessResult flag separation: a speculative squash is a GUESS and
// is never folded into the certain SFPF `squashed` flag.

TEST(ProcessResultFlags, SpecSquashedIsDistinctFromSquashed)
{
    RecordedTrace trace = recordWorkload("interp", 60000);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.useSpeculativeSquash = true;
    PredictorPtr pred = makePredictor("gshare", 12);
    PredictionEngine engine(*pred, ecfg);

    std::uint64_t squashed = 0, spec = 0, spec_mispredicts = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ProcessResult r = engine.process(trace.materialise(i));
        if (r.squashed || r.specSquashed) {
            EXPECT_TRUE(r.condBranch);
        }
        // Mutually exclusive by construction: the certain filter wins
        // and the speculative path only considers unresolved guards.
        EXPECT_FALSE(r.squashed && r.specSquashed) << i;
        if (r.squashed) {
            ++squashed;
            // Resolved-false guard: architecturally not-taken, so a
            // squash is never a mispredict.
            EXPECT_FALSE(r.mispredicted) << i;
        }
        if (r.specSquashed) {
            ++spec;
            spec_mispredicts += r.mispredicted;
        }
    }

    ASSERT_GT(squashed, 0u);
    ASSERT_GT(spec, 0u) << "config must actually exercise the "
                           "speculative path";
    EXPECT_EQ(squashed, engine.stats().all.squashed);
    EXPECT_EQ(spec, engine.stats().specSquashed);
    // The per-result flag is the only honest way to see speculative
    // wrongness at the pipeline interface; the aggregate agrees.
    EXPECT_EQ(spec_mispredicts, engine.stats().specSquashedWrong);
}

// ---------------------------------------------------------------------
// Sweep integration: the fast path is an execution strategy, not a
// configuration - identical fingerprints, identical metric BYTES.

std::vector<RunSpec>
sweepGrid(const std::string &dir, bool fast)
{
    std::vector<RunSpec> specs;
    for (const char *name : {"bsort", "interp", "dchain"}) {
        for (int armed = 0; armed < 2; ++armed) {
            RunSpec spec;
            spec.workload = name;
            spec.engine.useSfpf = armed != 0;
            spec.engine.usePgu = armed != 0;
            spec.maxInsts = 15000;
            spec.metricsDir = dir;
            spec.fastReplay = fast;
            specs.push_back(spec);
        }
    }
    return specs;
}

TEST(SweepFastReplay, MetricsFilesAreByteIdenticalToReference)
{
    const std::string fast_dir = tempPath("fast");
    const std::string ref_dir = tempPath("ref");
    std::vector<RunSpec> fast = sweepGrid(fast_dir, true);
    std::vector<RunSpec> ref = sweepGrid(ref_dir, false);

    SweepRunner fast_runner(SweepRunner::Config{1, 0});
    SweepRunner ref_runner(SweepRunner::Config{1, 0});
    std::vector<RunResult> fast_results = fast_runner.run(fast);
    std::vector<RunResult> ref_results = ref_runner.run(ref);

    for (std::size_t i = 0; i < fast.size(); ++i) {
        SCOPED_TRACE(fast[i].workload + "#" + std::to_string(i));
        ASSERT_TRUE(fast_results[i].status.ok())
            << fast_results[i].status.toString();
        ASSERT_TRUE(ref_results[i].status.ok())
            << ref_results[i].status.toString();
        EXPECT_EQ(fast_results[i].engine, ref_results[i].engine);
        EXPECT_EQ(fast_results[i].profile, ref_results[i].profile);
        EXPECT_EQ(fast_results[i].pguBits, ref_results[i].pguBits);

        // fastReplay is NOT a behaviour-defining field: both cells
        // share one fingerprint, hence one metrics filename, and the
        // exported bytes match exactly.
        const std::uint64_t fp = bench::specFingerprint(fast[i]);
        ASSERT_EQ(fp, bench::specFingerprint(ref[i]));
        const std::string fast_file =
            bench::metricsFilePath(fast_dir, fp);
        const std::string ref_file =
            bench::metricsFilePath(ref_dir, fp);
        EXPECT_EQ(readFile(fast_file), readFile(ref_file));
        std::remove(fast_file.c_str());
        std::remove(ref_file.c_str());
    }

    // The fast grid decodes each workload's trace once and shares it
    // across both configs; the reference grid never touches the
    // decoded-trace cache.
    EXPECT_EQ(fast_runner.cacheStats().records, 3u);
    EXPECT_EQ(fast_runner.cacheStats().traceHits, 3u);
    EXPECT_EQ(ref_runner.cacheStats().records, 0u);
    EXPECT_EQ(ref_runner.cacheStats().traceHits, 0u);
}

} // namespace
} // namespace pabp
