/**
 * @file
 * Assembler tests: every instruction form, labels, guards, errors,
 * and the disassemble->assemble round-trip property over compiled
 * workloads (the two tools must agree on the whole ISA surface).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/assembler.hh"
#include "sim/emulator.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

Program
mustAssemble(const std::string &source)
{
    Expected<Program> result = assembleProgram(source);
    EXPECT_TRUE(result.ok()) << result.status().toString();
    return result.ok() ? result.value() : Program{};
}

TEST(Assembler, AluForms)
{
    Program p = mustAssemble(
        "add r1 = r2, r3\n"
        "sub r4 = r5, -7\n"
        "(p3) mul r6 = r7, r8\n");
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.insts[0].op, Opcode::Add);
    EXPECT_EQ(p.insts[0].dst, 1);
    EXPECT_TRUE(p.insts[1].hasImm);
    EXPECT_EQ(p.insts[1].imm, -7);
    EXPECT_EQ(p.insts[2].qp, 3);
}

TEST(Assembler, MovForms)
{
    Program p = mustAssemble("mov r1 = 42\nmov r2 = r1\n");
    EXPECT_TRUE(p.insts[0].hasImm);
    EXPECT_EQ(p.insts[0].imm, 42);
    EXPECT_FALSE(p.insts[1].hasImm);
    EXPECT_EQ(p.insts[1].src1, 1);
}

TEST(Assembler, CmpForms)
{
    Program p = mustAssemble(
        "cmp.eq p1, p2 = r3, r4\n"
        "cmp.lt.unc p5, p6 = r7, 9\n"
        "(p2) cmp.geu.or.andcm p8, p9 = r10, r11\n");
    EXPECT_EQ(p.insts[0].ctype, CmpType::Normal);
    EXPECT_EQ(p.insts[1].ctype, CmpType::Unc);
    EXPECT_EQ(p.insts[1].crel, CmpRel::Lt);
    EXPECT_TRUE(p.insts[1].hasImm);
    EXPECT_EQ(p.insts[2].ctype, CmpType::OrAndcm);
    EXPECT_EQ(p.insts[2].crel, CmpRel::Geu);
    EXPECT_EQ(p.insts[2].qp, 2);
}

TEST(Assembler, MemoryForms)
{
    Program p = mustAssemble(
        "ld r1 = [r2 + -4]\n"
        "ld r3 = [r4]\n"
        "st [r5 + 8] = r6\n"
        "(p7) st [r8] = r9\n");
    EXPECT_EQ(p.insts[0].imm, -4);
    EXPECT_EQ(p.insts[1].imm, 0);
    EXPECT_EQ(p.insts[2].op, Opcode::Store);
    EXPECT_EQ(p.insts[3].qp, 7);
}

TEST(Assembler, LabelsForwardAndBackward)
{
    Program p = mustAssemble(
        "start:\n"
        "  mov r1 = 1\n"
        "  (p1) br done\n"
        "  br start\n"
        "done: halt\n");
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.insts[1].target, 3u);
    EXPECT_EQ(p.insts[2].target, 0u);
}

TEST(Assembler, NumericTargets)
{
    Program p = mustAssemble("br 2\nnop\nhalt\n");
    EXPECT_EQ(p.insts[0].target, 2u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = mustAssemble(
        "; a comment\n"
        "\n"
        "  mov r1 = 5 ; trailing comment\n"
        "halt\n");
    ASSERT_EQ(p.size(), 2u);
}

TEST(Assembler, ErrorsAreReportedWithLineNumbers)
{
    Expected<Program> bad = assembleProgram("bogus r1 = r2\n");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::ParseError);
    EXPECT_NE(bad.status().message().find("line 1"),
              std::string::npos);
    EXPECT_FALSE(assembleProgram("mov r99 = 1\n").ok());
    EXPECT_FALSE(assembleProgram("add r1 = r2\n").ok());   // missing src2
    EXPECT_FALSE(assembleProgram("br nowhere\nhalt\n").ok());
    EXPECT_FALSE(assembleProgram("x: nop\nx: nop\n").ok()); // dup label
    EXPECT_FALSE(assembleProgram("mov r1 = 1 garbage\n").ok());
}

TEST(Assembler, AssembledProgramRuns)
{
    Program p = mustAssemble(
        "  mov r1 = 10\n"
        "  mov r2 = 0\n"
        "loop:\n"
        "  cmp.gt.unc p1, p2 = r1, 0\n"
        "  (p2) br done\n"
        "  add r2 = r2, r1\n"
        "  sub r1 = r1, 1\n"
        "  br loop\n"
        "done: halt\n");
    ASSERT_EQ(validateProgram(p), "");
    Emulator emu(p, EmuConfig{1 << 10, 10000});
    emu.run(10000);
    EXPECT_TRUE(emu.state().halted);
    EXPECT_EQ(emu.state().readGpr(2), 55); // sum 1..10
}

/** Strip "N:\t" PC prefixes and region annotations from a listing. */
std::string
listingToSource(const std::string &listing)
{
    std::istringstream in(listing);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        auto colon = line.find(":\t");
        if (colon != std::string::npos)
            line = line.substr(colon + 2);
        out << line << "\n";
    }
    return out.str();
}

class AsmRoundTrip : public ::testing::TestWithParam<std::string>
{};

TEST_P(AsmRoundTrip, DisassembleAssembleIsIdentity)
{
    // Both compilation modes exercise the full instruction surface.
    for (bool if_convert : {false, true}) {
        Workload wl = makeWorkload(GetParam(), 7);
        CompileOptions copts;
        copts.ifConvert = if_convert;
        CompiledProgram cp = compileWorkload(wl, copts);

        Expected<Program> back =
            assembleProgram(listingToSource(cp.prog.disassembleAll()));
        ASSERT_TRUE(back.ok()) << back.status().toString();
        ASSERT_EQ(back.value().size(), cp.prog.size());
        for (std::size_t pc = 0; pc < cp.prog.size(); ++pc) {
            // Compare semantic encodings (metadata is not part of
            // the textual syntax beyond comments).
            Inst expect = cp.prog.insts[pc];
            expect.regionId = -1;
            expect.regionBranch = false;
            Inst got = back.value().insts[pc];
            got.regionBranch = false;
            EXPECT_EQ(encode(got), encode(expect))
                << GetParam() << " pc " << pc << ": "
                << disassemble(cp.prog.insts[pc]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, AsmRoundTrip,
                         ::testing::ValuesIn(workloadNames()));

} // namespace
} // namespace pabp
