/**
 * @file
 * Workload-suite tests: every member verifies, halts, is
 * deterministic, and exhibits the structural properties the
 * experiments rely on (regions form, region branches exist where
 * expected, predicate defines flow).
 */

#include <gtest/gtest.h>

#include "sim/emulator.hh"
#include "workloads/random_gen.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

class EveryWorkload : public ::testing::TestWithParam<std::string>
{};

TEST_P(EveryWorkload, VerifiesAndHalts)
{
    Workload wl = makeWorkload(GetParam(), 17);
    EXPECT_EQ(verifyFunction(wl.fn), "");

    CompileOptions copts;
    copts.ifConvert = false;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog, EmuConfig{1 << 20, 40'000'000});
    if (wl.init)
        wl.init(emu.state());
    emu.run(40'000'000);
    EXPECT_TRUE(emu.state().halted) << GetParam();
    EXPECT_FALSE(emu.fuseBlown()) << GetParam();
    // Run length should be meaningful but bounded.
    EXPECT_GT(emu.instsExecuted(), 100'000u) << GetParam();
    EXPECT_LT(emu.instsExecuted(), 30'000'000u) << GetParam();
}

TEST_P(EveryWorkload, FormsRegionsWhenIfConverted)
{
    Workload wl = makeWorkload(GetParam(), 17);
    CompileOptions copts;
    copts.ifConvert = true;
    CompiledProgram cp = compileWorkload(wl, copts);
    EXPECT_GE(cp.info.numRegions, 1u) << GetParam();
    EXPECT_GE(cp.info.numIfConvertedBranches, 1u) << GetParam();
}

TEST_P(EveryWorkload, PredicatedRunExecutesPredicateDefines)
{
    Workload wl = makeWorkload(GetParam(), 17);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    DynInst dyn;
    std::uint64_t defines = 0, guarded_false = 0;
    for (std::uint64_t i = 0; i < 200'000 && emu.step(dyn); ++i) {
        defines += dyn.inst->writesPredicate();
        guarded_false += !dyn.guard;
    }
    EXPECT_GT(defines, 0u) << GetParam();
    EXPECT_GT(guarded_false, 0u) << GetParam();
}

TEST_P(EveryWorkload, DeterministicAcrossRebuilds)
{
    Workload w1 = makeWorkload(GetParam(), 55);
    Workload w2 = makeWorkload(GetParam(), 55);
    CompileOptions copts;
    CompiledProgram p1 = compileWorkload(w1, copts);
    CompiledProgram p2 = compileWorkload(w2, copts);
    ASSERT_EQ(p1.prog.size(), p2.prog.size()) << GetParam();
    for (std::size_t i = 0; i < p1.prog.size(); ++i) {
        EXPECT_EQ(encode(p1.prog.insts[i]).word0,
                  encode(p2.prog.insts[i]).word0)
            << GetParam() << " pc " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, EveryWorkload,
                         ::testing::ValuesIn(workloadNames()));

TEST(WorkloadSuite, AllWorkloadsReturnsCanonicalOrder)
{
    auto suite = allWorkloads(1);
    auto names = workloadNames();
    ASSERT_EQ(suite.size(), names.size());
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].name, names[i]);
}

TEST(WorkloadSuite, RegionBranchesExistInKeyWorkloads)
{
    for (const char *name : {"histogram", "filter", "dchain", "interp"}) {
        Workload wl = makeWorkload(name, 17);
        CompileOptions copts;
        CompiledProgram cp = compileWorkload(wl, copts);
        EXPECT_GE(cp.info.numRegionBranches, 1u) << name;
    }
}

TEST(BiasWorkload, BranchFollowsRequestedBias)
{
    for (double bias : {0.1, 0.5, 0.9}) {
        Workload wl = makeBiasWorkload(bias, 7);
        CompileOptions copts;
        copts.ifConvert = false;
        CompiledProgram cp = compileWorkload(wl, copts);
        Emulator emu(cp.prog);
        wl.init(emu.state());
        DynInst dyn;
        std::uint64_t taken = 0, total = 0;
        // The diamond branch is the one comparing r4 == 1.
        for (std::uint64_t i = 0; i < 400'000 && emu.step(dyn); ++i) {
            if (dyn.inst->isConditionalBranch()) {
                // Identify via the preceding cmp against imm 1.
                const Inst &prev =
                    cp.prog.insts[dyn.pc ? dyn.pc - 1 : 0];
                if (prev.op == Opcode::Cmp && prev.hasImm &&
                    prev.imm == 1) {
                    taken += dyn.taken;
                    ++total;
                }
            }
        }
        ASSERT_GT(total, 1000u);
        EXPECT_NEAR(static_cast<double>(taken) / total, bias, 0.03);
    }
}

TEST(CorrWorkload, DistanceControlsRegionShape)
{
    Workload wl = makeCorrWorkload(16, 3);
    EXPECT_EQ(verifyFunction(wl.fn), "");
    CompileOptions copts;
    copts.heuristics = corrWorkloadHeuristics();
    CompiledProgram cp = compileWorkload(wl, copts);
    EXPECT_GE(cp.info.numRegions, 1u);
    EXPECT_GE(cp.info.numRegionBranches, 1u);
    // The handler must be a side-exit target, not a region member:
    // the region-based branch's guard is the rare arm's predicate.
    bool jump_exit_found = false;
    for (const Inst &inst : cp.prog.insts)
        if (inst.regionBranch)
            jump_exit_found = true;
    EXPECT_TRUE(jump_exit_found);
}

TEST(RandomWorkload, DeterministicForSeed)
{
    Workload a = makeRandomWorkload(9);
    Workload b = makeRandomWorkload(9);
    ASSERT_EQ(a.fn.blocks.size(), b.fn.blocks.size());
    EXPECT_EQ(a.fn.dump(), b.fn.dump());
}

TEST(RandomWorkload, DifferentSeedsDiffer)
{
    Workload a = makeRandomWorkload(9);
    Workload b = makeRandomWorkload(10);
    EXPECT_NE(a.fn.dump(), b.fn.dump());
}

TEST(RandomWorkload, AlwaysHalts)
{
    for (std::uint64_t seed = 400; seed < 420; ++seed) {
        Workload wl = makeRandomWorkload(seed);
        ASSERT_EQ(verifyFunction(wl.fn), "") << seed;
        CompileOptions copts;
        copts.ifConvert = false;
        CompiledProgram cp = compileWorkload(wl, copts);
        Emulator emu(cp.prog, EmuConfig{1 << 16, 10'000'000});
        wl.init(emu.state());
        emu.run(10'000'000);
        EXPECT_TRUE(emu.state().halted) << seed;
    }
}

} // namespace
} // namespace pabp
