/**
 * @file
 * Cache model and pipeline timing tests: hit/miss behaviour, LRU,
 * deterministic cycle counts, and the qualitative timing laws the
 * speedup experiment depends on (penalty hurts, predictors help).
 */

#include <gtest/gtest.h>

#include "bpred/factory.hh"
#include "mem/cache.hh"
#include "pipeline/pipeline.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

TEST(Cache, ColdMissThenHit)
{
    Cache c(CacheConfig{4, 2, 2});
    EXPECT_FALSE(c.access(100));
    EXPECT_TRUE(c.access(100));
    EXPECT_TRUE(c.access(101)); // same line (4 words/line)
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LineGranularity)
{
    Cache c(CacheConfig{4, 2, 2});
    c.access(0);
    EXPECT_TRUE(c.access(3));   // word 3, same 4-word line
    EXPECT_FALSE(c.access(4));  // next line
}

TEST(Cache, LruEviction)
{
    // One set (sets_log2=0), 2 ways, 1-word lines.
    Cache c(CacheConfig{0, 2, 0});
    c.access(1);
    c.access(2);
    c.access(1);       // 1 most recent
    c.access(3);       // evicts 2
    EXPECT_TRUE(c.access(1));
    EXPECT_FALSE(c.access(2));
}

TEST(Cache, CapacityAndMissRate)
{
    Cache c(CacheConfig{2, 2, 1});
    EXPECT_EQ(c.capacityWords(), 4u * 2 * 2);
    c.access(0);
    c.access(0);
    c.access(0);
    c.access(0);
    EXPECT_NEAR(c.missRate(), 0.25, 1e-9);
}

TEST(Cache, SequentialStreamMostlyHits)
{
    Cache c(CacheConfig{7, 4, 3}); // 8-word lines
    for (std::uint64_t a = 0; a < 1024; ++a)
        c.access(a);
    // 1 miss per 8-word line.
    EXPECT_EQ(c.misses(), 128u);
}

/** Run a workload through the pipeline with a given config. */
PipelineStats
runPipeline(const std::string &workload, bool if_convert,
            EngineConfig ecfg, PipelineConfig pcfg,
            std::uint64_t steps = 400000)
{
    Workload wl = makeWorkload(workload, 31);
    CompileOptions copts;
    copts.ifConvert = if_convert;
    CompiledProgram cp = compileWorkload(wl, copts);
    PredictorPtr pred = makePredictor("gshare", 12);
    ecfg.modelTargets = true; // the timing model requires the engine's BTB/RAS
    PredictionEngine engine(*pred, ecfg);
    Pipeline pipe(engine, pcfg);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    return pipe.run(emu, steps);
}

TEST(Pipeline, Deterministic)
{
    PipelineStats a =
        runPipeline("filter", true, EngineConfig{}, PipelineConfig{});
    PipelineStats b =
        runPipeline("filter", true, EngineConfig{}, PipelineConfig{});
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
}

TEST(Pipeline, IpcWithinPhysicalBounds)
{
    PipelineConfig pcfg;
    PipelineStats stats =
        runPipeline("histogram", true, EngineConfig{}, pcfg);
    EXPECT_GT(stats.ipc(), 0.1);
    EXPECT_LE(stats.ipc(), pcfg.issueWidth);
}

TEST(Pipeline, HigherMispredictPenaltyCostsCycles)
{
    PipelineConfig cheap, costly;
    cheap.mispredictPenalty = 2;
    costly.mispredictPenalty = 30;
    PipelineStats a = runPipeline("bsearch", false, EngineConfig{},
                                  cheap);
    PipelineStats b = runPipeline("bsearch", false, EngineConfig{},
                                  costly);
    EXPECT_GT(b.cycles, a.cycles);
}

TEST(Pipeline, BetterPredictorImprovesIpc)
{
    // static-nottaken vs gshare on a loop-heavy workload.
    Workload wl1 = makeWorkload("bsearch", 31);
    Workload wl2 = makeWorkload("bsearch", 31);
    CompileOptions copts;
    copts.ifConvert = false;
    CompiledProgram c1 = compileWorkload(wl1, copts);
    CompiledProgram c2 = compileWorkload(wl2, copts);

    PredictorPtr bad = makePredictor("static-nottaken", 1);
    PredictorPtr good = makePredictor("gshare", 12);
    EngineConfig ecfg;
    ecfg.modelTargets = true;
    PredictionEngine e1(*bad, ecfg);
    PredictionEngine e2(*good, ecfg);
    PipelineConfig pcfg;
    Pipeline p1(e1, pcfg), p2(e2, pcfg);
    Emulator m1(c1.prog), m2(c2.prog);
    PipelineStats s1 = p1.run(m1, 300000);
    PipelineStats s2 = p2.run(m2, 300000);
    EXPECT_GT(s2.ipc(), s1.ipc());
}

TEST(Pipeline, WiderIssueNeverSlower)
{
    PipelineConfig narrow, wide;
    narrow.issueWidth = 1;
    wide.issueWidth = 8;
    PipelineStats a =
        runPipeline("matrix", true, EngineConfig{}, narrow);
    PipelineStats b = runPipeline("matrix", true, EngineConfig{}, wide);
    EXPECT_GE(a.cycles, b.cycles);
}

TEST(Pipeline, CacheActivityRecorded)
{
    PipelineStats stats =
        runPipeline("listwalk", true, EngineConfig{}, PipelineConfig{});
    EXPECT_GT(stats.dcacheMisses, 0u);
}

TEST(Pipeline, L2AbsorbsMostL1Misses)
{
    PipelineConfig pcfg;
    pcfg.enableL2 = true;
    PipelineStats stats =
        runPipeline("listwalk", true, EngineConfig{}, pcfg);
    EXPECT_GT(stats.dcacheMisses, 0u);
    // A 32 KiB-class working set largely fits the L2.
    EXPECT_LT(stats.l2Misses, stats.dcacheMisses);
}

TEST(Pipeline, L2OffByDefaultAndNeutral)
{
    PipelineConfig off;
    PipelineStats base =
        runPipeline("listwalk", true, EngineConfig{}, off);
    EXPECT_EQ(base.l2Misses, 0u);

    // With L2 enabled, misses past the L2 can only add cycles
    // relative to the flat L1-miss model (same L1 latencies).
    PipelineConfig on;
    on.enableL2 = true;
    PipelineStats with = runPipeline("listwalk", true, EngineConfig{},
                                     on);
    EXPECT_GE(with.cycles, base.cycles);
}

TEST(Pipeline, MispredictStallsTracked)
{
    PipelineStats stats =
        runPipeline("bsearch", false, EngineConfig{}, PipelineConfig{});
    EXPECT_GT(stats.mispredictStallCycles, 0u);
}

TEST(Pipeline, SfpfPlusPguNeverSlowerOnPredicatedCode)
{
    EngineConfig off, on;
    on.useSfpf = true;
    on.usePgu = true;
    PipelineStats base =
        runPipeline("dchain", true, off, PipelineConfig{});
    PipelineStats enhanced =
        runPipeline("dchain", true, on, PipelineConfig{});
    EXPECT_LE(enhanced.cycles, base.cycles);
}

} // namespace
} // namespace pabp
