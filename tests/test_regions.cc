/**
 * @file
 * Region-selection tests: diamond inclusion, single-entry enforcement,
 * back-edge rejection, cold exclusion, size budgets.
 */

#include <gtest/gtest.h>

#include "compiler/regions.hh"
#include "isa/program.hh"

namespace pabp {
namespace {

/** A hot diamond with profiled counts. */
IrFunction
hotDiamond()
{
    IrFunction fn;
    IrBuilder b(fn);
    BlockId entry = b.newBlock();
    BlockId then_b = b.newBlock();
    BlockId else_b = b.newBlock();
    BlockId join = b.newBlock();
    BlockId tail = b.newBlock();

    b.setBlock(entry);
    b.condBrImm(CmpRel::Lt, 1, 10, then_b, else_b);
    b.setBlock(then_b);
    b.append(makeMovImm(2, 1));
    b.jump(join);
    b.setBlock(else_b);
    b.append(makeMovImm(2, 2));
    b.jump(join);
    b.setBlock(join);
    b.jump(tail);
    b.setBlock(tail);
    b.halt();

    fn.blocks[0].execCount = 1000;
    fn.blocks[0].takenCount = 500;
    fn.blocks[1].execCount = 500;
    fn.blocks[2].execCount = 500;
    fn.blocks[3].execCount = 1000;
    fn.blocks[4].execCount = 1;
    return fn;
}

TEST(Regions, DiamondFullyIncluded)
{
    IrFunction fn = hotDiamond();
    RegionAssignment ra = selectRegions(fn, HyperblockHeuristics{});
    ASSERT_EQ(ra.regions.size(), 1u);
    const Region &r = ra.regions[0];
    EXPECT_EQ(r.seed(), 0u);
    EXPECT_TRUE(r.contains(1));
    EXPECT_TRUE(r.contains(2));
    EXPECT_TRUE(r.contains(3));
    EXPECT_FALSE(r.contains(4)); // halt-adjacent cold tail excluded
}

TEST(Regions, TopologicalInsertionOrder)
{
    IrFunction fn = hotDiamond();
    RegionAssignment ra = selectRegions(fn, HyperblockHeuristics{});
    ASSERT_EQ(ra.regions.size(), 1u);
    const Region &r = ra.regions[0];
    // Join (3) must come after both arms.
    auto pos = [&](BlockId b) {
        for (std::size_t i = 0; i < r.blocks.size(); ++i)
            if (r.blocks[i] == b)
                return i;
        return std::size_t{99};
    };
    EXPECT_LT(pos(0), pos(1));
    EXPECT_LT(pos(1), pos(3));
    EXPECT_LT(pos(2), pos(3));
}

TEST(Regions, ColdSideExcluded)
{
    IrFunction fn = hotDiamond();
    fn.blocks[2].execCount = 5; // 0.5% of seed: below ratio
    RegionAssignment ra = selectRegions(fn, HyperblockHeuristics{});
    ASSERT_EQ(ra.regions.size(), 1u);
    EXPECT_TRUE(ra.regions[0].contains(1));
    EXPECT_FALSE(ra.regions[0].contains(2));
    // Join has an out-of-region predecessor now -> excluded too.
    EXPECT_FALSE(ra.regions[0].contains(3));
}

TEST(Regions, ColdSeedNotConsidered)
{
    IrFunction fn = hotDiamond();
    for (auto &blk : fn.blocks)
        blk.execCount = 2; // below minSeedExec
    RegionAssignment ra = selectRegions(fn, HyperblockHeuristics{});
    EXPECT_TRUE(ra.regions.empty());
}

TEST(Regions, LoopBackEdgeRejected)
{
    // head -> body -> head loop; body must not join a region seeded
    // at head because its edge returns to the seed.
    IrFunction fn;
    IrBuilder b(fn);
    BlockId head = b.newBlock();
    BlockId body = b.newBlock();
    BlockId exit = b.newBlock();
    b.setBlock(head);
    b.condBrImm(CmpRel::Gt, 1, 0, body, exit);
    b.setBlock(body);
    b.append(makeAluImm(Opcode::Sub, 1, 1, 1));
    b.jump(head);
    b.setBlock(exit);
    b.halt();

    fn.blocks[0].execCount = 1000;
    fn.blocks[1].execCount = 990;
    fn.blocks[2].execCount = 10;
    RegionAssignment ra = selectRegions(fn, HyperblockHeuristics{});
    // Body can't join (back edge), exit is too cold relative to the
    // seed ratio? 10/1000 = 1% < 10%: excluded. No viable region.
    EXPECT_TRUE(ra.regions.empty());
}

TEST(Regions, EntryBlockNeverNonSeedMember)
{
    // entry jumps into a diamond whose join is... construct entry as
    // successor of a hot block: not possible in valid CFGs without a
    // back edge to block 0; the rule is enforced by candidate checks.
    IrFunction fn = hotDiamond();
    RegionAssignment ra = selectRegions(fn, HyperblockHeuristics{});
    for (const Region &r : ra.regions)
        for (std::size_t i = 1; i < r.blocks.size(); ++i)
            EXPECT_NE(r.blocks[i], 0u);
}

TEST(Regions, MaxBlocksBudgetRespected)
{
    IrFunction fn = hotDiamond();
    HyperblockHeuristics h;
    h.maxBlocks = 2;
    RegionAssignment ra = selectRegions(fn, h);
    ASSERT_EQ(ra.regions.size(), 1u);
    EXPECT_LE(ra.regions[0].blocks.size(), 2u);
}

TEST(Regions, MaxBodyInstsBudgetRespected)
{
    IrFunction fn = hotDiamond();
    for (int i = 0; i < 50; ++i)
        fn.blocks[1].body.push_back(makeMovImm(2, i));
    HyperblockHeuristics h;
    h.maxBodyInsts = 10;
    RegionAssignment ra = selectRegions(fn, h);
    if (!ra.regions.empty()) {
        EXPECT_FALSE(ra.regions[0].contains(1));
    }
}

TEST(Regions, BlocksBelongToAtMostOneRegion)
{
    // Two sequential hot diamonds.
    IrFunction fn;
    IrBuilder b(fn);
    std::vector<BlockId> ids(9);
    for (auto &id : ids)
        id = b.newBlock();
    // Diamond 1: 0 -> 1/2 -> 3; diamond 2: 3 -> 4/5 -> 6; tail 7,8.
    b.setBlock(ids[0]);
    b.condBrImm(CmpRel::Lt, 1, 5, ids[1], ids[2]);
    b.setBlock(ids[1]);
    b.append(makeMovImm(2, 1));
    b.jump(ids[3]);
    b.setBlock(ids[2]);
    b.append(makeMovImm(2, 2));
    b.jump(ids[3]);
    b.setBlock(ids[3]);
    b.condBrImm(CmpRel::Gt, 2, 1, ids[4], ids[5]);
    b.setBlock(ids[4]);
    b.append(makeMovImm(3, 1));
    b.jump(ids[6]);
    b.setBlock(ids[5]);
    b.append(makeMovImm(3, 2));
    b.jump(ids[6]);
    b.setBlock(ids[6]);
    b.jump(ids[7]);
    b.setBlock(ids[7]);
    b.jump(ids[8]);
    b.setBlock(ids[8]);
    b.halt();
    for (auto &blk : fn.blocks)
        blk.execCount = 500;

    RegionAssignment ra = selectRegions(fn, HyperblockHeuristics{});
    std::vector<int> seen(fn.blocks.size(), 0);
    for (const Region &r : ra.regions)
        for (BlockId blk : r.blocks)
            ++seen[blk];
    for (int count : seen)
        EXPECT_LE(count, 1);
    EXPECT_GE(ra.regions.size(), 1u);
}

} // namespace
} // namespace pabp
