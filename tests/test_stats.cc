/**
 * @file
 * Observability-layer tests: Histogram edge cases, the StatGroup
 * gauge/reset-hook registry, per-branch attribution (BranchProfile),
 * the metrics exporter's golden JSON bytes and round-trip parser,
 * checkpoint-resume equivalence of exported metrics, jobs-1-vs-N
 * byte identity of metric files, and the diffMetrics report backing
 * the pabp-stats tool.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bpred/gshare.hh"
#include "core/branch_profile.hh"
#include "core/engine.hh"
#include "core/predictability.hh"
#include "isa/program.hh"
#include "sweep.hh"
#include "util/metrics.hh"
#include "util/stats.hh"
#include "workloads/workload.hh"

namespace pabp::bench {
namespace {

std::string
tempPath(const std::string &name)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->name() + "_" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

// ---------------------------------------------------------------------
// Histogram edge cases (the behaviour documented in util/stats.hh).

TEST(HistogramStats, MeanOverZeroSamplesIsZero)
{
    Histogram h(4, 10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramStats, BoundarySamplesLandInTheirOwnBucket)
{
    Histogram h(4, 10);
    h.sample(0);  // lower edge of bucket 0
    h.sample(9);  // upper edge of bucket 0
    h.sample(10); // lower edge of bucket 1
    h.sample(39); // last in-range value
    h.sample(40); // first overflow value
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sumOfSamples(), 0u + 9 + 10 + 39 + 40);
    EXPECT_DOUBLE_EQ(h.mean(), 98.0 / 5.0);
}

TEST(HistogramStats, ResetRestoresZeroMean)
{
    Histogram h(2, 5);
    h.sample(3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

// ---------------------------------------------------------------------
// StatGroup registry: scalars, gauges, reset hooks.

TEST(StatGroupRegistry, GaugesReadTheLiveComponentCounter)
{
    StatGroup group;
    std::uint64_t owned = 0;
    group.gauge("component.counter", [&owned] { return owned; });
    EXPECT_EQ(group.value("component.counter"), 0u);
    owned = 7;
    EXPECT_EQ(group.value("component.counter"), 7u);
    EXPECT_TRUE(group.has("component.counter"));
    EXPECT_FALSE(group.has("component.other"));
}

TEST(StatGroupRegistry, SnapshotMergesScalarsAndGauges)
{
    StatGroup group;
    group.scalar("a.scalar") += 3;
    std::uint64_t owned = 11;
    group.gauge("b.gauge", [&owned] { return owned; });
    auto snap = group.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap.at("a.scalar"), 3u);
    EXPECT_EQ(snap.at("b.gauge"), 11u);
}

TEST(StatGroupRegistry, ResetZeroesScalarsAndRunsHooks)
{
    // The reset()/resetStats() symmetry: components whose counters
    // live behind gauges register an onReset hook, so group.reset()
    // really zeroes every exported value, not just the owned scalars.
    StatGroup group;
    group.scalar("owned") += 5;
    std::uint64_t component = 9;
    group.gauge("component", [&component] { return component; });
    group.onReset([&component] { component = 0; });
    group.reset();
    EXPECT_EQ(group.value("owned"), 0u);
    EXPECT_EQ(group.value("component"), 0u);
}

// ---------------------------------------------------------------------
// BranchProfile: bounded attribution with an explicit remainder.

TEST(BranchProfileTable, EvictionFoldsIntoRemainderNotThinAir)
{
    BranchProfile profile(2);
    profile.at(0x10).lookups = 5;
    profile.at(0x10).mispredicts = 3;
    profile.at(0x20).lookups = 8;
    profile.at(0x20).mispredicts = 1;
    // Third PC at capacity: 0x20 (fewest mispredicts) is evicted.
    profile.at(0x30).lookups = 1;
    EXPECT_EQ(profile.size(), 2u);
    EXPECT_EQ(profile.evictedBranches(), 1u);
    EXPECT_EQ(profile.evictedRemainder().lookups, 8u);
    EXPECT_EQ(profile.evictedRemainder().mispredicts, 1u);
    EXPECT_TRUE(profile.entries().count(0x10));
    EXPECT_TRUE(profile.entries().count(0x30));

    // Total accounting: tracked + evicted covers every event.
    std::uint64_t lookups = profile.evictedRemainder().lookups;
    for (const auto &[pc, c] : profile.entries())
        lookups += c.lookups;
    EXPECT_EQ(lookups, 5u + 8u + 1u);
}

TEST(BranchProfileTable, CapacityZeroRoutesEverythingToRemainder)
{
    BranchProfile profile(0);
    profile.at(0x10).lookups += 1;
    profile.at(0x20).lookups += 1;
    EXPECT_EQ(profile.size(), 0u);
    EXPECT_EQ(profile.evictedBranches(), 0u);
    EXPECT_EQ(profile.evictedRemainder().lookups, 2u);
}

TEST(BranchProfileTable, TopByMispredictsIsDeterministic)
{
    BranchProfile profile(8);
    profile.at(0x30).mispredicts = 2;
    profile.at(0x10).mispredicts = 5;
    profile.at(0x20).mispredicts = 5;
    auto top = profile.topByMispredicts(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].first, 0x10u); // ties break toward lower PC
    EXPECT_EQ(top[1].first, 0x20u);
}

// ---------------------------------------------------------------------
// Engine reset symmetry. Pins the double-count bug: resetStats() used
// to skip the PGU's insertion counter (and the newer component
// counters), so a harness that reset between measurement cells
// carried the previous cell's counts into the next export.

TEST(EngineResetStats, ClearsEveryRegisteredCounter)
{
    Workload wl = makeWorkload("interp", 42);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    GSharePredictor pred(12);

    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.usePgu = true;
    PredictionEngine engine(pred, ecfg);
    StatGroup group;
    engine.registerStats(group);

    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    runTrace(emu, engine, 50000);

    ASSERT_GT(engine.pguBitsInserted(), 0u);
    ASSERT_GT(engine.stats().all.branches, 0u);
    ASSERT_FALSE(engine.branchProfile().entries().empty());

    // group.reset() runs the engine's hook == engine.resetStats().
    group.reset();
    EXPECT_EQ(engine.pguBitsInserted(), 0u)
        << "pgu.inserted must not survive a stats reset";
    EXPECT_EQ(engine.stats(), EngineStats{});
    EXPECT_TRUE(engine.branchProfile().entries().empty());
    for (const auto &[name, value] : group.snapshot())
        if (name != "pgu.pending_bits") // state, not a statistic
            EXPECT_EQ(value, 0u) << name;
}

// ---------------------------------------------------------------------
// Value-predictor training population. Pins the gating fix: with the
// speculative-squash extension armed, the guard value predictor
// trains ONLY on branches whose guard was unresolved at fetch - the
// population it can ever act on. (It used to train on every guarded
// branch, flooding the table with easy resolved cases and inflating
// the confidence gate.) The attribution table counts exactly that
// population per PC, so the two must agree to the event.

TEST(EngineSpecSquash, PvpTrainsOnlyOnFetchUnresolvedGuards)
{
    Workload wl = makeWorkload("interp", 42);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    GSharePredictor pred(12);

    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.useSpeculativeSquash = true;
    PredictionEngine engine(pred, ecfg);
    StatGroup group;
    engine.registerStats(group);

    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    runTrace(emu, engine, 50000);

    const BranchProfile &profile = engine.branchProfile();
    std::uint64_t unknown = profile.evictedRemainder().guardUnknown;
    std::uint64_t known = profile.evictedRemainder().guardKnown;
    for (const auto &[pc, c] : profile.entries()) {
        unknown += c.guardUnknown;
        known += c.guardKnown;
    }
    // Both populations must be present, or the pin is vacuous.
    ASSERT_GT(unknown, 0u);
    ASSERT_GT(known, 0u);
    EXPECT_EQ(group.value("pvp.trains"), unknown)
        << "pvp must train once per fetch-unresolved guard and "
           "never on resolved ones";
}

// ---------------------------------------------------------------------
// Target-structure observability: with EngineConfig::modelTargets
// armed, the engine registers the btb.* / ras.* gauges and the
// engine.btb_target_misses / ras_hits / ras_misses counters; they
// agree with EngineStats and clear on reset. (Direction-only engines
// register none of these - the gated-export contract that keeps old
// metric files byte-identical.)

TEST(EngineTargetStats, BtbAndRasGaugesCountAndReset)
{
    // main calls a one-add leaf 300 times: every call pushes, every
    // return pops its own address, so a private RAS never misses.
    Program p;
    p.name = "call-loop";
    p.insts = {
        makeMovImm(1, 300),
        makeCmpImm(CmpRel::Gt, CmpType::Unc, 1, 2, 1, 0),
        makeBr(7, 2),
        makeCall(8),
        makeAluImm(Opcode::Sub, 1, 1, 1),
        makeBr(1),
        makeNop(),
        makeHalt(),
        makeAluImm(Opcode::Add, 2, 2, 1),
        makeRet(),
    };
    ASSERT_EQ(validateProgram(p), "");

    GSharePredictor pred(12);
    EngineConfig ecfg;
    ecfg.modelTargets = true;
    ecfg.rasDepth = 16;
    PredictionEngine engine(pred, ecfg);
    StatGroup group;
    engine.registerStats(group);

    Emulator emu(p);
    runTrace(emu, engine, 20000);
    const EngineStats &stats = engine.stats();

    EXPECT_EQ(group.value("ras.pushes"), 300u);
    EXPECT_EQ(group.value("ras.pops"), 300u);
    EXPECT_EQ(group.value("ras.overflows"), 0u);
    EXPECT_EQ(group.value("ras.underflows"), 0u);
    EXPECT_EQ(group.value("engine.ras_hits"), stats.rasHits);
    EXPECT_EQ(stats.rasHits, 300u);
    EXPECT_EQ(group.value("engine.ras_misses"), 0u);
    EXPECT_GT(group.value("btb.hits") + group.value("btb.misses"),
              0u);
    EXPECT_GT(group.value("btb.misses"), 0u) << "cold BTB must miss";
    EXPECT_EQ(group.value("engine.btb_target_misses"),
              stats.btbTargetMisses);
    EXPECT_GT(stats.btbTargetMisses, 0u);

    group.reset();
    EXPECT_EQ(engine.stats(), EngineStats{});
    for (const char *name :
         {"btb.hits", "btb.misses", "ras.pushes", "ras.pops",
          "engine.btb_target_misses", "engine.ras_hits",
          "engine.ras_misses"})
        EXPECT_EQ(group.value(name), 0u) << name;
}

TEST(EngineTargetStats, DirectionOnlyEngineRegistersNoTargetGauges)
{
    GSharePredictor pred(12);
    PredictionEngine engine(pred, EngineConfig{});
    StatGroup group;
    engine.registerStats(group);
    for (const auto &[name, value] : group.snapshot()) {
        EXPECT_EQ(name.rfind("btb.", 0), std::string::npos) << name;
        EXPECT_EQ(name.rfind("ras.", 0), std::string::npos) << name;
        EXPECT_NE(name, "engine.btb_target_misses");
    }
}

// ---------------------------------------------------------------------
// Metrics exporter: golden bytes, round-trip, file writing.

TEST(MetricsGolden, ExactJsonBytes)
{
    // The byte-exact document shape is part of the determinism
    // contract (docs/PARALLEL.md); any layout change must be
    // deliberate and bump the schema version when it re-shapes the
    // document.
    MetricsExporter ex;
    ex.setInt("engine.insts", 1234);
    ex.setReal("engine.mpki", 6.25);
    ex.setText("spec.workload", "bsort");
    ex.declareTable("branches", {"pc", "lookups", "mispredicts"});
    ex.addRow("branches", {64, 100, 7});
    ex.addRow("branches", {96, 50, 0});

    std::ostringstream os;
    ex.writeJson(os);
    const std::string golden = "{\n"
        "  \"schema\": \"pabp.metrics\",\n"
        "  \"version\": 1,\n"
        "  \"metrics\": {\n"
        "    \"engine.insts\": 1234,\n"
        "    \"engine.mpki\": 6.25,\n"
        "    \"spec.workload\": \"bsort\"\n"
        "  },\n"
        "  \"tables\": {\n"
        "    \"branches\": {\n"
        "      \"columns\": [\"pc\", \"lookups\", \"mispredicts\"],\n"
        "      \"rows\": [\n"
        "        [64, 100, 7],\n"
        "        [96, 50, 0]\n"
        "      ]\n"
        "    }\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(os.str(), golden);
}

TEST(MetricsGolden, PredictabilityExportExactBytes)
{
    // The predictability.* names (docs/OBSERVABILITY.md) ride the
    // same byte-stability contract as every other exported metric:
    // adding names is fine, re-shaping existing ones must be
    // deliberate. Inputs are chosen so every entropy is exactly 0 or
    // 1 bit - no floating-point formatting surprises.
    PredictabilityAnalyzer an;
    for (int i = 0; i < 8; ++i)
        an.observe(64, i % 2 == 0); // alternator: H(k0)=1, H(k>0)=0
    for (int i = 0; i < 4; ++i)
        an.observe(96, true); // constant: H == 0 everywhere

    MetricsExporter ex;
    exportPredictability(ex, an.report());
    std::ostringstream os;
    ex.writeJson(os);
    const std::string golden = "{\n"
        "  \"schema\": \"pabp.metrics\",\n"
        "  \"version\": 1,\n"
        "  \"metrics\": {\n"
        "    \"predictability.conditioned.k0\": 12,\n"
        "    \"predictability.conditioned.k16\": 0,\n"
        "    \"predictability.conditioned.k4\": 4,\n"
        "    \"predictability.conditioned.k8\": 0,\n"
        "    \"predictability.entropy.k0\": 0.666666667,\n"
        "    \"predictability.entropy.k16\": 0,\n"
        "    \"predictability.entropy.k4\": 0,\n"
        "    \"predictability.entropy.k8\": 0,\n"
        "    \"predictability.evicted_branches\": 0,\n"
        "    \"predictability.evicted_occurrences\": 0,\n"
        "    \"predictability.evicted_patterns\": 0,\n"
        "    \"predictability.occurrences\": 12,\n"
        "    \"predictability.static_branches\": 2,\n"
        "    \"predictability.taken\": 8,\n"
        "    \"predictability.taken_rate\": 0.666666667,\n"
        "    \"predictability.transition_rate\": 0.583333333,\n"
        "    \"predictability.transitions\": 7\n"
        "  },\n"
        "  \"tables\": {\n"
        "    \"predictability\": {\n"
        "      \"columns\": [\"pc\", \"occurrences\", \"taken\", "
        "\"transitions\", \"entropy_k0_millibits\", "
        "\"entropy_k4_millibits\", \"entropy_k8_millibits\", "
        "\"entropy_k16_millibits\"],\n"
        "      \"rows\": [\n"
        "        [64, 8, 4, 7, 1000, 0, 0, 0],\n"
        "        [96, 4, 4, 0, 0, 0, 0, 0]\n"
        "      ]\n"
        "    }\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(os.str(), golden);
}

TEST(MetricsGolden, EmptyDocumentShape)
{
    MetricsExporter ex;
    std::ostringstream os;
    ex.writeJson(os);
    EXPECT_EQ(os.str(),
              "{\n  \"schema\": \"pabp.metrics\",\n  \"version\": 1,\n"
              "  \"metrics\": {},\n  \"tables\": {}\n}\n");
}

TEST(MetricsGolden, RoundTripParse)
{
    MetricsExporter ex;
    ex.setInt("a.count", 42);
    ex.setReal("a.rate", 0.5);
    ex.setText("a.name", "he said \"hi\"\n");
    ex.declareTable("t", {"k", "v"});
    ex.addRow("t", {1, 2});
    std::ostringstream os;
    ex.writeJson(os);

    Expected<JsonValue> doc = parseJson(os.str());
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue &root = doc.value();
    ASSERT_EQ(root.kind, JsonValue::Kind::Object);
    EXPECT_EQ(root.find("schema")->text, "pabp.metrics");
    EXPECT_EQ(root.find("version")->intValue, 1u);
    const JsonValue *metrics = root.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->find("a.count")->intValue, 42u);
    EXPECT_EQ(metrics->find("a.rate")->number, 0.5);
    EXPECT_EQ(metrics->find("a.name")->text, "he said \"hi\"\n");
    const JsonValue *table = root.find("tables")->find("t");
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(table->find("rows")->items.size(), 1u);
    EXPECT_EQ(table->find("rows")->items[0].items[1].intValue, 2u);
}

TEST(MetricsGolden, HistogramExportKeysSortInBucketOrder)
{
    Histogram h(12, 4);
    h.sample(0);
    h.sample(47);
    h.sample(48);
    MetricsExporter ex;
    ex.addHistogram("dist", h);
    std::ostringstream os;
    ex.writeJson(os);
    const std::string text = os.str();
    // Zero-padded indices: bucket 2 sorts before bucket 11.
    EXPECT_NE(text.find("\"dist.bucket.0000\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"dist.bucket.0011\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"dist.overflow\": 1"), std::string::npos);
    EXPECT_LT(text.find("dist.bucket.0002"),
              text.find("dist.bucket.0011"));
}

TEST(MetricsParse, RejectsMalformedDocuments)
{
    EXPECT_FALSE(parseJson("").ok());
    EXPECT_FALSE(parseJson("{\"a\": 1} trailing").ok());
    EXPECT_FALSE(parseJson("{\"a\": }").ok());
    EXPECT_FALSE(parseJson("{\"a\": \"unterminated").ok());
    EXPECT_FALSE(parseJson("{\"a\": \"bad \\q escape\"}").ok());
    std::string deep(100, '[');
    EXPECT_FALSE(parseJson(deep).ok());
    EXPECT_TRUE(parseJson("{\"a\": [1, 2.5, true, null]}").ok());
}

TEST(MetricsDiff, ReportsUnionOfMetricsAndKeyedRows)
{
    MetricsExporter a, b;
    a.setInt("same", 1);
    b.setInt("same", 1);
    a.setInt("changed", 10);
    b.setInt("changed", 13);
    a.setInt("only.a", 5);
    b.setInt("only.b", 6);
    a.declareTable("branches", BranchProfile::tableColumns());
    b.declareTable("branches", BranchProfile::tableColumns());
    a.addRow("branches", {64, 10, 5, 2, 0, 0, 0, 0, 0});
    b.addRow("branches", {64, 10, 5, 1, 0, 0, 0, 0, 0});

    auto parse = [](const MetricsExporter &ex) {
        std::ostringstream os;
        ex.writeJson(os);
        Expected<JsonValue> doc = parseJson(os.str());
        EXPECT_TRUE(doc.ok());
        return doc.value();
    };
    JsonValue da = parse(a), db = parse(b);

    std::ostringstream report;
    std::size_t diffs = diffMetrics(da, db, report);
    // changed, only.a (10 -> absent), only.b (absent -> 6), one row.
    EXPECT_EQ(diffs, 4u);
    EXPECT_NE(report.str().find("changed: 10 -> 13 (+3)"),
              std::string::npos);
    EXPECT_NE(report.str().find("branches[pc=64]"), std::string::npos);

    std::ostringstream self;
    EXPECT_EQ(diffMetrics(da, da, self), 0u);
    EXPECT_TRUE(self.str().empty());
}

TEST(MetricsDiff, TopKSuppressionIsExplicit)
{
    MetricsExporter a, b;
    a.declareTable("branches", {"pc", "mispredicts"});
    b.declareTable("branches", {"pc", "mispredicts"});
    for (std::uint64_t pc = 0; pc < 5; ++pc) {
        a.addRow("branches", {pc, pc});
        b.addRow("branches", {pc, pc + 1});
    }
    auto parse = [](const MetricsExporter &ex) {
        std::ostringstream os;
        ex.writeJson(os);
        return parseJson(os.str()).value();
    };
    std::ostringstream report;
    std::size_t diffs = diffMetrics(parse(a), parse(b), report, 2);
    EXPECT_EQ(diffs, 5u); // every difference counted...
    EXPECT_NE(report.str().find("3 more differing row(s) suppressed"),
              std::string::npos); // ...and the cut is announced
}

// ---------------------------------------------------------------------
// Sweep-layer export: per-cell files, determinism, resume equivalence.

/** One metrics-enabled trace cell. */
RunSpec
metricsSpec(const std::string &dir)
{
    RunSpec spec;
    spec.workload = "interp";
    spec.maxInsts = 20000;
    spec.engine.useSfpf = true;
    spec.engine.usePgu = true;
    spec.metricsDir = dir;
    return spec;
}

TEST(SweepMetrics, CellWritesVersionedDocument)
{
    const std::string dir = tempPath("mdir");
    RunSpec spec = metricsSpec(dir);
    SweepRunner runner(SweepRunner::Config{1, 0});
    RunResult result = runner.runOne(spec);
    ASSERT_TRUE(result.status.ok()) << result.status.toString();

    const std::string path =
        metricsFilePath(dir, specFingerprint(spec));
    Expected<JsonValue> doc = parseJson(readFile(path));
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue &root = doc.value();
    EXPECT_EQ(root.find("schema")->text, "pabp.metrics");
    const JsonValue *metrics = root.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->find("engine.insts")->intValue,
              result.engine.insts);
    EXPECT_EQ(metrics->find("engine.all.mispredicts")->intValue,
              result.engine.all.mispredicts);
    EXPECT_EQ(metrics->find("sfpf.squashes")->intValue,
              result.engine.all.squashed);
    EXPECT_EQ(metrics->find("pgu.bits_inserted")->intValue,
              result.pguBits);
    EXPECT_EQ(metrics->find("spec.workload")->text, "interp");
    // The resume flag must NOT be exported (resume equivalence).
    EXPECT_EQ(metrics->find("resumed"), nullptr);
    EXPECT_EQ(metrics->find("spec.resumed"), nullptr);

    // Per-branch attribution table is present and accounts for every
    // lookup the engine saw.
    const JsonValue *table = root.find("tables")->find("branches");
    ASSERT_NE(table, nullptr);
    std::uint64_t lookups =
        metrics->find("branch_profile.evicted.lookups")->intValue;
    for (const JsonValue &row : table->find("rows")->items)
        lookups += row.items[1].intValue;
    EXPECT_EQ(lookups, result.engine.all.branches);

    std::remove(path.c_str());
}

TEST(SweepMetrics, TwoCellExportsDoNotLeakAcrossCells)
{
    // Two identical cells in one grid: each builds, runs and exports
    // independently, so the second file's counters equal the first's
    // (a shared/reused engine whose resetStats() forgot a component
    // would double-count into the second export).
    const std::string dir1 = tempPath("cell1");
    const std::string dir2 = tempPath("cell2");
    std::vector<RunSpec> specs = {metricsSpec(dir1),
                                  metricsSpec(dir2)};
    SweepRunner runner(SweepRunner::Config{1, 0});
    std::vector<RunResult> results = runner.run(specs);
    ASSERT_TRUE(results[0].status.ok());
    ASSERT_TRUE(results[1].status.ok());
    EXPECT_EQ(results[0].engine, results[1].engine);
    EXPECT_EQ(results[0].pguBits, results[1].pguBits);

    const std::uint64_t fp = specFingerprint(specs[0]);
    const std::string f1 = metricsFilePath(dir1, fp);
    const std::string f2 = metricsFilePath(dir2, fp);
    EXPECT_EQ(readFile(f1), readFile(f2));
    std::remove(f1.c_str());
    std::remove(f2.c_str());
}

TEST(SweepMetrics, FilesAreByteIdenticalAcrossJobCounts)
{
    auto grid = [](const std::string &dir) {
        std::vector<RunSpec> specs;
        for (const char *name : {"bsort", "interp", "dchain"}) {
            for (int config = 0; config < 2; ++config) {
                RunSpec spec;
                spec.workload = name;
                spec.engine.useSfpf = config >= 1;
                spec.engine.usePgu = config >= 1;
                spec.maxInsts = 15000;
                spec.metricsDir = dir;
                specs.push_back(spec);
            }
        }
        return specs;
    };
    const std::string dir1 = tempPath("jobs1");
    const std::string dir4 = tempPath("jobs4");
    std::vector<RunSpec> grid1 = grid(dir1);
    std::vector<RunSpec> grid4 = grid(dir4);

    SweepRunner serial(SweepRunner::Config{1, 0});
    SweepRunner parallel(SweepRunner::Config{4, 0});
    for (const RunResult &r : serial.run(grid1))
        ASSERT_TRUE(r.status.ok()) << r.status.toString();
    for (const RunResult &r : parallel.run(grid4))
        ASSERT_TRUE(r.status.ok()) << r.status.toString();

    for (std::size_t i = 0; i < grid1.size(); ++i) {
        const std::uint64_t fp = specFingerprint(grid1[i]);
        const std::string f1 = metricsFilePath(dir1, fp);
        const std::string f4 = metricsFilePath(dir4, fp);
        EXPECT_EQ(readFile(f1), readFile(f4)) << grid1[i].workload;
        std::remove(f1.c_str());
        std::remove(f4.c_str());
    }
}

TEST(SweepMetrics, CharacterizedCellsByteIdenticalAcrossJobCounts)
{
    // Characterization rides the shared decoded trace, so the
    // exported predictability.* bytes must be identical at jobs=1
    // and jobs=8 and across replay strategies - the analyzer is
    // pure over the stream, and the stream is cached per program.
    auto grid = [](const std::string &dir, bool fast) {
        std::vector<RunSpec> specs;
        for (const char *name : {"bsort", "interp", "dchain"}) {
            RunSpec spec;
            spec.workload = name;
            spec.maxInsts = 15000;
            spec.metricsDir = dir;
            spec.characterize = true;
            spec.fastReplay = fast;
            specs.push_back(spec);
        }
        return specs;
    };
    const std::string dir1 = tempPath("jobs1");
    const std::string dir8 = tempPath("jobs8");
    const std::string dirRef = tempPath("ref");
    std::vector<RunSpec> grid1 = grid(dir1, true);
    std::vector<RunSpec> grid8 = grid(dir8, true);
    std::vector<RunSpec> gridRef = grid(dirRef, false);

    SweepRunner serial(SweepRunner::Config{1, 0});
    SweepRunner parallel(SweepRunner::Config{8, 0});
    std::vector<RunResult> serialResults = serial.run(grid1);
    for (const RunResult &r : serialResults)
        ASSERT_TRUE(r.status.ok()) << r.status.toString();
    for (const RunResult &r : parallel.run(grid8))
        ASSERT_TRUE(r.status.ok()) << r.status.toString();
    for (const RunResult &r : serial.run(gridRef))
        ASSERT_TRUE(r.status.ok()) << r.status.toString();

    for (std::size_t i = 0; i < grid1.size(); ++i) {
        // The report handle is populated and non-trivial.
        ASSERT_NE(serialResults[i].predictability, nullptr);
        EXPECT_GT(serialResults[i].predictability->occurrences, 0u);

        const std::uint64_t fp = specFingerprint(grid1[i]);
        const std::string f1 = metricsFilePath(dir1, fp);
        const std::string f8 = metricsFilePath(dir8, fp);
        const std::string fr = metricsFilePath(dirRef, fp);
        const std::string bytes = readFile(f1);
        EXPECT_EQ(bytes, readFile(f8)) << grid1[i].workload;
        EXPECT_EQ(bytes, readFile(fr)) << grid1[i].workload;
        EXPECT_NE(bytes.find("\"predictability.entropy.k0\""),
                  std::string::npos)
            << grid1[i].workload;
        EXPECT_NE(bytes.find("\"predictability.tier0."),
                  std::string::npos)
            << grid1[i].workload;
        std::remove(f1.c_str());
        std::remove(f8.c_str());
        std::remove(fr.c_str());
    }
}

TEST(SweepMetrics, UnwritableMetricsDirFailsTheCell)
{
    // metricsDir colliding with an existing FILE: the cell must fail
    // with a typed IoError, never exit clean without its file.
    const std::string blocker = tempPath("blocker");
    { std::ofstream(blocker) << "in the way"; }
    RunSpec spec = metricsSpec(blocker);
    SweepRunner runner(SweepRunner::Config{1, 0});
    RunResult result = runner.runOne(spec);
    EXPECT_FALSE(result.status.ok());
    EXPECT_EQ(result.status.code(), StatusCode::IoError);
    std::remove(blocker.c_str());
}

/** Copy a checkpoint across spec fingerprints (budget differs). */
void
aliasCheckpoint(const std::string &base, const RunSpec &from,
                const RunSpec &to)
{
    std::ifstream src(derivedCheckpointPath(base, specFingerprint(from)),
                      std::ios::binary);
    std::ofstream dst(derivedCheckpointPath(base, specFingerprint(to)),
                      std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(src.good());
    ASSERT_TRUE(dst.good());
    dst << src.rdbuf();
}

TEST(SweepMetrics, ResumedRunExportsIdenticalMetricsFile)
{
    // The stats double-count / lost-state class of bug, pinned at
    // the observable artifact: a run split across a checkpoint must
    // export the byte-identical metrics file of an uninterrupted
    // run - engine counters, per-branch attribution, PGU influence
    // cursor and all.
    const std::string base = tempPath("split.ckpt");
    RunSpec half = metricsSpec(tempPath("half"));
    half.checkpointEvery = 5000;
    half.maxInsts = 10000;
    half.checkpointPath = base;
    SweepRunner runner(SweepRunner::Config{1, 0});
    ASSERT_TRUE(runner.runOne(half).status.ok());

    RunSpec full = metricsSpec(tempPath("resumed"));
    full.maxInsts = 20000;
    full.resumePath = base;
    aliasCheckpoint(base, half, full);
    RunResult resumed = runner.runOne(full);
    ASSERT_TRUE(resumed.status.ok()) << resumed.status.toString();
    ASSERT_TRUE(resumed.resumed);

    RunSpec straight = metricsSpec(tempPath("straight"));
    straight.maxInsts = 20000;
    RunResult uninterrupted = runner.runOne(straight);
    ASSERT_TRUE(uninterrupted.status.ok());

    EXPECT_EQ(resumed.engine, uninterrupted.engine);
    EXPECT_EQ(resumed.profile, uninterrupted.profile);
    const std::string resumed_file = metricsFilePath(
        full.metricsDir, specFingerprint(full));
    const std::string straight_file = metricsFilePath(
        straight.metricsDir, specFingerprint(straight));
    EXPECT_EQ(readFile(resumed_file), readFile(straight_file));

    std::remove(derivedCheckpointPath(base, specFingerprint(half))
                    .c_str());
    std::remove(derivedCheckpointPath(base, specFingerprint(full))
                    .c_str());
    std::remove(resumed_file.c_str());
    std::remove(straight_file.c_str());
}

TEST(SweepMetrics, ResumedTargetModellingExportsIdenticalFile)
{
    // Satellite of the BTB/RAS wiring fix: the target structures are
    // part of the checkpoint now (ckpt version 3), so a resumed
    // modelTargets run reproduces the uninterrupted run's target
    // stats - and its metrics file, btb.*/ras.* gauges included -
    // byte for byte.
    const std::string base = tempPath("targets.ckpt");
    RunSpec half = metricsSpec(tempPath("tgt_half"));
    half.engine.modelTargets = true;
    half.checkpointEvery = 5000;
    half.maxInsts = 10000;
    half.checkpointPath = base;
    SweepRunner runner(SweepRunner::Config{1, 0});
    ASSERT_TRUE(runner.runOne(half).status.ok());

    RunSpec full = metricsSpec(tempPath("tgt_resumed"));
    full.engine.modelTargets = true;
    full.maxInsts = 20000;
    full.resumePath = base;
    aliasCheckpoint(base, half, full);
    RunResult resumed = runner.runOne(full);
    ASSERT_TRUE(resumed.status.ok()) << resumed.status.toString();
    ASSERT_TRUE(resumed.resumed);

    RunSpec straight = metricsSpec(tempPath("tgt_straight"));
    straight.engine.modelTargets = true;
    straight.maxInsts = 20000;
    RunResult uninterrupted = runner.runOne(straight);
    ASSERT_TRUE(uninterrupted.status.ok());

    // Vacuity guard: the cell must actually have modelled targets.
    ASSERT_GT(uninterrupted.engine.btbTargetMisses, 0u);
    EXPECT_EQ(resumed.engine, uninterrupted.engine);
    EXPECT_EQ(resumed.profile, uninterrupted.profile);
    const std::string resumed_file = metricsFilePath(
        full.metricsDir, specFingerprint(full));
    const std::string straight_file = metricsFilePath(
        straight.metricsDir, specFingerprint(straight));
    EXPECT_EQ(readFile(resumed_file), readFile(straight_file));

    std::remove(derivedCheckpointPath(base, specFingerprint(half))
                    .c_str());
    std::remove(derivedCheckpointPath(base, specFingerprint(full))
                    .c_str());
    std::remove(metricsFilePath(half.metricsDir, specFingerprint(half))
                    .c_str());
    std::remove(resumed_file.c_str());
    std::remove(straight_file.c_str());
}

TEST(SweepMetrics, ResumedConflictProfilingMatchesUninterrupted)
{
    // Pins the gshare serialization fix: conflict-profiling state
    // (lookup/conflict counters, last-writer tags) is checkpointed,
    // so a resumed profileConflicts run reports the same counts - and
    // exports the same metrics file - as an uninterrupted one.
    const std::string base = tempPath("prof.ckpt");
    RunSpec half;
    half.workload = "bsort";
    half.profileConflicts = true;
    half.maxInsts = 10000;
    half.checkpointEvery = 5000;
    half.checkpointPath = base;
    half.metricsDir = tempPath("prof_half");
    SweepRunner runner(SweepRunner::Config{1, 0});
    ASSERT_TRUE(runner.runOne(half).status.ok());

    RunSpec full = half;
    full.checkpointEvery = 0;
    full.checkpointPath.clear();
    full.maxInsts = 20000;
    full.resumePath = base;
    full.metricsDir = tempPath("prof_resumed");
    aliasCheckpoint(base, half, full);
    RunResult resumed = runner.runOne(full);
    ASSERT_TRUE(resumed.status.ok()) << resumed.status.toString();
    ASSERT_TRUE(resumed.resumed);

    RunSpec straight = full;
    straight.resumePath.clear();
    straight.metricsDir = tempPath("prof_straight");
    RunResult uninterrupted = runner.runOne(straight);
    ASSERT_TRUE(uninterrupted.status.ok());

    ASSERT_GT(uninterrupted.lookups, 0u);
    EXPECT_EQ(resumed.lookups, uninterrupted.lookups);
    EXPECT_EQ(resumed.conflicts, uninterrupted.conflicts);
    const std::string resumed_file = metricsFilePath(
        full.metricsDir, specFingerprint(full));
    const std::string straight_file = metricsFilePath(
        straight.metricsDir, specFingerprint(straight));
    EXPECT_EQ(readFile(resumed_file), readFile(straight_file));

    std::remove(derivedCheckpointPath(base, specFingerprint(half))
                    .c_str());
    std::remove(derivedCheckpointPath(base, specFingerprint(full))
                    .c_str());
    std::remove(metricsFilePath(half.metricsDir, specFingerprint(half))
                    .c_str());
    std::remove(resumed_file.c_str());
    std::remove(straight_file.c_str());
}

TEST(SweepMetrics, ProfilingModeMismatchFallsBackToFreshRun)
{
    // A checkpoint taken WITHOUT conflict profiling must not load
    // into a profiling predictor (its counters would be garbage);
    // the sweep treats it as a spec mismatch and runs fresh.
    GSharePredictor plain(10);
    std::stringstream buf;
    StateSink sink(buf);
    plain.saveState(sink);
    GSharePredictor profiling(10);
    profiling.enableConflictProfiling();
    StateSource src(buf);
    Status status = profiling.loadState(src);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::InvalidArgument);
}

} // namespace
} // namespace pabp::bench
