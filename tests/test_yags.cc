/**
 * @file
 * YAGS predictor tests: default/exception behaviour, aliasing
 * tolerance, pattern learning, injection, factory integration.
 */

#include <gtest/gtest.h>

#include "bpred/factory.hh"
#include "bpred/gshare.hh"
#include "bpred/yags.hh"
#include "util/rng.hh"

namespace pabp {
namespace {

double
patternAccuracy(BranchPredictor &pred, std::uint32_t pc,
                const std::vector<bool> &pattern, int reps)
{
    int correct = 0, total = 0, warmup = reps / 2;
    for (int r = 0; r < reps; ++r) {
        for (bool taken : pattern) {
            bool predicted = pred.predict(pc);
            pred.update(pc, taken);
            if (r >= warmup) {
                correct += predicted == taken;
                ++total;
            }
        }
    }
    return static_cast<double>(correct) / total;
}

TEST(Yags, LearnsBias)
{
    YagsPredictor pred(10, 9);
    EXPECT_GT(patternAccuracy(pred, 12, {true}, 40), 0.99);
    YagsPredictor pred2(10, 9);
    EXPECT_GT(patternAccuracy(pred2, 12, {false}, 40), 0.99);
}

TEST(Yags, LearnsAlternationViaExceptions)
{
    YagsPredictor pred(10, 10);
    EXPECT_GT(patternAccuracy(pred, 12, {true, false}, 200), 0.95);
}

TEST(Yags, LearnsLongerPattern)
{
    YagsPredictor pred(12, 11);
    EXPECT_GT(
        patternAccuracy(pred, 12, {true, true, false, true}, 300),
        0.95);
}

TEST(Yags, ToleratesOppositeBiasAliasing)
{
    // Many branches with conflicting biases on a small predictor:
    // YAGS (choice table is per-PC) should beat plain gshare.
    auto stress = [](BranchPredictor &pred) {
        Rng rng(17);
        int correct = 0, total = 0;
        for (int i = 0; i < 60000; ++i) {
            std::uint32_t pc = static_cast<std::uint32_t>(
                rng.below(512));
            bool outcome = pc & 1; // half biased T, half NT
            bool predicted = pred.predict(pc);
            pred.update(pc, outcome);
            if (i > 30000) {
                correct += predicted == outcome;
                ++total;
            }
        }
        return static_cast<double>(correct) / total;
    };
    YagsPredictor yags(10, 8);
    GSharePredictor gshare(9); // similar budget class
    EXPECT_GT(stress(yags), stress(gshare));
    EXPECT_GT(stress(yags), 0.97);
}

TEST(Yags, InjectionShiftsHistory)
{
    YagsPredictor pred(8, 8);
    EXPECT_TRUE(pred.hasGlobalHistory());
    pred.injectHistoryBit(true); // must not crash; affects indexing
    pred.predict(0);
    pred.update(0, true);
}

TEST(Yags, ResetClears)
{
    YagsPredictor pred(8, 8);
    patternAccuracy(pred, 3, {true}, 20);
    pred.reset();
    // Back to weakly-not-taken choice default.
    EXPECT_FALSE(pred.predict(3));
}

TEST(Yags, StorageAccounting)
{
    YagsPredictor pred(10, 9, 8);
    // choice 1024x2 + 2 caches x 512 x (2 cnt + 8 tag + 1 valid) + ghr
    EXPECT_EQ(pred.storageBits(), 1024u * 2 + 2u * 512 * 11 + 9);
}

TEST(Yags, FactoryBuildsIt)
{
    PredictorPtr pred = makePredictor("yags", 12);
    ASSERT_NE(pred, nullptr);
    pred->predict(1);
    pred->update(1, true);
    EXPECT_NE(pred->name().find("yags"), std::string::npos);
}

} // namespace
} // namespace pabp
