/**
 * @file
 * CFG simplification tests: jump threading, single-predecessor
 * merging, unreachable removal, degenerate-branch collapse, and the
 * semantic-equivalence property over random programs.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "compiler/simplify.hh"
#include "sim/emulator.hh"
#include "workloads/random_gen.hh"

namespace pabp {
namespace {

TEST(Simplify, ThreadsEmptyForwardingBlocks)
{
    IrFunction fn;
    IrBuilder b(fn);
    BlockId entry = b.newBlock();
    BlockId fwd1 = b.newBlock();
    BlockId fwd2 = b.newBlock();
    BlockId real = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(1, 1));
    b.jump(fwd1);
    b.setBlock(fwd1);
    b.jump(fwd2);
    b.setBlock(fwd2);
    b.jump(real);
    b.setBlock(real);
    b.append(makeMovImm(2, 2));
    b.halt();

    SimplifyStats stats = simplifyFunction(fn);
    EXPECT_GE(stats.threadedJumps, 1u);
    EXPECT_GE(stats.removedBlocks, 2u);
    EXPECT_EQ(verifyFunction(fn), "");
    // entry + real remain (real merged into entry, in fact).
    EXPECT_LE(fn.blocks.size(), 2u);
}

TEST(Simplify, MergesSinglePredecessorChains)
{
    IrFunction fn;
    IrBuilder b(fn);
    BlockId entry = b.newBlock();
    BlockId mid = b.newBlock();
    BlockId tail = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(1, 1));
    b.jump(mid);
    b.setBlock(mid);
    b.append(makeMovImm(2, 2));
    b.jump(tail);
    b.setBlock(tail);
    b.append(makeMovImm(3, 3));
    b.halt();

    SimplifyStats stats = simplifyFunction(fn);
    EXPECT_GE(stats.mergedBlocks, 2u);
    ASSERT_EQ(fn.blocks.size(), 1u);
    EXPECT_EQ(fn.blocks[0].body.size(), 3u);
    EXPECT_EQ(fn.blocks[0].term.kind, Terminator::Kind::Halt);
}

TEST(Simplify, DoesNotMergeMultiPredecessorJoins)
{
    IrFunction fn;
    IrBuilder b(fn);
    BlockId entry = b.newBlock();
    BlockId then_b = b.newBlock();
    BlockId else_b = b.newBlock();
    BlockId join = b.newBlock();

    b.setBlock(entry);
    b.condBrImm(CmpRel::Lt, 1, 5, then_b, else_b);
    b.setBlock(then_b);
    b.append(makeMovImm(2, 1));
    b.jump(join);
    b.setBlock(else_b);
    b.append(makeMovImm(2, 2));
    b.jump(join);
    b.setBlock(join);
    b.append(makeMovImm(3, 3));
    b.halt();

    simplifyFunction(fn);
    EXPECT_EQ(verifyFunction(fn), "");
    // The join must survive (it has two predecessors).
    EXPECT_EQ(fn.blocks.size(), 4u);
}

TEST(Simplify, CollapsesDegenerateCondBranch)
{
    // Both arms of a cond branch forward to the same block.
    IrFunction fn;
    IrBuilder b(fn);
    BlockId entry = b.newBlock();
    BlockId fwd_a = b.newBlock();
    BlockId fwd_b = b.newBlock();
    BlockId tail = b.newBlock();

    b.setBlock(entry);
    b.condBrImm(CmpRel::Lt, 1, 5, fwd_a, fwd_b);
    b.setBlock(fwd_a);
    b.jump(tail);
    b.setBlock(fwd_b);
    b.jump(tail);
    b.setBlock(tail);
    b.halt();

    SimplifyStats stats = simplifyFunction(fn);
    EXPECT_TRUE(stats.changedAnything());
    EXPECT_EQ(verifyFunction(fn), "");
    ASSERT_EQ(fn.blocks.size(), 1u);
    EXPECT_EQ(fn.blocks[0].term.kind, Terminator::Kind::Halt);
}

TEST(Simplify, RemovesUnreachableBlocks)
{
    IrFunction fn;
    IrBuilder b(fn);
    BlockId entry = b.newBlock();
    BlockId dead = b.newBlock();

    b.setBlock(entry);
    b.halt();
    b.setBlock(dead);
    b.append(makeMovImm(1, 1));
    b.halt();

    SimplifyStats stats = simplifyFunction(fn);
    EXPECT_EQ(stats.removedBlocks, 1u);
    EXPECT_EQ(fn.blocks.size(), 1u);
}

TEST(Simplify, IdempotentOnCleanCfg)
{
    IrFunction fn;
    IrBuilder b(fn);
    BlockId entry = b.newBlock();
    BlockId loop = b.newBlock();
    BlockId done = b.newBlock();
    b.setBlock(entry);
    b.append(makeMovImm(1, 10));
    b.jump(loop);
    b.setBlock(loop);
    b.append(makeAluImm(Opcode::Sub, 1, 1, 1));
    b.condBrImm(CmpRel::Gt, 1, 0, loop, done);
    b.setBlock(done);
    b.halt();

    simplifyFunction(fn);
    SimplifyStats second = simplifyFunction(fn);
    EXPECT_FALSE(second.changedAnything());
}

TEST(Simplify, PreservesSemanticsOnRandomPrograms)
{
    for (std::uint64_t seed = 600; seed < 624; ++seed) {
        Workload original = makeRandomWorkload(seed);
        Workload cleaned = makeRandomWorkload(seed);
        simplifyFunction(cleaned.fn);
        ASSERT_EQ(verifyFunction(cleaned.fn), "") << seed;

        CompiledProgram a = lowerNormal(original.fn);
        CompiledProgram c = lowerNormal(cleaned.fn);
        Emulator ea(a.prog, EmuConfig{1 << 14, 20'000'000});
        Emulator ec(c.prog, EmuConfig{1 << 14, 20'000'000});
        original.init(ea.state());
        cleaned.init(ec.state());
        ea.run(20'000'000);
        ec.run(20'000'000);
        ASSERT_TRUE(ea.state().halted && ec.state().halted) << seed;
        EXPECT_TRUE(ea.state().sameArchOutcome(ec.state())) << seed;
    }
}

TEST(Simplify, ComposesWithIfConversion)
{
    for (std::uint64_t seed = 700; seed < 712; ++seed) {
        Workload plain = makeRandomWorkload(seed);
        Workload both = makeRandomWorkload(seed);

        CompileOptions plain_opts;
        plain_opts.ifConvert = false;
        CompiledProgram a = compileWorkload(plain, plain_opts);

        CompileOptions both_opts;
        both_opts.simplifyCfg = true;
        both_opts.ifConvert = true;
        CompiledProgram c = compileWorkload(both, both_opts);

        Emulator ea(a.prog, EmuConfig{1 << 14, 20'000'000});
        Emulator ec(c.prog, EmuConfig{1 << 14, 20'000'000});
        plain.init(ea.state());
        both.init(ec.state());
        ea.run(20'000'000);
        ec.run(20'000'000);
        ASSERT_TRUE(ea.state().halted && ec.state().halted) << seed;
        EXPECT_TRUE(ea.state().sameArchOutcome(ec.state())) << seed;
    }
}

} // namespace
} // namespace pabp
