/**
 * @file
 * Multi-context interleaved replay (core/multictx.hh, bench E21):
 * the schedule stream is deterministic and bounded, a 1-context
 * replay is byte-identical to the ordinary single-stream loop, fast
 * (batched decoded-trace) and reference (emulator) interleaved
 * replays agree per context across the schedule/sharing/tagging
 * grid, shared target structures suffer cross-context RAS
 * interference that partitioned ones do not, and the sweep runner
 * rejects the unsupported multi-context combinations with typed
 * errors while keeping fast and reference multi-context cells
 * byte-identical.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bpred/factory.hh"
#include "compiler/compile.hh"
#include "core/engine.hh"
#include "core/multictx.hh"
#include "isa/program.hh"
#include "sim/context_schedule.hh"
#include "sim/decoded_trace.hh"
#include "sim/emulator.hh"
#include "sim/trace_io.hh"
#include "sweep.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

using bench::RunMode;
using bench::RunResult;
using bench::RunSpec;
using bench::SweepRunner;

// ---------------------------------------------------------------------
// Schedule stream: pure function of its config.

TEST(ContextSchedule, RoundRobinIsStrictRotationAtQuantum)
{
    ContextScheduleConfig cfg;
    cfg.contexts = 3;
    cfg.quantum = 17;
    ContextSchedule sched(cfg);
    for (unsigned i = 0; i < 9; ++i) {
        ContextSchedule::Slice s = sched.next();
        EXPECT_EQ(s.context, i % 3u) << i;
        EXPECT_EQ(s.length, 17u) << i;
    }
}

TEST(ContextSchedule, BurstyIsDeterministicAndBounded)
{
    ContextScheduleConfig cfg;
    cfg.contexts = 4;
    cfg.kind = ScheduleKind::Bursty;
    cfg.quantum = 64;
    cfg.seed = 7;

    ContextSchedule a(cfg), b(cfg);
    bool sawEveryContext[4] = {};
    for (unsigned i = 0; i < 500; ++i) {
        ContextSchedule::Slice sa = a.next();
        ContextSchedule::Slice sb = b.next();
        EXPECT_EQ(sa.context, sb.context) << i;
        EXPECT_EQ(sa.length, sb.length) << i;
        ASSERT_LT(sa.context, 4u) << i;
        EXPECT_GE(sa.length, 1u) << i;
        EXPECT_LE(sa.length, 128u) << i;
        sawEveryContext[sa.context] = true;
    }
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_TRUE(sawEveryContext[c]) << "context " << c
                                        << " never scheduled";

    // A different seed is a different stream.
    ContextScheduleConfig other = cfg;
    other.seed = 8;
    ContextSchedule d(other);
    ContextSchedule ref(cfg);
    bool differs = false;
    for (unsigned i = 0; i < 500 && !differs; ++i) {
        ContextSchedule::Slice sd = d.next();
        ContextSchedule::Slice sr = ref.next();
        differs = sd.context != sr.context || sd.length != sr.length;
    }
    EXPECT_TRUE(differs);
}

TEST(ContextSchedule, ParseAndNameRoundTrip)
{
    for (const char *name : {"rr", "round-robin"}) {
        Expected<ScheduleKind> kind = parseScheduleKind(name);
        ASSERT_TRUE(kind.ok()) << name;
        EXPECT_EQ(kind.value(), ScheduleKind::RoundRobin);
    }
    Expected<ScheduleKind> bursty = parseScheduleKind("bursty");
    ASSERT_TRUE(bursty.ok());
    EXPECT_EQ(bursty.value(), ScheduleKind::Bursty);
    EXPECT_STREQ(scheduleKindName(ScheduleKind::RoundRobin), "rr");
    EXPECT_STREQ(scheduleKindName(ScheduleKind::Bursty), "bursty");

    Expected<ScheduleKind> bad = parseScheduleKind("sporadic");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::InvalidArgument);
}

// ---------------------------------------------------------------------
// Replay fixtures: one compiled workload + recorded/decoded trace per
// context, plus a way to mint fresh emulators for the reference path.

constexpr std::uint64_t budget = 20000;

struct CtxFixture
{
    Workload wl;
    CompiledProgram cp;
    RecordedTrace trace;
    DecodedTrace dec;
};

CtxFixture
makeCtx(const std::string &name, std::uint64_t seed)
{
    CtxFixture f;
    f.wl = makeWorkload(name, seed);
    f.cp = compileWorkload(f.wl, CompileOptions{});
    Emulator emu(f.cp.prog);
    if (f.wl.init)
        f.wl.init(emu.state());
    f.trace = recordTrace(emu, budget);
    f.dec = DecodedTrace::build(f.trace);
    return f;
}

/** Hand-written call-loop context (no workload init): main calls a
 *  one-add leaf @p iterations times - well nested, so a private RAS
 *  of any reasonable depth never misses. @p pad leading nops shift
 *  every address, so two instances with different padding push
 *  DIFFERENT return addresses - a cross-context pop from a shared
 *  RAS then yields a visibly wrong target. */
CtxFixture
makeCallCtx(std::int64_t iterations, unsigned pad)
{
    Program p;
    p.name = "call-loop";
    for (unsigned i = 0; i < pad; ++i)
        p.insts.push_back(makeNop());
    const std::uint32_t b = pad;
    p.insts.push_back(makeMovImm(1, iterations));
    p.insts.push_back(makeCmpImm(CmpRel::Gt, CmpType::Unc, 1, 2, 1, 0));
    p.insts.push_back(makeBr(b + 7, 2));
    p.insts.push_back(makeCall(b + 8));
    p.insts.push_back(makeAluImm(Opcode::Sub, 1, 1, 1));
    p.insts.push_back(makeBr(b + 1));
    p.insts.push_back(makeNop());
    p.insts.push_back(makeHalt());
    p.insts.push_back(makeAluImm(Opcode::Add, 2, 2, 1));
    p.insts.push_back(makeRet());
    EXPECT_EQ(validateProgram(p), "");

    CtxFixture f;
    f.cp.prog = p;
    Emulator emu(f.cp.prog);
    f.trace = recordTrace(emu, budget);
    f.dec = DecodedTrace::build(f.trace);
    return f;
}

std::unique_ptr<Emulator>
freshEmulator(const CtxFixture &f)
{
    auto emu = std::make_unique<Emulator>(f.cp.prog);
    if (f.wl.init)
        f.wl.init(emu->state());
    return emu;
}

struct CtxOutcome
{
    std::uint64_t processed = 0;
    std::vector<EngineStats> stats;
    std::vector<BranchProfile> profiles;
    std::vector<std::uint64_t> pguBits;
};

CtxOutcome
collect(MultiContextReplayer &replayer, std::uint64_t processed)
{
    CtxOutcome out;
    out.processed = processed;
    for (unsigned c = 0; c < replayer.contexts(); ++c) {
        out.stats.push_back(replayer.engine(c).stats());
        out.profiles.push_back(replayer.engine(c).branchProfile());
        out.pguBits.push_back(replayer.engine(c).pguBitsInserted());
    }
    return out;
}

using CtxSet = std::vector<const CtxFixture *>;

CtxOutcome
runFast(const CtxSet &ctxs, const std::string &kind,
        const MultiCtxConfig &cfg)
{
    PredictorPtr pred = makePredictor(kind, 12);
    MultiContextReplayer replayer(*pred, cfg);
    std::vector<const DecodedTrace *> traces;
    for (const CtxFixture *f : ctxs)
        traces.push_back(&f->dec);
    return collect(replayer, replayer.replayDecoded(traces, budget));
}

CtxOutcome
runReference(const CtxSet &ctxs, const std::string &kind,
             const MultiCtxConfig &cfg)
{
    PredictorPtr pred = makePredictor(kind, 12);
    MultiContextReplayer replayer(*pred, cfg);
    std::vector<std::unique_ptr<Emulator>> owned;
    std::vector<Emulator *> emus;
    for (const CtxFixture *f : ctxs) {
        owned.push_back(freshEmulator(*f));
        emus.push_back(owned.back().get());
    }
    return collect(replayer, replayer.replayEmulated(emus, budget));
}

void
expectEquivalent(const CtxOutcome &ref, const CtxOutcome &fast)
{
    EXPECT_EQ(ref.processed, fast.processed);
    ASSERT_EQ(ref.stats.size(), fast.stats.size());
    for (std::size_t c = 0; c < ref.stats.size(); ++c) {
        SCOPED_TRACE("context " + std::to_string(c));
        EXPECT_EQ(ref.stats[c], fast.stats[c]);
        EXPECT_EQ(ref.profiles[c], fast.profiles[c]);
        EXPECT_EQ(ref.pguBits[c], fast.pguBits[c]);
        // Vacuity guard: every context must actually have run.
        EXPECT_GT(ref.stats[c].all.branches, 0u);
    }
}

MultiCtxConfig
multiCtxConfig(unsigned contexts, ScheduleKind kind, bool shared,
               unsigned tag_bits, std::uint64_t quantum = 96)
{
    MultiCtxConfig cfg;
    cfg.schedule.contexts = contexts;
    cfg.schedule.kind = kind;
    cfg.schedule.quantum = quantum;
    cfg.schedule.seed = 11;
    cfg.sharedHistory = shared;
    cfg.tagBits = tag_bits;
    cfg.engine.useSfpf = true;
    cfg.engine.usePgu = true;
    return cfg;
}

// ---------------------------------------------------------------------
// The N == 1 identity: a single-context replay IS the single-stream
// loop, bit for bit, with and without tag bits (context 0's tag mix
// is the identity).

TEST(MultiCtxReplay, SingleContextMatchesSingleStream)
{
    for (const char *wl : {"interp", "filter"}) {
        CtxFixture only = makeCtx(wl, 42);
        CtxSet ctxs = {&only};
        for (unsigned tag_bits : {0u, 2u}) {
            SCOPED_TRACE(std::string(wl) + "/tag" +
                         std::to_string(tag_bits));
            MultiCtxConfig cfg = multiCtxConfig(
                1, ScheduleKind::RoundRobin, true, tag_bits);

            CtxOutcome multi = runFast(ctxs, "gshare", cfg);

            PredictorPtr pred = makePredictor("gshare", 12);
            PredictionEngine engine(*pred, cfg.engine);
            std::uint64_t processed =
                engine.processBatch(only.dec, 0, only.dec.size());

            EXPECT_EQ(multi.processed, processed);
            ASSERT_EQ(multi.stats.size(), 1u);
            EXPECT_EQ(multi.stats[0], engine.stats());
            EXPECT_EQ(multi.profiles[0], engine.branchProfile());
            EXPECT_EQ(multi.pguBits[0], engine.pguBitsInserted());
            EXPECT_GT(engine.stats().all.branches, 0u);
        }
    }
}

// ---------------------------------------------------------------------
// Fast vs reference equivalence across the full interference grid:
// context count x schedule x history sharing x tag bits.

TEST(MultiCtxReplay, FastMatchesReferenceAcrossGrid)
{
    static const char *const names[] = {"interp", "bsort", "filter",
                                        "dchain"};
    std::vector<CtxFixture> pool;
    for (unsigned c = 0; c < 4; ++c)
        pool.push_back(makeCtx(names[c], 42 + c));

    for (unsigned n : {2u, 4u}) {
        CtxSet ctxs;
        for (unsigned c = 0; c < n; ++c)
            ctxs.push_back(&pool[c]);
        for (ScheduleKind kind :
             {ScheduleKind::RoundRobin, ScheduleKind::Bursty}) {
            for (bool shared : {true, false}) {
                for (unsigned tag_bits : {0u, 2u}) {
                    SCOPED_TRACE(
                        "n" + std::to_string(n) + "/" +
                        scheduleKindName(kind) +
                        (shared ? "/shared" : "/part") + "/tag" +
                        std::to_string(tag_bits));
                    MultiCtxConfig cfg =
                        multiCtxConfig(n, kind, shared, tag_bits);
                    expectEquivalent(
                        runReference(ctxs, "gshare", cfg),
                        runFast(ctxs, "gshare", cfg));
                }
            }
        }
    }
}

// TAGE's partitioned-history swap is the deepest export/import path
// (folded components plus packed history bytes), so it gets its own
// cell rather than riding the gshare grid.

TEST(MultiCtxReplay, TagePartitionedHistorySwapMatchesReference)
{
    CtxFixture a = makeCtx("interp", 42), b = makeCtx("fsm", 43);
    CtxSet ctxs = {&a, &b};
    MultiCtxConfig cfg =
        multiCtxConfig(2, ScheduleKind::Bursty, false, 0, 48);
    cfg.engine = EngineConfig{};
    expectEquivalent(runReference(ctxs, "tage", cfg),
                     runFast(ctxs, "tage", cfg));
}

TEST(MultiCtxReplay, ReplayIsDeterministic)
{
    CtxFixture a = makeCtx("interp", 42), b = makeCtx("bsort", 43);
    CtxFixture c = makeCtx("filter", 44);
    CtxSet ctxs = {&a, &b, &c};
    MultiCtxConfig cfg =
        multiCtxConfig(3, ScheduleKind::Bursty, true, 1, 64);

    CtxOutcome first = runFast(ctxs, "gshare", cfg);
    CtxOutcome second = runFast(ctxs, "gshare", cfg);
    expectEquivalent(first, second);
}

// ---------------------------------------------------------------------
// Target-structure interference: two well-nested call loops that
// never miss a private RAS. Partitioned mode keeps that guarantee
// per context; shared mode interleaves pushes and pops from both
// contexts through ONE stack, and the slice boundaries that split
// call/return pairs turn into misses. Fast and reference replay
// agree in both modes.

TEST(MultiCtxReplay, SharedRasSuffersInterferencePartitionedDoesNot)
{
    CtxFixture a = makeCallCtx(400, 0), b = makeCallCtx(300, 3);
    CtxSet ctxs = {&a, &b};

    for (bool shared : {true, false}) {
        SCOPED_TRACE(shared ? "shared" : "partitioned");
        // Bursty, not round-robin: a fixed quantum phase-locks the
        // two loops so their call/return pairs happen to never be
        // open at the same time; random burst lengths are what real
        // context switches look like anyway.
        MultiCtxConfig cfg = multiCtxConfig(
            2, ScheduleKind::Bursty, shared, 0, 8);
        cfg.engine = EngineConfig{};
        cfg.engine.modelTargets = true;
        cfg.engine.rasDepth = 16;

        CtxOutcome fast = runFast(ctxs, "gshare", cfg);
        expectEquivalent(runReference(ctxs, "gshare", cfg), fast);

        std::uint64_t hits = 0, misses = 0;
        for (const EngineStats &s : fast.stats) {
            hits += s.rasHits;
            misses += s.rasMisses;
        }
        EXPECT_GT(hits, 0u);
        if (shared)
            EXPECT_GT(misses, 0u)
                << "interleaving through one RAS must split "
                   "call/return pairs";
        else
            EXPECT_EQ(misses, 0u)
                << "a private RAS never misses on well-nested code";
    }
}

// ---------------------------------------------------------------------
// Sweep integration: unsupported combinations fail with typed
// errors; supported multi-context cells are byte-identical between
// the fast and reference strategies; a contexts == 1 spec keeps the
// historical fingerprint no matter what the other context knobs say.

RunSpec
multiCtxSpec(unsigned contexts, bool shared, bool fast)
{
    RunSpec spec;
    spec.workload = "interp";
    spec.engine.useSfpf = true;
    spec.engine.usePgu = true;
    spec.maxInsts = 15000;
    spec.fastReplay = fast;
    spec.captureMetrics = true;
    spec.context.contexts = contexts;
    spec.context.schedule = ScheduleKind::Bursty;
    spec.context.quantum = 128;
    spec.context.shared = shared;
    spec.context.tagBits = shared ? 0u : 1u;
    return spec;
}

TEST(MultiCtxSweep, RejectsCheckpointResumeAndTimedCells)
{
    SweepRunner runner(SweepRunner::Config{1, 0});

    RunSpec ckpt = multiCtxSpec(2, true, true);
    ckpt.checkpointEvery = 5000;
    EXPECT_EQ(runner.runOne(ckpt).status.code(),
              StatusCode::InvalidArgument);

    RunSpec resume = multiCtxSpec(2, true, true);
    resume.resumePath = "pabp.ckpt";
    EXPECT_EQ(runner.runOne(resume).status.code(),
              StatusCode::InvalidArgument);

    RunSpec timed = multiCtxSpec(2, true, true);
    timed.mode = RunMode::Timed;
    EXPECT_EQ(runner.runOne(timed).status.code(),
              StatusCode::InvalidArgument);
}

TEST(MultiCtxSweep, FastAndReferenceCellsAreByteIdentical)
{
    for (unsigned n : {2u, 4u}) {
        for (bool shared : {true, false}) {
            SCOPED_TRACE("n" + std::to_string(n) +
                         (shared ? "/shared" : "/part"));
            RunSpec fast = multiCtxSpec(n, shared, true);
            RunSpec ref = multiCtxSpec(n, shared, false);
            ASSERT_EQ(bench::specFingerprint(fast),
                      bench::specFingerprint(ref));

            SweepRunner runner(SweepRunner::Config{1, 0});
            RunResult fr = runner.runOne(fast);
            RunResult rr = runner.runOne(ref);
            ASSERT_TRUE(fr.status.ok()) << fr.status.toString();
            ASSERT_TRUE(rr.status.ok()) << rr.status.toString();

            EXPECT_EQ(fr.engine, rr.engine);
            EXPECT_EQ(fr.pguBits, rr.pguBits);
            ASSERT_EQ(fr.contexts.size(), n);
            ASSERT_EQ(rr.contexts.size(), n);
            for (unsigned c = 0; c < n; ++c) {
                SCOPED_TRACE("context " + std::to_string(c));
                EXPECT_EQ(fr.contexts[c].engine,
                          rr.contexts[c].engine);
                EXPECT_EQ(fr.contexts[c].profile,
                          rr.contexts[c].profile);
                EXPECT_EQ(fr.contexts[c].pguBits,
                          rr.contexts[c].pguBits);
                EXPECT_GT(fr.contexts[c].engine.all.branches, 0u);
            }
            EXPECT_FALSE(fr.metricsJson.empty());
            EXPECT_EQ(fr.metricsJson, rr.metricsJson);
        }
    }
}

TEST(MultiCtxSweep, SingleContextSpecKeepsHistoricalFingerprint)
{
    RunSpec plain;
    plain.workload = "interp";

    RunSpec tuned = plain;
    tuned.context.quantum = 7;
    tuned.context.schedule = ScheduleKind::Bursty;
    tuned.context.tagBits = 3;
    // contexts == 1: the cell runs the ordinary single-stream loop,
    // so the context knobs must not perturb the fingerprint (old
    // metrics filenames and checkpoint names stay valid).
    EXPECT_EQ(bench::specFingerprint(plain),
              bench::specFingerprint(tuned));

    RunSpec multi = plain;
    multi.context.contexts = 2;
    EXPECT_NE(bench::specFingerprint(plain),
              bench::specFingerprint(multi));
}

} // namespace
} // namespace pabp
