/**
 * @file
 * Checkpoint/resume tests. The load-bearing property: a run split by
 * a mid-stream checkpoint + resume into freshly-constructed objects
 * must produce *bit-identical* EngineStats to the uninterrupted run,
 * for every predictor whose state travels in the checkpoint. Plus
 * the artifact-level guarantees: atomic write-then-rename, typed
 * errors on damage, and configuration-mismatch detection.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>

#include "bpred/factory.hh"
#include "core/checkpoint.hh"
#include "core/engine.hh"
#include "sim/trace_io.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

std::string
tempPath(const std::string &name)
{
    // Tests run as parallel ctest processes sharing TempDir; the
    // test name keeps their scratch files from colliding. Value-
    // parameterized names contain '/', which must not become a
    // directory separator.
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string tag = info->name();
    for (char &c : tag)
        if (c == '/')
            c = '_';
    return ::testing::TempDir() + tag + "_" + name;
}

RecordedTrace
recordWorkload(const std::string &name, std::uint64_t steps)
{
    Workload wl = makeWorkload(name, 77);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    return recordTrace(emu, steps);
}

EngineConfig
fullConfig()
{
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.usePgu = true;
    ecfg.useSpeculativeSquash = true;
    return ecfg;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

/** Replay split at @p cut with a checkpoint round trip through disk
 *  must equal the uninterrupted replay, bit for bit. */
class CheckpointEquivalence
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(CheckpointEquivalence, SplitReplayReproducesStatsExactly)
{
    const std::string kind = GetParam();
    constexpr std::uint64_t steps = 120000;
    constexpr std::uint64_t cut = 50001; // deliberately unaligned
    RecordedTrace trace = recordWorkload("interp", steps);
    EngineConfig ecfg = fullConfig();

    // Uninterrupted reference run.
    PredictorPtr ref_pred = makePredictor(kind, 10);
    PredictionEngine ref(*ref_pred, ecfg);
    replayTrace(trace, ref, trace.size());

    // First half, then checkpoint engine + replay cursor.
    std::string path = tempPath("pabp_ckpt_" + kind + ".ckpt");
    {
        PredictorPtr pred = makePredictor(kind, 10);
        PredictionEngine engine(*pred, ecfg);
        std::uint64_t pos = replayTraceFrom(trace, engine, 0, cut);
        CheckpointRefs refs{nullptr, &engine, &pos};
        ASSERT_TRUE(saveCheckpoint(path, refs).ok());
    }

    // Fresh objects, resume, finish.
    PredictorPtr pred = makePredictor(kind, 10);
    PredictionEngine resumed(*pred, ecfg);
    std::uint64_t pos = 0;
    CheckpointRefs refs{nullptr, &resumed, &pos};
    Status status = loadCheckpoint(path, refs);
    ASSERT_TRUE(status.ok()) << status.toString();
    EXPECT_EQ(pos, cut);
    replayTraceFrom(trace, resumed, pos, trace.size());

    EXPECT_EQ(ref.stats(), resumed.stats());
    EXPECT_EQ(ref.pguBitsInserted(), resumed.pguBitsInserted());
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Suite, CheckpointEquivalence,
                         ::testing::Values("bimodal", "gshare", "gag",
                                           "local", "yags", "agree",
                                           "perceptron", "comb",
                                           "static-taken"));

TEST(Checkpoint, SplitLiveRunReproducesStatsExactly)
{
    constexpr std::uint64_t steps = 150000;
    constexpr std::uint64_t cut = 60007;
    Workload wl = makeWorkload("bsearch", 77);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    EngineConfig ecfg = fullConfig();

    // Uninterrupted reference run.
    PredictorPtr ref_pred = makePredictor("gshare", 12);
    PredictionEngine ref(*ref_pred, ecfg);
    Emulator ref_emu(cp.prog);
    if (wl.init)
        wl.init(ref_emu.state());
    runTrace(ref_emu, ref, steps);

    // Interrupted run: emulator position + architectural state travel
    // in the checkpoint alongside the engine.
    std::string path = tempPath("pabp_ckpt_live.ckpt");
    {
        PredictorPtr pred = makePredictor("gshare", 12);
        PredictionEngine engine(*pred, ecfg);
        Emulator emu(cp.prog);
        if (wl.init)
            wl.init(emu.state());
        runTrace(emu, engine, cut);
        CheckpointRefs refs{&emu, &engine, nullptr};
        ASSERT_TRUE(saveCheckpoint(path, refs).ok());
    }

    PredictorPtr pred = makePredictor("gshare", 12);
    PredictionEngine resumed(*pred, ecfg);
    Emulator emu(cp.prog); // fresh, *without* workload init
    CheckpointRefs refs{&emu, &resumed, nullptr};
    Status status = loadCheckpoint(path, refs);
    ASSERT_TRUE(status.ok()) << status.toString();
    EXPECT_EQ(emu.instsExecuted(), cut);
    runTrace(emu, resumed, steps - cut);

    EXPECT_EQ(ref.stats(), resumed.stats());
    EXPECT_EQ(ref_emu.instsExecuted(), emu.instsExecuted());
    std::remove(path.c_str());
}

TEST(Checkpoint, SaveLeavesNoTempFileBehind)
{
    PredictorPtr pred = makePredictor("gshare", 10);
    PredictionEngine engine(*pred, EngineConfig{});
    std::string path = tempPath("pabp_ckpt_tmp.ckpt");
    CheckpointRefs refs{nullptr, &engine, nullptr};
    ASSERT_TRUE(saveCheckpoint(path, refs).ok());
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsTypedError)
{
    PredictorPtr pred = makePredictor("gshare", 10);
    PredictionEngine engine(*pred, EngineConfig{});
    CheckpointRefs refs{nullptr, &engine, nullptr};
    Status status =
        loadCheckpoint(tempPath("pabp_no_such.ckpt"), refs);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::IoError);
}

class CheckpointArtifact : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        pred = makePredictor("gshare", 10);
        engine =
            std::make_unique<PredictionEngine>(*pred, EngineConfig{});
        path = tempPath("pabp_ckpt_artifact.ckpt");
        pos = 1234;
        CheckpointRefs refs{nullptr, engine.get(), &pos};
        ASSERT_TRUE(saveCheckpoint(path, refs).ok());
        bytes = readFileBytes(path);
        ASSERT_GT(bytes.size(), 24u);
    }

    void TearDown() override { std::remove(path.c_str()); }

    Status
    loadBytes(const std::string &damaged)
    {
        writeFileBytes(path, damaged);
        PredictorPtr p2 = makePredictor("gshare", 10);
        PredictionEngine e2(*p2, EngineConfig{});
        std::uint64_t pos2 = 0;
        CheckpointRefs refs{nullptr, &e2, &pos2};
        return loadCheckpoint(path, refs);
    }

    PredictorPtr pred;
    std::unique_ptr<PredictionEngine> engine;
    std::string path;
    std::uint64_t pos = 0;
    std::string bytes;
};

TEST_F(CheckpointArtifact, BadMagicIsTyped)
{
    std::string damaged = bytes;
    damaged[0] = 'X';
    Status status = loadBytes(damaged);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::BadMagic);
}

TEST_F(CheckpointArtifact, PayloadCorruptionFailsChecksum)
{
    std::string damaged = bytes;
    damaged[damaged.size() / 2] ^= 0x20;
    Status status = loadBytes(damaged);
    ASSERT_FALSE(status.ok());
    // The flipped byte usually trips the CRC; if it lands in a
    // length/geometry field a typed structural error fires first.
    EXPECT_NE(status.code(), StatusCode::Ok);
}

TEST_F(CheckpointArtifact, TruncationIsTyped)
{
    Status status = loadBytes(bytes.substr(0, bytes.size() / 3));
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::Truncated);
}

TEST_F(CheckpointArtifact, SectionMismatchIsTyped)
{
    // Saved with engine + streamPos; ask back emulator-free subset.
    writeFileBytes(path, bytes);
    PredictorPtr p2 = makePredictor("gshare", 10);
    PredictionEngine e2(*p2, EngineConfig{});
    CheckpointRefs refs{nullptr, &e2, nullptr};
    Status status = loadCheckpoint(path, refs);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::InvalidArgument);
}

TEST_F(CheckpointArtifact, EngineConfigMismatchIsTyped)
{
    writeFileBytes(path, bytes);
    PredictorPtr p2 = makePredictor("gshare", 10);
    EngineConfig other;
    other.useSfpf = true; // artifact was saved with useSfpf = false
    PredictionEngine e2(*p2, other);
    std::uint64_t pos2 = 0;
    CheckpointRefs refs{nullptr, &e2, &pos2};
    Status status = loadCheckpoint(path, refs);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::InvalidArgument);
}

TEST_F(CheckpointArtifact, PredictorMismatchIsTyped)
{
    writeFileBytes(path, bytes);
    PredictorPtr p2 = makePredictor("yags", 10);
    PredictionEngine e2(*p2, EngineConfig{});
    std::uint64_t pos2 = 0;
    CheckpointRefs refs{nullptr, &e2, &pos2};
    Status status = loadCheckpoint(path, refs);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::InvalidArgument);
}

TEST_F(CheckpointArtifact, PredictorGeometryMismatchIsTyped)
{
    writeFileBytes(path, bytes);
    PredictorPtr p2 = makePredictor("gshare", 12); // bigger table
    PredictionEngine e2(*p2, EngineConfig{});
    std::uint64_t pos2 = 0;
    CheckpointRefs refs{nullptr, &e2, &pos2};
    Status status = loadCheckpoint(path, refs);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::InvalidArgument);
}

} // namespace
} // namespace pabp
