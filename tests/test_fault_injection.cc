/**
 * @file
 * Fault-injection sweeps over the hardened readers. The contract
 * under test is absolute: *every* deterministically injected fault -
 * bit flips at every region of the artifact, truncation at every
 * prefix length, hard I/O failure at every offset stride - must
 * surface as a typed Status (or, in salvage mode, as a successful
 * prefix recovery), and never as a process abort. The sweep runs in
 * the test process itself: an abort anywhere kills the test run,
 * which is exactly the detection we want.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "bpred/factory.hh"
#include "core/checkpoint.hh"
#include "core/engine.hh"
#include "sim/trace_io.hh"
#include "util/fault_injection.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

std::string
recordedTraceBytes(std::uint64_t steps)
{
    Workload wl = makeWorkload("dchain", 77);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    RecordedTrace trace = recordTrace(emu, steps);
    std::stringstream buffer;
    writeTrace(trace, buffer);
    return buffer.str();
}

std::string
checkpointBytes()
{
    PredictorPtr pred = makePredictor("gshare", 10);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    PredictionEngine engine(*pred, ecfg);
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string path =
        ::testing::TempDir() + "pabp_" + info->name() + "_src.ckpt";
    std::uint64_t pos = 42;
    CheckpointRefs refs{nullptr, &engine, &pos};
    if (!saveCheckpoint(path, refs).ok())
        return {};
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    return bytes;
}

/** Feed a faulted trace image to the reader; the result must be a
 *  typed error or a clean (possibly salvaged) success. */
std::string
uniqueTempPath(const std::string &suffix)
{
    // Tests run as parallel ctest processes sharing TempDir; the
    // test name keeps their scratch files from colliding.
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string tag = info->name();
    for (char &c : tag)
        if (c == '/')
            c = '_';
    return ::testing::TempDir() + "pabp_" + tag + suffix;
}

void
expectTraceReadIsGraceful(const std::string &bytes,
                          const FaultSpec &spec, bool salvage)
{
    // FaultyStream applies the spec itself (BitFlip/Truncate in the
    // buffer, FailRead at read time).
    FaultyStream faulty(bytes, spec);
    TraceReadOptions opts;
    opts.salvage = salvage;
    TraceReadInfo info;
    Expected<RecordedTrace> loaded =
        readTrace(faulty.stream(), opts, &info);
    if (!loaded.ok()) {
        // Typed, specific error - never the catch-all Ok/Unknown.
        EXPECT_NE(loaded.status().code(), StatusCode::Ok);
        EXPECT_FALSE(loaded.status().message().empty());
    } else if (info.salvaged) {
        EXPECT_LE(loaded.value().size() + info.eventsDropped,
                  bytes.size()); // sanity: bounded by the artifact
    }
}

TEST(FaultInjection, TraceSurvivesBitFlipsEverywhere)
{
    std::string bytes = recordedTraceBytes(9000);
    // Flip a bit in every 97th byte (and each of the first 64 bytes,
    // covering the whole header densely), across all 8 bit positions.
    for (std::size_t off = 0; off < bytes.size();
         off += (off < 64 ? 1 : 97)) {
        expectTraceReadIsGraceful(
            bytes, FaultSpec::bitFlip(off, off % 8), false);
    }
}

TEST(FaultInjection, TraceSurvivesBitFlipsEverywhereWithSalvage)
{
    std::string bytes = recordedTraceBytes(9000);
    for (std::size_t off = 0; off < bytes.size();
         off += (off < 64 ? 1 : 131)) {
        expectTraceReadIsGraceful(
            bytes, FaultSpec::bitFlip(off, (off + 3) % 8), true);
    }
}

TEST(FaultInjection, TraceSurvivesTruncationAtEveryStride)
{
    std::string bytes = recordedTraceBytes(5000);
    for (std::size_t off = 0; off < bytes.size();
         off += (off < 64 ? 1 : 61)) {
        FaultyStream faulty(bytes, FaultSpec::truncate(off));
        Expected<RecordedTrace> loaded = readTrace(faulty.stream());
        ASSERT_FALSE(loaded.ok()) << "cut at " << off;
        EXPECT_EQ(loaded.status().code(), StatusCode::Truncated)
            << "cut at " << off << ": " << loaded.status().toString();
    }
}

TEST(FaultInjection, TraceReportsIoErrorOnHardReadFailure)
{
    std::string bytes = recordedTraceBytes(5000);
    for (std::size_t off = 0; off < bytes.size();
         off += (off < 64 ? 1 : 61)) {
        FaultyStream faulty(bytes, FaultSpec::failRead(off));
        Expected<RecordedTrace> loaded = readTrace(faulty.stream());
        ASSERT_FALSE(loaded.ok()) << "failure at " << off;
        EXPECT_EQ(loaded.status().code(), StatusCode::IoError)
            << "failure at " << off << ": "
            << loaded.status().toString();
    }
}

TEST(FaultInjection, SalvageRecoversPrefixUnderEventDamage)
{
    // Large enough for multiple event blocks; flip a bit well into
    // the event section and salvage.
    std::string bytes = recordedTraceBytes(10000);
    FaultyStream faulty(bytes,
                        FaultSpec::bitFlip(bytes.size() - 2000, 4));
    TraceReadOptions opts;
    opts.salvage = true;
    TraceReadInfo info;
    Expected<RecordedTrace> loaded =
        readTrace(faulty.stream(), opts, &info);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_TRUE(info.salvaged);
    EXPECT_GT(loaded.value().size(), 0u);
    EXPECT_GT(info.eventsDropped, 0u);
}

/** Checkpoint reads go through the same serialisation layer; sweep
 *  the same fault families over loadCheckpoint via a temp file. */
void
expectCheckpointLoadIsGraceful(const std::string &bytes,
                               const FaultSpec &spec)
{
    std::string path = uniqueTempPath("_sweep.ckpt");
    std::string damaged = applyFault(bytes, spec);
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(damaged.data(),
                 static_cast<std::streamsize>(damaged.size()));
    }
    PredictorPtr pred = makePredictor("gshare", 10);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    PredictionEngine engine(*pred, ecfg);
    std::uint64_t pos = 0;
    CheckpointRefs refs{nullptr, &engine, &pos};
    Status status = loadCheckpoint(path, refs);
    if (!status.ok())
        EXPECT_FALSE(status.message().empty());
    std::remove(path.c_str());
}

TEST(FaultInjection, CheckpointSurvivesBitFlipsEverywhere)
{
    std::string bytes = checkpointBytes();
    ASSERT_FALSE(bytes.empty());
    for (std::size_t off = 0; off < bytes.size();
         off += (off < 32 ? 1 : 17)) {
        expectCheckpointLoadIsGraceful(bytes,
                                       FaultSpec::bitFlip(off, off % 8));
    }
}

TEST(FaultInjection, CheckpointSurvivesTruncationAtEveryStride)
{
    std::string bytes = checkpointBytes();
    ASSERT_FALSE(bytes.empty());
    for (std::size_t off = 0; off < bytes.size();
         off += (off < 32 ? 1 : 13)) {
        expectCheckpointLoadIsGraceful(bytes,
                                       FaultSpec::truncate(off));
    }
}

TEST(FaultInjection, ApplyFaultIsDeterministic)
{
    std::string image = "abcdefgh";
    std::string once = applyFault(image, FaultSpec::bitFlip(2, 1));
    std::string twice = applyFault(image, FaultSpec::bitFlip(2, 1));
    EXPECT_EQ(once, twice);
    EXPECT_NE(once, image);
    EXPECT_EQ(applyFault(once, FaultSpec::bitFlip(2, 1)), image);

    EXPECT_EQ(applyFault(image, FaultSpec::truncate(3)), "abc");
    // Past-the-end faults leave the image unchanged.
    EXPECT_EQ(applyFault(image, FaultSpec::bitFlip(99, 0)), image);
    EXPECT_EQ(applyFault(image, FaultSpec::truncate(99)), image);
}

TEST(FaultInjection, FaultyStreamFailsExactlyAtOffset)
{
    FaultyStream faulty("0123456789", FaultSpec::failRead(4));
    char buf[4];
    faulty.stream().read(buf, 4);
    EXPECT_EQ(faulty.stream().gcount(), 4);
    EXPECT_FALSE(faulty.stream().bad());
    faulty.stream().read(buf, 1);
    EXPECT_TRUE(faulty.stream().bad());
}

} // namespace
} // namespace pabp
