/**
 * @file
 * Unit tests for the util library: RNG, saturating counters, stats,
 * tables, options.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/options.hh"
#include "util/rng.hh"
#include "util/sat_counter.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace pabp {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedRemapped)
{
    Rng z(0);
    EXPECT_NE(z.next(), 0u); // state must never be stuck at zero
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(SatCounter, DefaultsWeaklyNotTaken)
{
    SatCounter c(2);
    EXPECT_EQ(c.raw(), 1u);
    EXPECT_FALSE(c.predictTaken());
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.raw(), 3u);
    EXPECT_TRUE(c.isSaturated());
    EXPECT_TRUE(c.predictTaken());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.raw(), 0u);
    EXPECT_TRUE(c.isSaturated());
    EXPECT_FALSE(c.predictTaken());
}

TEST(SatCounter, HysteresisNeedsTwoFlips)
{
    SatCounter c(2, 3); // strongly taken
    c.update(false);
    EXPECT_TRUE(c.predictTaken()); // still taken after one miss
    c.update(false);
    EXPECT_FALSE(c.predictTaken());
}

class SatCounterWidth : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SatCounterWidth, MsbRuleThreshold)
{
    unsigned bits = GetParam();
    unsigned max = (1u << bits) - 1;
    for (unsigned v = 0; v <= max; ++v) {
        SatCounter c(bits, static_cast<int>(v));
        EXPECT_EQ(c.predictTaken(), v >= (max + 1) / 2)
            << "bits=" << bits << " v=" << v;
    }
}

TEST_P(SatCounterWidth, IncrementReachesMaxExactly)
{
    unsigned bits = GetParam();
    SatCounter c(bits, 0);
    unsigned max = (1u << bits) - 1;
    for (unsigned i = 0; i < max; ++i)
        c.increment();
    EXPECT_EQ(c.raw(), max);
    c.increment();
    EXPECT_EQ(c.raw(), max);
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(40); // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 9 + 10 + 39 + 40) / 5.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(2, 1);
    h.sample(0);
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflowCount(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatGroup, ScalarLifecycle)
{
    StatGroup g;
    ++g.scalar("a.b");
    g.scalar("a.b") += 4;
    EXPECT_EQ(g.value("a.b"), 5u);
    EXPECT_EQ(g.value("missing"), 0u);
    g.reset();
    EXPECT_EQ(g.value("a.b"), 0u);
}

TEST(StatGroup, RatioHandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(StatGroup::ratio(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(StatGroup::ratio(1, 4), 0.25);
}

TEST(StatGroup, PrintSortedByName)
{
    StatGroup g;
    ++g.scalar("z");
    ++g.scalar("a");
    std::ostringstream os;
    g.print(os);
    EXPECT_EQ(os.str(), "a 1\nz 1\n");
}

TEST(Table, AlignedPrint)
{
    Table t({"name", "value"});
    t.startRow();
    t.cell("x");
    t.cell(std::uint64_t{7});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| x"), std::string::npos);
    EXPECT_EQ(t.at(0, 1), "7");
}

TEST(Table, NumericFormatting)
{
    Table t({"a", "b"});
    t.startRow();
    t.cell(0.12345, 3);
    t.percentCell(0.125);
    EXPECT_EQ(t.at(0, 0), "0.123");
    EXPECT_EQ(t.at(0, 1), "12.50%");
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.startRow();
    t.cell("1");
    t.cell("2");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Options, DefaultsAndOverrides)
{
    Options o;
    o.declare("steps", "100", "run length");
    o.declare("name", "gshare", "predictor");
    const char *argv[] = {"prog", "--steps=250"};
    ASSERT_TRUE(o.parse(2, argv));
    EXPECT_EQ(o.integer("steps"), 250);
    EXPECT_EQ(o.str("name"), "gshare");
}

TEST(Options, SpaceSeparatedValue)
{
    Options o;
    o.declare("k", "1", "k");
    const char *argv[] = {"prog", "--k", "9"};
    ASSERT_TRUE(o.parse(3, argv));
    EXPECT_EQ(o.integer("k"), 9);
}

TEST(Options, HelpReturnsFalse)
{
    Options o;
    o.declare("k", "1", "k");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(o.parse(2, argv));
}

TEST(Options, FlagAndRealParsing)
{
    Options o;
    o.declare("csv", "0", "emit csv");
    o.declare("ratio", "0.5", "a ratio");
    const char *argv[] = {"prog", "--csv", "--ratio=0.25"};
    ASSERT_TRUE(o.parse(3, argv));
    EXPECT_TRUE(o.flag("csv"));
    EXPECT_DOUBLE_EQ(o.real("ratio"), 0.25);
}

} // namespace
} // namespace pabp
