/**
 * @file
 * Error-path tests, on both sides of the recoverable/fatal split:
 * the panic/fatal discipline (gem5-style - panic for internal
 * invariants, fatal at CLI shims) must actually fire on the
 * documented conditions, while the library-level try* surfaces must
 * return typed Status values instead of terminating.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bpred/factory.hh"
#include "isa/program.hh"
#include "sim/trace_io.hh"
#include "util/options.hh"
#include "util/sat_counter.hh"

namespace pabp {
namespace {

using ::testing::ExitedWithCode;
using ::testing::KilledBySignal;

TEST(ErrorPaths, EncodeRejectsOutOfRangeField)
{
    Inst inst = makeMovImm(1, 0);
    inst.qp = 200; // beyond the 6-bit encoding space
    EXPECT_DEATH((void)encode(inst), "assertion failed");
}

TEST(ErrorPaths, DecodeRejectsInvalidOpcode)
{
    EncodedInst enc;
    enc.word0 = 0xff; // opcode field beyond NumOpcodes
    EXPECT_DEATH((void)decode(enc), "invalid opcode");
}

TEST(ErrorPaths, UnknownPredictorIsFatal)
{
    EXPECT_EXIT((void)makePredictor("oracle", 10), ExitedWithCode(1),
                "unknown predictor kind");
}

TEST(ErrorPaths, UnknownOptionIsFatal)
{
    Options opts;
    opts.declare("steps", "1", "steps");
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT((void)opts.parse(2, argv), ExitedWithCode(1),
                "unknown option");
}

TEST(ErrorPaths, UndeclaredOptionQueryIsFatal)
{
    Options opts;
    EXPECT_EXIT((void)opts.str("nope"), ExitedWithCode(1),
                "undeclared option");
}

TEST(ErrorPaths, SatCounterWidthAsserted)
{
    EXPECT_DEATH(SatCounter c(0), "assertion failed");
    EXPECT_DEATH(SatCounter c(9), "assertion failed");
}

// Regression: the seed's trace reader called pabp_panic on a short
// read, so a truncated *user-supplied* file took the process down.
// Truncation is environmental, not an internal invariant; it must
// surface as StatusCode::Truncated through the recoverable API.
TEST(ErrorPaths, TruncatedTraceIsRecoverableNotPanic)
{
    std::string bytes("PABPTRC1\x05", 9); // magic + partial count
    std::istringstream is(bytes);
    Expected<RecordedTrace> loaded = readTrace(is);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::Truncated);
}

TEST(ErrorPaths, UnknownPredictorIsTypedViaTryFactory)
{
    Expected<PredictorPtr> made = tryMakePredictor("oracle", 10);
    ASSERT_FALSE(made.ok());
    EXPECT_EQ(made.status().code(), StatusCode::NotFound);
}

TEST(ErrorPaths, UnknownOptionIsTypedViaTryParse)
{
    Options opts;
    opts.declare("steps", "1", "steps");
    const char *argv[] = {"prog", "--bogus=1"};
    bool help = false;
    Status status = opts.tryParse(2, argv, help);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::InvalidArgument);
}

TEST(ErrorPaths, TryDecodeRejectsInvalidEncodingWithoutPanic)
{
    EncodedInst enc;
    enc.word0 = 0xff; // opcode field beyond NumOpcodes
    EXPECT_FALSE(tryDecode(enc).has_value());
}

} // namespace
} // namespace pabp
