/**
 * @file
 * Error-path tests: the panic/fatal discipline (gem5-style - panic
 * for internal invariants, fatal for user errors) must actually fire
 * on the documented conditions.
 */

#include <gtest/gtest.h>

#include "bpred/factory.hh"
#include "isa/program.hh"
#include "util/options.hh"
#include "util/sat_counter.hh"

namespace pabp {
namespace {

using ::testing::ExitedWithCode;
using ::testing::KilledBySignal;

TEST(ErrorPaths, EncodeRejectsOutOfRangeField)
{
    Inst inst = makeMovImm(1, 0);
    inst.qp = 200; // beyond the 6-bit encoding space
    EXPECT_DEATH((void)encode(inst), "assertion failed");
}

TEST(ErrorPaths, DecodeRejectsInvalidOpcode)
{
    EncodedInst enc;
    enc.word0 = 0xff; // opcode field beyond NumOpcodes
    EXPECT_DEATH((void)decode(enc), "invalid opcode");
}

TEST(ErrorPaths, UnknownPredictorIsFatal)
{
    EXPECT_EXIT((void)makePredictor("oracle", 10), ExitedWithCode(1),
                "unknown predictor kind");
}

TEST(ErrorPaths, UnknownOptionIsFatal)
{
    Options opts;
    opts.declare("steps", "1", "steps");
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT((void)opts.parse(2, argv), ExitedWithCode(1),
                "unknown option");
}

TEST(ErrorPaths, UndeclaredOptionQueryIsFatal)
{
    Options opts;
    EXPECT_EXIT((void)opts.str("nope"), ExitedWithCode(1),
                "undeclared option");
}

TEST(ErrorPaths, SatCounterWidthAsserted)
{
    EXPECT_DEATH(SatCounter c(0), "assertion failed");
    EXPECT_DEATH(SatCounter c(9), "assertion failed");
}

} // namespace
} // namespace pabp
