/**
 * @file
 * H2P tiering tests (core/h2p.hh): cumulative-share classification,
 * variant re-aggregation over baseline tiers, and the exported
 * metric names documented in docs/OBSERVABILITY.md.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/h2p.hh"

namespace pabp {
namespace {

/** Baseline with a textbook skew: one branch owns 60% of the
 *  mispredicts, the next two reach 90%, the tail barely misses. */
BranchProfile
skewedBaseline()
{
    BranchProfile profile;
    auto set = [&](std::uint32_t pc, std::uint64_t lookups,
                   std::uint64_t misp) {
        BranchProfile::Counters &c = profile.at(pc);
        c.lookups = lookups;
        c.mispredicts = misp;
    };
    set(0x100, 10000, 600);
    set(0x200, 8000, 200);
    set(0x300, 6000, 100);
    set(0x400, 4000, 60);
    set(0x500, 2000, 40);
    set(0x600, 9000, 0);
    return profile;
}

TEST(H2p, ClassifiesByCumulativeShare)
{
    const H2pClassification cls =
        classifyH2p(skewedBaseline()).value();
    ASSERT_EQ(cls.numTiers(), 3u);
    EXPECT_EQ(cls.trackedMispredicts, 1000u);

    // 0x100 alone reaches the 50% cutoff; 0x200+0x300 extend to 90%.
    EXPECT_EQ(cls.tierOf.at(0x100), 0u);
    EXPECT_EQ(cls.tierOf.at(0x200), 1u);
    EXPECT_EQ(cls.tierOf.at(0x300), 1u);
    EXPECT_EQ(cls.tierOf.at(0x400), 2u);
    EXPECT_EQ(cls.tierOf.at(0x500), 2u);
    // Zero-mispredict branches are never "hard" regardless of where
    // the cutoffs landed.
    EXPECT_EQ(cls.tierOf.at(0x600), 2u);

    EXPECT_EQ(cls.tierBranches[0], 1u);
    EXPECT_EQ(cls.tierBranches[1], 2u);
    EXPECT_EQ(cls.tierBranches[2], 3u);
    EXPECT_EQ(cls.tierMispredicts[0], 600u);
    EXPECT_EQ(cls.tierMispredicts[1], 300u);
    EXPECT_EQ(cls.tierMispredicts[2], 100u);
}

TEST(H2p, ZeroMispredictBaselineGoesToLastTier)
{
    BranchProfile profile;
    profile.at(0x10).lookups = 50;
    profile.at(0x20).lookups = 50;
    const H2pClassification cls = classifyH2p(profile).value();
    EXPECT_EQ(cls.trackedMispredicts, 0u);
    EXPECT_EQ(cls.tierOf.at(0x10), 2u);
    EXPECT_EQ(cls.tierOf.at(0x20), 2u);
}

TEST(H2p, AggregateTracksMissingPcsViaMatchedBranches)
{
    const H2pClassification cls =
        classifyH2p(skewedBaseline()).value();

    BranchProfile variant;
    variant.at(0x100).mispredicts = 400; // improved
    variant.at(0x100).lookups = 10000;
    variant.at(0x200).mispredicts = 210; // slightly worse
    variant.at(0x200).lookups = 8000;
    // 0x300 evicted in the variant run - contributes nothing.

    const auto tiers = aggregateByTier(cls, variant);
    ASSERT_EQ(tiers.size(), 3u);
    EXPECT_EQ(tiers[0].mispredicts, 400u);
    EXPECT_EQ(tiers[0].matchedBranches, 1u);
    EXPECT_EQ(tiers[1].mispredicts, 210u);
    EXPECT_EQ(tiers[1].matchedBranches, 1u);
    EXPECT_EQ(tiers[2].matchedBranches, 0u);
}

TEST(H2p, ExportsDocumentedMetricNames)
{
    const H2pClassification cls =
        classifyH2p(skewedBaseline()).value();
    BranchProfile variant = skewedBaseline();
    variant.at(0x100).mispredicts = 500;
    const auto tiers = aggregateByTier(cls, variant);

    MetricsExporter ex;
    exportH2pClassification(ex, cls, "h2p.wl");
    exportH2pVariant(ex, "both", cls, tiers, "h2p.wl");
    std::ostringstream os;
    ex.writeJson(os);
    const std::string json = os.str();

    for (const char *key :
         {"\"h2p.wl.tiers\": 3",
          "\"h2p.wl.tier0.static_branches\": 1",
          "\"h2p.wl.tier0.baseline_mispredicts\": 600",
          "\"h2p.wl.both.tier0.mispredicts\": 500",
          "\"h2p.wl.both.tier0.mispredict_delta\": -100",
          "\"h2p.wl.both.tier0.matched_branches\": 1"})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(H2p, BadCutoffsAreTypedErrorsNotFatal)
{
    // A typo'd --h2p-cutoffs must fail its cell with a typed status,
    // never abort the sweep process.
    const auto out_of_range =
        classifyH2p(skewedBaseline(), {0.5, 1.5});
    ASSERT_FALSE(out_of_range.ok());
    EXPECT_EQ(out_of_range.status().code(),
              StatusCode::InvalidArgument);

    const auto not_increasing =
        classifyH2p(skewedBaseline(), {0.9, 0.5});
    ASSERT_FALSE(not_increasing.ok());
    EXPECT_EQ(not_increasing.status().code(),
              StatusCode::InvalidArgument);

    const auto zero = classifyH2p(skewedBaseline(), {0.0});
    ASSERT_FALSE(zero.ok());
    EXPECT_EQ(zero.status().code(), StatusCode::InvalidArgument);
}

TEST(H2p, EvictedRemainderIsReportedNotTiered)
{
    BranchProfile profile(2); // capacity 2 forces eviction
    for (std::uint32_t pc = 0; pc < 8; ++pc) {
        BranchProfile::Counters &c = profile.at(pc * 4);
        c.lookups = 100;
        c.mispredicts = 10 + pc;
    }
    const H2pClassification cls = classifyH2p(profile).value();
    EXPECT_EQ(cls.tierOf.size(), profile.entries().size());
    EXPECT_EQ(cls.evictedMispredicts,
              profile.evictedRemainder().mispredicts);
    EXPECT_GT(cls.evictedMispredicts, 0u);
}

} // namespace
} // namespace pabp
