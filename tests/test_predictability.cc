/**
 * @file
 * Property tests for the predictability analyzer
 * (core/predictability.hh). The entropy estimator is pinned against
 * analytic generators whose conditional entropies are known in
 * closed form - made EXACT (not approximate) by the analyzer's
 * warm-up rule: the first k occurrences of a PC never enter the
 * k-conditioned table, so a fully-determined sequence really reports
 * H == 0.0, with no cold-start residue. Also covers the bounded-table
 * eviction remainders and the trace-level characterization fronts.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/predictability.hh"
#include "sim/decoded_trace.hh"
#include "sim/emulator.hh"
#include "sim/trace_io.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

constexpr std::uint32_t kPc = 0x40;

/** Deterministic splitmix-style bit source for the fair-coin pin. */
std::uint64_t
mixBits(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

PredictabilityReport
reportFor(const std::vector<bool> &outcomes,
          PredictabilityConfig cfg = {})
{
    PredictabilityAnalyzer an(cfg);
    for (bool taken : outcomes)
        an.observe(kPc, taken);
    return an.report();
}

// ---------------------------------------------------------------------
// Analytic entropy pins.

TEST(PredictabilityEntropy, AlwaysTakenIsZeroAtEveryK)
{
    std::vector<bool> outcomes(4096, true);
    const PredictabilityReport rep = reportFor(outcomes);

    EXPECT_EQ(rep.occurrences, 4096u);
    EXPECT_DOUBLE_EQ(rep.takenRate(), 1.0);
    EXPECT_DOUBLE_EQ(rep.transitionRate(), 0.0);
    ASSERT_EQ(rep.entropy.size(), 4u);
    for (double h : rep.entropy)
        EXPECT_DOUBLE_EQ(h, 0.0);
    // Warm-up accounting: the k-table only sees occurrences k..N-1.
    ASSERT_EQ(rep.conditioned.size(), 4u);
    EXPECT_EQ(rep.conditioned[0], 4096u);
    EXPECT_EQ(rep.conditioned[1], 4092u);
    EXPECT_EQ(rep.conditioned[2], 4088u);
    EXPECT_EQ(rep.conditioned[3], 4080u);
}

TEST(PredictabilityEntropy, FairCoinApproachesOneBit)
{
    std::vector<bool> outcomes;
    for (std::uint64_t i = 0; i < (1u << 15); ++i)
        outcomes.push_back((mixBits(i) & 1) != 0);
    const PredictabilityReport rep = reportFor(outcomes);

    EXPECT_NEAR(rep.takenRate(), 0.5, 0.02);
    EXPECT_NEAR(rep.transitionRate(), 0.5, 0.02);
    // Unconditioned and lightly-conditioned entropy sit at ~1 bit;
    // history carries no information about an independent coin.
    EXPECT_GT(rep.entropy[0], 0.99);
    EXPECT_LE(rep.entropy[0], 1.0);
    EXPECT_GT(rep.entropy[1], 0.99); // k=4: 2048 samples/pattern
    EXPECT_GT(rep.entropy[2], 0.95); // k=8: ~128 samples/pattern
    // k=16 is deliberately NOT pinned near 1: with 2^15 samples over
    // 2^16 patterns the empirical estimator overfits toward 0. That
    // bias is a property of frequentist conditional entropy, not a
    // bug, and the docs call it out.
}

TEST(PredictabilityEntropy, AlternatorResolvesAtAnyPositiveK)
{
    std::vector<bool> outcomes;
    for (int i = 0; i < 4096; ++i)
        outcomes.push_back(i % 2 == 0);
    const PredictabilityReport rep = reportFor(outcomes);

    // Equal taken/not-taken counts: exactly one bit unconditioned.
    EXPECT_DOUBLE_EQ(rep.entropy[0], 1.0);
    EXPECT_DOUBLE_EQ(rep.takenRate(), 0.5);
    // Every outcome differs from its predecessor except the first.
    EXPECT_EQ(rep.transitions, 4095u);
    // One previous outcome fully determines the next - EXACTLY zero,
    // thanks to the warm-up rule.
    EXPECT_DOUBLE_EQ(rep.entropy[1], 0.0);
    EXPECT_DOUBLE_EQ(rep.entropy[2], 0.0);
    EXPECT_DOUBLE_EQ(rep.entropy[3], 0.0);
}

TEST(PredictabilityEntropy, PeriodEightPatternResolvesOnlyAtDeepK)
{
    // Period-8 pattern chosen so one 4-bit history window occurs at
    // two phases with DIFFERENT successors (0,1,0,1 -> 0 at one
    // phase, -> 1 at another): a 4-bit history cannot fully resolve
    // it, an 8-bit history pins the phase and resolves everything.
    const bool base[8] = {true, true, false, false,
                          true, false, true, false};
    std::vector<bool> outcomes;
    for (int i = 0; i < 8 * 512; ++i)
        outcomes.push_back(base[i % 8]);
    const PredictabilityReport rep = reportFor(outcomes);

    EXPECT_DOUBLE_EQ(rep.entropy[0], 1.0); // four of eight taken
    EXPECT_GT(rep.entropy[1], 0.2);        // k=4: ambiguous window
    EXPECT_LT(rep.entropy[1], 0.3);
    EXPECT_DOUBLE_EQ(rep.entropy[2], 0.0); // k=8 resolves - exactly
    EXPECT_DOUBLE_EQ(rep.entropy[3], 0.0); // deeper stays resolved
}

TEST(PredictabilityEntropy, BinaryEntropyEndpoints)
{
    EXPECT_DOUBLE_EQ(binaryEntropy(0.0), 0.0);
    EXPECT_DOUBLE_EQ(binaryEntropy(1.0), 0.0);
    EXPECT_DOUBLE_EQ(binaryEntropy(0.5), 1.0);
    EXPECT_NEAR(binaryEntropy(0.25), 0.811278, 1e-6);
    EXPECT_DOUBLE_EQ(binaryEntropy(0.25), binaryEntropy(0.75));
}

// ---------------------------------------------------------------------
// Bounded tables: deterministic eviction, explicit remainders.

TEST(PredictabilityEviction, PcFoldKeepsTotalsExact)
{
    PredictabilityConfig cfg;
    cfg.pcCapacity = 2;
    PredictabilityAnalyzer an(cfg);
    // 0x10: 8 occurrences, 0x20: 4, 0x30 arrives at capacity and
    // evicts the least-observed tracked PC (0x20).
    for (int i = 0; i < 8; ++i)
        an.observe(0x10, true);
    for (int i = 0; i < 4; ++i)
        an.observe(0x20, i % 2 == 0);
    for (int i = 0; i < 6; ++i)
        an.observe(0x30, false);

    const PredictabilityReport rep = an.report();
    EXPECT_EQ(rep.perPc.size(), 2u);
    EXPECT_TRUE(rep.perPc.count(0x10));
    EXPECT_TRUE(rep.perPc.count(0x30));
    EXPECT_EQ(rep.evictedBranches, 1u);
    EXPECT_EQ(rep.evictedOccurrences, 4u);
    // Whole-trace totals never lose the folded PC's outcomes.
    EXPECT_EQ(rep.occurrences, 18u);
    EXPECT_EQ(rep.taken, 8u + 2u);
    EXPECT_DOUBLE_EQ(rep.takenRate(), 10.0 / 18.0);
}

TEST(PredictabilityEviction, PcFoldBreaksTiesTowardHighestPc)
{
    PredictabilityConfig cfg;
    cfg.pcCapacity = 2;
    PredictabilityAnalyzer an(cfg);
    an.observe(0x10, true); // tied at one occurrence each
    an.observe(0x20, true);
    an.observe(0x30, true); // evicts 0x20 (tie -> highest PC)

    const PredictabilityReport rep = an.report();
    EXPECT_TRUE(rep.perPc.count(0x10));
    EXPECT_TRUE(rep.perPc.count(0x30));
    EXPECT_EQ(rep.evictedBranches, 1u);
}

TEST(PredictabilityEviction, PatternFoldCountsRemainder)
{
    PredictabilityConfig cfg;
    cfg.historyLengths = {4};
    cfg.patternCapacity = 2;
    PredictabilityAnalyzer an(cfg);
    // A period-8 pattern visits 8 distinct 4-bit windows; with room
    // for 2 the rest fold into the remainder bucket, but every
    // conditioned outcome is still accounted for.
    const bool base[8] = {true, true, false, false,
                          true, false, true, false};
    for (int i = 0; i < 8 * 64; ++i)
        an.observe(kPc, base[i % 8]);

    const PredictabilityReport rep = an.report();
    EXPECT_GT(rep.evictedPatterns, 0u);
    ASSERT_EQ(rep.conditioned.size(), 1u);
    EXPECT_EQ(rep.conditioned[0], 8u * 64u - 4u);
    // The merged remainder is an upper bound: entropy stays finite
    // and within [0, 1].
    EXPECT_GE(rep.entropy[0], 0.0);
    EXPECT_LE(rep.entropy[0], 1.0);
}

TEST(PredictabilityConfigCheck, RejectsMalformedConfigs)
{
    PredictabilityConfig cfg;
    cfg.historyLengths = {};
    EXPECT_FALSE(PredictabilityAnalyzer::validateConfig(cfg).ok());
    cfg.historyLengths = {0, 4, 4};
    EXPECT_FALSE(PredictabilityAnalyzer::validateConfig(cfg).ok());
    cfg.historyLengths = {0, 32};
    EXPECT_FALSE(PredictabilityAnalyzer::validateConfig(cfg).ok());
    cfg.historyLengths = {0, 4};
    cfg.patternCapacity = 0;
    EXPECT_FALSE(PredictabilityAnalyzer::validateConfig(cfg).ok());
    cfg = PredictabilityConfig{};
    EXPECT_TRUE(PredictabilityAnalyzer::validateConfig(cfg).ok());
}

// ---------------------------------------------------------------------
// Trace-level characterization: both trace representations see the
// same conditional-branch stream.

TEST(PredictabilityTrace, RecordedAndDecodedAgree)
{
    Workload wl = makeWorkload("interp", 42);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    RecordedTrace trace = recordTrace(emu, 30'000);
    DecodedTrace dec = DecodedTrace::build(trace);

    const PredictabilityReport a = characterizeTrace(trace);
    const PredictabilityReport b = characterizeTrace(dec);
    ASSERT_EQ(a.perPc.size(), b.perPc.size());
    EXPECT_EQ(a.occurrences, b.occurrences);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_EQ(a.transitions, b.transitions);
    ASSERT_EQ(a.entropy.size(), b.entropy.size());
    for (std::size_t k = 0; k < a.entropy.size(); ++k)
        EXPECT_DOUBLE_EQ(a.entropy[k], b.entropy[k]);
    // Guard against a vacuous pass.
    EXPECT_GT(a.occurrences, 1000u);
}

TEST(PredictabilityTrace, EventBudgetMatchesReplayBudget)
{
    Workload wl = makeWorkload("bsort", 42);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    RecordedTrace trace = recordTrace(emu, 20'000);

    const PredictabilityReport whole = characterizeTrace(trace);
    const PredictabilityReport half =
        characterizeTrace(trace, PredictabilityConfig{},
                          trace.size() / 2);
    EXPECT_LT(half.occurrences, whole.occurrences);
    EXPECT_GT(half.occurrences, 0u);
}

} // namespace
} // namespace pabp
