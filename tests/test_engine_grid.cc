/**
 * @file
 * Cross-configuration invariant grid: every combination of
 * (workload, SFPF, PGU, availability delay) must satisfy the
 * engine's accounting invariants. This is the broad safety net over
 * the whole configuration space the experiments sample from.
 *
 * The second grid runs EVERY registered predictor kind
 * (bpred/factory.hh, allPredictorKinds()) under base/+sfpf/+pgu/
 * +both with targets modelled. The kind list is pulled from the
 * factory's own registry and cross-checked against
 * kNumPredictorKinds, so adding a predictor without growing the
 * registry fails this file loudly instead of silently shipping a
 * kind the grid never exercised.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "bpred/factory.hh"
#include "core/engine.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

using GridParam = std::tuple<std::string, bool, bool, unsigned>;

class EngineGrid : public ::testing::TestWithParam<GridParam>
{};

TEST_P(EngineGrid, AccountingInvariantsHold)
{
    const auto &[name, sfpf, pgu, delay] = GetParam();

    Workload wl = makeWorkload(name, 7);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    PredictorPtr pred = makePredictor("gshare", 11);
    EngineConfig ecfg;
    ecfg.useSfpf = sfpf;
    ecfg.usePgu = pgu;
    ecfg.availDelay = delay;
    ecfg.pgu.delay = delay;
    PredictionEngine engine(*pred, ecfg);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    runTrace(emu, engine, 250000);

    const EngineStats &s = engine.stats();

    // Class decomposition is exact.
    EXPECT_EQ(s.all.branches, s.region.branches + s.normal.branches);
    EXPECT_EQ(s.all.taken, s.region.taken + s.normal.taken);
    EXPECT_EQ(s.all.mispredicts,
              s.region.mispredicts + s.normal.mispredicts);
    EXPECT_EQ(s.all.squashed, s.region.squashed + s.normal.squashed);
    EXPECT_EQ(s.all.falseGuard,
              s.region.falseGuard + s.normal.falseGuard);

    // Counts are bounded by their populations.
    EXPECT_LE(s.all.mispredicts, s.all.branches);
    EXPECT_LE(s.all.taken, s.all.branches);
    EXPECT_LE(s.all.squashed, s.all.falseGuard); // 100% accuracy
    EXPECT_LE(s.all.branches + s.uncondBranches, s.insts);

    // Techniques only act when armed.
    if (!sfpf) {
        EXPECT_EQ(s.all.squashed, 0u);
    }
    if (!pgu) {
        EXPECT_EQ(engine.pguBitsInserted(), 0u);
    }
    if (pgu) {
        EXPECT_LE(engine.pguBitsInserted(), s.predicateDefines);
    }

    // Taken branches can never have had a false guard.
    EXPECT_LE(s.all.taken, s.all.branches - s.all.falseGuard);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineGrid,
    ::testing::Combine(
        ::testing::Values("histogram", "dchain", "filter", "bsearch",
                          "interp"),
        ::testing::Bool(), ::testing::Bool(),
        ::testing::Values(0u, 8u, 32u)),
    [](const ::testing::TestParamInfo<GridParam> &info) {
        return std::get<0>(info.param) +
            (std::get<1>(info.param) ? "_sfpf" : "_nosfpf") +
            (std::get<2>(info.param) ? "_pgu" : "_nopgu") + "_d" +
            std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------
// Registry exhaustiveness: the factory's kind table IS the source of
// truth, and this file consumes it, so a kind added to one but not
// the other cannot pass.

TEST(PredictorRegistry, EveryKindIsRegisteredAndConstructible)
{
    const std::vector<std::string> &kinds = allPredictorKinds();
    ASSERT_EQ(kinds.size(), kNumPredictorKinds);

    std::set<std::string> unique(kinds.begin(), kinds.end());
    EXPECT_EQ(unique.size(), kinds.size());
    for (const std::string &kind : kinds) {
        Expected<PredictorPtr> pred = tryMakePredictor(kind, 12);
        ASSERT_TRUE(pred.ok())
            << kind << ": " << pred.status().toString();
        EXPECT_NE(pred.value(), nullptr) << kind;
    }

    // The fuzz seed-derivation contract: the registry order is
    // append-only, so the long-standing kinds keep their indices.
    ASSERT_GE(kinds.size(), 4u);
    EXPECT_EQ(kinds[0], "static-taken");
    EXPECT_EQ(kinds[1], "static-nottaken");
    EXPECT_EQ(kinds[2], "bimodal");
    EXPECT_EQ(kinds[3], "gshare");
}

// ---------------------------------------------------------------------
// Every registered predictor kind x {base, +sfpf, +pgu, +both}, with
// branch targets modelled (BTB/RAS), on one branchy workload.

using KindParam = std::tuple<std::string, bool, bool>;

class PredictorKindGrid : public ::testing::TestWithParam<KindParam>
{};

TEST_P(PredictorKindGrid, InvariantsHoldWithTargetsModelled)
{
    const auto &[kind, sfpf, pgu] = GetParam();

    Workload wl = makeWorkload("interp", 7);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    PredictorPtr pred = makePredictor(kind, 11);
    EngineConfig ecfg;
    ecfg.useSfpf = sfpf;
    ecfg.usePgu = pgu;
    ecfg.modelTargets = true;
    PredictionEngine engine(*pred, ecfg);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    runTrace(emu, engine, 100'000);

    const EngineStats &s = engine.stats();
    ASSERT_GT(s.all.branches, 0u) << kind;

    EXPECT_EQ(s.all.branches, s.region.branches + s.normal.branches);
    EXPECT_EQ(s.all.mispredicts,
              s.region.mispredicts + s.normal.mispredicts);
    EXPECT_LE(s.all.mispredicts, s.all.branches);
    EXPECT_LE(s.all.taken, s.all.branches);
    EXPECT_LE(s.all.taken, s.all.branches - s.all.falseGuard);
    if (!sfpf)
        EXPECT_EQ(s.all.squashed, 0u);
    if (!pgu)
        EXPECT_EQ(engine.pguBitsInserted(), 0u);

    // The degenerate statics bound the rest: nothing mispredicts
    // MORE dynamic branches than there are dynamic branches, and a
    // real table-driven predictor on this workload must beat the
    // always-wrong direction at least somewhere.
    if (kind == "static-taken" || kind == "static-nottaken") {
        EXPECT_LE(s.all.mispredicts, s.all.branches);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PredictorKindGrid,
    ::testing::Combine(::testing::ValuesIn(allPredictorKinds()),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<KindParam> &info) {
        std::string kind = std::get<0>(info.param);
        std::replace(kind.begin(), kind.end(), '-', '_');
        return kind + (std::get<1>(info.param) ? "_sfpf" : "_nosfpf") +
            (std::get<2>(info.param) ? "_pgu" : "_nopgu");
    });

} // namespace
} // namespace pabp
