/**
 * @file
 * Cross-configuration invariant grid: every combination of
 * (workload, SFPF, PGU, availability delay) must satisfy the
 * engine's accounting invariants. This is the broad safety net over
 * the whole configuration space the experiments sample from.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "bpred/factory.hh"
#include "core/engine.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

using GridParam = std::tuple<std::string, bool, bool, unsigned>;

class EngineGrid : public ::testing::TestWithParam<GridParam>
{};

TEST_P(EngineGrid, AccountingInvariantsHold)
{
    const auto &[name, sfpf, pgu, delay] = GetParam();

    Workload wl = makeWorkload(name, 7);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    PredictorPtr pred = makePredictor("gshare", 11);
    EngineConfig ecfg;
    ecfg.useSfpf = sfpf;
    ecfg.usePgu = pgu;
    ecfg.availDelay = delay;
    ecfg.pgu.delay = delay;
    PredictionEngine engine(*pred, ecfg);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    runTrace(emu, engine, 250000);

    const EngineStats &s = engine.stats();

    // Class decomposition is exact.
    EXPECT_EQ(s.all.branches, s.region.branches + s.normal.branches);
    EXPECT_EQ(s.all.taken, s.region.taken + s.normal.taken);
    EXPECT_EQ(s.all.mispredicts,
              s.region.mispredicts + s.normal.mispredicts);
    EXPECT_EQ(s.all.squashed, s.region.squashed + s.normal.squashed);
    EXPECT_EQ(s.all.falseGuard,
              s.region.falseGuard + s.normal.falseGuard);

    // Counts are bounded by their populations.
    EXPECT_LE(s.all.mispredicts, s.all.branches);
    EXPECT_LE(s.all.taken, s.all.branches);
    EXPECT_LE(s.all.squashed, s.all.falseGuard); // 100% accuracy
    EXPECT_LE(s.all.branches + s.uncondBranches, s.insts);

    // Techniques only act when armed.
    if (!sfpf) {
        EXPECT_EQ(s.all.squashed, 0u);
    }
    if (!pgu) {
        EXPECT_EQ(engine.pguBitsInserted(), 0u);
    }
    if (pgu) {
        EXPECT_LE(engine.pguBitsInserted(), s.predicateDefines);
    }

    // Taken branches can never have had a false guard.
    EXPECT_LE(s.all.taken, s.all.branches - s.all.falseGuard);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineGrid,
    ::testing::Combine(
        ::testing::Values("histogram", "dchain", "filter", "bsearch",
                          "interp"),
        ::testing::Bool(), ::testing::Bool(),
        ::testing::Values(0u, 8u, 32u)),
    [](const ::testing::TestParamInfo<GridParam> &info) {
        return std::get<0>(info.param) +
            (std::get<1>(info.param) ? "_sfpf" : "_nosfpf") +
            (std::get<2>(info.param) ? "_pgu" : "_nopgu") + "_d" +
            std::to_string(std::get<3>(info.param));
    });

} // namespace
} // namespace pabp
