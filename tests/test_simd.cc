/**
 * @file
 * Scalar-vs-AVX2 equivalence for the runtime-dispatched SIMD kernels
 * (util/simd.hh). Every kernel must be BYTE-IDENTICAL across tiers -
 * they are pure integer arithmetic - so each test runs the same
 * randomised inputs through both forceLevel() tiers and compares
 * exactly. On hosts without AVX2 (or with PABP_SIMD off) forcing the
 * AVX2 tier falls back to scalar and the comparisons are trivially
 * true; the dispatch tests still exercise the override plumbing.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "util/rng.hh"
#include "util/simd.hh"

namespace pabp {
namespace {

/** Restore the startup dispatch level when a test ends. */
class LevelGuard
{
  public:
    LevelGuard() : saved(simd::activeLevel()) {}
    ~LevelGuard() { simd::forceLevel(saved); }

  private:
    simd::Level saved;
};

TEST(SimdDispatch, ForceLevelRoundTrips)
{
    LevelGuard guard;
    EXPECT_EQ(simd::forceLevel(simd::Level::Scalar),
              simd::Level::Scalar);
    EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
    const simd::Level got = simd::forceLevel(simd::Level::Avx2);
    if (simd::avx2Available())
        EXPECT_EQ(got, simd::Level::Avx2);
    else
        EXPECT_EQ(got, simd::Level::Scalar); // graceful fallback
    EXPECT_EQ(simd::activeLevel(), got);
}

TEST(SimdDispatch, LevelNames)
{
    EXPECT_STREQ(simd::levelName(simd::Level::Scalar), "scalar");
    EXPECT_STREQ(simd::levelName(simd::Level::Avx2), "avx2");
}

TEST(SimdPerceptron, DotMatchesAcrossLevels)
{
    LevelGuard guard;
    Rng rng(2024);
    for (int trial = 0; trial < 200; ++trial) {
        const unsigned n = 1 + rng.next() % 63;
        std::vector<std::int16_t> w(n + 1);
        for (auto &x : w)
            x = static_cast<std::int16_t>(rng.next()); // full range
        const std::uint64_t hist = rng.next();

        simd::forceLevel(simd::Level::Scalar);
        const std::int32_t scalar = simd::perceptronDot(w.data(), hist, n);
        simd::forceLevel(simd::Level::Avx2);
        const std::int32_t vec = simd::perceptronDot(w.data(), hist, n);
        ASSERT_EQ(scalar, vec) << "n=" << n << " hist=" << hist;
    }
}

TEST(SimdPerceptron, TrainMatchesAcrossLevels)
{
    LevelGuard guard;
    Rng rng(4096);
    for (int trial = 0; trial < 200; ++trial) {
        const unsigned n = 1 + rng.next() % 63;
        // The real predictor trains within [-2^(b-1), 2^(b-1)-1]; mix
        // in weights already pinned at the bounds so saturation lanes
        // are exercised, not just the interior.
        const std::int16_t wmax = 127, wmin = -128;
        std::vector<std::int16_t> w(n + 1);
        for (auto &x : w) {
            const std::uint32_t r = static_cast<std::uint32_t>(rng.next());
            if ((r & 7u) == 0)
                x = wmax;
            else if ((r & 7u) == 1)
                x = wmin;
            else
                x = static_cast<std::int16_t>(
                    static_cast<int>(r % 255) - 127);
        }
        const std::uint64_t hist = rng.next();
        const bool taken = (rng.next() & 1) != 0;

        std::vector<std::int16_t> ws = w, wv = w;
        simd::forceLevel(simd::Level::Scalar);
        simd::perceptronTrain(ws.data(), hist, n, taken, wmax, wmin);
        simd::forceLevel(simd::Level::Avx2);
        simd::perceptronTrain(wv.data(), hist, n, taken, wmax, wmin);
        ASSERT_EQ(ws, wv) << "n=" << n << " hist=" << hist
                          << " taken=" << taken;
    }
}

/** Random class lane biased towards long boring runs (like real
 *  traces: most events are Other). */
std::vector<std::uint8_t>
randomClassLane(Rng &rng, std::size_t n)
{
    std::vector<std::uint8_t> cls(n);
    for (auto &c : cls) {
        const std::uint32_t r = static_cast<std::uint32_t>(rng.next() % 16);
        if (r < 10)
            c = simd::classOther;
        else if (r < 12)
            c = simd::classUncondControl;
        else if (r < 14)
            c = simd::classPredDefine;
        else
            c = simd::classCondBranch;
    }
    return cls;
}

TEST(SimdScan, ScanClassesMatchesAcrossLevels)
{
    LevelGuard guard;
    Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        // Deliberately awkward sizes around the 32-byte vector width.
        const std::size_t n = 1 + rng.next() % 200;
        const auto cls = randomClassLane(rng, n);
        for (const bool defs : {false, true}) {
            std::uint64_t begin = rng.next() % n;
            while (begin < n) {
                simd::forceLevel(simd::Level::Scalar);
                const simd::ScanResult s =
                    simd::scanClasses(cls.data(), begin, n, defs);
                simd::forceLevel(simd::Level::Avx2);
                const simd::ScanResult v =
                    simd::scanClasses(cls.data(), begin, n, defs);
                ASSERT_EQ(s.next, v.next);
                ASSERT_EQ(s.uncond, v.uncond);
                ASSERT_EQ(s.defines, v.defines);
                begin = s.next + 1;
            }
        }
    }
}

TEST(SimdScan, CollectStopsMatchesAcrossLevels)
{
    LevelGuard guard;
    Rng rng(1234);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + rng.next() % 500;
        const auto cls = randomClassLane(rng, n);
        const std::uint64_t begin = rng.next() % n;
        for (const bool defs : {false, true}) {
            std::vector<std::uint32_t> brS(n, 0xdeadbeefu), brV = brS;
            std::vector<std::uint32_t> dfS(n, 0xdeadbeefu), dfV = dfS;

            simd::forceLevel(simd::Level::Scalar);
            const simd::CollectResult s = simd::collectStops(
                cls.data(), begin, n, defs, brS.data(),
                defs ? dfS.data() : nullptr);
            simd::forceLevel(simd::Level::Avx2);
            const simd::CollectResult v = simd::collectStops(
                cls.data(), begin, n, defs, brV.data(),
                defs ? dfV.data() : nullptr);

            ASSERT_EQ(s.branches, v.branches);
            ASSERT_EQ(s.defines, v.defines);
            ASSERT_EQ(s.uncond, v.uncond);
            // Written prefixes match; untouched tails stay poisoned.
            ASSERT_EQ(brS, brV);
            if (defs)
                ASSERT_EQ(dfS, dfV);
        }
    }
}

TEST(SimdScan, CollectStopsUncondStreamIsOptionalAndExact)
{
    // The third (optional) output stream: UncondControl indices,
    // needed when the engine models taken-branch targets. Null means
    // count-only; non-null collects the exact ascending positions -
    // on every SIMD tier.
    LevelGuard guard;
    Rng rng(424242);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 1 + rng.next() % 400;
        const auto cls = randomClassLane(rng, n);
        const std::uint64_t begin = rng.next() % n;
        for (const bool defs : {false, true}) {
            std::vector<std::uint32_t> brS(n, 0xdeadbeefu), brV = brS;
            std::vector<std::uint32_t> dfS(n, 0xdeadbeefu), dfV = dfS;
            std::vector<std::uint32_t> ucS(n, 0xdeadbeefu), ucV = ucS;

            simd::forceLevel(simd::Level::Scalar);
            const simd::CollectResult s = simd::collectStops(
                cls.data(), begin, n, defs, brS.data(),
                defs ? dfS.data() : nullptr, ucS.data());
            // Count-only call on the same range must agree with the
            // collecting one.
            std::vector<std::uint32_t> brN(n), dfN(n);
            const simd::CollectResult counted = simd::collectStops(
                cls.data(), begin, n, defs, brN.data(),
                defs ? dfN.data() : nullptr, nullptr);
            simd::forceLevel(simd::Level::Avx2);
            const simd::CollectResult v = simd::collectStops(
                cls.data(), begin, n, defs, brV.data(),
                defs ? dfV.data() : nullptr, ucV.data());

            ASSERT_EQ(s.branches, v.branches);
            ASSERT_EQ(s.defines, v.defines);
            ASSERT_EQ(s.uncond, v.uncond);
            ASSERT_EQ(counted.uncond, s.uncond);
            ASSERT_EQ(brS, brV);
            ASSERT_EQ(ucS, ucV);

            std::vector<std::uint32_t> want;
            for (std::uint64_t i = begin; i < n; ++i)
                if (cls[i] == simd::classUncondControl)
                    want.push_back(static_cast<std::uint32_t>(i));
            ASSERT_EQ(s.uncond, want.size());
            for (std::size_t i = 0; i < want.size(); ++i)
                ASSERT_EQ(ucS[i], want[i]);
            // Untouched tail stays poisoned.
            if (want.size() < n)
                ASSERT_EQ(ucS[want.size()], 0xdeadbeefu);
        }
    }
}

TEST(SimdScan, CollectStopsAgreesWithScanClasses)
{
    // collectStops is the one-pass form of repeated scanClasses: the
    // stop indices and skip counts must agree exactly, on whichever
    // tier is active.
    Rng rng(5150);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 1 + rng.next() % 300;
        const auto cls = randomClassLane(rng, n);
        for (const bool defs : {false, true}) {
            std::vector<std::uint32_t> br(n), df(n);
            const simd::CollectResult got = simd::collectStops(
                cls.data(), 0, n, defs, br.data(),
                defs ? df.data() : nullptr);

            std::vector<std::uint32_t> wantBr, wantDf;
            std::uint64_t uncond = 0, defines = 0, begin = 0;
            while (true) {
                const simd::ScanResult s =
                    simd::scanClasses(cls.data(), begin, n, defs);
                uncond += s.uncond;
                defines += s.defines;
                if (s.next >= n)
                    break;
                if (cls[s.next] == simd::classCondBranch)
                    wantBr.push_back(
                        static_cast<std::uint32_t>(s.next));
                else {
                    wantDf.push_back(
                        static_cast<std::uint32_t>(s.next));
                    ++defines;
                }
                begin = s.next + 1;
            }
            if (!defs) {
                // Counted, never collected.
                ASSERT_TRUE(wantDf.empty());
            }
            ASSERT_EQ(got.branches, wantBr.size());
            ASSERT_EQ(got.uncond, uncond);
            ASSERT_EQ(got.defines, defines);
            for (std::size_t i = 0; i < wantBr.size(); ++i)
                ASSERT_EQ(br[i], wantBr[i]);
            if (defs)
                for (std::size_t i = 0; i < wantDf.size(); ++i)
                    ASSERT_EQ(df[i], wantDf[i]);
        }
    }
}

} // anonymous namespace
} // namespace pabp
