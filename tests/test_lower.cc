/**
 * @file
 * Lowering tests: normal code shape, if-converted region structure,
 * region-branch marking, predicate discipline, exit deduplication.
 */

#include <gtest/gtest.h>

#include <map>

#include "compiler/compile.hh"
#include "sim/emulator.hh"

namespace pabp {
namespace {

/** Diamond inside a counted loop so profiling sees heat. */
IrFunction
loopedDiamond(std::int64_t trips)
{
    IrFunction fn;
    fn.name = "looped-diamond";
    IrBuilder b(fn);
    BlockId entry = b.newBlock();
    BlockId head = b.newBlock();
    BlockId test = b.newBlock();
    BlockId then_b = b.newBlock();
    BlockId else_b = b.newBlock();
    BlockId join = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(1, trips));
    b.append(makeMovImm(2, 0));
    b.jump(head);

    b.setBlock(head);
    b.condBrImm(CmpRel::Gt, 1, 0, test, done);

    b.setBlock(test);
    b.append(makeAluImm(Opcode::And, 3, 1, 3));
    b.condBrImm(CmpRel::Eq, 3, 0, then_b, else_b);

    b.setBlock(then_b);
    b.append(makeAluImm(Opcode::Add, 2, 2, 5));
    b.jump(join);

    b.setBlock(else_b);
    b.append(makeAluImm(Opcode::Sub, 2, 2, 1));
    b.jump(join);

    b.setBlock(join);
    b.append(makeAluImm(Opcode::Sub, 1, 1, 1));
    b.jump(head);

    b.setBlock(done);
    b.halt();
    return fn;
}

TEST(LowerNormal, CondBranchBecomesUncCmpPlusGuardedBr)
{
    IrFunction fn = loopedDiamond(10);
    CompiledProgram cp = lowerNormal(fn);
    EXPECT_EQ(validateProgram(cp.prog), "");

    // Find a cmp.unc immediately followed by a guarded br.
    bool found = false;
    for (std::size_t pc = 0; pc + 1 < cp.prog.size(); ++pc) {
        const Inst &a = cp.prog.insts[pc];
        const Inst &b = cp.prog.insts[pc + 1];
        if (a.op == Opcode::Cmp && a.ctype == CmpType::Unc &&
            b.op == Opcode::Br && b.qp == a.pdst1) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(LowerNormal, NoRegionMetadata)
{
    IrFunction fn = loopedDiamond(10);
    CompiledProgram cp = lowerNormal(fn);
    for (const Inst &inst : cp.prog.insts) {
        EXPECT_EQ(inst.regionId, -1);
        EXPECT_FALSE(inst.regionBranch);
    }
    EXPECT_EQ(cp.info.numRegions, 0u);
}

TEST(LowerNormal, BranchPcMapCoversCondBlocks)
{
    IrFunction fn = loopedDiamond(10);
    CompiledProgram cp = lowerNormal(fn);
    // Two conditional terminators: head and test.
    EXPECT_EQ(cp.info.branchPcToBlock.size(), 2u);
    for (const auto &[pc, blk] : cp.info.branchPcToBlock) {
        EXPECT_EQ(cp.prog.insts.at(pc).op, Opcode::Br);
        EXPECT_NE(cp.prog.insts.at(pc).qp, 0);
        EXPECT_TRUE(blk == 1 || blk == 2);
    }
}

/** Compile with profiling + if-conversion, asserting validity. */
CompiledProgram
compileIfConverted(IrFunction &fn, const StateInit &init = nullptr)
{
    CompileOptions opts;
    opts.ifConvert = true;
    CompiledProgram cp = compileFunction(fn, init, opts);
    EXPECT_EQ(validateProgram(cp.prog), "");
    return cp;
}

TEST(LowerIfConvert, RegionFormedAndMarked)
{
    IrFunction fn = loopedDiamond(1000);
    CompiledProgram cp = compileIfConverted(fn);
    EXPECT_GE(cp.info.numRegions, 1u);
    bool any_region_inst = false;
    for (const Inst &inst : cp.prog.insts)
        any_region_inst |= inst.regionId >= 0;
    EXPECT_TRUE(any_region_inst);
}

TEST(LowerIfConvert, DiamondBranchEliminated)
{
    IrFunction fn = loopedDiamond(1000);
    CompiledProgram normal = lowerNormal(fn);
    CompiledProgram conv = compileIfConverted(fn);

    auto count_cond = [](const Program &p) {
        std::size_t n = 0;
        for (const Inst &inst : p.insts)
            n += inst.isConditionalBranch();
        return n;
    };
    EXPECT_LT(count_cond(conv.prog), count_cond(normal.prog));
    EXPECT_GE(conv.info.numIfConvertedBranches, 1u);
}

TEST(LowerIfConvert, RegionBranchesAreGuardedAndMarked)
{
    IrFunction fn = loopedDiamond(1000);
    CompiledProgram cp = compileIfConverted(fn);
    std::size_t marked = 0;
    for (const Inst &inst : cp.prog.insts) {
        if (inst.regionBranch) {
            ++marked;
            EXPECT_EQ(inst.op, Opcode::Br);
            EXPECT_NE(inst.qp, 0);
            EXPECT_GE(inst.regionId, 0);
        }
    }
    EXPECT_EQ(marked, cp.info.numRegionBranches);
}

TEST(LowerIfConvert, GuardedBodyOpsInRegion)
{
    IrFunction fn = loopedDiamond(1000);
    CompiledProgram cp = compileIfConverted(fn);
    // The then/else arm bodies must appear guarded by a non-p0
    // predicate somewhere in a region.
    bool guarded_add = false;
    for (const Inst &inst : cp.prog.insts) {
        if (inst.regionId >= 0 && inst.op == Opcode::Add &&
            inst.qp != 0) {
            guarded_add = true;
        }
    }
    EXPECT_TRUE(guarded_add);
}

TEST(LowerIfConvert, SameTargetExitsDeduplicated)
{
    // Both diamond arms rejoin the same place; the arm exits must not
    // produce two branches to the join.
    IrFunction fn = loopedDiamond(1000);
    CompiledProgram cp = compileIfConverted(fn);

    // Count branches per target within regions.
    std::map<std::uint32_t, int> target_count;
    for (const Inst &inst : cp.prog.insts)
        if (inst.op == Opcode::Br && inst.regionId >= 0)
            ++target_count[inst.target];
    for (const auto &[target, count] : target_count)
        EXPECT_LE(count, 2) << "target " << target;
}

TEST(LowerIfConvert, ExecutionStillHalts)
{
    IrFunction fn = loopedDiamond(500);
    CompiledProgram cp = compileIfConverted(fn);
    Emulator emu(cp.prog, EmuConfig{1 << 12, 2'000'000});
    emu.run(2'000'000);
    EXPECT_TRUE(emu.state().halted);
    EXPECT_FALSE(emu.fuseBlown());
}

TEST(LowerIfConvert, ColdPathStaysBranchy)
{
    // With a one-sided profile, the cold side must remain a branch
    // target outside the region (a region-based branch guards it).
    IrFunction fn = loopedDiamond(1000);
    // Skew: make 'else' almost never execute by profiling with a
    // different trip pattern - directly plant profile counts instead.
    for (auto &blk : fn.blocks)
        blk.execCount = 1000;
    fn.blocks[4].execCount = 3; // else arm cold
    RegionAssignment ra = selectRegions(fn, HyperblockHeuristics{});
    CompiledProgram cp = lowerIfConverted(fn, ra);
    EXPECT_EQ(validateProgram(cp.prog), "");
    EXPECT_GE(cp.info.numRegionBranches, 1u);
}

} // namespace
} // namespace pabp
