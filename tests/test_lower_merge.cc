/**
 * @file
 * Targeted codegen tests for the or-accumulation path of the
 * if-converter: join blocks with two and three in-region in-edges
 * must be pset-initialised and or-updated, and execution through
 * every path must stay equivalent to the branchy build.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "sim/emulator.hh"

namespace pabp {
namespace {

/**
 * A three-way merge inside a loop:
 *
 *     head -> sel1 ? a : sel2...
 *     sel1: x < 10  -> armA : sel2
 *     sel2: x < 20  -> armB : armC
 *     armA/armB/armC -> join (three in-edges)
 *     join -> latch -> head
 */
IrFunction
threeWayMerge(std::int64_t trips)
{
    IrFunction fn;
    fn.name = "three-way";
    IrBuilder b(fn);
    BlockId entry = b.newBlock();
    BlockId head = b.newBlock();
    BlockId sel1 = b.newBlock();
    BlockId sel2 = b.newBlock();
    BlockId arm_a = b.newBlock();
    BlockId arm_b = b.newBlock();
    BlockId arm_c = b.newBlock();
    BlockId join = b.newBlock();
    BlockId latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(1, trips));
    b.append(makeMovImm(5, 0));
    b.jump(head);

    b.setBlock(head);
    b.condBrImm(CmpRel::Gt, 1, 0, sel1, done);

    b.setBlock(sel1);
    b.append(makeAluImm(Opcode::And, 2, 1, 31)); // x = trips & 31
    b.condBrImm(CmpRel::Lt, 2, 10, arm_a, sel2);

    b.setBlock(sel2);
    b.condBrImm(CmpRel::Lt, 2, 20, arm_b, arm_c);

    b.setBlock(arm_a);
    b.append(makeAluImm(Opcode::Add, 5, 5, 1));
    b.jump(join);

    b.setBlock(arm_b);
    b.append(makeAluImm(Opcode::Add, 5, 5, 100));
    b.jump(join);

    b.setBlock(arm_c);
    b.append(makeAluImm(Opcode::Add, 5, 5, 10000));
    b.jump(join);

    // The loop-back lives in a separate latch so the join itself can
    // enter the region (a block with an edge to the seed cannot).
    b.setBlock(join);
    b.append(makeAluImm(Opcode::Xor, 6, 5, 0x3c));
    b.append(makeAluImm(Opcode::Sub, 1, 1, 1));
    b.jump(latch);

    b.setBlock(latch);
    b.jump(head);

    b.setBlock(done);
    b.halt();
    return fn;
}

CompiledProgram
compileThreeWay(IrFunction &fn)
{
    CompileOptions copts;
    copts.heuristics.minWeightRatio = 0.0; // keep every arm
    return compileFunction(fn, nullptr, copts);
}

TEST(LowerMerge, JoinUsesPsetInitAndOrUpdates)
{
    IrFunction fn = threeWayMerge(3000);
    CompiledProgram cp = compileThreeWay(fn);
    ASSERT_EQ(validateProgram(cp.prog), "");

    // Find the join's predicate: a pset init followed later by
    // guarded updates (pset or or-type compare) to the same register.
    bool found_init = false;
    bool found_or_update = false;
    for (std::size_t pc = 0; pc < cp.prog.size(); ++pc) {
        const Inst &inst = cp.prog.insts[pc];
        if (inst.op == Opcode::PSet && inst.qp == 0 && inst.imm == 0 &&
            inst.regionId >= 0) {
            found_init = true;
            unsigned reg = inst.pdst1;
            for (std::size_t later = pc + 1; later < cp.prog.size();
                 ++later) {
                const Inst &upd = cp.prog.insts[later];
                bool guarded_pset = upd.op == Opcode::PSet &&
                    upd.pdst1 == reg && upd.qp != 0;
                bool or_cmp = upd.op == Opcode::Cmp &&
                    upd.ctype == CmpType::Or && upd.pdst1 == reg;
                if (guarded_pset || or_cmp)
                    found_or_update = true;
            }
        }
    }
    EXPECT_TRUE(found_init);
    EXPECT_TRUE(found_or_update);
}

TEST(LowerMerge, AllThreeArmsExecuteEquivalently)
{
    IrFunction fn1 = threeWayMerge(3000);
    IrFunction fn2 = threeWayMerge(3000);
    CompiledProgram branchy = lowerNormal(fn1);
    CompiledProgram converted = compileThreeWay(fn2);

    Emulator a(branchy.prog, EmuConfig{1 << 10, 1'000'000});
    Emulator c(converted.prog, EmuConfig{1 << 10, 1'000'000});
    a.run(1'000'000);
    c.run(1'000'000);
    ASSERT_TRUE(a.state().halted);
    ASSERT_TRUE(c.state().halted);
    EXPECT_EQ(a.state().readGpr(5), c.state().readGpr(5));
    EXPECT_EQ(a.state().readGpr(6), c.state().readGpr(6));
    // All three arms actually ran (the sums need all three weights).
    std::int64_t total = a.state().readGpr(5);
    EXPECT_GT(total % 100, 0);
    EXPECT_GT(total / 10000, 0);
}

TEST(LowerMerge, RegionContainsTheFullMerge)
{
    IrFunction fn = threeWayMerge(3000);
    profileFunction(fn, nullptr, 100000);
    HyperblockHeuristics h;
    h.minWeightRatio = 0.0;
    RegionAssignment ra = selectRegions(fn, h);
    ASSERT_GE(ra.regions.size(), 1u);
    // One region should contain sel1, sel2, all arms and the join.
    bool full_merge = false;
    for (const Region &r : ra.regions) {
        if (r.contains(2) && r.contains(3) && r.contains(4) &&
            r.contains(5) && r.contains(6) && r.contains(7)) {
            full_merge = true;
        }
    }
    EXPECT_TRUE(full_merge);
}

} // namespace
} // namespace pabp
