/**
 * @file
 * Tests for the predication contract verifier: it accepts everything
 * the lowerer emits (suite + random programs, both exit layouts) and
 * rejects each documented violation class on constructed programs.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "compiler/pred_verify.hh"
#include "workloads/random_gen.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

TEST(PredVerify, AcceptsWholeSuiteBothLayouts)
{
    for (const std::string &name : workloadNames()) {
        for (bool sink : {true, false}) {
            Workload wl = makeWorkload(name, 5);
            CompileOptions copts;
            copts.lowering.sinkExits = sink;
            CompiledProgram cp = compileWorkload(wl, copts);
            EXPECT_EQ(verifyPredicatedProgram(cp.prog), "")
                << name << " sink=" << sink;
        }
    }
}

TEST(PredVerify, AcceptsRandomPrograms)
{
    for (std::uint64_t seed = 800; seed < 820; ++seed) {
        Workload wl = makeRandomWorkload(seed);
        CompileOptions copts;
        copts.heuristics.minWeightRatio = 0.0;
        CompiledProgram cp = compileWorkload(wl, copts);
        EXPECT_EQ(verifyPredicatedProgram(cp.prog), "") << seed;
    }
}

TEST(PredVerify, AcceptsNormalCodeTrivially)
{
    Workload wl = makeWorkload("filter", 5);
    CompileOptions copts;
    copts.ifConvert = false;
    CompiledProgram cp = compileWorkload(wl, copts);
    EXPECT_EQ(verifyPredicatedProgram(cp.prog), "");
}

/** Tag a range of instructions as region 0. */
void
tagRegion(Program &p, std::size_t begin, std::size_t end)
{
    for (std::size_t pc = begin; pc < end; ++pc)
        p.insts[pc].regionId = 0;
}

TEST(PredVerify, RejectsGuardReadBeforeDefinition)
{
    Program p;
    p.insts = {
        makeMovImm(1, 5, 7), // guarded by undefined p7
        makeBr(0),
        makeHalt(),
    };
    tagRegion(p, 0, 2);
    EXPECT_NE(verifyPredicatedProgram(p).find("before definition"),
              std::string::npos);
}

TEST(PredVerify, RejectsOrUpdateWithoutInit)
{
    Program p;
    p.insts = {
        makeCmpImm(CmpRel::Lt, CmpType::Or, 3, 0, 1, 5),
        makeBr(0),
        makeHalt(),
    };
    tagRegion(p, 0, 2);
    EXPECT_NE(verifyPredicatedProgram(p).find("missing init"),
              std::string::npos);
}

TEST(PredVerify, RejectsGuardedPsetWithoutInit)
{
    Program p;
    p.insts = {
        makeCmpImm(CmpRel::Eq, CmpType::Unc, 2, 0, 0, 0), // p2 = 1
        makePSet(5, true, 2), // or-update of undefined p5
        makeBr(0),
        makeHalt(),
    };
    tagRegion(p, 0, 3);
    EXPECT_NE(verifyPredicatedProgram(p).find("missing init"),
              std::string::npos);
}

TEST(PredVerify, RejectsGuardDependentNormalCompare)
{
    Program p;
    p.insts = {
        makeCmpImm(CmpRel::Eq, CmpType::Unc, 2, 0, 0, 0),
        makeCmpImm(CmpRel::Lt, CmpType::Normal, 3, 4, 1, 5, 2),
        makeBr(0),
        makeHalt(),
    };
    tagRegion(p, 0, 3);
    EXPECT_NE(verifyPredicatedProgram(p).find("normal compare"),
              std::string::npos);
}

TEST(PredVerify, RejectsUnguardedRegionBranchMark)
{
    Program p;
    Inst bad = makeBr(0);
    bad.regionBranch = true;
    p.insts = {bad, makeBr(0), makeHalt()};
    tagRegion(p, 0, 2);
    EXPECT_NE(verifyPredicatedProgram(p).find("without guard"),
              std::string::npos);
}

TEST(PredVerify, RejectsRegionNotEndingInFinalExit)
{
    Program p;
    p.insts = {
        makeCmpImm(CmpRel::Eq, CmpType::Unc, 2, 0, 0, 0),
        makeMovImm(1, 5, 2),
        makeHalt(),
    };
    tagRegion(p, 0, 2);
    EXPECT_NE(
        verifyPredicatedProgram(p).find("unconditional exit"),
        std::string::npos);
}

TEST(PredVerify, RejectsNonContiguousRegion)
{
    Program p;
    p.insts = {
        makeCmpImm(CmpRel::Eq, CmpType::Unc, 2, 0, 0, 0),
        makeBr(2),
        makeMovImm(1, 1),
        makeCmpImm(CmpRel::Eq, CmpType::Unc, 3, 0, 0, 0),
        makeBr(5),
        makeHalt(),
    };
    p.insts[0].regionId = 0;
    p.insts[1].regionId = 0;
    p.insts[3].regionId = 0; // same id, detached
    p.insts[4].regionId = 0;
    EXPECT_NE(verifyPredicatedProgram(p).find("not contiguous"),
              std::string::npos);
}

} // namespace
} // namespace pabp
