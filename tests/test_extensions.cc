/**
 * @file
 * Tests for the extension tier: perceptron and agree predictors, the
 * predicate value predictor, speculative squash, and the exit-sinking
 * codegen ablation (including semantic equivalence in both layouts).
 */

#include <gtest/gtest.h>

#include "bpred/agree.hh"
#include "bpred/factory.hh"
#include "bpred/perceptron.hh"
#include "core/engine.hh"
#include "core/pred_value_pred.hh"
#include "sim/emulator.hh"
#include "util/rng.hh"
#include "workloads/random_gen.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

double
trainOnPattern(BranchPredictor &pred, std::uint32_t pc,
               const std::vector<bool> &pattern, int reps)
{
    int correct = 0, total = 0, warmup = reps / 2;
    for (int r = 0; r < reps; ++r) {
        for (bool taken : pattern) {
            bool predicted = pred.predict(pc);
            pred.update(pc, taken);
            if (r >= warmup) {
                correct += predicted == taken;
                ++total;
            }
        }
    }
    return static_cast<double>(correct) / total;
}

TEST(Perceptron, LearnsBias)
{
    PerceptronPredictor pred(8, 16);
    EXPECT_GT(trainOnPattern(pred, 10, {true}, 40), 0.99);
}

TEST(Perceptron, LearnsAlternation)
{
    PerceptronPredictor pred(8, 16);
    EXPECT_GT(trainOnPattern(pred, 10, {true, false}, 100), 0.98);
}

TEST(Perceptron, LearnsLinearlySeparableCorrelation)
{
    // outcome = parity is NOT linearly separable; outcome = history
    // bit 3 is. The perceptron must nail the latter.
    PerceptronPredictor pred(8, 16);
    Rng rng(5);
    std::vector<bool> history(64, false);
    int correct = 0, total = 0;
    for (int i = 0; i < 8000; ++i) {
        bool outcome = history[3];
        bool predicted = pred.predict(21);
        pred.update(21, outcome);
        history.insert(history.begin(), outcome);
        history.pop_back();
        // Inject noise bits like PGU would.
        bool noise = rng.chance(0.5);
        pred.injectHistoryBit(noise);
        history.insert(history.begin(), noise);
        history.pop_back();
        if (i > 4000) {
            correct += predicted == outcome;
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.97);
}

TEST(Perceptron, WeightsSaturate)
{
    PerceptronPredictor pred(4, 8, 4); // tiny weights
    for (int i = 0; i < 1000; ++i) {
        pred.predict(3);
        pred.update(3, true);
    }
    // No overflow misbehaviour: still predicts taken afterwards.
    EXPECT_TRUE(pred.predict(3));
}

TEST(Perceptron, InjectionShiftsHistory)
{
    PerceptronPredictor pred(4, 8);
    pred.injectHistoryBit(true);
    EXPECT_EQ(pred.history() & 1, 1u);
    EXPECT_TRUE(pred.hasGlobalHistory());
}

TEST(Perceptron, StorageAccountsWeights)
{
    PerceptronPredictor pred(4, 8, 8);
    // 16 rows x 9 weights x 8 bits + 8 history bits.
    EXPECT_EQ(pred.storageBits(), 16u * 9 * 8 + 8);
}

TEST(Agree, LearnsBiasedBranches)
{
    AgreePredictor pred(10, 10);
    EXPECT_GT(trainOnPattern(pred, 5, {true}, 40), 0.99);
    EXPECT_GT(trainOnPattern(pred, 6, {false}, 40), 0.99);
}

TEST(Agree, OppositeBiasesShareCountersGracefully)
{
    // Two branches with opposite bias aliasing to agree counters:
    // both map to "agree", so interference is constructive.
    AgreePredictor pred(4, 10); // tiny agree table to force aliasing
    double acc_a = trainOnPattern(pred, 100, {true}, 60);
    double acc_b = trainOnPattern(pred, 101, {false}, 60);
    EXPECT_GT(acc_a, 0.95);
    EXPECT_GT(acc_b, 0.95);
}

TEST(Agree, FirstOutcomeSetsBias)
{
    AgreePredictor pred(8, 8);
    pred.predict(9);
    pred.update(9, false); // bias = not-taken
    // Counters start weakly-agree, so the next prediction follows
    // the bias.
    EXPECT_FALSE(pred.predict(9));
}

TEST(Agree, InjectionSupported)
{
    AgreePredictor pred(8, 8);
    EXPECT_TRUE(pred.hasGlobalHistory());
    pred.injectHistoryBit(true);
}

TEST(FactoryExtensions, BuildsNewKinds)
{
    for (const char *kind : {"agree", "perceptron"}) {
        PredictorPtr pred = makePredictor(kind, 12);
        ASSERT_NE(pred, nullptr);
        pred->predict(1);
        pred->update(1, true);
        EXPECT_GT(pred->storageBits(), 0u);
    }
}

TEST(PredValuePredictor, LearnsGuardBias)
{
    PredicateValuePredictor pvp(8);
    for (int i = 0; i < 10; ++i)
        pvp.train(42, false);
    EXPECT_FALSE(pvp.predictGuard(42));
    EXPECT_TRUE(pvp.confident(42));
}

TEST(PredValuePredictor, NotConfidentWhenFluttering)
{
    PredicateValuePredictor pvp(8);
    for (int i = 0; i < 20; ++i)
        pvp.train(7, i % 2 == 0);
    EXPECT_FALSE(pvp.confident(7));
}

TEST(PredValuePredictor, ResetForgets)
{
    PredicateValuePredictor pvp(8);
    for (int i = 0; i < 10; ++i)
        pvp.train(3, true);
    pvp.reset();
    EXPECT_FALSE(pvp.confident(3));
}

/** Engine helper (duplicated small utility, kept local on purpose). */
EngineStats
runWorkloadEngine(Workload wl, EngineConfig ecfg,
                  const CompileOptions &copts, std::uint64_t steps)
{
    CompiledProgram cp = compileWorkload(wl, copts);
    PredictorPtr pred = makePredictor("gshare", 12);
    PredictionEngine engine(*pred, ecfg);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    runTrace(emu, engine, steps);
    return engine.stats();
}

TEST(SpeculativeSquash, AddsCoverageBeyondFilter)
{
    // At a large delay the filter starves; speculation must add
    // squashes (counted separately) on strongly-biased guards.
    EngineConfig base;
    base.useSfpf = true;
    base.availDelay = 32;
    EngineConfig spec = base;
    spec.useSpeculativeSquash = true;

    CompileOptions copts;
    EngineStats b = runWorkloadEngine(makeWorkload("filter", 13), base,
                                      copts, 400000);
    EngineStats s = runWorkloadEngine(makeWorkload("filter", 13), spec,
                                      copts, 400000);
    EXPECT_EQ(b.specSquashed, 0u);
    EXPECT_GT(s.specSquashed, 0u);
    // The wrong-squash rate must be small on biased guards.
    EXPECT_LT(static_cast<double>(s.specSquashedWrong),
              0.05 * static_cast<double>(s.specSquashed) + 1.0);
}

TEST(SpeculativeSquash, NeverFiresWhenDisabled)
{
    EngineConfig base;
    base.useSfpf = true;
    CompileOptions copts;
    EngineStats stats = runWorkloadEngine(makeWorkload("dchain", 13),
                                          base, copts, 300000);
    EXPECT_EQ(stats.specSquashed, 0u);
    EXPECT_EQ(stats.specSquashedWrong, 0u);
}

TEST(SinkAblation, InPlaceExitsStillValid)
{
    for (const std::string &name : workloadNames()) {
        Workload wl = makeWorkload(name, 23);
        CompileOptions copts;
        copts.lowering.sinkExits = false;
        CompiledProgram cp = compileWorkload(wl, copts);
        EXPECT_EQ(validateProgram(cp.prog), "") << name;
        EXPECT_GE(cp.info.numRegions, 1u) << name;
    }
}

TEST(SinkAblation, EquivalenceHoldsWithoutSinking)
{
    for (std::uint64_t seed = 500; seed < 512; ++seed) {
        Workload wl = makeRandomWorkload(seed);
        CompileOptions normal_opts;
        normal_opts.ifConvert = false;
        CompiledProgram normal = compileWorkload(wl, normal_opts);

        CompileOptions conv_opts;
        conv_opts.lowering.sinkExits = false;
        CompiledProgram conv = compileWorkload(wl, conv_opts);

        Emulator a(normal.prog, EmuConfig{1 << 16, 20'000'000});
        Emulator c(conv.prog, EmuConfig{1 << 16, 20'000'000});
        wl.init(a.state());
        wl.init(c.state());
        a.run(20'000'000);
        c.run(20'000'000);
        ASSERT_TRUE(a.state().halted && c.state().halted) << seed;
        EXPECT_TRUE(a.state().sameArchOutcome(c.state())) << seed;
    }
}

TEST(SinkAblation, SinkingIncreasesGuardDistance)
{
    // Measure mean define-to-branch distance both ways on filter.
    auto mean_distance = [](bool sink) {
        Workload wl = makeWorkload("filter", 29);
        CompileOptions copts;
        copts.lowering.sinkExits = sink;
        CompiledProgram cp = compileWorkload(wl, copts);
        Emulator emu(cp.prog);
        wl.init(emu.state());
        std::vector<std::uint64_t> last_write(numPredRegs, 0);
        double sum = 0.0;
        std::uint64_t count = 0;
        DynInst dyn;
        for (std::uint64_t i = 0; i < 300000 && emu.step(dyn); ++i) {
            const Inst &inst = *dyn.inst;
            if (inst.op == Opcode::Br && inst.qp != 0 &&
                inst.regionBranch) {
                sum += static_cast<double>(dyn.seq -
                                           last_write[inst.qp]);
                ++count;
            }
            for (unsigned w = 0; w < dyn.numPredWrites; ++w)
                last_write[dyn.predWrites[w].reg] = dyn.seq;
        }
        return count ? sum / static_cast<double>(count) : 0.0;
    };
    EXPECT_GT(mean_distance(true), mean_distance(false));
}

} // namespace
} // namespace pabp
