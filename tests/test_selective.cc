/**
 * @file
 * Selective if-conversion tests: the profiler's per-branch mispredict
 * estimates and the theta seed filter in region formation.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "sim/emulator.hh"
#include "util/rng.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

/**
 * Two independent diamonds in one loop: one on a coin-flip condition
 * (hard), one on a constant-true condition (trivially predictable).
 */
IrFunction
hardAndEasy()
{
    IrFunction fn;
    fn.name = "hard-and-easy";
    IrBuilder b(fn);
    BlockId entry = b.newBlock();
    BlockId head = b.newBlock();
    BlockId hard_test = b.newBlock();
    BlockId hard_then = b.newBlock();
    BlockId hard_join = b.newBlock();
    BlockId easy_test = b.newBlock();
    BlockId easy_then = b.newBlock();
    BlockId easy_join = b.newBlock();
    BlockId latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(1, 0));
    b.append(makeMovImm(3, 4096));
    b.jump(head);

    b.setBlock(head);
    b.condBr(CmpRel::Lt, 1, 3, hard_test, done);

    b.setBlock(hard_test);
    b.append(makeLoad(4, 1, 0)); // random 0/1
    b.condBrImm(CmpRel::Eq, 4, 1, hard_then, hard_join);

    b.setBlock(hard_then);
    b.append(makeAluImm(Opcode::Add, 5, 5, 1));
    b.jump(hard_join);

    b.setBlock(hard_join);
    b.jump(easy_test);

    b.setBlock(easy_test);
    // r0 == 0 always: perfectly predictable.
    b.condBrImm(CmpRel::Eq, 0, 0, easy_then, easy_join);

    b.setBlock(easy_then);
    b.append(makeAluImm(Opcode::Add, 6, 6, 1));
    b.jump(easy_join);

    b.setBlock(easy_join);
    b.jump(latch);

    b.setBlock(latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(head);

    b.setBlock(done);
    b.halt();
    return fn;
}

StateInit
coinInit()
{
    return [](ArchState &state) {
        Rng rng(1234);
        for (std::int64_t i = 0; i < 4096; ++i)
            state.writeMem(i, rng.chance(0.5) ? 1 : 0);
    };
}

TEST(SelectiveProfile, HardBranchAccumulatesMispredicts)
{
    IrFunction fn = hardAndEasy();
    profileFunction(fn, coinInit(), 200000);
    const BasicBlock &hard = fn.blocks[2];
    const BasicBlock &easy = fn.blocks[5];
    ASSERT_GT(hard.execCount, 1000u);
    ASSERT_GT(easy.execCount, 1000u);
    // Coin flips mispredict heavily; the constant branch does not.
    EXPECT_GT(hard.profMispredicts, hard.execCount / 4);
    EXPECT_LT(easy.profMispredicts, easy.execCount / 100);
}

TEST(SelectiveRegions, ThetaSkipsEasySeeds)
{
    IrFunction fn = hardAndEasy();
    profileFunction(fn, coinInit(), 200000);

    HyperblockHeuristics all;
    RegionAssignment everything = selectRegions(fn, all);

    HyperblockHeuristics selective;
    selective.minSeedMispredictRatio = 0.05;
    RegionAssignment filtered = selectRegions(fn, selective);

    auto seeded_at = [](const RegionAssignment &ra, BlockId b) {
        for (const Region &r : ra.regions)
            if (r.seed() == b)
                return true;
        return false;
    };
    // Unfiltered: both diamonds seed (or join larger regions).
    EXPECT_TRUE(everything.inRegion(2));
    EXPECT_TRUE(everything.inRegion(5));
    // Filtered: the easy diamond must not be a seed.
    EXPECT_FALSE(seeded_at(filtered, 5));
    // The hard diamond still converts.
    EXPECT_TRUE(filtered.inRegion(2));
}

TEST(SelectiveRegions, ZeroThetaMatchesDefaultBehaviour)
{
    IrFunction fn = hardAndEasy();
    profileFunction(fn, coinInit(), 200000);
    RegionAssignment a = selectRegions(fn, HyperblockHeuristics{});
    HyperblockHeuristics zero;
    zero.minSeedMispredictRatio = 0.0;
    RegionAssignment b = selectRegions(fn, zero);
    ASSERT_EQ(a.regions.size(), b.regions.size());
    for (std::size_t i = 0; i < a.regions.size(); ++i)
        EXPECT_EQ(a.regions[i].blocks, b.regions[i].blocks);
}

TEST(SelectiveCompile, EquivalenceStillHolds)
{
    for (double theta : {0.02, 0.10}) {
        Workload wl = makeWorkload("histogram", 3);
        CompileOptions normal_opts;
        normal_opts.ifConvert = false;
        CompiledProgram normal = compileWorkload(wl, normal_opts);

        CompileOptions sel_opts;
        sel_opts.heuristics.minSeedMispredictRatio = theta;
        CompiledProgram selective = compileWorkload(wl, sel_opts);

        Emulator a(normal.prog, EmuConfig{1 << 16, 30'000'000});
        Emulator c(selective.prog, EmuConfig{1 << 16, 30'000'000});
        wl.init(a.state());
        wl.init(c.state());
        a.run(30'000'000);
        c.run(30'000'000);
        ASSERT_TRUE(a.state().halted && c.state().halted);
        EXPECT_TRUE(a.state().sameArchOutcome(c.state()));
    }
}

} // namespace
} // namespace pabp
