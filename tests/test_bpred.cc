/**
 * @file
 * Baseline predictor tests: learning behaviour, history mechanics,
 * injection, storage accounting, BTB and RAS, the factory.
 */

#include <gtest/gtest.h>

#include "bpred/btb.hh"
#include "bpred/combining.hh"
#include "bpred/factory.hh"
#include "bpred/gshare.hh"
#include "bpred/local.hh"
#include "bpred/simple.hh"
#include "util/rng.hh"

namespace pabp {
namespace {

/** Train on a repeating outcome pattern; return accuracy tail. */
double
accuracyOnPattern(BranchPredictor &pred, std::uint32_t pc,
                  const std::vector<bool> &pattern, int reps)
{
    int correct = 0, total = 0, warmup = reps / 2;
    for (int r = 0; r < reps; ++r) {
        for (bool taken : pattern) {
            bool predicted = pred.predict(pc);
            pred.update(pc, taken);
            if (r >= warmup) {
                correct += predicted == taken;
                ++total;
            }
        }
    }
    return static_cast<double>(correct) / total;
}

TEST(StaticPredictors, FixedDirections)
{
    StaticPredictor taken(true), not_taken(false);
    EXPECT_TRUE(taken.predict(1));
    EXPECT_FALSE(not_taken.predict(1));
    EXPECT_EQ(taken.storageBits(), 0u);
}

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor pred(10);
    EXPECT_GT(accuracyOnPattern(pred, 100, {true}, 20), 0.99);
    BimodalPredictor pred2(10);
    EXPECT_GT(accuracyOnPattern(pred2, 100, {false}, 20), 0.99);
}

TEST(Bimodal, FailsOnAlternation)
{
    // Strict alternation defeats a 2-bit counter (classic result).
    BimodalPredictor pred(10);
    double acc = accuracyOnPattern(pred, 4, {true, false}, 100);
    EXPECT_LT(acc, 0.7);
}

TEST(Bimodal, DistinctPcsIndependent)
{
    BimodalPredictor pred(10);
    accuracyOnPattern(pred, 1, {true}, 10);
    accuracyOnPattern(pred, 2, {false}, 10);
    EXPECT_TRUE(pred.predict(1));
    EXPECT_FALSE(pred.predict(2));
}

TEST(Bimodal, StorageBits)
{
    EXPECT_EQ(BimodalPredictor(10).storageBits(), 1024u * 2);
    EXPECT_EQ(BimodalPredictor(12, 3).storageBits(), 4096u * 3);
}

TEST(GShare, LearnsAlternation)
{
    GSharePredictor pred(10);
    double acc = accuracyOnPattern(pred, 4, {true, false}, 100);
    EXPECT_GT(acc, 0.99);
}

TEST(GShare, LearnsLongerPattern)
{
    GSharePredictor pred(12);
    double acc =
        accuracyOnPattern(pred, 4, {true, true, false, true, false},
                          200);
    EXPECT_GT(acc, 0.99);
}

TEST(GShare, HistoryShiftsOnUpdate)
{
    GSharePredictor pred(8);
    EXPECT_EQ(pred.history(), 0u);
    pred.predict(1);
    pred.update(1, true);
    EXPECT_EQ(pred.history() & 1, 1u);
    pred.predict(1);
    pred.update(1, false);
    EXPECT_EQ(pred.history() & 3, 2u);
}

TEST(GShare, InjectedBitsEnterHistory)
{
    GSharePredictor pred(8);
    pred.injectHistoryBit(true);
    pred.injectHistoryBit(false);
    pred.injectHistoryBit(true);
    EXPECT_EQ(pred.history() & 7, 0b101u);
    EXPECT_TRUE(pred.hasGlobalHistory());
}

TEST(GShare, InjectedCorrelationIsLearnable)
{
    // Outcome equals a bit injected 1 step earlier: with injection
    // the predictor becomes near-perfect; without, it flounders.
    Rng rng(3);
    GSharePredictor with_inject(10);
    GSharePredictor without(10);
    int correct_with = 0, correct_without = 0, total = 0;
    for (int i = 0; i < 4000; ++i) {
        bool bit = rng.chance(0.5);
        with_inject.injectHistoryBit(bit);
        bool p1 = with_inject.predict(7);
        with_inject.update(7, bit);
        bool p2 = without.predict(7);
        without.update(7, bit);
        if (i > 2000) {
            correct_with += p1 == bit;
            correct_without += p2 == bit;
            ++total;
        }
    }
    EXPECT_GT(correct_with, total * 0.98);
    EXPECT_LT(correct_without, total * 0.8);
}

TEST(GShare, ResetClearsState)
{
    GSharePredictor pred(8);
    accuracyOnPattern(pred, 3, {true}, 10);
    pred.reset();
    EXPECT_EQ(pred.history(), 0u);
    EXPECT_FALSE(pred.predict(3)); // back to weakly not-taken
}

TEST(GShare, StorageBits)
{
    GSharePredictor pred(12);
    EXPECT_EQ(pred.storageBits(), 4096u * 2 + 12);
}

TEST(GAg, LearnsGlobalPattern)
{
    GAgPredictor pred(10);
    double acc = accuracyOnPattern(pred, 4, {true, false, false}, 200);
    EXPECT_GT(acc, 0.99);
}

TEST(GAg, InjectionSupported)
{
    GAgPredictor pred(8);
    EXPECT_TRUE(pred.hasGlobalHistory());
    pred.injectHistoryBit(true); // must not crash, must shift state
    pred.predict(0);
}

TEST(Local, LearnsPerBranchPattern)
{
    LocalPredictor pred(10, 10, 12);
    double acc =
        accuracyOnPattern(pred, 4, {true, true, true, false}, 200);
    EXPECT_GT(acc, 0.99);
}

TEST(Local, NoGlobalHistory)
{
    LocalPredictor pred(10, 10, 12);
    EXPECT_FALSE(pred.hasGlobalHistory());
}

TEST(Local, StorageBits)
{
    LocalPredictor pred(10, 10, 12);
    EXPECT_EQ(pred.storageBits(), 1024u * 10 + 4096u * 2);
}

TEST(Combining, BeatsWorstComponent)
{
    // Alternation at one PC (gshare wins), heavy bias at another
    // (bimodal fine): the tournament should track both.
    CombiningPredictor pred(std::make_unique<BimodalPredictor>(10),
                            std::make_unique<GSharePredictor>(10), 10);
    double acc_alt = accuracyOnPattern(pred, 8, {true, false}, 150);
    double acc_bias = accuracyOnPattern(pred, 9, {true}, 150);
    EXPECT_GT(acc_alt, 0.95);
    EXPECT_GT(acc_bias, 0.99);
}

TEST(Combining, InjectionReachesComponents)
{
    auto gshare = std::make_unique<GSharePredictor>(8);
    GSharePredictor *raw = gshare.get();
    CombiningPredictor pred(std::make_unique<BimodalPredictor>(8),
                            std::move(gshare), 8);
    EXPECT_TRUE(pred.hasGlobalHistory());
    pred.injectHistoryBit(true);
    EXPECT_EQ(raw->history() & 1, 1u);
}

TEST(Combining, StorageSumsComponents)
{
    CombiningPredictor pred(std::make_unique<BimodalPredictor>(8),
                            std::make_unique<GSharePredictor>(8), 8);
    EXPECT_EQ(pred.storageBits(),
              256u * 2 + (256u * 2 + 8) + 256u * 2);
}

TEST(Btb, MissThenHit)
{
    Btb btb(4, 2);
    EXPECT_FALSE(btb.lookup(100).has_value());
    btb.update(100, 777);
    auto hit = btb.lookup(100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 777u);
    EXPECT_EQ(btb.misses(), 1u);
    EXPECT_EQ(btb.hits(), 1u);
}

TEST(Btb, LruEvictsOldest)
{
    Btb btb(0, 2); // one set, two ways
    btb.update(1, 10);
    btb.update(2, 20);
    btb.lookup(1); // refresh 1
    btb.update(3, 30); // evicts 2
    EXPECT_TRUE(btb.lookup(1).has_value());
    EXPECT_FALSE(btb.lookup(2).has_value());
    EXPECT_TRUE(btb.lookup(3).has_value());
}

TEST(Btb, UpdateRefreshesExistingEntry)
{
    Btb btb(0, 2);
    btb.update(1, 10);
    btb.update(1, 99);
    auto hit = btb.lookup(1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 99u);
}

TEST(Ras, PushPopOrder)
{
    ReturnAddressStack ras(4);
    ras.push(10);
    ras.push(20);
    EXPECT_EQ(ras.pop().value(), 20u);
    EXPECT_EQ(ras.pop().value(), 10u);
    EXPECT_FALSE(ras.pop().has_value());
}

TEST(Ras, OverflowWrapsOverwritingOldest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.pop().value(), 3u);
    EXPECT_EQ(ras.pop().value(), 2u);
    EXPECT_FALSE(ras.pop().has_value());
}

TEST(Factory, BuildsEveryKind)
{
    for (const char *kind :
         {"static-taken", "static-nottaken", "bimodal", "gshare", "gag",
          "local", "agree", "yags", "perceptron", "comb", "tage"}) {
        PredictorPtr pred = makePredictor(kind, 10);
        ASSERT_NE(pred, nullptr) << kind;
        pred->predict(1);
        pred->update(1, true);
        pred->reset();
    }
}

TEST(Factory, RejectsOutOfRangeSizeWithTypedError)
{
    // 0 and >= 31 used to reach `1 << entries_log2` table sizing
    // unvalidated; both must now fail with InvalidArgument, not UB
    // or a constructor panic.
    for (unsigned bad : {0u, 25u, 31u, 64u}) {
        for (const char *kind : {"gshare", "tage", "yags", "local"}) {
            Expected<PredictorPtr> made = tryMakePredictor(kind, bad);
            ASSERT_FALSE(made.ok()) << kind << " at " << bad;
            EXPECT_EQ(made.status().code(),
                      StatusCode::InvalidArgument)
                << kind << " at " << bad;
        }
    }
    // The static kinds ignore entries_log2 and stay constructible.
    EXPECT_TRUE(tryMakePredictor("static-taken", 0).ok());
}

TEST(Factory, UnknownKindIsNotFound)
{
    Expected<PredictorPtr> made = tryMakePredictor("oracle", 10);
    ASSERT_FALSE(made.ok());
    EXPECT_EQ(made.status().code(), StatusCode::NotFound);
}

TEST(Factory, ExtremeValidSizesBuildEveryKind)
{
    // The clamp floors (yags' cache, comb's halves, perceptron's
    // rows, tage's tagged tables) must keep the whole valid range
    // constructible, bottom edge included.
    for (unsigned size : {1u, 2u, 24u}) {
        for (const char *kind :
             {"bimodal", "gshare", "gag", "local", "agree", "yags",
              "perceptron", "comb", "tage"}) {
            Expected<PredictorPtr> made = tryMakePredictor(kind, size);
            ASSERT_TRUE(made.ok())
                << kind << " at " << size << ": "
                << made.status().toString();
            made.value()->predict(4);
            made.value()->update(4, true);
        }
    }
}

} // namespace
} // namespace pabp
