/**
 * @file
 * Tests for the JRS confidence estimator, the gshare aliasing
 * profiler, and the JRS-gated speculative squash path.
 */

#include <gtest/gtest.h>

#include "bpred/confidence.hh"
#include "bpred/gshare.hh"
#include "core/engine.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

TEST(Confidence, StartsLow)
{
    ConfidenceEstimator conf(8);
    EXPECT_FALSE(conf.highConfidence(5));
}

TEST(Confidence, BuildsWithCorrectStreak)
{
    ConfidenceEstimator conf(8, 15, 15);
    for (int i = 0; i < 14; ++i) {
        conf.update(5, true);
        EXPECT_FALSE(conf.highConfidence(5)) << "after " << i + 1;
    }
    conf.update(5, true);
    EXPECT_TRUE(conf.highConfidence(5));
}

TEST(Confidence, SingleMissResets)
{
    ConfidenceEstimator conf(8, 15, 15);
    for (int i = 0; i < 20; ++i)
        conf.update(5, true);
    ASSERT_TRUE(conf.highConfidence(5));
    conf.update(5, false);
    EXPECT_FALSE(conf.highConfidence(5));
}

TEST(Confidence, ThresholdBelowMaxWorks)
{
    ConfidenceEstimator conf(8, 15, 4);
    for (int i = 0; i < 4; ++i)
        conf.update(9, true);
    EXPECT_TRUE(conf.highConfidence(9));
}

TEST(Confidence, StorageBits)
{
    ConfidenceEstimator conf(10, 15, 15);
    EXPECT_EQ(conf.storageBits(), 1024u * 4);
}

TEST(Confidence, ResetClears)
{
    ConfidenceEstimator conf(8, 15, 4);
    for (int i = 0; i < 10; ++i)
        conf.update(1, true);
    conf.reset();
    EXPECT_FALSE(conf.highConfidence(1));
}

TEST(GShareProfiler, NoConflictsForSingleBranchConstantHistory)
{
    GSharePredictor pred(8);
    pred.enableConflictProfiling();
    for (int i = 0; i < 100; ++i) {
        pred.predict(7);
        pred.update(7, false); // constant history
    }
    EXPECT_EQ(pred.lookupCount(), 100u);
    EXPECT_EQ(pred.conflictCount(), 0u);
}

TEST(GShareProfiler, AliasingBranchesConflict)
{
    // Two PCs with identical low bits on a tiny table and constant
    // history hit the same entry alternately.
    GSharePredictor pred(4);
    pred.enableConflictProfiling();
    for (int i = 0; i < 50; ++i) {
        pred.predict(16);
        pred.update(16, false);
        pred.predict(32);
        pred.update(32, false);
    }
    EXPECT_GT(pred.conflictCount(), 50u);
}

TEST(GShareProfiler, DisabledByDefault)
{
    GSharePredictor pred(8);
    pred.predict(1);
    pred.update(1, true);
    EXPECT_EQ(pred.lookupCount(), 0u);
}

TEST(JrsGatedSpecSquash, RunsAndStaysReasonable)
{
    Workload wl = makeWorkload("filter", 31);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);

    GSharePredictor pred(12);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    ecfg.availDelay = 32; // starve the certain filter
    ecfg.useSpeculativeSquash = true;
    ecfg.specGate = EngineConfig::SpecGate::Jrs;
    PredictionEngine engine(pred, ecfg);
    Emulator emu(cp.prog);
    wl.init(emu.state());
    runTrace(emu, engine, 400000);

    const EngineStats &stats = engine.stats();
    EXPECT_GT(stats.specSquashed, 0u);
    // JRS gating keeps the wrong-squash share small on this workload.
    EXPECT_LT(static_cast<double>(stats.specSquashedWrong),
              0.1 * static_cast<double>(stats.specSquashed) + 1.0);
}

TEST(SquashFilter, ReducesTableTrafficAndMispredicts)
{
    // The filter removes squashed branches from the table entirely
    // (fewer lookups) and must not increase total mispredicts. The
    // aliasing *rate* of the residue may rise - the filter removes
    // the easy lookups - so absolute counts are the sound metric.
    struct Counts
    {
        std::uint64_t lookups;
        std::uint64_t mispredicts;
    };
    auto run = [](bool sfpf) {
        Workload wl = makeWorkload("histogram", 31);
        CompileOptions copts;
        CompiledProgram cp = compileWorkload(wl, copts);
        GSharePredictor pred(12);
        pred.enableConflictProfiling();
        EngineConfig ecfg;
        ecfg.useSfpf = sfpf;
        PredictionEngine engine(pred, ecfg);
        Emulator emu(cp.prog);
        wl.init(emu.state());
        runTrace(emu, engine, 400000);
        return Counts{pred.lookupCount(),
                      engine.stats().all.mispredicts};
    };
    Counts base = run(false);
    Counts with = run(true);
    EXPECT_LT(with.lookups, base.lookups);
    EXPECT_LE(with.mispredicts, base.mispredicts);
}

} // namespace
} // namespace pabp
