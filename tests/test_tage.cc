/**
 * @file
 * TAGE predictor tests - learning behaviour, folded-history
 * injection, allocation/u-reset mechanics, checkpointing - plus the
 * cross-predictor injectHistoryBits contract test: for EVERY factory
 * kind, the word-at-a-time inject must equal the same bits injected
 * one at a time (a bit-order or fold mismatch here would silently
 * corrupt schedule-cache-hit replays; see docs/PERF.md).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bpred/factory.hh"
#include "bpred/tage.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace pabp {
namespace {

/** Serialised dynamic state - the strongest equality available. */
std::string
snapshotState(const BranchPredictor &pred)
{
    std::ostringstream os;
    StateSink sink(os);
    pred.saveState(sink);
    return os.str();
}

double
accuracyOnPattern(BranchPredictor &pred, std::uint32_t pc,
                  const std::vector<bool> &pattern, int reps)
{
    int correct = 0, total = 0, warmup = reps / 2;
    for (int r = 0; r < reps; ++r) {
        for (bool taken : pattern) {
            bool predicted = pred.predict(pc);
            pred.update(pc, taken);
            if (r >= warmup) {
                correct += predicted == taken;
                ++total;
            }
        }
    }
    return static_cast<double>(correct) / total;
}

TEST(Tage, LearnsBias)
{
    TagePredictor pred(TageConfig{});
    EXPECT_GT(accuracyOnPattern(pred, 100, {true}, 40), 0.99);
}

TEST(Tage, LearnsLongPattern)
{
    // A 9-period pattern defeats bimodal but is well inside the
    // tagged tables' history reach.
    std::vector<bool> pattern = {true, true, true, true, true,
                                 true, true, true, false};
    TagePredictor pred(TageConfig{});
    EXPECT_GT(accuracyOnPattern(pred, 200, pattern, 200), 0.95);
}

TEST(Tage, PredictAndUpdateMatchesUnfusedPair)
{
    TagePredictor fused(TageConfig{});
    TagePredictor unfused(TageConfig{});
    Rng rng(7);
    for (int i = 0; i < 4000; ++i) {
        std::uint32_t pc = static_cast<std::uint32_t>(rng.below(64))
            * 4;
        bool taken = rng.chance(0.6);
        bool a = fused.predictAndUpdate(pc, taken);
        bool b = unfused.predict(pc);
        unfused.update(pc, taken);
        ASSERT_EQ(a, b) << "at branch " << i;
    }
    EXPECT_EQ(snapshotState(fused), snapshotState(unfused));
}

TEST(Tage, InjectedBitsPerturbFoldedHistory)
{
    // Injecting predicate bits must actually reach the folded
    // registers: two predictors that diverge only in injected bits
    // must end up in different states.
    TagePredictor a(TageConfig{});
    TagePredictor b(TageConfig{});
    Rng rng(11);
    for (int i = 0; i < 512; ++i) {
        std::uint32_t pc =
            static_cast<std::uint32_t>(rng.below(32)) * 4;
        bool taken = rng.chance(0.5);
        a.predictAndUpdate(pc, taken);
        b.predictAndUpdate(pc, taken);
    }
    a.injectHistoryBit(true);
    b.injectHistoryBit(false);
    EXPECT_NE(snapshotState(a), snapshotState(b));
}

TEST(Tage, UBitResetFiresAndIsCounted)
{
    TageConfig cfg;
    cfg.tickPeriod = 256; // small enough to fire many times here
    TagePredictor pred(cfg);
    StatGroup stats;
    pred.registerStats(stats, "pred.");

    Rng rng(13);
    const int branches = 4096;
    for (int i = 0; i < branches; ++i) {
        std::uint32_t pc =
            static_cast<std::uint32_t>(rng.below(512)) * 4;
        pred.predictAndUpdate(pc, rng.chance(0.5));
    }
    EXPECT_EQ(stats.value("pred.u_resets"),
              static_cast<std::uint64_t>(branches) / cfg.tickPeriod);
    // Random outcomes over many PCs must also have exercised the
    // allocation path.
    EXPECT_GT(stats.value("pred.allocations"), 0u);
}

TEST(Tage, CheckpointRoundTripsExactly)
{
    TagePredictor original(TageConfig{});
    Rng rng(17);
    for (int i = 0; i < 3000; ++i) {
        std::uint32_t pc =
            static_cast<std::uint32_t>(rng.below(128)) * 4;
        original.predictAndUpdate(pc, rng.chance(0.4));
        if (rng.chance(0.2))
            original.injectHistoryBit(rng.chance(0.5));
    }

    std::stringstream buf;
    StateSink sink(buf);
    original.saveState(sink);
    TagePredictor restored(TageConfig{});
    StateSource src(buf);
    ASSERT_TRUE(restored.loadState(src).ok());
    EXPECT_EQ(snapshotState(original), snapshotState(restored));

    // The two must stay in lockstep after the restore point.
    for (int i = 0; i < 1000; ++i) {
        std::uint32_t pc =
            static_cast<std::uint32_t>(rng.below(128)) * 4;
        bool taken = rng.chance(0.4);
        ASSERT_EQ(original.predictAndUpdate(pc, taken),
                  restored.predictAndUpdate(pc, taken));
    }
    EXPECT_EQ(snapshotState(original), snapshotState(restored));
}

TEST(Tage, LoadStateRejectsMismatchedGeometry)
{
    TagePredictor original(TageConfig{});
    std::stringstream buf;
    StateSink sink(buf);
    original.saveState(sink);

    TageConfig other;
    other.tableLog2 = 8; // differs from the default 10
    TagePredictor mismatched(other);
    StateSource src(buf);
    EXPECT_FALSE(mismatched.loadState(src).ok());
}

TEST(Tage, StorageBitsAccountsAllTables)
{
    TageConfig cfg;
    TagePredictor pred(cfg);
    // At least the base + tagged + corrector table payload.
    std::size_t floor = (std::size_t{1} << cfg.baseLog2) * 2 +
        cfg.numTables * (std::size_t{1} << cfg.tableLog2) *
            (cfg.counterBits + cfg.usefulBits + cfg.tagBits) +
        (std::size_t{1} << cfg.scLog2) * cfg.scCounterBits;
    EXPECT_GE(pred.storageBits(), floor);
    EXPECT_TRUE(pred.hasGlobalHistory());
    EXPECT_NE(pred.name().find("tage"), std::string::npos);
}

// ---------------------------------------------------------------------
// The injectHistoryBits contract (bpred/predictor.hh): for every
// predictor kind, injectHistoryBits(bits, k) must leave the predictor
// in EXACTLY the state k sequential injectHistoryBit() calls walking
// bits MSB-to-LSB would. k = 63/64 pin the word-boundary cases the
// schedule cache's PGU drain produces; serialised state is compared,
// so a mismatch anywhere (history register, folded registers) fails
// even if near-term predictions happen to agree.

TEST(InjectContract, BulkInjectEqualsSequentialForEveryKind)
{
    const char *const kinds[] = {
        "static-taken", "static-nottaken", "bimodal", "gshare",
        "gag",          "local",           "agree",   "yags",
        "perceptron",   "comb",            "tage"};
    const unsigned ks[] = {1, 7, 63, 64};

    for (const char *kind : kinds) {
        for (unsigned k : ks) {
            SCOPED_TRACE(std::string(kind) + "/k=" + std::to_string(k));
            PredictorPtr bulk = makePredictor(kind, 10);
            PredictorPtr sequential = makePredictor(kind, 10);

            // Identical warmup so the injection lands on non-trivial
            // state.
            Rng rng(0x5eedull + k);
            for (int i = 0; i < 600; ++i) {
                std::uint32_t pc =
                    static_cast<std::uint32_t>(rng.below(256)) * 4;
                bool taken = rng.chance(0.55);
                bulk->predict(pc);
                bulk->update(pc, taken);
                sequential->predict(pc);
                sequential->update(pc, taken);
            }

            // Callers pass only the low k bits (high bits clear).
            std::uint64_t bits = rng.next();
            if (k < 64)
                bits &= (std::uint64_t{1} << k) - 1;
            bulk->injectHistoryBits(bits, k);
            for (unsigned j = k; j-- > 0;)
                sequential->injectHistoryBit(((bits >> j) & 1) != 0);

            EXPECT_EQ(snapshotState(*bulk),
                      snapshotState(*sequential));

            // And the states must agree behaviourally afterwards.
            for (int i = 0; i < 200; ++i) {
                std::uint32_t pc =
                    static_cast<std::uint32_t>(rng.below(256)) * 4;
                bool taken = rng.chance(0.55);
                ASSERT_EQ(bulk->predict(pc), sequential->predict(pc));
                bulk->update(pc, taken);
                sequential->update(pc, taken);
            }
            EXPECT_EQ(snapshotState(*bulk),
                      snapshotState(*sequential));
        }
    }
}

} // namespace
} // namespace pabp
