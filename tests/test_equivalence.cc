/**
 * @file
 * The central correctness property of the compiler substrate:
 * if-conversion preserves program semantics. For every workload in
 * the suite and for a battery of random structured programs, the
 * branchy and the if-converted binaries must halt with identical
 * general registers and memory.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "sim/emulator.hh"
#include "workloads/random_gen.hh"
#include "workloads/workload.hh"

namespace pabp {
namespace {

constexpr std::uint64_t runBudget = 40'000'000;

struct RunResult
{
    ArchState state;
    std::uint64_t insts;
    bool halted;

    RunResult(std::size_t mem) : state(mem), insts(0), halted(false) {}
};

RunResult
runToHalt(const Program &prog, const StateInit &init)
{
    EmuConfig cfg;
    cfg.memWords = 1 << 16;
    cfg.maxInsts = runBudget;
    Emulator emu(prog, cfg);
    if (init)
        init(emu.state());
    emu.run(runBudget);
    RunResult result(1);
    result.state = emu.state();
    result.insts = emu.instsExecuted();
    result.halted = emu.state().halted;
    return result;
}

/** Assert branchy and if-converted versions agree. */
void
expectEquivalent(Workload wl)
{
    ASSERT_EQ(verifyFunction(wl.fn), "") << wl.name;

    CompileOptions normal_opts;
    normal_opts.ifConvert = false;
    CompiledProgram normal = compileWorkload(wl, normal_opts);

    CompileOptions conv_opts;
    conv_opts.ifConvert = true;
    CompiledProgram converted = compileWorkload(wl, conv_opts);

    ASSERT_EQ(validateProgram(normal.prog), "") << wl.name;
    ASSERT_EQ(validateProgram(converted.prog), "") << wl.name;

    RunResult a = runToHalt(normal.prog, wl.init);
    RunResult c = runToHalt(converted.prog, wl.init);

    ASSERT_TRUE(a.halted) << wl.name << " branchy did not halt";
    ASSERT_TRUE(c.halted) << wl.name << " if-converted did not halt";

    for (unsigned r = 0; r < numGprs; ++r)
        EXPECT_EQ(a.state.readGpr(r), c.state.readGpr(r))
            << wl.name << " r" << r;
    EXPECT_TRUE(a.state.sameArchOutcome(c.state)) << wl.name
        << " memory/register divergence";
}

class SuiteEquivalence : public ::testing::TestWithParam<std::string>
{};

TEST_P(SuiteEquivalence, IfConversionPreservesSemantics)
{
    expectEquivalent(makeWorkload(GetParam(), 77));
}

TEST_P(SuiteEquivalence, SecondSeedToo)
{
    expectEquivalent(makeWorkload(GetParam(), 20260706));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SuiteEquivalence,
                         ::testing::ValuesIn(workloadNames()));

class RandomEquivalence : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomEquivalence, IfConversionPreservesSemantics)
{
    RandomProgramConfig cfg;
    cfg.items = 10;
    expectEquivalent(makeRandomWorkload(GetParam(), cfg));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalence,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(RandomEquivalence, LargerProgramsAndDeeperNesting)
{
    RandomProgramConfig cfg;
    cfg.items = 24;
    cfg.maxLoopDepth = 3;
    for (std::uint64_t seed = 100; seed < 108; ++seed)
        expectEquivalent(makeRandomWorkload(seed, cfg));
}

TEST(RandomEquivalence, AggressiveHeuristics)
{
    // Huge regions with permissive inclusion stress the predicate
    // allocator and multi-merge or-accumulation paths.
    RandomProgramConfig pcfg;
    pcfg.items = 16;
    for (std::uint64_t seed = 200; seed < 208; ++seed) {
        Workload wl = makeRandomWorkload(seed, pcfg);
        ASSERT_EQ(verifyFunction(wl.fn), "");

        CompileOptions normal_opts;
        normal_opts.ifConvert = false;
        CompiledProgram normal = compileWorkload(wl, normal_opts);

        CompileOptions conv_opts;
        conv_opts.ifConvert = true;
        conv_opts.heuristics.maxBlocks = 12;
        conv_opts.heuristics.minWeightRatio = 0.0;
        conv_opts.heuristics.minSeedExec = 1;
        CompiledProgram converted = compileWorkload(wl, conv_opts);

        RunResult a = runToHalt(normal.prog, wl.init);
        RunResult c = runToHalt(converted.prog, wl.init);
        ASSERT_TRUE(a.halted && c.halted) << wl.name;
        EXPECT_TRUE(a.state.sameArchOutcome(c.state)) << wl.name;
    }
}

TEST(Determinism, SameSeedSameDynamicCounts)
{
    Workload w1 = makeWorkload("filter", 5);
    Workload w2 = makeWorkload("filter", 5);
    CompileOptions opts;
    CompiledProgram p1 = compileWorkload(w1, opts);
    CompiledProgram p2 = compileWorkload(w2, opts);
    ASSERT_EQ(p1.prog.size(), p2.prog.size());
    RunResult a = runToHalt(p1.prog, w1.init);
    RunResult b = runToHalt(p2.prog, w2.init);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_TRUE(a.state.sameArchOutcome(b.state));
}

} // namespace
} // namespace pabp
