/**
 * @file
 * SweepRunner tests. The load-bearing properties:
 *
 *  - Determinism: a grid run at --jobs 1, 4 and 8 yields bit-identical
 *    EngineStats per cell and byte-identical CSV output - parallelism
 *    must be unobservable in the results.
 *  - Checkpoint isolation (regression): two cells sweeping in the same
 *    directory get DISTINCT fingerprint-derived checkpoint files and
 *    both resume from their own state. The pre-sweep bench harness
 *    wrote every cell to the literal same "pabp.ckpt", so the last
 *    writer won and earlier cells silently restarted.
 *  - Resume fallback compiles nothing (regression): a missing or
 *    configuration-mismatched resume file falls back to a fresh run
 *    by rebuilding only the cheap per-run state. The old runTraceSpec
 *    recursed into itself and recompiled the workload.
 *  - Typed cell failure: a bad spec (unknown predictor/workload,
 *    damaged checkpoint) fails its own cell with a pabp::Status while
 *    the rest of the grid completes.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sweep.hh"
#include "sweep_service.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

namespace pabp::bench {
namespace {

std::string
tempPath(const std::string &name)
{
    // Tests run as parallel ctest processes sharing TempDir; the
    // test name keeps their scratch files from colliding.
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->name() + "_" + name;
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path, std::ios::binary).good();
}

void
copyFile(const std::string &from, const std::string &to)
{
    std::ifstream src(from, std::ios::binary);
    std::ofstream dst(to, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(src.good());
    ASSERT_TRUE(dst.good());
    dst << src.rdbuf();
}

/** A small but heterogeneous grid: three workloads x three engine
 *  configurations, trace mode. */
std::vector<RunSpec>
smallGrid(std::uint64_t max_insts = 30000)
{
    std::vector<RunSpec> specs;
    for (const char *name : {"bsort", "interp", "dchain"}) {
        for (int config = 0; config < 3; ++config) {
            RunSpec spec;
            spec.workload = name;
            spec.engine.useSfpf = config >= 1;
            spec.engine.usePgu = config >= 2;
            spec.maxInsts = max_insts;
            specs.push_back(spec);
        }
    }
    return specs;
}

/** The CSV a bench binary would emit for these results. */
std::string
gridCsv(const std::vector<RunSpec> &specs,
        const std::vector<RunResult> &results)
{
    Table table({"workload", "insts", "branches", "mispredict",
                 "squash%"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const EngineStats &stats = results[i].engine;
        table.startRow();
        table.cell(specs[i].workload);
        table.cell(stats.insts);
        table.cell(stats.all.branches);
        table.percentCell(stats.all.mispredictRate());
        table.percentCell(stats.all.branches
                              ? static_cast<double>(stats.all.squashed) /
                                  static_cast<double>(stats.all.branches)
                              : 0.0);
    }
    std::ostringstream os;
    table.printCsv(os);
    return os.str();
}

TEST(SweepFingerprint, DistinguishesBehaviourChangingFields)
{
    RunSpec spec;
    spec.workload = "bsort";
    const std::uint64_t base = specFingerprint(spec);
    EXPECT_EQ(base, specFingerprint(spec)); // stable

    RunSpec other = spec;
    other.seed = 43;
    EXPECT_NE(specFingerprint(other), base);
    other = spec;
    other.engine.useSfpf = true;
    EXPECT_NE(specFingerprint(other), base);
    other = spec;
    other.predictor = "yags";
    EXPECT_NE(specFingerprint(other), base);
    other = spec;
    other.compile.heuristics.maxBlocks += 1;
    EXPECT_NE(specFingerprint(other), base);
    other = spec;
    other.maxInsts += 1;
    EXPECT_NE(specFingerprint(other), base);
    other = spec;
    other.compileSeed = 7; // cross-input runs differ from same-input
    EXPECT_NE(specFingerprint(other), base);
}

TEST(SweepFingerprint, IgnoresCheckpointKnobs)
{
    // Where a cell checkpoints must not change WHICH checkpoint it
    // owns, or moving the sweep's scratch directory would orphan
    // every resume file.
    RunSpec spec;
    spec.workload = "bsort";
    RunSpec other = spec;
    other.checkpointEvery = 5000;
    other.checkpointPath = "elsewhere/x.ckpt";
    other.resumePath = "elsewhere/x.ckpt";
    EXPECT_EQ(specFingerprint(other), specFingerprint(spec));
}

TEST(SweepFingerprint, DerivedPathInsertsPrintBeforeExtension)
{
    EXPECT_EQ(derivedCheckpointPath("dir/pabp.ckpt", 0xabcull),
              "dir/pabp-0000000000000abc.ckpt");
    EXPECT_EQ(derivedCheckpointPath("noext", 1),
              "noext-0000000000000001");
    // A dot in a directory component is not an extension.
    EXPECT_EQ(derivedCheckpointPath("v1.2/state", 1),
              "v1.2/state-0000000000000001");
}

TEST(SweepRunner, ResultsAreIdenticalAcrossJobCounts)
{
    const std::vector<RunSpec> specs = smallGrid();

    SweepRunner serial(SweepRunner::Config{1, 0});
    SweepRunner four(SweepRunner::Config{4, 0});
    SweepRunner eight(SweepRunner::Config{8, 0});
    const std::vector<RunResult> r1 = serial.run(specs);
    const std::vector<RunResult> r4 = four.run(specs);
    const std::vector<RunResult> r8 = eight.run(specs);

    ASSERT_EQ(r1.size(), specs.size());
    ASSERT_EQ(r4.size(), specs.size());
    ASSERT_EQ(r8.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(r1[i].status.ok()) << r1[i].status.toString();
        // Bit-identical counters, not tolerances.
        EXPECT_EQ(r1[i].engine, r4[i].engine) << "cell " << i;
        EXPECT_EQ(r1[i].engine, r8[i].engine) << "cell " << i;
        EXPECT_EQ(r1[i].numRegions, r4[i].numRegions);
        EXPECT_EQ(r1[i].pguBits, r4[i].pguBits);
    }
    // And the rendered artifact is byte-identical.
    EXPECT_EQ(gridCsv(specs, r1), gridCsv(specs, r4));
    EXPECT_EQ(gridCsv(specs, r1), gridCsv(specs, r8));

    // Sanity: the grid is not degenerate - configs actually differ.
    EXPECT_NE(r1[0].engine.all.mispredicts,
              r1[2].engine.all.mispredicts);
}

TEST(SweepRunner, CompilesEachProgramOnce)
{
    // Nine cells over three workloads: three compiles, six cache hits,
    // regardless of thread count.
    const std::vector<RunSpec> specs = smallGrid(15000);
    SweepRunner runner(SweepRunner::Config{4, 0});
    const std::vector<RunResult> results = runner.run(specs);
    for (const RunResult &result : results)
        ASSERT_TRUE(result.status.ok()) << result.status.toString();
    EXPECT_EQ(runner.cacheStats().compiles, 3u);
    EXPECT_EQ(runner.cacheStats().hits, 6u);
}

TEST(SweepRunner, CrossInputSpecsCompileSeparately)
{
    RunSpec same;
    same.workload = "dchain";
    same.maxInsts = 10000;
    RunSpec cross = same;
    cross.compileSeed = 7; // profile from another input
    SweepRunner runner(SweepRunner::Config{1, 0});
    const std::vector<RunResult> results = runner.run({same, cross});
    ASSERT_TRUE(results[0].status.ok());
    ASSERT_TRUE(results[1].status.ok());
    EXPECT_EQ(runner.cacheStats().compiles, 2u);
    EXPECT_EQ(runner.cacheStats().hits, 0u);
}

TEST(SweepRunner, FactoryWorkloadsRun)
{
    RunSpec spec;
    spec.workload = "bias-0.70"; // unique cache id for this variant
    spec.factory = [](std::uint64_t s) {
        return makeBiasWorkload(0.70, s);
    };
    spec.maxInsts = 10000;
    SweepRunner runner;
    RunResult result = runner.runOne(spec);
    ASSERT_TRUE(result.status.ok()) << result.status.toString();
    EXPECT_GT(result.engine.all.branches, 0u);
}

TEST(SweepRunner, BadCellFailsTypedWhileGridCompletes)
{
    std::vector<RunSpec> specs = smallGrid(10000);
    specs[1].predictor = "no-such-predictor";
    specs[4].workload = "no-such-workload";

    SweepRunner runner(SweepRunner::Config{4, 0});
    const std::vector<RunResult> results = runner.run(specs);

    EXPECT_EQ(results[1].status.code(), StatusCode::NotFound);
    EXPECT_EQ(results[4].status.code(), StatusCode::NotFound);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 1 || i == 4)
            continue;
        EXPECT_TRUE(results[i].status.ok())
            << "cell " << i << ": " << results[i].status.toString();
        EXPECT_GT(results[i].engine.insts, 0u);
    }

    std::ostringstream err;
    EXPECT_EQ(reportFailures(specs, results, err), 2u);
    EXPECT_NE(err.str().find("no-such-predictor"), std::string::npos);
}

TEST(SweepRunner, ObserveWithoutObserverIsInvalid)
{
    RunSpec spec;
    spec.workload = "bsort";
    spec.mode = RunMode::Observe;
    SweepRunner runner;
    EXPECT_EQ(runner.runOne(spec).status.code(),
              StatusCode::InvalidArgument);
}

TEST(SweepCheckpoint, CellsInOneDirectoryDoNotCollide)
{
    // Regression: two cells checkpointing under the same base name.
    // The old harness used the literal path for both, so the second
    // cell's saves overwrote the first's and only one could resume.
    const std::string base = tempPath("shared.ckpt");

    std::vector<RunSpec> specs;
    for (std::uint64_t seed : {42ull, 99ull}) {
        RunSpec spec;
        spec.workload = "dchain";
        spec.seed = seed;
        spec.maxInsts = 12000;
        spec.checkpointEvery = 3000;
        spec.checkpointPath = base;
        specs.push_back(spec);
    }
    const std::string path_a =
        derivedCheckpointPath(base, specFingerprint(specs[0]));
    const std::string path_b =
        derivedCheckpointPath(base, specFingerprint(specs[1]));
    ASSERT_NE(path_a, path_b);

    SweepRunner writer(SweepRunner::Config{1, 0});
    const std::vector<RunResult> first = writer.run(specs);
    ASSERT_TRUE(first[0].status.ok()) << first[0].status.toString();
    ASSERT_TRUE(first[1].status.ok()) << first[1].status.toString();
    EXPECT_TRUE(fileExists(path_a));
    EXPECT_TRUE(fileExists(path_b));

    // BOTH cells must resume from their own file and land on their
    // own counters - this is exactly what the literal-path harness
    // could not do.
    std::vector<RunSpec> resumes = specs;
    for (RunSpec &spec : resumes)
        spec.resumePath = base;
    SweepRunner reader(SweepRunner::Config{1, 0});
    const std::vector<RunResult> second = reader.run(resumes);
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(second[i].status.ok())
            << second[i].status.toString();
        EXPECT_TRUE(second[i].resumed) << "cell " << i;
        EXPECT_EQ(second[i].engine, first[i].engine) << "cell " << i;
    }
    // The two runs really were different work.
    EXPECT_NE(first[0].engine, first[1].engine);

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(SweepCheckpoint, MissingResumeFileFallsBackWithoutRecompiling)
{
    // Regression: the old runTraceSpec handled a failed resume by
    // calling itself, which recompiled the workload. The fallback
    // must rebuild only per-run state: exactly one compile.
    RunSpec spec;
    spec.workload = "matrix";
    spec.maxInsts = 10000;
    spec.resumePath = tempPath("never-written.ckpt");

    SweepRunner runner(SweepRunner::Config{1, 0});
    const std::uint64_t compiles_before = compileWorkloadCount();
    RunResult result = runner.runOne(spec);
    const std::uint64_t compiles_after = compileWorkloadCount();

    ASSERT_TRUE(result.status.ok()) << result.status.toString();
    EXPECT_FALSE(result.resumed);
    EXPECT_GT(result.engine.insts, 0u);
    EXPECT_EQ(compiles_after - compiles_before, 1u);
}

TEST(SweepCheckpoint, MismatchedResumeFallsBackWithoutRecompiling)
{
    const std::string base = tempPath("mismatch.ckpt");

    // Write a checkpoint under spec A's configuration...
    RunSpec a;
    a.workload = "dchain";
    a.maxInsts = 8000;
    a.checkpointEvery = 4000;
    a.checkpointPath = base;
    SweepRunner writer(SweepRunner::Config{1, 0});
    ASSERT_TRUE(writer.runOne(a).status.ok());

    // ...and plant it where spec B (different engine config) will
    // look for its own. The loader flags the configuration mismatch;
    // the runner must fall back to a fresh run of B, compiling once.
    RunSpec b = a;
    b.checkpointEvery = 0;
    b.engine.useSfpf = true;
    b.resumePath = base;
    const std::string path_a =
        derivedCheckpointPath(base, specFingerprint(a));
    const std::string path_b =
        derivedCheckpointPath(base, specFingerprint(b));
    ASSERT_NE(path_a, path_b);
    copyFile(path_a, path_b);

    SweepRunner reader(SweepRunner::Config{1, 0});
    const std::uint64_t compiles_before = compileWorkloadCount();
    RunResult result = reader.runOne(b);
    const std::uint64_t compiles_after = compileWorkloadCount();

    ASSERT_TRUE(result.status.ok()) << result.status.toString();
    EXPECT_FALSE(result.resumed);
    EXPECT_EQ(result.engine.insts, b.maxInsts);
    EXPECT_EQ(compiles_after - compiles_before, 1u);

    // An equivalent fresh run matches: the failed load leaked no
    // state into the measured run.
    RunSpec fresh = b;
    fresh.resumePath.clear();
    RunResult clean = SweepRunner().runOne(fresh);
    EXPECT_EQ(result.engine, clean.engine);

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(SweepCheckpoint, DamagedResumeFileFailsTheCell)
{
    const std::string base = tempPath("damaged.ckpt");
    RunSpec spec;
    spec.workload = "bsort";
    spec.maxInsts = 6000;
    spec.resumePath = base;
    const std::string path =
        derivedCheckpointPath(base, specFingerprint(spec));
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "this is not a checkpoint";
    }
    SweepRunner runner;
    RunResult result = runner.runOne(spec);
    EXPECT_FALSE(result.status.ok());
    // Damage is an error, not a silent fresh restart.
    EXPECT_NE(result.status.code(), StatusCode::IoError);
    EXPECT_NE(result.status.code(), StatusCode::InvalidArgument);
    std::remove(path.c_str());
}

TEST(SweepCheckpoint, ResumeMatchesUninterruptedRun)
{
    // End-to-end through the sweep layer: run half the budget with
    // checkpoints, resume to the full budget, compare against one
    // uninterrupted run.
    const std::string base = tempPath("split.ckpt");
    RunSpec half;
    half.workload = "interp";
    half.maxInsts = 10000;
    half.checkpointEvery = 5000;
    half.checkpointPath = base;
    SweepRunner runner(SweepRunner::Config{1, 0});
    ASSERT_TRUE(runner.runOne(half).status.ok());

    RunSpec full = half;
    full.maxInsts = 20000;
    full.resumePath = base;
    // Same behaviour fingerprint is required to find the file, and
    // maxInsts is part of it - so resume across budgets goes through
    // an explicit alias: the checkpoint was written by the half spec.
    const std::string half_path =
        derivedCheckpointPath(base, specFingerprint(half));
    const std::string full_path =
        derivedCheckpointPath(base, specFingerprint(full));
    copyFile(half_path, full_path);
    RunResult resumed = runner.runOne(full);
    ASSERT_TRUE(resumed.status.ok()) << resumed.status.toString();
    EXPECT_TRUE(resumed.resumed);

    RunSpec straight = full;
    straight.resumePath.clear();
    straight.checkpointEvery = 0;
    RunResult uninterrupted = runner.runOne(straight);
    EXPECT_EQ(resumed.engine, uninterrupted.engine);

    std::remove(half_path.c_str());
    std::remove(full_path.c_str());
}

// ---------------------------------------------------------------------
// Robust execution layer: shard filter, retry, watchdog, fallback
// accounting (the RunSpec robustness knobs).

TEST(SweepRobustness, ShardsPartitionTheGridDisjointly)
{
    const std::vector<RunSpec> grid = smallGrid(5000);
    constexpr std::uint32_t shards = 3;

    // Pure-function partition: every fingerprint is owned by exactly
    // one shard, computable without running anything.
    for (const RunSpec &spec : grid) {
        const std::uint64_t fp = specFingerprint(spec);
        unsigned owners = 0;
        for (std::uint32_t s = 0; s < shards; ++s)
            owners += shardOf(fp, shards) == s ? 1 : 0;
        EXPECT_EQ(owners, 1u);
    }

    // Through the runner: non-owned cells are skipped IN PLACE (grid
    // layout preserved, Ok status); owned cells match the unsharded
    // run bit for bit.
    SweepRunner plain_runner(SweepRunner::Config{2, 0});
    const std::vector<RunResult> plain = plain_runner.run(grid);
    std::size_t executed_total = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
        std::vector<RunSpec> sharded = grid;
        for (RunSpec &spec : sharded)
            spec.shard = ShardSpec{s, shards};
        SweepRunner runner(SweepRunner::Config{2, 0});
        const std::vector<RunResult> results = runner.run(sharded);
        ASSERT_EQ(results.size(), grid.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_TRUE(results[i].status.ok());
            const bool owned =
                shardOf(specFingerprint(grid[i]), shards) == s;
            EXPECT_EQ(results[i].skipped, !owned);
            if (owned) {
                ++executed_total;
                EXPECT_EQ(results[i].engine, plain[i].engine);
            } else {
                EXPECT_EQ(results[i].engine.insts, 0u);
            }
        }
    }
    EXPECT_EQ(executed_total, grid.size());
}

TEST(SweepRobustness, RetryableFailuresAreRetriedBoundedly)
{
    RunSpec spec;
    spec.workload = "bsort";
    spec.maxInsts = 3000;
    spec.maxAttempts = 3;
    // Transient environment failure: the first two attempts die with
    // IoError, the third succeeds.
    spec.faultHook = [](unsigned attempt) {
        return attempt < 3
            ? Status(StatusCode::IoError, "injected transient failure")
            : Status();
    };
    SweepRunner runner(SweepRunner::Config{1, 0});
    RunResult healed = runner.runOne(spec);
    EXPECT_TRUE(healed.status.ok()) << healed.status.toString();
    EXPECT_EQ(healed.attempts, 3u);

    // The attempt budget is a hard bound.
    spec.maxAttempts = 2;
    RunResult exhausted = runner.runOne(spec);
    EXPECT_EQ(exhausted.status.code(), StatusCode::IoError);
    EXPECT_EQ(exhausted.attempts, 2u);

    // Deterministic failures do not burn retries.
    spec.maxAttempts = 3;
    spec.faultHook = [](unsigned) {
        return Status(StatusCode::Corrupt, "poisoned cell");
    };
    RunResult poisoned = runner.runOne(spec);
    EXPECT_EQ(poisoned.status.code(), StatusCode::Corrupt);
    EXPECT_EQ(poisoned.attempts, 1u);
}

/** An Observe-mode cell whose per-instruction closure sleeps: the
 *  watchdog must reap it instead of letting it run its (wall-clock
 *  enormous) budget out. */
RunSpec
hungObserveSpec()
{
    RunSpec spec;
    spec.workload = "bsort";
    spec.mode = RunMode::Observe;
    spec.maxInsts = 200000;
    spec.observe = [](const DynInst &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    spec.watchdogMillis = 25;
    spec.heartbeatInsts = 4;
    return spec;
}

TEST(SweepRobustness, WatchdogReapsAnOverrunningCell)
{
    SweepRunner runner(SweepRunner::Config{1, 0});
    RunResult result = runner.runOne(hungObserveSpec());
    EXPECT_EQ(result.status.code(), StatusCode::DeadlineExceeded);
    // The message is deliberately wall-clock-free: it lands in
    // quarantine journal records whose bytes must converge.
    EXPECT_EQ(result.status.message().find("after"), std::string::npos);
}

TEST(SweepRobustness, ResumeFallbackIsFlaggedAndCounted)
{
    RunSpec spec;
    spec.workload = "bsort";
    spec.maxInsts = 3000;
    spec.resumePath = tempPath("never-written.ckpt");
    SweepRunner runner(SweepRunner::Config{1, 0});
    EXPECT_EQ(runner.resumeFallbacks(), 0u);
    RunResult result = runner.runOne(spec);
    ASSERT_TRUE(result.status.ok()) << result.status.toString();
    EXPECT_FALSE(result.resumed);
    EXPECT_TRUE(result.resumeFallback);
    EXPECT_EQ(runner.resumeFallbacks(), 1u);
}

TEST(SweepRobustness, CapturedMetricsMatchExportedFile)
{
    const std::string dir = tempPath("metricsdir");
    RunSpec spec;
    spec.workload = "bsort";
    spec.maxInsts = 3000;
    spec.metricsDir = dir;
    spec.captureMetrics = true;
    SweepRunner runner(SweepRunner::Config{1, 0});
    RunResult result = runner.runOne(spec);
    ASSERT_TRUE(result.status.ok()) << result.status.toString();
    ASSERT_FALSE(result.metricsJson.empty());

    std::ifstream in(metricsFilePath(dir, specFingerprint(spec)),
                     std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream file_bytes;
    file_bytes << in.rdbuf();
    EXPECT_EQ(result.metricsJson, file_bytes.str());
}

// ---------------------------------------------------------------------
// SweepService: the crash-safe campaign coordinator
// (bench/sweep_service.hh).

std::string
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

ServiceConfig
serviceConfig(const std::string &journal)
{
    ServiceConfig config;
    config.journalPath = journal;
    config.batchCells = 2; // small batches: more commit boundaries
    return config;
}

TEST(SweepService, DrainsAGridIntoTheJournal)
{
    const std::string journal = tempPath("drain.pabpj");
    const std::vector<RunSpec> grid = smallGrid(4000);
    SweepRunner runner(SweepRunner::Config{2, 0});
    SweepService service(runner, serviceConfig(journal));
    Expected<ServiceReport> report = service.runShard(grid);
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_TRUE(report.value().drained);
    EXPECT_EQ(report.value().ownedCells, grid.size());
    EXPECT_EQ(report.value().executed, grid.size());
    EXPECT_EQ(report.value().quarantined, 0u);

    Expected<std::vector<JournalRecord>> records =
        readJournalFile(journal);
    ASSERT_TRUE(records.ok()) << records.status().toString();
    ASSERT_EQ(records.value().size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(records.value()[i].fingerprint,
                  specFingerprint(grid[i]));
        EXPECT_EQ(records.value()[i].kind, JournalRecord::Kind::Result);
        EXPECT_FALSE(records.value()[i].blob.empty());
    }
    std::remove(journal.c_str());
}

TEST(SweepService, KillAndResumeConvergeToIdenticalJournalBytes)
{
    const std::vector<RunSpec> grid = smallGrid(4000);

    // Reference: one uninterrupted single-threaded campaign.
    const std::string clean = tempPath("clean.pabpj");
    {
        SweepRunner runner(SweepRunner::Config{1, 0});
        SweepService service(runner, serviceConfig(clean));
        Expected<ServiceReport> report = service.runShard(grid);
        ASSERT_TRUE(report.ok()) << report.status().toString();
        ASSERT_TRUE(report.value().drained);
    }

    // The same campaign killed twice mid-flight (the stopAfter hook
    // models SIGKILL between record commits), then re-invoked to
    // completion - at a different worker count for good measure.
    const std::string bumpy = tempPath("bumpy.pabpj");
    const std::uint64_t stops[] = {2, 3, 0};
    for (std::uint64_t stop : stops) {
        SweepRunner runner(SweepRunner::Config{stop ? 1u : 8u, 0});
        ServiceConfig config = serviceConfig(bumpy);
        config.stopAfter = stop;
        SweepService service(runner, config);
        Expected<ServiceReport> report = service.runShard(grid);
        ASSERT_TRUE(report.ok()) << report.status().toString();
        EXPECT_EQ(report.value().stopped, stop != 0);
        EXPECT_EQ(report.value().drained, stop == 0);
    }

    EXPECT_EQ(readBytes(bumpy), readBytes(clean));
    std::remove(clean.c_str());
    std::remove(bumpy.c_str());
}

TEST(SweepService, QuarantinesPoisonCellsAndStillDrains)
{
    std::vector<RunSpec> grid = smallGrid(4000);
    grid[4].faultHook = [](unsigned) {
        return Status(StatusCode::Corrupt, "poisoned cell");
    };

    const std::string journal = tempPath("poison.pabpj");
    SweepRunner runner(SweepRunner::Config{2, 0});
    SweepService service(runner, serviceConfig(journal));
    Expected<ServiceReport> report = service.runShard(grid);
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_TRUE(report.value().drained);
    EXPECT_EQ(report.value().quarantined, 1u);
    const std::string first_bytes = readBytes(journal);

    Expected<std::vector<JournalRecord>> records =
        readJournalFile(journal);
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records.value().size(), grid.size());
    EXPECT_EQ(records.value()[4].kind, JournalRecord::Kind::Quarantine);
    EXPECT_EQ(records.value()[4].statusCode,
              static_cast<std::uint8_t>(StatusCode::Corrupt));
    EXPECT_NE(records.value()[4].blob.find("poisoned cell"),
              std::string::npos);

    // Re-invoking re-runs ONLY the quarantined cell; the
    // deterministic failure re-quarantines, and the drain compaction
    // converges back to the same bytes.
    Expected<ServiceReport> again = service.runShard(grid);
    ASSERT_TRUE(again.ok()) << again.status().toString();
    EXPECT_EQ(again.value().alreadyDone, grid.size() - 1);
    EXPECT_EQ(again.value().executed, 1u);
    EXPECT_EQ(again.value().quarantined, 1u);
    EXPECT_EQ(readBytes(journal), first_bytes);
    std::remove(journal.c_str());
}

TEST(SweepService, WatchdogQuarantineDoesNotStallTheShard)
{
    std::vector<RunSpec> grid = smallGrid(4000);
    grid.push_back(hungObserveSpec());

    const std::string journal = tempPath("hung.pabpj");
    SweepRunner runner(SweepRunner::Config{2, 0});
    SweepService service(runner, serviceConfig(journal));
    Expected<ServiceReport> report = service.runShard(grid);
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_TRUE(report.value().drained);
    EXPECT_EQ(report.value().quarantined, 1u);

    Expected<std::vector<JournalRecord>> records =
        readJournalFile(journal);
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records.value().size(), grid.size());
    EXPECT_EQ(records.value().back().kind,
              JournalRecord::Kind::Quarantine);
    EXPECT_EQ(records.value().back().statusCode,
              static_cast<std::uint8_t>(StatusCode::DeadlineExceeded));
    for (std::size_t i = 0; i + 1 < records.value().size(); ++i)
        EXPECT_EQ(records.value()[i].kind, JournalRecord::Kind::Result);
    std::remove(journal.c_str());
}

TEST(SweepService, ShardJournalsTogetherCoverTheGridExactlyOnce)
{
    const std::vector<RunSpec> grid = smallGrid(4000);
    constexpr std::uint32_t shards = 2;
    std::map<std::uint64_t, unsigned> coverage;
    std::uint64_t owned_total = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
        const std::string journal =
            deriveShardJournalPath(tempPath("cover.pabpj"),
                                   ShardSpec{s, shards});
        ServiceConfig config = serviceConfig(journal);
        config.shard = ShardSpec{s, shards};
        SweepRunner runner(SweepRunner::Config{2, 0});
        SweepService service(runner, config);
        Expected<ServiceReport> report = service.runShard(grid);
        ASSERT_TRUE(report.ok()) << report.status().toString();
        EXPECT_TRUE(report.value().drained);
        owned_total += report.value().ownedCells;

        JournalHeader header;
        Expected<std::vector<JournalRecord>> records =
            readJournalFile(journal, {}, &header);
        ASSERT_TRUE(records.ok());
        EXPECT_EQ(header.shardIndex, s);
        EXPECT_EQ(header.shardCount, shards);
        for (const JournalRecord &rec : records.value())
            ++coverage[rec.fingerprint];
        std::remove(journal.c_str());
    }
    EXPECT_EQ(owned_total, grid.size());
    EXPECT_EQ(coverage.size(), grid.size());
    for (const RunSpec &spec : grid) {
        auto it = coverage.find(specFingerprint(spec));
        ASSERT_NE(it, coverage.end());
        EXPECT_EQ(it->second, 1u);
    }
}

TEST(SweepService, DeriveShardJournalPathNamesShards)
{
    EXPECT_EQ(deriveShardJournalPath("results/e6.pabpj", {0, 1}),
              "results/e6.pabpj");
    EXPECT_EQ(deriveShardJournalPath("results/e6.pabpj", {2, 4}),
              "results/e6-shard2of4.pabpj");
    EXPECT_EQ(deriveShardJournalPath("plain", {1, 2}),
              "plain-shard1of2");
    EXPECT_EQ(deriveShardJournalPath("dir.d/plain", {1, 2}),
              "dir.d/plain-shard1of2");
}

} // namespace
} // namespace pabp::bench
