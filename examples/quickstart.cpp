/**
 * @file
 * Quickstart: build a tiny branchy program, if-convert it, and compare
 * a plain gshare against gshare + the paper's two techniques.
 *
 * Run: ./build/examples/quickstart
 */

#include <cstdio>

#include "bpred/gshare.hh"
#include "core/engine.hh"
#include "sim/emulator.hh"
#include "workloads/workload.hh"

using namespace pabp;

namespace {

/** One measurement: compile mode x engine config -> mispredict rate. */
EngineStats
measure(Workload wl, bool if_convert, bool sfpf, bool pgu)
{
    CompileOptions copts;
    copts.ifConvert = if_convert;
    CompiledProgram compiled = compileWorkload(wl, copts);

    GSharePredictor gshare(12);
    EngineConfig ecfg;
    ecfg.useSfpf = sfpf;
    ecfg.usePgu = pgu;
    PredictionEngine engine(gshare, ecfg);

    Emulator emu(compiled.prog);
    if (wl.init)
        wl.init(emu.state());
    runTrace(emu, engine, wl.defaultSteps);
    return engine.stats();
}

void
report(const char *label, const EngineStats &stats)
{
    std::printf("%-28s branches=%9llu  mispredict=%6.3f%%  "
                "squashed=%llu\n",
                label,
                static_cast<unsigned long long>(stats.all.branches),
                100.0 * stats.all.mispredictRate(),
                static_cast<unsigned long long>(stats.all.squashed));
}

} // namespace

int
main()
{
    std::printf("predicate-aware branch prediction quickstart\n");
    std::printf("workload: dchain (correlated diamond chain)\n\n");

    std::uint64_t seed = 1234;
    report("branchy baseline (gshare)",
           measure(makeDchain(seed), false, false, false));
    report("predicated, gshare",
           measure(makeDchain(seed), true, false, false));
    report("predicated, +SFPF",
           measure(makeDchain(seed), true, true, false));
    report("predicated, +PGU",
           measure(makeDchain(seed), true, false, true));
    report("predicated, +SFPF +PGU",
           measure(makeDchain(seed), true, true, true));

    std::printf("\nSFPF squashes false-path branches with certainty; "
                "PGU restores the\ncorrelation that if-conversion "
                "moved out of the branch history.\n");
    return 0;
}
