/**
 * @file
 * Trace record/replay/inspect tool built on the sim/trace_io API.
 *
 *   tracetool --record=dchain --out=dchain.trace [--steps=1000000]
 *   tracetool --replay=dchain.trace [--predictor=gshare] [--sfpf] [--pgu]
 *   tracetool --inspect=dchain.trace
 *
 * Record once, then sweep predictor configurations over the same
 * dynamic stream without re-emulating - the standard trace-driven
 * methodology, end to end.
 */

#include <cstdio>
#include <string>

#include "bpred/factory.hh"
#include "core/checkpoint.hh"
#include "core/engine.hh"
#include "sim/trace_io.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "workloads/workload.hh"

using namespace pabp;

namespace {

int
doRecord(const Options &opts)
{
    std::string name = opts.str("record");
    std::string out = opts.str("out");
    auto steps = static_cast<std::uint64_t>(opts.integer("steps"));

    Workload wl = makeWorkload(name, 42);
    CompileOptions copts;
    CompiledProgram cp = compileWorkload(wl, copts);
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    RecordedTrace trace = recordTrace(emu, steps);
    saveTraceFile(trace, out);
    std::printf("recorded %zu events of %s into %s\n", trace.size(),
                name.c_str(), out.c_str());
    return 0;
}

int
doReplay(const Options &opts)
{
    TraceReadOptions topts;
    topts.salvage = opts.flag("salvage");
    TraceReadInfo tinfo;
    Expected<RecordedTrace> loaded =
        tryLoadTraceFile(opts.str("replay"), topts, &tinfo);
    if (!loaded.ok())
        pabp_fatal(loaded.status().toString());
    const RecordedTrace &trace = loaded.value();
    if (tinfo.salvaged)
        std::printf("salvaged trace: kept %zu events, dropped %llu\n",
                    trace.size(),
                    static_cast<unsigned long long>(
                        tinfo.eventsDropped));

    PredictorPtr pred = makePredictor(
        opts.str("predictor"),
        static_cast<unsigned>(opts.integer("size-log2")));
    EngineConfig ecfg;
    ecfg.useSfpf = opts.flag("sfpf");
    ecfg.usePgu = opts.flag("pgu");
    PredictionEngine engine(*pred, ecfg);

    // Optional checkpoint/resume around the replay loop. The replay
    // cursor travels inside the checkpoint, so a resumed run picks up
    // exactly where the saved one stopped.
    std::uint64_t pos = 0;
    std::string ckpt_path = opts.str("checkpoint-file");
    auto every =
        static_cast<std::uint64_t>(opts.integer("checkpoint-every"));
    if (!opts.str("resume").empty()) {
        CheckpointRefs refs{nullptr, &engine, &pos};
        Status status = loadCheckpoint(opts.str("resume"), refs);
        if (!status.ok())
            pabp_fatal(status.toString());
        std::printf("resumed at event %llu from %s\n",
                    static_cast<unsigned long long>(pos),
                    opts.str("resume").c_str());
    }
    if (every == 0) {
        replayTraceFrom(trace, engine, pos, trace.size());
    } else {
        while (pos < trace.size()) {
            pos = replayTraceFrom(trace, engine, pos, every);
            CheckpointRefs refs{nullptr, &engine, &pos};
            Status status = saveCheckpoint(ckpt_path, refs);
            if (!status.ok())
                pabp_fatal(status.toString());
        }
    }

    const EngineStats &s = engine.stats();
    std::printf("replayed %llu insts on %s (sfpf=%d pgu=%d)\n",
                static_cast<unsigned long long>(s.insts),
                pred->name().c_str(), ecfg.useSfpf, ecfg.usePgu);
    std::printf("  cond branches : %llu\n",
                static_cast<unsigned long long>(s.all.branches));
    std::printf("  mispredicts   : %llu (%.3f%%)\n",
                static_cast<unsigned long long>(s.all.mispredicts),
                100.0 * s.all.mispredictRate());
    std::printf("  squashed      : %llu\n",
                static_cast<unsigned long long>(s.all.squashed));
    std::printf("  region branch : %llu (%.3f%% mispredict)\n",
                static_cast<unsigned long long>(s.region.branches),
                100.0 * s.region.mispredictRate());
    return 0;
}

int
doInspect(const Options &opts)
{
    RecordedTrace trace = loadTraceFile(opts.str("inspect"));
    std::uint64_t branches = 0, taken = 0, guards_false = 0;
    std::uint64_t defines = 0, region_insts = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        DynInst dyn = trace.materialise(i);
        if (dyn.inst->isConditionalBranch()) {
            ++branches;
            taken += dyn.taken;
            guards_false += !dyn.guard;
        }
        defines += dyn.inst->writesPredicate();
        region_insts += dyn.inst->regionId >= 0;
    }
    std::printf("trace: %zu events, %zu static instructions\n",
                trace.size(), trace.prog.size());
    std::printf("  cond branches  : %llu (%.1f%% taken, %.1f%% false "
                "guard)\n",
                static_cast<unsigned long long>(branches),
                branches ? 100.0 * taken / branches : 0.0,
                branches ? 100.0 * guards_false / branches : 0.0);
    std::printf("  pred defines   : %llu\n",
                static_cast<unsigned long long>(defines));
    std::printf("  region insts   : %llu (%.1f%%)\n",
                static_cast<unsigned long long>(region_insts),
                trace.size() ? 100.0 * region_insts / trace.size() : 0.0);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    opts.declare("record", "", "workload name to record");
    opts.declare("out", "out.trace", "output path for --record");
    opts.declare("replay", "", "trace file to replay");
    opts.declare("inspect", "", "trace file to summarise");
    opts.declare("steps", "1000000", "events to record");
    opts.declare("predictor", "gshare", "predictor kind for --replay");
    opts.declare("size-log2", "12", "predictor size for --replay");
    opts.declare("sfpf", "0", "arm the squash filter on replay");
    opts.declare("pgu", "0", "arm predicate global update on replay");
    opts.declare("salvage", "0",
                 "recover the valid prefix of a damaged trace");
    opts.declare("checkpoint-every", "0",
                 "checkpoint the replay every N events (0 = off)");
    opts.declare("checkpoint-file", "pabp.ckpt",
                 "checkpoint path for --checkpoint-every");
    opts.declare("resume", "", "resume replay from a checkpoint file");
    if (!opts.parse(argc, argv))
        return 0;

    if (!opts.str("record").empty())
        return doRecord(opts);
    if (!opts.str("replay").empty())
        return doReplay(opts);
    if (!opts.str("inspect").empty())
        return doInspect(opts);
    opts.printHelp(argv[0]);
    return 1;
}
