/**
 * @file
 * Predictor face-off: run the whole workload suite against the whole
 * predictor family, with and without the paper's techniques, and
 * print a league table. A compact way to explore the library's
 * predictor zoo from the command line.
 *
 * Run: ./build/examples/predictor_faceoff [--size-log2=12]
 *      [--steps=1000000] [--sfpf] [--pgu]
 */

#include <iostream>

#include "bpred/factory.hh"
#include "core/engine.hh"
#include "sim/emulator.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace pabp;

int
main(int argc, char **argv)
{
    Options opts;
    opts.declare("size-log2", "12", "predictor table size (log2)");
    opts.declare("steps", "1000000", "instructions per run");
    opts.declare("sfpf", "0", "arm the squash false path filter");
    opts.declare("pgu", "0", "arm predicate global update");
    if (!opts.parse(argc, argv))
        return 0;

    unsigned size_log2 = static_cast<unsigned>(opts.integer("size-log2"));
    auto steps = static_cast<std::uint64_t>(opts.integer("steps"));
    EngineConfig ecfg;
    ecfg.useSfpf = opts.flag("sfpf");
    ecfg.usePgu = opts.flag("pgu");

    const std::vector<std::string> kinds = {"bimodal", "gag", "gshare",
                                            "local", "comb"};

    std::cout << "predictor face-off on predicated code (2^" << size_log2
              << " entries, sfpf=" << ecfg.useSfpf
              << ", pgu=" << ecfg.usePgu << ")\n\n";

    std::vector<std::string> header = {"workload"};
    for (const auto &kind : kinds)
        header.push_back(kind);
    Table table(header);

    std::vector<double> totals(kinds.size(), 0.0);
    for (const std::string &name : workloadNames()) {
        table.startRow();
        table.cell(name);
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            Workload wl = makeWorkload(name, 42);
            CompileOptions copts;
            CompiledProgram cp = compileWorkload(wl, copts);
            PredictorPtr pred = makePredictor(kinds[k], size_log2);
            PredictionEngine engine(*pred, ecfg);
            Emulator emu(cp.prog);
            if (wl.init)
                wl.init(emu.state());
            runTrace(emu, engine, steps);
            double rate = engine.stats().all.mispredictRate();
            totals[k] += rate;
            table.percentCell(rate);
        }
    }
    table.startRow();
    table.cell(std::string("MEAN"));
    for (double t : totals)
        table.percentCell(t / static_cast<double>(workloadNames().size()));
    table.print(std::cout);

    std::cout << "\nTry --sfpf --pgu to see the paper's techniques "
                 "lift every column.\n";
    return 0;
}
