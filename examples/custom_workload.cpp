/**
 * @file
 * Building your own workload with the public API: construct a CFG
 * with IrBuilder, give it a memory image, compile it both ways, run
 * it on the pipeline, and read out the branch and timing statistics.
 * This is the template to copy when adding a benchmark.
 *
 * The program: scan a table of orders; for each order apply a
 * discount when quantity > 3 (hot diamond), and flag suspiciously
 * large orders (rare side condition -> region-based branch).
 *
 * Run: ./build/examples/custom_workload
 */

#include <cstdio>

#include "bpred/gshare.hh"
#include "pipeline/pipeline.hh"
#include "util/rng.hh"
#include "workloads/workload.hh"

using namespace pabp;

namespace {

Workload
makeOrderScanner(std::uint64_t seed)
{
    constexpr std::int64_t num_orders = 8192;
    constexpr std::int64_t out_base = 16384;
    constexpr std::int64_t flag_addr = 60000;
    constexpr std::int64_t passes = 20;

    Workload wl;
    wl.name = "order-scanner";
    wl.fn.name = wl.name;
    IrBuilder b(wl.fn);

    // regs: r1=i r3=N r4=quantity r5=price r12=passes
    BlockId entry = b.newBlock();
    BlockId pass_head = b.newBlock();
    BlockId pass_init = b.newBlock();
    BlockId head = b.newBlock();
    BlockId body = b.newBlock();
    BlockId discount = b.newBlock();
    BlockId tally = b.newBlock();
    BlockId flag = b.newBlock();
    BlockId latch = b.newBlock();
    BlockId pass_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, num_orders));
    b.append(makeMovImm(12, passes));
    b.jump(pass_head);

    b.setBlock(pass_head);
    b.condBrImm(CmpRel::Gt, 12, 0, pass_init, done);

    b.setBlock(pass_init);
    b.append(makeMovImm(1, 0));
    b.jump(head);

    b.setBlock(head);
    b.condBr(CmpRel::Lt, 1, 3, body, pass_latch);

    b.setBlock(body);
    b.append(makeLoad(4, 1, 0));             // quantity
    b.append(makeAluImm(Opcode::Mul, 5, 4, 7)); // price = 7 * qty
    b.condBrImm(CmpRel::Gt, 4, 3, discount, tally);

    b.setBlock(discount);
    b.append(makeAluImm(Opcode::Mul, 5, 5, 9));
    b.append(makeAluImm(Opcode::Shr, 5, 5, 3)); // price *= 9/8... off
    b.jump(tally);

    b.setBlock(tally);
    b.append(makeAluImm(Opcode::Add, 9, 1, out_base));
    b.append(makeStore(9, 0, 5));
    // Rare: very large orders get flagged.
    b.condBrImm(CmpRel::Gt, 4, 30, flag, latch);

    b.setBlock(flag);
    b.append(makeMovImm(10, flag_addr));
    b.append(makeStore(10, 0, 1));
    b.jump(latch);

    b.setBlock(latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(head);

    b.setBlock(pass_latch);
    b.append(makeAluImm(Opcode::Sub, 12, 12, 1));
    b.jump(pass_head);

    b.setBlock(done);
    b.halt();

    wl.init = [seed](ArchState &state) {
        Rng rng(seed);
        for (std::int64_t i = 0; i < num_orders; ++i) {
            // Quantities 0..9 common, >30 rare (~1.5%).
            std::int64_t qty = static_cast<std::int64_t>(rng.below(10));
            if (rng.below(64) == 0)
                qty = 31 + static_cast<std::int64_t>(rng.below(10));
            state.writeMem(i, qty);
        }
    };
    wl.defaultSteps = 4'000'000;
    return wl;
}

void
runConfig(const char *label, Workload wl, bool if_convert, bool sfpf,
          bool pgu)
{
    CompileOptions copts;
    copts.ifConvert = if_convert;
    CompiledProgram cp = compileWorkload(wl, copts);

    GSharePredictor gshare(12);
    EngineConfig ecfg;
    ecfg.useSfpf = sfpf;
    ecfg.usePgu = pgu;
    PredictionEngine engine(gshare, ecfg);
    Pipeline pipe(engine, PipelineConfig{});
    Emulator emu(cp.prog);
    if (wl.init)
        wl.init(emu.state());
    const PipelineStats &stats = pipe.run(emu, wl.defaultSteps);
    const EngineStats &es = engine.stats();

    std::printf("%-22s IPC=%5.3f  mispredict=%6.3f%%  squashed=%8llu  "
                "region-br=%8llu\n",
                label, stats.ipc(), 100.0 * es.all.mispredictRate(),
                static_cast<unsigned long long>(es.all.squashed),
                static_cast<unsigned long long>(es.region.branches));
}

} // namespace

int
main()
{
    std::printf("custom workload walkthrough: order-scanner\n\n");
    std::uint64_t seed = 7;
    runConfig("branchy", makeOrderScanner(seed), false, false, false);
    runConfig("predicated", makeOrderScanner(seed), true, false, false);
    runConfig("predicated+SFPF", makeOrderScanner(seed), true, true,
              false);
    runConfig("predicated+SFPF+PGU", makeOrderScanner(seed), true, true,
              true);
    std::printf("\nSee examples/custom_workload.cpp for the full "
                "construction recipe.\n");
    return 0;
}
