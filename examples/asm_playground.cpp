/**
 * @file
 * Assembler playground: write predicated assembly by hand, run it,
 * and watch the squash filter work on it. The built-in demo program
 * is a hand-scheduled hyperblock - guard defines at the top, guarded
 * work in the middle, a region-style side exit at the bottom - the
 * shape the compiler generates, written by a human.
 *
 * Run: ./build/examples/asm_playground [path/to/file.s]
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bpred/gshare.hh"
#include "core/engine.hh"
#include "isa/assembler.hh"
#include "sim/emulator.hh"

using namespace pabp;

namespace {

const char *demoSource = R"(
; Hand-written predicated kernel: sum positives of a[0..255], count
; negatives via guarded paths. Scheduled like a hyperblock: the loop
; exit's guard is defined at the TOP of the body and its branch sits
; at the BOTTOM, eight instructions later - far enough for the squash
; filter to know the guard by fetch time and filter the branch on
; every iteration but the last.
;
; r1 = i, r2 = limit, r3 = value, r4 = sum, r5 = negative count
        mov r1 = 0
        mov r2 = 256
loop:
        cmp.lt.unc p1, p2 = r1, r2      ; p2 = loop-exit guard (early)
        ld r3 = [r1]
        cmp.ge.unc p3, p4 = r3, 0       ; p3 = value >= 0
        (p3) add r4 = r4, r3            ; guarded accumulate
        (p4) add r5 = r5, 1             ; guarded negative count
        add r1 = r1, 1
        xor r6 = r6, r3                 ; filler work
        xor r6 = r6, r1                 ; filler work
        (p2) br done                    ; side exit, distance 8
        br loop
done:
        st [r2 + 100] = r4
        st [r2 + 101] = r5
        halt
)";

} // namespace

int
main(int argc, char **argv)
{
    std::string source = demoSource;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        source = buffer.str();
    }

    Expected<Program> assembled = assembleProgram(source, "playground");
    if (!assembled.ok()) {
        std::fprintf(stderr, "assembly error: %s\n",
                     assembled.status().toString().c_str());
        return 1;
    }
    std::string problem = validateProgram(assembled.value());
    if (!problem.empty()) {
        std::fprintf(stderr, "invalid program: %s\n", problem.c_str());
        return 1;
    }

    std::printf("=== listing ===\n%s\n",
                assembled.value().disassembleAll().c_str());

    GSharePredictor gshare(10);
    EngineConfig ecfg;
    ecfg.useSfpf = true;
    PredictionEngine engine(gshare, ecfg);
    Emulator emu(assembled.value(), EmuConfig{1 << 12, 1'000'000});
    // Demo input: signed values in [-128, 127].
    for (std::int64_t i = 0; i < 256; ++i)
        emu.state().writeMem(i, (i * 37 % 255) - 128);
    runTrace(emu, engine, 1'000'000);

    const EngineStats &s = engine.stats();
    std::printf("=== run ===\n");
    std::printf("instructions : %llu (halted=%d)\n",
                static_cast<unsigned long long>(s.insts),
                emu.state().halted);
    std::printf("sum / negs   : %lld / %lld\n",
                static_cast<long long>(emu.state().readMem(356)),
                static_cast<long long>(emu.state().readMem(357)));
    std::printf("cond branches: %llu, mispredicts %llu (%.2f%%), "
                "squashed %llu\n",
                static_cast<unsigned long long>(s.all.branches),
                static_cast<unsigned long long>(s.all.mispredicts),
                100.0 * s.all.mispredictRate(),
                static_cast<unsigned long long>(s.all.squashed));
    std::printf("\nEdit the source (see --help of tracetool for the "
                "replay flow) and\nfeed your own .s file as argv[1].\n");
    return 0;
}
