/**
 * @file
 * A guided tour of hyperblock formation: builds the filter workload,
 * shows the CFG with its profile, the selected regions, and the
 * before/after disassembly - highlighting the region-based branches
 * the paper studies and where their guard predicates are defined.
 *
 * Run: ./build/examples/region_branch_tour [workload-name]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "compiler/compile.hh"
#include "workloads/workload.hh"

using namespace pabp;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "filter";
    Workload wl = makeWorkload(name, 42);

    std::printf("=== %s: control-flow graph ===\n\n", name.c_str());
    profileFunction(wl.fn, wl.init, 200000);
    std::cout << wl.fn.dump() << "\n";

    HyperblockHeuristics heuristics;
    RegionAssignment regions = selectRegions(wl.fn, heuristics);
    std::printf("=== selected regions ===\n\n");
    for (std::size_t r = 0; r < regions.regions.size(); ++r) {
        std::printf("region %zu: blocks", r);
        for (BlockId b : regions.regions[r].blocks)
            std::printf(" bb%u", b);
        std::printf(" (seed bb%u)\n", regions.regions[r].seed());
    }

    std::printf("\n=== branchy lowering ===\n\n");
    CompiledProgram normal = lowerNormal(wl.fn);
    std::cout << normal.prog.disassembleAll();

    std::printf("\n=== if-converted lowering ===\n\n");
    CompiledProgram conv = lowerIfConverted(wl.fn, regions);
    std::cout << conv.prog.disassembleAll();

    std::printf("\n=== summary ===\n");
    std::printf("regions formed:         %zu\n", conv.info.numRegions);
    std::printf("branches if-converted:  %zu\n",
                conv.info.numIfConvertedBranches);
    std::printf("region-based branches:  %zu (the '; region-based' "
                "lines above)\n",
                conv.info.numRegionBranches);
    std::printf("\nNote how each region-based branch sits at the "
                "bottom of its region\nwhile its guard predicate is "
                "defined near the top - that distance is\nwhat the "
                "squash false path filter exploits.\n");
    return 0;
}
