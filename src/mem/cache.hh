/**
 * @file
 * Simple set-associative cache model with LRU replacement, used by
 * the pipeline for instruction and data access timing. This is a
 * hit/miss model (no coherence, no writeback contents) - all the
 * pipeline needs is latency.
 */

#ifndef PABP_MEM_CACHE_HH
#define PABP_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pabp {

/** Cache geometry. */
struct CacheConfig
{
    unsigned setsLog2 = 7;      ///< 128 sets
    unsigned ways = 4;
    unsigned lineWordsLog2 = 3; ///< 8 words per line
};

/** LRU set-associative cache (tag-only). Addresses are word indices. */
class Cache
{
  public:
    explicit Cache(CacheConfig config = CacheConfig{});

    /** Access a word address; returns true on hit. Misses fill. */
    bool access(std::uint64_t word_addr);

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }

    double
    missRate() const
    {
        std::uint64_t total = hitCount + missCount;
        return total ? static_cast<double>(missCount) /
                static_cast<double>(total)
                     : 0.0;
    }

    /** Total capacity in 64-bit words. */
    std::size_t capacityWords() const;

    void reset();

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
    };

    CacheConfig cfg;
    std::vector<Line> lines;
    std::uint64_t useClock = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

} // namespace pabp

#endif // PABP_MEM_CACHE_HH
