#include "mem/cache.hh"

#include "util/logging.hh"

namespace pabp {

Cache::Cache(CacheConfig config)
    : cfg(config), lines((std::size_t{1} << config.setsLog2) * config.ways)
{
    pabp_assert(config.ways >= 1);
}

bool
Cache::access(std::uint64_t word_addr)
{
    std::uint64_t line_addr = word_addr >> cfg.lineWordsLog2;
    std::uint64_t set = line_addr & ((std::uint64_t{1} << cfg.setsLog2) - 1);
    std::uint64_t tag = line_addr >> cfg.setsLog2;
    Line *base = &lines[set * cfg.ways];

    Line *victim = base;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = ++useClock;
            ++hitCount;
            return true;
        }
        if (!line.valid)
            victim = &line;
        else if (victim->valid && line.lastUse < victim->lastUse)
            victim = &line;
    }

    ++missCount;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = ++useClock;
    return false;
}

std::size_t
Cache::capacityWords() const
{
    return (std::size_t{1} << cfg.setsLog2) * cfg.ways *
        (std::size_t{1} << cfg.lineWordsLog2);
}

void
Cache::reset()
{
    for (auto &line : lines)
        line = Line{};
    useClock = 0;
    hitCount = 0;
    missCount = 0;
}

} // namespace pabp
