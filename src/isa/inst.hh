/**
 * @file
 * The predicated ISA at the heart of the reproduction.
 *
 * This is an EPIC-flavoured instruction set in the style of IA-64 /
 * the IMPACT EPIC research ISA: every instruction carries a qualifying
 * predicate (qp) and is a nop when that predicate is false (with the
 * IA-64 exception of unconditional compares, which still clear their
 * targets). Compare instructions write a pair of predicate registers
 * using the IA-64 compare-type semantics (normal, unc, and, or,
 * or.andcm, and.orcm), which is exactly the machinery hyperblock
 * if-conversion needs.
 *
 * Branches are IA-64 style: `(qp) br target` is taken iff qp is true.
 * The branch condition is always folded into the qualifying predicate
 * by a preceding compare, so "a branch guarded by a false predicate is
 * never taken" is an architectural invariant - the property the squash
 * false path filter exploits.
 */

#ifndef PABP_ISA_INST_HH
#define PABP_ISA_INST_HH

#include <cstdint>
#include <string>

namespace pabp {

/** Number of general-purpose integer registers; r0 is hard-wired 0. */
constexpr unsigned numGprs = 64;

/** Number of predicate registers; p0 is hard-wired true. */
constexpr unsigned numPredRegs = 64;

/** Operation codes. */
enum class Opcode : std::uint8_t
{
    Nop,
    Add,        ///< dst = src1 + src2/imm
    Sub,        ///< dst = src1 - src2/imm
    Mul,        ///< dst = src1 * src2/imm
    Div,        ///< dst = src1 / src2/imm (0 divisor yields 0)
    And,        ///< dst = src1 & src2/imm
    Or,         ///< dst = src1 | src2/imm
    Xor,        ///< dst = src1 ^ src2/imm
    Shl,        ///< dst = src1 << (src2/imm & 63)
    Shr,        ///< dst = (logical) src1 >> (src2/imm & 63)
    Mov,        ///< dst = src1 (or imm when hasImm)
    Cmp,        ///< (pdst1, pdst2) = src1 <crel> src2/imm per ctype
    PSet,       ///< pdst1 = imm & 1 (guarded predicate initialise)
    Load,       ///< dst = mem[src1 + imm]
    Store,      ///< mem[src1 + imm] = src2
    Br,         ///< taken iff qp; pc = target
    Call,       ///< push pc+1, pc = target (taken iff qp)
    Ret,        ///< pc = pop() (taken iff qp)
    Halt,       ///< stop execution
    NumOpcodes,
};

/** Compare relations. */
enum class CmpRel : std::uint8_t
{
    Eq, Ne, Lt, Le, Gt, Ge, Ltu, Geu,
};

/**
 * IA-64 compare types. Given guard qp and relation result rel:
 *  - Normal:  qp ? (p1=rel, p2=!rel)        : no write
 *  - Unc:     qp ? (p1=rel, p2=!rel)        : (p1=0, p2=0)
 *  - And:     (qp && !rel) ? (p1=0, p2=0)   : no write
 *  - Or:      (qp &&  rel) ? (p1=1, p2=1)   : no write
 *  - OrAndcm: (qp &&  rel) ? (p1=1, p2=0)   : no write
 *  - AndOrcm: (qp && !rel) ? (p1=0, p2=1)   : no write
 */
enum class CmpType : std::uint8_t
{
    Normal, Unc, And, Or, OrAndcm, AndOrcm,
};

/** Invert a relation (lt -> ge, etc.); used by the if-converter. */
CmpRel invertRel(CmpRel rel);

/** Evaluate a relation on two signed 64-bit values. */
bool evalRel(CmpRel rel, std::int64_t a, std::int64_t b);

/**
 * A decoded instruction. Static program text; PCs are instruction
 * indices into the containing Program (one word per instruction).
 *
 * regionId/regionBranch are compiler-provided metadata: the id of the
 * predicated region (hyperblock) the instruction was placed in, or -1,
 * and whether a branch is a region-based branch (a branch left inside
 * a predicated region by if-conversion). The hardware techniques never
 * read regionId; it exists for statistics classification and for the
 * PGU insertion-policy ablation, which models a compiler hint bit.
 */
struct Inst
{
    Opcode op = Opcode::Nop;
    std::uint8_t qp = 0;            ///< qualifying predicate register
    std::uint8_t dst = 0;           ///< GPR destination
    std::uint8_t src1 = 0;
    std::uint8_t src2 = 0;
    bool hasImm = false;            ///< src2 replaced by imm when set
    std::int64_t imm = 0;
    std::uint8_t pdst1 = 0;         ///< predicate destination 1
    std::uint8_t pdst2 = 0;         ///< predicate destination 2
    CmpRel crel = CmpRel::Eq;
    CmpType ctype = CmpType::Normal;
    std::uint32_t target = 0;       ///< branch/call target (inst index)

    std::int32_t regionId = -1;
    bool regionBranch = false;

    /** True for Br/Call/Ret. */
    bool isControl() const;

    /** True for conditional branches (Br with qp != p0). */
    bool isConditionalBranch() const;

    /** True when the instruction may write a predicate register. */
    bool writesPredicate() const;

    /** True when execution reads the guard (all but Nop/Halt). */
    bool isGuarded() const { return op != Opcode::Nop && op != Opcode::Halt; }
};

/** Render one instruction as assembly text, e.g.
 *  "(p3) cmp.lt.unc p4, p5 = r2, r7". */
std::string disassemble(const Inst &inst);

/** Name of an opcode ("add", "cmp", ...). */
const char *opcodeName(Opcode op);

/** Name of a relation ("eq", "lt", ...). */
const char *cmpRelName(CmpRel rel);

/** Name of a compare type ("", "unc", "and", ...). */
const char *cmpTypeName(CmpType type);

} // namespace pabp

#endif // PABP_ISA_INST_HH
