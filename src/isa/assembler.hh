/**
 * @file
 * Two-pass assembler for the predicated ISA. Accepts exactly the
 * disassembler's syntax plus labels, so textual programs round-trip:
 *
 *   loop:
 *       (p3) cmp.lt.unc p4, p5 = r2, r7
 *       (p4) br loop          ; labels or absolute numbers
 *       add r1 = r2, 3
 *       ld r1 = [r2 + -4]
 *       st [r2 + 8] = r1
 *       pset p7 = 1
 *       halt
 *
 * Comments run from ';' to end of line. One instruction per line.
 */

#ifndef PABP_ISA_ASSEMBLER_HH
#define PABP_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"
#include "util/status.hh"

namespace pabp {

/** Assemble source text into a program. Never throws or aborts;
 *  syntax errors come back as a ParseError Status whose message is
 *  "line N: what went wrong". */
Expected<Program> assembleProgram(const std::string &source,
                                  const std::string &name = "asm");

} // namespace pabp

#endif // PABP_ISA_ASSEMBLER_HH
