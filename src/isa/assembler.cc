#include "isa/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace pabp {

namespace {

/** Thrown internally; converted to a ParseError Status. */
struct AsmError
{
    std::string message;
};

[[noreturn]] void
fail(const std::string &message)
{
    throw AsmError{message};
}

/** Character-level cursor over one source line. */
class LineParser
{
  public:
    explicit LineParser(const std::string &line) : text(line) {}

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos >= text.size();
    }

    char
    peek()
    {
        skipSpace();
        return pos < text.size() ? text[pos] : '\0';
    }

    /** Consume an expected punctuation character. */
    void
    expect(char c)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    tryConsume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    /** Identifier: [A-Za-z_][A-Za-z0-9_.]* */
    std::string
    ident()
    {
        skipSpace();
        std::size_t start = pos;
        if (pos < text.size() &&
            (std::isalpha(static_cast<unsigned char>(text[pos])) ||
             text[pos] == '_')) {
            ++pos;
            while (pos < text.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(text[pos])) ||
                    text[pos] == '_' || text[pos] == '.')) {
                ++pos;
            }
        }
        if (start == pos)
            fail("expected identifier");
        return text.substr(start, pos - start);
    }

    /** Signed integer literal. */
    std::int64_t
    number()
    {
        skipSpace();
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
        if (start == pos ||
            (pos - start == 1 && !std::isdigit(static_cast<unsigned char>(
                                     text[start])))) {
            fail("expected number");
        }
        return std::strtoll(text.substr(start, pos - start).c_str(),
                            nullptr, 10);
    }

    bool
    numberAhead()
    {
        skipSpace();
        if (pos >= text.size())
            return false;
        char c = text[pos];
        return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
            c == '+';
    }

  private:
    const std::string &text;
    std::size_t pos = 0;
};

unsigned
parseReg(LineParser &p, char kind, unsigned limit)
{
    std::string id = p.ident();
    if (id.size() < 2 || id[0] != kind)
        fail(std::string("expected ") + kind + "-register, got " + id);
    char *end = nullptr;
    long idx = std::strtol(id.c_str() + 1, &end, 10);
    if (*end != '\0' || idx < 0 || idx >= static_cast<long>(limit))
        fail("bad register " + id);
    return static_cast<unsigned>(idx);
}

unsigned
parseGpr(LineParser &p)
{
    return parseReg(p, 'r', numGprs);
}

unsigned
parsePred(LineParser &p)
{
    return parseReg(p, 'p', numPredRegs);
}

std::optional<CmpRel>
relFromName(const std::string &name)
{
    static const std::map<std::string, CmpRel> rels = {
        {"eq", CmpRel::Eq}, {"ne", CmpRel::Ne}, {"lt", CmpRel::Lt},
        {"le", CmpRel::Le}, {"gt", CmpRel::Gt}, {"ge", CmpRel::Ge},
        {"ltu", CmpRel::Ltu}, {"geu", CmpRel::Geu}};
    auto it = rels.find(name);
    if (it == rels.end())
        return std::nullopt;
    return it->second;
}

std::optional<CmpType>
typeFromName(const std::string &name)
{
    static const std::map<std::string, CmpType> types = {
        {"unc", CmpType::Unc},       {"and", CmpType::And},
        {"or", CmpType::Or},         {"or.andcm", CmpType::OrAndcm},
        {"and.orcm", CmpType::AndOrcm}};
    auto it = types.find(name);
    if (it == types.end())
        return std::nullopt;
    return it->second;
}

std::optional<Opcode>
aluFromName(const std::string &name)
{
    static const std::map<std::string, Opcode> ops = {
        {"add", Opcode::Add}, {"sub", Opcode::Sub},
        {"mul", Opcode::Mul}, {"div", Opcode::Div},
        {"and", Opcode::And}, {"or", Opcode::Or},
        {"xor", Opcode::Xor}, {"shl", Opcode::Shl},
        {"shr", Opcode::Shr}};
    auto it = ops.find(name);
    if (it == ops.end())
        return std::nullopt;
    return it->second;
}

class Assembler
{
  public:
    Expected<Program>
    run(const std::string &source, const std::string &name)
    {
        Program prog;
        prog.name = name;

        std::istringstream stream(source);
        std::string line;
        unsigned line_no = 0;
        try {
            while (std::getline(stream, line)) {
                ++line_no;
                parseLine(stripComment(line));
            }
            resolveFixups();
        } catch (const AsmError &error) {
            return Status(StatusCode::ParseError,
                          "line " + std::to_string(line_no) + ": " +
                              error.message);
        }
        prog.insts = std::move(insts);
        return prog;
    }

  private:
    std::vector<Inst> insts;
    std::map<std::string, std::uint32_t> labels;
    std::vector<std::pair<std::size_t, std::string>> fixups;

    static std::string
    stripComment(const std::string &line)
    {
        auto semi = line.find(';');
        return semi == std::string::npos ? line : line.substr(0, semi);
    }

    void
    parseLine(const std::string &line)
    {
        LineParser p(line);
        if (p.atEnd())
            return;

        // Optional guard "(pN)".
        unsigned qp = 0;
        if (p.tryConsume('(')) {
            qp = parsePred(p);
            p.expect(')');
        }

        std::string word = p.ident();

        // Label definition "name:" (only without a guard prefix).
        if (qp == 0 && p.tryConsume(':')) {
            if (labels.count(word))
                fail("duplicate label " + word);
            labels[word] = static_cast<std::uint32_t>(insts.size());
            if (p.atEnd())
                return;
            // Allow "label: inst" on one line.
            if (p.tryConsume('(')) {
                qp = parsePred(p);
                p.expect(')');
            }
            word = p.ident();
        }

        parseInst(p, word, qp);
        if (!p.atEnd())
            fail("trailing characters");
    }

    void
    parseInst(LineParser &p, const std::string &mnemonic, unsigned qp)
    {
        if (mnemonic == "nop") {
            insts.push_back(makeNop());
            return;
        }
        if (mnemonic == "halt") {
            insts.push_back(makeHalt());
            return;
        }
        if (mnemonic == "ret") {
            insts.push_back(makeRet(qp));
            return;
        }
        if (mnemonic == "br" || mnemonic == "call") {
            bool is_call = mnemonic == "call";
            std::uint32_t target = 0;
            if (p.numberAhead()) {
                target = static_cast<std::uint32_t>(p.number());
            } else {
                fixups.emplace_back(insts.size(), p.ident());
            }
            insts.push_back(is_call ? makeCall(target, qp)
                                    : makeBr(target, qp));
            return;
        }
        if (mnemonic == "mov") {
            unsigned dst = parseGpr(p);
            p.expect('=');
            if (p.numberAhead())
                insts.push_back(makeMovImm(dst, p.number(), qp));
            else
                insts.push_back(makeMov(dst, parseGpr(p), qp));
            return;
        }
        if (mnemonic == "pset") {
            unsigned pdst = parsePred(p);
            p.expect('=');
            insts.push_back(makePSet(pdst, p.number() != 0, qp));
            return;
        }
        if (mnemonic == "ld") {
            unsigned dst = parseGpr(p);
            p.expect('=');
            p.expect('[');
            unsigned base = parseGpr(p);
            std::int64_t offset = 0;
            if (p.tryConsume('+'))
                offset = p.number();
            p.expect(']');
            insts.push_back(makeLoad(dst, base, offset, qp));
            return;
        }
        if (mnemonic == "st") {
            p.expect('[');
            unsigned base = parseGpr(p);
            std::int64_t offset = 0;
            if (p.tryConsume('+'))
                offset = p.number();
            p.expect(']');
            p.expect('=');
            unsigned src = parseGpr(p);
            insts.push_back(makeStore(base, offset, src, qp));
            return;
        }
        if (mnemonic.rfind("cmp.", 0) == 0) {
            parseCmp(p, mnemonic.substr(4), qp);
            return;
        }
        if (auto op = aluFromName(mnemonic)) {
            unsigned dst = parseGpr(p);
            p.expect('=');
            unsigned src1 = parseGpr(p);
            p.expect(',');
            if (p.numberAhead()) {
                insts.push_back(
                    makeAluImm(*op, dst, src1, p.number(), qp));
            } else {
                insts.push_back(
                    makeAlu(*op, dst, src1, parseGpr(p), qp));
            }
            return;
        }
        fail("unknown mnemonic: " + mnemonic);
    }

    void
    parseCmp(LineParser &p, const std::string &suffix, unsigned qp)
    {
        // suffix is "rel" or "rel.type" (type may contain a dot).
        std::string rel_name = suffix;
        std::string type_name;
        auto dot = suffix.find('.');
        if (dot != std::string::npos) {
            rel_name = suffix.substr(0, dot);
            type_name = suffix.substr(dot + 1);
        }
        auto rel = relFromName(rel_name);
        if (!rel)
            fail("bad compare relation: " + rel_name);
        CmpType type = CmpType::Normal;
        if (!type_name.empty()) {
            auto parsed = typeFromName(type_name);
            if (!parsed)
                fail("bad compare type: " + type_name);
            type = *parsed;
        }

        unsigned p1 = parsePred(p);
        p.expect(',');
        unsigned p2 = parsePred(p);
        p.expect('=');
        unsigned src1 = parseGpr(p);
        p.expect(',');
        if (p.numberAhead()) {
            insts.push_back(
                makeCmpImm(*rel, type, p1, p2, src1, p.number(), qp));
        } else {
            insts.push_back(
                makeCmp(*rel, type, p1, p2, src1, parseGpr(p), qp));
        }
    }

    void
    resolveFixups()
    {
        for (const auto &[idx, label] : fixups) {
            auto it = labels.find(label);
            if (it == labels.end())
                fail("undefined label: " + label);
            insts[idx].target = it->second;
        }
    }
};

} // anonymous namespace

Expected<Program>
assembleProgram(const std::string &source, const std::string &name)
{
    Assembler assembler;
    return assembler.run(source, name);
}

} // namespace pabp
