#include "isa/inst.hh"

#include <cstdio>

#include "util/logging.hh"

namespace pabp {

CmpRel
invertRel(CmpRel rel)
{
    switch (rel) {
      case CmpRel::Eq: return CmpRel::Ne;
      case CmpRel::Ne: return CmpRel::Eq;
      case CmpRel::Lt: return CmpRel::Ge;
      case CmpRel::Le: return CmpRel::Gt;
      case CmpRel::Gt: return CmpRel::Le;
      case CmpRel::Ge: return CmpRel::Lt;
      case CmpRel::Ltu: return CmpRel::Geu;
      case CmpRel::Geu: return CmpRel::Ltu;
    }
    pabp_panic("bad CmpRel");
}

bool
evalRel(CmpRel rel, std::int64_t a, std::int64_t b)
{
    auto ua = static_cast<std::uint64_t>(a);
    auto ub = static_cast<std::uint64_t>(b);
    switch (rel) {
      case CmpRel::Eq: return a == b;
      case CmpRel::Ne: return a != b;
      case CmpRel::Lt: return a < b;
      case CmpRel::Le: return a <= b;
      case CmpRel::Gt: return a > b;
      case CmpRel::Ge: return a >= b;
      case CmpRel::Ltu: return ua < ub;
      case CmpRel::Geu: return ua >= ub;
    }
    pabp_panic("bad CmpRel");
}

bool
Inst::isControl() const
{
    return op == Opcode::Br || op == Opcode::Call || op == Opcode::Ret;
}

bool
Inst::isConditionalBranch() const
{
    return op == Opcode::Br && qp != 0;
}

bool
Inst::writesPredicate() const
{
    return op == Opcode::Cmp || op == Opcode::PSet;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Mov: return "mov";
      case Opcode::Cmp: return "cmp";
      case Opcode::PSet: return "pset";
      case Opcode::Load: return "ld";
      case Opcode::Store: return "st";
      case Opcode::Br: return "br";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
      default: break;
    }
    pabp_panic("bad Opcode");
}

const char *
cmpRelName(CmpRel rel)
{
    switch (rel) {
      case CmpRel::Eq: return "eq";
      case CmpRel::Ne: return "ne";
      case CmpRel::Lt: return "lt";
      case CmpRel::Le: return "le";
      case CmpRel::Gt: return "gt";
      case CmpRel::Ge: return "ge";
      case CmpRel::Ltu: return "ltu";
      case CmpRel::Geu: return "geu";
    }
    pabp_panic("bad CmpRel");
}

const char *
cmpTypeName(CmpType type)
{
    switch (type) {
      case CmpType::Normal: return "";
      case CmpType::Unc: return "unc";
      case CmpType::And: return "and";
      case CmpType::Or: return "or";
      case CmpType::OrAndcm: return "or.andcm";
      case CmpType::AndOrcm: return "and.orcm";
    }
    pabp_panic("bad CmpType");
}

std::string
disassemble(const Inst &inst)
{
    char buf[160];
    std::string guard;
    if (inst.qp != 0 && inst.isGuarded())
        guard = "(p" + std::to_string(inst.qp) + ") ";

    auto src2_text = [&]() -> std::string {
        if (inst.hasImm)
            return std::to_string(inst.imm);
        return "r" + std::to_string(inst.src2);
    };

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        return opcodeName(inst.op);
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
        std::snprintf(buf, sizeof(buf), "%s%s r%u = r%u, %s", guard.c_str(),
                      opcodeName(inst.op), inst.dst, inst.src1,
                      src2_text().c_str());
        return buf;
      case Opcode::Mov:
        if (inst.hasImm) {
            std::snprintf(buf, sizeof(buf), "%smov r%u = %lld",
                          guard.c_str(), inst.dst,
                          static_cast<long long>(inst.imm));
        } else {
            std::snprintf(buf, sizeof(buf), "%smov r%u = r%u",
                          guard.c_str(), inst.dst, inst.src1);
        }
        return buf;
      case Opcode::Cmp: {
        std::string type = cmpTypeName(inst.ctype);
        std::snprintf(buf, sizeof(buf), "%scmp.%s%s%s p%u, p%u = r%u, %s",
                      guard.c_str(), cmpRelName(inst.crel),
                      type.empty() ? "" : ".", type.c_str(), inst.pdst1,
                      inst.pdst2, inst.src1, src2_text().c_str());
        return buf;
      }
      case Opcode::PSet:
        std::snprintf(buf, sizeof(buf), "%spset p%u = %lld", guard.c_str(),
                      inst.pdst1, static_cast<long long>(inst.imm & 1));
        return buf;
      case Opcode::Load:
        std::snprintf(buf, sizeof(buf), "%sld r%u = [r%u + %lld]",
                      guard.c_str(), inst.dst, inst.src1,
                      static_cast<long long>(inst.imm));
        return buf;
      case Opcode::Store:
        std::snprintf(buf, sizeof(buf), "%sst [r%u + %lld] = r%u",
                      guard.c_str(), inst.src1,
                      static_cast<long long>(inst.imm), inst.src2);
        return buf;
      case Opcode::Br:
      case Opcode::Call:
        std::snprintf(buf, sizeof(buf), "%s%s %u%s", guard.c_str(),
                      opcodeName(inst.op), inst.target,
                      inst.regionBranch ? "  ; region-based" : "");
        return buf;
      case Opcode::Ret:
        return guard + "ret";
      default:
        break;
    }
    pabp_panic("bad Opcode in disassemble");
}

} // namespace pabp
