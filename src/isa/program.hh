/**
 * @file
 * Program container, static validation, and binary encode/decode.
 *
 * A Program is a flat vector of instructions; the PC of an instruction
 * is its index (one word per instruction, as in a fixed-width EPIC
 * encoding). Branch/call targets are instruction indices.
 */

#ifndef PABP_ISA_PROGRAM_HH
#define PABP_ISA_PROGRAM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace pabp {

/** A complete executable program. */
struct Program
{
    std::string name;
    std::vector<Inst> insts;

    std::size_t size() const { return insts.size(); }
    const Inst &at(std::uint32_t pc) const { return insts.at(pc); }

    /** Full disassembly listing with PCs. */
    std::string disassembleAll() const;
};

/**
 * Check static well-formedness: register indices in range, control
 * targets within the program, immediates present where required, and
 * no fall-through past the last instruction. Returns an empty string
 * when valid, else a description of the first problem.
 */
std::string validateProgram(const Program &prog);

/**
 * Fixed 128-bit binary encoding of one instruction: a field word and
 * an immediate/target word. The compiler metadata (regionId) is not
 * part of the architectural encoding and is dropped by a round trip;
 * regionBranch is encoded as it models an ISA hint bit.
 */
struct EncodedInst
{
    std::uint64_t word0 = 0;
    std::uint64_t word1 = 0;

    bool operator==(const EncodedInst &) const = default;
};

/** Encode an instruction. Panics on out-of-range fields. */
EncodedInst encode(const Inst &inst);

/** Decode an instruction. Panics on an invalid opcode field. */
Inst decode(const EncodedInst &enc);

/**
 * Decode an instruction that may come from an untrusted source (a
 * corrupt trace file): returns nullopt on an invalid opcode or
 * compare-type field instead of panicking.
 */
std::optional<Inst> tryDecode(const EncodedInst &enc);

/**
 * @name Assembler helpers
 * Free functions that build instructions with the common fields; used
 * by the code lowerer, tests, and examples. All take the qualifying
 * predicate last, defaulting to p0 (always true).
 */
/// @{
Inst makeNop();
Inst makeHalt();
Inst makeAlu(Opcode op, unsigned dst, unsigned src1, unsigned src2,
             unsigned qp = 0);
Inst makeAluImm(Opcode op, unsigned dst, unsigned src1, std::int64_t imm,
                unsigned qp = 0);
Inst makeMovImm(unsigned dst, std::int64_t imm, unsigned qp = 0);
Inst makeMov(unsigned dst, unsigned src, unsigned qp = 0);
Inst makeCmp(CmpRel rel, CmpType type, unsigned pdst1, unsigned pdst2,
             unsigned src1, unsigned src2, unsigned qp = 0);
Inst makeCmpImm(CmpRel rel, CmpType type, unsigned pdst1, unsigned pdst2,
                unsigned src1, std::int64_t imm, unsigned qp = 0);
Inst makePSet(unsigned pdst, bool value, unsigned qp = 0);
Inst makeLoad(unsigned dst, unsigned base, std::int64_t offset,
              unsigned qp = 0);
Inst makeStore(unsigned base, std::int64_t offset, unsigned src,
               unsigned qp = 0);
Inst makeBr(std::uint32_t target, unsigned qp = 0);
Inst makeCall(std::uint32_t target, unsigned qp = 0);
Inst makeRet(unsigned qp = 0);
/// @}

} // namespace pabp

#endif // PABP_ISA_PROGRAM_HH
