#include "isa/program.hh"

#include <sstream>

#include "util/logging.hh"

namespace pabp {

std::string
Program::disassembleAll() const
{
    std::ostringstream os;
    for (std::size_t pc = 0; pc < insts.size(); ++pc) {
        os << pc << ":\t" << disassemble(insts[pc]);
        if (insts[pc].regionId >= 0)
            os << "\t; region " << insts[pc].regionId;
        os << "\n";
    }
    return os.str();
}

namespace {

std::string
problemAt(std::size_t pc, const std::string &what)
{
    return "pc " + std::to_string(pc) + ": " + what;
}

} // anonymous namespace

std::string
validateProgram(const Program &prog)
{
    if (prog.insts.empty())
        return "empty program";

    bool has_halt = false;
    for (std::size_t pc = 0; pc < prog.insts.size(); ++pc) {
        const Inst &inst = prog.insts[pc];
        if (inst.op >= Opcode::NumOpcodes)
            return problemAt(pc, "invalid opcode");
        if (inst.qp >= numPredRegs || inst.dst >= numGprs ||
            inst.src1 >= numGprs || inst.src2 >= numGprs ||
            inst.pdst1 >= numPredRegs || inst.pdst2 >= numPredRegs) {
            return problemAt(pc, "register index out of range");
        }
        if ((inst.op == Opcode::Br || inst.op == Opcode::Call) &&
            inst.target >= prog.insts.size()) {
            return problemAt(pc, "control target out of range");
        }
        if (inst.op == Opcode::Halt)
            has_halt = true;
    }
    if (!has_halt)
        return "program has no halt instruction";

    const Inst &last = prog.insts.back();
    bool last_diverts = last.op == Opcode::Halt ||
        (last.op == Opcode::Br && last.qp == 0) ||
        (last.op == Opcode::Ret && last.qp == 0);
    if (!last_diverts)
        return "fall-through past end of program";
    return "";
}

namespace {

constexpr unsigned opShift = 0;
constexpr unsigned qpShift = 8;
constexpr unsigned dstShift = 14;
constexpr unsigned src1Shift = 20;
constexpr unsigned src2Shift = 26;
constexpr unsigned pdst1Shift = 32;
constexpr unsigned pdst2Shift = 38;
constexpr unsigned crelShift = 44;
constexpr unsigned ctypeShift = 47;
constexpr unsigned hasImmShift = 50;
constexpr unsigned regionBranchShift = 51;

std::uint64_t
field(std::uint64_t value, unsigned shift, unsigned width)
{
    pabp_assert(value < (1ull << width));
    return value << shift;
}

std::uint64_t
extract(std::uint64_t word, unsigned shift, unsigned width)
{
    return (word >> shift) & ((1ull << width) - 1);
}

} // anonymous namespace

EncodedInst
encode(const Inst &inst)
{
    EncodedInst enc;
    enc.word0 =
        field(static_cast<std::uint64_t>(inst.op), opShift, 8) |
        field(inst.qp, qpShift, 6) |
        field(inst.dst, dstShift, 6) |
        field(inst.src1, src1Shift, 6) |
        field(inst.src2, src2Shift, 6) |
        field(inst.pdst1, pdst1Shift, 6) |
        field(inst.pdst2, pdst2Shift, 6) |
        field(static_cast<std::uint64_t>(inst.crel), crelShift, 3) |
        field(static_cast<std::uint64_t>(inst.ctype), ctypeShift, 3) |
        field(inst.hasImm ? 1 : 0, hasImmShift, 1) |
        field(inst.regionBranch ? 1 : 0, regionBranchShift, 1);
    if (inst.isControl())
        enc.word1 = inst.target;
    else
        enc.word1 = static_cast<std::uint64_t>(inst.imm);
    return enc;
}

Inst
decode(const EncodedInst &enc)
{
    Inst inst;
    auto op_field = extract(enc.word0, opShift, 8);
    if (op_field >= static_cast<std::uint64_t>(Opcode::NumOpcodes))
        pabp_panic("decode: invalid opcode field");
    inst.op = static_cast<Opcode>(op_field);
    inst.qp = static_cast<std::uint8_t>(extract(enc.word0, qpShift, 6));
    inst.dst = static_cast<std::uint8_t>(extract(enc.word0, dstShift, 6));
    inst.src1 = static_cast<std::uint8_t>(extract(enc.word0, src1Shift, 6));
    inst.src2 = static_cast<std::uint8_t>(extract(enc.word0, src2Shift, 6));
    inst.pdst1 =
        static_cast<std::uint8_t>(extract(enc.word0, pdst1Shift, 6));
    inst.pdst2 =
        static_cast<std::uint8_t>(extract(enc.word0, pdst2Shift, 6));
    inst.crel = static_cast<CmpRel>(extract(enc.word0, crelShift, 3));
    inst.ctype = static_cast<CmpType>(extract(enc.word0, ctypeShift, 3));
    inst.hasImm = extract(enc.word0, hasImmShift, 1) != 0;
    inst.regionBranch = extract(enc.word0, regionBranchShift, 1) != 0;
    if (inst.isControl())
        inst.target = static_cast<std::uint32_t>(enc.word1);
    else
        inst.imm = static_cast<std::int64_t>(enc.word1);
    return inst;
}

std::optional<Inst>
tryDecode(const EncodedInst &enc)
{
    auto op_field = extract(enc.word0, opShift, 8);
    if (op_field >= static_cast<std::uint64_t>(Opcode::NumOpcodes))
        return std::nullopt;
    auto ctype_field = extract(enc.word0, ctypeShift, 3);
    if (ctype_field > static_cast<std::uint64_t>(CmpType::AndOrcm))
        return std::nullopt;
    return decode(enc);
}

Inst
makeNop()
{
    return Inst{};
}

Inst
makeHalt()
{
    Inst inst;
    inst.op = Opcode::Halt;
    return inst;
}

Inst
makeAlu(Opcode op, unsigned dst, unsigned src1, unsigned src2, unsigned qp)
{
    Inst inst;
    inst.op = op;
    inst.dst = static_cast<std::uint8_t>(dst);
    inst.src1 = static_cast<std::uint8_t>(src1);
    inst.src2 = static_cast<std::uint8_t>(src2);
    inst.qp = static_cast<std::uint8_t>(qp);
    return inst;
}

Inst
makeAluImm(Opcode op, unsigned dst, unsigned src1, std::int64_t imm,
           unsigned qp)
{
    Inst inst = makeAlu(op, dst, src1, 0, qp);
    inst.hasImm = true;
    inst.imm = imm;
    return inst;
}

Inst
makeMovImm(unsigned dst, std::int64_t imm, unsigned qp)
{
    return makeAluImm(Opcode::Mov, dst, 0, imm, qp);
}

Inst
makeMov(unsigned dst, unsigned src, unsigned qp)
{
    return makeAlu(Opcode::Mov, dst, src, 0, qp);
}

Inst
makeCmp(CmpRel rel, CmpType type, unsigned pdst1, unsigned pdst2,
        unsigned src1, unsigned src2, unsigned qp)
{
    Inst inst;
    inst.op = Opcode::Cmp;
    inst.crel = rel;
    inst.ctype = type;
    inst.pdst1 = static_cast<std::uint8_t>(pdst1);
    inst.pdst2 = static_cast<std::uint8_t>(pdst2);
    inst.src1 = static_cast<std::uint8_t>(src1);
    inst.src2 = static_cast<std::uint8_t>(src2);
    inst.qp = static_cast<std::uint8_t>(qp);
    return inst;
}

Inst
makeCmpImm(CmpRel rel, CmpType type, unsigned pdst1, unsigned pdst2,
           unsigned src1, std::int64_t imm, unsigned qp)
{
    Inst inst = makeCmp(rel, type, pdst1, pdst2, src1, 0, qp);
    inst.hasImm = true;
    inst.imm = imm;
    return inst;
}

Inst
makePSet(unsigned pdst, bool value, unsigned qp)
{
    Inst inst;
    inst.op = Opcode::PSet;
    inst.pdst1 = static_cast<std::uint8_t>(pdst);
    inst.hasImm = true;
    inst.imm = value ? 1 : 0;
    inst.qp = static_cast<std::uint8_t>(qp);
    return inst;
}

Inst
makeLoad(unsigned dst, unsigned base, std::int64_t offset, unsigned qp)
{
    Inst inst;
    inst.op = Opcode::Load;
    inst.dst = static_cast<std::uint8_t>(dst);
    inst.src1 = static_cast<std::uint8_t>(base);
    inst.hasImm = true;
    inst.imm = offset;
    inst.qp = static_cast<std::uint8_t>(qp);
    return inst;
}

Inst
makeStore(unsigned base, std::int64_t offset, unsigned src, unsigned qp)
{
    Inst inst;
    inst.op = Opcode::Store;
    inst.src1 = static_cast<std::uint8_t>(base);
    inst.src2 = static_cast<std::uint8_t>(src);
    inst.hasImm = true;
    inst.imm = offset;
    inst.qp = static_cast<std::uint8_t>(qp);
    return inst;
}

Inst
makeBr(std::uint32_t target, unsigned qp)
{
    Inst inst;
    inst.op = Opcode::Br;
    inst.target = target;
    inst.qp = static_cast<std::uint8_t>(qp);
    return inst;
}

Inst
makeCall(std::uint32_t target, unsigned qp)
{
    Inst inst;
    inst.op = Opcode::Call;
    inst.target = target;
    inst.qp = static_cast<std::uint8_t>(qp);
    return inst;
}

Inst
makeRet(unsigned qp)
{
    Inst inst;
    inst.op = Opcode::Ret;
    inst.qp = static_cast<std::uint8_t>(qp);
    return inst;
}

} // namespace pabp
