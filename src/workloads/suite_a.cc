/**
 * @file
 * Suite members 1-5: bsort, bsearch, histogram, interp, dchain.
 * Memory maps and register conventions are documented per workload.
 */

#include "workloads/workload.hh"

#include "sim/arch_state.hh"
#include "util/rng.hh"

namespace pabp {

namespace {

/** In-program LCG step: r <- r * 1103515245 + 12345 (two body ops). */
void
appendLcg(IrBuilder &b, unsigned reg)
{
    b.append(makeAluImm(Opcode::Mul, reg, reg, 1103515245));
    b.append(makeAluImm(Opcode::Add, reg, reg, 12345));
}

/** Counter bump at mem[base_reg + offset] using scratch register. */
void
appendCounterBump(IrBuilder &b, unsigned base_reg, std::int64_t offset,
                  unsigned scratch)
{
    b.append(makeLoad(scratch, base_reg, offset));
    b.append(makeAluImm(Opcode::Add, scratch, scratch, 1));
    b.append(makeStore(base_reg, offset, scratch));
}

} // anonymous namespace

// ---------------------------------------------------------------------
// bsort: repeated bubble sort of a small array the program refills
// from an LCG each round. The swap test is the classic data-dependent
// diamond that if-conversion eliminates completely.
//
// regs: r1=i r2=j r3=N r4=a[j] r5=a[j+1] r6=inner limit r7=N-1
//       r8=repeat counter r9=lcg state
// mem:  a[0..N-1] at 0
// ---------------------------------------------------------------------
Workload
makeBsort(std::uint64_t seed)
{
    constexpr std::int64_t n = 64;
    constexpr std::int64_t repeats = 120;

    Workload wl;
    wl.name = "bsort";
    wl.fn.name = "bsort";
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId rep_head = b.newBlock();
    BlockId fill_init = b.newBlock();
    BlockId fill_head = b.newBlock();
    BlockId fill_body = b.newBlock();
    BlockId outer_init = b.newBlock();
    BlockId outer_head = b.newBlock();
    BlockId inner_init = b.newBlock();
    BlockId inner_head = b.newBlock();
    BlockId test = b.newBlock();
    BlockId swap = b.newBlock();
    BlockId inner_latch = b.newBlock();
    BlockId outer_latch = b.newBlock();
    BlockId rep_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, n));
    b.append(makeMovImm(7, n - 1));
    b.append(makeMovImm(8, repeats));
    b.append(makeMovImm(9, static_cast<std::int64_t>(seed | 1)));
    b.jump(rep_head);

    b.setBlock(rep_head);
    b.condBrImm(CmpRel::Gt, 8, 0, fill_init, done);

    b.setBlock(fill_init);
    b.append(makeMovImm(1, 0));
    b.jump(fill_head);

    b.setBlock(fill_head);
    b.condBr(CmpRel::Lt, 1, 3, fill_body, outer_init);

    b.setBlock(fill_body);
    appendLcg(b, 9);
    b.append(makeAluImm(Opcode::Shr, 4, 9, 16));
    b.append(makeAluImm(Opcode::And, 4, 4, 1023));
    b.append(makeStore(1, 0, 4));
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(fill_head);

    b.setBlock(outer_init);
    b.append(makeMovImm(1, 0));
    b.jump(outer_head);

    b.setBlock(outer_head);
    b.condBr(CmpRel::Lt, 1, 7, inner_init, rep_latch);

    b.setBlock(inner_init);
    b.append(makeMovImm(2, 0));
    b.append(makeAlu(Opcode::Sub, 6, 7, 1));
    b.jump(inner_head);

    b.setBlock(inner_head);
    b.condBr(CmpRel::Lt, 2, 6, test, outer_latch);

    b.setBlock(test);
    b.append(makeLoad(4, 2, 0));
    b.append(makeLoad(5, 2, 1));
    b.condBr(CmpRel::Gt, 4, 5, swap, inner_latch);

    b.setBlock(swap);
    b.append(makeStore(2, 0, 5));
    b.append(makeStore(2, 1, 4));
    b.jump(inner_latch);

    b.setBlock(inner_latch);
    b.append(makeAluImm(Opcode::Add, 2, 2, 1));
    b.jump(inner_head);

    b.setBlock(outer_latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(outer_head);

    b.setBlock(rep_latch);
    b.append(makeAluImm(Opcode::Sub, 8, 8, 1));
    b.jump(rep_head);

    b.setBlock(done);
    b.halt();

    wl.init = nullptr; // the program generates its own data
    wl.defaultSteps = 8'000'000;
    return wl;
}

// ---------------------------------------------------------------------
// bsearch: repeated binary searches with LCG keys over a sorted table
// the program fills with a[i] = 2*i. The descend decision is a
// data-dependent coin flip - hard for every predictor - and its lo/hi
// update diamond if-converts completely (both exits rejoin the loop).
//
// regs: r1=lo r2=hi r3=N r4=mid r5=a[mid] r8=queries r9=lcg r10=key
//       r11=result sink base
// mem:  a[0..N-1] at 0, result sink at 4096
// ---------------------------------------------------------------------
Workload
makeBsearch(std::uint64_t seed)
{
    constexpr std::int64_t n = 1024;
    constexpr std::int64_t queries = 30000;

    Workload wl;
    wl.name = "bsearch";
    wl.fn.name = "bsearch";
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId fill_head = b.newBlock();
    BlockId fill_body = b.newBlock();
    BlockId query_head = b.newBlock();
    BlockId query_setup = b.newBlock();
    BlockId search_head = b.newBlock();
    BlockId probe = b.newBlock();
    BlockId go_right = b.newBlock();
    BlockId go_left = b.newBlock();
    BlockId query_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, n));
    b.append(makeMovImm(8, queries));
    b.append(makeMovImm(9, static_cast<std::int64_t>(seed | 1)));
    b.append(makeMovImm(1, 0));
    b.jump(fill_head);

    b.setBlock(fill_head);
    b.condBr(CmpRel::Lt, 1, 3, fill_body, query_head);

    b.setBlock(fill_body);
    b.append(makeAlu(Opcode::Add, 4, 1, 1)); // 2*i
    b.append(makeStore(1, 0, 4));
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(fill_head);

    b.setBlock(query_head);
    b.condBrImm(CmpRel::Gt, 8, 0, query_setup, done);

    b.setBlock(query_setup);
    appendLcg(b, 9);
    b.append(makeAluImm(Opcode::Shr, 10, 9, 16));
    b.append(makeAluImm(Opcode::And, 10, 10, 2047));
    b.append(makeMovImm(1, 0));
    b.append(makeMov(2, 3));
    b.jump(search_head);

    b.setBlock(search_head);
    b.condBr(CmpRel::Lt, 1, 2, probe, query_latch);

    b.setBlock(probe);
    b.append(makeAlu(Opcode::Add, 4, 1, 2));
    b.append(makeAluImm(Opcode::Shr, 4, 4, 1));
    b.append(makeLoad(5, 4, 0));
    b.condBr(CmpRel::Lt, 5, 10, go_right, go_left);

    b.setBlock(go_right);
    b.append(makeAluImm(Opcode::Add, 1, 4, 1));
    b.jump(search_head);

    b.setBlock(go_left);
    b.append(makeMov(2, 4));
    b.jump(search_head);

    b.setBlock(query_latch);
    b.append(makeMovImm(11, 4096));
    b.append(makeStore(11, 0, 1));
    b.append(makeAluImm(Opcode::Sub, 8, 8, 1));
    b.jump(query_head);

    b.setBlock(done);
    b.halt();

    wl.init = nullptr;
    wl.defaultSteps = 8'000'000;
    return wl;
}

// ---------------------------------------------------------------------
// histogram: bucket an input byte stream through a correlated range
// chain (v<64 implies v<128 implies v<192) with an early rare test
// (v==0, ~1/256). The rare test's predicate define sits at the region
// top while its branch sinks to the bottom - the squash filter's best
// case - and the range chain's region branch (v>=192 side exit when
// the size budget cuts the region) correlates with earlier defines,
// which is PGU's case.
//
// regs: r1=i r3=N r4=v r5=scratch r7=counter base r12=pass counter
// mem:  data[0..N-1] at 0, counters at 8192+
// ---------------------------------------------------------------------
Workload
makeHistogram(std::uint64_t seed)
{
    constexpr std::int64_t n = 8192;
    constexpr std::int64_t counter_base = 8192;
    constexpr std::int64_t passes = 10;

    Workload wl;
    wl.name = "histogram";
    wl.fn.name = "histogram";
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId pass_head = b.newBlock();
    BlockId pass_init = b.newBlock();
    BlockId head = b.newBlock();
    BlockId load = b.newBlock();
    BlockId chain0 = b.newBlock();
    BlockId h0 = b.newBlock();
    BlockId c1 = b.newBlock();
    BlockId h1 = b.newBlock();
    BlockId c2 = b.newBlock();
    BlockId h2 = b.newBlock();
    BlockId h3 = b.newBlock();
    BlockId latch = b.newBlock();
    BlockId zero_handler = b.newBlock();
    BlockId pass_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, n));
    b.append(makeMovImm(7, counter_base));
    b.append(makeMovImm(12, passes));
    b.jump(pass_head);

    b.setBlock(pass_head);
    b.condBrImm(CmpRel::Gt, 12, 0, pass_init, done);

    b.setBlock(pass_init);
    b.append(makeMovImm(1, 0));
    b.jump(head);

    b.setBlock(head);
    b.condBr(CmpRel::Lt, 1, 3, load, pass_latch);

    b.setBlock(load);
    b.append(makeLoad(4, 1, 0));
    b.condBrImm(CmpRel::Eq, 4, 0, zero_handler, chain0);

    b.setBlock(chain0);
    b.condBrImm(CmpRel::Lt, 4, 64, h0, c1);

    b.setBlock(h0);
    appendCounterBump(b, 7, 0, 5);
    b.jump(latch);

    b.setBlock(c1);
    b.condBrImm(CmpRel::Lt, 4, 128, h1, c2);

    b.setBlock(h1);
    appendCounterBump(b, 7, 1, 5);
    b.jump(latch);

    b.setBlock(c2);
    b.condBrImm(CmpRel::Lt, 4, 192, h2, h3);

    b.setBlock(h2);
    appendCounterBump(b, 7, 2, 5);
    b.jump(latch);

    b.setBlock(h3);
    appendCounterBump(b, 7, 3, 5);
    b.jump(latch);

    b.setBlock(latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(head);

    b.setBlock(zero_handler);
    appendCounterBump(b, 7, 4, 5);
    b.jump(latch);

    b.setBlock(pass_latch);
    b.append(makeAluImm(Opcode::Sub, 12, 12, 1));
    b.jump(pass_head);

    b.setBlock(done);
    b.halt();

    wl.init = [seed](ArchState &state) {
        Rng rng(seed ^ 0x1157u);
        for (std::int64_t i = 0; i < n; ++i)
            state.writeMem(i, static_cast<std::int64_t>(rng.below(256)));
    };
    wl.defaultSteps = 8'000'000;
    return wl;
}

// ---------------------------------------------------------------------
// interp: a bytecode dispatch chain over a skewed opcode stream
// (0 and 1 hot, the tail cold). The hot handlers join a hyperblock;
// the cold tail of the chain becomes a side exit - a region-based
// branch whose outcome correlates with the earlier equality defines.
//
// regs: r1=pc r3=N r4=op r5=acc r6=x r12=pass counter
// mem:  code[0..N-1] at 0, trap sink at 30000
// ---------------------------------------------------------------------
Workload
makeInterp(std::uint64_t seed)
{
    constexpr std::int64_t n = 16384;
    constexpr std::int64_t passes = 8;
    constexpr std::int64_t trap_addr = 30000;

    Workload wl;
    wl.name = "interp";
    wl.fn.name = "interp";
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId pass_head = b.newBlock();
    BlockId pass_init = b.newBlock();
    BlockId head = b.newBlock();
    BlockId fetch = b.newBlock();
    BlockId op_add = b.newBlock();
    BlockId d1 = b.newBlock();
    BlockId op_sub = b.newBlock();
    BlockId d2 = b.newBlock();
    BlockId op_xor = b.newBlock();
    BlockId d3 = b.newBlock();
    BlockId op_inc = b.newBlock();
    BlockId d4 = b.newBlock();   // cold dispatch tail
    BlockId op_mul = b.newBlock();
    BlockId op_trap = b.newBlock();
    BlockId latch = b.newBlock();
    BlockId pass_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, n));
    b.append(makeMovImm(5, 0));
    b.append(makeMovImm(6, 7));
    b.append(makeMovImm(12, passes));
    b.jump(pass_head);

    b.setBlock(pass_head);
    b.condBrImm(CmpRel::Gt, 12, 0, pass_init, done);

    b.setBlock(pass_init);
    b.append(makeMovImm(1, 0));
    b.jump(head);

    b.setBlock(head);
    b.condBr(CmpRel::Lt, 1, 3, fetch, pass_latch);

    b.setBlock(fetch);
    b.append(makeLoad(4, 1, 0));
    b.condBrImm(CmpRel::Eq, 4, 0, op_add, d1);

    b.setBlock(op_add);
    b.append(makeAlu(Opcode::Add, 5, 5, 6));
    b.jump(latch);

    b.setBlock(d1);
    b.condBrImm(CmpRel::Eq, 4, 1, op_sub, d2);

    b.setBlock(op_sub);
    b.append(makeAlu(Opcode::Sub, 5, 5, 6));
    b.jump(latch);

    b.setBlock(d2);
    b.condBrImm(CmpRel::Eq, 4, 2, op_xor, d3);

    b.setBlock(op_xor);
    b.append(makeAlu(Opcode::Xor, 5, 5, 6));
    b.jump(latch);

    b.setBlock(d3);
    b.condBrImm(CmpRel::Eq, 4, 3, op_inc, d4);

    b.setBlock(op_inc);
    b.append(makeAluImm(Opcode::Add, 5, 5, 1));
    b.jump(latch);

    b.setBlock(d4);
    b.condBrImm(CmpRel::Eq, 4, 4, op_mul, op_trap);

    b.setBlock(op_mul);
    b.append(makeAluImm(Opcode::Mul, 5, 5, 3));
    b.jump(latch);

    b.setBlock(op_trap);
    b.append(makeMovImm(10, trap_addr));
    b.append(makeStore(10, 0, 5));
    b.append(makeMovImm(5, 0));
    b.jump(latch);

    b.setBlock(latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(head);

    b.setBlock(pass_latch);
    b.append(makeAluImm(Opcode::Sub, 12, 12, 1));
    b.jump(pass_head);

    b.setBlock(done);
    b.halt();

    wl.init = [seed](ArchState &state) {
        Rng rng(seed ^ 0xbeadu);
        for (std::int64_t i = 0; i < n; ++i) {
            // Skewed opcode mix: 40/30/15/10/4/1 percent.
            std::uint64_t roll = rng.below(100);
            std::int64_t op;
            if (roll < 40)
                op = 0;
            else if (roll < 70)
                op = 1;
            else if (roll < 85)
                op = 2;
            else if (roll < 95)
                op = 3;
            else if (roll < 99)
                op = 4;
            else
                op = 5;
            state.writeMem(i, op);
        }
    };
    wl.defaultSteps = 8'000'000;
    return wl;
}

// ---------------------------------------------------------------------
// dchain: the PGU showcase. Per element, condition c1 = (v&7) < 4 and
// c2 = (v&7) < 2 guard small diamonds; a third branch repeats c2's
// test against a cold handler. After if-conversion c1/c2 vanish into
// predicate defines, so a conventional global history cannot see the
// correlation the third branch needs - PGU restores it.
//
// regs: r1=i r3=N r4=v r5=v&7 r6,r7=path temps r12=pass counter
//       r10=counter base
// mem:  data[0..N-1] at 0, outputs at 16384, counter at 30000
// ---------------------------------------------------------------------
Workload
makeDchain(std::uint64_t seed)
{
    constexpr std::int64_t n = 8192;
    constexpr std::int64_t out_base = 16384;
    constexpr std::int64_t counter_addr = 30000;
    constexpr std::int64_t passes = 12;

    Workload wl;
    wl.name = "dchain";
    wl.fn.name = "dchain";
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId pass_head = b.newBlock();
    BlockId pass_init = b.newBlock();
    BlockId head = b.newBlock();
    BlockId c1test = b.newBlock();
    BlockId c1then = b.newBlock();
    BlockId c1else = b.newBlock();
    BlockId c2test = b.newBlock();
    BlockId c2then = b.newBlock();
    BlockId c2else = b.newBlock();
    BlockId c3test = b.newBlock();
    BlockId handler = b.newBlock();
    BlockId latch = b.newBlock();
    BlockId pass_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, n));
    b.append(makeMovImm(10, counter_addr));
    b.append(makeMovImm(12, passes));
    b.jump(pass_head);

    b.setBlock(pass_head);
    b.condBrImm(CmpRel::Gt, 12, 0, pass_init, done);

    b.setBlock(pass_init);
    b.append(makeMovImm(1, 0));
    b.jump(head);

    b.setBlock(head);
    b.condBr(CmpRel::Lt, 1, 3, c1test, pass_latch);

    b.setBlock(c1test);
    b.append(makeLoad(4, 1, 0));
    b.append(makeAluImm(Opcode::And, 5, 4, 7));
    b.condBrImm(CmpRel::Lt, 5, 4, c1then, c1else);

    b.setBlock(c1then);
    b.append(makeAluImm(Opcode::Add, 6, 4, 13));
    b.jump(c2test);

    b.setBlock(c1else);
    b.append(makeAluImm(Opcode::Sub, 6, 4, 7));
    b.jump(c2test);

    b.setBlock(c2test);
    b.condBrImm(CmpRel::Lt, 5, 2, c2then, c2else);

    // The then/else bodies carry real work so the c2 define lands
    // far enough above the c3 branch for delayed history/predicate
    // visibility to act (see EngineConfig::availDelay).
    b.setBlock(c2then);
    b.append(makeAluImm(Opcode::Mul, 7, 6, 3));
    b.append(makeAluImm(Opcode::Xor, 7, 7, 0x55));
    b.append(makeAluImm(Opcode::Add, 7, 7, 2));
    b.jump(c3test);

    b.setBlock(c2else);
    b.append(makeAluImm(Opcode::Add, 7, 6, 1));
    b.append(makeAluImm(Opcode::Shl, 7, 7, 1));
    b.append(makeAluImm(Opcode::Sub, 7, 7, 5));
    b.jump(c3test);

    b.setBlock(c3test);
    b.append(makeAluImm(Opcode::Add, 9, 1, out_base));
    b.append(makeAluImm(Opcode::And, 13, 7, 1023));
    b.append(makeAlu(Opcode::Add, 13, 13, 5));
    b.append(makeStore(9, 0, 7));
    // Same test as c2: fully determined by an earlier define.
    b.condBrImm(CmpRel::Lt, 5, 2, handler, latch);

    b.setBlock(handler);
    appendCounterBump(b, 10, 0, 11);
    b.jump(latch);

    b.setBlock(latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(head);

    b.setBlock(pass_latch);
    b.append(makeAluImm(Opcode::Sub, 12, 12, 1));
    b.jump(pass_head);

    b.setBlock(done);
    b.halt();

    wl.init = [seed](ArchState &state) {
        Rng rng(seed ^ 0xdcdcu);
        for (std::int64_t i = 0; i < n; ++i)
            state.writeMem(i, static_cast<std::int64_t>(rng.below(256)));
    };
    wl.defaultSteps = 8'000'000;
    return wl;
}

} // namespace pabp
