/**
 * @file
 * The synthetic benchmark suite standing in for the paper's SPEC
 * workloads (see DESIGN.md, substitutions). Each workload is a CFG
 * program plus a deterministic memory-image initialiser; together
 * they fix the dynamic branch/predicate statistics the predictors
 * are evaluated on.
 *
 * The suite deliberately mixes the behaviours the paper's techniques
 * target: hot data-dependent diamonds (become hyperblocks), rare
 * side conditions (become region-based branches), conditions
 * correlated with earlier conditions (what PGU recovers), and plain
 * loop control (the easy bulk).
 */

#ifndef PABP_WORKLOADS_WORKLOAD_HH
#define PABP_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compile.hh"
#include "compiler/ir.hh"

namespace pabp {

/** A benchmark: program + input generator + run length. */
struct Workload
{
    std::string name;
    IrFunction fn;
    StateInit init;                   ///< memory-image initialiser
    std::uint64_t defaultSteps = 2'000'000;
};

/**
 * @name Named suite
 * @{
 */
Workload makeBsort(std::uint64_t seed);      ///< bubble sort, swap diamond
Workload makeBsearch(std::uint64_t seed);    ///< binary search, 50/50 cmp
Workload makeHistogram(std::uint64_t seed);  ///< correlated range chain
Workload makeInterp(std::uint64_t seed);     ///< bytecode dispatch chain
Workload makeDchain(std::uint64_t seed);     ///< correlated diamond chain
Workload makeMatrix(std::uint64_t seed);     ///< sparse-guard matmul
Workload makeRle(std::uint64_t seed);        ///< run-length encoder
Workload makeFilter(std::uint64_t seed);     ///< range filter + rare tag
Workload makeListwalk(std::uint64_t seed);   ///< pointer chase + tests
Workload makeFsm(std::uint64_t seed);        ///< table-driven automaton
/** @} */

/** The whole suite, in canonical order. */
std::vector<Workload> allWorkloads(std::uint64_t seed);

/** One suite member by name; fatal when unknown. */
Workload makeWorkload(const std::string &name, std::uint64_t seed);

/** Names in canonical order (for option parsing / tables). */
std::vector<std::string> workloadNames();

/**
 * @name Parameterised generators for sensitivity sweeps
 * @{
 */

/**
 * A loop whose central branch is taken with the given probability;
 * the branch guards a small diamond so if-conversion applies.
 */
Workload makeBiasWorkload(double taken_probability, std::uint64_t seed);

/**
 * A loop computing a condition, then @p distance filler instructions,
 * then a *branch with the same outcome* as the condition. After
 * if-conversion the condition is a predicate define at distance
 * @p distance from the region-based branch, making the workload a
 * direct probe of the availability-delay parameter (experiment E9).
 */
Workload makeCorrWorkload(unsigned distance, std::uint64_t seed);

/** Region heuristics that give makeCorrWorkload() its intended shape
 *  (the handler block must stay outside the region). */
HyperblockHeuristics corrWorkloadHeuristics();
/** @} */

/** Compile + instantiate helper used by benches: returns the lowered
 *  program for this workload under the given options. */
CompiledProgram compileWorkload(Workload &wl, const CompileOptions &opts);

/**
 * Process-wide count of compileWorkload() calls. Compilation
 * (profiling included) dominates a sweep cell's setup cost, so the
 * sweep layer caches compiled programs and must never compile the
 * same (workload, options) twice - the regression tests pin that
 * down by differencing this counter. Thread-safe.
 */
std::uint64_t compileWorkloadCount();

} // namespace pabp

#endif // PABP_WORKLOADS_WORKLOAD_HH
