/**
 * @file
 * Random structured-program generator used by the property-test
 * suites (and the fuzz bench): produces arbitrary but *always
 * halting* CFG programs by composing straight-line code, diamonds,
 * triangles and counted loops. Every program is a valid IrFunction,
 * so it can be run through both lowering modes and compared - the
 * backbone of the if-conversion equivalence property test.
 */

#ifndef PABP_WORKLOADS_RANDOM_GEN_HH
#define PABP_WORKLOADS_RANDOM_GEN_HH

#include <cstdint>

#include "workloads/workload.hh"

namespace pabp {

/** Knobs for the random generator. */
struct RandomProgramConfig
{
    /** Rough number of structural items (blocks scale with this). */
    unsigned items = 12;
    /** Maximum loop nesting. */
    unsigned maxLoopDepth = 2;
    /** Probability that a diamond's sides are skewed cold/hot. */
    double skewChance = 0.4;
    /** Memory words touched by generated loads/stores. */
    std::int64_t dataWindow = 4096;
    /** The whole program body repeats this many times, so profiles
     *  see hot blocks and regions actually form. */
    std::int64_t repeats = 60;
};

/**
 * Build a random structured workload from a seed. Deterministic:
 * equal seeds and configs give identical programs and inputs.
 */
Workload makeRandomWorkload(std::uint64_t seed,
                            const RandomProgramConfig &config =
                                RandomProgramConfig{});

} // namespace pabp

#endif // PABP_WORKLOADS_RANDOM_GEN_HH
