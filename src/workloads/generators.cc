/**
 * @file
 * Parameterised workload generators for sensitivity sweeps, the suite
 * registry, and the compile helper.
 */

#include "workloads/workload.hh"

#include <atomic>

#include "sim/arch_state.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace pabp {

// ---------------------------------------------------------------------
// bias sweep: one central diamond whose branch is taken with a fixed
// probability, drawn from pre-generated coin flips in memory.
//
// regs: r1=i r3=N r4=coin r6,r7=path temps r12=pass counter
// mem:  coins at 0
// ---------------------------------------------------------------------
Workload
makeBiasWorkload(double taken_probability, std::uint64_t seed)
{
    constexpr std::int64_t n = 16384;
    constexpr std::int64_t passes = 12;

    Workload wl;
    wl.name = "bias";
    wl.fn.name = "bias";
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId pass_head = b.newBlock();
    BlockId pass_init = b.newBlock();
    BlockId head = b.newBlock();
    BlockId test = b.newBlock();
    BlockId then_b = b.newBlock();
    BlockId else_b = b.newBlock();
    BlockId latch = b.newBlock();
    BlockId pass_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, n));
    b.append(makeMovImm(12, passes));
    b.jump(pass_head);

    b.setBlock(pass_head);
    b.condBrImm(CmpRel::Gt, 12, 0, pass_init, done);

    b.setBlock(pass_init);
    b.append(makeMovImm(1, 0));
    b.jump(head);

    b.setBlock(head);
    b.condBr(CmpRel::Lt, 1, 3, test, pass_latch);

    b.setBlock(test);
    b.append(makeLoad(4, 1, 0));
    b.condBrImm(CmpRel::Eq, 4, 1, then_b, else_b);

    // Arms carry real work (8 ops each) so predication pays a
    // visible both-paths tax - that is what creates the classic
    // bias crossover in E15.
    b.setBlock(then_b);
    b.append(makeAluImm(Opcode::Add, 6, 6, 3));
    b.append(makeAluImm(Opcode::Mul, 8, 6, 5));
    b.append(makeAluImm(Opcode::Xor, 8, 8, 0x1f));
    b.append(makeAluImm(Opcode::Shl, 9, 8, 2));
    b.append(makeAluImm(Opcode::Add, 9, 9, 7));
    b.append(makeAluImm(Opcode::And, 9, 9, 4095));
    b.append(makeAluImm(Opcode::Sub, 6, 9, 11));
    b.append(makeAluImm(Opcode::Or, 6, 6, 1));
    b.jump(latch);

    b.setBlock(else_b);
    b.append(makeAluImm(Opcode::Sub, 7, 7, 1));
    b.append(makeAluImm(Opcode::Mul, 8, 7, 3));
    b.append(makeAluImm(Opcode::Xor, 8, 8, 0x2e));
    b.append(makeAluImm(Opcode::Shr, 9, 8, 1));
    b.append(makeAluImm(Opcode::Add, 9, 9, 13));
    b.append(makeAluImm(Opcode::And, 9, 9, 2047));
    b.append(makeAluImm(Opcode::Add, 7, 9, 5));
    b.append(makeAluImm(Opcode::Xor, 7, 7, 2));
    b.jump(latch);

    b.setBlock(latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(head);

    b.setBlock(pass_latch);
    b.append(makeAluImm(Opcode::Sub, 12, 12, 1));
    b.jump(pass_head);

    b.setBlock(done);
    b.halt();

    wl.init = [seed, taken_probability](ArchState &state) {
        Rng rng(seed ^ 0xb1a5u);
        for (std::int64_t i = 0; i < n; ++i)
            state.writeMem(i, rng.chance(taken_probability) ? 1 : 0);
    };
    wl.defaultSteps = 4'000'000;
    return wl;
}

// ---------------------------------------------------------------------
// correlation-distance sweep: the diamond "rare : main" splits on
// v < 32 (25% rare). The rare arm jumps to an out-of-region handler,
// so after if-conversion it becomes a region-based branch guarded by
// the rare arm's block predicate. That predicate (and the correlated
// history bit) is defined by the single compare in cond_block, and
// the main arm carries `distance` filler instructions between define
// and (sunk) branch - a direct probe of availability delay for BOTH
// techniques. Compile with maxBlocks=4 so the handler stays outside.
//
// regs: r1=i r3=N r4=v r5=acc r6=filler sink r12=pass counter
// mem:  data at 0, counter at 60000
// ---------------------------------------------------------------------
Workload
makeCorrWorkload(unsigned distance, std::uint64_t seed)
{
    constexpr std::int64_t n = 8192;
    constexpr std::int64_t counter_addr = 60000;
    constexpr std::int64_t passes = 12;

    Workload wl;
    wl.name = "corr-" + std::to_string(distance);
    wl.fn.name = wl.name;
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId pass_head = b.newBlock();
    BlockId pass_init = b.newBlock();
    BlockId head = b.newBlock();
    BlockId cond_block = b.newBlock();
    BlockId rare = b.newBlock();
    BlockId main_arm = b.newBlock();
    BlockId handler = b.newBlock();
    BlockId latch = b.newBlock();
    BlockId pass_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, n));
    b.append(makeMovImm(12, passes));
    b.append(makeMovImm(10, counter_addr));
    b.jump(pass_head);

    b.setBlock(pass_head);
    b.condBrImm(CmpRel::Gt, 12, 0, pass_init, done);

    b.setBlock(pass_init);
    b.append(makeMovImm(1, 0));
    b.jump(head);

    b.setBlock(head);
    b.condBr(CmpRel::Lt, 1, 3, cond_block, pass_latch);

    // The define: v < 32 (25% taken on uniform 0..127 data).
    b.setBlock(cond_block);
    b.append(makeLoad(4, 1, 0));
    b.condBrImm(CmpRel::Lt, 4, 32, rare, main_arm);

    b.setBlock(rare);
    b.append(makeAluImm(Opcode::Add, 5, 5, 2));
    b.jump(handler); // jump exit -> region-based branch on p_rare

    b.setBlock(main_arm);
    for (unsigned k = 0; k < distance; ++k)
        b.append(makeAluImm(Opcode::Xor, 6, 6, 0x2f));
    b.jump(latch);

    b.setBlock(handler);
    b.append(makeLoad(11, 10, 0));
    b.append(makeAluImm(Opcode::Add, 11, 11, 1));
    b.append(makeStore(10, 0, 11));
    b.jump(latch);

    b.setBlock(latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(head);

    b.setBlock(pass_latch);
    b.append(makeAluImm(Opcode::Sub, 12, 12, 1));
    b.jump(pass_head);

    b.setBlock(done);
    b.halt();

    wl.init = [seed](ArchState &state) {
        Rng rng(seed ^ 0xc0bbu);
        for (std::int64_t i = 0; i < n; ++i)
            state.writeMem(i, static_cast<std::int64_t>(rng.below(128)));
    };
    wl.defaultSteps = 4'000'000;
    return wl;
}

HyperblockHeuristics
corrWorkloadHeuristics()
{
    HyperblockHeuristics h;
    h.maxBlocks = 4; // head, cond_block, rare, main - handler stays out
    return h;
}

std::vector<std::string>
workloadNames()
{
    return {"bsort", "bsearch", "histogram", "interp", "dchain",
            "matrix", "rle", "filter", "listwalk", "fsm"};
}

Workload
makeWorkload(const std::string &name, std::uint64_t seed)
{
    if (name == "bsort")
        return makeBsort(seed);
    if (name == "bsearch")
        return makeBsearch(seed);
    if (name == "histogram")
        return makeHistogram(seed);
    if (name == "interp")
        return makeInterp(seed);
    if (name == "dchain")
        return makeDchain(seed);
    if (name == "matrix")
        return makeMatrix(seed);
    if (name == "rle")
        return makeRle(seed);
    if (name == "filter")
        return makeFilter(seed);
    if (name == "listwalk")
        return makeListwalk(seed);
    if (name == "fsm")
        return makeFsm(seed);
    pabp_fatal("unknown workload: " + name);
}

std::vector<Workload>
allWorkloads(std::uint64_t seed)
{
    std::vector<Workload> suite;
    for (const std::string &name : workloadNames())
        suite.push_back(makeWorkload(name, seed));
    return suite;
}

namespace {
std::atomic<std::uint64_t> compileCalls{0};
} // anonymous namespace

CompiledProgram
compileWorkload(Workload &wl, const CompileOptions &opts)
{
    compileCalls.fetch_add(1, std::memory_order_relaxed);
    std::string problem = verifyFunction(wl.fn);
    if (!problem.empty())
        pabp_panic("workload " + wl.name + " invalid: " + problem);
    return compileFunction(wl.fn, wl.init, opts);
}

std::uint64_t
compileWorkloadCount()
{
    return compileCalls.load(std::memory_order_relaxed);
}

} // namespace pabp
