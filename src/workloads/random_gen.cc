#include "workloads/random_gen.hh"

#include "sim/arch_state.hh"
#include "util/rng.hh"

namespace pabp {

namespace {

/** Data registers the generated code computes with. */
constexpr unsigned dataRegBase = 16;
constexpr unsigned dataRegCount = 24;
/** Loop counter registers (one per generated loop, never reused). */
constexpr unsigned counterRegBase = 48;
constexpr unsigned counterRegCount = 13;

class RandomBuilder
{
  public:
    RandomBuilder(IrFunction &fn, std::uint64_t seed,
                  const RandomProgramConfig &config)
        : builder(fn), rng(seed * 0x9e3779b97f4a7c15ull + 1), cfg(config)
    {}

    void
    build()
    {
        // r62 is the outer repeat counter; r63 untouched.
        constexpr unsigned repeat_reg = 62;
        BlockId entry = builder.newBlock();
        BlockId outer_head = builder.newBlock();
        BlockId chain = builder.newBlock();
        BlockId done = builder.newBlock();

        builder.setBlock(entry);
        builder.append(makeMovImm(repeat_reg, cfg.repeats));
        for (unsigned r = 0; r < 6; ++r) {
            builder.append(makeMovImm(dataReg(),
                                      static_cast<std::int64_t>(
                                          rng.below(1024))));
        }
        builder.jump(outer_head);

        builder.setBlock(outer_head);
        builder.condBrImm(CmpRel::Gt, repeat_reg, 0, chain, done);

        builder.setBlock(chain);
        emitSeq(cfg.items, 0);
        builder.append(makeAluImm(Opcode::Sub, repeat_reg, repeat_reg, 1));
        builder.jump(outer_head);

        builder.setBlock(done);
        builder.halt();
    }

  private:
    IrBuilder builder;
    Rng rng;
    RandomProgramConfig cfg;
    unsigned countersUsed = 0;

    unsigned
    dataReg()
    {
        return dataRegBase + static_cast<unsigned>(
            rng.below(dataRegCount));
    }

    CmpRel
    randomRel()
    {
        static const CmpRel rels[] = {CmpRel::Eq, CmpRel::Ne, CmpRel::Lt,
                                      CmpRel::Le, CmpRel::Gt, CmpRel::Ge,
                                      CmpRel::Ltu, CmpRel::Geu};
        return rels[rng.below(8)];
    }

    /** Append one random body instruction to the current block. */
    void
    appendRandomOp()
    {
        static const Opcode ops[] = {Opcode::Add, Opcode::Sub,
                                     Opcode::Mul, Opcode::And,
                                     Opcode::Or, Opcode::Xor,
                                     Opcode::Shl, Opcode::Shr};
        std::uint64_t kind = rng.below(10);
        if (kind < 7) {
            Opcode op = ops[rng.below(8)];
            unsigned dst = dataReg();
            unsigned src = dataReg();
            if (rng.chance(0.5)) {
                std::int64_t imm = static_cast<std::int64_t>(
                    rng.below(64));
                if (op == Opcode::Shl || op == Opcode::Shr)
                    imm &= 7;
                builder.append(makeAluImm(op, dst, src, imm));
            } else {
                unsigned src2 = dataReg();
                // Unmasked shifts by register are legal (the emulator
                // masks the count), so no special case needed.
                builder.append(makeAlu(op, dst, src, src2));
            }
        } else {
            // Bounded memory access: mask an address register first.
            unsigned addr = dataReg();
            unsigned val = dataReg();
            builder.append(makeAluImm(Opcode::And, addr, addr,
                                      cfg.dataWindow - 1));
            if (kind < 9)
                builder.append(makeLoad(val, addr, 0));
            else
                builder.append(makeStore(addr, 0, val));
        }
    }

    void
    emitStraight()
    {
        unsigned count = 1 + static_cast<unsigned>(rng.below(4));
        for (unsigned i = 0; i < count; ++i)
            appendRandomOp();
    }

    /** Emit 1-2 body ops then transfer to @p join. */
    void
    fillArm(BlockId arm, BlockId join, unsigned depth)
    {
        builder.setBlock(arm);
        if (depth < cfg.maxLoopDepth && rng.chance(0.25))
            emitSeq(1, depth + 1);
        else
            emitStraight();
        builder.jump(join);
    }

    void
    emitDiamond(unsigned depth)
    {
        BlockId then_b = builder.newBlock();
        BlockId else_b = builder.newBlock();
        BlockId join = builder.newBlock();
        std::int64_t imm = static_cast<std::int64_t>(rng.below(512));
        builder.condBrImm(randomRel(), dataReg(), imm, then_b, else_b);
        BlockId resume_then = then_b, resume_else = else_b;
        fillArm(resume_then, join, depth);
        fillArm(resume_else, join, depth);
        builder.setBlock(join);
    }

    void
    emitTriangle(unsigned depth)
    {
        BlockId body = builder.newBlock();
        BlockId join = builder.newBlock();
        std::int64_t imm = static_cast<std::int64_t>(rng.below(512));
        builder.condBrImm(randomRel(), dataReg(), imm, body, join);
        fillArm(body, join, depth);
        builder.setBlock(join);
    }

    void
    emitLoop(unsigned depth)
    {
        if (countersUsed >= counterRegCount)
            return emitStraight();
        unsigned ctr = counterRegBase + countersUsed++;
        std::int64_t trips =
            1 + static_cast<std::int64_t>(rng.below(5));

        BlockId head = builder.newBlock();
        BlockId body = builder.newBlock();
        BlockId exit = builder.newBlock();

        builder.append(makeMovImm(ctr, trips));
        builder.jump(head);

        builder.setBlock(head);
        builder.condBrImm(CmpRel::Gt, ctr, 0, body, exit);

        builder.setBlock(body);
        emitSeq(1 + rng.below(2), depth + 1);
        // Occasional data-dependent break: a side edge out of the
        // loop that if-conversion turns into a region-based branch.
        if (rng.chance(0.4)) {
            BlockId cont = builder.newBlock();
            std::int64_t imm =
                static_cast<std::int64_t>(rng.below(512));
            builder.condBrImm(randomRel(), dataReg(), imm, exit, cont);
            builder.setBlock(cont);
            emitStraight();
        }
        builder.append(makeAluImm(Opcode::Sub, ctr, ctr, 1));
        builder.jump(head);

        builder.setBlock(exit);
    }

    /** Emit @p items structural items into the current block chain. */
    void
    emitSeq(unsigned items, unsigned depth)
    {
        for (unsigned i = 0; i < items; ++i) {
            std::uint64_t roll = rng.below(100);
            if (roll < 35) {
                emitStraight();
            } else if (roll < 60) {
                emitDiamond(depth);
            } else if (roll < 80) {
                emitTriangle(depth);
            } else if (depth < cfg.maxLoopDepth) {
                emitLoop(depth);
            } else {
                emitStraight();
            }
        }
    }
};

} // anonymous namespace

Workload
makeRandomWorkload(std::uint64_t seed, const RandomProgramConfig &config)
{
    Workload wl;
    wl.name = "random-" + std::to_string(seed);
    wl.fn.name = wl.name;

    RandomBuilder rb(wl.fn, seed, config);
    rb.build();

    std::int64_t window = config.dataWindow;
    wl.init = [seed, window](ArchState &state) {
        Rng rng(seed ^ 0xf00du);
        for (std::int64_t i = 0; i < window; ++i)
            state.writeMem(i, static_cast<std::int64_t>(rng.below(4096)));
    };
    wl.defaultSteps = 1'000'000;
    return wl;
}

} // namespace pabp
