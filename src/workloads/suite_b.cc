/**
 * @file
 * Suite members 6-10: matrix, rle, filter, listwalk, fsm.
 */

#include "workloads/workload.hh"

#include "sim/arch_state.hh"
#include "util/rng.hh"

namespace pabp {

// ---------------------------------------------------------------------
// matrix: dense-times-sparse matrix multiply where the inner loop
// skips zero elements of A (~40%). The zero test is a data-dependent
// diamond; the inner-loop trip test becomes a biased region branch.
//
// regs: r1=i r2=k r3=n r4=j r5=a r6=bval r7=acc r8..r11 addr temps
//       r12=row base of A, r13 = C index
// mem:  A at 0 (n*n), B at 1024, C at 2048
// ---------------------------------------------------------------------
Workload
makeMatrix(std::uint64_t seed)
{
    constexpr std::int64_t n = 12;
    constexpr std::int64_t b_base = 1024;
    constexpr std::int64_t c_base = 2048;
    constexpr std::int64_t rounds = 140;

    Workload wl;
    wl.name = "matrix";
    wl.fn.name = "matrix";
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId round_head = b.newBlock();
    BlockId i_init = b.newBlock();
    BlockId i_head = b.newBlock();
    BlockId j_init = b.newBlock();
    BlockId j_head = b.newBlock();
    BlockId k_init = b.newBlock();
    BlockId k_head = b.newBlock();
    BlockId k_test = b.newBlock();
    BlockId k_mult = b.newBlock();
    BlockId k_latch = b.newBlock();
    BlockId j_latch = b.newBlock();
    BlockId i_latch = b.newBlock();
    BlockId round_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, n));
    b.append(makeMovImm(14, rounds));
    b.jump(round_head);

    b.setBlock(round_head);
    b.condBrImm(CmpRel::Gt, 14, 0, i_init, done);

    b.setBlock(i_init);
    b.append(makeMovImm(1, 0));
    b.jump(i_head);

    b.setBlock(i_head);
    b.condBr(CmpRel::Lt, 1, 3, j_init, round_latch);

    b.setBlock(j_init);
    b.append(makeMovImm(4, 0));
    b.append(makeAluImm(Opcode::Mul, 12, 1, n)); // row base of A
    b.jump(j_head);

    b.setBlock(j_head);
    b.condBr(CmpRel::Lt, 4, 3, k_init, i_latch);

    b.setBlock(k_init);
    b.append(makeMovImm(2, 0));
    b.append(makeMovImm(7, 0));
    b.jump(k_head);

    b.setBlock(k_head);
    b.condBr(CmpRel::Lt, 2, 3, k_test, j_latch);

    b.setBlock(k_test);
    b.append(makeAlu(Opcode::Add, 8, 12, 2));  // &A[i][k]
    b.append(makeLoad(5, 8, 0));
    b.condBrImm(CmpRel::Eq, 5, 0, k_latch, k_mult);

    b.setBlock(k_mult);
    b.append(makeAluImm(Opcode::Mul, 9, 2, n));
    b.append(makeAlu(Opcode::Add, 9, 9, 4));   // k*n + j
    b.append(makeLoad(6, 9, b_base));
    b.append(makeAlu(Opcode::Mul, 6, 5, 6));
    b.append(makeAlu(Opcode::Add, 7, 7, 6));
    b.jump(k_latch);

    b.setBlock(k_latch);
    b.append(makeAluImm(Opcode::Add, 2, 2, 1));
    b.jump(k_head);

    b.setBlock(j_latch);
    b.append(makeAlu(Opcode::Add, 13, 12, 4)); // i*n + j
    b.append(makeStore(13, c_base, 7));
    b.append(makeAluImm(Opcode::Add, 4, 4, 1));
    b.jump(j_head);

    b.setBlock(i_latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(i_head);

    b.setBlock(round_latch);
    b.append(makeAluImm(Opcode::Sub, 14, 14, 1));
    b.jump(round_head);

    b.setBlock(done);
    b.halt();

    wl.init = [seed](ArchState &state) {
        Rng rng(seed ^ 0x3a3au);
        for (std::int64_t i = 0; i < n * n; ++i) {
            bool zero = rng.chance(0.4);
            state.writeMem(i, zero ? 0 : static_cast<std::int64_t>(
                                             rng.below(100) + 1));
            state.writeMem(b_base + i,
                           static_cast<std::int64_t>(rng.below(100)));
        }
    };
    wl.defaultSteps = 8'000'000;
    return wl;
}

// ---------------------------------------------------------------------
// rle: run-length encode a bursty stream. The run-continuation branch
// is strongly autocorrelated (runs), the close-run path writes out a
// token; the whole diamond if-converts.
//
// regs: r1=i r3=N r4=a[i] r5=a[i-1] r6=runlen r7=out idx
//       r12=pass counter
// mem:  data at 0, tokens at 32768
// ---------------------------------------------------------------------
Workload
makeRle(std::uint64_t seed)
{
    constexpr std::int64_t n = 16384;
    constexpr std::int64_t out_base = 32768;
    constexpr std::int64_t passes = 10;

    Workload wl;
    wl.name = "rle";
    wl.fn.name = "rle";
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId pass_head = b.newBlock();
    BlockId pass_init = b.newBlock();
    BlockId head = b.newBlock();
    BlockId body = b.newBlock();
    BlockId cont = b.newBlock();
    BlockId close = b.newBlock();
    BlockId latch = b.newBlock();
    BlockId pass_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, n));
    b.append(makeMovImm(12, passes));
    b.jump(pass_head);

    b.setBlock(pass_head);
    b.condBrImm(CmpRel::Gt, 12, 0, pass_init, done);

    b.setBlock(pass_init);
    b.append(makeMovImm(1, 1));
    b.append(makeMovImm(6, 1));
    b.append(makeMovImm(7, 0));
    b.jump(head);

    b.setBlock(head);
    b.condBr(CmpRel::Lt, 1, 3, body, pass_latch);

    b.setBlock(body);
    b.append(makeLoad(4, 1, 0));
    b.append(makeLoad(5, 1, -1));
    b.condBr(CmpRel::Eq, 4, 5, cont, close);

    b.setBlock(cont);
    b.append(makeAluImm(Opcode::Add, 6, 6, 1));
    b.jump(latch);

    b.setBlock(close);
    b.append(makeAlu(Opcode::Add, 9, 7, 0));
    b.append(makeStore(9, out_base, 6));
    b.append(makeAluImm(Opcode::Add, 7, 7, 1));
    b.append(makeMovImm(6, 1));
    b.jump(latch);

    b.setBlock(latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(head);

    b.setBlock(pass_latch);
    b.append(makeAluImm(Opcode::Sub, 12, 12, 1));
    b.jump(pass_head);

    b.setBlock(done);
    b.halt();

    wl.init = [seed](ArchState &state) {
        Rng rng(seed ^ 0x41e5u);
        std::int64_t i = 0;
        while (i < n) {
            std::int64_t value = static_cast<std::int64_t>(rng.below(64));
            std::int64_t run = 1 + static_cast<std::int64_t>(rng.below(12));
            for (std::int64_t r = 0; r < run && i < n; ++r, ++i)
                state.writeMem(i, value);
        }
    };
    wl.defaultSteps = 8'000'000;
    return wl;
}

// ---------------------------------------------------------------------
// filter: range-filter a stream with an early rare tag test. The tag
// branch's define lands at the region top and the branch sinks to the
// bottom: prime squash-filter territory. The two range tests are
// correlated with each other and with the data distribution.
//
// regs: r1=i r3=N r4=v r7=out idx r8=tag idx r12=pass counter
// mem:  data at 0, filtered at 32768, tags at 49152
// ---------------------------------------------------------------------
Workload
makeFilter(std::uint64_t seed)
{
    constexpr std::int64_t n = 16384;
    constexpr std::int64_t out_base = 32768;
    constexpr std::int64_t tag_base = 49152;
    constexpr std::int64_t tag_value = 12345;
    constexpr std::int64_t passes = 10;

    Workload wl;
    wl.name = "filter";
    wl.fn.name = "filter";
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId pass_head = b.newBlock();
    BlockId pass_init = b.newBlock();
    BlockId head = b.newBlock();
    BlockId tag_test = b.newBlock();
    BlockId range1 = b.newBlock();
    BlockId range2 = b.newBlock();
    BlockId keep = b.newBlock();
    BlockId latch = b.newBlock();
    BlockId tag_handler = b.newBlock();
    BlockId pass_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, n));
    b.append(makeMovImm(12, passes));
    b.append(makeMovImm(7, 0));
    b.append(makeMovImm(8, 0));
    b.jump(pass_head);

    b.setBlock(pass_head);
    b.condBrImm(CmpRel::Gt, 12, 0, pass_init, done);

    b.setBlock(pass_init);
    b.append(makeMovImm(1, 0));
    b.jump(head);

    b.setBlock(head);
    b.condBr(CmpRel::Lt, 1, 3, tag_test, pass_latch);

    b.setBlock(tag_test);
    b.append(makeLoad(4, 1, 0));
    b.condBrImm(CmpRel::Eq, 4, tag_value, tag_handler, range1);

    b.setBlock(range1);
    b.condBrImm(CmpRel::Gt, 4, 300, range2, latch);

    b.setBlock(range2);
    b.condBrImm(CmpRel::Lt, 4, 800, keep, latch);

    b.setBlock(keep);
    b.append(makeAlu(Opcode::Add, 9, 7, 0));
    b.append(makeStore(9, out_base, 4));
    b.append(makeAluImm(Opcode::Add, 7, 7, 1));
    b.append(makeAluImm(Opcode::And, 7, 7, 8191));
    b.jump(latch);

    b.setBlock(latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(head);

    b.setBlock(tag_handler);
    b.append(makeAlu(Opcode::Add, 9, 8, 0));
    b.append(makeStore(9, tag_base, 1));
    b.append(makeAluImm(Opcode::Add, 8, 8, 1));
    b.append(makeAluImm(Opcode::And, 8, 8, 1023));
    b.jump(latch);

    b.setBlock(pass_latch);
    b.append(makeAluImm(Opcode::Sub, 12, 12, 1));
    b.jump(pass_head);

    b.setBlock(done);
    b.halt();

    wl.init = [seed](ArchState &state) {
        Rng rng(seed ^ 0xf117u);
        for (std::int64_t i = 0; i < n; ++i) {
            std::int64_t v = static_cast<std::int64_t>(rng.below(1000));
            if (rng.below(503) == 0)
                v = tag_value;
            state.writeMem(i, v);
        }
    };
    wl.defaultSteps = 8'000'000;
    return wl;
}

// ---------------------------------------------------------------------
// listwalk: pointer-chase a shuffled linked list, testing each node's
// payload parity. Next-pointer loads feed the loop branch late - the
// pipeline model feels this - and the parity diamond if-converts.
//
// regs: r1=node ptr r4=value r5=parity r6=sum r8=walks
// mem:  nodes at 0, two words each: [next, value]; sum sink at 60000
// ---------------------------------------------------------------------
Workload
makeListwalk(std::uint64_t seed)
{
    constexpr std::int64_t nodes = 4096;
    constexpr std::int64_t walks = 40;
    constexpr std::int64_t sink = 60000;

    Workload wl;
    wl.name = "listwalk";
    wl.fn.name = "listwalk";
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId walk_head = b.newBlock();
    BlockId walk_init = b.newBlock();
    BlockId node_head = b.newBlock();
    BlockId node_body = b.newBlock();
    BlockId odd = b.newBlock();
    BlockId even = b.newBlock();
    BlockId advance = b.newBlock();
    BlockId walk_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(8, walks));
    b.append(makeMovImm(6, 0));
    b.jump(walk_head);

    b.setBlock(walk_head);
    b.condBrImm(CmpRel::Gt, 8, 0, walk_init, done);

    b.setBlock(walk_init);
    b.append(makeMovImm(1, 2)); // first node at address 2 (0 = null)
    b.jump(node_head);

    b.setBlock(node_head);
    b.condBrImm(CmpRel::Ne, 1, 0, node_body, walk_latch);

    b.setBlock(node_body);
    b.append(makeLoad(4, 1, 1));
    b.append(makeAluImm(Opcode::And, 5, 4, 1));
    b.condBrImm(CmpRel::Eq, 5, 1, odd, even);

    b.setBlock(odd);
    b.append(makeAlu(Opcode::Add, 6, 6, 4));
    b.jump(advance);

    b.setBlock(even);
    b.append(makeAluImm(Opcode::Sub, 6, 6, 1));
    b.jump(advance);

    b.setBlock(advance);
    b.append(makeLoad(1, 1, 0));
    b.jump(node_head);

    b.setBlock(walk_latch);
    b.append(makeMovImm(9, sink));
    b.append(makeStore(9, 0, 6));
    b.append(makeAluImm(Opcode::Sub, 8, 8, 1));
    b.jump(walk_head);

    b.setBlock(done);
    b.halt();

    wl.init = [seed](ArchState &state) {
        Rng rng(seed ^ 0x715bu);
        // A random permutation threaded through node slots. Node i
        // lives at address 2 + 2*i; slot 0/1 hold next/value.
        std::vector<std::int64_t> order(nodes);
        for (std::int64_t i = 0; i < nodes; ++i)
            order[i] = i;
        for (std::int64_t i = nodes - 1; i > 0; --i) {
            std::int64_t j = static_cast<std::int64_t>(
                rng.below(static_cast<std::uint64_t>(i + 1)));
            std::swap(order[i], order[j]);
        }
        // The walk starts at address 2 = node 0's slot, so node 0
        // must be first in traversal order.
        for (std::int64_t i = 0; i < nodes; ++i) {
            if (order[i] == 0) {
                std::swap(order[0], order[i]);
                break;
            }
        }
        for (std::int64_t i = 0; i < nodes; ++i) {
            std::int64_t addr = 2 + 2 * order[i];
            std::int64_t next =
                i + 1 < nodes ? 2 + 2 * order[i + 1] : 0;
            state.writeMem(addr, next);
            state.writeMem(addr + 1,
                           static_cast<std::int64_t>(rng.below(1000)));
        }
    };
    wl.defaultSteps = 8'000'000;
    return wl;
}

// ---------------------------------------------------------------------
// fsm: a table-driven automaton over a biased symbol stream. The
// state-dependent branches follow the automaton's structure, giving
// history predictors something to chew on; the reset path is rare.
//
// regs: r1=i r2=state r3=N r4=sym r5=index r6=resets r7=acc
//       r12=pass counter
// mem:  symbols at 0, transition table at 32768 (8 states x 4 syms),
//       sinks at 60000
// ---------------------------------------------------------------------
Workload
makeFsm(std::uint64_t seed)
{
    constexpr std::int64_t n = 16384;
    constexpr std::int64_t table_base = 32768;
    constexpr std::int64_t sink = 60000;
    constexpr std::int64_t passes = 10;

    Workload wl;
    wl.name = "fsm";
    wl.fn.name = "fsm";
    IrBuilder b(wl.fn);

    BlockId entry = b.newBlock();
    BlockId pass_head = b.newBlock();
    BlockId pass_init = b.newBlock();
    BlockId head = b.newBlock();
    BlockId step = b.newBlock();
    BlockId reset_path = b.newBlock();
    BlockId live_path = b.newBlock();
    BlockId high_test = b.newBlock();
    BlockId high = b.newBlock();
    BlockId low = b.newBlock();
    BlockId latch = b.newBlock();
    BlockId pass_latch = b.newBlock();
    BlockId done = b.newBlock();

    b.setBlock(entry);
    b.append(makeMovImm(3, n));
    b.append(makeMovImm(2, 1));
    b.append(makeMovImm(12, passes));
    b.jump(pass_head);

    b.setBlock(pass_head);
    b.condBrImm(CmpRel::Gt, 12, 0, pass_init, done);

    b.setBlock(pass_init);
    b.append(makeMovImm(1, 0));
    b.jump(head);

    b.setBlock(head);
    b.condBr(CmpRel::Lt, 1, 3, step, pass_latch);

    b.setBlock(step);
    b.append(makeLoad(4, 1, 0));
    b.append(makeAluImm(Opcode::Mul, 5, 2, 4));
    b.append(makeAlu(Opcode::Add, 5, 5, 4));
    b.append(makeLoad(2, 5, table_base));
    b.condBrImm(CmpRel::Eq, 2, 0, reset_path, live_path);

    b.setBlock(reset_path);
    b.append(makeAluImm(Opcode::Add, 6, 6, 1));
    b.append(makeMovImm(2, 1));
    b.jump(high_test);

    b.setBlock(live_path);
    b.append(makeAlu(Opcode::Add, 7, 7, 2));
    b.jump(high_test);

    b.setBlock(high_test);
    b.condBrImm(CmpRel::Gt, 2, 4, high, low);

    b.setBlock(high);
    b.append(makeAluImm(Opcode::Add, 7, 7, 3));
    b.jump(latch);

    b.setBlock(low);
    b.append(makeAluImm(Opcode::Sub, 7, 7, 1));
    b.jump(latch);

    b.setBlock(latch);
    b.append(makeAluImm(Opcode::Add, 1, 1, 1));
    b.jump(head);

    b.setBlock(pass_latch);
    b.append(makeMovImm(9, sink));
    b.append(makeStore(9, 0, 7));
    b.append(makeStore(9, 1, 6));
    b.append(makeAluImm(Opcode::Sub, 12, 12, 1));
    b.jump(pass_head);

    b.setBlock(done);
    b.halt();

    wl.init = [seed](ArchState &state) {
        Rng rng(seed ^ 0x0f5au);
        // Transition table: mostly forward motion, occasional reset.
        for (std::int64_t s = 0; s < 8; ++s) {
            for (std::int64_t c = 0; c < 4; ++c) {
                std::int64_t next = (s + c + 1) % 8;
                if (rng.below(16) == 0)
                    next = 0;
                state.writeMem(table_base + s * 4 + c, next);
            }
        }
        // Symbol stream with first-order bias: repeat previous symbol
        // with probability 0.6.
        std::int64_t prev = 0;
        for (std::int64_t i = 0; i < n; ++i) {
            std::int64_t sym = rng.chance(0.6)
                ? prev
                : static_cast<std::int64_t>(rng.below(4));
            state.writeMem(i, sym);
            prev = sym;
        }
    };
    wl.defaultSteps = 8'000'000;
    return wl;
}

} // namespace pabp
