/**
 * @file
 * Profile-guided selection of acyclic single-entry regions for
 * if-conversion (hyperblock formation).
 *
 * A region is grown from a seed block by repeatedly adding a candidate
 * successor block X when:
 *   - X is not already in any region and is not terminated by Halt,
 *   - every CFG predecessor of X is already inside the region (this
 *     keeps the region single-entry and forces topological growth),
 *   - X has no edge back to the seed (the only way a cycle can form
 *     under the previous rule),
 *   - X is hot enough relative to the seed (cold successors are left
 *     out, which is precisely what creates side exits - the
 *     region-based branches the paper studies),
 *   - the region stays within the size budget.
 *
 * The result records, for each region, its blocks in topological
 * (insertion) order with the seed first.
 */

#ifndef PABP_COMPILER_REGIONS_HH
#define PABP_COMPILER_REGIONS_HH

#include <cstdint>
#include <vector>

#include "compiler/ir.hh"

namespace pabp {

/** Region-formation heuristics. */
struct HyperblockHeuristics
{
    /** Maximum number of blocks per region. */
    unsigned maxBlocks = 8;
    /** Maximum total body instructions per region. */
    unsigned maxBodyInsts = 96;
    /** A candidate must have execCount >= ratio * seed execCount. */
    double minWeightRatio = 0.10;
    /** Seeds colder than this are not considered. */
    std::uint64_t minSeedExec = 8;
    /**
     * Selective if-conversion: only seed on branches whose profiled
     * mispredict ratio (profMispredicts / execCount under the
     * profiler's reference predictor) is at least this. 0 disables
     * the filter and predicates everything hot (the default).
     */
    double minSeedMispredictRatio = 0.0;
};

/** One selected region: blocks in topological order, seed first. */
struct Region
{
    std::vector<BlockId> blocks;

    BlockId seed() const { return blocks.front(); }
    bool contains(BlockId b) const;
};

/** The full region assignment for a function. */
struct RegionAssignment
{
    std::vector<Region> regions;
    /** Per block: region index, or -1 when unassigned. */
    std::vector<std::int32_t> blockRegion;

    bool inRegion(BlockId b) const { return blockRegion.at(b) >= 0; }
};

/**
 * Select regions over a profiled function. Blocks with zero profile
 * data are treated as cold. Seeds are considered in block order; a
 * region is kept only if it if-converts at least one branch (the seed
 * plus at least one of its successors is inside).
 */
RegionAssignment selectRegions(const IrFunction &fn,
                               const HyperblockHeuristics &heuristics);

} // namespace pabp

#endif // PABP_COMPILER_REGIONS_HH
