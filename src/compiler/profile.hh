/**
 * @file
 * Edge profiler. Lowers the function without if-conversion, executes
 * it on the golden emulator with the workload's memory image, and
 * writes block execution / branch taken counts back into the IR for
 * the region-formation heuristics.
 */

#ifndef PABP_COMPILER_PROFILE_HH
#define PABP_COMPILER_PROFILE_HH

#include <cstdint>
#include <functional>

#include "compiler/ir.hh"
#include "sim/arch_state.hh"

namespace pabp {

/** Prepares architectural state (memory image, registers) for a run. */
using StateInit = std::function<void(ArchState &)>;

/**
 * Profile @p fn by direct execution, updating execCount/takenCount on
 * its blocks. Returns the number of instructions executed.
 *
 * @param fn Function to profile (counts are reset first).
 * @param init Memory/register initialiser, or nullptr.
 * @param max_steps Execution budget (fuse against runaway loops).
 */
std::uint64_t profileFunction(IrFunction &fn, const StateInit &init,
                              std::uint64_t max_steps);

} // namespace pabp

#endif // PABP_COMPILER_PROFILE_HH
