#include "compiler/profile.hh"

#include "bpred/gshare.hh"
#include "compiler/lower.hh"
#include "sim/emulator.hh"

namespace pabp {

std::uint64_t
profileFunction(IrFunction &fn, const StateInit &init,
                std::uint64_t max_steps)
{
    for (BasicBlock &bb : fn.blocks) {
        bb.execCount = 0;
        bb.takenCount = 0;
        bb.profMispredicts = 0;
    }

    CompiledProgram compiled = lowerNormal(fn);

    // Map block start PCs to blocks. Every block emits at least one
    // instruction under normal lowering, so start PCs are unique.
    std::vector<std::int32_t> start_block(compiled.prog.size(), -1);
    for (BlockId b = 0; b < fn.blocks.size(); ++b)
        start_block.at(compiled.info.blockStartPc[b]) =
            static_cast<std::int32_t>(b);

    Emulator emu(compiled.prog);
    if (init)
        init(emu.state());

    // Reference predictor for per-branch predictability estimates
    // (selective if-conversion wants to know which branches hurt).
    GSharePredictor reference(12);

    DynInst dyn;
    std::uint64_t steps = 0;
    while (steps < max_steps && emu.step(dyn)) {
        ++steps;
        std::int32_t b = start_block[dyn.pc];
        if (b >= 0)
            ++fn.blocks[b].execCount;
        auto it = compiled.info.branchPcToBlock.find(dyn.pc);
        if (it != compiled.info.branchPcToBlock.end()) {
            if (dyn.taken)
                ++fn.blocks[it->second].takenCount;
            bool predicted = reference.predict(dyn.pc);
            reference.update(dyn.pc, dyn.taken);
            if (predicted != dyn.taken)
                ++fn.blocks[it->second].profMispredicts;
        }
    }
    return steps;
}

} // namespace pabp
