#include "compiler/compile.hh"

namespace pabp {

CompiledProgram
compileFunction(IrFunction &fn, const StateInit &init,
                const CompileOptions &options)
{
    if (options.simplifyCfg)
        simplifyFunction(fn);

    if (!options.ifConvert)
        return lowerNormal(fn);

    profileFunction(fn, init, options.profileSteps);
    RegionAssignment regions = selectRegions(fn, options.heuristics);
    return lowerIfConverted(fn, regions, options.lowering);
}

} // namespace pabp
