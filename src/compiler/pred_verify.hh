/**
 * @file
 * Static verifier for if-converted code. Hyperblocks are straight
 * line, so the codegen contract can be checked exactly, per region:
 *
 *  - region instructions are contiguous in the program;
 *  - every predicate is *safely defined* before it is read as a guard
 *    or updated: an unguarded pset or an unconditional compare defines
 *    its targets; or-/and-type compares and guarded psets are updates
 *    and require a prior definition (catching the classic missing-init
 *    bug for or-accumulated merge predicates);
 *  - marked region-based branches are guarded; the region's final
 *    instruction is the unconditional final exit.
 *
 * The lowerer runs this after emission (cheap, O(n)); the test suite
 * also runs it across the workload suite and random programs.
 */

#ifndef PABP_COMPILER_PRED_VERIFY_HH
#define PABP_COMPILER_PRED_VERIFY_HH

#include <string>

#include "isa/program.hh"

namespace pabp {

/** Check the if-conversion codegen contract; "" when satisfied,
 *  else a description of the first violation. */
std::string verifyPredicatedProgram(const Program &prog);

} // namespace pabp

#endif // PABP_COMPILER_PRED_VERIFY_HH
