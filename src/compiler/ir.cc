#include "compiler/ir.hh"

#include <sstream>

#include "util/logging.hh"

namespace pabp {

std::vector<BlockId>
IrFunction::successors(BlockId id) const
{
    const Terminator &term = blocks.at(id).term;
    switch (term.kind) {
      case Terminator::Kind::Jump:
        return {term.takenTarget};
      case Terminator::Kind::CondBranch:
        return {term.takenTarget, term.fallTarget};
      case Terminator::Kind::Halt:
        return {};
    }
    pabp_panic("bad terminator kind");
}

std::vector<std::vector<BlockId>>
IrFunction::predecessorLists() const
{
    std::vector<std::vector<BlockId>> preds(blocks.size());
    for (BlockId b = 0; b < blocks.size(); ++b)
        for (BlockId s : successors(b))
            preds.at(s).push_back(b);
    return preds;
}

std::string
IrFunction::dump() const
{
    std::ostringstream os;
    os << "function " << name << "\n";
    for (BlockId b = 0; b < blocks.size(); ++b) {
        const BasicBlock &bb = blocks[b];
        os << "bb" << b << ":  ; exec=" << bb.execCount
           << " taken=" << bb.takenCount << "\n";
        for (const Inst &inst : bb.body)
            os << "    " << disassemble(inst) << "\n";
        const Terminator &t = bb.term;
        switch (t.kind) {
          case Terminator::Kind::Jump:
            os << "    jump bb" << t.takenTarget << "\n";
            break;
          case Terminator::Kind::CondBranch:
            os << "    if r" << unsigned(t.src1) << " " << cmpRelName(t.rel)
               << " "
               << (t.hasImm ? std::to_string(t.imm)
                            : "r" + std::to_string(t.src2))
               << " goto bb" << t.takenTarget << " else bb" << t.fallTarget
               << "\n";
            break;
          case Terminator::Kind::Halt:
            os << "    halt\n";
            break;
        }
    }
    return os.str();
}

std::string
verifyFunction(const IrFunction &fn)
{
    if (fn.blocks.empty())
        return "function has no blocks";

    for (BlockId b = 0; b < fn.blocks.size(); ++b) {
        const BasicBlock &bb = fn.blocks[b];
        std::string where = "bb" + std::to_string(b) + ": ";
        for (const Inst &inst : bb.body) {
            if (inst.isControl() || inst.op == Opcode::Halt)
                return where + "control instruction in block body";
            if (inst.qp != 0)
                return where + "guarded instruction in source IR";
            if (inst.op == Opcode::PSet || inst.op == Opcode::Cmp)
                return where + "predicate write in source IR";
        }
        const Terminator &t = bb.term;
        switch (t.kind) {
          case Terminator::Kind::Jump:
            if (t.takenTarget >= fn.blocks.size())
                return where + "jump target out of range";
            break;
          case Terminator::Kind::CondBranch:
            if (t.takenTarget >= fn.blocks.size() ||
                t.fallTarget >= fn.blocks.size()) {
                return where + "branch target out of range";
            }
            if (t.takenTarget == t.fallTarget)
                return where + "degenerate conditional branch";
            if (t.src1 >= numGprs || (!t.hasImm && t.src2 >= numGprs))
                return where + "branch operand out of range";
            break;
          case Terminator::Kind::Halt:
            break;
        }
    }
    return "";
}

BlockId
IrBuilder::newBlock()
{
    func.blocks.emplace_back();
    return static_cast<BlockId>(func.blocks.size() - 1);
}

void
IrBuilder::setBlock(BlockId id)
{
    pabp_assert(id < func.blocks.size());
    current = id;
}

void
IrBuilder::append(const Inst &inst)
{
    pabp_assert(current != invalidBlock);
    func.block(current).body.push_back(inst);
}

void
IrBuilder::jump(BlockId target)
{
    pabp_assert(current != invalidBlock);
    Terminator t;
    t.kind = Terminator::Kind::Jump;
    t.takenTarget = target;
    func.block(current).term = t;
}

void
IrBuilder::condBr(CmpRel rel, unsigned src1, unsigned src2, BlockId taken,
                  BlockId fall)
{
    pabp_assert(current != invalidBlock);
    Terminator t;
    t.kind = Terminator::Kind::CondBranch;
    t.rel = rel;
    t.src1 = static_cast<std::uint8_t>(src1);
    t.src2 = static_cast<std::uint8_t>(src2);
    t.takenTarget = taken;
    t.fallTarget = fall;
    func.block(current).term = t;
}

void
IrBuilder::condBrImm(CmpRel rel, unsigned src1, std::int64_t imm,
                     BlockId taken, BlockId fall)
{
    pabp_assert(current != invalidBlock);
    Terminator t;
    t.kind = Terminator::Kind::CondBranch;
    t.rel = rel;
    t.src1 = static_cast<std::uint8_t>(src1);
    t.hasImm = true;
    t.imm = imm;
    t.takenTarget = taken;
    t.fallTarget = fall;
    func.block(current).term = t;
}

void
IrBuilder::halt()
{
    pabp_assert(current != invalidBlock);
    Terminator t;
    t.kind = Terminator::Kind::Halt;
    func.block(current).term = t;
}

} // namespace pabp
