/**
 * @file
 * Control-flow-graph IR that workloads are written in and that the
 * if-converter consumes.
 *
 * A function is a vector of basic blocks; block 0 is the entry. Block
 * bodies are straight-line, unguarded, non-control ISA instructions;
 * control lives exclusively in the block terminator. Conditional
 * branches carry their comparison inline (relation + operands), which
 * is what lets the lowerer choose between a compare+branch pair
 * (normal code) and a predicate define (if-converted code).
 */

#ifndef PABP_COMPILER_IR_HH
#define PABP_COMPILER_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace pabp {

using BlockId = std::uint32_t;

/** Sentinel for "no block". */
constexpr BlockId invalidBlock = 0xffffffffu;

/** Block terminator. */
struct Terminator
{
    enum class Kind : std::uint8_t
    {
        Jump,       ///< unconditional transfer to takenTarget
        CondBranch, ///< rel(src1, src2/imm) ? takenTarget : fallTarget
        Halt,       ///< end of program
    };

    Kind kind = Kind::Halt;

    CmpRel rel = CmpRel::Eq;
    std::uint8_t src1 = 0;
    std::uint8_t src2 = 0;
    bool hasImm = false;
    std::int64_t imm = 0;

    BlockId takenTarget = invalidBlock;
    BlockId fallTarget = invalidBlock;
};

/** A basic block: straight-line body plus terminator plus profile. */
struct BasicBlock
{
    std::vector<Inst> body;
    Terminator term;

    /** @name Edge profile, filled by the profiler.
     *  @{ */
    std::uint64_t execCount = 0;
    std::uint64_t takenCount = 0;
    /** Mispredicts of this block's CondBranch under the profiler's
     *  reference predictor (for selective if-conversion). */
    std::uint64_t profMispredicts = 0;
    /** @} */
};

/** A single-function program in CFG form. */
struct IrFunction
{
    std::string name;
    std::vector<BasicBlock> blocks;

    BasicBlock &block(BlockId id) { return blocks.at(id); }
    const BasicBlock &block(BlockId id) const { return blocks.at(id); }

    /** Successor block ids of a block (0, 1 or 2 entries). */
    std::vector<BlockId> successors(BlockId id) const;

    /** Predecessor ids of every block, indexed by block id. */
    std::vector<std::vector<BlockId>> predecessorLists() const;

    /** Human-readable dump of the CFG. */
    std::string dump() const;
};

/**
 * Verify IR well-formedness: entry exists, targets valid, bodies are
 * non-control and unguarded, CondBranch has two distinct roles filled.
 * Returns "" when valid, else the first problem found.
 */
std::string verifyFunction(const IrFunction &fn);

/**
 * Convenience builder used by workloads, tests and examples.
 * Typical use:
 * @code
 *   IrFunction fn; IrBuilder b(fn);
 *   BlockId head = b.newBlock(), thenB = b.newBlock(), ...
 *   b.setBlock(head);
 *   b.append(makeMovImm(1, 42));
 *   b.condBrImm(CmpRel::Lt, 1, 10, thenB, elseB);
 * @endcode
 */
class IrBuilder
{
  public:
    explicit IrBuilder(IrFunction &fn) : func(fn) {}

    /** Create a new empty block and return its id. */
    BlockId newBlock();

    /** Select the block subsequent appends modify. */
    void setBlock(BlockId id);

    /** Append a body instruction to the current block. */
    void append(const Inst &inst);

    /** Terminate the current block with an unconditional jump. */
    void jump(BlockId target);

    /** Terminate with a register-register conditional branch. */
    void condBr(CmpRel rel, unsigned src1, unsigned src2, BlockId taken,
                BlockId fall);

    /** Terminate with a register-immediate conditional branch. */
    void condBrImm(CmpRel rel, unsigned src1, std::int64_t imm,
                   BlockId taken, BlockId fall);

    /** Terminate with halt. */
    void halt();

    BlockId currentBlock() const { return current; }

  private:
    IrFunction &func;
    BlockId current = invalidBlock;
};

} // namespace pabp

#endif // PABP_COMPILER_IR_HH
