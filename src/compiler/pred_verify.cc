#include "compiler/pred_verify.hh"

#include <set>
#include <vector>

namespace pabp {

namespace {

std::string
violation(std::size_t pc, const Inst &inst, const std::string &what)
{
    return "pc " + std::to_string(pc) + " (" + disassemble(inst) +
        "): " + what;
}

/** Verify one contiguous region range [begin, end). */
std::string
verifyRegion(const Program &prog, std::size_t begin, std::size_t end)
{
    // p0 is always defined.
    std::vector<bool> defined(numPredRegs, false);
    defined[0] = true;

    for (std::size_t pc = begin; pc < end; ++pc) {
        const Inst &inst = prog.insts[pc];

        // Guard reads require definition.
        if (inst.isGuarded() && inst.qp != 0 && !defined[inst.qp])
            return violation(pc, inst, "guard read before definition");

        switch (inst.op) {
          case Opcode::PSet:
            if (inst.qp == 0) {
                defined[inst.pdst1] = true; // initialisation
            } else if (!defined[inst.pdst1]) {
                return violation(pc, inst,
                                 "guarded pset updates undefined "
                                 "predicate (missing init)");
            }
            break;
          case Opcode::Cmp:
            switch (inst.ctype) {
              case CmpType::Unc:
                // Writes both targets regardless of the guard.
                defined[inst.pdst1] = true;
                defined[inst.pdst2] = true;
                break;
              case CmpType::Normal:
                // Writes only when guarded: definition is guard-
                // dependent, which region code must not rely on.
                if (inst.qp != 0) {
                    return violation(
                        pc, inst,
                        "guard-dependent normal compare in region");
                }
                defined[inst.pdst1] = true;
                defined[inst.pdst2] = true;
                break;
              case CmpType::And:
              case CmpType::Or:
              case CmpType::OrAndcm:
              case CmpType::AndOrcm:
                // Conditional updates: targets must exist already
                // (p0 sinks excepted).
                if (inst.pdst1 != 0 && !defined[inst.pdst1]) {
                    return violation(pc, inst,
                                     "or/and-type update of undefined "
                                     "predicate (missing init)");
                }
                if (inst.pdst2 != 0 && !defined[inst.pdst2]) {
                    return violation(pc, inst,
                                     "or/and-type update of undefined "
                                     "predicate (missing init)");
                }
                break;
            }
            break;
          case Opcode::Br:
            if (inst.regionBranch && inst.qp == 0) {
                return violation(pc, inst,
                                 "region-based branch without guard");
            }
            break;
          default:
            break;
        }
    }

    // The final instruction must be the unconditional final exit.
    const Inst &last = prog.insts[end - 1];
    if (!(last.op == Opcode::Br && last.qp == 0)) {
        return violation(end - 1, last,
                         "region does not end in unconditional exit");
    }
    return "";
}

} // anonymous namespace

std::string
verifyPredicatedProgram(const Program &prog)
{
    std::set<std::int32_t> seen;
    std::size_t pc = 0;
    while (pc < prog.size()) {
        std::int32_t rid = prog.insts[pc].regionId;
        if (rid < 0) {
            ++pc;
            continue;
        }
        if (seen.count(rid)) {
            return violation(pc, prog.insts[pc],
                             "region " + std::to_string(rid) +
                                 " is not contiguous");
        }
        seen.insert(rid);
        std::size_t begin = pc;
        while (pc < prog.size() && prog.insts[pc].regionId == rid)
            ++pc;
        std::string problem = verifyRegion(prog, begin, pc);
        if (!problem.empty())
            return problem;
    }
    return "";
}

} // namespace pabp
