/**
 * @file
 * CFG simplification: jump threading (empty forwarding blocks),
 * single-predecessor block merging, and unreachable-block removal.
 * Run before profiling/region formation to clean up builder- or
 * frontend-generated shapes; semantics-preserving (property-tested).
 */

#ifndef PABP_COMPILER_SIMPLIFY_HH
#define PABP_COMPILER_SIMPLIFY_HH

#include <cstdint>

#include "compiler/ir.hh"

namespace pabp {

/** What a simplification run did. */
struct SimplifyStats
{
    std::uint64_t threadedJumps = 0;  ///< edges redirected past
                                      ///< empty forwarding blocks
    std::uint64_t mergedBlocks = 0;   ///< single-pred merges
    std::uint64_t removedBlocks = 0;  ///< unreachable blocks deleted

    bool
    changedAnything() const
    {
        return threadedJumps || mergedBlocks || removedBlocks;
    }
};

/**
 * Simplify @p fn in place to a fix point. Profile counts on surviving
 * blocks are preserved; merged blocks keep the *predecessor's* counts
 * (re-profile afterwards if exact counts matter). The entry block is
 * never removed or merged away.
 */
SimplifyStats simplifyFunction(IrFunction &fn);

} // namespace pabp

#endif // PABP_COMPILER_SIMPLIFY_HH
