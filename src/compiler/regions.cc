#include "compiler/regions.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pabp {

bool
Region::contains(BlockId b) const
{
    return std::find(blocks.begin(), blocks.end(), b) != blocks.end();
}

namespace {

/** Can @p cand join the region being grown from @p seed? */
bool
candidateAdmissible(const IrFunction &fn,
                    const std::vector<std::vector<BlockId>> &preds,
                    const std::vector<std::int32_t> &block_region,
                    const std::vector<bool> &in_region, BlockId seed,
                    BlockId cand, const HyperblockHeuristics &h,
                    std::uint64_t seed_count, unsigned body_insts,
                    unsigned num_blocks)
{
    if (cand == 0 || in_region[cand] || block_region[cand] >= 0)
        return false;
    const BasicBlock &bb = fn.block(cand);
    if (bb.term.kind == Terminator::Kind::Halt)
        return false;
    // Single entry: all CFG predecessors already inside.
    for (BlockId p : preds[cand])
        if (!in_region[p])
            return false;
    // Acyclicity: the only possible cycle closes through the seed.
    for (BlockId s : fn.successors(cand))
        if (s == seed)
            return false;
    // Hotness: cold successors stay outside and become side exits.
    double weight = static_cast<double>(bb.execCount);
    if (weight < h.minWeightRatio * static_cast<double>(seed_count))
        return false;
    // Size budget.
    if (num_blocks + 1 > h.maxBlocks)
        return false;
    if (body_insts + bb.body.size() > h.maxBodyInsts)
        return false;
    return true;
}

} // anonymous namespace

RegionAssignment
selectRegions(const IrFunction &fn, const HyperblockHeuristics &heuristics)
{
    RegionAssignment out;
    out.blockRegion.assign(fn.blocks.size(), -1);
    auto preds = fn.predecessorLists();

    for (BlockId seed = 0; seed < fn.blocks.size(); ++seed) {
        if (out.blockRegion[seed] >= 0)
            continue;
        const BasicBlock &seed_bb = fn.block(seed);
        if (seed_bb.term.kind != Terminator::Kind::CondBranch)
            continue;
        if (seed_bb.execCount < heuristics.minSeedExec)
            continue;
        if (heuristics.minSeedMispredictRatio > 0.0 &&
            static_cast<double>(seed_bb.profMispredicts) <
                heuristics.minSeedMispredictRatio *
                    static_cast<double>(seed_bb.execCount)) {
            continue;
        }

        Region region;
        region.blocks.push_back(seed);
        std::vector<bool> in_region(fn.blocks.size(), false);
        in_region[seed] = true;
        unsigned body_insts = static_cast<unsigned>(seed_bb.body.size());

        bool changed = true;
        while (changed && region.blocks.size() < heuristics.maxBlocks) {
            changed = false;
            // Scan a snapshot: additions re-trigger the outer loop.
            std::vector<BlockId> snapshot = region.blocks;
            for (BlockId b : snapshot) {
                for (BlockId s : fn.successors(b)) {
                    if (!candidateAdmissible(
                            fn, preds, out.blockRegion, in_region, seed, s,
                            heuristics, seed_bb.execCount, body_insts,
                            static_cast<unsigned>(region.blocks.size()))) {
                        continue;
                    }
                    region.blocks.push_back(s);
                    in_region[s] = true;
                    body_insts += static_cast<unsigned>(
                        fn.block(s).body.size());
                    changed = true;
                    if (region.blocks.size() >= heuristics.maxBlocks)
                        break;
                }
                if (region.blocks.size() >= heuristics.maxBlocks)
                    break;
            }
        }

        // Keep only if at least one seed successor was if-converted.
        bool converts_branch = false;
        for (BlockId s : fn.successors(seed))
            if (in_region[s])
                converts_branch = true;
        if (region.blocks.size() < 2 || !converts_branch)
            continue;

        auto region_idx = static_cast<std::int32_t>(out.regions.size());
        for (BlockId b : region.blocks)
            out.blockRegion[b] = region_idx;
        out.regions.push_back(std::move(region));
    }
    return out;
}

} // namespace pabp
