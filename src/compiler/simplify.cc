#include "compiler/simplify.hh"

#include <vector>

#include "util/logging.hh"

namespace pabp {

namespace {

/** Follow chains of empty Jump blocks from @p target; returns the
 *  first block that is not an empty forwarder (cycle-safe). */
BlockId
threadTarget(const IrFunction &fn, BlockId target)
{
    std::vector<bool> visited(fn.blocks.size(), false);
    BlockId current = target;
    while (!visited[current]) {
        visited[current] = true;
        const BasicBlock &bb = fn.block(current);
        if (!bb.body.empty() ||
            bb.term.kind != Terminator::Kind::Jump) {
            break;
        }
        current = bb.term.takenTarget;
    }
    return current;
}

/** Redirect every edge through empty forwarding blocks. */
std::uint64_t
threadJumps(IrFunction &fn)
{
    std::uint64_t threaded = 0;
    for (BasicBlock &bb : fn.blocks) {
        Terminator &t = bb.term;
        if (t.kind == Terminator::Kind::Halt)
            continue;
        BlockId new_taken = threadTarget(fn, t.takenTarget);
        if (new_taken != t.takenTarget) {
            t.takenTarget = new_taken;
            ++threaded;
        }
        if (t.kind == Terminator::Kind::CondBranch) {
            BlockId new_fall = threadTarget(fn, t.fallTarget);
            if (new_fall != t.fallTarget) {
                t.fallTarget = new_fall;
                ++threaded;
            }
            // Threading may collapse a conditional to a degenerate
            // branch; turn it into a jump (the compare was pure).
            if (t.takenTarget == t.fallTarget) {
                Terminator jump;
                jump.kind = Terminator::Kind::Jump;
                jump.takenTarget = t.takenTarget;
                t = jump;
            }
        }
    }
    return threaded;
}

/** Merge single-predecessor jump successors into their predecessor. */
std::uint64_t
mergeBlocks(IrFunction &fn)
{
    std::uint64_t merged = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        auto preds = fn.predecessorLists();
        for (BlockId b = 0; b < fn.blocks.size(); ++b) {
            BasicBlock &bb = fn.block(b);
            if (bb.term.kind != Terminator::Kind::Jump)
                continue;
            BlockId succ = bb.term.takenTarget;
            if (succ == b || succ == 0)
                continue;
            if (preds[succ].size() != 1)
                continue;
            BasicBlock &sb = fn.block(succ);
            bb.body.insert(bb.body.end(), sb.body.begin(),
                           sb.body.end());
            bb.term = sb.term;
            // Leave succ as an unreachable husk; removal pass
            // collects it.
            sb.body.clear();
            sb.term = Terminator{}; // halt
            ++merged;
            changed = true;
            break; // predecessor lists are stale; recompute
        }
    }
    return merged;
}

/** Drop blocks unreachable from the entry, remapping targets. */
std::uint64_t
removeUnreachable(IrFunction &fn)
{
    std::vector<bool> reachable(fn.blocks.size(), false);
    std::vector<BlockId> worklist{0};
    reachable[0] = true;
    while (!worklist.empty()) {
        BlockId b = worklist.back();
        worklist.pop_back();
        for (BlockId s : fn.successors(b)) {
            if (!reachable[s]) {
                reachable[s] = true;
                worklist.push_back(s);
            }
        }
    }

    std::vector<BlockId> remap(fn.blocks.size(), invalidBlock);
    std::vector<BasicBlock> kept;
    for (BlockId b = 0; b < fn.blocks.size(); ++b) {
        if (reachable[b]) {
            remap[b] = static_cast<BlockId>(kept.size());
            kept.push_back(std::move(fn.blocks[b]));
        }
    }
    std::uint64_t removed = fn.blocks.size() - kept.size();
    fn.blocks = std::move(kept);
    for (BasicBlock &bb : fn.blocks) {
        Terminator &t = bb.term;
        if (t.kind == Terminator::Kind::Halt)
            continue;
        t.takenTarget = remap[t.takenTarget];
        pabp_assert(t.takenTarget != invalidBlock);
        if (t.kind == Terminator::Kind::CondBranch) {
            t.fallTarget = remap[t.fallTarget];
            pabp_assert(t.fallTarget != invalidBlock);
        }
    }
    return removed;
}

} // anonymous namespace

SimplifyStats
simplifyFunction(IrFunction &fn)
{
    pabp_assert(!fn.blocks.empty());
    SimplifyStats stats;
    bool changed = true;
    while (changed) {
        std::uint64_t threaded = threadJumps(fn);
        std::uint64_t merged = mergeBlocks(fn);
        std::uint64_t removed = removeUnreachable(fn);
        stats.threadedJumps += threaded;
        stats.mergedBlocks += merged;
        stats.removedBlocks += removed;
        changed = threaded || merged || removed;
    }
    return stats;
}

} // namespace pabp
