/**
 * @file
 * Top-level compile pipeline: profile -> select regions -> lower.
 */

#ifndef PABP_COMPILER_COMPILE_HH
#define PABP_COMPILER_COMPILE_HH

#include "compiler/lower.hh"
#include "compiler/profile.hh"
#include "compiler/regions.hh"
#include "compiler/simplify.hh"

namespace pabp {

/** Pipeline configuration. */
struct CompileOptions
{
    /** Form hyperblocks; false compiles branchy baseline code. */
    bool ifConvert = true;
    /** Run CFG simplification (jump threading, merging, dead-block
     *  removal) before profiling/region formation. Off by default so
     *  workload shapes stay exactly as authored. */
    bool simplifyCfg = false;
    HyperblockHeuristics heuristics;
    LoweringOptions lowering;
    /** Profiling execution budget. */
    std::uint64_t profileSteps = 200000;
};

/**
 * Compile a function. When if-converting, the function is first
 * profiled by direct execution with @p init (the training input -
 * same-input training is the common methodology and is fine here
 * because region formation only consumes coarse block weights).
 */
CompiledProgram compileFunction(IrFunction &fn, const StateInit &init,
                                const CompileOptions &options);

} // namespace pabp

#endif // PABP_COMPILER_COMPILE_HH
