/**
 * @file
 * Code generation from CFG IR to the predicated ISA, in two modes:
 *
 * Normal lowering: each conditional branch becomes an unconditional
 * compare writing a predicate pair followed by a guarded branch -
 * IA-64 style "(pT) br target". The compare sits right next to its
 * branch, so the guard is essentially never resolved by fetch time.
 *
 * If-converted lowering: selected regions (see regions.hh) are
 * flattened into hyperblocks. Block predicates are materialised with
 * unconditional compares (single in-edge) or or-type compare
 * accumulation over pset-initialised predicates (merge points).
 * Edges leaving a region remain as guarded branches - these are the
 * paper's region-based branches - except the final exit, which is
 * emitted unconditionally (its edge predicate is true whenever
 * control reaches it, because region exit-edge predicates partition).
 */

#ifndef PABP_COMPILER_LOWER_HH
#define PABP_COMPILER_LOWER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "compiler/ir.hh"
#include "compiler/regions.hh"
#include "isa/program.hh"

namespace pabp {

/** Byproducts of lowering used by the profiler and the harnesses. */
struct LoweredInfo
{
    /** Start PC of each IR block. Non-seed region members map to
     *  their region's start (nothing ever targets them directly). */
    std::vector<std::uint32_t> blockStartPc;

    /** For normal lowering: PC of the guarded branch that implements
     *  each CondBranch terminator, keyed by source block. */
    std::unordered_map<std::uint32_t, BlockId> branchPcToBlock;

    std::size_t numRegions = 0;
    std::size_t numRegionBranches = 0; ///< static side-exit branches
    std::size_t numIfConvertedBranches = 0;
};

/** A lowered program plus its metadata. */
struct CompiledProgram
{
    Program prog;
    LoweredInfo info;
};

/** Codegen knobs for if-converted lowering. */
struct LoweringOptions
{
    /**
     * Sink region exit branches to the hyperblock bottom (the
     * default, and what real hyperblock schedulers approximate by
     * hoisting compares). Disabling leaves each exit adjacent to its
     * edge compare - an ablation that starves the squash filter of
     * define-to-branch distance (bench E13).
     */
    bool sinkExits = true;
};

/** Lower without if-conversion. */
CompiledProgram lowerNormal(const IrFunction &fn);

/**
 * Lower with if-conversion over the given region assignment (obtain
 * one from selectRegions() after profiling).
 */
CompiledProgram lowerIfConverted(const IrFunction &fn,
                                 const RegionAssignment &regions,
                                 const LoweringOptions &lopts =
                                     LoweringOptions{});

} // namespace pabp

#endif // PABP_COMPILER_LOWER_HH
