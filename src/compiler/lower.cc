#include "compiler/lower.hh"

#include <algorithm>

#include "compiler/pred_verify.hh"
#include "util/logging.hh"

namespace pabp {

namespace {

/** First predicate register of the per-region allocation pool. */
constexpr unsigned regionPredBase = 1;
/** Predicates regionPredBase..regionPredLimit-1 belong to regions.
 *  Worst case is (maxBlocks - 1) block predicates plus two exit-edge
 *  predicates per block: 47 for the 16-block ceiling. */
constexpr unsigned regionPredLimit = 48;
/** Normal compare/branch pairs rotate through p48..p61. */
constexpr unsigned scratchPredBase = 48;
constexpr unsigned scratchPairCount = 7;

/** Exit-edge identity used to find the final (unconditional) exit. */
struct ExitEdge
{
    BlockId from;
    enum class Kind : std::uint8_t { Jump, CondTaken, CondFall } kind;
    BlockId target;

    bool operator==(const ExitEdge &) const = default;
};

class Lowerer
{
  public:
    Lowerer(const IrFunction &function,
            const RegionAssignment *assignment,
            LoweringOptions lowering_options = LoweringOptions{})
        : fn(function), regions(assignment), lopts(lowering_options)
    {}

    CompiledProgram run();

  private:
    const IrFunction &fn;
    const RegionAssignment *regions;
    LoweringOptions lopts;
    Program prog;
    LoweredInfo info;
    std::vector<std::pair<std::size_t, BlockId>> fixups;
    unsigned scratchPair = 0;

    bool emitsCode(BlockId b) const;
    BlockId nextEmittedAfter(BlockId b) const;

    void emit(Inst inst, std::int32_t region_id = -1);
    void emitBranchTo(Inst inst, BlockId target, std::int32_t region_id,
                      bool region_branch);

    std::pair<unsigned, unsigned> allocScratchPair();

    void lowerNormalBlock(BlockId b);
    void lowerRegion(const Region &region, std::int32_t region_id);
};

bool
Lowerer::emitsCode(BlockId b) const
{
    if (!regions || !regions->inRegion(b))
        return true;
    const Region &r = regions->regions[regions->blockRegion[b]];
    return r.seed() == b;
}

BlockId
Lowerer::nextEmittedAfter(BlockId b) const
{
    for (BlockId n = b + 1; n < fn.blocks.size(); ++n)
        if (emitsCode(n))
            return n;
    return invalidBlock;
}

void
Lowerer::emit(Inst inst, std::int32_t region_id)
{
    inst.regionId = region_id;
    prog.insts.push_back(inst);
}

void
Lowerer::emitBranchTo(Inst inst, BlockId target, std::int32_t region_id,
                      bool region_branch)
{
    inst.regionId = region_id;
    inst.regionBranch = region_branch;
    if (region_branch)
        ++info.numRegionBranches;
    fixups.emplace_back(prog.insts.size(), target);
    prog.insts.push_back(inst);
}

std::pair<unsigned, unsigned>
Lowerer::allocScratchPair()
{
    unsigned base = scratchPredBase + 2 * scratchPair;
    scratchPair = (scratchPair + 1) % scratchPairCount;
    return {base, base + 1};
}

void
Lowerer::lowerNormalBlock(BlockId b)
{
    const BasicBlock &bb = fn.block(b);
    for (const Inst &op : bb.body)
        emit(op);

    const Terminator &t = bb.term;
    switch (t.kind) {
      case Terminator::Kind::Halt:
        emit(makeHalt());
        break;
      case Terminator::Kind::Jump:
        emitBranchTo(makeBr(0), t.takenTarget, -1, false);
        break;
      case Terminator::Kind::CondBranch: {
        auto [p_taken, p_fall] = allocScratchPair();
        Inst cmp = t.hasImm
            ? makeCmpImm(t.rel, CmpType::Unc, p_taken, p_fall, t.src1,
                         t.imm)
            : makeCmp(t.rel, CmpType::Unc, p_taken, p_fall, t.src1,
                      t.src2);
        emit(cmp);
        info.branchPcToBlock[static_cast<std::uint32_t>(prog.size())] = b;
        emitBranchTo(makeBr(0, p_taken), t.takenTarget, -1, false);
        if (t.fallTarget != nextEmittedAfter(b))
            emitBranchTo(makeBr(0), t.fallTarget, -1, false);
        break;
      }
    }
}

void
Lowerer::lowerRegion(const Region &region, std::int32_t region_id)
{
    std::vector<bool> in_region(fn.blocks.size(), false);
    for (BlockId b : region.blocks)
        in_region[b] = true;

    // In-region in-edge counts decide unc vs or-accumulated predicates.
    std::vector<unsigned> in_edges(fn.blocks.size(), 0);
    std::vector<ExitEdge> exits;
    for (BlockId b : region.blocks) {
        const Terminator &t = fn.block(b).term;
        if (t.kind == Terminator::Kind::Jump) {
            if (in_region[t.takenTarget])
                ++in_edges[t.takenTarget];
            else
                exits.push_back({b, ExitEdge::Kind::Jump, t.takenTarget});
        } else if (t.kind == Terminator::Kind::CondBranch) {
            if (in_region[t.takenTarget])
                ++in_edges[t.takenTarget];
            else
                exits.push_back(
                    {b, ExitEdge::Kind::CondTaken, t.takenTarget});
            if (in_region[t.fallTarget])
                ++in_edges[t.fallTarget];
            else
                exits.push_back(
                    {b, ExitEdge::Kind::CondFall, t.fallTarget});
        } else {
            pabp_panic("halt block inside region");
        }
    }
    pabp_assert(!exits.empty());
    const ExitEdge final_exit = exits.back();

    unsigned next_pred = regionPredBase;
    auto alloc_pred = [&]() -> unsigned {
        pabp_assert(next_pred < regionPredLimit);
        return next_pred++;
    };

    // Exit branches are sunk to the bottom of the hyperblock. Any
    // instruction between an exit's original position and the region
    // bottom lies on a path excluded by that exit, so its guard is
    // false whenever the exit should fire - executing it is a no-op.
    // Sinking maximises the define-to-branch distance, exactly the
    // property the squash false path filter depends on, and mirrors
    // real hyperblocks where a dynamic execution fetches every side
    // exit of the region.
    struct PendingExit
    {
        unsigned qp;       // 0 for the final, unconditional exit
        BlockId target;
        bool final = false;
    };
    std::vector<PendingExit> pending_exits;

    // In the sink ablation (sinkExits = false) exits are emitted in
    // place, adjacent to their edge compares; the final-exit argument
    // (its predicate is true whenever control reaches it) holds in
    // both layouts because off-path code between exits is inert.
    auto queue_exit = [&](const PendingExit &exit) {
        if (lopts.sinkExits) {
            pending_exits.push_back(exit);
        } else {
            emitBranchTo(makeBr(0, exit.qp), exit.target, region_id,
                         !exit.final);
        }
    };

    std::vector<unsigned> block_pred(fn.blocks.size(), 0);
    for (std::size_t i = 1; i < region.blocks.size(); ++i)
        block_pred[region.blocks[i]] = alloc_pred();

    // Or-accumulated (merge) predicates must start false.
    for (std::size_t i = 1; i < region.blocks.size(); ++i) {
        BlockId m = region.blocks[i];
        if (in_edges[m] > 1)
            emit(makePSet(block_pred[m], false), region_id);
    }

    auto make_cond_cmp = [&](const Terminator &t, CmpRel rel, CmpType type,
                             unsigned p1, unsigned p2, unsigned qp) {
        Inst cmp = t.hasImm
            ? makeCmpImm(rel, type, p1, p2, t.src1, t.imm, qp)
            : makeCmp(rel, type, p1, p2, t.src1, t.src2, qp);
        return cmp;
    };

    for (BlockId b : region.blocks) {
        unsigned qp = block_pred[b];
        const BasicBlock &bb = fn.block(b);
        for (Inst op : bb.body) {
            op.qp = static_cast<std::uint8_t>(qp);
            emit(op, region_id);
        }

        const Terminator &t = bb.term;
        if (t.kind == Terminator::Kind::Jump) {
            BlockId target = t.takenTarget;
            if (in_region[target]) {
                if (in_edges[target] == 1) {
                    // p_target = p_b, computed as (p_b) cmp.eq.unc.
                    emit(makeCmp(CmpRel::Eq, CmpType::Unc,
                                 block_pred[target], 0, 0, 0, qp),
                         region_id);
                } else {
                    emit(makePSet(block_pred[target], true, qp),
                         region_id);
                }
            } else {
                ExitEdge edge{b, ExitEdge::Kind::Jump, target};
                if (edge == final_exit) {
                    queue_exit({0, target, true});
                } else if (target != final_exit.target) {
                    // Exits sharing the final exit's target are
                    // redundant: falling through the (then inert)
                    // region tail reaches the same place.
                    queue_exit({qp, target, false});
                }
            }
            continue;
        }

        pabp_assert(t.kind == Terminator::Kind::CondBranch);
        ++info.numIfConvertedBranches;
        bool in_taken = in_region[t.takenTarget];
        bool in_fall = in_region[t.fallTarget];

        if (in_taken && in_fall && in_edges[t.takenTarget] == 1 &&
            in_edges[t.fallTarget] == 1) {
            emit(make_cond_cmp(t, t.rel, CmpType::Unc,
                               block_pred[t.takenTarget],
                               block_pred[t.fallTarget], qp),
                 region_id);
        } else {
            if (in_taken) {
                CmpType type = in_edges[t.takenTarget] == 1 ? CmpType::Unc
                                                            : CmpType::Or;
                emit(make_cond_cmp(t, t.rel, type,
                                   block_pred[t.takenTarget], 0, qp),
                     region_id);
            }
            if (in_fall) {
                CmpType type = in_edges[t.fallTarget] == 1 ? CmpType::Unc
                                                           : CmpType::Or;
                emit(make_cond_cmp(t, invertRel(t.rel), type,
                                   block_pred[t.fallTarget], 0, qp),
                     region_id);
            }
        }

        if (!in_taken) {
            ExitEdge edge{b, ExitEdge::Kind::CondTaken, t.takenTarget};
            if (edge == final_exit) {
                queue_exit({0, t.takenTarget, true});
            } else if (t.takenTarget == final_exit.target) {
                // redundant: same destination as the final exit
            } else {
                unsigned p_edge = alloc_pred();
                emit(make_cond_cmp(t, t.rel, CmpType::Unc, p_edge, 0, qp),
                     region_id);
                queue_exit({p_edge, t.takenTarget, false});
            }
        }
        if (!in_fall) {
            ExitEdge edge{b, ExitEdge::Kind::CondFall, t.fallTarget};
            if (edge == final_exit) {
                queue_exit({0, t.fallTarget, true});
            } else if (t.fallTarget == final_exit.target) {
                // redundant: same destination as the final exit
            } else {
                unsigned p_edge = alloc_pred();
                emit(make_cond_cmp(t, invertRel(t.rel), CmpType::Unc,
                                   p_edge, 0, qp),
                     region_id);
                queue_exit({p_edge, t.fallTarget, false});
            }
        }
    }

    if (lopts.sinkExits) {
        pabp_assert(!pending_exits.empty());
        pabp_assert(pending_exits.back().final);
        for (const PendingExit &exit : pending_exits) {
            emitBranchTo(makeBr(0, exit.qp), exit.target, region_id,
                         !exit.final);
        }
    }
}

CompiledProgram
Lowerer::run()
{
    pabp_assert(verifyFunction(fn).empty());
    prog.name = fn.name;
    info.blockStartPc.assign(fn.blocks.size(), 0);
    if (regions)
        info.numRegions = regions->regions.size();

    for (BlockId b = 0; b < fn.blocks.size(); ++b) {
        if (!emitsCode(b))
            continue;
        info.blockStartPc[b] = static_cast<std::uint32_t>(prog.size());
        if (regions && regions->inRegion(b)) {
            std::int32_t rid = regions->blockRegion[b];
            lowerRegion(regions->regions[rid], rid);
        } else {
            lowerNormalBlock(b);
        }
    }

    // Non-seed region members resolve to their region's start; nothing
    // targets them, but keep the table total.
    if (regions) {
        for (BlockId b = 0; b < fn.blocks.size(); ++b) {
            if (!emitsCode(b)) {
                const Region &r =
                    regions->regions[regions->blockRegion[b]];
                info.blockStartPc[b] = info.blockStartPc[r.seed()];
            }
        }
    }

    for (auto [idx, target] : fixups)
        prog.insts[idx].target = info.blockStartPc[target];

    std::string problem = validateProgram(prog);
    if (!problem.empty())
        pabp_panic("lowering produced invalid program: " + problem);
    if (regions) {
        problem = verifyPredicatedProgram(prog);
        if (!problem.empty())
            pabp_panic("predication contract violated: " + problem);
    }

    return CompiledProgram{std::move(prog), std::move(info)};
}

} // anonymous namespace

CompiledProgram
lowerNormal(const IrFunction &fn)
{
    Lowerer lowerer(fn, nullptr);
    return lowerer.run();
}

CompiledProgram
lowerIfConverted(const IrFunction &fn, const RegionAssignment &regions,
                 const LoweringOptions &lopts)
{
    Lowerer lowerer(fn, &regions, lopts);
    return lowerer.run();
}

} // namespace pabp
