#include "core/h2p.hh"

#include "util/logging.hh"

namespace pabp {

Expected<H2pClassification>
classifyH2p(const BranchProfile &baseline,
            const std::vector<double> &cutoffs)
{
    for (std::size_t i = 0; i < cutoffs.size(); ++i) {
        if (!(cutoffs[i] > 0.0 && cutoffs[i] < 1.0))
            return Status(StatusCode::InvalidArgument,
                          "H2P cutoff " + std::to_string(cutoffs[i]) +
                              " is outside (0, 1)");
        if (i > 0 && !(cutoffs[i] > cutoffs[i - 1]))
            return Status(StatusCode::InvalidArgument,
                          "H2P cutoffs must be strictly increasing");
    }

    H2pClassification cls;
    cls.cutoffs = cutoffs;
    const unsigned tiers = static_cast<unsigned>(cutoffs.size()) + 1;
    cls.tierBranches.assign(tiers, 0);
    cls.tierMispredicts.assign(tiers, 0);
    cls.tierLookups.assign(tiers, 0);
    cls.evictedMispredicts =
        baseline.evictedRemainder().mispredicts;

    const auto ranked = baseline.topByMispredicts();
    for (const auto &[pc, counters] : ranked)
        cls.trackedMispredicts += counters.mispredicts;

    // Walk the ranked list once; a tier closes when the running sum
    // has reached its cutoff. A PC with zero mispredicts can never
    // advance the sum past a cutoff, so zero-mispredict PCs land in
    // the last tier even when earlier cutoffs were already met.
    std::uint64_t running = 0;
    unsigned tier = 0;
    for (const auto &[pc, counters] : ranked) {
        while (tier < tiers - 1 &&
               (cls.trackedMispredicts == 0 ||
                static_cast<double>(running) >=
                    cutoffs[tier] *
                        static_cast<double>(cls.trackedMispredicts)))
            ++tier;
        if (counters.mispredicts == 0)
            tier = tiers - 1;
        cls.tierOf.emplace(pc, tier);
        cls.tierBranches[tier] += 1;
        cls.tierMispredicts[tier] += counters.mispredicts;
        cls.tierLookups[tier] += counters.lookups;
        running += counters.mispredicts;
    }
    return cls;
}

std::vector<H2pTierCounters>
aggregateByTier(const H2pClassification &cls,
                const BranchProfile &variant)
{
    std::vector<H2pTierCounters> tiers(cls.numTiers());
    const auto &entries = variant.entries();
    for (const auto &[pc, tier] : cls.tierOf) {
        auto it = entries.find(pc);
        if (it == entries.end())
            continue;
        H2pTierCounters &agg = tiers[tier];
        agg.mispredicts += it->second.mispredicts;
        agg.lookups += it->second.lookups;
        agg.sfpfSquashes += it->second.sfpfSquashes;
        agg.pguInfluenced += it->second.pguInfluenced;
        agg.matchedBranches += 1;
    }
    return tiers;
}

void
exportH2pClassification(MetricsExporter &ex,
                        const H2pClassification &cls,
                        const std::string &prefix)
{
    ex.setInt(prefix + ".tiers", cls.numTiers());
    for (std::size_t i = 0; i < cls.cutoffs.size(); ++i)
        ex.setReal(prefix + ".cutoff" + std::to_string(i),
                   cls.cutoffs[i]);
    ex.setInt(prefix + ".baseline.tracked_mispredicts",
              cls.trackedMispredicts);
    ex.setInt(prefix + ".baseline.evicted_mispredicts",
              cls.evictedMispredicts);
    for (unsigned t = 0; t < cls.numTiers(); ++t) {
        const std::string key =
            prefix + ".tier" + std::to_string(t) + ".";
        ex.setInt(key + "static_branches", cls.tierBranches[t]);
        ex.setInt(key + "baseline_mispredicts",
                  cls.tierMispredicts[t]);
        ex.setInt(key + "baseline_lookups", cls.tierLookups[t]);
        ex.setReal(key + "baseline_share",
                   cls.trackedMispredicts
                       ? static_cast<double>(cls.tierMispredicts[t]) /
                           static_cast<double>(cls.trackedMispredicts)
                       : 0.0);
    }
}

void
exportH2pVariant(MetricsExporter &ex, const std::string &label,
                 const H2pClassification &cls,
                 const std::vector<H2pTierCounters> &tiers,
                 const std::string &prefix)
{
    pabp_assert(tiers.size() == cls.numTiers());
    for (unsigned t = 0; t < cls.numTiers(); ++t) {
        const std::string key = prefix + "." + label + ".tier" +
            std::to_string(t) + ".";
        const H2pTierCounters &agg = tiers[t];
        ex.setInt(key + "mispredicts", agg.mispredicts);
        ex.setInt(key + "lookups", agg.lookups);
        ex.setInt(key + "sfpf_squashes", agg.sfpfSquashes);
        ex.setInt(key + "pgu_influenced", agg.pguInfluenced);
        ex.setInt(key + "matched_branches", agg.matchedBranches);
        // Signed delta as a real: setInt is unsigned and the whole
        // point is that improvements are negative.
        ex.setReal(key + "mispredict_delta",
                   static_cast<double>(agg.mispredicts) -
                       static_cast<double>(cls.tierMispredicts[t]));
        ex.setReal(key + "mispredict_rel",
                   cls.tierMispredicts[t]
                       ? static_cast<double>(agg.mispredicts) /
                           static_cast<double>(cls.tierMispredicts[t])
                       : 0.0);
    }
}

} // namespace pabp
