/**
 * @file
 * The predicate-aware prediction engine: a base direction predictor
 * optionally wrapped with the paper's two techniques (squash false
 * path filter, predicate global update), driven by the dynamic
 * instruction stream. This is the component every experiment in
 * bench/ instantiates.
 */

#ifndef PABP_CORE_ENGINE_HH
#define PABP_CORE_ENGINE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "bpred/btb.hh"
#include "bpred/confidence.hh"
#include "bpred/predictor.hh"
#include "core/branch_profile.hh"
#include "core/delayed_pred_file.hh"
#include "core/pgu.hh"
#include "core/pred_value_pred.hh"
#include "core/sfpf.hh"
#include "sim/decoded_trace.hh"
#include "sim/emulator.hh"
#include "sim/trace_io.hh"
#include "util/stats.hh"

namespace pabp {

/** Engine configuration: which techniques are armed. */
struct EngineConfig
{
    bool useSfpf = false;
    bool usePgu = false;
    /** Define-to-fetch visibility delay for the filter, in dynamic
     *  instructions (roughly front-end depth x issue width). */
    unsigned availDelay = 8;
    PguConfig pgu;
    /** Ablation: squashed branches still train the base predictor
     *  (the paper's design skips training to avoid pollution). */
    bool trainOnSquashed = false;
    /** Ablation: a fetched define to a predicate makes it unknown
     *  even when it will not architecturally write (conservative
     *  hardware that cannot pre-evaluate guards at fetch). */
    bool conservativeDefTracking = false;
    /** Extension: when the guard is unresolved at fetch, predict its
     *  value with a confidence-gated counter table and squash
     *  speculatively. Not 100% accurate; see EngineStats. */
    bool useSpeculativeSquash = false;
    unsigned pvpEntriesLog2 = 10;
    /** Confidence gate for speculative squash: the value predictor's
     *  own counter saturation, or a JRS resetting-counter estimator
     *  tracking recent guard-prediction correctness. */
    enum class SpecGate : std::uint8_t { Saturation, Jrs };
    SpecGate specGate = SpecGate::Saturation;
    unsigned jrsEntriesLog2 = 10;
    /** Max static branches attributed individually in the per-PC
     *  profile (core/branch_profile.hh); overflow goes to the
     *  explicit evicted bucket. 0 disables per-PC tracking. Purely
     *  observational: prediction behaviour is identical at any
     *  value. */
    unsigned branchProfileCapacity = 1024;
    /** Model taken-branch targets: the engine owns a BTB and a return
     *  address stack, probes them on every taken control transfer
     *  (see docs on the lookup policy in bpred/btb.hh), counts target
     *  misses, and reports them through ProcessResult so the pipeline
     *  can charge penalties. Off by default: direction-only runs keep
     *  their metric files and checkpoints byte-identical. */
    bool modelTargets = false;
    unsigned btbSetsLog2 = 9;
    unsigned btbWays = 4;
    unsigned rasDepth = 16;
};

/** Per-branch-class counters. */
struct BranchClassStats
{
    std::uint64_t branches = 0;
    std::uint64_t taken = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t squashed = 0;
    std::uint64_t falseGuard = 0; ///< guard false at execute (oracle)

    double
    mispredictRate() const
    {
        return branches
            ? static_cast<double>(mispredicts) /
                static_cast<double>(branches)
            : 0.0;
    }

    bool operator==(const BranchClassStats &) const = default;
};

/** All engine statistics. */
struct EngineStats
{
    std::uint64_t insts = 0;
    std::uint64_t uncondBranches = 0;
    std::uint64_t predicateDefines = 0;

    BranchClassStats all;     ///< every conditional branch
    BranchClassStats region;  ///< region-based branches only
    BranchClassStats normal;  ///< the rest

    /** @name Speculative-squash extension counters
     *  @{ */
    std::uint64_t specSquashed = 0;      ///< guard predicted false
    std::uint64_t specSquashedWrong = 0; ///< ...and the branch was taken
    /** @} */

    /** @name Target-modelling counters (EngineConfig::modelTargets)
     *  @{ */
    /** Taken transfers whose BTB probe had no entry or the wrong
     *  target (wrong target counts: the front end still refetches). */
    std::uint64_t btbTargetMisses = 0;
    std::uint64_t rasHits = 0;   ///< RAS-popped target was right
    std::uint64_t rasMisses = 0; ///< wrong or empty-stack pop
    /** @} */

    double
    mpki() const
    {
        return insts
            ? 1000.0 * static_cast<double>(all.mispredicts) /
                static_cast<double>(insts)
            : 0.0;
    }

    /** Exact equality - the checkpoint/resume equivalence tests
     *  require bit-identical counters, not tolerances. */
    bool operator==(const EngineStats &) const = default;
};

/** What the engine decided for one instruction (pipeline feedback). */
struct ProcessResult
{
    bool condBranch = false;
    bool mispredicted = false;
    /** SFPF squash: the guard was RESOLVED false at fetch, so the
     *  not-taken prediction is certain (never a mispredict). */
    bool squashed = false;
    /** Speculative squash (extension): the guard was only PREDICTED
     *  false - a confidence-gated guess, not a certainty. When the
     *  guess is wrong the branch was taken and `mispredicted` is also
     *  set; consumers that treat `squashed` as "cannot mispredict"
     *  must not lump this flag in with it. */
    bool specSquashed = false;
    /** @name Target modelling (EngineConfig::modelTargets)
     * All false when target modelling is off.
     * @{ */
    /** Taken transfer whose BTB probe returned no/the wrong target. */
    bool targetMiss = false;
    /** The instruction was a taken return, predicted through the
     *  RAS; rasCorrect says whether the popped target matched. */
    bool rasReturn = false;
    bool rasCorrect = false;
    /** @} */
};

/** Drives predictor + SFPF + PGU over a dynamic trace. */
class PredictionEngine
{
  public:
    PredictionEngine(BranchPredictor &base, EngineConfig config);

    /** Feed one executed instruction, in program order. */
    ProcessResult process(const DynInst &dyn);

    /**
     * Fast replay: feed events [@p first, @p first + @p max_insts) of
     * a pre-decoded trace. Bit-identical to calling process() on
     * trace.materialise(i) for each i - the equivalence tests pin
     * stats, profile and exported metrics - but substantially faster:
     * the useSfpf/usePgu/useSpeculativeSquash configuration branches
     * are hoisted out of the loop into template specialisations, the
     * per-step DynInst construction disappears (the loop reads the
     * trace's flat lanes), and the predict+update pair on the hot
     * predictors (gshare, combining, perceptron) devirtualises into
     * one statically-bound predictAndUpdate call. See docs/PERF.md.
     *
     * Returns the index one past the last event processed; @p first
     * at or past the end processes nothing and returns @p first
     * unchanged (same clamped contract as replayTraceFrom).
     */
    std::uint64_t processBatch(const DecodedTrace &trace,
                               std::uint64_t first,
                               std::uint64_t max_insts);

    const EngineStats &stats() const { return engineStats; }
    std::uint64_t pguBitsInserted() const { return pgu.bitsInserted(); }
    const EngineConfig &config() const { return cfg; }

    /** @name Target structures (non-null iff modelTargets)
     *  @{ */
    Btb *btb() { return btbPtr; }
    ReturnAddressStack *ras() { return rasPtr; }
    /** @} */

    /**
     * Share another engine's target structures (multi-context shared
     * mode): this engine's probes and updates land in @p b / @p r
     * instead of its own tables. Pass the OWNING engine's btb()/ras();
     * both engines must have modelTargets armed. Pointers are
     * borrowed - the owner must outlive this engine.
     */
    void
    setTargetStructures(Btb *b, ReturnAddressStack *r)
    {
        btbPtr = b;
        rasPtr = r;
    }

    /**
     * Context-tag table indexing (multi-context replay): mix @p ctx's
     * low @p tag_bits into every predictor and BTB index so contexts
     * sharing one table stop aliasing each other's entries. The tag
     * is spread across the index by a golden-ratio multiply; context
     * 0 (and tag_bits 0) mixes nothing, so a single-context run stays
     * byte-identical to the untagged engine. Attribution state (the
     *  per-PC profile, PVP, JRS) keeps the real pc.
     */
    void
    setContextTag(unsigned ctx, unsigned tag_bits)
    {
        const std::uint32_t mask =
            tag_bits >= 32 ? ~std::uint32_t{0}
                           : ((std::uint32_t{1} << tag_bits) - 1);
        ctxMix = (ctx & mask) * 0x9E3779B9u;
    }

    /** Per-static-branch attribution (lookups, mispredicts, SFPF
     *  squashes, PGU influence, guard occupancy). */
    const BranchProfile &branchProfile() const { return profile; }

    /**
     * A prediction counts as PGU-influenced when a predicate bit was
     * injected into the global history within this many history
     * shifts before it - i.e. the bit is still inside any
     * practically-sized history register.
     */
    static constexpr std::uint64_t pguInfluenceWindow = 64;

    /**
     * Register every engine counter - and those of all owned
     * components plus the base predictor - into @p group under
     * stable dotted names ("engine.all.branches", "sfpf.squashes",
     * "pgu.bits_inserted", ...). Also installs a reset hook so
     * group.reset() and resetStats() stay symmetric. @p group must
     * not outlive this engine.
     */
    void registerStats(StatGroup &group);

    /** Zero the counters of the engine AND every registered
     *  component (SFPF, PGU, value predictor, confidence estimator,
     *  base predictor diagnostics, per-branch profile); predictor
     *  and history state persist. */
    void resetStats();

    /**
     * @name Checkpointing
     * Serialise/restore everything the engine needs to continue a
     * run bit-identically: stats, the delayed predicate file, both
     * queues, the speculation tables, and the base predictor's own
     * state (keyed by its name() so a checkpoint cannot be restored
     * into a differently-configured engine). Used by sim/checkpoint.
     * @{
     */
    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);
    /** @} */

  private:
    BranchPredictor &pred;
    EngineConfig cfg;
    DelayedPredicateFile predFile;
    SquashFalsePathFilter sfpf;
    PredicateGlobalUpdate pgu;
    PredicateValuePredictor pvp;
    ConfidenceEstimator jrs;
    EngineStats engineStats;
    BranchProfile profile;
    /** History shifts since the last PGU-injected bit, clamped to
     *  pguInfluenceWindow ("no recent bit"). Checkpointed. */
    std::uint64_t shiftsSincePguBit = pguInfluenceWindow;

    /** @name Target modelling (allocated iff cfg.modelTargets)
     * The pointers normally alias the owned structures;
     * setTargetStructures() redirects them at another engine's
     * (multi-context shared mode).
     * @{ */
    std::unique_ptr<Btb> ownedBtb;
    std::unique_ptr<ReturnAddressStack> ownedRas;
    Btb *btbPtr = nullptr;
    ReturnAddressStack *rasPtr = nullptr;
    /** @} */
    /** Context-tag mix XORed into predictor/BTB indices
     *  (setContextTag); 0 = untagged. */
    std::uint32_t ctxMix = 0;

    ProcessResult processConditionalBranch(const DynInst &dyn);

    /** @name Target-modelling kernels (shared by both replay paths)
     *  @{ */
    /** Probe + refresh the BTB for a taken transfer; returns (and
     *  counts) the target miss. */
    bool btbAccess(std::uint32_t pc, std::uint32_t next_pc);
    /** Pop the RAS for a taken return; returns (and counts) whether
     *  the popped target matched @p next_pc. */
    bool rasReturnAccess(std::uint32_t next_pc);
    /** Batch mirror of the reference path's non-cond-branch target
     *  handling: one UncondControl event of @p trace. */
    void batchControlEvent(const DecodedTrace &trace, std::uint32_t i);
    /** @} */

    /** The reference path's predicate-define handling (process());
     *  batchPredDefine() is its lane-level mirror. */
    void handlePredicateDefine(const DynInst &dyn);

    /** @name processBatch internals (defined in engine.cc)
     * The configuration flags become template parameters so each of
     * the eight loop specialisations contains only the code its
     * configuration needs; Pred is the predictor's CONCRETE type
     * where known (gshare/combining/perceptron), devirtualising
     * predictAndUpdate.
     * @{ */
    template <bool UseSfpf, bool UsePgu, bool UseSpec>
    void batchDispatch(const DecodedTrace &trace, std::uint64_t first,
                       std::uint64_t count);
    template <bool UseSfpf, bool UsePgu, bool UseSpec, typename Pred>
    void batchLoop(Pred &bp, const DecodedTrace &trace,
                   std::uint64_t first, std::uint64_t count);
    /** @p guardState is the SFPF guard pre-resolved by the define
     *  kernel at this branch's sequence: bit0 = known at fetch, bit1
     *  = its value (0 when UseSfpf is off). Returns mispredicted, so
     *  the caller's target-modelling step can mirror the reference
     *  path's "no BTB touch after a restart" rule. */
    template <bool UseSfpf, bool UsePgu, bool UseSpec, typename Pred>
    bool batchCondBranch(Pred &bp, std::uint32_t pc, const Inst &inst,
                         bool guard, bool taken,
                         BranchProfile::Counters &prof,
                         std::uint8_t guardState);
    template <bool UseSfpf, bool UsePgu>
    void batchPredDefine(const DecodedTrace &trace, std::uint64_t i);

    /** Look up (and cache) the profile row for @p pc. The per-pc
     *  cache turns the reference path's per-branch std::map walk into
     *  an array load; BranchProfile::at() only invalidates pointers
     *  by evicting, which it reports via evictedBranches(). */
    BranchProfile::Counters &
    profileRowFor(std::uint32_t pc)
    {
        BranchProfile::Counters *row = profCache[pc];
        if (row) [[likely]]
            return *row;
        const std::uint64_t evictedBefore = profile.evictedBranches();
        row = &profile.at(pc);
        if (profile.evictedBranches() != evictedBefore) {
            // An eviction erased some entry; every cached pointer is
            // suspect, so start the cache over.
            std::fill(profCache.begin(), profCache.end(), nullptr);
        }
        profCache[pc] = row;
        return *row;
    }

    /** @name Batch-scoped machinery (reused so capacity persists)
     *  @{ */
    BatchPredicateView predView;
    PguBatchView pguView;
    std::unique_ptr<PguBatchView::Pending[]> pguBuf;
    std::size_t pguBufCap = 0;
    std::vector<BranchProfile::Counters *> profCache;
    /** Per-pc PGU contribution byte (PguBatchView::buildKinds). */
    std::vector<std::uint8_t> pguKind;
    /** Branch- and define-index buffers for simd::collectStops
     *  (uninitialised on purpose: the collect pass defines exactly
     *  the prefixes read). */
    std::unique_ptr<std::uint32_t[]> stopBuf;
    std::size_t stopBufCap = 0;
    std::unique_ptr<std::uint32_t[]> defBuf;
    std::size_t defBufCap = 0;
    /** Uncond-control index buffer (filled only under modelTargets:
     *  otherwise unconds are counted in bulk, never visited). */
    std::unique_ptr<std::uint32_t[]> uncondBuf;
    std::size_t uncondBufCap = 0;
    /** Schedule-cache probe scratch: the predicate file and PGU entry
     *  queues snapshotted for exact key comparison (reused so the
     *  small allocations amortise away). */
    std::vector<ReplayPredWrite> keyPredQ;
    std::vector<std::uint64_t> keyPguQ;
    /** @} */
    /** @} */

    /** The base predictor's history shifted once (a branch-outcome
     *  update); age the PGU-influence window, saturating. */
    void
    noteHistoryShift()
    {
        if (shiftsSincePguBit < pguInfluenceWindow)
            ++shiftsSincePguBit;
    }
};

/**
 * Convenience: run up to @p max_insts instructions of @p emu through
 * @p engine. Returns the number of instructions processed (less than
 * the budget when the program halts first).
 */
std::uint64_t runTrace(Emulator &emu, PredictionEngine &engine,
                       std::uint64_t max_insts);

/**
 * Replay a recorded trace through @p engine (record once with
 * recordTrace(), replay against many predictor configurations).
 * Returns the number of events processed.
 */
std::uint64_t replayTrace(const RecordedTrace &trace,
                          PredictionEngine &engine,
                          std::uint64_t max_insts);

/**
 * Replay starting at event @p first (a position restored from a
 * checkpoint). Returns the index one past the last event processed.
 * Clamped semantics: @p first at or past the end of the trace
 * processes nothing and returns @p first UNCHANGED - a resume cursor
 * positioned past a (shorter) trace must not be yanked backwards, or
 * the caller's progress bookkeeping would silently re-run events.
 */
std::uint64_t replayTraceFrom(const RecordedTrace &trace,
                              PredictionEngine &engine,
                              std::uint64_t first,
                              std::uint64_t max_insts);

} // namespace pabp

#endif // PABP_CORE_ENGINE_HH
