/**
 * @file
 * Multi-context replay: N independent trace contexts interleaved
 * through ONE set of branch-predictor tables.
 *
 * This is the shared-predictor interference experiment (bench E21):
 * every context gets its own PredictionEngine - its own SFPF/PGU/PVP
 * state, its own profile, its own stats - but all engines drive the
 * same BranchPredictor, so pattern-table entries trained by one
 * context are evicted or flipped by another. Two knobs shape the
 * interference:
 *
 *  - sharedHistory: when true the global history register (and, with
 *    EngineConfig::modelTargets armed, the BTB and return address
 *    stack) is ALSO shared - the fully-shared SMT picture. When
 *    false each context keeps a private history (swapped in and out
 *    around every schedule slice via BranchPredictor::exportHistory/
 *    importHistory) and private target structures; only the pattern
 *    tables interfere - the partitioned-front-end picture.
 *  - tagBits: low context-id bits mixed into every table index
 *    (PredictionEngine::setContextTag), trading capacity for
 *    isolation the way hashed-in thread ids do in real cores.
 *
 * Determinism: the schedule stream is a pure function of its config,
 * each slice advances exactly one context, and both replay loops
 * (batched decoded-trace, reference emulator) make the same
 * done/exhausted decisions at the same slice - so fast and reference
 * replay are byte-identical, and a 1-context replay is byte-identical
 * to the ordinary single-stream loop (pinned by tests and the
 * multictx fuzz oracle).
 *
 * Checkpointing is deliberately unsupported here: a mid-slice
 * snapshot would need every context's emulator plus the schedule
 * state, and no experiment needs it - the sweep rejects the
 * combination with InvalidArgument.
 */

#ifndef PABP_CORE_MULTICTX_HH
#define PABP_CORE_MULTICTX_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/engine.hh"
#include "sim/context_schedule.hh"
#include "sim/decoded_trace.hh"
#include "sim/emulator.hh"

namespace pabp {

/** Multi-context replay configuration. */
struct MultiCtxConfig
{
    ContextScheduleConfig schedule;
    /** Share global history (and BTB/RAS when modelled) across
     *  contexts; false = private history per context, swapped around
     *  every slice. The pattern tables are always shared. */
    bool sharedHistory = true;
    /** Context-id bits mixed into table indices; 0 = pure sharing. */
    unsigned tagBits = 0;
    /** Per-context engine configuration (identical for all). */
    EngineConfig engine;
};

/** Replays N contexts through one shared predictor. One per run. */
class MultiContextReplayer
{
  public:
    /** @p pred must be freshly constructed (its initial history is
     *  the per-context baseline in partitioned mode) and outlive the
     *  replayer. */
    MultiContextReplayer(BranchPredictor &pred,
                         const MultiCtxConfig &config);

    /**
     * Fast path: one pre-decoded trace per context, replayed through
     * the batched engine loop slice by slice. @p max_insts_per_context
     * must be the budget the traces were recorded with - the
     * exhaustion bookkeeping that keeps this loop slice-for-slice
     * identical to replayEmulated() depends on it. Returns total
     * events processed across all contexts.
     */
    std::uint64_t
    replayDecoded(const std::vector<const DecodedTrace *> &traces,
                  std::uint64_t max_insts_per_context);

    /** Reference path: one live emulator per context, stepped through
     *  PredictionEngine::process via runTrace slices. */
    std::uint64_t
    replayEmulated(const std::vector<Emulator *> &emus,
                   std::uint64_t max_insts_per_context);

    unsigned contexts() const
    {
        return static_cast<unsigned>(engines.size());
    }
    PredictionEngine &engine(unsigned ctx) { return *engines[ctx]; }
    const PredictionEngine &
    engine(unsigned ctx) const
    {
        return *engines[ctx];
    }

  private:
    /** advance(ctx, len) -> (events processed, context exhausted). */
    using Advance =
        std::function<std::pair<std::uint64_t, bool>(unsigned,
                                                     std::uint64_t)>;

    std::uint64_t drive(const Advance &advance,
                        std::vector<std::uint64_t> &remaining);
    void beginSlice(unsigned ctx);
    void endSlice(unsigned ctx);

    MultiCtxConfig cfg;
    BranchPredictor &pred;
    std::vector<std::unique_ptr<PredictionEngine>> engines;
    /** Partitioned mode: each context's saved history words. */
    std::vector<std::vector<std::uint64_t>> histories;
};

} // namespace pabp

#endif // PABP_CORE_MULTICTX_HH
