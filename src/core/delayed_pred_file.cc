#include "core/delayed_pred_file.hh"

#include "util/logging.hh"

namespace pabp {

DelayedPredicateFile::DelayedPredicateFile(unsigned delay)
    : visDelay(delay), visible(numPredRegs, false),
      inFlight(numPredRegs, 0)
{
    visible[0] = true;
}

void
DelayedPredicateFile::reset()
{
    std::fill(visible.begin(), visible.end(), false);
    visible[0] = true;
    std::fill(inFlight.begin(), inFlight.end(), 0u);
    queue.clear();
}


void
DelayedPredicateFile::saveState(StateSink &sink) const
{
    sink.writeBoolVector(visible);
    sink.writePodVector(inFlight);
    sink.writeU64(queue.size());
    queue.forEach([&](const Pending &p) {
        sink.writeU64(p.seq);
        sink.writeU8(p.reg);
        sink.writeBool(p.value);
        sink.writeBool(p.writes);
    });
}

Status
DelayedPredicateFile::loadState(StateSource &src)
{
    PABP_TRY(src.readBoolVector(visible, visible.size()));
    PABP_TRY(src.readPodVector(inFlight, inFlight.size()));
    std::uint64_t count = 0;
    PABP_TRY(src.readPod(count));
    // The queue never holds more than delay x 2 writes in practice;
    // bound it loosely so a corrupt count cannot balloon memory.
    if (count > (static_cast<std::uint64_t>(visDelay) + 1) * 1024)
        return Status(StatusCode::Corrupt,
                      "pending predicate-write queue count implausible");
    queue.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        Pending p{};
        PABP_TRY(src.readPod(p.seq));
        PABP_TRY(src.readPod(p.reg));
        PABP_TRY(src.readBool(p.value));
        PABP_TRY(src.readBool(p.writes));
        queue.push_back(p);
    }
    return Status();
}

} // namespace pabp
