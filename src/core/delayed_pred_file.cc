#include "core/delayed_pred_file.hh"

#include "util/logging.hh"

namespace pabp {

DelayedPredicateFile::DelayedPredicateFile(unsigned delay)
    : visDelay(delay), visible(numPredRegs, false),
      inFlight(numPredRegs, 0)
{
    visible[0] = true;
}

void
DelayedPredicateFile::write(std::uint64_t seq, unsigned reg, bool value)
{
    pabp_assert(reg < numPredRegs);
    if (reg == 0)
        return;
    queue.push_back(
        Pending{seq, static_cast<std::uint8_t>(reg), value, true});
    ++inFlight[reg];
}

void
DelayedPredicateFile::writeNoop(std::uint64_t seq, unsigned reg)
{
    pabp_assert(reg < numPredRegs);
    if (reg == 0)
        return;
    queue.push_back(
        Pending{seq, static_cast<std::uint8_t>(reg), false, false});
    ++inFlight[reg];
}

void
DelayedPredicateFile::advanceTo(std::uint64_t seq)
{
    while (!queue.empty() && queue.front().seq + visDelay <= seq) {
        const Pending &p = queue.front();
        if (p.writes)
            visible[p.reg] = p.value;
        pabp_assert(inFlight[p.reg] > 0);
        --inFlight[p.reg];
        queue.pop_front();
    }
}

std::optional<bool>
DelayedPredicateFile::read(unsigned reg) const
{
    pabp_assert(reg < numPredRegs);
    if (reg == 0)
        return true;
    if (inFlight[reg] > 0)
        return std::nullopt;
    return visible[reg];
}

void
DelayedPredicateFile::reset()
{
    std::fill(visible.begin(), visible.end(), false);
    visible[0] = true;
    std::fill(inFlight.begin(), inFlight.end(), 0u);
    queue.clear();
}

} // namespace pabp
