#include "core/delayed_pred_file.hh"

#include "util/logging.hh"

namespace pabp {

DelayedPredicateFile::DelayedPredicateFile(unsigned delay)
    : visDelay(delay), visible(numPredRegs, false),
      inFlight(numPredRegs, 0)
{
    visible[0] = true;
}

void
DelayedPredicateFile::write(std::uint64_t seq, unsigned reg, bool value)
{
    pabp_assert(reg < numPredRegs);
    if (reg == 0)
        return;
    queue.push_back(
        Pending{seq, static_cast<std::uint8_t>(reg), value, true});
    ++inFlight[reg];
}

void
DelayedPredicateFile::writeNoop(std::uint64_t seq, unsigned reg)
{
    pabp_assert(reg < numPredRegs);
    if (reg == 0)
        return;
    queue.push_back(
        Pending{seq, static_cast<std::uint8_t>(reg), false, false});
    ++inFlight[reg];
}

void
DelayedPredicateFile::advanceTo(std::uint64_t seq)
{
    while (!queue.empty() && queue.front().seq + visDelay <= seq) {
        const Pending &p = queue.front();
        if (p.writes)
            visible[p.reg] = p.value;
        pabp_assert(inFlight[p.reg] > 0);
        --inFlight[p.reg];
        queue.pop_front();
    }
}

std::optional<bool>
DelayedPredicateFile::read(unsigned reg) const
{
    pabp_assert(reg < numPredRegs);
    if (reg == 0)
        return true;
    if (inFlight[reg] > 0)
        return std::nullopt;
    return visible[reg];
}

void
DelayedPredicateFile::reset()
{
    std::fill(visible.begin(), visible.end(), false);
    visible[0] = true;
    std::fill(inFlight.begin(), inFlight.end(), 0u);
    queue.clear();
}


void
DelayedPredicateFile::saveState(StateSink &sink) const
{
    sink.writeBoolVector(visible);
    sink.writePodVector(inFlight);
    sink.writeU64(queue.size());
    for (const Pending &p : queue) {
        sink.writeU64(p.seq);
        sink.writeU8(p.reg);
        sink.writeBool(p.value);
        sink.writeBool(p.writes);
    }
}

Status
DelayedPredicateFile::loadState(StateSource &src)
{
    PABP_TRY(src.readBoolVector(visible, visible.size()));
    PABP_TRY(src.readPodVector(inFlight, inFlight.size()));
    std::uint64_t count = 0;
    PABP_TRY(src.readPod(count));
    // The queue never holds more than delay x 2 writes in practice;
    // bound it loosely so a corrupt count cannot balloon memory.
    if (count > (static_cast<std::uint64_t>(visDelay) + 1) * 1024)
        return Status(StatusCode::Corrupt,
                      "pending predicate-write queue count implausible");
    queue.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        Pending p{};
        PABP_TRY(src.readPod(p.seq));
        PABP_TRY(src.readPod(p.reg));
        PABP_TRY(src.readBool(p.value));
        PABP_TRY(src.readBool(p.writes));
        queue.push_back(p);
    }
    return Status();
}

} // namespace pabp
