#include "core/multictx.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pabp {

MultiContextReplayer::MultiContextReplayer(BranchPredictor &pred_,
                                           const MultiCtxConfig &config)
    : cfg(config), pred(pred_)
{
    const unsigned n = cfg.schedule.contexts;
    pabp_assert(n >= 1);
    engines.reserve(n);
    for (unsigned c = 0; c < n; ++c) {
        engines.push_back(
            std::make_unique<PredictionEngine>(pred, cfg.engine));
        engines.back()->setContextTag(c, cfg.tagBits);
    }
    if (cfg.sharedHistory) {
        // Fully-shared mode: everyone probes context 0's BTB/RAS (the
        // predictor's history register is shared by construction -
        // nothing swaps it). Context 0 outlives the borrowers: all
        // engines die with this replayer.
        if (cfg.engine.modelTargets)
            for (unsigned c = 1; c < n; ++c)
                engines[c]->setTargetStructures(engines[0]->btb(),
                                                engines[0]->ras());
    } else {
        // Partitioned mode: every context starts from the fresh
        // predictor's history baseline.
        std::vector<std::uint64_t> fresh;
        pred.exportHistory(fresh);
        histories.assign(n, fresh);
    }
}

void
MultiContextReplayer::beginSlice(unsigned ctx)
{
    if (!cfg.sharedHistory)
        pred.importHistory(histories[ctx].data(),
                           histories[ctx].size());
}

void
MultiContextReplayer::endSlice(unsigned ctx)
{
    if (!cfg.sharedHistory) {
        histories[ctx].clear();
        pred.exportHistory(histories[ctx]);
    }
}

std::uint64_t
MultiContextReplayer::drive(const Advance &advance,
                            std::vector<std::uint64_t> &remaining)
{
    const unsigned n = contexts();
    std::vector<bool> done(n, false);
    unsigned live = 0;
    for (unsigned c = 0; c < n; ++c) {
        if (remaining[c] == 0)
            done[c] = true;
        else
            ++live;
    }

    ContextSchedule sched(cfg.schedule);
    std::uint64_t total = 0;
    while (live > 0) {
        const ContextSchedule::Slice s = sched.next();
        unsigned c = s.context % n;
        // A slice granted to an exhausted context rotates to the next
        // live one - deterministically, so both replay paths redirect
        // identically.
        while (done[c])
            c = (c + 1) % n;
        const std::uint64_t len = std::min(s.length, remaining[c]);
        beginSlice(c);
        const auto [ran, exhausted] = advance(c, len);
        endSlice(c);
        pabp_assert(ran <= len);
        total += ran;
        remaining[c] -= ran;
        if (exhausted || remaining[c] == 0) {
            done[c] = true;
            --live;
        }
    }
    return total;
}

std::uint64_t
MultiContextReplayer::replayDecoded(
    const std::vector<const DecodedTrace *> &traces,
    std::uint64_t max_insts_per_context)
{
    pabp_assert(traces.size() == engines.size());
    std::vector<std::uint64_t> cursor(engines.size(), 0);
    std::vector<std::uint64_t> remaining(engines.size());
    for (std::size_t c = 0; c < traces.size(); ++c)
        remaining[c] =
            std::min<std::uint64_t>(max_insts_per_context,
                                    traces[c]->size());
    return drive(
        [&](unsigned c,
            std::uint64_t len) -> std::pair<std::uint64_t, bool> {
            const std::uint64_t next =
                engines[c]->processBatch(*traces[c], cursor[c], len);
            const std::uint64_t ran = next - cursor[c];
            cursor[c] = next;
            return {ran, cursor[c] >= traces[c]->size()};
        },
        remaining);
}

std::uint64_t
MultiContextReplayer::replayEmulated(
    const std::vector<Emulator *> &emus,
    std::uint64_t max_insts_per_context)
{
    pabp_assert(emus.size() == engines.size());
    std::vector<std::uint64_t> remaining(engines.size(),
                                         max_insts_per_context);
    return drive(
        [&](unsigned c,
            std::uint64_t len) -> std::pair<std::uint64_t, bool> {
            const std::uint64_t ran =
                runTrace(*emus[c], *engines[c], len);
            return {ran, emus[c]->state().halted};
        },
        remaining);
}

} // namespace pabp
