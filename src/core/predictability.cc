#include "core/predictability.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pabp {

double
binaryEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

Status
PredictabilityAnalyzer::validateConfig(const PredictabilityConfig &cfg)
{
    if (cfg.historyLengths.empty())
        return Status(StatusCode::InvalidArgument,
                      "predictability: no history lengths");
    for (std::size_t i = 0; i < cfg.historyLengths.size(); ++i) {
        if (cfg.historyLengths[i] > 31)
            return Status(StatusCode::InvalidArgument,
                          "predictability: history length " +
                              std::to_string(cfg.historyLengths[i]) +
                              " exceeds 31");
        if (i > 0 &&
            cfg.historyLengths[i] <= cfg.historyLengths[i - 1])
            return Status(StatusCode::InvalidArgument,
                          "predictability: history lengths must be "
                          "strictly increasing");
    }
    if (cfg.pcCapacity == 0 || cfg.patternCapacity == 0)
        return Status(StatusCode::InvalidArgument,
                      "predictability: capacities must be non-zero");
    return Status();
}

PredictabilityAnalyzer::PredictabilityAnalyzer(PredictabilityConfig c)
    : cfg(std::move(c))
{
    pabp_assert(validateConfig(cfg).ok());
}

PredictabilityAnalyzer::PcState &
PredictabilityAnalyzer::stateFor(std::uint32_t pc)
{
    auto it = table.find(pc);
    if (it != table.end())
        return it->second;

    if (table.size() >= cfg.pcCapacity) {
        // Fold the least-observed entry (ties: highest PC) into the
        // remainder - the same deterministic policy shape as
        // BranchProfile, keyed on occurrences since there is no
        // mispredict notion here.
        auto victim = table.begin();
        for (auto cand = table.begin(); cand != table.end(); ++cand) {
            if (cand->second.occurrences <
                    victim->second.occurrences ||
                (cand->second.occurrences ==
                     victim->second.occurrences &&
                 cand->first > victim->first))
                victim = cand;
        }
        evictedBranches += 1;
        evictedOccurrences += victim->second.occurrences;
        evictedTaken += victim->second.taken;
        evictedTransitions += victim->second.transitions;
        for (const PatternTable &t : victim->second.tables)
            evictedPatterns += t.evictedPatterns;
        table.erase(victim);
    }

    PcState &st = table[pc];
    st.tables.resize(cfg.historyLengths.size());
    return st;
}

void
PredictabilityAnalyzer::recordPattern(PatternTable &t,
                                      std::uint32_t pattern,
                                      bool taken)
{
    auto it = t.counts.find(pattern);
    if (it == t.counts.end()) {
        if (t.counts.size() >= cfg.patternCapacity) {
            // Fold the least-observed pattern (ties: highest
            // pattern) into the remainder bucket.
            auto victim = t.counts.begin();
            for (auto cand = t.counts.begin(); cand != t.counts.end();
                 ++cand) {
                const std::uint64_t cn =
                    cand->second[0] + cand->second[1];
                const std::uint64_t vn =
                    victim->second[0] + victim->second[1];
                if (cn < vn || (cn == vn && cand->first > victim->first))
                    victim = cand;
            }
            t.remainder[0] += victim->second[0];
            t.remainder[1] += victim->second[1];
            t.evictedPatterns += 1;
            t.counts.erase(victim);
        }
        it = t.counts.emplace(pattern,
                              std::array<std::uint64_t, 2>{0, 0})
                 .first;
    }
    it->second[taken ? 1 : 0] += 1;
}

void
PredictabilityAnalyzer::observe(std::uint32_t pc, bool taken)
{
    PcState &st = stateFor(pc);

    for (std::size_t i = 0; i < cfg.historyLengths.size(); ++i) {
        const unsigned k = cfg.historyLengths[i];
        // Warm-up skip: a k-conditioned table only counts outcomes
        // that have a full k-deep history for this PC.
        if (st.occurrences < k)
            continue;
        const std::uint32_t mask =
            k ? ((1u << k) - 1u) : 0u;
        recordPattern(st.tables[i], st.history & mask, taken);
    }

    if (st.occurrences > 0 && taken != st.lastOutcome)
        st.transitions += 1;
    st.occurrences += 1;
    st.taken += taken ? 1 : 0;
    st.lastOutcome = taken;
    st.history = (st.history << 1) | (taken ? 1u : 0u);
    total += 1;
}

namespace {

/** Pattern-frequency-weighted binary entropy of one table. */
double
tableEntropy(const std::map<std::uint32_t,
                            std::array<std::uint64_t, 2>> &counts,
             const std::array<std::uint64_t, 2> &remainder,
             std::uint64_t total)
{
    if (total == 0)
        return 0.0;
    double h = 0.0;
    for (const auto &[pattern, c] : counts) {
        const std::uint64_t n = c[0] + c[1];
        if (n == 0)
            continue;
        h += static_cast<double>(n) / static_cast<double>(total) *
            binaryEntropy(static_cast<double>(c[1]) /
                          static_cast<double>(n));
    }
    const std::uint64_t rn = remainder[0] + remainder[1];
    if (rn)
        h += static_cast<double>(rn) / static_cast<double>(total) *
            binaryEntropy(static_cast<double>(remainder[1]) /
                          static_cast<double>(rn));
    return h;
}

} // namespace

PredictabilityReport
PredictabilityAnalyzer::report() const
{
    PredictabilityReport rep;
    rep.historyLengths = cfg.historyLengths;
    rep.entropy.assign(cfg.historyLengths.size(), 0.0);
    rep.conditioned.assign(cfg.historyLengths.size(), 0);
    rep.evictedBranches = evictedBranches;
    rep.evictedOccurrences = evictedOccurrences;
    rep.evictedTaken = evictedTaken;
    rep.evictedTransitions = evictedTransitions;

    std::uint64_t patternFolds = evictedPatterns;
    for (const auto &[pc, st] : table) {
        PredictabilityReport::PerPc out;
        out.occurrences = st.occurrences;
        out.taken = st.taken;
        out.transitions = st.transitions;
        out.entropy.reserve(st.tables.size());
        out.conditioned.reserve(st.tables.size());
        for (const PatternTable &t : st.tables) {
            std::uint64_t n = t.remainder[0] + t.remainder[1];
            for (const auto &[pattern, c] : t.counts)
                n += c[0] + c[1];
            out.conditioned.push_back(n);
            out.entropy.push_back(
                tableEntropy(t.counts, t.remainder, n));
            patternFolds += t.evictedPatterns;
        }
        rep.occurrences += st.occurrences;
        rep.taken += st.taken;
        rep.transitions += st.transitions;
        rep.perPc.emplace(pc, std::move(out));
    }
    rep.evictedPatterns = patternFolds;

    // Whole-trace totals fold the evicted remainder back in: the
    // trace-level rates must not depend on pcCapacity (only the
    // per-PC attribution and the entropy weighting do).
    rep.occurrences += evictedOccurrences;
    rep.taken += evictedTaken;
    rep.transitions += evictedTransitions;

    // Occurrence-weighted aggregation: each PC weighs by its
    // conditioned count at that k, so warm-up outcomes never dilute
    // the k-conditioned mean.
    for (std::size_t i = 0; i < cfg.historyLengths.size(); ++i) {
        std::uint64_t weight = 0;
        double sum = 0.0;
        for (const auto &[pc, per] : rep.perPc) {
            weight += per.conditioned[i];
            sum += static_cast<double>(per.conditioned[i]) *
                per.entropy[i];
        }
        rep.conditioned[i] = weight;
        rep.entropy[i] =
            weight ? sum / static_cast<double>(weight) : 0.0;
    }
    return rep;
}

namespace {

template <typename IsBranch, typename Taken, typename Pc>
PredictabilityReport
characterizeStream(std::size_t events, const PredictabilityConfig &cfg,
                   std::uint64_t max_events, IsBranch is_branch,
                   Taken taken, Pc pc)
{
    PredictabilityAnalyzer an(cfg);
    std::size_t n = events;
    if (max_events && max_events < n)
        n = static_cast<std::size_t>(max_events);
    for (std::size_t i = 0; i < n; ++i) {
        if (!is_branch(i))
            continue;
        an.observe(pc(i), taken(i));
    }
    return an.report();
}

} // namespace

PredictabilityReport
characterizeTrace(const RecordedTrace &trace,
                  const PredictabilityConfig &cfg,
                  std::uint64_t max_events)
{
    return characterizeStream(
        trace.events.size(), cfg, max_events,
        [&](std::size_t i) {
            const RecordedTrace::Event &e = trace.events[i];
            return e.pc < trace.prog.insts.size() &&
                trace.prog.insts[e.pc].isConditionalBranch();
        },
        [&](std::size_t i) {
            return (trace.events[i].flags >> 1) & 1;
        },
        [&](std::size_t i) { return trace.events[i].pc; });
}

PredictabilityReport
characterizeTrace(const DecodedTrace &trace,
                  const PredictabilityConfig &cfg,
                  std::uint64_t max_events)
{
    return characterizeStream(
        trace.size(), cfg, max_events,
        [&](std::size_t i) {
            return trace.cls[i] ==
                static_cast<std::uint8_t>(
                       DecodedTrace::Class::CondBranch);
        },
        [&](std::size_t i) { return trace.taken(i); },
        [&](std::size_t i) { return trace.pcs[i]; });
}

std::vector<std::string>
predictabilityTableColumns(const std::vector<unsigned> &history_lengths)
{
    std::vector<std::string> cols = {"pc", "occurrences", "taken",
                                     "transitions"};
    for (unsigned k : history_lengths)
        cols.push_back("entropy_k" + std::to_string(k) +
                       "_millibits");
    return cols;
}

namespace {

std::uint64_t
millibits(double bits)
{
    return static_cast<std::uint64_t>(
        std::llround(std::max(0.0, bits) * 1000.0));
}

} // namespace

void
exportPredictability(MetricsExporter &ex,
                     const PredictabilityReport &report,
                     const std::string &prefix)
{
    ex.setInt(prefix + ".static_branches", report.perPc.size());
    ex.setInt(prefix + ".occurrences", report.occurrences);
    ex.setInt(prefix + ".taken", report.taken);
    ex.setInt(prefix + ".transitions", report.transitions);
    ex.setReal(prefix + ".taken_rate", report.takenRate());
    ex.setReal(prefix + ".transition_rate", report.transitionRate());
    ex.setInt(prefix + ".evicted_branches", report.evictedBranches);
    ex.setInt(prefix + ".evicted_occurrences",
              report.evictedOccurrences);
    ex.setInt(prefix + ".evicted_patterns", report.evictedPatterns);
    for (std::size_t i = 0; i < report.historyLengths.size(); ++i) {
        const std::string k =
            "k" + std::to_string(report.historyLengths[i]);
        ex.setReal(prefix + ".entropy." + k, report.entropy[i]);
        ex.setInt(prefix + ".conditioned." + k,
                  report.conditioned[i]);
    }

    ex.declareTable(prefix,
                    predictabilityTableColumns(report.historyLengths));
    for (const auto &[pc, per] : report.perPc) {
        std::vector<std::uint64_t> row = {pc, per.occurrences,
                                          per.taken, per.transitions};
        for (double h : per.entropy)
            row.push_back(millibits(h));
        ex.addRow(prefix, std::move(row));
    }
}

void
aggregatePredictabilityByTier(MetricsExporter &ex,
                              const H2pClassification &cls,
                              const PredictabilityReport &report,
                              const std::string &prefix)
{
    struct TierAgg
    {
        std::uint64_t matched = 0;
        std::uint64_t occurrences = 0;
        std::uint64_t taken = 0;
        std::uint64_t transitions = 0;
        std::vector<std::uint64_t> conditioned;
        std::vector<double> entropySum;
    };
    const std::size_t ks = report.historyLengths.size();
    std::vector<TierAgg> tiers(cls.numTiers());
    for (TierAgg &t : tiers) {
        t.conditioned.assign(ks, 0);
        t.entropySum.assign(ks, 0.0);
    }

    for (const auto &[pc, tier] : cls.tierOf) {
        auto it = report.perPc.find(pc);
        if (it == report.perPc.end())
            continue;
        TierAgg &agg = tiers[tier];
        const PredictabilityReport::PerPc &per = it->second;
        agg.matched += 1;
        agg.occurrences += per.occurrences;
        agg.taken += per.taken;
        agg.transitions += per.transitions;
        for (std::size_t i = 0; i < ks; ++i) {
            agg.conditioned[i] += per.conditioned[i];
            agg.entropySum[i] +=
                static_cast<double>(per.conditioned[i]) *
                per.entropy[i];
        }
    }

    for (unsigned t = 0; t < cls.numTiers(); ++t) {
        const std::string key =
            prefix + ".tier" + std::to_string(t) + ".";
        const TierAgg &agg = tiers[t];
        ex.setInt(key + "matched_branches", agg.matched);
        ex.setInt(key + "occurrences", agg.occurrences);
        ex.setReal(key + "taken_rate",
                   agg.occurrences
                       ? static_cast<double>(agg.taken) /
                           static_cast<double>(agg.occurrences)
                       : 0.0);
        ex.setReal(key + "transition_rate",
                   agg.occurrences
                       ? static_cast<double>(agg.transitions) /
                           static_cast<double>(agg.occurrences)
                       : 0.0);
        for (std::size_t i = 0; i < ks; ++i) {
            const std::string k =
                "k" + std::to_string(report.historyLengths[i]);
            ex.setReal(key + "entropy." + k,
                       agg.conditioned[i]
                           ? agg.entropySum[i] /
                               static_cast<double>(agg.conditioned[i])
                           : 0.0);
        }
    }
}

} // namespace pabp
