#include "core/branch_profile.hh"

#include <algorithm>

namespace pabp {

namespace {

template <typename CountersT, typename Fn>
void
forEachCounter(CountersT &c, Fn &&fn)
{
    fn(c.lookups);
    fn(c.taken);
    fn(c.mispredicts);
    fn(c.sfpfSquashes);
    fn(c.specSquashes);
    fn(c.pguInfluenced);
    fn(c.guardKnown);
    fn(c.guardUnknown);
}

} // anonymous namespace

BranchProfile::Counters &
BranchProfile::at(std::uint32_t pc)
{
    if (cap == 0)
        return evicted;
    auto it = table.find(pc);
    if (it != table.end())
        return it->second;
    if (table.size() >= cap) {
        // Evict the coldest entry: fewest mispredicts, then fewest
        // lookups, then highest PC - a total order, so the choice is
        // deterministic regardless of map internals.
        auto victim = table.begin();
        for (auto cand = std::next(table.begin()); cand != table.end();
             ++cand) {
            const Counters &c = cand->second;
            const Counters &v = victim->second;
            if (c.mispredicts < v.mispredicts ||
                (c.mispredicts == v.mispredicts &&
                 (c.lookups < v.lookups ||
                  (c.lookups == v.lookups && cand->first > victim->first))))
                victim = cand;
        }
        evicted.accumulate(victim->second);
        ++evictedCount;
        table.erase(victim);
    }
    return table[pc];
}

std::vector<std::pair<std::uint32_t, BranchProfile::Counters>>
BranchProfile::topByMispredicts(std::size_t k) const
{
    std::vector<std::pair<std::uint32_t, Counters>> out(table.begin(),
                                                        table.end());
    std::stable_sort(out.begin(), out.end(),
                     [](const auto &a, const auto &b) {
                         if (a.second.mispredicts !=
                             b.second.mispredicts)
                             return a.second.mispredicts >
                                 b.second.mispredicts;
                         return a.first < b.first;
                     });
    if (k && out.size() > k)
        out.resize(k);
    return out;
}

void
BranchProfile::reset()
{
    table.clear();
    evicted = Counters{};
    evictedCount = 0;
}

void
BranchProfile::saveState(StateSink &sink) const
{
    sink.writeU64(table.size());
    for (const auto &[pc, counters] : table) {
        sink.writeU32(pc);
        forEachCounter(counters, [&](const std::uint64_t &v) {
            sink.writeU64(v);
        });
    }
    forEachCounter(evicted,
                   [&](const std::uint64_t &v) { sink.writeU64(v); });
    sink.writeU64(evictedCount);
}

Status
BranchProfile::loadState(StateSource &src)
{
    std::uint64_t count = 0;
    PABP_TRY(src.readPod(count));
    if (cap != 0 && count > cap)
        return Status(StatusCode::InvalidArgument,
                      "branch profile stored " + std::to_string(count) +
                          " entries > capacity " + std::to_string(cap));
    table.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint32_t pc = 0;
        PABP_TRY(src.readPod(pc));
        Counters counters;
        Status status = Status();
        forEachCounter(counters, [&](std::uint64_t &v) {
            if (status.ok())
                status = src.readPod(v);
        });
        PABP_TRY(std::move(status));
        table.emplace(pc, counters);
    }
    Status status = Status();
    forEachCounter(evicted, [&](std::uint64_t &v) {
        if (status.ok())
            status = src.readPod(v);
    });
    PABP_TRY(std::move(status));
    return src.readPod(evictedCount);
}

std::vector<std::string>
BranchProfile::tableColumns()
{
    return {"pc",           "lookups",        "taken",
            "mispredicts",  "sfpf_squashes",  "spec_squashes",
            "pgu_influenced", "guard_known",  "guard_unknown"};
}

void
BranchProfile::exportTo(MetricsExporter &ex) const
{
    ex.setInt("branch_profile.tracked", table.size());
    ex.setInt("branch_profile.capacity", cap);
    ex.setInt("branch_profile.evicted_branches", evictedCount);
    ex.setInt("branch_profile.evicted.lookups", evicted.lookups);
    ex.setInt("branch_profile.evicted.mispredicts",
              evicted.mispredicts);
    ex.setInt("branch_profile.evicted.sfpf_squashes",
              evicted.sfpfSquashes);
    ex.setInt("branch_profile.evicted.spec_squashes",
              evicted.specSquashes);
    ex.setInt("branch_profile.evicted.pgu_influenced",
              evicted.pguInfluenced);

    ex.declareTable("branches", tableColumns());
    for (const auto &[pc, c] : topByMispredicts()) {
        ex.addRow("branches",
                  {pc, c.lookups, c.taken, c.mispredicts,
                   c.sfpfSquashes, c.specSquashes, c.pguInfluenced,
                   c.guardKnown, c.guardUnknown});
    }
}

} // namespace pabp
