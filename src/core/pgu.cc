#include "core/pgu.hh"

namespace pabp {

void
PredicateGlobalUpdate::observe(const DynInst &dyn)
{
    const Inst &inst = *dyn.inst;
    bool is_cmp = inst.op == Opcode::Cmp;
    bool is_pset = inst.op == Opcode::PSet;
    if (!is_cmp && !(is_pset && cfg.includePSet))
        return;
    if (cfg.source == PguSource::RegionCmps && inst.regionId < 0)
        return;

    switch (cfg.value) {
      case PguValue::Rel:
        // Insert the comparison outcome for guarded-true compares;
        // a guard-false compare computed nothing worth recording.
        if (is_cmp && dyn.guard)
            queue.push_back(Pending{dyn.seq, dyn.cmpRel});
        else if (is_pset && dyn.guard)
            queue.push_back(Pending{dyn.seq, (inst.imm & 1) != 0});
        break;
      case PguValue::FirstWrite:
        if (dyn.numPredWrites > 0)
            queue.push_back(Pending{dyn.seq, dyn.predWrites[0].value});
        break;
      case PguValue::BothWrites:
        for (unsigned i = 0; i < dyn.numPredWrites; ++i)
            queue.push_back(Pending{dyn.seq, dyn.predWrites[i].value});
        break;
    }
}

unsigned
PredicateGlobalUpdate::drainTo(std::uint64_t seq)
{
    unsigned drained = 0;
    while (!queue.empty() && queue.front().seq + cfg.delay <= seq) {
        pred.injectHistoryBit(queue.front().bit);
        ++inserted;
        ++drained;
        queue.pop_front();
    }
    return drained;
}

void
PredicateGlobalUpdate::reset()
{
    queue.clear();
    inserted = 0;
}


void
PredicateGlobalUpdate::saveState(StateSink &sink) const
{
    sink.writeU64(queue.size());
    for (const Pending &p : queue) {
        sink.writeU64(p.seq);
        sink.writeBool(p.bit);
    }
    sink.writeU64(inserted);
}

Status
PredicateGlobalUpdate::loadState(StateSource &src)
{
    std::uint64_t count = 0;
    PABP_TRY(src.readPod(count));
    if (count > (static_cast<std::uint64_t>(cfg.delay) + 1) * 1024)
        return Status(StatusCode::Corrupt,
                      "pending history-bit queue count implausible");
    queue.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        Pending p{};
        PABP_TRY(src.readPod(p.seq));
        PABP_TRY(src.readBool(p.bit));
        queue.push_back(p);
    }
    return src.readPod(inserted);
}

} // namespace pabp
