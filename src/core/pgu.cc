#include "core/pgu.hh"

namespace pabp {

void
PredicateGlobalUpdate::reset()
{
    queue.clear();
    inserted = 0;
}


void
PredicateGlobalUpdate::saveState(StateSink &sink) const
{
    sink.writeU64(queue.size());
    queue.forEach([&](const Pending &p) {
        sink.writeU64(p.seq);
        sink.writeBool(p.bit);
    });
    sink.writeU64(inserted);
}

Status
PredicateGlobalUpdate::loadState(StateSource &src)
{
    std::uint64_t count = 0;
    PABP_TRY(src.readPod(count));
    if (count > (static_cast<std::uint64_t>(cfg.delay) + 1) * 1024)
        return Status(StatusCode::Corrupt,
                      "pending history-bit queue count implausible");
    queue.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        Pending p{};
        PABP_TRY(src.readPod(p.seq));
        PABP_TRY(src.readBool(p.bit));
        queue.push_back(p);
    }
    return src.readPod(inserted);
}

} // namespace pabp
