/**
 * @file
 * The squash false path filter (SFPF) - the paper's first technique.
 *
 * At fetch, a conditional branch whose qualifying predicate is already
 * known to be false cannot be taken (architectural invariant of the
 * predicated ISA), so the filter predicts it not-taken with 100%
 * accuracy, bypassing the dynamic predictor entirely. Filtered
 * branches neither read nor train the base predictor, which also
 * removes their pollution from its tables and history.
 */

#ifndef PABP_CORE_SFPF_HH
#define PABP_CORE_SFPF_HH

#include <cstdint>

#include "core/delayed_pred_file.hh"
#include "isa/inst.hh"
#include "util/serialize.hh"
#include "util/stats.hh"
#include "util/status.hh"

namespace pabp {

/** Squash false path filter over a delayed predicate file. */
class SquashFalsePathFilter
{
  public:
    explicit SquashFalsePathFilter(const DelayedPredicateFile &file)
        : predFile(file)
    {}

    /**
     * Should the conditional branch @p inst (fetched at @p seq, after
     * the file has been advanced to @p seq) be squashed - i.e.
     * predicted not-taken with certainty?
     */
    bool
    shouldSquash(const Inst &inst) const
    {
        if (inst.op != Opcode::Br || inst.qp == 0)
            return false;
        auto known = predFile.read(inst.qp);
        return known.has_value() && !*known;
    }

    std::uint64_t squashes() const { return squashCount; }
    void noteSquash() { ++squashCount; }
    void resetStats() { squashCount = 0; }

    void
    registerStats(StatGroup &group, const std::string &prefix)
    {
        group.gauge(prefix + "squashes", [this] { return squashCount; });
    }

    void saveState(StateSink &sink) const { sink.writeU64(squashCount); }
    Status loadState(StateSource &src) { return src.readPod(squashCount); }

  private:
    const DelayedPredicateFile &predFile;
    std::uint64_t squashCount = 0;
};

} // namespace pabp

#endif // PABP_CORE_SFPF_HH
