/**
 * @file
 * Fetch-visible predicate register file with a define-to-use delay.
 *
 * The squash false path filter may only consult predicate values that
 * have actually been computed by the time the branch is fetched. This
 * component models that constraint in a trace-driven setting: a write
 * performed by the instruction at sequence number W becomes visible to
 * instructions at sequence numbers >= W + delay; any in-flight (not
 * yet visible) write to a register makes its value *unknown*, because
 * the fetch stage cannot tell which value will win.
 *
 * Consulting only resolved values is what makes the filter's
 * not-taken predictions 100% accurate (DESIGN.md, decision 3).
 */

#ifndef PABP_CORE_DELAYED_PRED_FILE_HH
#define PABP_CORE_DELAYED_PRED_FILE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/inst.hh"
#include "sim/replay_schedule.hh"
#include "util/logging.hh"
#include "util/ring_queue.hh"
#include "util/serialize.hh"
#include "util/status.hh"

namespace pabp {

/** Trace-driven delayed-visibility predicate file. */
class DelayedPredicateFile
{
  public:
    /**
     * @param delay Instructions between a predicate define and its
     *        visibility at fetch (roughly front-end depth x width).
     */
    explicit DelayedPredicateFile(unsigned delay);

    /** Record a predicate write by the instruction at @p seq. */
    void
    write(std::uint64_t seq, unsigned reg, bool value)
    {
        pabp_assert(reg < numPredRegs);
        if (reg == 0)
            return;
        queue.push_back(
            Pending{seq, static_cast<std::uint8_t>(reg), value, true});
        ++inFlight[reg];
    }

    /**
     * Record an in-flight define that will NOT architecturally write
     * (a guard-false or-type compare, say). Conservative hardware
     * cannot tell at fetch, so such a define still makes the register
     * unknown until it resolves. Used by the conservative-tracking
     * ablation.
     */
    void
    writeNoop(std::uint64_t seq, unsigned reg)
    {
        pabp_assert(reg < numPredRegs);
        if (reg == 0)
            return;
        queue.push_back(
            Pending{seq, static_cast<std::uint8_t>(reg), false, false});
        ++inFlight[reg];
    }

    /** Make all writes older than @p seq - delay visible. Must be
     *  called with non-decreasing @p seq. Inline (as is the whole
     *  queue machinery): the replay loops call it once per
     *  instruction, and a retirement happens for every pending write,
     *  i.e. once per predicate define. */
    void
    advanceTo(std::uint64_t seq)
    {
        while (!queue.empty() && queue.front().seq + visDelay <= seq)
            retireFront();
    }

    /**
     * Value of predicate @p reg as known at fetch after the last
     * advanceTo(). nullopt when a write is still in flight. p0 always
     * reads true.
     */
    std::optional<bool>
    read(unsigned reg) const
    {
        pabp_assert(reg < numPredRegs);
        if (reg == 0)
            return true;
        if (inFlight[reg] > 0)
            return std::nullopt;
        return visible[reg];
    }

    unsigned delay() const { return visDelay; }
    void reset();

    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);

    /** One in-flight define (the POD lives in sim/replay_schedule.hh
     *  so replay schedules can snapshot queue contents; the queue
     *  itself stays private). */
    using Pending = ReplayPredWrite;

    /** @name Replay-schedule state exchange (core/engine.cc)
     * The batched replay loop keys its per-trace schedule cache on
     * this file's exact state and restores the recorded exit state on
     * a hit; both forms are value-complete (visible bits + the FIFO),
     * with inFlight derived from the queue.
     * @{ */
    static_assert(numPredRegs <= 64,
                  "visibleBits() packs one bit per register");

    std::uint64_t
    visibleBits() const
    {
        std::uint64_t bits = 0;
        for (unsigned r = 0; r < numPredRegs; ++r)
            bits |= static_cast<std::uint64_t>(visible[r] ? 1 : 0) << r;
        return bits;
    }

    void
    exportQueue(std::vector<Pending> &out) const
    {
        out.clear();
        queue.forEach([&](const Pending &p) { out.push_back(p); });
    }

    void
    restoreBatchState(std::uint64_t visibleBits_,
                      const std::vector<Pending> &entries)
    {
        for (unsigned r = 0; r < numPredRegs; ++r)
            visible[r] = (visibleBits_ >> r) & 1;
        std::fill(inFlight.begin(), inFlight.end(), 0u);
        queue.clear();
        for (const Pending &p : entries) {
            queue.push_back(p);
            ++inFlight[p.reg];
        }
    }
    /** @} */

  private:

    /** Apply the front pending write and pop it (advanceTo's loop
     *  body). */
    void
    retireFront()
    {
        const Pending &p = queue.front();
        if (p.writes)
            visible[p.reg] = p.value;
        pabp_assert(inFlight[p.reg] > 0);
        --inFlight[p.reg];
        queue.pop_front();
    }

    unsigned visDelay;
    std::vector<bool> visible;
    std::vector<unsigned> inFlight;
    RingQueue<Pending> queue;

    friend class BatchPredicateView;
};

/**
 * Register-indexed overlay that answers a whole batch worth of
 * delayed-visibility queries without touching the FIFO.
 *
 * The reference loop pays a queue push per define plus an advanceTo()
 * retirement sweep per instruction. Over a batch [first, endSeq] none
 * of that ordering machinery is observable - a read at sequence S only
 * needs "is the newest write to this register visible by S, and what
 * value would the retirement sweep have left". Both are per-register
 * facts: writes arrive in sequence order, so the register is known at
 * S exactly when its newest write w satisfies w.seq + delay <= S, and
 * the visible value is then the newest *architectural* write's value.
 * begin() folds the file's current FIFO into those per-register
 * summaries; write()/read() during the batch are then O(1) array
 * operations with no queue traffic at all.
 *
 * commit() restores the file to byte-for-byte the state the reference
 * sequence of write()/advanceTo() calls would have produced (the FIFO
 * is checkpoint-serialised, so "unobservable" must include checkpoint
 * bytes): advanceTo(endSeq) retires the pre-batch entries natively;
 * retired batch writes collapse to their final visible[] values (their
 * push/retire pair nets zero in-flight); and still-in-flight batch
 * writes replay into the FIFO in order. Pre-batch leftovers all
 * precede batch writes in sequence, so FIFO order is preserved - and
 * a batch write can only be in flight if every leftover is too.
 */
class BatchPredicateView
{
  public:
    /** Start a batch ending at @p endSeq_ (inclusive) over @p f.
     *  Reusable: capacity of the spill buffer persists. */
    void
    begin(DelayedPredicateFile &f, std::uint64_t endSeq_)
    {
        file = &f;
        endSeq = endSeq_;
        tail.clear();
        for (unsigned r = 0; r < numPredRegs; ++r) {
            visibleAt[r] = 0;
            curVal[r] = f.visible[r];
            retiredAny[r] = false;
        }
        f.queue.forEach([this](const DelayedPredicateFile::Pending &p) {
            visibleAt[p.reg] = p.seq + file->visDelay;
            if (p.writes)
                curVal[p.reg] = p.value;
        });
    }

    /** DelayedPredicateFile::read() as seen at sequence @p seq. */
    PABP_ALWAYS_INLINE std::optional<bool>
    read(unsigned reg, std::uint64_t seq) const
    {
        pabp_assert(reg < numPredRegs);
        if (reg == 0)
            return true;
        if (visibleAt[reg] > seq)
            return std::nullopt;
        return curVal[reg];
    }

    void
    write(std::uint64_t seq, unsigned reg, bool value)
    {
        pabp_assert(reg < numPredRegs);
        if (reg == 0)
            return;
        writeMasked(seq, reg, value);
    }

    /**
     * A define's register lane slot cannot be masked out of the
     * dataflow cheaply (whether slot w architecturally writes is
     * data-dependent, and a conditional call is a host-branch
     * mispredict per irregular define), so the define kernel maps
     * dead slots - and writes to the constant-true p0, which the
     * file discards - to @p trashReg and calls this unconditionally:
     * the overlay arrays carry one scratch entry that nothing ever
     * reads, turning the mask into a pair of cmovs.
     */
    static constexpr unsigned trashReg = numPredRegs;

    PABP_ALWAYS_INLINE void
    writeMasked(std::uint64_t seq, unsigned reg, bool value)
    {
        pabp_assert(reg <= trashReg);
        const std::uint64_t vis = seq + file->visDelay;
        visibleAt[reg] = vis;
        curVal[reg] = value;
        if (vis <= endSeq) [[likely]] {
            retiredAny[reg] = true;
            retiredVal[reg] = value;
        } else if (reg != 0 && reg != trashReg) {
            tail.push_back(DelayedPredicateFile::Pending{
                seq, static_cast<std::uint8_t>(reg), value, true});
        }
    }

    void
    writeNoop(std::uint64_t seq, unsigned reg)
    {
        pabp_assert(reg < numPredRegs);
        if (reg == 0)
            return;
        const std::uint64_t vis = seq + file->visDelay;
        visibleAt[reg] = vis;
        if (vis > endSeq)
            tail.push_back(DelayedPredicateFile::Pending{
                seq, static_cast<std::uint8_t>(reg), false, false});
        // A noop that retires within the batch nets to nothing: no
        // visible[] change, in-flight up then down.
    }

    /** Fold the batch back into the file (see class comment). */
    void
    commit()
    {
        file->advanceTo(endSeq);
        for (unsigned r = 1; r < numPredRegs; ++r) {
            if (retiredAny[r])
                file->visible[r] = retiredVal[r];
        }
        for (const DelayedPredicateFile::Pending &p : tail) {
            if (p.writes)
                file->write(p.seq, p.reg, p.value);
            else
                file->writeNoop(p.seq, p.reg);
        }
        file = nullptr;
    }

  private:
    DelayedPredicateFile *file = nullptr;
    std::uint64_t endSeq = 0;
    /** Sequence at which the register's newest write becomes fetch
     *  visible; 0 = nothing in flight (writes start at seq 0 but gain
     *  a positive delay, and delay 0 means instant visibility). One
     *  extra entry per array: the trashReg scratch slot. */
    std::uint64_t visibleAt[numPredRegs + 1];
    /** Value a read sees once the register is known. */
    bool curVal[numPredRegs + 1];
    /** Newest batch write that retires inside the batch, per reg. */
    bool retiredVal[numPredRegs + 1];
    bool retiredAny[numPredRegs + 1];
    /** Batch writes still in flight at endSeq, in sequence order. */
    std::vector<DelayedPredicateFile::Pending> tail;
};

} // namespace pabp

#endif // PABP_CORE_DELAYED_PRED_FILE_HH
