/**
 * @file
 * Fetch-visible predicate register file with a define-to-use delay.
 *
 * The squash false path filter may only consult predicate values that
 * have actually been computed by the time the branch is fetched. This
 * component models that constraint in a trace-driven setting: a write
 * performed by the instruction at sequence number W becomes visible to
 * instructions at sequence numbers >= W + delay; any in-flight (not
 * yet visible) write to a register makes its value *unknown*, because
 * the fetch stage cannot tell which value will win.
 *
 * Consulting only resolved values is what makes the filter's
 * not-taken predictions 100% accurate (DESIGN.md, decision 3).
 */

#ifndef PABP_CORE_DELAYED_PRED_FILE_HH
#define PABP_CORE_DELAYED_PRED_FILE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/inst.hh"
#include "util/logging.hh"
#include "util/ring_queue.hh"
#include "util/serialize.hh"
#include "util/status.hh"

namespace pabp {

/** Trace-driven delayed-visibility predicate file. */
class DelayedPredicateFile
{
  public:
    /**
     * @param delay Instructions between a predicate define and its
     *        visibility at fetch (roughly front-end depth x width).
     */
    explicit DelayedPredicateFile(unsigned delay);

    /** Record a predicate write by the instruction at @p seq. */
    void
    write(std::uint64_t seq, unsigned reg, bool value)
    {
        pabp_assert(reg < numPredRegs);
        if (reg == 0)
            return;
        queue.push_back(
            Pending{seq, static_cast<std::uint8_t>(reg), value, true});
        ++inFlight[reg];
    }

    /**
     * Record an in-flight define that will NOT architecturally write
     * (a guard-false or-type compare, say). Conservative hardware
     * cannot tell at fetch, so such a define still makes the register
     * unknown until it resolves. Used by the conservative-tracking
     * ablation.
     */
    void
    writeNoop(std::uint64_t seq, unsigned reg)
    {
        pabp_assert(reg < numPredRegs);
        if (reg == 0)
            return;
        queue.push_back(
            Pending{seq, static_cast<std::uint8_t>(reg), false, false});
        ++inFlight[reg];
    }

    /** Make all writes older than @p seq - delay visible. Must be
     *  called with non-decreasing @p seq. Inline (as is the whole
     *  queue machinery): the replay loops call it once per
     *  instruction, and a retirement happens for every pending write,
     *  i.e. once per predicate define. */
    void
    advanceTo(std::uint64_t seq)
    {
        while (!queue.empty() && queue.front().seq + visDelay <= seq)
            retireFront();
    }

    /**
     * Value of predicate @p reg as known at fetch after the last
     * advanceTo(). nullopt when a write is still in flight. p0 always
     * reads true.
     */
    std::optional<bool>
    read(unsigned reg) const
    {
        pabp_assert(reg < numPredRegs);
        if (reg == 0)
            return true;
        if (inFlight[reg] > 0)
            return std::nullopt;
        return visible[reg];
    }

    unsigned delay() const { return visDelay; }
    void reset();

    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);

  private:
    struct Pending
    {
        std::uint64_t seq;
        std::uint8_t reg;
        bool value;
        bool writes;
    };

    /** Apply the front pending write and pop it (advanceTo's loop
     *  body). */
    void
    retireFront()
    {
        const Pending &p = queue.front();
        if (p.writes)
            visible[p.reg] = p.value;
        pabp_assert(inFlight[p.reg] > 0);
        --inFlight[p.reg];
        queue.pop_front();
    }

    unsigned visDelay;
    std::vector<bool> visible;
    std::vector<unsigned> inFlight;
    RingQueue<Pending> queue;
};

} // namespace pabp

#endif // PABP_CORE_DELAYED_PRED_FILE_HH
