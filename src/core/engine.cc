#include "core/engine.hh"

#include <algorithm>

#include "bpred/combining.hh"
#include "bpred/gshare.hh"
#include "bpred/perceptron.hh"
#include "bpred/tage.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace pabp {

// The SIMD class-scan kernels bake the class byte values into their
// compare constants; pin the real enum to them.
static_assert(static_cast<std::uint8_t>(DecodedTrace::Class::Other) ==
              simd::classOther);
static_assert(static_cast<std::uint8_t>(
                  DecodedTrace::Class::CondBranch) ==
              simd::classCondBranch);
static_assert(static_cast<std::uint8_t>(
                  DecodedTrace::Class::UncondControl) ==
              simd::classUncondControl);
static_assert(static_cast<std::uint8_t>(
                  DecodedTrace::Class::PredDefine) ==
              simd::classPredDefine);

PredictionEngine::PredictionEngine(BranchPredictor &base,
                                   EngineConfig config)
    : pred(base), cfg(config), predFile(config.availDelay),
      sfpf(predFile), pgu(base, config.pgu), pvp(config.pvpEntriesLog2),
      jrs(config.jrsEntriesLog2), profile(config.branchProfileCapacity)
{
    if (cfg.modelTargets) {
        ownedBtb = std::make_unique<Btb>(cfg.btbSetsLog2, cfg.btbWays);
        ownedRas = std::make_unique<ReturnAddressStack>(cfg.rasDepth);
        btbPtr = ownedBtb.get();
        rasPtr = ownedRas.get();
    }
}

bool
PredictionEngine::btbAccess(std::uint32_t pc, std::uint32_t next_pc)
{
    // One lookup() + one update() per taken transfer - the policy
    // bpred/btb.hh documents. A tag hit with a stale target is still
    // a target miss: the front end fetched down the wrong path.
    std::optional<std::uint32_t> t = btbPtr->lookup(pc ^ ctxMix);
    const bool miss = !t || *t != next_pc;
    if (miss)
        ++engineStats.btbTargetMisses;
    btbPtr->update(pc ^ ctxMix, next_pc);
    return miss;
}

bool
PredictionEngine::rasReturnAccess(std::uint32_t next_pc)
{
    std::optional<std::uint32_t> t = rasPtr->pop();
    const bool correct = t.has_value() && *t == next_pc;
    if (correct)
        ++engineStats.rasHits;
    else
        ++engineStats.rasMisses;
    return correct;
}

void
PredictionEngine::batchControlEvent(const DecodedTrace &trace,
                                    std::uint32_t i)
{
    // MIRROR of the reference path's non-cond-branch target handling
    // in process(), over the trace's flat lanes. A not-taken event
    // (guarded-false call/branch, or a return that emptied the call
    // stack and halted) touches nothing.
    const bool taken = (trace.flags[i] >> 1) & 1;
    if (!taken)
        return;
    const std::uint32_t pc = trace.pcs[i];
    const Opcode op = trace.prog.insts[pc].op;
    if (op == Opcode::Ret) {
        rasReturnAccess(trace.nextPcs[i]);
    } else {
        if (op == Opcode::Call)
            rasPtr->push(pc + 1);
        btbAccess(pc, trace.nextPcs[i]);
    }
}

ProcessResult
PredictionEngine::processConditionalBranch(const DynInst &dyn)
{
    const Inst &inst = *dyn.inst;
    BranchClassStats &cls =
        inst.regionBranch ? engineStats.region : engineStats.normal;
    BranchProfile::Counters &prof = profile.at(dyn.pc);

    ++prof.lookups;
    // Predicate occupancy at fetch: only the SFPF's delayed file
    // models fetch-visible predicate values; without it armed, every
    // guard is unknown to the front end.
    const bool guard_known =
        cfg.useSfpf && predFile.read(inst.qp).has_value();
    if (guard_known)
        ++prof.guardKnown;
    else
        ++prof.guardUnknown;
    // A PGU bit injected within the history window shaped this
    // prediction's index/weights - attribute it.
    if (cfg.usePgu && shiftsSincePguBit < pguInfluenceWindow)
        ++prof.pguInfluenced;

    bool squash = cfg.useSfpf && sfpf.shouldSquash(inst);

    // Extension: when the guard is unresolved, optionally predict it
    // and squash speculatively (confidence-gated, counted apart).
    bool spec_squash = false;
    if (cfg.useSpeculativeSquash) {
        bool predicted_guard = pvp.predictGuard(dyn.pc);
        bool confident =
            cfg.specGate == EngineConfig::SpecGate::Saturation
                ? pvp.confident(dyn.pc)
                : jrs.highConfidence(dyn.pc);
        if (!squash && cfg.useSfpf && !guard_known && confident &&
            !predicted_guard) {
            spec_squash = true;
        }
        // The value predictor models guards that are UNRESOLVED at
        // fetch - the only branches the speculative path can ever
        // act on. A guard the delayed file already resolved carries
        // no information about the unresolved population, so it must
        // not train the counter (nor score the JRS gate): doing so
        // flooded both tables with the easy, resolved cases and
        // inflated the gate's apparent confidence. (The original
        // code trained unconditionally here; tests/test_stats.cc
        // pins the intended counts.)
        if (!guard_known) {
            pvp.train(dyn.pc, dyn.guard);
            if (cfg.specGate == EngineConfig::SpecGate::Jrs)
                jrs.update(dyn.pc, predicted_guard == dyn.guard);
        }
    }

    bool predicted;
    if (spec_squash) {
        predicted = false;
        ++engineStats.specSquashed;
        ++prof.specSquashes;
        if (dyn.taken)
            ++engineStats.specSquashedWrong;
    } else if (squash) {
        predicted = false;
        sfpf.noteSquash();
        ++engineStats.all.squashed;
        ++cls.squashed;
        ++prof.sfpfSquashes;
        // The filter only fires on resolved-false guards, and a
        // guarded branch with a false guard is architecturally
        // not-taken: squashed predictions are always correct.
        pabp_assert(!dyn.taken);
        if (cfg.trainOnSquashed) {
            (void)pred.predict(dyn.pc ^ ctxMix);
            pred.update(dyn.pc ^ ctxMix, dyn.taken);
            noteHistoryShift();
        }
    } else {
        predicted = pred.predict(dyn.pc ^ ctxMix);
        pred.update(dyn.pc ^ ctxMix, dyn.taken);
        noteHistoryShift();
    }

    ++engineStats.all.branches;
    ++cls.branches;
    if (dyn.taken) {
        ++engineStats.all.taken;
        ++cls.taken;
        ++prof.taken;
    }
    if (!dyn.guard) {
        ++engineStats.all.falseGuard;
        ++cls.falseGuard;
    }
    if (predicted != dyn.taken) {
        ++engineStats.all.mispredicts;
        ++cls.mispredicts;
        ++prof.mispredicts;
    }

    ProcessResult result;
    result.condBranch = true;
    result.mispredicted = predicted != dyn.taken;
    result.squashed = squash;
    result.specSquashed = spec_squash;
    return result;
}

ProcessResult
PredictionEngine::process(const DynInst &dyn)
{
    ++engineStats.insts;
    if (cfg.useSfpf)
        predFile.advanceTo(dyn.seq);
    if (cfg.usePgu && pgu.drainTo(dyn.seq) > 0)
        shiftsSincePguBit = 0;

    ProcessResult result;
    const Inst &inst = *dyn.inst;
    if (inst.op == Opcode::Br) {
        if (inst.qp == 0)
            ++engineStats.uncondBranches;
        else
            result = processConditionalBranch(dyn);
    } else if (inst.op == Opcode::Call || inst.op == Opcode::Ret) {
        ++engineStats.uncondBranches;
    }

    if (cfg.modelTargets) {
        // Target structures speak AFTER the direction decision, and
        // only when the front end actually follows a target: a
        // mispredicted conditional restarts from the resolved outcome
        // (no BTB/RAS involvement), a taken return consults the RAS,
        // and every other taken transfer probes the BTB (a taken call
        // additionally pushes its return address first).
        if (result.condBranch && result.mispredicted) {
            // restart path: target comes from the resolve, not a table
        } else if (inst.op == Opcode::Ret && dyn.taken) {
            result.rasReturn = true;
            result.rasCorrect = rasReturnAccess(dyn.nextPc);
        } else if (dyn.isControl && dyn.taken) {
            if (inst.op == Opcode::Call)
                rasPtr->push(dyn.pc + 1);
            result.targetMiss = btbAccess(dyn.pc, dyn.nextPc);
        }
    }

    if (inst.writesPredicate())
        handlePredicateDefine(dyn);
    return result;
}

void
PredictionEngine::handlePredicateDefine(const DynInst &dyn)
{
    const Inst &inst = *dyn.inst;
    ++engineStats.predicateDefines;
    if (cfg.useSfpf) {
        for (unsigned i = 0; i < dyn.numPredWrites; ++i) {
            predFile.write(dyn.seq, dyn.predWrites[i].reg,
                           dyn.predWrites[i].value);
        }
        if (cfg.conservativeDefTracking) {
            auto written = [&](unsigned reg) {
                for (unsigned i = 0; i < dyn.numPredWrites; ++i)
                    if (dyn.predWrites[i].reg == reg)
                        return true;
                return false;
            };
            if (!written(inst.pdst1))
                predFile.writeNoop(dyn.seq, inst.pdst1);
            if (inst.op == Opcode::Cmp && !written(inst.pdst2))
                predFile.writeNoop(dyn.seq, inst.pdst2);
        }
    }
    if (cfg.usePgu)
        pgu.observe(dyn);
}

template <bool UseSfpf, bool UsePgu, bool UseSpec, typename Pred>
bool
PredictionEngine::batchCondBranch(Pred &bp, std::uint32_t pc,
                                  const Inst &inst, bool guard,
                                  bool taken,
                                  BranchProfile::Counters &prof,
                                  std::uint8_t guardState)
{
    // MIRROR of processConditionalBranch(): the configuration flags
    // are template parameters, the predictor is held by its concrete
    // type where known, the profile row arrives pre-resolved from the
    // caller's cache and the predicate read goes through the batch
    // view - but every counter and every side effect must stay in
    // lockstep with the reference path; any semantic change there
    // lands here too. The fast-vs-reference equivalence tests
    // (tests/test_replay_fast.cc) pin the two bit-identical.
    BranchClassStats &cls =
        inst.regionBranch ? engineStats.region : engineStats.normal;

    ++prof.lookups;
    // A decoded CondBranch is a guarded Br by construction (qp != 0),
    // so SquashFalsePathFilter::shouldSquash() reduces to "qp reads a
    // resolved false" - the define kernel performed that read at this
    // branch's sequence and handed the result over in guardState; one
    // resolved value serves both the guard-known attribution and the
    // squash decision.
    const bool guard_known = UseSfpf && (guardState & 1);
    if (guard_known)
        ++prof.guardKnown;
    else
        ++prof.guardUnknown;
    if (UsePgu && shiftsSincePguBit < pguInfluenceWindow)
        ++prof.pguInfluenced;

    bool squash = guard_known && !(guardState & 2);

    bool spec_squash = false;
    if constexpr (UseSpec) {
        bool predicted_guard = pvp.predictGuard(pc);
        bool confident =
            cfg.specGate == EngineConfig::SpecGate::Saturation
                ? pvp.confident(pc)
                : jrs.highConfidence(pc);
        if (!squash && UseSfpf && !guard_known && confident &&
            !predicted_guard) {
            spec_squash = true;
        }
        // Train only on fetch-unresolved guards; see the reference
        // path for the rationale.
        if (!guard_known) {
            pvp.train(pc, guard);
            if (cfg.specGate == EngineConfig::SpecGate::Jrs)
                jrs.update(pc, predicted_guard == guard);
        }
    }

    bool predicted;
    if (spec_squash) {
        predicted = false;
        ++engineStats.specSquashed;
        ++prof.specSquashes;
        if (taken)
            ++engineStats.specSquashedWrong;
    } else if (squash) {
        predicted = false;
        sfpf.noteSquash();
        ++engineStats.all.squashed;
        ++cls.squashed;
        ++prof.sfpfSquashes;
        pabp_assert(!taken);
        if (cfg.trainOnSquashed) {
            (void)bp.predict(pc ^ ctxMix);
            bp.update(pc ^ ctxMix, taken);
            noteHistoryShift();
        }
    } else {
        predicted = bp.predictAndUpdate(pc ^ ctxMix, taken);
        noteHistoryShift();
    }

    ++engineStats.all.branches;
    ++cls.branches;
    if (taken) {
        ++engineStats.all.taken;
        ++cls.taken;
        ++prof.taken;
    }
    if (!guard) {
        ++engineStats.all.falseGuard;
        ++cls.falseGuard;
    }
    if (predicted != taken) {
        ++engineStats.all.mispredicts;
        ++cls.mispredicts;
        ++prof.mispredicts;
    }
    return predicted != taken;
}

template <bool UseSfpf, bool UsePgu>
PABP_ALWAYS_INLINE void
PredictionEngine::batchPredDefine(const DecodedTrace &trace,
                                  std::uint64_t i)
{
    // MIRROR of handlePredicateDefine() over the trace's flat lanes:
    // the configuration flags are template parameters, no DynInst is
    // built at all (the PGU's batch view observes the lanes through
    // the per-pc kind byte), and the writes land in the batch views
    // instead of the FIFO-backed components - the views' commit()
    // restores byte-identical component state. The caller counts
    // defines in bulk (engineStats.predicateDefines). Any semantic
    // change in the reference handler lands here too; the equivalence
    // tests (tests/test_replay_fast.cc) pin the two event for event.
    if constexpr (UseSfpf) {
        // Both register slots are written unconditionally: dead slots
        // (and p0 writes, which the file discards) route to the
        // overlay's scratch entry, so the data-dependent write count
        // never becomes a host branch. Slot order is preserved for
        // the pathological pdst1 == pdst2 case.
        const unsigned writes = trace.numPredWrites(i);
        const std::uint8_t v = trace.predVal[i];
        const unsigned r0 = writes >= 1 ? trace.predReg0[i]
                                        : BatchPredicateView::trashReg;
        const unsigned r1 = writes >= 2 ? trace.predReg1[i]
                                        : BatchPredicateView::trashReg;
        predView.writeMasked(i, r0, v & 1);
        predView.writeMasked(i, r1, (v >> 1) & 1);
        if (cfg.conservativeDefTracking) {
            const std::uint8_t regs[2] = {trace.predReg0[i],
                                          trace.predReg1[i]};
            const Inst &inst = trace.inst(i);
            auto written = [&](unsigned reg) {
                for (unsigned w = 0; w < writes; ++w)
                    if (regs[w] == reg)
                        return true;
                return false;
            };
            if (!written(inst.pdst1))
                predView.writeNoop(i, inst.pdst1);
            if (inst.op == Opcode::Cmp && !written(inst.pdst2))
                predView.writeNoop(i, inst.pdst2);
        }
    }
    if constexpr (UsePgu)
        pguView.observe(i, pguKind[trace.pcs[i]], trace.flags[i],
                        trace.predVal[i]);
}

template <bool UseSfpf, bool UsePgu, bool UseSpec, typename Pred>
void
PredictionEngine::batchLoop(Pred &bp, const DecodedTrace &trace,
                            std::uint64_t first, std::uint64_t count)
{
    // MIRROR of process() over the trace's flat lanes: no DynInst is
    // built anywhere (predicate defines and the PGU's observe both
    // read the lanes directly), and seq is the lane index by the
    // decoded trace's construction.
    //
    // Three deliberate restructurings, each invisible to every
    // observer (stats, profile, exported metrics, checkpoint bytes -
    // all pinned by tests/test_replay_fast.cc):
    //
    //  1. Deferral, as before: the reference path advances the
    //     predicate file and drains the PGU on EVERY instruction, but
    //     both operations are monotonic and idempotent in seq, and
    //     their state is only read at a conditional branch or after
    //     the run. Performing them at the branch (and syncing at the
    //     batch end) reproduces every read and every counter.
    //     Likewise shiftsSincePguBit (only moves at drains and branch
    //     shifts) and the instruction counter (one add).
    //
    //  2. Batch views: predicate-file writes/reads and PGU
    //     observe/drain run against flat per-batch overlays
    //     (BatchPredicateView, PguBatchView) instead of the
    //     FIFO-backed components, eliminating the queue push/pop per
    //     define. commit() restores the components to byte-identical
    //     state, including the checkpoint-serialised queues.
    //
    //  3. Class scanning: events the configuration only counts
    //     (Other always; UncondControl always; PredDefine when no
    //     predicate technique is armed) are skipped in bulk by a
    //     SIMD compare+popcount scan of the cls lane - the count IS
    //     the processing, and the per-event counter increments farm
    //     into totals nothing can observe mid-batch.
    if (count == 0)
        return;
    engineStats.insts += count;
    const std::uint64_t end = first + count;
    const std::uint64_t endSeq = end - 1;

    // Rebuilt per batch: a profile reset/restore between batches (a
    // reused engine, a checkpoint load) would otherwise leave stale
    // row pointers. Refilling costs one map walk per distinct pc.
    profCache.assign(trace.prog.insts.size(), nullptr);

    constexpr bool definesInteresting = UseSfpf || UsePgu;

    // Replay-schedule cache probe (sim/replay_schedule.hh): the
    // define kernel's outputs are predictor-independent, so a batch
    // over the same (range, predicate config, predicate-component
    // entry state) of this trace has run before - in a sweep, for
    // every predictor after the first - and its recorded schedule
    // lets this replay skip the defines entirely. The key is
    // compared exactly (no hashing), so a hit is always sound; on a
    // miss the kernel runs as normal and `capture` records the
    // schedule for the next identical batch.
    std::shared_ptr<const ReplaySchedule> sched;
    std::shared_ptr<ReplaySchedule> capture;
    if constexpr (definesInteresting) {
        if (trace.schedCache) {
            std::uint64_t preVis = 0;
            keyPredQ.clear();
            keyPguQ.clear();
            if constexpr (UseSfpf) {
                preVis = predFile.visibleBits();
                predFile.exportQueue(keyPredQ);
            }
            if constexpr (UsePgu)
                pgu.exportQueuePacked(keyPguQ);
            const std::uint64_t cfg0 =
                static_cast<std::uint64_t>(cfg.availDelay) |
                (static_cast<std::uint64_t>(cfg.pgu.delay) << 32);
            const std::uint64_t cfg1 =
                (UseSfpf ? 1u : 0u) | (UsePgu ? 2u : 0u) |
                (cfg.conservativeDefTracking ? 4u : 0u) |
                (static_cast<std::uint64_t>(cfg.pgu.source) << 3) |
                (static_cast<std::uint64_t>(cfg.pgu.value) << 5) |
                (cfg.pgu.includePSet ? 128u : 0u);
            sched = trace.schedCache->find(cfg0, cfg1, first, count,
                                           preVis, keyPredQ, keyPguQ);
            if (!sched) {
                capture = std::make_shared<ReplaySchedule>();
                capture->cfg0 = cfg0;
                capture->cfg1 = cfg1;
                capture->first = first;
                capture->count = count;
                capture->preVisibleBits = preVis;
                capture->prePredQueue = keyPredQ;
                capture->prePguLen = keyPguQ.size();
            }
        }
    }
    // With a schedule in hand the define kernel is skipped: defines
    // are counted by the class scan but never visited.
    const bool runDefines = definesInteresting && !sched;

    if constexpr (UseSfpf) {
        if (!sched)
            predView.begin(predFile, endSeq);
    }

    // Target modelling stays a runtime flag (not a fourth template
    // axis): it adds work only at control events, which the class
    // scan already isolates, so doubling the specialisation count
    // would buy nothing.
    const bool targets = cfg.modelTargets;
    if (stopBufCap < count) {
        stopBuf = std::make_unique_for_overwrite<std::uint32_t[]>(
            count);
        stopBufCap = count;
    }
    if (runDefines && defBufCap < count) {
        defBuf = std::make_unique_for_overwrite<std::uint32_t[]>(
            count);
        defBufCap = count;
    }
    if (targets && uncondBufCap < count) {
        uncondBuf = std::make_unique_for_overwrite<std::uint32_t[]>(
            count);
        uncondBufCap = count;
    }
    const simd::CollectResult stops = simd::collectStops(
        trace.cls, first, end, runDefines, stopBuf.get(),
        runDefines ? defBuf.get() : nullptr,
        targets ? uncondBuf.get() : nullptr);
    engineStats.uncondBranches += stops.uncond;
    engineStats.predicateDefines += stops.defines;

    // PGU machinery: on a hit the drain walks the schedule's packed
    // bit stream with a local cursor (the carried queue is its
    // prefix, matched exactly by the probe); on a miss the batch view
    // collects bits from the define kernel as before.
    const std::uint64_t *pq = nullptr;
    std::uint64_t pqN = 0, pqCursor = 0, pqInjected = 0;
    if constexpr (UsePgu) {
        if (sched) {
            pq = sched->pguBits.data();
            pqN = sched->pguBits.size();
        } else {
            // Each define contributes up to two bits (BothWrites), so
            // prior queue + 2x defines bounds the batch's appends.
            pguView.begin(pgu, pguBuf, pguBufCap, 2 * stops.defines);
            pguView.buildKinds(trace.prog.insts, pguKind);
        }
    }
    // Miss-path drain: the batch view scans for ripe bits.
    auto drain = [&](std::uint64_t seq) {
        if (pguView.drainTo(bp, seq) > 0)
            shiftsSincePguBit = 0;
    };
    // Hit-path drain: the schedule already knows the cursor after
    // every drain point (index b for branch b, nBranches for the
    // batch-end drain), so there is no per-entry ripeness scan at
    // all - the k new bits land in one injectHistoryBits() shift.
    // The per-entry fallback covers k > 64 (can only happen with
    // very define-dense gaps between branches) bit-exactly. The
    // concrete-predictor instantiations bind the injection
    // statically; the BranchPredictor fallback keeps the virtual
    // call.
    const std::uint32_t *drainTgt = nullptr;
    const std::uint64_t *drainWord = nullptr;
    if constexpr (UsePgu) {
        if (sched) {
            drainTgt = sched->drainTargets.data();
            drainWord = sched->drainWords.data();
        }
    }
    auto drainSched = [&](std::uint64_t idx) {
        const std::uint32_t tgt = drainTgt[idx];
        if (tgt == pqCursor)
            return;
        const unsigned k = static_cast<unsigned>(tgt - pqCursor);
        if (k <= 64) [[likely]] {
            const std::uint64_t w = drainWord[idx];
            const std::uint64_t bits =
                k == 64 ? w : (w & ((std::uint64_t{1} << k) - 1));
            if constexpr (std::is_same_v<Pred, BranchPredictor>)
                bp.injectHistoryBits(bits, k);
            else
                bp.Pred::injectHistoryBits(bits, k);
        } else {
            for (std::uint64_t c = pqCursor; c < tgt; ++c) {
                if constexpr (std::is_same_v<Pred, BranchPredictor>)
                    bp.injectHistoryBit((pq[c] & 1) != 0);
                else
                    bp.Pred::injectHistoryBit((pq[c] & 1) != 0);
            }
        }
        pqCursor = tgt;
        pqInjected += k;
        shiftsSincePguBit = 0;
    };

    // Branch-major merge of the two ascending index streams: before
    // each branch, a short inner run applies every not-yet-applied
    // define that precedes it (the batch views then carry exactly the
    // state the interleaved order would have had - defines never read
    // predictor or profile state, and their PGU bits ripen strictly
    // by sequence, so a define between two branches can act anywhere
    // between them). The guard is resolved, pending history bits
    // drained and the branch predicted in the same iteration, so no
    // per-event class re-test and no per-branch side buffers exist;
    // the merge's only data-dependent branch is the inner run's exit,
    // one well-predicted test per branch instead of one mispredicting
    // classify per stop event. On a schedule hit the merge vanishes
    // too: guards load from the schedule and only branches remain.
    const std::uint32_t *stop = stopBuf.get();
    const std::uint32_t *defs = defBuf.get();
    const std::uint8_t *cachedGuard = nullptr;
    if (sched) {
        pabp_assert(sched->nBranches == stops.branches);
        if constexpr (UseSfpf)
            cachedGuard = sched->guard.data();
    }
    if (capture) {
        capture->nBranches = stops.branches;
        if constexpr (UseSfpf)
            capture->guard.reserve(stops.branches);
    }
    // Uncond-control merge (target modelling): the BTB and RAS are
    // shared by conditional and unconditional transfers, so the two
    // ascending index streams must be applied in original trace
    // order - same merge shape as the define stream. Defines never
    // touch the target structures, so the two merges are independent.
    const std::uint32_t *uncs = uncondBuf.get();
    std::uint64_t uNext = 0;
    std::uint64_t dNext = 0;
    for (std::uint64_t b = 0; b < stops.branches; ++b) {
        const std::uint32_t i = stop[b];
        if (targets) {
            while (uNext < stops.uncond && uncs[uNext] < i)
                batchControlEvent(trace, uncs[uNext++]);
        }
        if constexpr (definesInteresting) {
            if (!sched) {
                while (dNext < stops.defines && defs[dNext] < i)
                    batchPredDefine<UseSfpf, UsePgu>(trace,
                                                     defs[dNext++]);
            }
        }
        const std::uint32_t pc = trace.pcs[i];
        const Inst &inst = trace.prog.insts[pc];
        std::uint8_t guardState = 0;
        if constexpr (UseSfpf) {
            if (sched) {
                guardState = cachedGuard[b];
            } else {
                const std::optional<bool> g = predView.read(inst.qp, i);
                guardState = g.has_value()
                    ? static_cast<std::uint8_t>(
                          1u | (static_cast<unsigned>(*g) << 1))
                    : 0u;
                if (capture)
                    capture->guard.push_back(guardState);
            }
        }
        if constexpr (UsePgu) {
            if (sched)
                drainSched(b);
            else
                drain(i);
        }
        const std::uint8_t f = trace.flags[i];
        const bool misp = batchCondBranch<UseSfpf, UsePgu, UseSpec>(
            bp, pc, inst, f & 1, (f >> 1) & 1, profileRowFor(pc),
            guardState);
        // Taken and correctly predicted: the front end followed a
        // BTB-supplied target (a mispredict restarts from the resolve
        // instead - no table touch; reference path in process()).
        if (targets && !misp && ((f >> 1) & 1))
            btbAccess(pc, trace.nextPcs[i]);
    }
    if (targets) {
        // Uncond transfers after the last conditional branch.
        while (uNext < stops.uncond)
            batchControlEvent(trace, uncs[uNext++]);
    }
    if constexpr (definesInteresting) {
        // Defines after the last branch of the batch.
        if (!sched) {
            while (dNext < stops.defines)
                batchPredDefine<UseSfpf, UsePgu>(trace, defs[dNext++]);
        }
    }

    // Sync the deferred state to where the reference loop leaves it
    // after its last per-instruction advance/drain, then fold the
    // batch state back into the components, so end-of-run observers
    // (metric gauges, a checkpoint taken after the batch) see
    // identical bytes. A capture records the stream and exit state
    // just before they fold away.
    if constexpr (UsePgu) {
        if (sched) {
            drainSched(stops.branches);
            pgu.commitCachedBatch(pq + pqCursor, pqN - pqCursor,
                                  pqInjected);
        } else {
            drain(endSeq);
            if (capture) {
                const PguBatchView::Pending *s = pguView.streamData();
                const std::size_t n = pguView.streamSize();
                capture->pguBits.reserve(n);
                for (std::size_t k = 0; k < n; ++k)
                    capture->pguBits.push_back(
                        (s[k].seq << 1) |
                        static_cast<std::uint64_t>(s[k].bit ? 1 : 0));
                // Precompute the hit path's drain plan: cumulative
                // cursor and rolling bit word at each branch, plus
                // the batch-end drain - same ripeness rule drainTo()
                // applies, over the same stream, so a replayed batch
                // lands each bit at the same point.
                const std::uint64_t delay = cfg.pgu.delay;
                const std::vector<std::uint64_t> &bits =
                    capture->pguBits;
                pabp_assert(bits.size() <= 0xffffffffu);
                capture->drainTargets.resize(stops.branches + 1);
                capture->drainWords.resize(stops.branches + 1);
                std::uint32_t c = 0;
                std::uint64_t word = 0;
                for (std::uint64_t b = 0; b <= stops.branches; ++b) {
                    const std::uint64_t seq =
                        b < stops.branches ? stop[b] : endSeq;
                    while (c < bits.size() &&
                           (bits[c] >> 1) + delay <= seq) {
                        word = (word << 1) | (bits[c] & 1);
                        ++c;
                    }
                    capture->drainTargets[b] = c;
                    capture->drainWords[b] = word;
                }
            }
            pguView.commit();
        }
    }
    if constexpr (UseSfpf) {
        if (sched) {
            predFile.restoreBatchState(sched->postVisibleBits,
                                       sched->postPredQueue);
        } else {
            predView.commit(); // advanceTo(endSeq) + batch writes
            if (capture) {
                capture->postVisibleBits = predFile.visibleBits();
                predFile.exportQueue(capture->postPredQueue);
            }
        }
    }
    if (capture)
        trace.schedCache->insert(std::move(capture));
}

template <bool UseSfpf, bool UsePgu, bool UseSpec>
void
PredictionEngine::batchDispatch(const DecodedTrace &trace,
                                std::uint64_t first,
                                std::uint64_t count)
{
    // Identify the hot predictors once per batch; inside the loop
    // their final predictAndUpdate then binds statically. Anything
    // else runs the same loop through the base interface (still one
    // virtual call per branch instead of two).
    if (auto *g = dynamic_cast<GSharePredictor *>(&pred))
        batchLoop<UseSfpf, UsePgu, UseSpec>(*g, trace, first, count);
    else if (auto *c = dynamic_cast<CombiningPredictor *>(&pred))
        batchLoop<UseSfpf, UsePgu, UseSpec>(*c, trace, first, count);
    else if (auto *p = dynamic_cast<PerceptronPredictor *>(&pred))
        batchLoop<UseSfpf, UsePgu, UseSpec>(*p, trace, first, count);
    else if (auto *t = dynamic_cast<TagePredictor *>(&pred))
        batchLoop<UseSfpf, UsePgu, UseSpec>(*t, trace, first, count);
    else
        batchLoop<UseSfpf, UsePgu, UseSpec>(pred, trace, first, count);
}

std::uint64_t
PredictionEngine::processBatch(const DecodedTrace &trace,
                               std::uint64_t first,
                               std::uint64_t max_insts)
{
    if (first >= trace.size())
        return first; // clamped, like replayTraceFrom
    std::uint64_t count =
        std::min<std::uint64_t>(max_insts, trace.size() - first);

    // One three-way configuration dispatch per batch; each arm is a
    // loop specialisation containing only its configuration's code.
    if (cfg.useSfpf) {
        if (cfg.usePgu) {
            if (cfg.useSpeculativeSquash)
                batchDispatch<true, true, true>(trace, first, count);
            else
                batchDispatch<true, true, false>(trace, first, count);
        } else {
            if (cfg.useSpeculativeSquash)
                batchDispatch<true, false, true>(trace, first, count);
            else
                batchDispatch<true, false, false>(trace, first, count);
        }
    } else {
        if (cfg.usePgu) {
            if (cfg.useSpeculativeSquash)
                batchDispatch<false, true, true>(trace, first, count);
            else
                batchDispatch<false, true, false>(trace, first, count);
        } else {
            if (cfg.useSpeculativeSquash)
                batchDispatch<false, false, true>(trace, first, count);
            else
                batchDispatch<false, false, false>(trace, first,
                                                   count);
        }
    }
    return first + count;
}

void
PredictionEngine::registerStats(StatGroup &group)
{
    auto engineGauge = [&](const char *name, const std::uint64_t &field) {
        group.gauge(std::string("engine.") + name,
                    [p = &field] { return *p; });
    };
    engineGauge("insts", engineStats.insts);
    engineGauge("uncond_branches", engineStats.uncondBranches);
    engineGauge("predicate_defines", engineStats.predicateDefines);
    struct ClassEntry
    {
        const char *name;
        const BranchClassStats *cls;
    };
    for (auto [name, cls] :
         {ClassEntry{"all", &engineStats.all},
          ClassEntry{"region", &engineStats.region},
          ClassEntry{"normal", &engineStats.normal}}) {
        std::string base = std::string("engine.") + name + ".";
        group.gauge(base + "branches",
                    [cls] { return cls->branches; });
        group.gauge(base + "taken", [cls] { return cls->taken; });
        group.gauge(base + "mispredicts",
                    [cls] { return cls->mispredicts; });
        group.gauge(base + "squashed",
                    [cls] { return cls->squashed; });
        group.gauge(base + "false_guard",
                    [cls] { return cls->falseGuard; });
    }
    engineGauge("spec_squashed", engineStats.specSquashed);
    engineGauge("spec_squashed_wrong", engineStats.specSquashedWrong);
    // Registered only when armed so direction-only runs keep their
    // exported metric files byte-identical to before target modelling
    // existed.
    if (cfg.modelTargets) {
        engineGauge("btb_target_misses", engineStats.btbTargetMisses);
        engineGauge("ras_hits", engineStats.rasHits);
        engineGauge("ras_misses", engineStats.rasMisses);
        btbPtr->registerStats(group, "btb.");
        rasPtr->registerStats(group, "ras.");
    }

    sfpf.registerStats(group, "sfpf.");
    pgu.registerStats(group, "pgu.");
    pvp.registerStats(group, "pvp.");
    jrs.registerStats(group, "jrs.");
    pred.registerStats(group, "pred.");

    group.onReset([this] { resetStats(); });
}

void
PredictionEngine::resetStats()
{
    engineStats = EngineStats{};
    sfpf.resetStats();
    // Components added after the original engine kept their own
    // counters; forgetting them here made a reused engine leak the
    // previous cell's counts into the next (the pgu.inserted
    // double-count bug).
    pgu.resetStats();
    pvp.resetStats();
    jrs.resetStats();
    pred.resetStats();
    if (btbPtr)
        btbPtr->resetStats();
    if (rasPtr)
        rasPtr->resetStats();
    profile.reset();
    shiftsSincePguBit = pguInfluenceWindow;
}

namespace {

/** The fields of EngineStats, serialised in one fixed order. */
template <typename StatsT, typename Fn>
void
forEachStatsField(StatsT &stats, Fn &&fn)
{
    fn(stats.insts);
    fn(stats.uncondBranches);
    fn(stats.predicateDefines);
    for (auto *cls : {&stats.all, &stats.region, &stats.normal}) {
        fn(cls->branches);
        fn(cls->taken);
        fn(cls->mispredicts);
        fn(cls->squashed);
        fn(cls->falseGuard);
    }
    fn(stats.specSquashed);
    fn(stats.specSquashedWrong);
    // Appended at the end (checkpoint layout is append-only within a
    // version; the container version gates the whole file anyway).
    fn(stats.btbTargetMisses);
    fn(stats.rasHits);
    fn(stats.rasMisses);
}

} // anonymous namespace

void
PredictionEngine::saveState(StateSink &sink) const
{
    // Configuration fingerprint: a checkpoint must only restore into
    // an engine armed the same way, or the resumed run would diverge
    // silently from the original.
    sink.writeBool(cfg.useSfpf);
    sink.writeBool(cfg.usePgu);
    sink.writeU32(cfg.availDelay);
    sink.writeBool(cfg.trainOnSquashed);
    sink.writeBool(cfg.conservativeDefTracking);
    sink.writeBool(cfg.useSpeculativeSquash);
    sink.writeU32(cfg.pvpEntriesLog2);
    sink.writeU8(static_cast<std::uint8_t>(cfg.specGate));
    sink.writeU32(cfg.jrsEntriesLog2);
    sink.writeU8(static_cast<std::uint8_t>(cfg.pgu.source));
    sink.writeU8(static_cast<std::uint8_t>(cfg.pgu.value));
    sink.writeBool(cfg.pgu.includePSet);
    sink.writeU32(cfg.pgu.delay);
    sink.writeU32(cfg.branchProfileCapacity);
    sink.writeBool(cfg.modelTargets);
    sink.writeU32(cfg.btbSetsLog2);
    sink.writeU32(cfg.btbWays);
    sink.writeU32(cfg.rasDepth);

    forEachStatsField(engineStats,
                      [&](const std::uint64_t &v) { sink.writeU64(v); });
    sink.writeU64(shiftsSincePguBit);

    predFile.saveState(sink);
    sfpf.saveState(sink);
    pgu.saveState(sink);
    pvp.saveState(sink);
    jrs.saveState(sink);
    profile.saveState(sink);

    sink.writeString(pred.name());
    pred.saveState(sink);

    if (cfg.modelTargets) {
        btbPtr->saveState(sink);
        rasPtr->saveState(sink);
    }
}

Status
PredictionEngine::loadState(StateSource &src)
{
    bool use_sfpf, use_pgu, train_on_squashed, conservative, spec;
    bool pgu_pset = false;
    bool model_targets = false;
    std::uint32_t avail_delay, pvp_log2, jrs_log2, pgu_delay;
    std::uint32_t profile_cap;
    std::uint32_t btb_sets = 0, btb_ways = 0, ras_depth = 0;
    std::uint8_t spec_gate, pgu_source, pgu_value;
    PABP_TRY(src.readBool(use_sfpf));
    PABP_TRY(src.readBool(use_pgu));
    PABP_TRY(src.readPod(avail_delay));
    PABP_TRY(src.readBool(train_on_squashed));
    PABP_TRY(src.readBool(conservative));
    PABP_TRY(src.readBool(spec));
    PABP_TRY(src.readPod(pvp_log2));
    PABP_TRY(src.readPod(spec_gate));
    PABP_TRY(src.readPod(jrs_log2));
    PABP_TRY(src.readPod(pgu_source));
    PABP_TRY(src.readPod(pgu_value));
    PABP_TRY(src.readBool(pgu_pset));
    PABP_TRY(src.readPod(pgu_delay));
    PABP_TRY(src.readPod(profile_cap));
    PABP_TRY(src.readBool(model_targets));
    PABP_TRY(src.readPod(btb_sets));
    PABP_TRY(src.readPod(btb_ways));
    PABP_TRY(src.readPod(ras_depth));
    bool config_matches = use_sfpf == cfg.useSfpf &&
        use_pgu == cfg.usePgu && avail_delay == cfg.availDelay &&
        train_on_squashed == cfg.trainOnSquashed &&
        conservative == cfg.conservativeDefTracking &&
        spec == cfg.useSpeculativeSquash &&
        pvp_log2 == cfg.pvpEntriesLog2 &&
        spec_gate == static_cast<std::uint8_t>(cfg.specGate) &&
        jrs_log2 == cfg.jrsEntriesLog2 &&
        pgu_source == static_cast<std::uint8_t>(cfg.pgu.source) &&
        pgu_value == static_cast<std::uint8_t>(cfg.pgu.value) &&
        pgu_pset == cfg.pgu.includePSet && pgu_delay == cfg.pgu.delay &&
        profile_cap == cfg.branchProfileCapacity &&
        model_targets == cfg.modelTargets &&
        btb_sets == cfg.btbSetsLog2 && btb_ways == cfg.btbWays &&
        ras_depth == cfg.rasDepth;
    if (!config_matches)
        return Status(StatusCode::InvalidArgument,
                      "checkpoint was taken with a different engine "
                      "configuration");

    Status stats_status = Status();
    forEachStatsField(engineStats, [&](std::uint64_t &v) {
        if (stats_status.ok())
            stats_status = src.readPod(v);
    });
    PABP_TRY(std::move(stats_status));
    PABP_TRY(src.readPod(shiftsSincePguBit));

    PABP_TRY(predFile.loadState(src));
    PABP_TRY(sfpf.loadState(src));
    PABP_TRY(pgu.loadState(src));
    PABP_TRY(pvp.loadState(src));
    PABP_TRY(jrs.loadState(src));
    PABP_TRY(profile.loadState(src));

    std::string pred_name;
    PABP_TRY(src.readString(pred_name));
    if (pred_name != pred.name())
        return Status(StatusCode::InvalidArgument,
                      "checkpoint predictor '" + pred_name +
                          "' != configured predictor '" + pred.name() +
                          "'");
    PABP_TRY(pred.loadState(src));

    if (cfg.modelTargets) {
        PABP_TRY(btbPtr->loadState(src));
        PABP_TRY(rasPtr->loadState(src));
    }
    return Status();
}

std::uint64_t
runTrace(Emulator &emu, PredictionEngine &engine, std::uint64_t max_insts)
{
    DynInst dyn;
    std::uint64_t processed = 0;
    while (processed < max_insts && emu.step(dyn)) {
        engine.process(dyn);
        ++processed;
    }
    return processed;
}

std::uint64_t
replayTrace(const RecordedTrace &trace, PredictionEngine &engine,
            std::uint64_t max_insts)
{
    return replayTraceFrom(trace, engine, 0, max_insts);
}

std::uint64_t
replayTraceFrom(const RecordedTrace &trace, PredictionEngine &engine,
                std::uint64_t first, std::uint64_t max_insts)
{
    // Clamp, returning FIRST unchanged: a resume cursor positioned at
    // or past the end of a (shorter) trace must not be yanked back to
    // trace.size() - callers treat the return value as their new
    // cursor, and moving it backwards would silently re-run events.
    if (first >= trace.size())
        return first;
    std::uint64_t count =
        std::min<std::uint64_t>(max_insts, trace.size() - first);
    for (std::uint64_t i = first; i < first + count; ++i)
        engine.process(trace.materialise(i));
    return first + count;
}

} // namespace pabp
