#include "core/engine.hh"

#include <algorithm>

#include "bpred/combining.hh"
#include "bpred/gshare.hh"
#include "bpred/perceptron.hh"
#include "util/logging.hh"

namespace pabp {

PredictionEngine::PredictionEngine(BranchPredictor &base,
                                   EngineConfig config)
    : pred(base), cfg(config), predFile(config.availDelay),
      sfpf(predFile), pgu(base, config.pgu), pvp(config.pvpEntriesLog2),
      jrs(config.jrsEntriesLog2), profile(config.branchProfileCapacity)
{
}

ProcessResult
PredictionEngine::processConditionalBranch(const DynInst &dyn)
{
    const Inst &inst = *dyn.inst;
    BranchClassStats &cls =
        inst.regionBranch ? engineStats.region : engineStats.normal;
    BranchProfile::Counters &prof = profile.at(dyn.pc);

    ++prof.lookups;
    // Predicate occupancy at fetch: only the SFPF's delayed file
    // models fetch-visible predicate values; without it armed, every
    // guard is unknown to the front end.
    const bool guard_known =
        cfg.useSfpf && predFile.read(inst.qp).has_value();
    if (guard_known)
        ++prof.guardKnown;
    else
        ++prof.guardUnknown;
    // A PGU bit injected within the history window shaped this
    // prediction's index/weights - attribute it.
    if (cfg.usePgu && shiftsSincePguBit < pguInfluenceWindow)
        ++prof.pguInfluenced;

    bool squash = cfg.useSfpf && sfpf.shouldSquash(inst);

    // Extension: when the guard is unresolved, optionally predict it
    // and squash speculatively (confidence-gated, counted apart).
    bool spec_squash = false;
    if (cfg.useSpeculativeSquash) {
        bool predicted_guard = pvp.predictGuard(dyn.pc);
        bool confident =
            cfg.specGate == EngineConfig::SpecGate::Saturation
                ? pvp.confident(dyn.pc)
                : jrs.highConfidence(dyn.pc);
        if (!squash && cfg.useSfpf && !guard_known && confident &&
            !predicted_guard) {
            spec_squash = true;
        }
        // The value predictor models guards that are UNRESOLVED at
        // fetch - the only branches the speculative path can ever
        // act on. A guard the delayed file already resolved carries
        // no information about the unresolved population, so it must
        // not train the counter (nor score the JRS gate): doing so
        // flooded both tables with the easy, resolved cases and
        // inflated the gate's apparent confidence. (The original
        // code trained unconditionally here; tests/test_stats.cc
        // pins the intended counts.)
        if (!guard_known) {
            pvp.train(dyn.pc, dyn.guard);
            if (cfg.specGate == EngineConfig::SpecGate::Jrs)
                jrs.update(dyn.pc, predicted_guard == dyn.guard);
        }
    }

    bool predicted;
    if (spec_squash) {
        predicted = false;
        ++engineStats.specSquashed;
        ++prof.specSquashes;
        if (dyn.taken)
            ++engineStats.specSquashedWrong;
    } else if (squash) {
        predicted = false;
        sfpf.noteSquash();
        ++engineStats.all.squashed;
        ++cls.squashed;
        ++prof.sfpfSquashes;
        // The filter only fires on resolved-false guards, and a
        // guarded branch with a false guard is architecturally
        // not-taken: squashed predictions are always correct.
        pabp_assert(!dyn.taken);
        if (cfg.trainOnSquashed) {
            (void)pred.predict(dyn.pc);
            pred.update(dyn.pc, dyn.taken);
            noteHistoryShift();
        }
    } else {
        predicted = pred.predict(dyn.pc);
        pred.update(dyn.pc, dyn.taken);
        noteHistoryShift();
    }

    ++engineStats.all.branches;
    ++cls.branches;
    if (dyn.taken) {
        ++engineStats.all.taken;
        ++cls.taken;
        ++prof.taken;
    }
    if (!dyn.guard) {
        ++engineStats.all.falseGuard;
        ++cls.falseGuard;
    }
    if (predicted != dyn.taken) {
        ++engineStats.all.mispredicts;
        ++cls.mispredicts;
        ++prof.mispredicts;
    }

    ProcessResult result;
    result.condBranch = true;
    result.mispredicted = predicted != dyn.taken;
    result.squashed = squash;
    result.specSquashed = spec_squash;
    return result;
}

ProcessResult
PredictionEngine::process(const DynInst &dyn)
{
    ++engineStats.insts;
    if (cfg.useSfpf)
        predFile.advanceTo(dyn.seq);
    if (cfg.usePgu && pgu.drainTo(dyn.seq) > 0)
        shiftsSincePguBit = 0;

    ProcessResult result;
    const Inst &inst = *dyn.inst;
    if (inst.op == Opcode::Br) {
        if (inst.qp == 0)
            ++engineStats.uncondBranches;
        else
            result = processConditionalBranch(dyn);
    } else if (inst.op == Opcode::Call || inst.op == Opcode::Ret) {
        ++engineStats.uncondBranches;
    }

    if (inst.writesPredicate())
        handlePredicateDefine(dyn);
    return result;
}

void
PredictionEngine::handlePredicateDefine(const DynInst &dyn)
{
    const Inst &inst = *dyn.inst;
    ++engineStats.predicateDefines;
    if (cfg.useSfpf) {
        for (unsigned i = 0; i < dyn.numPredWrites; ++i) {
            predFile.write(dyn.seq, dyn.predWrites[i].reg,
                           dyn.predWrites[i].value);
        }
        if (cfg.conservativeDefTracking) {
            auto written = [&](unsigned reg) {
                for (unsigned i = 0; i < dyn.numPredWrites; ++i)
                    if (dyn.predWrites[i].reg == reg)
                        return true;
                return false;
            };
            if (!written(inst.pdst1))
                predFile.writeNoop(dyn.seq, inst.pdst1);
            if (inst.op == Opcode::Cmp && !written(inst.pdst2))
                predFile.writeNoop(dyn.seq, inst.pdst2);
        }
    }
    if (cfg.usePgu)
        pgu.observe(dyn);
}

template <bool UseSfpf, bool UsePgu, bool UseSpec, typename Pred>
void
PredictionEngine::batchCondBranch(Pred &bp, std::uint32_t pc,
                                  const Inst &inst, bool guard,
                                  bool taken)
{
    // MIRROR of processConditionalBranch(): the configuration flags
    // are template parameters and the predictor is held by its
    // concrete type where known, but every counter and every side
    // effect must stay in lockstep with the reference path - any
    // semantic change there lands here too. The fast-vs-reference
    // equivalence tests (tests/test_replay_fast.cc) pin the two
    // bit-identical.
    BranchClassStats &cls =
        inst.regionBranch ? engineStats.region : engineStats.normal;
    BranchProfile::Counters &prof = profile.at(pc);

    ++prof.lookups;
    // A decoded CondBranch is a guarded Br by construction (qp != 0),
    // so SquashFalsePathFilter::shouldSquash() reduces to "qp reads a
    // resolved false" - one predicate-file read serves both the
    // guard-known attribution and the squash decision.
    std::optional<bool> qp_val;
    if constexpr (UseSfpf)
        qp_val = predFile.read(inst.qp);
    const bool guard_known = UseSfpf && qp_val.has_value();
    if (guard_known)
        ++prof.guardKnown;
    else
        ++prof.guardUnknown;
    if (UsePgu && shiftsSincePguBit < pguInfluenceWindow)
        ++prof.pguInfluenced;

    bool squash = guard_known && !*qp_val;

    bool spec_squash = false;
    if constexpr (UseSpec) {
        bool predicted_guard = pvp.predictGuard(pc);
        bool confident =
            cfg.specGate == EngineConfig::SpecGate::Saturation
                ? pvp.confident(pc)
                : jrs.highConfidence(pc);
        if (!squash && UseSfpf && !guard_known && confident &&
            !predicted_guard) {
            spec_squash = true;
        }
        // Train only on fetch-unresolved guards; see the reference
        // path for the rationale.
        if (!guard_known) {
            pvp.train(pc, guard);
            if (cfg.specGate == EngineConfig::SpecGate::Jrs)
                jrs.update(pc, predicted_guard == guard);
        }
    }

    bool predicted;
    if (spec_squash) {
        predicted = false;
        ++engineStats.specSquashed;
        ++prof.specSquashes;
        if (taken)
            ++engineStats.specSquashedWrong;
    } else if (squash) {
        predicted = false;
        sfpf.noteSquash();
        ++engineStats.all.squashed;
        ++cls.squashed;
        ++prof.sfpfSquashes;
        pabp_assert(!taken);
        if (cfg.trainOnSquashed) {
            (void)bp.predict(pc);
            bp.update(pc, taken);
            noteHistoryShift();
        }
    } else {
        predicted = bp.predictAndUpdate(pc, taken);
        noteHistoryShift();
    }

    ++engineStats.all.branches;
    ++cls.branches;
    if (taken) {
        ++engineStats.all.taken;
        ++cls.taken;
        ++prof.taken;
    }
    if (!guard) {
        ++engineStats.all.falseGuard;
        ++cls.falseGuard;
    }
    if (predicted != taken) {
        ++engineStats.all.mispredicts;
        ++cls.mispredicts;
        ++prof.mispredicts;
    }
}

template <bool UseSfpf, bool UsePgu>
void
PredictionEngine::batchPredDefine(const DecodedTrace &trace,
                                  std::uint64_t i)
{
    // MIRROR of handlePredicateDefine() over the trace's flat lanes:
    // the configuration flags are template parameters and no DynInst
    // is built except for the PGU's observe (materialised inline, so
    // the compiler drops the fields observe never reads). Any
    // semantic change in the reference handler lands here too; the
    // equivalence tests (tests/test_replay_fast.cc) pin the two
    // event for event.
    ++engineStats.predicateDefines;
    if constexpr (UseSfpf) {
        const unsigned writes = trace.numPredWrites(i);
        const std::uint8_t regs[2] = {trace.predReg0[i],
                                      trace.predReg1[i]};
        for (unsigned w = 0; w < writes; ++w)
            predFile.write(i, regs[w], (trace.predVal[i] >> w) & 1);
        if (cfg.conservativeDefTracking) {
            const Inst &inst = *trace.insts[i];
            auto written = [&](unsigned reg) {
                for (unsigned w = 0; w < writes; ++w)
                    if (regs[w] == reg)
                        return true;
                return false;
            };
            if (!written(inst.pdst1))
                predFile.writeNoop(i, inst.pdst1);
            if (inst.op == Opcode::Cmp && !written(inst.pdst2))
                predFile.writeNoop(i, inst.pdst2);
        }
    }
    if constexpr (UsePgu)
        pgu.observe(trace.materialise(i));
}

template <bool UseSfpf, bool UsePgu, bool UseSpec, typename Pred>
void
PredictionEngine::batchLoop(Pred &bp, const DecodedTrace &trace,
                            std::uint64_t first, std::uint64_t count)
{
    // MIRROR of process() over the trace's flat lanes: no DynInst is
    // built on the hot path (predicate defines run the lane-level
    // mirror below; only the PGU's observe still sees a DynInst,
    // materialised inline), and seq is the lane index by the decoded
    // trace's construction.
    //
    // One deliberate reordering: the reference path advances the
    // predicate file and drains the PGU on EVERY instruction, but
    // both operations are monotonic and idempotent in seq, and their
    // state is only ever read at a conditional branch (predFile.read
    // / the history bits a prediction sees) or after the run (gauges,
    // checkpoints). Deferring them to the next branch retires and
    // injects exactly the same entries in the same order before every
    // read, so every prediction, counter and exported byte is
    // unchanged - pinned by tests/test_replay_fast.cc. Likewise
    // shiftsSincePguBit: it only moves at drains and branch shifts,
    // so draining at the branch reproduces its per-branch value.
    // Same deferral for the instruction counter: nothing reads it
    // mid-batch, so the per-instruction increment folds into one add.
    engineStats.insts += count;
    const std::uint64_t end = first + count;
    auto drain = [&](std::uint64_t seq) {
        // The concrete-predictor instantiations bind the per-bit
        // history injection statically; the BranchPredictor fallback
        // keeps the virtual drain.
        unsigned drained;
        if constexpr (std::is_same_v<Pred, BranchPredictor>)
            drained = pgu.drainTo(seq);
        else
            drained = pgu.drainToAs(bp, seq);
        if (drained > 0)
            shiftsSincePguBit = 0;
    };
    for (std::uint64_t i = first; i < end; ++i) {
        switch (static_cast<DecodedTrace::Class>(trace.cls[i])) {
          case DecodedTrace::Class::CondBranch: {
            if constexpr (UseSfpf)
                predFile.advanceTo(i);
            if constexpr (UsePgu)
                drain(i);
            const std::uint8_t f = trace.flags[i];
            batchCondBranch<UseSfpf, UsePgu, UseSpec>(
                bp, trace.pcs[i], *trace.insts[i], f & 1,
                (f >> 1) & 1);
            break;
          }
          case DecodedTrace::Class::UncondControl:
            ++engineStats.uncondBranches;
            break;
          case DecodedTrace::Class::PredDefine:
            batchPredDefine<UseSfpf, UsePgu>(trace, i);
            break;
          case DecodedTrace::Class::Other:
            break;
        }
    }
    // Sync the deferred state to where the reference loop leaves it
    // after its last per-instruction advance/drain, so end-of-run
    // observers (metric gauges, a checkpoint taken after the batch)
    // see identical bytes.
    if (count > 0) {
        if constexpr (UseSfpf)
            predFile.advanceTo(end - 1);
        if constexpr (UsePgu)
            drain(end - 1);
    }
}

template <bool UseSfpf, bool UsePgu, bool UseSpec>
void
PredictionEngine::batchDispatch(const DecodedTrace &trace,
                                std::uint64_t first,
                                std::uint64_t count)
{
    // Identify the hot predictors once per batch; inside the loop
    // their final predictAndUpdate then binds statically. Anything
    // else runs the same loop through the base interface (still one
    // virtual call per branch instead of two).
    if (auto *g = dynamic_cast<GSharePredictor *>(&pred))
        batchLoop<UseSfpf, UsePgu, UseSpec>(*g, trace, first, count);
    else if (auto *c = dynamic_cast<CombiningPredictor *>(&pred))
        batchLoop<UseSfpf, UsePgu, UseSpec>(*c, trace, first, count);
    else if (auto *p = dynamic_cast<PerceptronPredictor *>(&pred))
        batchLoop<UseSfpf, UsePgu, UseSpec>(*p, trace, first, count);
    else
        batchLoop<UseSfpf, UsePgu, UseSpec>(pred, trace, first, count);
}

std::uint64_t
PredictionEngine::processBatch(const DecodedTrace &trace,
                               std::uint64_t first,
                               std::uint64_t max_insts)
{
    if (first >= trace.size())
        return first; // clamped, like replayTraceFrom
    std::uint64_t count =
        std::min<std::uint64_t>(max_insts, trace.size() - first);

    // One three-way configuration dispatch per batch; each arm is a
    // loop specialisation containing only its configuration's code.
    if (cfg.useSfpf) {
        if (cfg.usePgu) {
            if (cfg.useSpeculativeSquash)
                batchDispatch<true, true, true>(trace, first, count);
            else
                batchDispatch<true, true, false>(trace, first, count);
        } else {
            if (cfg.useSpeculativeSquash)
                batchDispatch<true, false, true>(trace, first, count);
            else
                batchDispatch<true, false, false>(trace, first, count);
        }
    } else {
        if (cfg.usePgu) {
            if (cfg.useSpeculativeSquash)
                batchDispatch<false, true, true>(trace, first, count);
            else
                batchDispatch<false, true, false>(trace, first, count);
        } else {
            if (cfg.useSpeculativeSquash)
                batchDispatch<false, false, true>(trace, first, count);
            else
                batchDispatch<false, false, false>(trace, first,
                                                   count);
        }
    }
    return first + count;
}

void
PredictionEngine::registerStats(StatGroup &group)
{
    auto engineGauge = [&](const char *name, const std::uint64_t &field) {
        group.gauge(std::string("engine.") + name,
                    [p = &field] { return *p; });
    };
    engineGauge("insts", engineStats.insts);
    engineGauge("uncond_branches", engineStats.uncondBranches);
    engineGauge("predicate_defines", engineStats.predicateDefines);
    struct ClassEntry
    {
        const char *name;
        const BranchClassStats *cls;
    };
    for (auto [name, cls] :
         {ClassEntry{"all", &engineStats.all},
          ClassEntry{"region", &engineStats.region},
          ClassEntry{"normal", &engineStats.normal}}) {
        std::string base = std::string("engine.") + name + ".";
        group.gauge(base + "branches",
                    [cls] { return cls->branches; });
        group.gauge(base + "taken", [cls] { return cls->taken; });
        group.gauge(base + "mispredicts",
                    [cls] { return cls->mispredicts; });
        group.gauge(base + "squashed",
                    [cls] { return cls->squashed; });
        group.gauge(base + "false_guard",
                    [cls] { return cls->falseGuard; });
    }
    engineGauge("spec_squashed", engineStats.specSquashed);
    engineGauge("spec_squashed_wrong", engineStats.specSquashedWrong);

    sfpf.registerStats(group, "sfpf.");
    pgu.registerStats(group, "pgu.");
    pvp.registerStats(group, "pvp.");
    jrs.registerStats(group, "jrs.");
    pred.registerStats(group, "pred.");

    group.onReset([this] { resetStats(); });
}

void
PredictionEngine::resetStats()
{
    engineStats = EngineStats{};
    sfpf.resetStats();
    // Components added after the original engine kept their own
    // counters; forgetting them here made a reused engine leak the
    // previous cell's counts into the next (the pgu.inserted
    // double-count bug).
    pgu.resetStats();
    pvp.resetStats();
    jrs.resetStats();
    pred.resetStats();
    profile.reset();
    shiftsSincePguBit = pguInfluenceWindow;
}

namespace {

/** The fields of EngineStats, serialised in one fixed order. */
template <typename StatsT, typename Fn>
void
forEachStatsField(StatsT &stats, Fn &&fn)
{
    fn(stats.insts);
    fn(stats.uncondBranches);
    fn(stats.predicateDefines);
    for (auto *cls : {&stats.all, &stats.region, &stats.normal}) {
        fn(cls->branches);
        fn(cls->taken);
        fn(cls->mispredicts);
        fn(cls->squashed);
        fn(cls->falseGuard);
    }
    fn(stats.specSquashed);
    fn(stats.specSquashedWrong);
}

} // anonymous namespace

void
PredictionEngine::saveState(StateSink &sink) const
{
    // Configuration fingerprint: a checkpoint must only restore into
    // an engine armed the same way, or the resumed run would diverge
    // silently from the original.
    sink.writeBool(cfg.useSfpf);
    sink.writeBool(cfg.usePgu);
    sink.writeU32(cfg.availDelay);
    sink.writeBool(cfg.trainOnSquashed);
    sink.writeBool(cfg.conservativeDefTracking);
    sink.writeBool(cfg.useSpeculativeSquash);
    sink.writeU32(cfg.pvpEntriesLog2);
    sink.writeU8(static_cast<std::uint8_t>(cfg.specGate));
    sink.writeU32(cfg.jrsEntriesLog2);
    sink.writeU8(static_cast<std::uint8_t>(cfg.pgu.source));
    sink.writeU8(static_cast<std::uint8_t>(cfg.pgu.value));
    sink.writeBool(cfg.pgu.includePSet);
    sink.writeU32(cfg.pgu.delay);
    sink.writeU32(cfg.branchProfileCapacity);

    forEachStatsField(engineStats,
                      [&](const std::uint64_t &v) { sink.writeU64(v); });
    sink.writeU64(shiftsSincePguBit);

    predFile.saveState(sink);
    sfpf.saveState(sink);
    pgu.saveState(sink);
    pvp.saveState(sink);
    jrs.saveState(sink);
    profile.saveState(sink);

    sink.writeString(pred.name());
    pred.saveState(sink);
}

Status
PredictionEngine::loadState(StateSource &src)
{
    bool use_sfpf, use_pgu, train_on_squashed, conservative, spec;
    bool pgu_pset = false;
    std::uint32_t avail_delay, pvp_log2, jrs_log2, pgu_delay;
    std::uint32_t profile_cap;
    std::uint8_t spec_gate, pgu_source, pgu_value;
    PABP_TRY(src.readBool(use_sfpf));
    PABP_TRY(src.readBool(use_pgu));
    PABP_TRY(src.readPod(avail_delay));
    PABP_TRY(src.readBool(train_on_squashed));
    PABP_TRY(src.readBool(conservative));
    PABP_TRY(src.readBool(spec));
    PABP_TRY(src.readPod(pvp_log2));
    PABP_TRY(src.readPod(spec_gate));
    PABP_TRY(src.readPod(jrs_log2));
    PABP_TRY(src.readPod(pgu_source));
    PABP_TRY(src.readPod(pgu_value));
    PABP_TRY(src.readBool(pgu_pset));
    PABP_TRY(src.readPod(pgu_delay));
    PABP_TRY(src.readPod(profile_cap));
    bool config_matches = use_sfpf == cfg.useSfpf &&
        use_pgu == cfg.usePgu && avail_delay == cfg.availDelay &&
        train_on_squashed == cfg.trainOnSquashed &&
        conservative == cfg.conservativeDefTracking &&
        spec == cfg.useSpeculativeSquash &&
        pvp_log2 == cfg.pvpEntriesLog2 &&
        spec_gate == static_cast<std::uint8_t>(cfg.specGate) &&
        jrs_log2 == cfg.jrsEntriesLog2 &&
        pgu_source == static_cast<std::uint8_t>(cfg.pgu.source) &&
        pgu_value == static_cast<std::uint8_t>(cfg.pgu.value) &&
        pgu_pset == cfg.pgu.includePSet && pgu_delay == cfg.pgu.delay &&
        profile_cap == cfg.branchProfileCapacity;
    if (!config_matches)
        return Status(StatusCode::InvalidArgument,
                      "checkpoint was taken with a different engine "
                      "configuration");

    Status stats_status = Status();
    forEachStatsField(engineStats, [&](std::uint64_t &v) {
        if (stats_status.ok())
            stats_status = src.readPod(v);
    });
    PABP_TRY(std::move(stats_status));
    PABP_TRY(src.readPod(shiftsSincePguBit));

    PABP_TRY(predFile.loadState(src));
    PABP_TRY(sfpf.loadState(src));
    PABP_TRY(pgu.loadState(src));
    PABP_TRY(pvp.loadState(src));
    PABP_TRY(jrs.loadState(src));
    PABP_TRY(profile.loadState(src));

    std::string pred_name;
    PABP_TRY(src.readString(pred_name));
    if (pred_name != pred.name())
        return Status(StatusCode::InvalidArgument,
                      "checkpoint predictor '" + pred_name +
                          "' != configured predictor '" + pred.name() +
                          "'");
    return pred.loadState(src);
}

std::uint64_t
runTrace(Emulator &emu, PredictionEngine &engine, std::uint64_t max_insts)
{
    DynInst dyn;
    std::uint64_t processed = 0;
    while (processed < max_insts && emu.step(dyn)) {
        engine.process(dyn);
        ++processed;
    }
    return processed;
}

std::uint64_t
replayTrace(const RecordedTrace &trace, PredictionEngine &engine,
            std::uint64_t max_insts)
{
    return replayTraceFrom(trace, engine, 0, max_insts);
}

std::uint64_t
replayTraceFrom(const RecordedTrace &trace, PredictionEngine &engine,
                std::uint64_t first, std::uint64_t max_insts)
{
    // Clamp, returning FIRST unchanged: a resume cursor positioned at
    // or past the end of a (shorter) trace must not be yanked back to
    // trace.size() - callers treat the return value as their new
    // cursor, and moving it backwards would silently re-run events.
    if (first >= trace.size())
        return first;
    std::uint64_t count =
        std::min<std::uint64_t>(max_insts, trace.size() - first);
    for (std::uint64_t i = first; i < first + count; ++i)
        engine.process(trace.materialise(i));
    return first + count;
}

} // namespace pabp
