#include "core/engine.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pabp {

PredictionEngine::PredictionEngine(BranchPredictor &base,
                                   EngineConfig config)
    : pred(base), cfg(config), predFile(config.availDelay),
      sfpf(predFile), pgu(base, config.pgu), pvp(config.pvpEntriesLog2),
      jrs(config.jrsEntriesLog2)
{
}

ProcessResult
PredictionEngine::processConditionalBranch(const DynInst &dyn)
{
    const Inst &inst = *dyn.inst;
    BranchClassStats &cls =
        inst.regionBranch ? engineStats.region : engineStats.normal;

    bool squash = cfg.useSfpf && sfpf.shouldSquash(inst);

    // Extension: when the guard is unresolved, optionally predict it
    // and squash speculatively (confidence-gated, counted apart).
    bool spec_squash = false;
    if (cfg.useSpeculativeSquash) {
        bool predicted_guard = pvp.predictGuard(dyn.pc);
        bool confident =
            cfg.specGate == EngineConfig::SpecGate::Saturation
                ? pvp.confident(dyn.pc)
                : jrs.highConfidence(dyn.pc);
        if (!squash && cfg.useSfpf &&
            !predFile.read(inst.qp).has_value() && confident &&
            !predicted_guard) {
            spec_squash = true;
        }
        pvp.train(dyn.pc, dyn.guard);
        if (cfg.specGate == EngineConfig::SpecGate::Jrs)
            jrs.update(dyn.pc, predicted_guard == dyn.guard);
    }

    bool predicted;
    if (spec_squash) {
        predicted = false;
        ++engineStats.specSquashed;
        if (dyn.taken)
            ++engineStats.specSquashedWrong;
    } else if (squash) {
        predicted = false;
        sfpf.noteSquash();
        ++engineStats.all.squashed;
        ++cls.squashed;
        // The filter only fires on resolved-false guards, and a
        // guarded branch with a false guard is architecturally
        // not-taken: squashed predictions are always correct.
        pabp_assert(!dyn.taken);
        if (cfg.trainOnSquashed) {
            (void)pred.predict(dyn.pc);
            pred.update(dyn.pc, dyn.taken);
        }
    } else {
        predicted = pred.predict(dyn.pc);
        pred.update(dyn.pc, dyn.taken);
    }

    ++engineStats.all.branches;
    ++cls.branches;
    if (dyn.taken) {
        ++engineStats.all.taken;
        ++cls.taken;
    }
    if (!dyn.guard) {
        ++engineStats.all.falseGuard;
        ++cls.falseGuard;
    }
    if (predicted != dyn.taken) {
        ++engineStats.all.mispredicts;
        ++cls.mispredicts;
    }

    ProcessResult result;
    result.condBranch = true;
    result.mispredicted = predicted != dyn.taken;
    result.squashed = squash;
    return result;
}

ProcessResult
PredictionEngine::process(const DynInst &dyn)
{
    ++engineStats.insts;
    if (cfg.useSfpf)
        predFile.advanceTo(dyn.seq);
    if (cfg.usePgu)
        pgu.drainTo(dyn.seq);

    ProcessResult result;
    const Inst &inst = *dyn.inst;
    if (inst.op == Opcode::Br) {
        if (inst.qp == 0)
            ++engineStats.uncondBranches;
        else
            result = processConditionalBranch(dyn);
    } else if (inst.op == Opcode::Call || inst.op == Opcode::Ret) {
        ++engineStats.uncondBranches;
    }

    if (inst.writesPredicate()) {
        ++engineStats.predicateDefines;
        if (cfg.useSfpf) {
            for (unsigned i = 0; i < dyn.numPredWrites; ++i) {
                predFile.write(dyn.seq, dyn.predWrites[i].reg,
                               dyn.predWrites[i].value);
            }
            if (cfg.conservativeDefTracking) {
                auto written = [&](unsigned reg) {
                    for (unsigned i = 0; i < dyn.numPredWrites; ++i)
                        if (dyn.predWrites[i].reg == reg)
                            return true;
                    return false;
                };
                if (!written(inst.pdst1))
                    predFile.writeNoop(dyn.seq, inst.pdst1);
                if (inst.op == Opcode::Cmp && !written(inst.pdst2))
                    predFile.writeNoop(dyn.seq, inst.pdst2);
            }
        }
        if (cfg.usePgu)
            pgu.observe(dyn);
    }
    return result;
}

void
PredictionEngine::resetStats()
{
    engineStats = EngineStats{};
    sfpf.resetStats();
}

std::uint64_t
runTrace(Emulator &emu, PredictionEngine &engine, std::uint64_t max_insts)
{
    DynInst dyn;
    std::uint64_t processed = 0;
    while (processed < max_insts && emu.step(dyn)) {
        engine.process(dyn);
        ++processed;
    }
    return processed;
}

std::uint64_t
replayTrace(const RecordedTrace &trace, PredictionEngine &engine,
            std::uint64_t max_insts)
{
    std::uint64_t limit =
        std::min<std::uint64_t>(max_insts, trace.size());
    for (std::uint64_t i = 0; i < limit; ++i)
        engine.process(trace.materialise(i));
    return limit;
}

} // namespace pabp
