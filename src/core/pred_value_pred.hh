/**
 * @file
 * Predicate value predictor - an extension beyond the paper's two
 * techniques. The squash false path filter refuses to act when the
 * guarding predicate has an in-flight define (value unknown at
 * fetch); this component predicts the unresolved guard with a small
 * PC-indexed counter table so the branch can be *speculatively*
 * squashed. Unlike the filter proper, this path is not 100% accurate:
 * a wrong guard prediction can turn into a branch mispredict. The
 * engine keeps the two mechanisms' statistics separate so the trade
 * is measurable (bench E14).
 */

#ifndef PABP_CORE_PRED_VALUE_PRED_HH
#define PABP_CORE_PRED_VALUE_PRED_HH

#include <cstdint>
#include <vector>

#include "util/sat_counter.hh"
#include "util/serialize.hh"
#include "util/stats.hh"
#include "util/status.hh"

namespace pabp {

/** PC-indexed 2-bit predictor of a branch's guard value. */
class PredicateValuePredictor
{
  public:
    explicit PredicateValuePredictor(unsigned entries_log2 = 10);

    /** Predicted guard value for the branch at @p pc. */
    bool predictGuard(std::uint32_t pc) const;

    /** Train with the architecturally resolved guard value. The
     *  engine calls this ONLY for branches whose guard was unresolved
     *  at fetch - the population the speculative path can act on;
     *  resolved guards would flood the table with easy cases and
     *  inflate the confidence gate (see processConditionalBranch). */
    void train(std::uint32_t pc, bool guard);

    /** Confidence gate: only act on saturated counters. */
    bool confident(std::uint32_t pc) const;

    void reset();
    std::size_t storageBits() const { return table.size() * 2; }

    /** @name Observability
     * trains() counts training events - one per conditional branch
     * whose guard was UNRESOLVED at fetch, with the extension armed
     * (pinned by tests/test_stats.cc); checkpointed alongside the
     * table.
     * @{ */
    std::uint64_t trains() const { return trainCount; }
    void registerStats(StatGroup &group, const std::string &prefix);
    void resetStats() { trainCount = 0; }
    /** @} */

    void
    saveState(StateSink &sink) const
    {
        sink.writeCounters(table);
        sink.writeU64(trainCount);
    }
    Status
    loadState(StateSource &src)
    {
        PABP_TRY(src.readCounters(table));
        return src.readPod(trainCount);
    }

  private:
    std::vector<SatCounter> table;
    std::uint64_t trainCount = 0;

    std::size_t index(std::uint32_t pc) const
    {
        return pc & (table.size() - 1);
    }
};

} // namespace pabp

#endif // PABP_CORE_PRED_VALUE_PRED_HH
