#include "core/pred_value_pred.hh"

#include "util/logging.hh"

namespace pabp {

PredicateValuePredictor::PredicateValuePredictor(unsigned entries_log2)
    : table(std::size_t{1} << entries_log2, SatCounter(2))
{
    pabp_assert(entries_log2 >= 1 && entries_log2 <= 20);
}

bool
PredicateValuePredictor::predictGuard(std::uint32_t pc) const
{
    return table[index(pc)].predictTaken();
}

void
PredicateValuePredictor::train(std::uint32_t pc, bool guard)
{
    ++trainCount;
    table[index(pc)].update(guard);
}

void
PredicateValuePredictor::registerStats(StatGroup &group,
                                       const std::string &prefix)
{
    group.gauge(prefix + "trains", [this] { return trainCount; });
}

bool
PredicateValuePredictor::confident(std::uint32_t pc) const
{
    return table[index(pc)].isSaturated();
}

void
PredicateValuePredictor::reset()
{
    for (auto &c : table)
        c = SatCounter(2);
}

} // namespace pabp
