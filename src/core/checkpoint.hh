/**
 * @file
 * Checkpoint/resume for long simulations. A checkpoint captures the
 * *dynamic* state of a run - architectural state + emulator position,
 * prediction-engine statistics and structures, predictor tables - but
 * never the configuration that produced it: a resumed run rebuilds
 * its objects the same way the original did, and loadCheckpoint()
 * verifies (engine fingerprint, predictor name, table geometry,
 * program size) that the two actually match, returning
 * InvalidArgument when they do not.
 *
 * On-disk layout (little-endian):
 *   | magic "PABPCKP1" | u32 version = 2
 *   | u8 section mask (1 = emulator, 2 = engine, 4 = stream position)
 *   | section payloads in mask order
 *   | u32 crc   - CRC-32 of mask + payloads
 *   | footer "PABPCKPE"
 *
 * saveCheckpoint() writes to "<path>.tmp" and renames into place, so
 * a crash mid-write can never destroy the previous good checkpoint.
 * On any load failure the target objects are left partially
 * modified; callers must treat them as scratch until a load succeeds.
 */

#ifndef PABP_CORE_CHECKPOINT_HH
#define PABP_CORE_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "core/engine.hh"
#include "sim/emulator.hh"
#include "util/status.hh"

namespace pabp {

/**
 * What to checkpoint / where to restore. Null members are simply not
 * part of the artifact; load requires the same set of members the
 * save provided (the section mask is verified).
 */
struct CheckpointRefs
{
    Emulator *emu = nullptr;
    PredictionEngine *engine = nullptr;
    std::uint64_t *streamPos = nullptr; ///< replay cursor, for
                                        ///< trace-driven runs
};

/** Atomically write a checkpoint of every non-null ref. */
Status saveCheckpoint(const std::string &path,
                      const CheckpointRefs &refs);

/** Restore every non-null ref from @p path. */
Status loadCheckpoint(const std::string &path,
                      const CheckpointRefs &refs);

} // namespace pabp

#endif // PABP_CORE_CHECKPOINT_HH
