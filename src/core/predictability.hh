/**
 * @file
 * Predictor-independent workload predictability metrics.
 *
 * The SFPF/PGU gains measured elsewhere in this repo are only
 * meaningful relative to how predictable the workload was in the
 * first place. Following the workload-characterization literature
 * (PAPERS.md), this module computes three predictor-independent
 * metrics over a recorded or decoded trace, per static conditional
 * branch and aggregated occurrence-weighted over the whole trace:
 *
 *  - taken rate: fraction of dynamic outcomes that were taken,
 *  - transition rate: fraction of outcomes that differed from the
 *    same static branch's previous outcome,
 *  - history-conditioned entropy H(outcome | last-k outcomes) in
 *    bits, for a configurable set of history lengths k (default
 *    {0, 4, 8, 16}). k = 0 is the unconditioned outcome entropy; a
 *    branch whose behaviour a k-bit local history fully determines
 *    has H = 0 at that k.
 *
 * The estimator is frequentist: for each (pc, k) the last k outcomes
 * form a pattern, and the entropy is the pattern-frequency-weighted
 * binary entropy of the outcome distribution per pattern. The first
 * k occurrences of a PC are warm-up and are NOT counted into the
 * k-conditioned table (they have no full history), which makes the
 * analytic pins exact: a period-2 alternator has H(k>=1) == 0, not
 * "approximately 0 once the cold start washes out".
 *
 * Like BranchProfile, every table is bounded with a deterministic
 * eviction policy and an explicit remainder - nothing is silently
 * truncated:
 *  - at most pcCapacity static PCs are tracked; at capacity the PC
 *    with the fewest occurrences (ties: highest PC) is folded into
 *    the evicted remainder (occurrence/taken/transition counts stay
 *    exact; its entropy tables are dropped and counted in
 *    evictedBranches),
 *  - at most patternCapacity distinct patterns per (pc, k); at
 *    capacity the pattern with the fewest observations (ties:
 *    highest pattern) is folded into a per-(pc, k) remainder bucket
 *    whose entropy contribution is computed as one merged pattern
 *    (an upper bound on the true contribution).
 *
 * Exported metric names ("predictability.*") are documented in
 * docs/OBSERVABILITY.md; byte stability is pinned by a golden test.
 */

#ifndef PABP_CORE_PREDICTABILITY_HH
#define PABP_CORE_PREDICTABILITY_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/h2p.hh"
#include "sim/decoded_trace.hh"
#include "sim/trace_io.hh"
#include "util/metrics.hh"
#include "util/status.hh"

namespace pabp {

/** Knobs for PredictabilityAnalyzer. */
struct PredictabilityConfig
{
    /** History lengths to condition on, each <= 31, strictly
     *  increasing. 0 = unconditioned outcome entropy. */
    std::vector<unsigned> historyLengths = {0, 4, 8, 16};
    /** Max distinct static PCs tracked (0 = unbounded is NOT
     *  offered; mirror BranchProfile's default). */
    std::size_t pcCapacity = 1024;
    /** Max distinct history patterns per (pc, k). */
    std::size_t patternCapacity = 4096;
};

/** The computed metrics for one trace. */
struct PredictabilityReport
{
    /** Per-static-branch metrics. Entropy vectors parallel
     *  historyLengths. */
    struct PerPc
    {
        std::uint64_t occurrences = 0;
        std::uint64_t taken = 0;
        std::uint64_t transitions = 0;
        /** H(outcome | last-k outcomes) in bits, one per k. */
        std::vector<double> entropy;
        /** Outcomes counted into each k's table (occurrences minus
         *  the k-step warm-up). */
        std::vector<std::uint64_t> conditioned;

        double
        takenRate() const
        {
            return occurrences ? static_cast<double>(taken) /
                    static_cast<double>(occurrences)
                               : 0.0;
        }
        double
        transitionRate() const
        {
            return occurrences ? static_cast<double>(transitions) /
                    static_cast<double>(occurrences)
                               : 0.0;
        }
    };

    std::vector<unsigned> historyLengths;
    std::map<std::uint32_t, PerPc> perPc;

    /** Whole-trace totals, INCLUDING the evicted remainder - the
     *  trace-level rates are exact regardless of pcCapacity. */
    std::uint64_t occurrences = 0;
    std::uint64_t taken = 0;
    std::uint64_t transitions = 0;
    /** Occurrence-weighted mean of per-PC entropies, one per k
     *  (weights are each PC's conditioned count for that k). */
    std::vector<double> entropy;
    std::vector<std::uint64_t> conditioned;

    /** Eviction remainder (PC-level folds). */
    std::uint64_t evictedBranches = 0;
    std::uint64_t evictedOccurrences = 0;
    std::uint64_t evictedTaken = 0;
    std::uint64_t evictedTransitions = 0;
    /** Pattern-level folds summed across every (pc, k) table. */
    std::uint64_t evictedPatterns = 0;

    double
    takenRate() const
    {
        return occurrences ? static_cast<double>(taken) /
                static_cast<double>(occurrences)
                           : 0.0;
    }
    double
    transitionRate() const
    {
        return occurrences ? static_cast<double>(transitions) /
                static_cast<double>(occurrences)
                           : 0.0;
    }
};

/**
 * Streaming predictability estimator. Feed it every conditional-
 * branch outcome in trace order via observe(), then report().
 */
class PredictabilityAnalyzer
{
  public:
    /** @p cfg is validated: empty/oversized/non-increasing history
     *  lengths are clamped fatal-free by the caller using
     *  validateConfig() first; the constructor asserts. */
    explicit PredictabilityAnalyzer(PredictabilityConfig cfg = {});

    /** Typed validation for CLI-supplied configs. */
    static Status validateConfig(const PredictabilityConfig &cfg);

    /** Record one dynamic conditional-branch outcome. */
    void observe(std::uint32_t pc, bool taken);

    /** Compute the report over everything observed so far. */
    PredictabilityReport report() const;

    std::uint64_t observed() const { return total; }

  private:
    struct PatternTable
    {
        /** pattern -> [not-taken, taken] observation counts. */
        std::map<std::uint32_t, std::array<std::uint64_t, 2>> counts;
        /** Folded-pattern remainder bucket. */
        std::array<std::uint64_t, 2> remainder = {0, 0};
        std::uint64_t evictedPatterns = 0;
    };

    struct PcState
    {
        std::uint64_t occurrences = 0;
        std::uint64_t taken = 0;
        std::uint64_t transitions = 0;
        bool lastOutcome = false;
        /** Last outcomes, newest in bit 0. */
        std::uint32_t history = 0;
        std::vector<PatternTable> tables; ///< one per history length
    };

    PcState &stateFor(std::uint32_t pc);
    void recordPattern(PatternTable &t, std::uint32_t pattern,
                       bool taken);

    PredictabilityConfig cfg;
    std::map<std::uint32_t, PcState> table;
    std::uint64_t total = 0;
    std::uint64_t evictedBranches = 0;
    std::uint64_t evictedOccurrences = 0;
    std::uint64_t evictedTaken = 0;
    std::uint64_t evictedTransitions = 0;
    std::uint64_t evictedPatterns = 0;
};

/** Binary entropy in bits; Hb(0) == Hb(1) == 0. */
double binaryEntropy(double p);

/**
 * Characterize the conditional-branch stream of a trace. Events are
 * classified exactly like the prediction engine (a Br with a
 * qualifying predicate); @p max_events == 0 means the whole trace,
 * otherwise only the first max_events trace events are scanned -
 * matching a replay budget so characterization and measurement see
 * the same stream.
 */
PredictabilityReport
characterizeTrace(const RecordedTrace &trace,
                  const PredictabilityConfig &cfg = {},
                  std::uint64_t max_events = 0);
PredictabilityReport
characterizeTrace(const DecodedTrace &trace,
                  const PredictabilityConfig &cfg = {},
                  std::uint64_t max_events = 0);

/**
 * Export under "<prefix>.*": whole-trace metrics plus a
 * "<prefix>" table (one row per tracked PC, PC ascending; entropies
 * as integer millibits since table rows are integral).
 */
void exportPredictability(MetricsExporter &ex,
                          const PredictabilityReport &report,
                          const std::string &prefix = "predictability");

/** Column names of the exported table, in row order. */
std::vector<std::string>
predictabilityTableColumns(const std::vector<unsigned> &history_lengths);

/**
 * Cross-reference with an H2P classification: re-aggregate the
 * report's per-PC metrics over @p cls's tier sets and export
 * "<prefix>.tier<i>.*" (occurrence-weighted entropies, taken and
 * transition rates, matched-branch coverage). Answers "are the H2P
 * branches the low-predictability ones?" per sweep cell.
 */
void aggregatePredictabilityByTier(
    MetricsExporter &ex, const H2pClassification &cls,
    const PredictabilityReport &report,
    const std::string &prefix = "predictability");

} // namespace pabp

#endif // PABP_CORE_PREDICTABILITY_HH
