/**
 * @file
 * Per-static-branch attribution table.
 *
 * Whole-run aggregates (EngineStats) say *whether* a technique helped;
 * this table says *which* static branches it helped - the per-PC
 * breakdown where, as the branch-predictability literature shows, a
 * handful of hard branches dominate MPKI. The engine attributes every
 * conditional-branch event to its static PC: lookups, mispredicts,
 * SFPF squashes, speculative squashes, PGU-influenced predictions,
 * and whether the qualifying predicate was known or unknown at fetch.
 *
 * The table is bounded: at most @ref capacity distinct PCs are
 * tracked, and when a new PC arrives at capacity, the entry with the
 * fewest mispredicts (ties: fewest lookups, then highest PC -
 * deterministic) is folded into an explicit "evicted" remainder
 * bucket. Nothing is silently truncated: tracked + evicted always
 * accounts for every event observed.
 */

#ifndef PABP_CORE_BRANCH_PROFILE_HH
#define PABP_CORE_BRANCH_PROFILE_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "util/metrics.hh"
#include "util/serialize.hh"
#include "util/status.hh"

namespace pabp {

/** Bounded per-PC branch attribution with an eviction remainder. */
class BranchProfile
{
  public:
    /** Per-branch event counters. */
    struct Counters
    {
        std::uint64_t lookups = 0;       ///< dynamic instances seen
        std::uint64_t taken = 0;
        std::uint64_t mispredicts = 0;
        std::uint64_t sfpfSquashes = 0;  ///< filtered, 100% accurate
        std::uint64_t specSquashes = 0;  ///< speculative (extension)
        std::uint64_t pguInfluenced = 0; ///< PGU bit live in history
        std::uint64_t guardKnown = 0;    ///< qp resolved at fetch
        std::uint64_t guardUnknown = 0;  ///< qp in flight at fetch

        bool operator==(const Counters &) const = default;

        void
        accumulate(const Counters &other)
        {
            lookups += other.lookups;
            taken += other.taken;
            mispredicts += other.mispredicts;
            sfpfSquashes += other.sfpfSquashes;
            specSquashes += other.specSquashes;
            pguInfluenced += other.pguInfluenced;
            guardKnown += other.guardKnown;
            guardUnknown += other.guardUnknown;
        }
    };

    /** @param capacity Max distinct PCs tracked; 0 disables the
     *         table entirely (every event goes to the remainder). */
    explicit BranchProfile(std::size_t capacity = 1024)
        : cap(capacity)
    {}

    /**
     * Counters for the branch at @p pc, creating (and possibly
     * evicting) as needed. With capacity 0 the remainder bucket is
     * returned and @ref evictedBranches stays 0.
     */
    Counters &at(std::uint32_t pc);

    std::size_t size() const { return table.size(); }
    std::size_t capacity() const { return cap; }
    const std::map<std::uint32_t, Counters> &entries() const
    {
        return table;
    }
    const Counters &evictedRemainder() const { return evicted; }
    std::uint64_t evictedBranches() const { return evictedCount; }

    /** Tracked entries sorted by mispredicts desc, then PC asc;
     *  @p k == 0 returns all. */
    std::vector<std::pair<std::uint32_t, Counters>>
    topByMispredicts(std::size_t k = 0) const;

    /** Zero everything (the table forgets its PCs too). */
    void reset();

    bool operator==(const BranchProfile &) const = default;

    /** @name Checkpointing
     * The whole table plus the remainder, so a resumed run's
     * exported attribution is identical to an uninterrupted one.
     * @{ */
    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);
    /** @} */

    /**
     * Export into @p ex: a "branches" table (one row per tracked PC,
     * sorted by mispredicts desc) plus "branch_profile.*" summary
     * metrics including the evicted remainder.
     */
    void exportTo(MetricsExporter &ex) const;

    /** Column names of the exported "branches" table, in row order. */
    static std::vector<std::string> tableColumns();

  private:
    std::size_t cap;
    std::map<std::uint32_t, Counters> table;
    Counters evicted;
    std::uint64_t evictedCount = 0;
};

} // namespace pabp

#endif // PABP_CORE_BRANCH_PROFILE_HH
