/**
 * @file
 * The predicate global update (PGU) mechanism - the paper's second
 * technique.
 *
 * Conventional global history only records branch outcomes; after
 * if-conversion the branches that carried the correlation have become
 * predicate defines and vanish from the history, so region-based
 * branches lose their correlated context. PGU restores it by shifting
 * the outcome of each predicate define into the predictor's global
 * history register when the define resolves.
 *
 * Because defines resolve in the backend, their bits reach the history
 * a few instructions after the define is fetched; this delay is
 * modelled the same way as in the delayed predicate file.
 */

#ifndef PABP_CORE_PGU_HH
#define PABP_CORE_PGU_HH

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "bpred/predictor.hh"
#include "isa/inst.hh"
#include "sim/emulator.hh"
#include "util/logging.hh"
#include "util/ring_queue.hh"
#include "util/serialize.hh"
#include "util/stats.hh"
#include "util/status.hh"

namespace pabp {

/** Which predicate defines contribute history bits. */
enum class PguSource : std::uint8_t
{
    AllCmps,     ///< every compare instruction
    RegionCmps,  ///< only compares inside predicated regions (models a
                 ///< compiler hint bit on the define)
};

/** Which value of a define is inserted. */
enum class PguValue : std::uint8_t
{
    Rel,        ///< the comparison outcome, when the guard was true
    FirstWrite, ///< the first predicate value actually written
    BothWrites, ///< both written predicate values (2 bits for unc)
};

/** PGU configuration. */
struct PguConfig
{
    PguSource source = PguSource::AllCmps;
    PguValue value = PguValue::Rel;
    /** Also insert pset pseudo-define outcomes. */
    bool includePSet = false;
    /** Instructions from define to history visibility. */
    unsigned delay = 8;
};

/**
 * Collects predicate-define outcomes from the dynamic stream and
 * injects them into a base predictor's global history with the
 * configured delay.
 */
class PredicateGlobalUpdate
{
  public:
    PredicateGlobalUpdate(BranchPredictor &base, PguConfig config)
        : pred(base), cfg(config)
    {}

    /** Observe one executed instruction; queue its history bits.
     *  Inline: both replay loops call it for every predicate define,
     *  which is a fifth to a third of an if-converted stream. */
    void
    observe(const DynInst &dyn)
    {
        const Inst &inst = *dyn.inst;
        bool is_cmp = inst.op == Opcode::Cmp;
        bool is_pset = inst.op == Opcode::PSet;
        if (!is_cmp && !(is_pset && cfg.includePSet))
            return;
        if (cfg.source == PguSource::RegionCmps && inst.regionId < 0)
            return;

        switch (cfg.value) {
          case PguValue::Rel:
            // Insert the comparison outcome for guarded-true
            // compares; a guard-false compare computed nothing worth
            // recording.
            if (is_cmp && dyn.guard)
                queue.push_back(Pending{dyn.seq, dyn.cmpRel});
            else if (is_pset && dyn.guard)
                queue.push_back(Pending{dyn.seq, (inst.imm & 1) != 0});
            break;
          case PguValue::FirstWrite:
            if (dyn.numPredWrites > 0)
                queue.push_back(
                    Pending{dyn.seq, dyn.predWrites[0].value});
            break;
          case PguValue::BothWrites:
            for (unsigned i = 0; i < dyn.numPredWrites; ++i)
                queue.push_back(
                    Pending{dyn.seq, dyn.predWrites[i].value});
            break;
        }
    }

    /** Inject all bits that have resolved by @p seq. Call before the
     *  prediction of the branch at @p seq. Returns how many bits
     *  were injected (the engine uses this to attribute
     *  PGU-influenced predictions per branch). Inline: the replay
     *  loops call it per instruction, and with defines a fifth to a
     *  third of the stream a bit ripens on a sizeable fraction of
     *  those calls. */
    unsigned
    drainTo(std::uint64_t seq)
    {
        unsigned drained = 0;
        while (!queue.empty() && queue.front().seq + cfg.delay <= seq) {
            pred.injectHistoryBit(queue.front().bit);
            ++inserted;
            ++drained;
            queue.pop_front();
        }
        return drained;
    }

    /**
     * drainTo() with the base predictor supplied by its concrete
     * static type, so injectHistoryBit binds without a virtual
     * dispatch per bit - the batched replay loop's variant. @p p MUST
     * be the very predictor this PGU was constructed over (asserted);
     * the qualified call then lands on exactly the override the
     * virtual call would have picked.
     */
    template <typename P>
    unsigned
    drainToAs(P &p, std::uint64_t seq)
    {
        pabp_assert(static_cast<BranchPredictor *>(&p) == &pred);
        unsigned drained = 0;
        while (!queue.empty() && queue.front().seq + cfg.delay <= seq) {
            p.P::injectHistoryBit(queue.front().bit);
            ++inserted;
            ++drained;
            queue.pop_front();
        }
        return drained;
    }

    std::uint64_t bitsInserted() const { return inserted; }
    std::uint64_t pendingBits() const { return queue.size(); }
    const PguConfig &config() const { return cfg; }
    void reset();

    /** @name Replay-schedule state exchange (core/engine.cc)
     * The batched replay loop keys its per-trace schedule cache on
     * the exact pending queue (packed seq << 1 | bit, the schedule's
     * stream encoding) and, on a hit, commits the un-drained stream
     * suffix straight back as the queue - the same bytes the batch
     * view's commit() would have produced.
     * @{ */
    void
    exportQueuePacked(std::vector<std::uint64_t> &out) const
    {
        out.clear();
        queue.forEach([&](const Pending &p) {
            out.push_back((p.seq << 1) |
                          static_cast<std::uint64_t>(p.bit ? 1 : 0));
        });
    }

    void
    commitCachedBatch(const std::uint64_t *packedLeft, std::size_t n,
                      std::uint64_t injected)
    {
        queue.clear();
        for (std::size_t i = 0; i < n; ++i)
            queue.push_back(
                Pending{packedLeft[i] >> 1, (packedLeft[i] & 1) != 0});
        inserted += injected;
    }
    /** @} */

    /** Zero the insertion counter; the pending queue (state, not a
     *  statistic) survives. Engine resetStats() delegates here - it
     *  used to forget to, so a reused engine carried the previous
     *  cell's bit count into the next one. */
    void resetStats() { inserted = 0; }

    void
    registerStats(StatGroup &group, const std::string &prefix)
    {
        group.gauge(prefix + "bits_inserted",
                    [this] { return inserted; });
        group.gauge(prefix + "pending_bits",
                    [this] { return queue.size(); });
    }

    /** Pending-bit queue and insertion count; the base predictor's
     *  own state is checkpointed by its owner. */
    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);

    /** One queued history bit (public so PguBatchView's scratch
     *  buffer can name it; the queue itself stays private). */
    struct Pending
    {
        std::uint64_t seq;
        bool bit;
    };

  private:
    BranchPredictor &pred;
    PguConfig cfg;
    RingQueue<Pending> queue;
    std::uint64_t inserted = 0;

    friend class PguBatchView;
};

/**
 * Flat-buffer overlay over a PGU for one batch of the replay loop.
 *
 * The reference path pays a RingQueue push per observed define and a
 * pop per injected bit, plus a DynInst materialisation just to call
 * observe(). Within a batch the queue is pure FIFO traffic whose
 * ordering is only observable at the drain points (immediately before
 * each branch prediction) and in the checkpoint bytes; a flat vector
 * with a drain cursor reproduces both exactly. begin() snapshots the
 * PGU's pending queue into the caller's scratch vector; observe()
 * appends from the decoded-trace lanes without building a DynInst;
 * drainTo() walks the cursor forward, injecting ripened bits with a
 * devirtualised call; commit() writes the surviving suffix back as
 * the PGU's queue and settles the insertion counter - byte-for-byte
 * the state the reference call sequence would have left.
 */
class PguBatchView
{
  public:
    using Pending = PredicateGlobalUpdate::Pending;

    /**
     * Start a batch over @p p, spilling into caller-owned @p storage
     * (grown here to the carried queue plus @p batchExtra entries, an
     * upper bound on the batch's own bits, and reused across batches
     * so the allocation amortises away). Pre-sizing is what lets
     * observe() append with a plain store plus a flag-add instead of
     * a capacity-checked push: the define kernel's appends are
     * data-dependent (guard-false compares contribute nothing), and a
     * conditional ADD is invisible to the host branch predictor where
     * a conditional push is a mispredict per irregular define.
     */
    void
    begin(PredicateGlobalUpdate &p, std::unique_ptr<Pending[]> &storage,
          std::size_t &capacity, std::size_t batchExtra)
    {
        const std::size_t need = p.queue.size() + batchExtra;
        if (capacity < need) {
            storage = std::make_unique_for_overwrite<Pending[]>(need);
            capacity = need;
        }
        pgu = &p;
        q = storage.get();
        n = 0;
        cursor = 0;
        injected = 0;
        p.queue.forEach([this](const Pending &pend) { q[n++] = pend; });
    }

    /**
     * Pre-resolve, per static instruction, everything observe() needs
     * from the Inst under this PGU configuration: 0 = contributes no
     * history bit (wrong opcode, or outside a region under
     * RegionCmps), 1 = compare, 2|immBit = pset (the pset's inserted
     * value is its immediate's low bit, baked into the kind). The
     * define kernel then indexes one byte per dynamic define instead
     * of loading and re-classifying the instruction every time.
     */
    void
    buildKinds(const std::vector<Inst> &insts,
               std::vector<std::uint8_t> &kinds) const
    {
        const PguConfig &cfg = pgu->cfg;
        kinds.resize(insts.size());
        for (std::size_t pc = 0; pc < insts.size(); ++pc) {
            const Inst &inst = insts[pc];
            const bool is_cmp = inst.op == Opcode::Cmp;
            const bool is_pset = inst.op == Opcode::PSet;
            std::uint8_t k = 0;
            if ((is_cmp || (is_pset && cfg.includePSet)) &&
                !(cfg.source == PguSource::RegionCmps &&
                  inst.regionId < 0))
                k = is_cmp ? 1
                           : static_cast<std::uint8_t>(
                                 2 | (inst.imm & 1));
            kinds[pc] = k;
        }
    }

    /**
     * PredicateGlobalUpdate::observe() fed straight from the trace
     * lanes: @p kind is the instruction's buildKinds() byte, @p flags
     * and @p predVal use the RecordedTrace::Event packing (bit0 guard
     * / bits2-3 numPredWrites; predVal bit0/1 write values, bit2
     * cmpRel). The single-bit configurations append branchlessly
     * (unconditional store into the pre-sized buffer, conditional
     * length bump); only the rarely-used BothWrites keeps a loop.
     */
    PABP_ALWAYS_INLINE void
    observe(std::uint64_t seq, std::uint8_t kind, std::uint8_t flags,
            std::uint8_t predVal)
    {
        switch (pgu->cfg.value) {
          case PguValue::Rel: {
            // Guarded cmp inserts the comparison outcome; guarded
            // pset inserts its immediate bit (pre-baked in the kind).
            const bool push = kind != 0 && (flags & 1);
            q[n] = Pending{seq, kind == 1 ? ((predVal >> 2) & 1) != 0
                                          : (kind & 1) != 0};
            n += push;
            break;
          }
          case PguValue::FirstWrite: {
            const bool push = kind != 0 && ((flags >> 2) & 3) > 0;
            q[n] = Pending{seq, (predVal & 1) != 0};
            n += push;
            break;
          }
          case PguValue::BothWrites: {
            if (kind == 0)
                break;
            const unsigned numWrites = (flags >> 2) & 3;
            for (unsigned i = 0; i < numWrites; ++i)
                q[n++] = Pending{seq, ((predVal >> i) & 1) != 0};
            break;
          }
        }
    }

    /**
     * drainToAs() over the snapshot: inject every bit resolved by
     * @p seq into @p p, which MUST be the PGU's own base predictor
     * (asserted). With a concrete P the inject binds statically;
     * P = BranchPredictor falls back to the virtual call.
     */
    template <typename P>
    PABP_ALWAYS_INLINE unsigned
    drainTo(P &p, std::uint64_t seq)
    {
        pabp_assert(static_cast<BranchPredictor *>(&p) == &pgu->pred);
        const std::uint64_t delay = pgu->cfg.delay;
        unsigned drained = 0;
        while (cursor < n && q[cursor].seq + delay <= seq) {
            if constexpr (std::is_same_v<P, BranchPredictor>)
                p.injectHistoryBit(q[cursor].bit);
            else
                p.P::injectHistoryBit(q[cursor].bit);
            ++cursor;
            ++drained;
        }
        injected += drained;
        return drained;
    }

    /** @name The batch's full drain stream (carried queue + appended
     *  bits) - what a replay schedule captures before commit().
     *  @{ */
    const Pending *streamData() const { return q; }
    std::size_t streamSize() const { return n; }
    /** @} */

    /** Write the un-drained suffix back as the PGU queue and settle
     *  the bits-inserted statistic. */
    void
    commit()
    {
        pgu->queue.clear();
        for (std::size_t i = cursor; i < n; ++i)
            pgu->queue.push_back(q[i]);
        pgu->inserted += injected;
        pgu = nullptr;
        q = nullptr;
    }

  private:
    PredicateGlobalUpdate *pgu = nullptr;
    Pending *q = nullptr;
    std::size_t n = 0;
    std::size_t cursor = 0;
    std::uint64_t injected = 0;
};

} // namespace pabp

#endif // PABP_CORE_PGU_HH
