/**
 * @file
 * The predicate global update (PGU) mechanism - the paper's second
 * technique.
 *
 * Conventional global history only records branch outcomes; after
 * if-conversion the branches that carried the correlation have become
 * predicate defines and vanish from the history, so region-based
 * branches lose their correlated context. PGU restores it by shifting
 * the outcome of each predicate define into the predictor's global
 * history register when the define resolves.
 *
 * Because defines resolve in the backend, their bits reach the history
 * a few instructions after the define is fetched; this delay is
 * modelled the same way as in the delayed predicate file.
 */

#ifndef PABP_CORE_PGU_HH
#define PABP_CORE_PGU_HH

#include <cstdint>
#include <deque>

#include "bpred/predictor.hh"
#include "isa/inst.hh"
#include "sim/emulator.hh"
#include "util/serialize.hh"
#include "util/stats.hh"
#include "util/status.hh"

namespace pabp {

/** Which predicate defines contribute history bits. */
enum class PguSource : std::uint8_t
{
    AllCmps,     ///< every compare instruction
    RegionCmps,  ///< only compares inside predicated regions (models a
                 ///< compiler hint bit on the define)
};

/** Which value of a define is inserted. */
enum class PguValue : std::uint8_t
{
    Rel,        ///< the comparison outcome, when the guard was true
    FirstWrite, ///< the first predicate value actually written
    BothWrites, ///< both written predicate values (2 bits for unc)
};

/** PGU configuration. */
struct PguConfig
{
    PguSource source = PguSource::AllCmps;
    PguValue value = PguValue::Rel;
    /** Also insert pset pseudo-define outcomes. */
    bool includePSet = false;
    /** Instructions from define to history visibility. */
    unsigned delay = 8;
};

/**
 * Collects predicate-define outcomes from the dynamic stream and
 * injects them into a base predictor's global history with the
 * configured delay.
 */
class PredicateGlobalUpdate
{
  public:
    PredicateGlobalUpdate(BranchPredictor &base, PguConfig config)
        : pred(base), cfg(config)
    {}

    /** Observe one executed instruction; queue its history bits. */
    void observe(const DynInst &dyn);

    /** Inject all bits that have resolved by @p seq. Call before the
     *  prediction of the branch at @p seq. Returns how many bits
     *  were injected (the engine uses this to attribute
     *  PGU-influenced predictions per branch). */
    unsigned drainTo(std::uint64_t seq);

    std::uint64_t bitsInserted() const { return inserted; }
    std::uint64_t pendingBits() const { return queue.size(); }
    const PguConfig &config() const { return cfg; }
    void reset();

    /** Zero the insertion counter; the pending queue (state, not a
     *  statistic) survives. Engine resetStats() delegates here - it
     *  used to forget to, so a reused engine carried the previous
     *  cell's bit count into the next one. */
    void resetStats() { inserted = 0; }

    void
    registerStats(StatGroup &group, const std::string &prefix)
    {
        group.gauge(prefix + "bits_inserted",
                    [this] { return inserted; });
        group.gauge(prefix + "pending_bits",
                    [this] { return queue.size(); });
    }

    /** Pending-bit queue and insertion count; the base predictor's
     *  own state is checkpointed by its owner. */
    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);

  private:
    struct Pending
    {
        std::uint64_t seq;
        bool bit;
    };

    BranchPredictor &pred;
    PguConfig cfg;
    std::deque<Pending> queue;
    std::uint64_t inserted = 0;
};

} // namespace pabp

#endif // PABP_CORE_PGU_HH
