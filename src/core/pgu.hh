/**
 * @file
 * The predicate global update (PGU) mechanism - the paper's second
 * technique.
 *
 * Conventional global history only records branch outcomes; after
 * if-conversion the branches that carried the correlation have become
 * predicate defines and vanish from the history, so region-based
 * branches lose their correlated context. PGU restores it by shifting
 * the outcome of each predicate define into the predictor's global
 * history register when the define resolves.
 *
 * Because defines resolve in the backend, their bits reach the history
 * a few instructions after the define is fetched; this delay is
 * modelled the same way as in the delayed predicate file.
 */

#ifndef PABP_CORE_PGU_HH
#define PABP_CORE_PGU_HH

#include <cstdint>

#include "bpred/predictor.hh"
#include "isa/inst.hh"
#include "sim/emulator.hh"
#include "util/ring_queue.hh"
#include "util/serialize.hh"
#include "util/stats.hh"
#include "util/status.hh"

namespace pabp {

/** Which predicate defines contribute history bits. */
enum class PguSource : std::uint8_t
{
    AllCmps,     ///< every compare instruction
    RegionCmps,  ///< only compares inside predicated regions (models a
                 ///< compiler hint bit on the define)
};

/** Which value of a define is inserted. */
enum class PguValue : std::uint8_t
{
    Rel,        ///< the comparison outcome, when the guard was true
    FirstWrite, ///< the first predicate value actually written
    BothWrites, ///< both written predicate values (2 bits for unc)
};

/** PGU configuration. */
struct PguConfig
{
    PguSource source = PguSource::AllCmps;
    PguValue value = PguValue::Rel;
    /** Also insert pset pseudo-define outcomes. */
    bool includePSet = false;
    /** Instructions from define to history visibility. */
    unsigned delay = 8;
};

/**
 * Collects predicate-define outcomes from the dynamic stream and
 * injects them into a base predictor's global history with the
 * configured delay.
 */
class PredicateGlobalUpdate
{
  public:
    PredicateGlobalUpdate(BranchPredictor &base, PguConfig config)
        : pred(base), cfg(config)
    {}

    /** Observe one executed instruction; queue its history bits.
     *  Inline: both replay loops call it for every predicate define,
     *  which is a fifth to a third of an if-converted stream. */
    void
    observe(const DynInst &dyn)
    {
        const Inst &inst = *dyn.inst;
        bool is_cmp = inst.op == Opcode::Cmp;
        bool is_pset = inst.op == Opcode::PSet;
        if (!is_cmp && !(is_pset && cfg.includePSet))
            return;
        if (cfg.source == PguSource::RegionCmps && inst.regionId < 0)
            return;

        switch (cfg.value) {
          case PguValue::Rel:
            // Insert the comparison outcome for guarded-true
            // compares; a guard-false compare computed nothing worth
            // recording.
            if (is_cmp && dyn.guard)
                queue.push_back(Pending{dyn.seq, dyn.cmpRel});
            else if (is_pset && dyn.guard)
                queue.push_back(Pending{dyn.seq, (inst.imm & 1) != 0});
            break;
          case PguValue::FirstWrite:
            if (dyn.numPredWrites > 0)
                queue.push_back(
                    Pending{dyn.seq, dyn.predWrites[0].value});
            break;
          case PguValue::BothWrites:
            for (unsigned i = 0; i < dyn.numPredWrites; ++i)
                queue.push_back(
                    Pending{dyn.seq, dyn.predWrites[i].value});
            break;
        }
    }

    /** Inject all bits that have resolved by @p seq. Call before the
     *  prediction of the branch at @p seq. Returns how many bits
     *  were injected (the engine uses this to attribute
     *  PGU-influenced predictions per branch). Inline: the replay
     *  loops call it per instruction, and with defines a fifth to a
     *  third of the stream a bit ripens on a sizeable fraction of
     *  those calls. */
    unsigned
    drainTo(std::uint64_t seq)
    {
        unsigned drained = 0;
        while (!queue.empty() && queue.front().seq + cfg.delay <= seq) {
            pred.injectHistoryBit(queue.front().bit);
            ++inserted;
            ++drained;
            queue.pop_front();
        }
        return drained;
    }

    /**
     * drainTo() with the base predictor supplied by its concrete
     * static type, so injectHistoryBit binds without a virtual
     * dispatch per bit - the batched replay loop's variant. @p p MUST
     * be the very predictor this PGU was constructed over (asserted);
     * the qualified call then lands on exactly the override the
     * virtual call would have picked.
     */
    template <typename P>
    unsigned
    drainToAs(P &p, std::uint64_t seq)
    {
        pabp_assert(static_cast<BranchPredictor *>(&p) == &pred);
        unsigned drained = 0;
        while (!queue.empty() && queue.front().seq + cfg.delay <= seq) {
            p.P::injectHistoryBit(queue.front().bit);
            ++inserted;
            ++drained;
            queue.pop_front();
        }
        return drained;
    }

    std::uint64_t bitsInserted() const { return inserted; }
    std::uint64_t pendingBits() const { return queue.size(); }
    const PguConfig &config() const { return cfg; }
    void reset();

    /** Zero the insertion counter; the pending queue (state, not a
     *  statistic) survives. Engine resetStats() delegates here - it
     *  used to forget to, so a reused engine carried the previous
     *  cell's bit count into the next one. */
    void resetStats() { inserted = 0; }

    void
    registerStats(StatGroup &group, const std::string &prefix)
    {
        group.gauge(prefix + "bits_inserted",
                    [this] { return inserted; });
        group.gauge(prefix + "pending_bits",
                    [this] { return queue.size(); });
    }

    /** Pending-bit queue and insertion count; the base predictor's
     *  own state is checkpointed by its owner. */
    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);

  private:
    struct Pending
    {
        std::uint64_t seq;
        bool bit;
    };

    BranchPredictor &pred;
    PguConfig cfg;
    RingQueue<Pending> queue;
    std::uint64_t inserted = 0;
};

} // namespace pabp

#endif // PABP_CORE_PGU_HH
