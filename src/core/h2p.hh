/**
 * @file
 * Hard-to-predict (H2P) branch tiering over BranchProfile tables.
 *
 * The branch-predictability literature (Lin & Tarsa's "Branch
 * Prediction Is Not a Solved Problem", PAPERS.md) observes that the
 * residual mispredicts of a modern predictor concentrate in a small
 * set of static branches. This module makes that set a first-class
 * measurement axis: classify the static PCs of a *baseline* run into
 * tiers by cumulative share of mispredicts, then re-aggregate any
 * *variant* run's per-PC counters over those same PC sets, so
 * "did SFPF/PGU help the H2P branches specifically?" has a
 * byte-stable numeric answer (bench_e20_tage_h2p).
 *
 * Tier 0 is the H2P set: the fewest static branches whose cumulative
 * mispredicts first reach cutoff[0] (default 50%) of the baseline's
 * tracked mispredicts. Tier 1 extends coverage to cutoff[1] (default
 * 90%), the last tier holds the remaining tracked PCs. The profile's
 * evicted remainder cannot be tiered (its PCs are gone) and is
 * reported separately - nothing is silently dropped.
 *
 * Metric names exported here are documented in docs/OBSERVABILITY.md.
 */

#ifndef PABP_CORE_H2P_HH
#define PABP_CORE_H2P_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/branch_profile.hh"
#include "util/metrics.hh"
#include "util/status.hh"

namespace pabp {

/** A baseline profile's static PCs partitioned into H2P tiers. */
struct H2pClassification
{
    /** Cumulative-mispredict-share cutoffs that defined the tiers. */
    std::vector<double> cutoffs;
    /** Tier index per tracked baseline PC (0 = hardest). */
    std::map<std::uint32_t, unsigned> tierOf;
    /** Static branches per tier. */
    std::vector<std::uint64_t> tierBranches;
    /** Baseline mispredicts per tier. */
    std::vector<std::uint64_t> tierMispredicts;
    /** Baseline lookups per tier. */
    std::vector<std::uint64_t> tierLookups;
    /** Tracked baseline mispredicts (sum over tiers). */
    std::uint64_t trackedMispredicts = 0;
    /** Baseline mispredicts folded into the eviction remainder. */
    std::uint64_t evictedMispredicts = 0;

    unsigned numTiers() const
    {
        return static_cast<unsigned>(tierBranches.size());
    }
};

/** Per-tier re-aggregation of one variant run over baseline tiers. */
struct H2pTierCounters
{
    std::uint64_t mispredicts = 0;
    std::uint64_t lookups = 0;
    std::uint64_t sfpfSquashes = 0;
    std::uint64_t pguInfluenced = 0;
    /** Tier PCs the variant profile still tracked (coverage check:
     *  eviction order can differ between configs). */
    std::uint64_t matchedBranches = 0;
};

/**
 * Tier @p baseline's tracked PCs by cumulative residual mispredict
 * share. PCs are ranked mispredicts-desc (ties: PC asc, the
 * topByMispredicts order), and each tier closes as soon as the
 * running mispredict sum reaches the next cutoff. @p cutoffs must be
 * strictly increasing, in (0, 1); tiers = cutoffs.size() + 1. A
 * baseline with zero tracked mispredicts puts every PC in the last
 * (easy) tier.
 *
 * Bad cutoffs (out of range, not strictly increasing - e.g. a typo'd
 * --h2p-cutoffs) are a typed InvalidArgument, not an assertion: they
 * fail the one cell or bench that passed them, never the whole sweep.
 */
Expected<H2pClassification>
classifyH2p(const BranchProfile &baseline,
            const std::vector<double> &cutoffs = {0.5, 0.9});

/**
 * Re-aggregate @p variant's per-PC counters over @p cls's tier sets.
 * Tier PCs absent from the variant's tracked table contribute
 * nothing (and are visible via matchedBranches).
 */
std::vector<H2pTierCounters>
aggregateByTier(const H2pClassification &cls,
                const BranchProfile &variant);

/**
 * Export the classification summary under "<prefix>.*" (tier sizes
 * and baseline shares) - call once per baseline. @p prefix defaults
 * to "h2p"; benches sweeping several workloads scope it as
 * "h2p.<workload>".
 */
void exportH2pClassification(MetricsExporter &ex,
                             const H2pClassification &cls,
                             const std::string &prefix = "h2p");

/**
 * Export one variant's per-tier counters and deltas against the
 * baseline under "<prefix>.<label>.tier<i>.*". Deltas are
 * variant - baseline mispredicts over the same PC set (negative =
 * the variant helped that tier).
 */
void exportH2pVariant(MetricsExporter &ex, const std::string &label,
                      const H2pClassification &cls,
                      const std::vector<H2pTierCounters> &tiers,
                      const std::string &prefix = "h2p");

} // namespace pabp

#endif // PABP_CORE_H2P_HH
