#include "core/checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/serialize.hh"

namespace pabp {

namespace {

constexpr char ckptMagic[8] = {'P', 'A', 'B', 'P', 'C', 'K', 'P', '1'};
constexpr char ckptFooter[8] = {'P', 'A', 'B', 'P', 'C', 'K', 'P', 'E'};
// v2: engine payload gained the branch profile, the PGU-influence
// window cursor, gshare conflict-profiling state and the
// confidence/value-predictor counters.
// v3: engine payload gained the target-modelling configuration
// (modelTargets + BTB/RAS geometry) and, when armed, the BTB and
// return-address-stack state and counters. Old checkpoints fail to
// load (version mismatch) and runners fall back to a fresh run.
constexpr std::uint32_t ckptVersion = 3;

constexpr std::uint8_t sectionEmulator = 1;
constexpr std::uint8_t sectionEngine = 2;
constexpr std::uint8_t sectionStreamPos = 4;

std::uint8_t
sectionMask(const CheckpointRefs &refs)
{
    std::uint8_t mask = 0;
    if (refs.emu)
        mask |= sectionEmulator;
    if (refs.engine)
        mask |= sectionEngine;
    if (refs.streamPos)
        mask |= sectionStreamPos;
    return mask;
}

} // anonymous namespace

Status
saveCheckpoint(const std::string &path, const CheckpointRefs &refs)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return Status(StatusCode::IoError,
                          "cannot open checkpoint for writing: " + tmp);

        StateSink sink(os);
        sink.writeBytes(ckptMagic, sizeof(ckptMagic));
        sink.writeU32(ckptVersion);

        sink.resetCrc();
        sink.writeU8(sectionMask(refs));
        if (refs.emu)
            refs.emu->saveState(sink);
        if (refs.engine)
            refs.engine->saveState(sink);
        if (refs.streamPos)
            sink.writeU64(*refs.streamPos);
        sink.writeU32(sink.crc32());

        sink.writeBytes(ckptFooter, sizeof(ckptFooter));
        os.flush();
        if (!os) {
            std::remove(tmp.c_str());
            return Status(StatusCode::IoError,
                          "write failure on checkpoint: " + tmp);
        }
    }
    // Atomic publish: a previous good checkpoint at @p path survives
    // any crash up to this instant.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status(StatusCode::IoError,
                      "cannot rename checkpoint into place: " + path);
    }
    return Status();
}

Status
loadCheckpoint(const std::string &path, const CheckpointRefs &refs)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return Status(StatusCode::IoError,
                      "cannot open checkpoint: " + path);

    StateSource src(is);
    char magic[8];
    PABP_TRY(src.readBytes(magic, sizeof(magic)));
    if (std::memcmp(magic, ckptMagic, 7) != 0)
        return Status(StatusCode::BadMagic,
                      "not a pabp checkpoint (bad magic)");
    if (magic[7] != '1')
        return Status(StatusCode::VersionMismatch,
                      "unsupported checkpoint container version");
    std::uint32_t version = 0;
    PABP_TRY(src.readPod(version));
    if (version != ckptVersion)
        return Status(StatusCode::VersionMismatch,
                      "checkpoint version " + std::to_string(version) +
                          " not supported");

    src.resetCrc();
    std::uint8_t mask = 0;
    PABP_TRY(src.readPod(mask));
    if (mask != sectionMask(refs))
        return Status(StatusCode::InvalidArgument,
                      "checkpoint sections do not match the resume "
                      "request");
    if (refs.emu)
        PABP_TRY(refs.emu->loadState(src));
    if (refs.engine)
        PABP_TRY(refs.engine->loadState(src));
    if (refs.streamPos)
        PABP_TRY(src.readPod(*refs.streamPos));

    std::uint32_t crc = src.crc32();
    std::uint32_t stored_crc = 0;
    PABP_TRY(src.readPod(stored_crc));
    if (stored_crc != crc)
        return Status(StatusCode::ChecksumMismatch,
                      "checkpoint CRC mismatch");

    char footer[8];
    PABP_TRY(src.readBytes(footer, sizeof(footer)));
    if (std::memcmp(footer, ckptFooter, sizeof(footer)) != 0)
        return Status(StatusCode::Corrupt,
                      "missing end-of-checkpoint sentinel");
    return Status();
}

} // namespace pabp
