/**
 * @file
 * JRS branch confidence estimator (Jacobsen, Rotenberg, Smith,
 * MICRO 1996): a table of resetting counters that track how often the
 * branch predictor has recently been correct for a given branch. Used
 * here as an alternative confidence gate for the speculative-squash
 * extension, and available as a building block for selective
 * if-conversion studies.
 */

#ifndef PABP_BPRED_CONFIDENCE_HH
#define PABP_BPRED_CONFIDENCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/serialize.hh"
#include "util/stats.hh"
#include "util/status.hh"

namespace pabp {

/** Resetting-counter confidence estimator. */
class ConfidenceEstimator
{
  public:
    /**
     * @param entries_log2 log2 of the table size.
     * @param counter_max Resetting counter ceiling (15 in the paper).
     * @param threshold Counter value at or above which the prediction
     *        is deemed high-confidence.
     */
    ConfidenceEstimator(unsigned entries_log2, unsigned counter_max = 15,
                        unsigned threshold = 15);

    /** Is the prediction for @p pc currently high-confidence? */
    bool highConfidence(std::uint32_t pc) const;

    /** Record whether the prediction for @p pc was correct: correct
     *  increments (saturating), incorrect resets to zero. */
    void update(std::uint32_t pc, bool correct);

    void reset();
    std::size_t storageBits() const;

    /** @name Observability
     * updates() counts every training event, lowResets() the subset
     * that reset a counter to zero (an incorrect prediction). Both
     * are checkpointed so resumed runs report identical counts.
     * @{ */
    std::uint64_t updates() const { return updateCount; }
    std::uint64_t lowResets() const { return resetCount; }
    void registerStats(StatGroup &group, const std::string &prefix);
    void resetStats() { updateCount = 0; resetCount = 0; }
    /** @} */

    void saveState(StateSink &sink) const;
    Status loadState(StateSource &src);

  private:
    std::vector<std::uint8_t> table;
    unsigned counterMax;
    unsigned confThreshold;
    std::uint64_t updateCount = 0;
    std::uint64_t resetCount = 0;

    std::size_t index(std::uint32_t pc) const
    {
        return pc & (table.size() - 1);
    }
};

} // namespace pabp

#endif // PABP_BPRED_CONFIDENCE_HH
