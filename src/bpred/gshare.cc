#include "bpred/gshare.hh"

#include "util/logging.hh"

namespace pabp {

GSharePredictor::GSharePredictor(unsigned entries_log2,
                                 unsigned history_bits,
                                 unsigned counter_bits)
    : table(std::size_t{1} << entries_log2, SatCounter(counter_bits)),
      entriesLog2(entries_log2),
      histBits(history_bits ? history_bits : entries_log2),
      counterBits(counter_bits)
{
    pabp_assert(entries_log2 >= 1 && entries_log2 <= 24);
    pabp_assert(histBits >= 1 && histBits <= 63);
}

std::size_t
GSharePredictor::index(std::uint32_t pc) const
{
    std::uint64_t hist = ghr & ((std::uint64_t{1} << histBits) - 1);
    return (pc ^ hist) & (table.size() - 1);
}

void
GSharePredictor::enableConflictProfiling()
{
    profiling = true;
    lastPc.assign(table.size(), 0);
    lastPcValid.assign(table.size(), false);
    lookups = 0;
    conflicts = 0;
}

bool
GSharePredictor::predict(std::uint32_t pc)
{
    std::size_t idx = index(pc);
    if (profiling) {
        ++lookups;
        if (lastPcValid[idx] && lastPc[idx] != pc)
            ++conflicts;
        lastPc[idx] = pc;
        lastPcValid[idx] = true;
    }
    return table[idx].predictTaken();
}

void
GSharePredictor::update(std::uint32_t pc, bool taken)
{
    table[index(pc)].update(taken);
    ghr = (ghr << 1) | (taken ? 1 : 0);
}

bool
GSharePredictor::predictAndUpdate(std::uint32_t pc, bool taken)
{
    // Qualified calls: the compiler statically binds both halves, so
    // the fused call is genuinely devirtualised, and the behaviour is
    // the unfused predict-then-update pair by construction.
    bool predicted = GSharePredictor::predict(pc);
    GSharePredictor::update(pc, taken);
    return predicted;
}

void
GSharePredictor::registerStats(StatGroup &group,
                               const std::string &prefix)
{
    group.gauge(prefix + "lookups", [this] { return lookups; });
    group.gauge(prefix + "conflicts", [this] { return conflicts; });
}


void
GSharePredictor::reset()
{
    for (auto &c : table)
        c = SatCounter(counterBits);
    ghr = 0;
}

std::string
GSharePredictor::name() const
{
    return "gshare-" + std::to_string(table.size()) + "x" +
        std::to_string(histBits) + "h";
}

std::size_t
GSharePredictor::storageBits() const
{
    return table.size() * counterBits + histBits;
}

GAgPredictor::GAgPredictor(unsigned history_bits, unsigned counter_bits)
    : table(std::size_t{1} << history_bits, SatCounter(counter_bits)),
      histBits(history_bits), counterBits(counter_bits)
{
    pabp_assert(history_bits >= 1 && history_bits <= 24);
}

bool
GAgPredictor::predict(std::uint32_t)
{
    return table[ghr & (table.size() - 1)].predictTaken();
}

void
GAgPredictor::update(std::uint32_t, bool taken)
{
    table[ghr & (table.size() - 1)].update(taken);
    ghr = (ghr << 1) | (taken ? 1 : 0);
}

void
GAgPredictor::injectHistoryBit(bool bit)
{
    ghr = (ghr << 1) | (bit ? 1 : 0);
}

void
GAgPredictor::reset()
{
    for (auto &c : table)
        c = SatCounter(counterBits);
    ghr = 0;
}

std::string
GAgPredictor::name() const
{
    return "gag-" + std::to_string(histBits) + "h";
}

std::size_t
GAgPredictor::storageBits() const
{
    return table.size() * counterBits + histBits;
}


void
GSharePredictor::saveState(StateSink &sink) const
{
    sink.writeCounters(table);
    sink.writeU64(ghr);
    // Conflict-profiling state (bench E16) is diagnostic, not
    // architectural, but it IS checkpointed: a resumed profiling run
    // must report the same lookup/conflict counts as an
    // uninterrupted one. (It used to be skipped, which silently
    // zeroed the counters - and the last-touched-PC table - across
    // every resume.)
    sink.writeBool(profiling);
    if (profiling) {
        sink.writeU64(lookups);
        sink.writeU64(conflicts);
        sink.writePodVector(lastPc);
        sink.writeBoolVector(lastPcValid);
    }
}

Status
GSharePredictor::loadState(StateSource &src)
{
    PABP_TRY(src.readCounters(table));
    PABP_TRY(src.readPod(ghr));
    bool stored_profiling = false;
    PABP_TRY(src.readBool(stored_profiling));
    if (stored_profiling != profiling)
        return Status(StatusCode::InvalidArgument,
                      "checkpoint conflict-profiling mode does not "
                      "match the configured predictor");
    if (profiling) {
        PABP_TRY(src.readPod(lookups));
        PABP_TRY(src.readPod(conflicts));
        PABP_TRY(src.readPodVector(lastPc, table.size()));
        PABP_TRY(src.readBoolVector(lastPcValid, table.size()));
    }
    return Status();
}

void
GAgPredictor::saveState(StateSink &sink) const
{
    sink.writeCounters(table);
    sink.writeU64(ghr);
}

Status
GAgPredictor::loadState(StateSource &src)
{
    PABP_TRY(src.readCounters(table));
    return src.readPod(ghr);
}

} // namespace pabp
