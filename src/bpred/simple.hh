/**
 * @file
 * Trivial predictors: static directions and the bimodal table.
 */

#ifndef PABP_BPRED_SIMPLE_HH
#define PABP_BPRED_SIMPLE_HH

#include <vector>

#include "bpred/predictor.hh"
#include "util/sat_counter.hh"

namespace pabp {

/** Always predicts one direction. */
class StaticPredictor : public BranchPredictor
{
  public:
    explicit StaticPredictor(bool predict_taken)
        : predictTaken(predict_taken)
    {}

    bool predict(std::uint32_t) override { return predictTaken; }
    void update(std::uint32_t, bool) override {}
    void reset() override {}
    std::string name() const override
    {
        return predictTaken ? "static-taken" : "static-nottaken";
    }
    std::size_t storageBits() const override { return 0; }

  private:
    bool predictTaken;
};

/** Classic bimodal predictor: a PC-indexed table of counters. */
class BimodalPredictor : public BranchPredictor
{
  public:
    /**
     * @param entries_log2 log2 of the table size.
     * @param counter_bits Counter width (2 is conventional).
     */
    explicit BimodalPredictor(unsigned entries_log2,
                              unsigned counter_bits = 2);

    bool predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    std::size_t storageBits() const override;
    void saveState(StateSink &sink) const override;
    Status loadState(StateSource &src) override;

  private:
    std::vector<SatCounter> table;
    unsigned entriesLog2;
    unsigned counterBits;

    std::size_t index(std::uint32_t pc) const
    {
        return pc & (table.size() - 1);
    }
};

} // namespace pabp

#endif // PABP_BPRED_SIMPLE_HH
