#include "bpred/combining.hh"

#include "util/logging.hh"

namespace pabp {

CombiningPredictor::CombiningPredictor(PredictorPtr first,
                                       PredictorPtr second,
                                       unsigned chooser_log2)
    : firstPred(std::move(first)), secondPred(std::move(second)),
      chooser(std::size_t{1} << chooser_log2, SatCounter(2))
{
    pabp_assert(firstPred && secondPred);
}

bool
CombiningPredictor::predict(std::uint32_t pc)
{
    lastFirst = firstPred->predict(pc);
    lastSecond = secondPred->predict(pc);
    return chooser[index(pc)].predictTaken() ? lastSecond : lastFirst;
}

void
CombiningPredictor::update(std::uint32_t pc, bool taken)
{
    // Train the chooser only when the components disagree.
    if (lastFirst != lastSecond)
        chooser[index(pc)].update(lastSecond == taken);
    firstPred->update(pc, taken);
    secondPred->update(pc, taken);
}

bool
CombiningPredictor::predictAndUpdate(std::uint32_t pc, bool taken)
{
    // Qualified calls: statically bound, bit-identical to the unfused
    // pair. The components stay virtual - they are the tournament's
    // pluggable halves - but the wrapper's own dispatch disappears.
    bool predicted = CombiningPredictor::predict(pc);
    CombiningPredictor::update(pc, taken);
    return predicted;
}


bool
CombiningPredictor::hasGlobalHistory() const
{
    return firstPred->hasGlobalHistory() || secondPred->hasGlobalHistory();
}

void
CombiningPredictor::reset()
{
    firstPred->reset();
    secondPred->reset();
    for (auto &c : chooser)
        c = SatCounter(2);
}

std::string
CombiningPredictor::name() const
{
    return "comb(" + firstPred->name() + "," + secondPred->name() + ")";
}

std::size_t
CombiningPredictor::storageBits() const
{
    return firstPred->storageBits() + secondPred->storageBits() +
        chooser.size() * 2;
}


void
CombiningPredictor::saveState(StateSink &sink) const
{
    sink.writeCounters(chooser);
    firstPred->saveState(sink);
    secondPred->saveState(sink);
}

Status
CombiningPredictor::loadState(StateSource &src)
{
    PABP_TRY(src.readCounters(chooser));
    PABP_TRY(firstPred->loadState(src));
    return secondPred->loadState(src);
}

} // namespace pabp
