/**
 * @file
 * TAGE (TAgged GEometric history length) predictor with a simple
 * statistical corrector, after Seznec & Michaud (JILP 2006) and the
 * CBP reference implementations.
 *
 * A base bimodal table backs N partially-tagged tables indexed by
 * geometrically-growing slices of the global history. Each tagged
 * entry carries a prediction counter, a partial tag and a usefulness
 * counter; the longest-history tag match provides the prediction,
 * with the next match (or the base table) as the alternate. A small
 * statistical corrector table can override TAGE when its own counter
 * for (pc, tage prediction) is saturated - the cases where TAGE is
 * confidently wrong in a statistically-biased way.
 *
 * History is kept twice: a raw circular bit buffer (the ground truth,
 * long enough for the longest table) and per-table folded registers
 * (Seznec's cyclic-shift-register trick) that keep index and tag
 * hashes O(1) per shifted bit. The folding is why this predictor's
 * injectHistoryBits() CANNOT be a single shift: every injected bit
 * must run the fold update for every register, exactly as a
 * sequential injectHistoryBit() would (see docs/PERF.md).
 */

#ifndef PABP_BPRED_TAGE_HH
#define PABP_BPRED_TAGE_HH

#include <vector>

#include "bpred/predictor.hh"
#include "util/sat_counter.hh"

namespace pabp {

/** Geometry and training knobs for TagePredictor. */
struct TageConfig
{
    unsigned baseLog2 = 12;    ///< log2 entries of the bimodal base
    unsigned tableLog2 = 10;   ///< log2 entries of each tagged table
    unsigned numTables = 4;    ///< tagged tables, shortest first
    unsigned tagBits = 9;      ///< partial tag width
    unsigned minHistory = 5;   ///< history length of table 0
    unsigned maxHistory = 80;  ///< history length of the last table
    unsigned counterBits = 3;  ///< tagged prediction counter width
    unsigned usefulBits = 2;   ///< usefulness counter width
    unsigned tickPeriod = 4096; ///< updates between u-bit half-resets
    unsigned scLog2 = 10;      ///< log2 entries of the corrector table
    unsigned scCounterBits = 6; ///< corrector counter width
};

class TagePredictor : public BranchPredictor
{
  public:
    explicit TagePredictor(const TageConfig &config);

    bool predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken) override;
    /** Fused fast-path call; `final` so the replay loop's
     *  devirtualised arm dispatches statically (no vtable). */
    bool predictAndUpdate(std::uint32_t pc, bool taken) final;

    /** One raw-history bit in, every folded register re-folded. */
    void injectHistoryBit(bool bit) override { shiftHistory(bit); }
    /**
     * Word-at-a-time inject (contract in
     * BranchPredictor::injectHistoryBits). Folded registers admit no
     * single-shift shortcut - each bit both enters and *leaves* every
     * fold at a different tap - so this walks the word MSB-to-LSB
     * through the same non-virtual shift as injectHistoryBit(),
     * making it k sequential injects by construction. Still worth
     * overriding: the virtual dispatch happens once per word, not
     * once per bit.
     */
    void
    injectHistoryBits(std::uint64_t bits, unsigned n) override
    {
        for (unsigned j = n; j-- > 0;)
            shiftHistory(((bits >> j) & 1) != 0);
    }
    bool hasGlobalHistory() const override { return true; }
    /** History swap (contract in BranchPredictor): the raw circular
     *  buffer plus its write pointer plus every folded register,
     *  verbatim - re-deriving the folds from the raw bits would walk
     *  the whole history per slice, and any drift from the
     *  incremental recurrence would break the N=1 identity. */
    void exportHistory(std::vector<std::uint64_t> &out) const override;
    std::size_t importHistory(const std::uint64_t *words,
                              std::size_t n) override;
    void reset() override;
    std::string name() const override;
    std::size_t storageBits() const override;
    void saveState(StateSink &sink) const override;
    Status loadState(StateSource &src) override;

    void registerStats(StatGroup &group,
                       const std::string &prefix) override;
    void
    resetStats() override
    {
        providerHits = 0;
        altOverrides = 0;
        allocations = 0;
        allocFailures = 0;
        uResets = 0;
        scOverrides = 0;
        scOverrideCorrect = 0;
    }

    const TageConfig &config() const { return cfg; }

  private:
    /**
     * Folded (cyclically compressed) view of the most recent
     * origLength history bits in compLength bits. Updating with the
     * newest bit and the bit falling off the far end keeps the fold
     * exact in O(1), the same recurrence as Seznec's CSRs.
     */
    struct FoldedHistory
    {
        std::uint32_t comp = 0;
        unsigned compLength = 1;
        unsigned origLength = 1;
        unsigned outPoint = 0;

        void
        init(unsigned orig, unsigned width)
        {
            comp = 0;
            origLength = orig;
            compLength = width;
            outPoint = orig % width;
        }

        void
        shift(unsigned newBit, unsigned oldBit)
        {
            comp = (comp << 1) | newBit;
            comp ^= oldBit << outPoint;
            comp ^= comp >> compLength;
            comp &= (std::uint32_t{1} << compLength) - 1;
        }
    };

    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        SatCounter ctr;
        SatCounter u;
    };

    /** Non-virtual core of injectHistoryBit()/update()'s history
     *  shift: push one bit into the raw buffer and every fold. */
    void shiftHistory(bool bit);
    /** Galois LFSR step for allocation-skipping randomness;
     *  checkpointed so resumed runs allocate identically. */
    std::uint32_t lfsrNext();
    std::size_t tableIndex(std::uint32_t pc, unsigned t) const;
    std::uint16_t tableTag(std::uint32_t pc, unsigned t) const;
    std::size_t scIndex(std::uint32_t pc, bool tagePred) const;
    /** Recompute indices/tags and the provider/alt decision for
     *  @p pc, latching everything update() needs. */
    void lookup(std::uint32_t pc);

    TageConfig cfg;
    std::vector<unsigned> histLengths;

    std::vector<SatCounter> base;
    std::vector<std::vector<TaggedEntry>> tables;
    std::vector<SatCounter> scTable;

    // Raw global history, newest bit at histPtr, circular.
    std::vector<std::uint8_t> hist;
    std::size_t histPtr = 0;
    std::vector<FoldedHistory> foldedIdx;
    std::vector<FoldedHistory> foldedTag0;
    std::vector<FoldedHistory> foldedTag1;

    SatCounter useAltOnNa{4, 7}; ///< prefer alt on weak new entries
    std::uint32_t lfsr = 0x2545f4u;
    std::uint32_t tick = 0;
    bool tickFlip = false; ///< alternate u MSB/LSB clearing

    // predict()-to-update() latches (transient; not checkpointed -
    // checkpoints are only taken between whole process() steps).
    std::vector<std::size_t> idxLatch;
    std::vector<std::uint16_t> tagLatch;
    int providerLatch = -1; ///< -1: base table provided
    int altLatch = -1;
    bool providerPredLatch = false;
    bool altPredLatch = false;
    bool tagePredLatch = false;
    bool providerWeakNew = false;
    std::size_t scIdxLatch = 0;
    bool scOverrideLatch = false;
    bool finalPredLatch = false;

    // Diagnostics (registerStats gauges). Checkpointed: a resumed
    // run must export the same counts as an uninterrupted one.
    std::uint64_t providerHits = 0;
    std::uint64_t altOverrides = 0;
    std::uint64_t allocations = 0;
    std::uint64_t allocFailures = 0;
    std::uint64_t uResets = 0;
    std::uint64_t scOverrides = 0;
    std::uint64_t scOverrideCorrect = 0;
};

} // namespace pabp

#endif // PABP_BPRED_TAGE_HH
